#include "quant/gptq.h"

#include <algorithm>
#include <cmath>

#include "core/palettize.h"
#include "util/half.h"
#include "util/linalg.h"
#include "util/logging.h"

namespace edkm {
namespace quant {

Tensor
gptqQuantize(const Tensor &w, const Tensor &x, const GptqConfig &config,
             QuantizedMatrix *quantized)
{
    EDKM_CHECK(w.dim() == 2, "gptq: weight must be 2-D");
    EDKM_CHECK(x.dim() == 2 && x.size(1) == w.size(1),
               "gptq: calibration inputs must be [n, in]");
    int64_t out = w.size(0);
    size_t in = static_cast<size_t>(w.size(1));
    int64_t g = (config.groupSize <= 0 ||
                 config.groupSize > static_cast<int64_t>(in))
                    ? static_cast<int64_t>(in)
                    : config.groupSize;
    int64_t qmax = (1 << config.bits) - 1;

    // H = 2 X^T X + damp I.
    std::vector<float> xv = x.toVector();
    size_t nsamp = static_cast<size_t>(x.size(0));
    std::vector<float> h(in * in, 0.0f);
    for (size_t s = 0; s < nsamp; ++s) {
        const float *row = xv.data() + s * in;
        for (size_t i = 0; i < in; ++i) {
            float xi = 2.0f * row[i];
            for (size_t j = i; j < in; ++j) {
                h[i * in + j] += xi * row[j];
            }
        }
    }
    for (size_t i = 0; i < in; ++i) {
        for (size_t j = 0; j < i; ++j) {
            h[i * in + j] = h[j * in + i];
        }
    }
    double mean_diag = 0.0;
    for (size_t i = 0; i < in; ++i) {
        mean_diag += h[i * in + i];
    }
    mean_diag /= static_cast<double>(in);
    float damp =
        config.percdamp * static_cast<float>(std::max(mean_diag, 1e-8));
    for (size_t i = 0; i < in; ++i) {
        h[i * in + i] += damp;
        if (h[i * in + i] <= 0.0f) {
            // Dead input channel: make it inert.
            h[i * in + i] = 1.0f;
        }
    }

    // Hinv via Cholesky; the algorithm uses U = chol(H^-1)^T (upper).
    std::vector<float> hinv;
    EDKM_CHECK(spdInverse(h, in, hinv), "gptq: Hessian not invertible");
    // Cholesky of hinv (lower L), then use U = L^T.
    EDKM_CHECK(choleskyInPlace(hinv, in),
               "gptq: inverse Hessian not positive definite");
    // hinv now holds L (lower); U[i][j] = L[j][i] for j>=i.
    auto uat = [&](size_t i, size_t j) { return hinv[j * in + i]; };

    std::vector<float> wv = w.toVector(); // mutated in place
    std::vector<int32_t> idx(static_cast<size_t>(out) * in, 0);
    std::vector<float> scales, zeros;
    int64_t groups_per_row =
        (static_cast<int64_t>(in) + g - 1) / g;
    scales.resize(static_cast<size_t>(out * groups_per_row));
    zeros.resize(static_cast<size_t>(out * groups_per_row));

    for (int64_t r = 0; r < out; ++r) {
        float *row = wv.data() + static_cast<size_t>(r) * in;
        float scale = 1.0f, zero = 0.0f;
        for (size_t j = 0; j < in; ++j) {
            if (static_cast<int64_t>(j) % g == 0) {
                // New group: derive affine params from the *current*
                // (error-compensated) values of the group.
                int64_t glen = std::min(
                    g, static_cast<int64_t>(in - j)); // ragged tail
                float lo = row[j], hi = row[j];
                for (int64_t t = 1; t < glen; ++t) {
                    lo = std::min(lo, row[j + static_cast<size_t>(t)]);
                    hi = std::max(hi, row[j + static_cast<size_t>(t)]);
                }
                scale = roundToFp16((hi - lo) /
                                    static_cast<float>(qmax));
                if (scale <= 0.0f) {
                    scale = 1.0f;
                }
                zero = roundToFp16(lo);
                size_t gid = static_cast<size_t>(
                    r * groups_per_row + static_cast<int64_t>(j) / g);
                scales[gid] = scale;
                zeros[gid] = zero;
            }
            float q = std::round((row[j] - zero) / scale);
            q = std::clamp(q, 0.0f, static_cast<float>(qmax));
            idx[static_cast<size_t>(r) * in + j] =
                static_cast<int32_t>(q);
            float dq = zero + scale * q;
            float err = (row[j] - dq) / uat(j, j);
            row[j] = dq;
            // Distribute the rounding error to later columns.
            for (size_t jj = j + 1; jj < in; ++jj) {
                row[jj] -= err * uat(j, jj);
            }
        }
    }

    if (quantized) {
        quantized->shape = w.shape();
        quantized->bits = config.bits;
        quantized->groupSize = g;
        quantized->packed = packBits(idx, config.bits);
        quantized->scales = scales;
        quantized->zeros = zeros;
    }
    return Tensor::fromVector(wv, w.shape(), w.device());
}

} // namespace quant
} // namespace edkm
