/**
 * @file
 * GPTQ (Frantar et al., 2023): post-training quantisation with
 * second-order error compensation — a Table 3 baseline.
 *
 * Quantises a weight matrix column by column; after each column the
 * remaining (not yet quantised) columns absorb the rounding error scaled
 * by the inverse Hessian of the layer reconstruction problem
 * H = 2 X^T X, estimated from calibration activations.
 */

#ifndef EDKM_QUANT_GPTQ_H_
#define EDKM_QUANT_GPTQ_H_

#include <cstdint>

#include "quant/affine.h"
#include "tensor/tensor.h"

namespace edkm {
namespace quant {

/** GPTQ hyper-parameters. */
struct GptqConfig
{
    int bits = 4;
    int64_t groupSize = 128;
    /** Dampening fraction of mean diag(H) added before inversion. */
    float percdamp = 0.01f;
};

/**
 * Quantise @p w [out, in] given calibration inputs @p x [n, in].
 *
 * @param[out] quantized  optional storage-format output (for size
 *                        accounting).
 * @return the dequantised weight to install in the layer.
 */
Tensor gptqQuantize(const Tensor &w, const Tensor &x,
                    const GptqConfig &config,
                    QuantizedMatrix *quantized = nullptr);

} // namespace quant
} // namespace edkm

#endif // EDKM_QUANT_GPTQ_H_
