/**
 * @file
 * Group-wise affine (uniform) quantisation and the RTN baseline.
 *
 * Round-to-nearest (RTN) with per-group scale/zero-point is the simplest
 * Table 3 baseline and the inner quantiser of GPTQ/AWQ. Groups of
 * `groupSize` consecutive elements along each row share a scale and
 * zero-point (the paper's baselines use g128); groupSize <= 0 selects
 * one group per row (per-channel).
 */

#ifndef EDKM_QUANT_AFFINE_H_
#define EDKM_QUANT_AFFINE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace edkm {
namespace quant {

/** A uniform-quantised 2-D weight matrix (storage format). */
struct QuantizedMatrix
{
    Shape shape;            ///< original [out, in]
    int bits = 4;
    int64_t groupSize = 128;
    std::vector<uint8_t> packed;  ///< bit-packed indices, row-major
    std::vector<float> scales;    ///< one per group
    std::vector<float> zeros;     ///< one per group (asymmetric)

    /** Reconstruct the dense matrix. */
    Tensor dequantize(Device dev = Device::cpu()) const;

    /** Serialized bytes: packed payload + FP16 scale/zero per group. */
    int64_t payloadBytes() const;

    /** Effective bits per weight including metadata. */
    double bitsPerWeight() const;

    /**
     * Binary (de)serialisation (stable little-endian format; scales
     * and zero-points round through FP16, their storage precision).
     * deserialize bounds-checks every read and validates the header.
     */
    std::vector<uint8_t> serialize() const;
    static QuantizedMatrix deserialize(const std::vector<uint8_t> &bytes);
};

/**
 * Quantise @p w (2-D) with round-to-nearest to @p bits per weight using
 * asymmetric per-group min/max scaling.
 */
QuantizedMatrix quantizeAffine(const Tensor &w, int bits,
                               int64_t group_size);

/** RTN baseline: quantise then dequantise in one call. */
Tensor rtnQuantize(const Tensor &w, int bits, int64_t group_size);

/** Elementwise fake-quant (quantise-dequantise) used by QAT; symmetric
 *  per-group max scaling, matching LLM-QAT's MinMax quantiser. */
Tensor fakeQuantizeData(const Tensor &w, int bits, int64_t group_size);

} // namespace quant
} // namespace edkm

#endif // EDKM_QUANT_AFFINE_H_
