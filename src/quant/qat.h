/**
 * @file
 * LLM-QAT-style quantisation-aware training — a Table 3 baseline.
 *
 * Weights pass through a fake-quantiser (symmetric MinMax, matching
 * LLM-QAT) during the forward pass; the straight-through estimator (STE)
 * passes gradients unchanged, so fine-tuning adapts the full-precision
 * weights to the quantisation grid.
 */

#ifndef EDKM_QUANT_QAT_H_
#define EDKM_QUANT_QAT_H_

#include <memory>

#include "autograd/variable.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace edkm {
namespace quant {

/**
 * Differentiable fake-quantisation: forward rounds @p w to a @p bits
 * symmetric per-group grid; backward is the identity (STE).
 */
Variable fakeQuantize(const Variable &w, int bits, int64_t group_size);

/** Linear whose weight is fake-quantised every forward (QAT). */
class QatLinear : public nn::Module
{
  public:
    QatLinear(std::shared_ptr<nn::Linear> inner, int bits,
              int64_t group_size = -1);

    Variable forward(const Variable &x);

    std::string kind() const override { return "qat_linear"; }

    nn::Linear &inner() { return *inner_; }

  private:
    std::shared_ptr<nn::Linear> inner_;
    int bits_;
    int64_t group_size_;
};

} // namespace quant
} // namespace edkm

#endif // EDKM_QUANT_QAT_H_
