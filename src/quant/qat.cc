#include "quant/qat.h"

#include "autograd/functional.h"
#include "autograd/node.h"
#include "quant/affine.h"

namespace edkm {
namespace quant {

namespace {

/** STE: gradient passes through the rounding unchanged. */
class FakeQuantNode : public Node
{
  public:
    FakeQuantNode() : Node("fake_quant") {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {g};
    }
};

} // namespace

Variable
fakeQuantize(const Variable &w, int bits, int64_t group_size)
{
    Tensor dq = fakeQuantizeData(w.data(), bits, group_size);
    return makeResult(std::move(dq), {w},
                      [&] { return std::make_shared<FakeQuantNode>(); });
}

QatLinear::QatLinear(std::shared_ptr<nn::Linear> inner, int bits,
                     int64_t group_size)
    : inner_(registerModule("inner", std::move(inner))),
      bits_(bits),
      group_size_(group_size)
{
}

Variable
QatLinear::forward(const Variable &x)
{
    Variable wq = fakeQuantize(inner_->weight(), bits_, group_size_);
    Variable out = af::matmul(x, af::transpose(wq, 0, 1));
    if (inner_->bias().defined()) {
        out = af::add(out, inner_->bias());
    }
    return out;
}

} // namespace quant
} // namespace edkm
