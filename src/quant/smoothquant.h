/**
 * @file
 * SmoothQuant (Xiao et al., 2023): activation-outlier smoothing for
 * joint weight+activation quantisation (mentioned alongside the paper's
 * Table 3 baselines).
 *
 * Migrates quantisation difficulty from activations to weights with a
 * per-channel scale s_c = max|X_c|^alpha / max|W_c|^(1-alpha); the layer
 * computes (X diag(1/s)) (diag(s) W^T) so the product is unchanged, but
 * both factors quantise with less clipping error.
 */

#ifndef EDKM_QUANT_SMOOTHQUANT_H_
#define EDKM_QUANT_SMOOTHQUANT_H_

#include <vector>

#include "tensor/tensor.h"

namespace edkm {
namespace quant {

/** SmoothQuant hyper-parameters. */
struct SmoothQuantConfig
{
    float alpha = 0.5f; ///< migration strength
    int weightBits = 8;
    int activationBits = 8;
};

/** Output of the smoothing transform. */
struct SmoothedLayer
{
    Tensor weight;             ///< diag(s) folded into W (quantised)
    std::vector<float> scales; ///< per-channel s to fold into X (1/s)
};

/**
 * Smooth and quantise @p w [out,in] given calibration @p x [n,in].
 * Activations are quantised dynamically per-tensor at @p
 * config.activationBits when simulateActivationQuant runs them through
 * quantizeActivations().
 */
SmoothedLayer smoothQuantize(const Tensor &w, const Tensor &x,
                             const SmoothQuantConfig &config);

/** Dynamic per-tensor symmetric activation fake-quant. */
Tensor quantizeActivations(const Tensor &x, int bits);

} // namespace quant
} // namespace edkm

#endif // EDKM_QUANT_SMOOTHQUANT_H_
