#include "quant/smoothquant.h"

#include <algorithm>
#include <cmath>

#include "quant/affine.h"
#include "util/logging.h"

namespace edkm {
namespace quant {

SmoothedLayer
smoothQuantize(const Tensor &w, const Tensor &x,
               const SmoothQuantConfig &config)
{
    EDKM_CHECK(w.dim() == 2 && x.dim() == 2 && x.size(1) == w.size(1),
               "smoothquant: shape mismatch");
    int64_t out = w.size(0), in = w.size(1);

    // Per-channel maxima.
    std::vector<float> xv = x.toVector();
    std::vector<float> wv = w.toVector();
    std::vector<float> xmax(static_cast<size_t>(in), 1e-8f);
    std::vector<float> wmax(static_cast<size_t>(in), 1e-8f);
    int64_t nsamp = x.size(0);
    for (int64_t s = 0; s < nsamp; ++s) {
        for (int64_t c = 0; c < in; ++c) {
            xmax[static_cast<size_t>(c)] =
                std::max(xmax[static_cast<size_t>(c)],
                         std::fabs(xv[static_cast<size_t>(s * in + c)]));
        }
    }
    for (int64_t r = 0; r < out; ++r) {
        for (int64_t c = 0; c < in; ++c) {
            wmax[static_cast<size_t>(c)] =
                std::max(wmax[static_cast<size_t>(c)],
                         std::fabs(wv[static_cast<size_t>(r * in + c)]));
        }
    }

    SmoothedLayer result;
    result.scales.resize(static_cast<size_t>(in));
    for (int64_t c = 0; c < in; ++c) {
        float s = std::pow(xmax[static_cast<size_t>(c)], config.alpha) /
                  std::pow(wmax[static_cast<size_t>(c)],
                           1.0f - config.alpha);
        result.scales[static_cast<size_t>(c)] = std::max(s, 1e-5f);
    }
    // Fold s into W columns, then quantise the smoothed weight.
    for (int64_t r = 0; r < out; ++r) {
        for (int64_t c = 0; c < in; ++c) {
            wv[static_cast<size_t>(r * in + c)] *=
                result.scales[static_cast<size_t>(c)];
        }
    }
    Tensor smoothed = Tensor::fromVector(wv, w.shape(), w.device());
    Tensor dq = fakeQuantizeData(smoothed, config.weightBits, -1);
    // Fold the scales back out so callers can drop the layer in place
    // (activation side handled by quantizeActivations at run time).
    std::vector<float> dqv = dq.toVector();
    for (int64_t r = 0; r < out; ++r) {
        for (int64_t c = 0; c < in; ++c) {
            dqv[static_cast<size_t>(r * in + c)] /=
                result.scales[static_cast<size_t>(c)];
        }
    }
    result.weight = Tensor::fromVector(dqv, w.shape(), w.device());
    return result;
}

Tensor
quantizeActivations(const Tensor &x, int bits)
{
    float qmax = static_cast<float>((1 << (bits - 1)) - 1);
    float mx = 0.0f;
    int64_t n = x.numel();
    for (int64_t i = 0; i < n; ++i) {
        mx = std::max(mx, std::fabs(x.flatAt(i)));
    }
    float scale = mx > 0.0f ? mx / qmax : 1.0f;
    Tensor out = Tensor::empty(x.shape(), DType::kF32, x.device());
    for (int64_t i = 0; i < n; ++i) {
        float v = std::round(x.flatAt(i) / scale);
        out.setFlatAt(i, std::clamp(v, -qmax, qmax) * scale);
    }
    return out;
}

} // namespace quant
} // namespace edkm
