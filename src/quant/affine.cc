#include "quant/affine.h"

#include <algorithm>
#include <cmath>

#include "core/palettize.h" // packBits/unpackBits
#include "util/half.h"
#include "util/logging.h"
#include "util/serial.h"

namespace edkm {
namespace quant {

namespace {

int64_t
resolveGroup(int64_t in, int64_t group_size)
{
    if (group_size <= 0 || group_size > in) {
        return in; // per-channel (one group per row)
    }
    return group_size;
}

} // namespace

QuantizedMatrix
quantizeAffine(const Tensor &w, int bits, int64_t group_size)
{
    EDKM_CHECK(w.dim() == 2, "quantizeAffine: expects a 2-D matrix");
    EDKM_CHECK(bits >= 1 && bits <= 8, "quantizeAffine: bits in [1,8]");
    int64_t out = w.size(0), in = w.size(1);
    int64_t g = resolveGroup(in, group_size);

    QuantizedMatrix q;
    q.shape = w.shape();
    q.bits = bits;
    q.groupSize = g;
    int64_t qmax = (1 << bits) - 1;
    std::vector<int32_t> idx(static_cast<size_t>(out * in));

    std::vector<float> vals = w.toVector();
    for (int64_t r = 0; r < out; ++r) {
        for (int64_t g0 = 0; g0 < in; g0 += g) {
            int64_t glen = std::min(g, in - g0); // ragged last group
            const float *block = vals.data() + r * in + g0;
            float lo = block[0], hi = block[0];
            for (int64_t i = 1; i < glen; ++i) {
                lo = std::min(lo, block[i]);
                hi = std::max(hi, block[i]);
            }
            float scale = (hi - lo) / static_cast<float>(qmax);
            if (scale <= 0.0f) {
                scale = 1.0f;
            }
            // Store scale/zero in FP16 as deployed.
            scale = roundToFp16(scale);
            float zero = roundToFp16(lo);
            q.scales.push_back(scale);
            q.zeros.push_back(zero);
            for (int64_t i = 0; i < glen; ++i) {
                float v = std::round((block[i] - zero) / scale);
                int32_t u = static_cast<int32_t>(
                    std::clamp(v, 0.0f, static_cast<float>(qmax)));
                idx[static_cast<size_t>(r * in + g0 + i)] = u;
            }
        }
    }
    q.packed = packBits(idx, bits);
    return q;
}

Tensor
QuantizedMatrix::dequantize(Device dev) const
{
    int64_t out = shape[0], in = shape[1];
    std::vector<int32_t> idx = unpackBits(packed, bits, out * in);
    Tensor t = Tensor::empty(shape, DType::kF32, dev);
    float *p = t.rawData<float>();
    int64_t groups_per_row = (in + groupSize - 1) / groupSize;
    for (int64_t r = 0; r < out; ++r) {
        for (int64_t i = 0; i < in; ++i) {
            int64_t gidx = r * groups_per_row + i / groupSize;
            p[r * in + i] =
                zeros[static_cast<size_t>(gidx)] +
                scales[static_cast<size_t>(gidx)] *
                    static_cast<float>(idx[static_cast<size_t>(r * in + i)]);
        }
    }
    return t;
}

int64_t
QuantizedMatrix::payloadBytes() const
{
    // Packed indices + FP16 scale + FP16 zero per group.
    return static_cast<int64_t>(packed.size()) +
           static_cast<int64_t>(scales.size()) * 2 +
           static_cast<int64_t>(zeros.size()) * 2;
}

double
QuantizedMatrix::bitsPerWeight() const
{
    int64_t n = shape[0] * shape[1];
    return 8.0 * static_cast<double>(payloadBytes()) /
           static_cast<double>(n);
}

namespace {

constexpr uint32_t kAffineMagic = 0x454b4d41u; // "AMKE"

} // namespace

std::vector<uint8_t>
QuantizedMatrix::serialize() const
{
    std::vector<uint8_t> buf;
    serial::appendPod(buf, kAffineMagic);
    serial::appendPod(buf, static_cast<uint32_t>(bits));
    serial::appendPod(buf, shape[0]);
    serial::appendPod(buf, shape[1]);
    serial::appendPod(buf, groupSize);
    serial::appendPod(buf, static_cast<uint32_t>(scales.size()));
    for (size_t i = 0; i < scales.size(); ++i) {
        serial::appendPod(buf, floatToFp16(scales[i]));
        serial::appendPod(buf, floatToFp16(zeros[i]));
    }
    serial::appendBytes(buf, packed);
    return buf;
}

QuantizedMatrix
QuantizedMatrix::deserialize(const std::vector<uint8_t> &bytes)
{
    size_t at = 0;
    EDKM_CHECK(serial::readPod<uint32_t>(bytes, at) == kAffineMagic,
               "QuantizedMatrix::deserialize: bad magic");
    QuantizedMatrix q;
    q.bits = static_cast<int>(serial::readPod<uint32_t>(bytes, at));
    EDKM_CHECK(q.bits >= 1 && q.bits <= 8,
               "QuantizedMatrix::deserialize: bits out of range: ",
               q.bits);
    int64_t out = serial::readPod<int64_t>(bytes, at);
    int64_t in = serial::readPod<int64_t>(bytes, at);
    EDKM_CHECK(out > 0 && in > 0 && out <= (int64_t{1} << 32) &&
                   in <= (int64_t{1} << 32),
               "QuantizedMatrix::deserialize: bad shape [", out, ", ",
               in, "]");
    q.shape = {out, in};
    q.groupSize = serial::readPod<int64_t>(bytes, at);
    EDKM_CHECK(q.groupSize >= 1 && q.groupSize <= in,
               "QuantizedMatrix::deserialize: bad group size ",
               q.groupSize);
    uint32_t groups = serial::readPod<uint32_t>(bytes, at);
    int64_t groups_per_row = (in + q.groupSize - 1) / q.groupSize;
    EDKM_CHECK(static_cast<int64_t>(groups) == out * groups_per_row,
               "QuantizedMatrix::deserialize: expected ",
               out * groups_per_row, " groups, got ", groups);
    q.scales.reserve(groups);
    q.zeros.reserve(groups);
    for (uint32_t i = 0; i < groups; ++i) {
        q.scales.push_back(fp16ToFloat(serial::readPod<uint16_t>(bytes, at)));
        q.zeros.push_back(fp16ToFloat(serial::readPod<uint16_t>(bytes, at)));
    }
    q.packed = serial::readBytes(bytes, at);
    EDKM_CHECK(static_cast<int64_t>(q.packed.size()) ==
                   (out * in * q.bits + 7) / 8,
               "QuantizedMatrix::deserialize: packed stream is ",
               q.packed.size(), " bytes, expected ",
               (out * in * q.bits + 7) / 8);
    EDKM_CHECK(at == bytes.size(),
               "QuantizedMatrix::deserialize: ", bytes.size() - at,
               " trailing bytes");
    return q;
}

Tensor
rtnQuantize(const Tensor &w, int bits, int64_t group_size)
{
    return quantizeAffine(w, bits, group_size).dequantize(w.device());
}

Tensor
fakeQuantizeData(const Tensor &w, int bits, int64_t group_size)
{
    EDKM_CHECK(w.dim() == 2, "fakeQuantizeData: expects 2-D");
    int64_t out = w.size(0), in = w.size(1);
    int64_t g = resolveGroup(in, group_size);
    // Symmetric: levels in [-2^{b-1}+1, 2^{b-1}-1] scaled by max|w|.
    float qmax = static_cast<float>((1 << (bits - 1)) - 1);
    std::vector<float> vals = w.toVector();
    Tensor t = Tensor::empty(w.shape(), DType::kF32, w.device());
    float *p = t.rawData<float>();
    for (int64_t r = 0; r < out; ++r) {
        for (int64_t g0 = 0; g0 < in; g0 += g) {
            int64_t glen = std::min(g, in - g0);
            const float *block = vals.data() + r * in + g0;
            float mx = 0.0f;
            for (int64_t i = 0; i < glen; ++i) {
                mx = std::max(mx, std::fabs(block[i]));
            }
            float scale = mx > 0.0f ? mx / qmax : 1.0f;
            for (int64_t i = 0; i < glen; ++i) {
                float v = std::round(block[i] / scale);
                v = std::clamp(v, -qmax, qmax);
                p[r * in + g0 + i] = v * scale;
            }
        }
    }
    return t;
}

} // namespace quant
} // namespace edkm
