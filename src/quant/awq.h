/**
 * @file
 * AWQ (Lin et al., 2023): activation-aware weight quantisation — a
 * Table 3 baseline.
 *
 * Observes that a small fraction of weight channels matters most, in
 * proportion to activation magnitude. Scales input channels by
 * s_c = mean(|X_c|)^alpha before RTN quantisation and folds 1/s back
 * after, grid-searching alpha to minimise the layer output error on
 * calibration data.
 */

#ifndef EDKM_QUANT_AWQ_H_
#define EDKM_QUANT_AWQ_H_

#include "quant/affine.h"
#include "tensor/tensor.h"

namespace edkm {
namespace quant {

/** AWQ hyper-parameters. */
struct AwqConfig
{
    int bits = 4;
    int64_t groupSize = 128;
    int gridPoints = 20; ///< alpha grid resolution over [0,1)
};

/** Result of the alpha search (for diagnostics/tests). */
struct AwqResult
{
    float bestAlpha = 0.0f;
    float bestError = 0.0f;
    float rtnError = 0.0f; ///< error at alpha=0 (plain RTN)
};

/**
 * Quantise @p w [out,in] using calibration inputs @p x [n,in].
 * @param[out] result optional search diagnostics.
 * @return dequantised weight (scales folded back).
 */
Tensor awqQuantize(const Tensor &w, const Tensor &x,
                   const AwqConfig &config, AwqResult *result = nullptr);

} // namespace quant
} // namespace edkm

#endif // EDKM_QUANT_AWQ_H_
