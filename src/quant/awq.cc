#include "quant/awq.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {
namespace quant {

Tensor
awqQuantize(const Tensor &w, const Tensor &x, const AwqConfig &config,
            AwqResult *result)
{
    EDKM_CHECK(w.dim() == 2, "awq: weight must be 2-D");
    EDKM_CHECK(x.dim() == 2 && x.size(1) == w.size(1),
               "awq: calibration inputs must be [n, in]");
    int64_t in = w.size(1);

    // Per-input-channel activation magnitude.
    std::vector<float> xv = x.toVector();
    int64_t nsamp = x.size(0);
    std::vector<float> act(static_cast<size_t>(in), 0.0f);
    for (int64_t s = 0; s < nsamp; ++s) {
        for (int64_t c = 0; c < in; ++c) {
            act[static_cast<size_t>(c)] +=
                std::fabs(xv[static_cast<size_t>(s * in + c)]);
        }
    }
    for (float &a : act) {
        a = std::max(a / static_cast<float>(nsamp), 1e-8f);
    }

    // Reference output W X^T (transposed layout: per-sample rows).
    Tensor ref = matmul(x, w.transpose(0, 1)); // [n, out]

    auto quantize_with_alpha = [&](float alpha, float *err_out) {
        // Scale columns, RTN, unscale.
        std::vector<float> s(static_cast<size_t>(in));
        for (int64_t c = 0; c < in; ++c) {
            s[static_cast<size_t>(c)] =
                std::pow(act[static_cast<size_t>(c)], alpha);
        }
        std::vector<float> wv = w.toVector();
        int64_t out = w.size(0);
        for (int64_t r = 0; r < out; ++r) {
            for (int64_t c = 0; c < in; ++c) {
                wv[static_cast<size_t>(r * in + c)] *=
                    s[static_cast<size_t>(c)];
            }
        }
        Tensor scaled = Tensor::fromVector(wv, w.shape(), w.device());
        Tensor dq = rtnQuantize(scaled, config.bits, config.groupSize);
        std::vector<float> dqv = dq.toVector();
        for (int64_t r = 0; r < out; ++r) {
            for (int64_t c = 0; c < in; ++c) {
                dqv[static_cast<size_t>(r * in + c)] /=
                    s[static_cast<size_t>(c)];
            }
        }
        Tensor deq = Tensor::fromVector(dqv, w.shape(), w.device());
        if (err_out) {
            Tensor got = matmul(x, deq.transpose(0, 1));
            Tensor diff = sub(got, ref);
            *err_out = sumAll(square(diff)).item();
        }
        return deq;
    };

    float best_alpha = 0.0f;
    float best_err = 0.0f;
    float rtn_err = 0.0f;
    for (int gi = 0; gi < config.gridPoints; ++gi) {
        float alpha = static_cast<float>(gi) /
                      static_cast<float>(config.gridPoints);
        float err = 0.0f;
        quantize_with_alpha(alpha, &err);
        if (gi == 0) {
            rtn_err = err;
        }
        if (gi == 0 || err < best_err) {
            best_err = err;
            best_alpha = alpha;
        }
    }
    if (result) {
        result->bestAlpha = best_alpha;
        result->bestError = best_err;
        result->rtnError = rtn_err;
    }
    return quantize_with_alpha(best_alpha, nullptr);
}

} // namespace quant
} // namespace edkm
