#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "device/device_manager.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "util/logging.h"

namespace edkm {

namespace {

using runtime::grainFor;
using runtime::grainForAligned;
using runtime::parallelFor;
using runtime::parallelReduce;

/** Contiguous-binary kernel signature from the dispatch table. */
using BinKernel = void (*)(const float *, const float *, float *,
                           int64_t);

/**
 * Apply a kernel/functor pair elementwise over a broadcast pair into a
 * fresh tensor: the vector @p kern covers the contiguous same-shape fast
 * path, the inlined scalar functor @p f the general broadcast walk (no
 * std::function dispatch in either).
 */
template <typename F>
Tensor
binaryOp(const Tensor &a, const Tensor &b, BinKernel kern, const F &f)
{
    Shape out_shape = broadcastShape(a.shape(), b.shape());
    Tensor out = Tensor::empty(out_shape, DType::kF32, a.device());
    int64_t n = out.numel();
    Tensor ac = toF32Contig(a);
    Tensor bc = toF32Contig(b);
    const float *pa = ac.rawData<float>();
    const float *pb = bc.rawData<float>();
    float *po = out.rawData<float>();

    // Fast path: identical shapes.
    if (a.shape() == b.shape()) {
        parallelFor(0, n, grainForAligned(n, 1, kernels::kAccLanes),
                    [&](int64_t cb, int64_t ce) {
                        kern(pa + cb, pb + cb, po + cb, ce - cb);
                    });
        chargeFlops(static_cast<double>(n), a.device());
        return out;
    }

    // General broadcast path: odometer walk with per-dim stride deltas
    // (stride 0 on broadcast dimensions). Each chunk re-derives its
    // odometer state from its first flat index, so chunks are
    // independent.
    int64_t rank = static_cast<int64_t>(out_shape.size());
    std::vector<int64_t> sa(rank, 0), sb(rank, 0);
    int64_t acc_a = 1, acc_b = 1;
    for (int64_t d = rank - 1; d >= 0; --d) {
        int64_t off_a = d - (rank - ac.dim());
        int64_t off_b = d - (rank - bc.dim());
        int64_t dim_a = off_a >= 0 ? ac.shape()[off_a] : 1;
        int64_t dim_b = off_b >= 0 ? bc.shape()[off_b] : 1;
        sa[d] = (dim_a == 1) ? 0 : acc_a;
        sb[d] = (dim_b == 1) ? 0 : acc_b;
        acc_a *= dim_a;
        acc_b *= dim_b;
    }
    parallelFor(0, n, grainFor(n), [&](int64_t cb, int64_t ce) {
        std::vector<int64_t> idx(rank, 0);
        int64_t rem = cb;
        int64_t oa = 0, ob = 0;
        for (int64_t d = rank - 1; d >= 0; --d) {
            idx[d] = rem % out_shape[d];
            rem /= out_shape[d];
            oa += idx[d] * sa[d];
            ob += idx[d] * sb[d];
        }
        for (int64_t i = cb; i < ce; ++i) {
            po[i] = f(pa[oa], pb[ob]);
            for (int64_t d = rank - 1; d >= 0; --d) {
                oa += sa[d];
                ob += sb[d];
                if (++idx[d] < out_shape[d]) {
                    break;
                }
                idx[d] = 0;
                oa -= sa[d] * out_shape[d];
                ob -= sb[d] * out_shape[d];
            }
        }
    });
    chargeFlops(static_cast<double>(n), a.device());
    return out;
}

/** Apply the scalar functor @p f elementwise (cold ops with no vector
 *  kernel: pow, log, reciprocal). */
template <typename F>
Tensor
unaryOp(const Tensor &a, const F &f)
{
    Tensor out = Tensor::empty(a.shape(), DType::kF32, a.device());
    int64_t n = a.numel();
    float *po = out.rawData<float>();
    if (a.isContiguous() && a.dtype() == DType::kF32) {
        const float *pa = a.rawData<float>();
        parallelFor(0, n, grainFor(n), [&](int64_t cb, int64_t ce) {
            for (int64_t i = cb; i < ce; ++i) {
                po[i] = f(pa[i]);
            }
        });
    } else {
        parallelFor(0, n, grainFor(n, 4), [&](int64_t cb, int64_t ce) {
            for (int64_t i = cb; i < ce; ++i) {
                po[i] = f(a.flatAt(i));
            }
        });
    }
    chargeFlops(static_cast<double>(n), a.device());
    return out;
}

/**
 * Apply a contiguous vector kernel elementwise. Non-contiguous or
 * non-f32 inputs are compacted first (single fused pass) so every
 * layout runs the same kernel — results never depend on strides.
 */
template <typename K>
Tensor
unaryKernelOp(const Tensor &a, const K &kern_call)
{
    Tensor ac = toF32Contig(a);
    Tensor out = Tensor::empty(a.shape(), DType::kF32, a.device());
    int64_t n = a.numel();
    const float *pa = ac.rawData<const float>();
    float *po = out.rawData<float>();
    parallelFor(0, n, grainForAligned(n, 1, kernels::kAccLanes),
                [&](int64_t cb, int64_t ce) {
                    kern_call(pa + cb, po + cb, ce - cb);
                });
    chargeFlops(static_cast<double>(n), a.device());
    return out;
}

} // namespace

Tensor
toF32Contig(const Tensor &t)
{
    if (t.dtype() == DType::kF32) {
        return t.isContiguous() ? t : t.contiguous();
    }
    if (t.isContiguous()) {
        return t.to(DType::kF32);
    }
    // Strided read + dtype conversion fused into one pass (instead of a
    // contiguous() copy followed by a full to(kF32) re-copy).
    Tensor out = Tensor::empty(t.shape(), DType::kF32, t.device());
    float *po = out.rawData<float>();
    int64_t n = t.numel();
    parallelFor(0, n, grainFor(n, 4), [&](int64_t cb, int64_t ce) {
        for (int64_t i = cb; i < ce; ++i) {
            po[i] = t.flatAt(i);
        }
    });
    return out;
}

Shape
broadcastShape(const Shape &a, const Shape &b)
{
    size_t rank = std::max(a.size(), b.size());
    Shape out(rank);
    for (size_t i = 0; i < rank; ++i) {
        int64_t da = (i < rank - a.size()) ? 1 : a[i - (rank - a.size())];
        int64_t db = (i < rank - b.size()) ? 1 : b[i - (rank - b.size())];
        if (da == db || da == 1 || db == 1) {
            out[i] = std::max(da, db);
        } else {
            fatal("broadcastShape: incompatible dims ", da, " vs ", db);
        }
    }
    return out;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, kernels::active().add,
                    [](float x, float y) { return x + y; });
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, kernels::active().sub,
                    [](float x, float y) { return x - y; });
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, kernels::active().mul,
                    [](float x, float y) { return x * y; });
}

Tensor
div(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, kernels::active().div,
                    [](float x, float y) { return x / y; });
}

Tensor
addScalar(const Tensor &a, float s)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt, s](const float *p, float *o,
                                     int64_t n) { kt.offset(p, s, o, n); });
}

Tensor
mulScalar(const Tensor &a, float s)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt, s](const float *p, float *o,
                                     int64_t n) { kt.scale(p, s, o, n); });
}

Tensor
powScalar(const Tensor &a, float p)
{
    return unaryOp(a, [p](float x) { return std::pow(x, p); });
}

Tensor
neg(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.negate(p, o, n);
    });
}

Tensor
expT(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.expv(p, o, n);
    });
}

Tensor
logT(const Tensor &a)
{
    return unaryOp(a, [](float x) { return std::log(x); });
}

Tensor
sqrtT(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.sqrtv(p, o, n);
    });
}

Tensor
absT(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.absval(p, o, n);
    });
}

Tensor
square(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.squarev(p, o, n);
    });
}

Tensor
reciprocal(const Tensor &a)
{
    return unaryOp(a, [](float x) { return 1.0f / x; });
}

Tensor
clampT(const Tensor &a, float lo, float hi)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a,
                         [&kt, lo, hi](const float *p, float *o,
                                       int64_t n) {
                             kt.clampv(p, lo, hi, o, n);
                         });
}

Tensor
silu(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.siluv(p, o, n);
    });
}

Tensor
relu(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.reluv(p, o, n);
    });
}

Tensor
sigmoid(const Tensor &a)
{
    const kernels::KernelTable &kt = kernels::active();
    return unaryKernelOp(a, [&kt](const float *p, float *o, int64_t n) {
        kt.sigmoidv(p, o, n);
    });
}

namespace {

/**
 * Core 2-D matmul on contiguous f32 buffers. Shape-specialised onto the
 * kernel layer: a blocked matvec for [m,k]x[k,1] (attention pooling,
 * W~ = A*C), a column-parallel single row for [1,k]x[k,n], and an
 * axpy-based row loop for the general case — all chunk-deterministic.
 *
 * Row-shape invariance: every output element of the m==1 and general
 * paths accumulates in the same ascending-p order with the same zero
 * skip, so row i of an [m,k]x[k,n] product is bit-identical to the
 * [1,k]x[k,n] product of row i alone. KV-cache incremental decode
 * (serve/engine) relies on this to reproduce full-prefix logits
 * bit-exactly from single-position forwards.
 */
void
matmul2d(const float *a, const float *b, float *c, int64_t m, int64_t k,
         int64_t n)
{
    const kernels::KernelTable &kt = kernels::active();
    if (n == 1) {
        // Matvec: one fixed-lane dot per output row.
        parallelFor(0, m, grainFor(m, 2 * k),
                    [&](int64_t rb, int64_t re) {
                        kt.matvec(a + rb * k, re - rb, k, b, c + rb);
                    });
        return;
    }
    if (m == 1) {
        // One row: parallelise over output columns; axpy is elementwise,
        // so each element still accumulates ascending-p with zero skip —
        // identical to the row loop below at any thread count.
        parallelFor(0, n, grainFor(n, 2 * k), [&](int64_t cb, int64_t ce) {
            std::fill(c + cb, c + ce, 0.0f);
            for (int64_t p = 0; p < k; ++p) {
                float av = a[p];
                if (av == 0.0f) {
                    continue;
                }
                kt.axpy(b + p * n + cb, av, c + cb, ce - cb);
            }
        });
        return;
    }
    parallelFor(0, m, grainFor(m, 2 * k * n), [&](int64_t rb, int64_t re) {
        std::fill(c + rb * n, c + re * n, 0.0f);
        for (int64_t i = rb; i < re; ++i) {
            for (int64_t p = 0; p < k; ++p) {
                float av = a[i * k + p];
                if (av == 0.0f) {
                    continue;
                }
                kt.axpy(b + p * n, av, c + i * n, n);
            }
        }
    });
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    EDKM_CHECK(a.dim() >= 2 && b.dim() >= 2, "matmul: need >=2-d operands");
    Tensor ac = toF32Contig(a);
    Tensor bc = toF32Contig(b);

    if (ac.dim() == 2 && bc.dim() == 2) {
        int64_t m = ac.size(0), k = ac.size(1);
        EDKM_CHECK(bc.size(0) == k, "matmul: inner dims ", k, " vs ",
                   bc.size(0));
        int64_t n = bc.size(1);
        Tensor out = Tensor::empty({m, n}, DType::kF32, ac.device());
        matmul2d(ac.rawData<float>(), bc.rawData<float>(),
                 out.rawData<float>(), m, k, n);
        chargeFlops(2.0 * m * k * n, ac.device());
        return out;
    }

    // Batched: [b,m,k] x [b,k,n] or [b,m,k] x [k,n].
    EDKM_CHECK(ac.dim() == 3, "matmul: unsupported ranks");
    int64_t bs = ac.size(0), m = ac.size(1), k = ac.size(2);
    bool b_batched = bc.dim() == 3;
    int64_t n = b_batched ? bc.size(2) : bc.size(1);
    EDKM_CHECK((b_batched ? bc.size(1) : bc.size(0)) == k,
               "matmul: inner dim mismatch");
    if (b_batched) {
        EDKM_CHECK(bc.size(0) == bs, "matmul: batch mismatch");
    }
    Tensor out = Tensor::empty({bs, m, n}, DType::kF32, ac.device());
    const float *pa = ac.rawData<float>();
    const float *pb = bc.rawData<float>();
    float *po = out.rawData<float>();
    for (int64_t i = 0; i < bs; ++i) {
        matmul2d(pa + i * m * k, b_batched ? pb + i * k * n : pb,
                 po + i * m * n, m, k, n);
    }
    chargeFlops(2.0 * bs * m * k * n, ac.device());
    return out;
}

Tensor
matmulStreamed(const Tensor &a, int64_t k, int64_t n,
               const MatmulRowFill &fill)
{
    EDKM_CHECK(a.dim() == 2, "matmulStreamed: left operand must be 2-d");
    EDKM_CHECK(k >= 1 && n >= 1, "matmulStreamed: bad B geometry [", k,
               ",", n, "]");
    Tensor ac = toF32Contig(a);
    EDKM_CHECK(ac.size(1) == k, "matmulStreamed: inner dims ", ac.size(1),
               " vs ", k);
    int64_t m = ac.size(0);
    Tensor out = Tensor::empty({m, n}, DType::kF32, ac.device());
    const float *pa = ac.rawData<float>();
    float *pc = out.rawData<float>();
    const kernels::KernelTable &kt = kernels::active();

    if (n == 1) {
        // Matvec: B is one column; mirror matmul2d's fixed-lane dots.
        std::vector<float> b(static_cast<size_t>(k));
        fill(0, k, b.data());
        parallelFor(0, m, grainFor(m, 2 * k),
                    [&](int64_t rb, int64_t re) {
                        kt.matvec(pa + rb * k, re - rb, k, b.data(),
                                  pc + rb);
                    });
    } else if (m == 1) {
        // One row: stream B tiles in ascending-p order and parallelise
        // over output columns. Each element accumulates ascending-p with
        // the same zero skip as matmul2d's m==1 path, preserving the
        // row-shape invariance the KV-cache decode path relies on.
        // Tile decompression parallelises over disjoint row ranges —
        // fill values are threading-independent, and the accumulation
        // below only starts after the whole tile is in place, so the
        // FP op sequence is untouched.
        std::fill(pc, pc + n, 0.0f);
        int64_t tile_rows =
            std::max<int64_t>(1, std::min(k, (256 << 10) / (n * 4)));
        std::vector<float> tile(static_cast<size_t>(tile_rows * n));
        for (int64_t p0 = 0; p0 < k; p0 += tile_rows) {
            int64_t p1 = std::min(k, p0 + tile_rows);
            float *pt = tile.data();
            parallelFor(p0, p1, grainFor(p1 - p0, n),
                        [&](int64_t fb, int64_t fe) {
                            fill(fb, fe, pt + (fb - p0) * n);
                        });
            parallelFor(0, n, grainFor(n, 2 * (p1 - p0)),
                        [&](int64_t cb, int64_t ce) {
                            for (int64_t p = p0; p < p1; ++p) {
                                float av = pa[p];
                                if (av == 0.0f) {
                                    continue;
                                }
                                kt.axpy(pt + (p - p0) * n + cb, av,
                                        pc + cb, ce - cb);
                            }
                        });
        }
    } else {
        // General case: p-tiles stream through a bounded scratch; per
        // output row the accumulation stays ascending-p with the same
        // zero skip, so the result matches matmul2d's axpy loop bit for
        // bit while only ever holding one tile of B.
        std::fill(pc, pc + m * n, 0.0f);
        int64_t tile_rows =
            std::max<int64_t>(1, std::min(k, (256 << 10) / (n * 4)));
        std::vector<float> tile(static_cast<size_t>(tile_rows * n));
        for (int64_t p0 = 0; p0 < k; p0 += tile_rows) {
            int64_t p1 = std::min(k, p0 + tile_rows);
            // Decompress the tile in parallel like the m==1 path: fill
            // ranges are disjoint and value-deterministic, and the row
            // accumulation below only starts once the tile is complete,
            // so the per-row FP op sequence is untouched. This is what
            // keeps batched decode (m = batch) from serialising on
            // codec decompression.
            float *pw = tile.data();
            parallelFor(p0, p1, grainFor(p1 - p0, n),
                        [&](int64_t fb, int64_t fe) {
                            fill(fb, fe, pw + (fb - p0) * n);
                        });
            const float *pt = tile.data();
            parallelFor(0, m, grainFor(m, 2 * (p1 - p0) * n),
                        [&](int64_t rb, int64_t re) {
                            for (int64_t i = rb; i < re; ++i) {
                                for (int64_t p = p0; p < p1; ++p) {
                                    float av = pa[i * k + p];
                                    if (av == 0.0f) {
                                        continue;
                                    }
                                    kt.axpy(pt + (p - p0) * n, av,
                                            pc + i * n, n);
                                }
                            }
                        });
        }
    }
    chargeFlops(2.0 * m * k * n, ac.device());
    return out;
}

Tensor
sumAll(const Tensor &a)
{
    // Chunked reduction: per-chunk double partials combined in chunk
    // order — identical result for any thread count (incl. serial).
    int64_t n = a.numel();
    auto combine = [](double x, double y) { return x + y; };
    double acc;
    if (a.isContiguous() && a.dtype() == DType::kF32) {
        const float *p = a.rawData<float>();
        acc = parallelReduce<double>(
            0, n, grainFor(n), 0.0,
            [&](int64_t cb, int64_t ce) {
                double s = 0.0;
                for (int64_t i = cb; i < ce; ++i) {
                    s += p[i];
                }
                return s;
            },
            combine);
    } else {
        acc = parallelReduce<double>(
            0, n, grainFor(n, 4), 0.0,
            [&](int64_t cb, int64_t ce) {
                double s = 0.0;
                for (int64_t i = cb; i < ce; ++i) {
                    s += a.flatAt(i);
                }
                return s;
            },
            combine);
    }
    chargeFlops(static_cast<double>(n), a.device());
    return Tensor::full({1}, static_cast<float>(acc), DType::kF32,
                        a.device());
}

Tensor
meanAll(const Tensor &a)
{
    Tensor s = sumAll(a);
    return mulScalar(s, 1.0f / static_cast<float>(a.numel()));
}

Tensor
sumDim(const Tensor &a, int64_t d, bool keepdim)
{
    if (d < 0) d += a.dim();
    EDKM_CHECK(d >= 0 && d < a.dim(), "sumDim: dim out of range");
    Shape out_shape = a.shape();
    out_shape[d] = 1;
    Tensor out = Tensor::zeros(out_shape, DType::kF32, a.device());

    // outer x reduce x inner decomposition over a contiguous copy.
    Tensor ac = toF32Contig(a);
    int64_t reduce = a.shape()[d];
    int64_t inner = 1;
    for (int64_t dd = d + 1; dd < a.dim(); ++dd) {
        inner *= a.shape()[dd];
    }
    int64_t outer = a.numel() / (reduce * inner);
    const float *pa = ac.rawData<float>();
    float *po = out.rawData<float>();
    parallelFor(0, outer, grainFor(outer, reduce * inner),
                [&](int64_t ob, int64_t oe) {
                    for (int64_t o = ob; o < oe; ++o) {
                        const float *block = pa + o * reduce * inner;
                        float *orow = po + o * inner;
                        for (int64_t r = 0; r < reduce; ++r) {
                            const float *row = block + r * inner;
                            for (int64_t i = 0; i < inner; ++i) {
                                orow[i] += row[i];
                            }
                        }
                    }
                });
    chargeFlops(static_cast<double>(a.numel()), a.device());
    return keepdim ? out : out.squeeze(d);
}

Tensor
meanDim(const Tensor &a, int64_t d, bool keepdim)
{
    int64_t dd = d < 0 ? d + a.dim() : d;
    Tensor s = sumDim(a, d, keepdim);
    return mulScalar(s, 1.0f / static_cast<float>(a.shape()[dd]));
}

std::pair<Tensor, Tensor>
maxLastDim(const Tensor &a)
{
    EDKM_CHECK(a.dim() >= 1, "maxLastDim: needs >=1-d");
    int64_t cols = a.size(-1);
    int64_t rows = a.numel() / cols;
    Tensor ac = a.isContiguous() ? a : a.contiguous();
    Shape out_shape(a.shape().begin(), a.shape().end() - 1);
    if (out_shape.empty()) {
        out_shape = {1};
    }
    Tensor values = Tensor::empty(out_shape, DType::kF32, a.device());
    Tensor indices = Tensor::empty(out_shape, DType::kI64, a.device());
    parallelFor(0, rows, grainFor(rows, cols),
                [&](int64_t rb, int64_t re) {
                    for (int64_t r = rb; r < re; ++r) {
                        float best = ac.flatAt(r * cols);
                        int64_t best_i = 0;
                        for (int64_t c = 1; c < cols; ++c) {
                            float v = ac.flatAt(r * cols + c);
                            if (v > best) {
                                best = v;
                                best_i = c;
                            }
                        }
                        values.setFlatAt(r, best);
                        indices.setFlatAtInt(r, best_i);
                    }
                });
    chargeFlops(static_cast<double>(a.numel()), a.device());
    return {values, indices};
}

Tensor
argmaxLastDim(const Tensor &a)
{
    return maxLastDim(a).second;
}

Tensor
softmaxLastDim(const Tensor &a)
{
    int64_t cols = a.size(-1);
    int64_t rows = a.numel() / cols;
    Tensor ac = toF32Contig(a);
    Tensor out = Tensor::empty(a.shape(), DType::kF32, a.device());
    const float *pi = ac.rawData<float>();
    float *po = out.rawData<float>();
    const kernels::KernelTable &kt = kernels::active();
    parallelFor(0, rows, grainFor(rows, 5 * cols),
                [&](int64_t rb, int64_t re) {
                    kt.softmaxRows(pi + rb * cols, re - rb, cols,
                                   po + rb * cols);
                });
    chargeFlops(5.0 * static_cast<double>(a.numel()), a.device());
    return out;
}

Tensor
logSoftmaxLastDim(const Tensor &a)
{
    int64_t cols = a.size(-1);
    int64_t rows = a.numel() / cols;
    Tensor ac = toF32Contig(a);
    Tensor out = Tensor::empty(a.shape(), DType::kF32, a.device());
    const float *pi = ac.rawData<float>();
    float *po = out.rawData<float>();
    parallelFor(0, rows, grainFor(rows, 5 * cols),
                [&](int64_t rb, int64_t re) {
                    for (int64_t r = rb; r < re; ++r) {
                        const float *row = pi + r * cols;
                        float *orow = po + r * cols;
                        float mx = row[0];
                        for (int64_t c = 1; c < cols; ++c) {
                            mx = std::max(mx, row[c]);
                        }
                        double denom = 0.0;
                        for (int64_t c = 0; c < cols; ++c) {
                            denom += std::exp(row[c] - mx);
                        }
                        float lse =
                            mx + static_cast<float>(std::log(denom));
                        for (int64_t c = 0; c < cols; ++c) {
                            orow[c] = row[c] - lse;
                        }
                    }
                });
    chargeFlops(5.0 * static_cast<double>(a.numel()), a.device());
    return out;
}

Tensor
gatherRows(const Tensor &table, const Tensor &indices)
{
    EDKM_CHECK(table.dim() == 2, "gatherRows: table must be 2-d");
    EDKM_CHECK(indices.dim() == 1, "gatherRows: indices must be 1-d");
    int64_t rows = table.size(0), cols = table.size(1);
    int64_t n = indices.numel();
    Tensor tc = toF32Contig(table);
    Tensor out = Tensor::empty({n, cols}, DType::kF32, table.device());
    const float *pt = tc.rawData<float>();
    float *po = out.rawData<float>();
    parallelFor(0, n, grainFor(n, cols), [&](int64_t cb, int64_t ce) {
        for (int64_t i = cb; i < ce; ++i) {
            int64_t r = indices.flatAtInt(i);
            EDKM_CHECK(r >= 0 && r < rows, "gatherRows: index ", r,
                       " out of range [0,", rows, ")");
            std::copy(pt + r * cols, pt + (r + 1) * cols, po + i * cols);
        }
    });
    chargeFlops(static_cast<double>(n * cols), table.device());
    return out;
}

Tensor
scatterAddRows(const Tensor &src, const Tensor &indices, int64_t rows)
{
    EDKM_CHECK(src.dim() == 2, "scatterAddRows: src must be 2-d");
    EDKM_CHECK(indices.dim() == 1 && indices.numel() == src.size(0),
               "scatterAddRows: one index per src row");
    int64_t cols = src.size(1);
    Tensor sc = toF32Contig(src);
    Tensor out = Tensor::zeros({rows, cols}, DType::kF32, src.device());
    const float *ps = sc.rawData<float>();
    float *po = out.rawData<float>();
    int64_t n = src.size(0);
    for (int64_t i = 0; i < n; ++i) {
        int64_t r = indices.flatAtInt(i);
        EDKM_CHECK(r >= 0 && r < rows, "scatterAddRows: index out of range");
        const float *srow = ps + i * cols;
        float *orow = po + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
            orow[c] += srow[c];
        }
    }
    chargeFlops(static_cast<double>(n * cols), src.device());
    return out;
}

Tensor
cat0(const std::vector<Tensor> &parts)
{
    EDKM_CHECK(!parts.empty(), "cat0: no tensors");
    Shape shape = parts[0].shape();
    int64_t total = 0;
    for (const Tensor &p : parts) {
        EDKM_CHECK(p.dim() == static_cast<int64_t>(shape.size()),
                   "cat0: rank mismatch");
        for (int64_t d = 1; d < p.dim(); ++d) {
            EDKM_CHECK(p.size(d) == shape[d], "cat0: trailing shape "
                       "mismatch");
        }
        total += p.size(0);
    }
    shape[0] = total;
    Tensor out = Tensor::empty(shape, DType::kF32, parts[0].device());
    int64_t written = 0;
    for (const Tensor &p : parts) {
        Tensor pc = toF32Contig(p);
        int64_t n = pc.numel();
        std::copy(pc.rawData<float>(), pc.rawData<float>() + n,
                  out.rawData<float>() + written);
        written += n;
    }
    return out;
}

void
copyIntoView(Tensor view, const Tensor &src)
{
    EDKM_CHECK(view.numel() == src.numel(),
               "copyIntoView: numel mismatch");
    int64_t n = view.numel();
    parallelFor(0, n, grainFor(n, 4), [&](int64_t cb, int64_t ce) {
        for (int64_t i = cb; i < ce; ++i) {
            view.setFlatAt(i, src.flatAt(i));
        }
    });
}

Tensor
broadcastTo(const Tensor &t, const Shape &shape)
{
    return add(Tensor::zeros(shape, DType::kF32, t.device()), t);
}

bool
allclose(const Tensor &a, const Tensor &b, float rtol, float atol)
{
    if (a.shape() != b.shape()) {
        return false;
    }
    int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) {
        float x = a.flatAt(i), y = b.flatAt(i);
        if (std::fabs(x - y) > atol + rtol * std::fabs(y)) {
            return false;
        }
    }
    return true;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    EDKM_CHECK(a.numel() == b.numel(), "maxAbsDiff: numel mismatch");
    float mx = 0.0f;
    int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) {
        mx = std::max(mx, std::fabs(a.flatAt(i) - b.flatAt(i)));
    }
    return mx;
}

// Operator sugar on Tensor (declared in tensor.h).
Tensor
Tensor::operator+(const Tensor &o) const
{
    return edkm::add(*this, o);
}
Tensor
Tensor::operator-(const Tensor &o) const
{
    return edkm::sub(*this, o);
}
Tensor
Tensor::operator*(const Tensor &o) const
{
    return edkm::mul(*this, o);
}
Tensor
Tensor::operator/(const Tensor &o) const
{
    return edkm::div(*this, o);
}
Tensor
Tensor::operator*(float s) const
{
    return edkm::mulScalar(*this, s);
}
Tensor
Tensor::operator+(float s) const
{
    return edkm::addScalar(*this, s);
}
Tensor
Tensor::operator-() const
{
    return edkm::neg(*this);
}

} // namespace edkm
