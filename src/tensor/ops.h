/**
 * @file
 * Non-differentiable tensor kernels.
 *
 * These free functions implement the arithmetic the autograd layer and the
 * clustering core are built from. Every kernel computes in float32
 * regardless of storage dtype and records its flop count with the
 * DeviceManager cost model so experiments report simulated runtimes.
 *
 * Broadcasting follows numpy rules (trailing dims aligned; size-1 dims
 * stretch).
 */

#ifndef EDKM_TENSOR_OPS_H_
#define EDKM_TENSOR_OPS_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace edkm {

// ----------------------------------------------------------------------
// Elementwise binary (broadcasting)
// ----------------------------------------------------------------------

Tensor add(const Tensor &a, const Tensor &b);
Tensor sub(const Tensor &a, const Tensor &b);
Tensor mul(const Tensor &a, const Tensor &b);
Tensor div(const Tensor &a, const Tensor &b);

/** Result shape of broadcasting @p a against @p b (fatal if impossible). */
Shape broadcastShape(const Shape &a, const Shape &b);

// ----------------------------------------------------------------------
// Elementwise with scalar / unary
// ----------------------------------------------------------------------

Tensor addScalar(const Tensor &a, float s);
Tensor mulScalar(const Tensor &a, float s);
Tensor powScalar(const Tensor &a, float p);
Tensor neg(const Tensor &a);
Tensor expT(const Tensor &a);
Tensor logT(const Tensor &a);
Tensor sqrtT(const Tensor &a);
Tensor absT(const Tensor &a);
Tensor square(const Tensor &a);
Tensor reciprocal(const Tensor &a);
Tensor clampT(const Tensor &a, float lo, float hi);
Tensor silu(const Tensor &a);
Tensor relu(const Tensor &a);
Tensor sigmoid(const Tensor &a);

// ----------------------------------------------------------------------
// Matrix multiply
// ----------------------------------------------------------------------

/**
 * Matrix product. Supports [m,k]x[k,n] and batched [b,m,k]x[b,k,n]
 * (or [b,m,k]x[k,n] with broadcast of the right operand).
 *
 * Row-shape invariance (n > 1): row i of the result is bit-identical to
 * `matmul(a.slice(0, i, i+1), b)` — the m==1 path accumulates each
 * element in the same ascending-k order with the same zero skip as the
 * general row loop. Single-position KV-cache decode depends on this to
 * reproduce full-prefix forwards bit-exactly.
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * Row-block provider for matmulStreamed: fill rows [p0, p1) of the
 * right operand B — each @p n floats, row-major — into @p dst. Ranges
 * are non-overlapping and cover [0, k), but are NOT always sequential:
 * the m==1 path decompresses each tile's sub-ranges concurrently from
 * pool threads. Providers must be re-entrant and keep no cross-call
 * state (per-call locals only).
 */
using MatmulRowFill =
    std::function<void(int64_t p0, int64_t p1, float *dst)>;

/**
 * y = a · B for a [m, k] @p a and a [k, n] right operand whose rows are
 * produced on demand by @p fill, so B is never resident as a whole —
 * the serving path for palettized weights streams LUT+index tiles
 * through here.
 *
 * Bit-identical to `matmul(a, B)` with B dense: every accumulation
 * (per-output-row ascending-p order for m >= 1, the n==1 fixed-lane
 * matvec) replays the dense kernel's exact FP op sequence on tile
 * copies of the same values — including matmul's row-shape invariance.
 *
 * The palettized m==1 decode (core/palettize.cc::paletteMatmulT) has a
 * fused sibling that skips the tile staging entirely
 * (kernels::KernelTable::paletteDotFused); it replays this function's
 * m==1 accumulation contract — ascending-p, zero skip, separate IEEE
 * mul/add per element — so the two stay bit-identical (ctest-gated).
 */
Tensor matmulStreamed(const Tensor &a, int64_t k, int64_t n,
                      const MatmulRowFill &fill);

// ----------------------------------------------------------------------
// Reductions
// ----------------------------------------------------------------------

/** Sum of all elements as a scalar (0-d equivalently shape {1}). */
Tensor sumAll(const Tensor &a);

/** Mean of all elements as a scalar. */
Tensor meanAll(const Tensor &a);

/** Sum along @p d (keepdim selectable). */
Tensor sumDim(const Tensor &a, int64_t d, bool keepdim = false);

/** Mean along @p d. */
Tensor meanDim(const Tensor &a, int64_t d, bool keepdim = false);

/** Row-max values and argmax indices along the last dimension. */
std::pair<Tensor, Tensor> maxLastDim(const Tensor &a);

/** Argmax along the last dimension (kI64). */
Tensor argmaxLastDim(const Tensor &a);

// ----------------------------------------------------------------------
// Softmax family (last dimension)
// ----------------------------------------------------------------------

Tensor softmaxLastDim(const Tensor &a);
Tensor logSoftmaxLastDim(const Tensor &a);

// ----------------------------------------------------------------------
// Indexing
// ----------------------------------------------------------------------

/** Gather rows of a [r, c] @p table by 1-D integer @p indices -> [n, c]. */
Tensor gatherRows(const Tensor &table, const Tensor &indices);

/**
 * Accumulate rows of @p src [n, c] into a new [rows, c] tensor at
 * positions given by @p indices (reverse of gatherRows; used by backward
 * passes of embedding and uniquified attention).
 */
Tensor scatterAddRows(const Tensor &src, const Tensor &indices,
                      int64_t rows);

/** Concatenate along dimension 0 (same trailing shape). */
Tensor cat0(const std::vector<Tensor> &parts);

/** Copy @p src elementwise into @p view (same logical shape; the view
 *  may alias another tensor's storage, e.g. a slice). */
void copyIntoView(Tensor view, const Tensor &src);

/** Materialise @p t broadcast to @p shape. */
Tensor broadcastTo(const Tensor &t, const Shape &shape);

// ----------------------------------------------------------------------
// Layout helpers
// ----------------------------------------------------------------------

/**
 * @p t as a contiguous f32 tensor: a no-op view when it already is one,
 * otherwise a single fused strided-read + dtype-convert pass (never the
 * contiguous()-then-to(kF32) double copy).
 */
Tensor toF32Contig(const Tensor &t);

// ----------------------------------------------------------------------
// Comparisons / test helpers
// ----------------------------------------------------------------------

/** True when |a-b| <= atol + rtol*|b| elementwise (converted to f32). */
bool allclose(const Tensor &a, const Tensor &b, float rtol = 1e-5f,
              float atol = 1e-6f);

/** Max absolute elementwise difference. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace edkm

#endif // EDKM_TENSOR_OPS_H_
