#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "device/device_manager.h"
#include "util/half.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {

namespace {

int64_t
shapeNumel(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        n *= d;
    }
    return n;
}

} // namespace

float
loadElement(const std::byte *base, int64_t elem_index, DType dt)
{
    switch (dt) {
      case DType::kF32:
        return reinterpret_cast<const float *>(base)[elem_index];
      case DType::kBf16:
        return bf16ToFloat(
            reinterpret_cast<const uint16_t *>(base)[elem_index]);
      case DType::kF16:
        return fp16ToFloat(
            reinterpret_cast<const uint16_t *>(base)[elem_index]);
      case DType::kI64:
        return static_cast<float>(
            reinterpret_cast<const int64_t *>(base)[elem_index]);
      case DType::kI32:
        return static_cast<float>(
            reinterpret_cast<const int32_t *>(base)[elem_index]);
      case DType::kU16:
        return static_cast<float>(
            reinterpret_cast<const uint16_t *>(base)[elem_index]);
      case DType::kU8:
        return static_cast<float>(
            reinterpret_cast<const uint8_t *>(base)[elem_index]);
    }
    panic("loadElement: bad dtype");
}

void
storeElement(std::byte *base, int64_t elem_index, DType dt, float value)
{
    switch (dt) {
      case DType::kF32:
        reinterpret_cast<float *>(base)[elem_index] = value;
        return;
      case DType::kBf16:
        reinterpret_cast<uint16_t *>(base)[elem_index] = floatToBf16(value);
        return;
      case DType::kF16:
        reinterpret_cast<uint16_t *>(base)[elem_index] = floatToFp16(value);
        return;
      case DType::kI64:
        reinterpret_cast<int64_t *>(base)[elem_index] =
            static_cast<int64_t>(value);
        return;
      case DType::kI32:
        reinterpret_cast<int32_t *>(base)[elem_index] =
            static_cast<int32_t>(value);
        return;
      case DType::kU16:
        reinterpret_cast<uint16_t *>(base)[elem_index] =
            static_cast<uint16_t>(value);
        return;
      case DType::kU8:
        reinterpret_cast<uint8_t *>(base)[elem_index] =
            static_cast<uint8_t>(value);
        return;
    }
    panic("storeElement: bad dtype");
}

Tensor::Tensor(std::shared_ptr<Storage> storage, Shape shape, Shape strides,
               int64_t offset, DType dtype)
    : storage_(std::move(storage)),
      shape_(std::move(shape)),
      strides_(std::move(strides)),
      offset_(offset),
      dtype_(dtype)
{
}

Shape
Tensor::contiguousStrides(const Shape &shape)
{
    Shape strides(shape.size());
    int64_t acc = 1;
    for (size_t i = shape.size(); i-- > 0;) {
        strides[i] = acc;
        acc *= shape[i];
    }
    return strides;
}

Tensor
Tensor::empty(Shape shape, DType dtype, Device dev)
{
    int64_t n = shapeNumel(shape);
    EDKM_CHECK(n >= 0, "invalid shape");
    auto storage = Storage::allocate(n * dtypeSize(dtype), dev);
    Shape strides = contiguousStrides(shape);
    return Tensor(std::move(storage), std::move(shape), std::move(strides),
                  0, dtype);
}

Tensor
Tensor::zeros(Shape shape, DType dtype, Device dev)
{
    return empty(std::move(shape), dtype, dev); // storage is zero-filled
}

Tensor
Tensor::ones(Shape shape, DType dtype, Device dev)
{
    return full(std::move(shape), 1.0f, dtype, dev);
}

Tensor
Tensor::full(Shape shape, float value, DType dtype, Device dev)
{
    Tensor t = empty(std::move(shape), dtype, dev);
    t.fill(value);
    return t;
}

Tensor
Tensor::rand(Shape shape, Rng &rng, Device dev)
{
    Tensor t = empty(std::move(shape), DType::kF32, dev);
    float *p = t.rawData<float>();
    int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i) {
        p[i] = rng.uniform();
    }
    return t;
}

Tensor
Tensor::randn(Shape shape, Rng &rng, Device dev, float std)
{
    Tensor t = empty(std::move(shape), DType::kF32, dev);
    float *p = t.rawData<float>();
    int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i) {
        p[i] = rng.normal(0.0f, std);
    }
    return t;
}

Tensor
Tensor::fromVector(const std::vector<float> &values, Shape shape, Device dev,
                   DType dtype)
{
    int64_t n = shapeNumel(shape);
    EDKM_CHECK(static_cast<int64_t>(values.size()) == n,
               "fromVector: ", values.size(), " values for shape numel ", n);
    Tensor t = empty(std::move(shape), dtype, dev);
    t.copyFrom(values);
    return t;
}

Tensor
Tensor::fromIndices(const std::vector<int64_t> &values, Shape shape,
                    Device dev)
{
    int64_t n = shapeNumel(shape);
    EDKM_CHECK(static_cast<int64_t>(values.size()) == n,
               "fromIndices: size mismatch");
    Tensor t = empty(std::move(shape), DType::kI64, dev);
    int64_t *p = t.rawData<int64_t>();
    std::copy(values.begin(), values.end(), p);
    return t;
}

Tensor
Tensor::arange(int64_t start, int64_t end, Device dev)
{
    EDKM_CHECK(end >= start, "arange: end < start");
    Tensor t = empty({end - start}, DType::kI64, dev);
    int64_t *p = t.rawData<int64_t>();
    for (int64_t i = 0; i < end - start; ++i) {
        p[i] = start + i;
    }
    return t;
}

Tensor
Tensor::wrapStorage(std::shared_ptr<Storage> storage, Shape shape,
                    Shape strides, int64_t offset, DType dtype)
{
    EDKM_CHECK(storage != nullptr, "wrapStorage: null storage");
    EDKM_CHECK(shape.size() == strides.size(),
               "wrapStorage: shape/stride rank mismatch");
    return Tensor(std::move(storage), std::move(shape), std::move(strides),
                  offset, dtype);
}

Device
Tensor::device() const
{
    EDKM_CHECK(defined(), "device() on undefined tensor");
    return storage_->device();
}

int64_t
Tensor::numel() const
{
    return shapeNumel(shape_);
}

int64_t
Tensor::size(int64_t d) const
{
    if (d < 0) {
        d += dim();
    }
    EDKM_CHECK(d >= 0 && d < dim(), "size(): dim out of range");
    return shape_[static_cast<size_t>(d)];
}

bool
Tensor::isContiguous() const
{
    int64_t acc = 1;
    for (size_t i = shape_.size(); i-- > 0;) {
        if (shape_[i] != 1 && strides_[i] != acc) {
            return false;
        }
        acc *= shape_[i];
    }
    return true;
}

std::string
Tensor::toString() const
{
    if (!defined()) {
        return "Tensor[undefined]";
    }
    std::ostringstream oss;
    oss << "Tensor[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        oss << (i ? "x" : "") << shape_[i];
    }
    oss << " " << dtypeName(dtype_) << " " << device().toString() << "]";
    return oss.str();
}

Tensor
Tensor::view(Shape new_shape) const
{
    EDKM_CHECK(defined(), "view() on undefined tensor");
    EDKM_CHECK(isContiguous(), "view() requires a contiguous tensor");
    // Resolve one -1 dimension.
    int64_t known = 1;
    int infer = -1;
    for (size_t i = 0; i < new_shape.size(); ++i) {
        if (new_shape[i] == -1) {
            EDKM_CHECK(infer < 0, "view(): at most one -1 dim");
            infer = static_cast<int>(i);
        } else {
            known *= new_shape[i];
        }
    }
    if (infer >= 0) {
        EDKM_CHECK(known != 0 && numel() % known == 0,
                   "view(): cannot infer dimension");
        new_shape[static_cast<size_t>(infer)] = numel() / known;
    }
    EDKM_CHECK(shapeNumel(new_shape) == numel(),
               "view(): numel mismatch");
    Shape strides = contiguousStrides(new_shape);
    return Tensor(storage_, std::move(new_shape), std::move(strides),
                  offset_, dtype_);
}

Tensor
Tensor::reshape(Shape new_shape) const
{
    if (isContiguous()) {
        return view(std::move(new_shape));
    }
    return contiguous().view(std::move(new_shape));
}

Tensor
Tensor::transpose(int64_t d0, int64_t d1) const
{
    if (d0 < 0) d0 += dim();
    if (d1 < 0) d1 += dim();
    EDKM_CHECK(d0 >= 0 && d0 < dim() && d1 >= 0 && d1 < dim(),
               "transpose: dims out of range");
    Shape shape = shape_;
    Shape strides = strides_;
    std::swap(shape[d0], shape[d1]);
    std::swap(strides[d0], strides[d1]);
    return Tensor(storage_, std::move(shape), std::move(strides), offset_,
                  dtype_);
}

Tensor
Tensor::permute(const Shape &dims) const
{
    EDKM_CHECK(static_cast<int64_t>(dims.size()) == dim(),
               "permute: wrong number of dims");
    Shape shape(dims.size());
    Shape strides(dims.size());
    for (size_t i = 0; i < dims.size(); ++i) {
        int64_t d = dims[i];
        EDKM_CHECK(d >= 0 && d < dim(), "permute: dim out of range");
        shape[i] = shape_[d];
        strides[i] = strides_[d];
    }
    return Tensor(storage_, std::move(shape), std::move(strides), offset_,
                  dtype_);
}

Tensor
Tensor::slice(int64_t d, int64_t start, int64_t end) const
{
    if (d < 0) d += dim();
    EDKM_CHECK(d >= 0 && d < dim(), "slice: dim out of range");
    EDKM_CHECK(start >= 0 && end <= shape_[d] && start <= end,
               "slice: bad range [", start, ",", end, ") for dim size ",
               shape_[d]);
    Shape shape = shape_;
    shape[d] = end - start;
    return Tensor(storage_, std::move(shape), strides_,
                  offset_ + start * strides_[d], dtype_);
}

Tensor
Tensor::select(int64_t d, int64_t idx) const
{
    if (d < 0) d += dim();
    EDKM_CHECK(d >= 0 && d < dim(), "select: dim out of range");
    EDKM_CHECK(idx >= 0 && idx < shape_[d], "select: index out of range");
    Shape shape;
    Shape strides;
    for (int64_t i = 0; i < dim(); ++i) {
        if (i != d) {
            shape.push_back(shape_[i]);
            strides.push_back(strides_[i]);
        }
    }
    return Tensor(storage_, std::move(shape), std::move(strides),
                  offset_ + idx * strides_[d], dtype_);
}

Tensor
Tensor::flatten() const
{
    if (isContiguous()) {
        return view({numel()});
    }
    return contiguous().view({numel()});
}

Tensor
Tensor::squeeze(int64_t d) const
{
    if (d < 0) d += dim();
    EDKM_CHECK(d >= 0 && d < dim() && shape_[d] == 1,
               "squeeze: dim must have size 1");
    Shape shape = shape_;
    Shape strides = strides_;
    shape.erase(shape.begin() + d);
    strides.erase(strides.begin() + d);
    return Tensor(storage_, std::move(shape), std::move(strides), offset_,
                  dtype_);
}

Tensor
Tensor::unsqueeze(int64_t d) const
{
    if (d < 0) d += dim() + 1;
    EDKM_CHECK(d >= 0 && d <= dim(), "unsqueeze: dim out of range");
    Shape shape = shape_;
    Shape strides = strides_;
    int64_t stride = (d < dim()) ? strides_[d] * shape_[d] : 1;
    shape.insert(shape.begin() + d, 1);
    strides.insert(strides.begin() + d, stride);
    return Tensor(storage_, std::move(shape), std::move(strides), offset_,
                  dtype_);
}

int64_t
Tensor::elementIndex(int64_t i) const
{
    // Map logical row-major position -> storage element index.
    int64_t idx = offset_;
    for (size_t d = shape_.size(); d-- > 0;) {
        int64_t s = shape_[d];
        idx += (i % s) * strides_[d];
        i /= s;
    }
    return idx;
}

Tensor
Tensor::contiguous() const
{
    EDKM_CHECK(defined(), "contiguous() on undefined tensor");
    if (isContiguous()) {
        return *this;
    }
    Tensor out = empty(shape_, dtype_, device());
    int64_t n = numel();
    const std::byte *src = storage_->data();
    std::byte *dst = out.storage_->data();
    for (int64_t i = 0; i < n; ++i) {
        storeElement(dst, i, dtype_, loadElement(src, elementIndex(i),
                                                 dtype_));
    }
    return out;
}

Tensor
Tensor::clone() const
{
    EDKM_CHECK(defined(), "clone() on undefined tensor");
    Tensor out = empty(shape_, dtype_, device());
    if (isContiguous()) {
        std::memcpy(out.storage_->data(),
                    storage_->data() + offset_ * dtypeSize(dtype_),
                    static_cast<size_t>(numel() * dtypeSize(dtype_)));
    } else {
        const std::byte *src = storage_->data();
        std::byte *dst = out.storage_->data();
        int64_t n = numel();
        for (int64_t i = 0; i < n; ++i) {
            storeElement(dst, i, dtype_,
                         loadElement(src, elementIndex(i), dtype_));
        }
    }
    return out;
}

Tensor
Tensor::to(Device dev) const
{
    EDKM_CHECK(defined(), "to(device) on undefined tensor");
    if (dev == device()) {
        return *this; // PyTorch semantics: no copy when same device
    }
    Tensor out = empty(shape_, dtype_, dev);
    const std::byte *src = storage_->data();
    std::byte *dst = out.storage_->data();
    int64_t n = numel();
    if (isContiguous()) {
        std::memcpy(dst, src + offset_ * dtypeSize(dtype_),
                    static_cast<size_t>(n * dtypeSize(dtype_)));
    } else {
        for (int64_t i = 0; i < n; ++i) {
            storeElement(dst, i, dtype_,
                         loadElement(src, elementIndex(i), dtype_));
        }
    }
    DeviceManager::instance().recordTransfer(device(), dev,
                                             n * dtypeSize(dtype_));
    return out;
}

Tensor
Tensor::to(DType dt) const
{
    EDKM_CHECK(defined(), "to(dtype) on undefined tensor");
    if (dt == dtype_) {
        return *this;
    }
    Tensor out = empty(shape_, dt, device());
    const std::byte *src = storage_->data();
    std::byte *dst = out.storage_->data();
    int64_t n = numel();
    for (int64_t i = 0; i < n; ++i) {
        storeElement(dst, i, dt, loadElement(src, elementIndex(i), dtype_));
    }
    return out;
}

float
Tensor::at(const Shape &idx) const
{
    EDKM_CHECK(static_cast<int64_t>(idx.size()) == dim(),
               "at(): rank mismatch");
    int64_t e = offset_;
    for (size_t d = 0; d < idx.size(); ++d) {
        EDKM_CHECK(idx[d] >= 0 && idx[d] < shape_[d],
                   "at(): index out of range");
        e += idx[d] * strides_[d];
    }
    return loadElement(storage_->data(), e, dtype_);
}

void
Tensor::setAt(const Shape &idx, float value)
{
    EDKM_CHECK(static_cast<int64_t>(idx.size()) == dim(),
               "setAt(): rank mismatch");
    int64_t e = offset_;
    for (size_t d = 0; d < idx.size(); ++d) {
        EDKM_CHECK(idx[d] >= 0 && idx[d] < shape_[d],
                   "setAt(): index out of range");
        e += idx[d] * strides_[d];
    }
    storeElement(storage_->data(), e, dtype_, value);
}

float
Tensor::flatAt(int64_t i) const
{
    return loadElement(storage_->data(), elementIndex(i), dtype_);
}

void
Tensor::setFlatAt(int64_t i, float value)
{
    storeElement(storage_->data(), elementIndex(i), dtype_, value);
}

int64_t
Tensor::flatAtInt(int64_t i) const
{
    int64_t e = elementIndex(i);
    switch (dtype_) {
      case DType::kI64:
        return reinterpret_cast<const int64_t *>(storage_->data())[e];
      case DType::kI32:
        return reinterpret_cast<const int32_t *>(storage_->data())[e];
      case DType::kU16:
        return reinterpret_cast<const uint16_t *>(storage_->data())[e];
      case DType::kU8:
        return reinterpret_cast<const uint8_t *>(storage_->data())[e];
      default:
        return static_cast<int64_t>(flatAt(i));
    }
}

void
Tensor::setFlatAtInt(int64_t i, int64_t value)
{
    int64_t e = elementIndex(i);
    switch (dtype_) {
      case DType::kI64:
        reinterpret_cast<int64_t *>(storage_->data())[e] = value;
        return;
      case DType::kI32:
        reinterpret_cast<int32_t *>(storage_->data())[e] =
            static_cast<int32_t>(value);
        return;
      case DType::kU16:
        reinterpret_cast<uint16_t *>(storage_->data())[e] =
            static_cast<uint16_t>(value);
        return;
      case DType::kU8:
        reinterpret_cast<uint8_t *>(storage_->data())[e] =
            static_cast<uint8_t>(value);
        return;
      default:
        setFlatAt(i, static_cast<float>(value));
    }
}

float
Tensor::item() const
{
    EDKM_CHECK(numel() == 1, "item(): tensor has ", numel(), " elements");
    return flatAt(0);
}

std::vector<float>
Tensor::toVector() const
{
    int64_t n = numel();
    std::vector<float> out(static_cast<size_t>(n));
    const std::byte *src = storage_->data();
    if (isContiguous() && dtype_ == DType::kF32) {
        const float *p = reinterpret_cast<const float *>(src) + offset_;
        std::copy(p, p + n, out.begin());
        return out;
    }
    for (int64_t i = 0; i < n; ++i) {
        out[static_cast<size_t>(i)] =
            loadElement(src, elementIndex(i), dtype_);
    }
    return out;
}

std::vector<int64_t>
Tensor::toIntVector() const
{
    int64_t n = numel();
    std::vector<int64_t> out(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        out[static_cast<size_t>(i)] = flatAtInt(i);
    }
    return out;
}

void
Tensor::copyFrom(const std::vector<float> &values)
{
    EDKM_CHECK(static_cast<int64_t>(values.size()) == numel(),
               "copyFrom: size mismatch");
    std::byte *dst = storage_->data();
    if (isContiguous() && dtype_ == DType::kF32) {
        std::copy(values.begin(), values.end(),
                  reinterpret_cast<float *>(dst) + offset_);
        return;
    }
    for (int64_t i = 0; i < numel(); ++i) {
        storeElement(dst, elementIndex(i), dtype_,
                     values[static_cast<size_t>(i)]);
    }
}

void
Tensor::fill(float value)
{
    std::byte *dst = storage_->data();
    int64_t n = numel();
    for (int64_t i = 0; i < n; ++i) {
        storeElement(dst, elementIndex(i), dtype_, value);
    }
}

} // namespace edkm
