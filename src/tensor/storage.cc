#include "tensor/storage.h"

#include <atomic>

#include "device/device_manager.h"
#include "util/logging.h"

namespace edkm {

namespace {
std::atomic<uint64_t> g_next_storage_id{1};
} // namespace

Storage::Storage(int64_t bytes, Device dev)
    : data_(new std::byte[static_cast<size_t>(bytes)]()),
      bytes_(bytes),
      device_(dev),
      id_(g_next_storage_id.fetch_add(1, std::memory_order_relaxed))
{
    DeviceManager::instance().recordAlloc(device_, bytes_);
}

Storage::~Storage()
{
    DeviceManager::instance().recordFree(device_, bytes_);
}

std::shared_ptr<Storage>
Storage::allocate(int64_t bytes, Device dev)
{
    EDKM_CHECK(bytes >= 0, "storage size must be non-negative");
    return std::shared_ptr<Storage>(new Storage(bytes, dev));
}

} // namespace edkm
