#include "tensor/storage.h"

#include <atomic>

#include "device/device_manager.h"
#include "util/logging.h"

namespace edkm {

namespace {
std::atomic<uint64_t> g_next_storage_id{1};
} // namespace

Storage::Storage(int64_t bytes, Device dev)
    : owned_(new std::byte[static_cast<size_t>(bytes)]()),
      data_(owned_.get()),
      bytes_(bytes),
      device_(dev),
      id_(g_next_storage_id.fetch_add(1, std::memory_order_relaxed))
{
    DeviceManager::instance().recordAlloc(device_, bytes_);
}

Storage::Storage(const std::byte *data, int64_t bytes, Device dev,
                 std::shared_ptr<const void> owner)
    : owned_(nullptr),
      // Borrowed bytes are read-only by contract (see header); the
      // const_cast only satisfies the shared data() signature.
      data_(const_cast<std::byte *>(data)),
      bytes_(bytes),
      device_(dev),
      id_(g_next_storage_id.fetch_add(1, std::memory_order_relaxed)),
      owner_(std::move(owner))
{
}

Storage::~Storage()
{
    if (owned_ != nullptr) {
        DeviceManager::instance().recordFree(device_, bytes_);
    }
}

std::shared_ptr<Storage>
Storage::allocate(int64_t bytes, Device dev)
{
    EDKM_CHECK(bytes >= 0, "storage size must be non-negative");
    return std::shared_ptr<Storage>(new Storage(bytes, dev));
}

std::shared_ptr<Storage>
Storage::borrow(const std::byte *data, int64_t bytes, Device dev,
                std::shared_ptr<const void> owner)
{
    EDKM_CHECK(bytes >= 0, "storage size must be non-negative");
    EDKM_CHECK(data != nullptr || bytes == 0,
               "borrowed storage needs a valid pointer");
    return std::shared_ptr<Storage>(
        new Storage(data, bytes, dev, std::move(owner)));
}

} // namespace edkm
