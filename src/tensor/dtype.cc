#include "tensor/dtype.h"

namespace edkm {

std::string
dtypeName(DType dt)
{
    switch (dt) {
      case DType::kF32: return "f32";
      case DType::kBf16: return "bf16";
      case DType::kF16: return "f16";
      case DType::kI64: return "i64";
      case DType::kI32: return "i32";
      case DType::kU16: return "u16";
      case DType::kU8: return "u8";
    }
    return "?";
}

} // namespace edkm
