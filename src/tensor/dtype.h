/**
 * @file
 * Element types supported by the tensor library.
 *
 * F32 is the compute type. BF16/F16 are storage types with bit-exact
 * software conversion (util/half.h); they matter because eDKM's
 * uniquification buckets weights by their 16-bit pattern. Integer types
 * back token ids, cluster indices (U16, at most 2^16 unique rows) and
 * packed palettized payloads (U8).
 */

#ifndef EDKM_TENSOR_DTYPE_H_
#define EDKM_TENSOR_DTYPE_H_

#include <cstdint>
#include <string>

namespace edkm {

/** Supported element types. */
enum class DType : uint8_t {
    kF32 = 0,
    kBf16,
    kF16,
    kI64,
    kI32,
    kU16,
    kU8,
};

/** @return size of one element of @p dt in bytes. */
constexpr int64_t
dtypeSize(DType dt)
{
    switch (dt) {
      case DType::kF32: return 4;
      case DType::kBf16: return 2;
      case DType::kF16: return 2;
      case DType::kI64: return 8;
      case DType::kI32: return 4;
      case DType::kU16: return 2;
      case DType::kU8: return 1;
    }
    return 0;
}

/** @return true for the floating-point types. */
constexpr bool
dtypeIsFloat(DType dt)
{
    return dt == DType::kF32 || dt == DType::kBf16 || dt == DType::kF16;
}

/** @return human-readable name, e.g. "f32". */
std::string dtypeName(DType dt);

} // namespace edkm

#endif // EDKM_TENSOR_DTYPE_H_
