/**
 * @file
 * N-dimensional tensor with PyTorch view semantics.
 *
 * A Tensor is metadata (shape, element strides, element offset, dtype)
 * over a shared Storage. View operations (view/reshape-when-possible/
 * transpose/permute/slice/select) return tensors sharing the same Storage;
 * to(Device) always materialises a new Storage and records the transfer —
 * exactly the behaviour Table 1 of the paper demonstrates.
 *
 * All arithmetic reads/writes elements through float32; BF16/F16 storage
 * round-trips through the bit-exact converters in util/half.h.
 */

#ifndef EDKM_TENSOR_TENSOR_H_
#define EDKM_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "device/device.h"
#include "tensor/dtype.h"
#include "tensor/storage.h"

namespace edkm {

class Rng;

/** Shape/stride container. */
using Shape = std::vector<int64_t>;

/**
 * Value-semantic tensor handle. Copying a Tensor copies only metadata;
 * the Storage is shared (and refcounted).
 */
class Tensor
{
  public:
    /** Undefined tensor (defined() == false). */
    Tensor() = default;

    // ------------------------------------------------------------------
    // Factories
    // ------------------------------------------------------------------

    /** Uninitialised (zero-filled) tensor. */
    static Tensor empty(Shape shape, DType dtype = DType::kF32,
                        Device dev = Device::cpu());

    /** All zeros. */
    static Tensor zeros(Shape shape, DType dtype = DType::kF32,
                        Device dev = Device::cpu());

    /** All ones. */
    static Tensor ones(Shape shape, DType dtype = DType::kF32,
                       Device dev = Device::cpu());

    /** Filled with @p value. */
    static Tensor full(Shape shape, float value, DType dtype = DType::kF32,
                       Device dev = Device::cpu());

    /** Uniform [0,1) random, seeded by @p rng. */
    // lint:allow(raw-rng) declaration of the seeded factory itself —
    // every call site must pass an explicit util Rng.
    static Tensor rand(Shape shape, Rng &rng, Device dev = Device::cpu());

    /** Standard-normal random, seeded by @p rng. */
    static Tensor randn(Shape shape, Rng &rng, Device dev = Device::cpu(),
                        float std = 1.0f);

    /** Copy @p values (row-major) into a new tensor of @p shape. */
    static Tensor fromVector(const std::vector<float> &values, Shape shape,
                             Device dev = Device::cpu(),
                             DType dtype = DType::kF32);

    /** Copy int64 @p values (row-major) into a new kI64 tensor. */
    static Tensor fromIndices(const std::vector<int64_t> &values,
                              Shape shape, Device dev = Device::cpu());

    /** 1-D tensor [start, end) step 1, kI64. */
    static Tensor arange(int64_t start, int64_t end,
                         Device dev = Device::cpu());

    /**
     * Expert API: wrap an existing storage with explicit metadata.
     * Used by the marshaling layer (view reconstruction over an offloaded
     * buffer) and the distributed simulation. @p strides are in elements.
     */
    static Tensor wrapStorage(std::shared_ptr<Storage> storage, Shape shape,
                              Shape strides, int64_t offset, DType dtype);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    bool defined() const { return storage_ != nullptr; }
    const Shape &shape() const { return shape_; }
    const Shape &strides() const { return strides_; }
    int64_t offset() const { return offset_; }
    DType dtype() const { return dtype_; }
    Device device() const;
    int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
    int64_t numel() const;
    int64_t size(int64_t d) const;
    bool isContiguous() const;

    /** Underlying storage (shared across views). */
    const std::shared_ptr<Storage> &storagePtr() const { return storage_; }

    /** Storage identifier (0 when undefined). */
    uint64_t storageId() const { return storage_ ? storage_->id() : 0; }

    /** Bytes of the underlying storage buffer. */
    int64_t storageBytes() const { return storage_ ? storage_->bytes() : 0; }

    /** "Tensor[2x3 f32 cpu]"-style description. */
    std::string toString() const;

    // ------------------------------------------------------------------
    // Views (share storage; O(1))
    // ------------------------------------------------------------------

    /** Reinterpret shape; requires contiguous layout and equal numel.
     *  One dimension may be -1 (inferred). */
    Tensor view(Shape new_shape) const;

    /** view() when contiguous, otherwise contiguous().view(). */
    Tensor reshape(Shape new_shape) const;

    /** Swap two dimensions (stride trick; shares storage). */
    Tensor transpose(int64_t d0, int64_t d1) const;

    /** Reorder all dimensions (stride trick; shares storage). */
    Tensor permute(const Shape &dims) const;

    /** Sub-range [start, end) along @p d; shares storage. */
    Tensor slice(int64_t d, int64_t start, int64_t end) const;

    /** Index @p idx along @p d, removing the dimension; shares storage. */
    Tensor select(int64_t d, int64_t idx) const;

    /** Collapse to 1-D (view when contiguous, else copies). */
    Tensor flatten() const;

    /** Remove a size-1 dimension. */
    Tensor squeeze(int64_t d) const;

    /** Insert a size-1 dimension at @p d. */
    Tensor unsqueeze(int64_t d) const;

    // ------------------------------------------------------------------
    // Materialising ops (new storage)
    // ------------------------------------------------------------------

    /** Compact row-major copy (same device/dtype); no-op view if already
     *  contiguous. */
    Tensor contiguous() const;

    /** Deep copy (always new storage). */
    Tensor clone() const;

    /**
     * Move to @p dev. PyTorch semantics: returns *this unchanged when
     * already on @p dev; otherwise materialises a new contiguous Storage
     * on @p dev and records the transfer with the DeviceManager.
     */
    Tensor to(Device dev) const;

    /** Convert dtype (new storage; values round through the target). */
    Tensor to(DType dt) const;

    // ------------------------------------------------------------------
    // Element access (converts through float)
    // ------------------------------------------------------------------

    /** Read element at @p idx (multi-dimensional). */
    float at(const Shape &idx) const;

    /** Write element at @p idx. */
    void setAt(const Shape &idx, float value);

    /** Read the @p i-th element in logical row-major order. */
    float flatAt(int64_t i) const;

    /** Write the @p i-th element in logical row-major order. */
    void setFlatAt(int64_t i, float value);

    /** Read integer element (kI64/kI32/kU16/kU8) in row-major order. */
    int64_t flatAtInt(int64_t i) const;

    /** Write integer element in row-major order. */
    void setFlatAtInt(int64_t i, int64_t value);

    /** The single value of a one-element tensor. */
    float item() const;

    /** Gather all elements (row-major, converted to float). */
    std::vector<float> toVector() const;

    /** Gather all elements of an integer tensor. */
    std::vector<int64_t> toIntVector() const;

    /** Overwrite contents from a row-major float vector. */
    void copyFrom(const std::vector<float> &values);

    /** Fill every element with @p value. */
    void fill(float value);

    /**
     * Raw typed pointer to the first element (offset applied). Only valid
     * for tensors whose dtype matches T's size; the caller must respect
     * strides.
     */
    template <typename T>
    T *
    rawData()
    {
        return reinterpret_cast<T *>(storage_->data()) + offset_;
    }

    template <typename T>
    const T *
    rawData() const
    {
        return reinterpret_cast<const T *>(storage_->data()) + offset_;
    }

    // ------------------------------------------------------------------
    // Convenience arithmetic (wrappers over ops.h free functions)
    // ------------------------------------------------------------------

    Tensor operator+(const Tensor &o) const;
    Tensor operator-(const Tensor &o) const;
    Tensor operator*(const Tensor &o) const;
    Tensor operator/(const Tensor &o) const;
    Tensor operator*(float s) const;
    Tensor operator+(float s) const;
    Tensor operator-() const;

  private:
    Tensor(std::shared_ptr<Storage> storage, Shape shape, Shape strides,
           int64_t offset, DType dtype);

    /** Flat element index (into storage, after offset) for logical
     *  row-major position @p i. */
    int64_t elementIndex(int64_t i) const;

    static Shape contiguousStrides(const Shape &shape);

    std::shared_ptr<Storage> storage_;
    Shape shape_;
    Shape strides_; // in elements
    int64_t offset_ = 0; // in elements
    DType dtype_ = DType::kF32;
};

/** Element load/store helpers shared with the ops layer. */
float loadElement(const std::byte *base, int64_t elem_index, DType dt);
void storeElement(std::byte *base, int64_t elem_index, DType dt,
                  float value);

} // namespace edkm

#endif // EDKM_TENSOR_TENSOR_H_
