/**
 * @file
 * Reference-counted device-resident data storage.
 *
 * Mirrors PyTorch's split between *data storage* (the bytes) and tensor
 * *metadata* (shape/strides/offset): many Tensor values may share one
 * Storage (views), and moving data to another device always creates a new
 * Storage. That split is exactly what makes the duplicate-copy problem of
 * the paper's Table 1 possible, and what the marshaling layer (section
 * 2.1) exploits to detect redundant offloads.
 *
 * Every Storage registers its allocation with the DeviceManager so benches
 * can read byte-accurate per-device footprints.
 */

#ifndef EDKM_TENSOR_STORAGE_H_
#define EDKM_TENSOR_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "device/device.h"

namespace edkm {

/**
 * A contiguous byte buffer pinned to a simulated device.
 *
 * Storages are created through allocate() and owned via shared_ptr; the
 * id() is unique process-wide and never reused, which the marshaling
 * registry relies on.
 */
class Storage
{
  public:
    /** Allocate @p bytes on @p dev (records the allocation). */
    static std::shared_ptr<Storage> allocate(int64_t bytes, Device dev);

    ~Storage();

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    /** Raw pointer to the first byte. */
    std::byte *data() { return data_.get(); }
    const std::byte *data() const { return data_.get(); }

    /** Size in bytes. */
    int64_t bytes() const { return bytes_; }

    /** Device this storage lives on. */
    Device device() const { return device_; }

    /** Process-unique, never-reused identifier. */
    uint64_t id() const { return id_; }

  private:
    Storage(int64_t bytes, Device dev);

    std::unique_ptr<std::byte[]> data_;
    int64_t bytes_;
    Device device_;
    uint64_t id_;
};

} // namespace edkm

#endif // EDKM_TENSOR_STORAGE_H_
