/**
 * @file
 * Reference-counted device-resident data storage.
 *
 * Mirrors PyTorch's split between *data storage* (the bytes) and tensor
 * *metadata* (shape/strides/offset): many Tensor values may share one
 * Storage (views), and moving data to another device always creates a new
 * Storage. That split is exactly what makes the duplicate-copy problem of
 * the paper's Table 1 possible, and what the marshaling layer (section
 * 2.1) exploits to detect redundant offloads.
 *
 * Every Storage registers its allocation with the DeviceManager so benches
 * can read byte-accurate per-device footprints.
 */

#ifndef EDKM_TENSOR_STORAGE_H_
#define EDKM_TENSOR_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "device/device.h"

namespace edkm {

/**
 * A contiguous byte buffer pinned to a simulated device.
 *
 * Storages are created through allocate() and owned via shared_ptr; the
 * id() is unique process-wide and never reused, which the marshaling
 * registry relies on.
 *
 * A storage can also be *borrowed* (borrow()): it then wraps memory it
 * does not own — typically a section of an mmap-ed model artifact — and
 * records no allocation with the DeviceManager, so accounting reflects
 * heap-resident bytes only. A borrowed storage keeps an optional owner
 * token alive, pinning the mapping for as long as any view of it lives.
 * Borrowed bytes must be treated read-only: the backing mapping may be
 * a PROT_READ page range, and writing through a view of it is undefined.
 */
class Storage
{
  public:
    /** Allocate @p bytes on @p dev (records the allocation). */
    static std::shared_ptr<Storage> allocate(int64_t bytes, Device dev);

    /**
     * Wrap @p bytes at @p data without taking ownership. @p owner is
     * held for the storage's lifetime so the backing memory (e.g. an
     * ArtifactReader's file mapping) cannot be unmapped while views
     * exist. Records no allocation with the DeviceManager.
     */
    static std::shared_ptr<Storage> borrow(const std::byte *data,
                                           int64_t bytes, Device dev,
                                           std::shared_ptr<const void> owner);

    ~Storage();

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    /** Raw pointer to the first byte. */
    std::byte *data() { return data_; }
    const std::byte *data() const { return data_; }

    /** Size in bytes. */
    int64_t bytes() const { return bytes_; }

    /** Device this storage lives on. */
    Device device() const { return device_; }

    /** Process-unique, never-reused identifier. */
    uint64_t id() const { return id_; }

    /** True when the bytes are non-owning (read-only borrowed memory). */
    bool borrowed() const { return owned_ == nullptr; }

    /** The keep-alive token of a borrowed storage (null when owned). */
    const std::shared_ptr<const void> &owner() const { return owner_; }

  private:
    Storage(int64_t bytes, Device dev);
    Storage(const std::byte *data, int64_t bytes, Device dev,
            std::shared_ptr<const void> owner);

    std::unique_ptr<std::byte[]> owned_; ///< null for borrowed storages
    std::byte *data_;
    int64_t bytes_;
    Device device_;
    uint64_t id_;
    std::shared_ptr<const void> owner_; ///< keep-alive (borrowed only)
};

} // namespace edkm

#endif // EDKM_TENSOR_STORAGE_H_
