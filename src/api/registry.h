/**
 * @file
 * String -> factory registry of compression schemes.
 *
 * Examples, benches and tests construct schemes by name
 * (`CompressorRegistry::instance().create("edkm", plan)`), so new
 * schemes plug in without new entry points. The built-in seven (fp16,
 * rtn, gptq, awq, smoothquant, qat, edkm — plus the dkm variant) are
 * registered on first use; unknown names fail with the list of known
 * ones.
 */

#ifndef EDKM_API_REGISTRY_H_
#define EDKM_API_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/compressor.h"
#include "api/plan.h"

namespace edkm {
namespace api {

/** Registry of scheme factories, keyed by scheme name. */
class CompressorRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<Compressor>(const CompressionPlan &)>;

    /** Process-wide registry with the built-in schemes registered. */
    static CompressorRegistry &instance();

    /**
     * Register @p factory under @p name. Re-registering a name
     * replaces the factory (lets tests stub schemes).
     */
    void registerFactory(const std::string &name, Factory factory);

    /** True when @p name is registered. */
    bool contains(const std::string &name) const;

    /** Sorted names of every registered scheme. */
    std::vector<std::string> names() const;

    /**
     * Construct the scheme @p name configured by @p plan. Throws
     * FatalError naming the known schemes when @p name is unknown.
     */
    std::unique_ptr<Compressor> create(const std::string &name,
                                       const CompressionPlan &plan) const;

    /** Convenience: create(plan.scheme, plan). */
    std::unique_ptr<Compressor>
    create(const CompressionPlan &plan) const
    {
        return create(plan.scheme, plan);
    }

  private:
    std::vector<std::pair<std::string, Factory>> factories_;
};

namespace detail {

/** Defined in compressors.cc: registers the built-in schemes. */
void registerBuiltins(CompressorRegistry &registry);

} // namespace detail

} // namespace api
} // namespace edkm

#endif // EDKM_API_REGISTRY_H_
