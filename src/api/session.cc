#include "api/session.h"

#include <utility>

#include "api/registry.h"
#include "autograd/node.h"
#include "runtime/runtime.h"
#include "util/logging.h"

namespace edkm {
namespace api {

namespace {

/**
 * Clear every Linear's weight transform and calibration-capture flag:
 * an interrupted run must leave no transforms behind and no layers
 * silently retaining every future forward's input activations.
 */
void
clearTransientLayerState(nn::MiniLlama &model)
{
    for (auto &[path, linear] : model.allLinears()) {
        (void)path;
        linear->setWeightTransform(nullptr);
        linear->setCaptureInputs(false);
    }
}

/** Clone every parameter (cancel rollback snapshot). */
std::vector<Tensor>
snapshotParameters(nn::MiniLlama &model)
{
    std::vector<Tensor> snap;
    for (auto &[name, p] : model.namedParameters()) {
        (void)name;
        snap.push_back(p.data().clone());
    }
    return snap;
}

void
restoreParameters(nn::MiniLlama &model, const std::vector<Tensor> &snap)
{
    auto params = model.namedParameters();
    EDKM_CHECK(params.size() == snap.size(),
               "session: snapshot/model parameter count mismatch");
    for (size_t i = 0; i < params.size(); ++i) {
        params[i].second.mutableData() = snap[i].clone();
        params[i].second.zeroGrad();
    }
}

/** RAII: override the runtime thread count for the run's duration. */
class ThreadCountScope
{
  public:
    explicit ThreadCountScope(int threads) : active_(threads > 0)
    {
        if (active_) {
            previous_ = runtime::Runtime::instance().threadCount();
            runtime::Runtime::instance().setThreadCount(threads);
        }
    }

    ~ThreadCountScope()
    {
        if (active_) {
            runtime::Runtime::instance().setThreadCount(previous_);
        }
    }

  private:
    bool active_;
    int previous_ = 0;
};

} // namespace

Session::Session(SessionConfig config) : config_(std::move(config)) {}

SessionResult
Session::run(nn::MiniLlama &model, const CompressionPlan &plan,
             CalibData calib)
{
    plan.validate();
    compressor_ = CompressorRegistry::instance().create(plan);

    std::vector<std::string> paths;
    for (auto &[path, linear] : model.allLinears()) {
        (void)linear;
        paths.push_back(path);
    }
    LayerSelection selection = plan.resolve(paths);

    // Wire the session's plumbing into the run.
    if (config_.onProgress) {
        calib.progress = config_.onProgress;
    }
    if (config_.cancel != nullptr) {
        calib.cancel = config_.cancel;
    }

    std::vector<Tensor> snapshot;
    if (config_.restoreOnCancel) {
        snapshot = snapshotParameters(model);
    }

    SessionResult result;
    try {
        ThreadCountScope threads(config_.threads);
        if (config_.offloadSaved) {
            MarshalContext ctx(config_.marshal);
            SavedTensorHooksGuard guard(&ctx);
            result.report = compressor_->compress(model, calib, selection);
        } else {
            result.report = compressor_->compress(model, calib, selection);
        }
    } catch (const CancelledError &) {
        clearTransientLayerState(model);
        if (config_.restoreOnCancel) {
            restoreParameters(model, snapshot);
        }
        result.cancelled = true;
        return result;
    } catch (...) {
        // Leave no dangling transforms/capture flags behind a failure.
        clearTransientLayerState(model);
        throw;
    }

    // Assemble the whole-model artifact: compressor payloads plus a
    // lossless raw entry for every parameter the scheme left alone.
    result.artifact.scheme = plan.scheme;
    result.artifact.config = model.config();
    result.artifact.size = result.report.size;
    result.artifact.entries = result.report.entries;
    for (auto &[name, param] : model.namedParameters()) {
        bool covered = false;
        for (const ArtifactEntry &e : result.artifact.entries) {
            if (e.name == name) {
                covered = true;
                break;
            }
        }
        if (!covered) {
            result.artifact.entries.push_back(
                encodeRawF32(name, param.data()));
        }
    }
    return result;
}

} // namespace api
} // namespace edkm
