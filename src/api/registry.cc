#include "api/registry.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace edkm {
namespace api {

CompressorRegistry &
CompressorRegistry::instance()
{
    static CompressorRegistry *registry = [] {
        auto *r = new CompressorRegistry();
        detail::registerBuiltins(*r);
        return r;
    }();
    return *registry;
}

void
CompressorRegistry::registerFactory(const std::string &name,
                                    Factory factory)
{
    EDKM_CHECK(!name.empty(), "registry: scheme name must not be empty");
    EDKM_CHECK(factory != nullptr, "registry: null factory for '", name,
               "'");
    for (auto &[existing, f] : factories_) {
        if (existing == name) {
            f = std::move(factory);
            return;
        }
    }
    factories_.emplace_back(name, std::move(factory));
}

bool
CompressorRegistry::contains(const std::string &name) const
{
    for (const auto &[existing, f] : factories_) {
        (void)f;
        if (existing == name) {
            return true;
        }
    }
    return false;
}

std::vector<std::string>
CompressorRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, f] : factories_) {
        (void)f;
        out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::unique_ptr<Compressor>
CompressorRegistry::create(const std::string &name,
                           const CompressionPlan &plan) const
{
    for (const auto &[existing, factory] : factories_) {
        if (existing == name) {
            std::unique_ptr<Compressor> c = factory(plan);
            EDKM_CHECK(c != nullptr, "registry: factory for '", name,
                       "' returned null");
            return c;
        }
    }
    std::ostringstream known;
    std::vector<std::string> all = names();
    for (size_t i = 0; i < all.size(); ++i) {
        known << (i ? ", " : "") << all[i];
    }
    fatal("registry: unknown compression scheme '", name,
          "' (known schemes: ", known.str(), ")");
}

} // namespace api
} // namespace edkm
