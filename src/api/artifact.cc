#include "api/artifact.h"

#include <cstring>
#include <fstream>

#include "core/palettize.h"
#include "quant/affine.h"
#include "util/checksum.h"
#include "util/half.h"
#include "util/logging.h"
#include "util/serial.h"

namespace edkm {
namespace api {

std::string
codecName(Codec codec)
{
    switch (codec) {
      case Codec::kRawF32: return "raw_f32";
      case Codec::kDenseF16: return "dense_f16";
      case Codec::kPalettized: return "palettized";
      case Codec::kAffine: return "affine";
    }
    return "unknown";
}

Tensor
ArtifactEntry::decode() const
{
    int64_t n = 1;
    for (int64_t d : shape) {
        n *= d;
    }
    switch (codec) {
      case Codec::kRawF32: {
          EDKM_CHECK(static_cast<int64_t>(payload.size()) == n * 4,
                     "artifact entry '", name, "': raw_f32 payload is ",
                     payload.size(), " bytes, expected ", n * 4);
          std::vector<float> vals(static_cast<size_t>(n));
          std::memcpy(vals.data(), payload.data(), payload.size());
          return Tensor::fromVector(vals, shape);
      }
      case Codec::kDenseF16: {
          EDKM_CHECK(static_cast<int64_t>(payload.size()) == n * 2,
                     "artifact entry '", name, "': dense_f16 payload is ",
                     payload.size(), " bytes, expected ", n * 2);
          std::vector<float> vals(static_cast<size_t>(n));
          for (int64_t i = 0; i < n; ++i) {
              uint16_t h;
              std::memcpy(&h, payload.data() + i * 2, 2);
              vals[static_cast<size_t>(i)] = fp16ToFloat(h);
          }
          return Tensor::fromVector(vals, shape);
      }
      case Codec::kPalettized: {
          PalettizedTensor p = PalettizedTensor::deserialize(payload);
          EDKM_CHECK(p.shape() == shape, "artifact entry '", name,
                     "': palettized payload shape disagrees with the "
                     "manifest");
          return p.decompress();
      }
      case Codec::kAffine: {
          quant::QuantizedMatrix q =
              quant::QuantizedMatrix::deserialize(payload);
          EDKM_CHECK(q.shape == shape, "artifact entry '", name,
                     "': affine payload shape disagrees with the "
                     "manifest");
          return q.dequantize();
      }
    }
    fatal("artifact entry '", name, "': unknown codec ",
          static_cast<uint32_t>(codec));
}

ArtifactEntry
encodeRawF32(const std::string &name, const Tensor &t)
{
    ArtifactEntry e;
    e.name = name;
    e.codec = Codec::kRawF32;
    e.bits = 0;
    e.shape = t.shape();
    std::vector<float> vals = t.toVector();
    e.payload.resize(vals.size() * 4);
    std::memcpy(e.payload.data(), vals.data(), e.payload.size());
    return e;
}

ArtifactEntry
encodeDenseF16(const std::string &name, const Tensor &t, int bits)
{
    ArtifactEntry e;
    e.name = name;
    e.codec = Codec::kDenseF16;
    e.bits = bits;
    e.shape = t.shape();
    std::vector<float> vals = t.toVector();
    e.payload.resize(vals.size() * 2);
    for (size_t i = 0; i < vals.size(); ++i) {
        uint16_t h = floatToFp16(vals[i]);
        std::memcpy(e.payload.data() + i * 2, &h, 2);
    }
    return e;
}

const ArtifactEntry &
ModelArtifact::entry(const std::string &name) const
{
    for (const ArtifactEntry &e : entries) {
        if (e.name == name) {
            return e;
        }
    }
    fatal("artifact: no entry for parameter '", name, "' (",
          entries.size(), " entries present)");
}

int64_t
ModelArtifact::payloadBytes() const
{
    int64_t total = 0;
    for (const ArtifactEntry &e : entries) {
        total += e.payloadBytes();
    }
    return total;
}

void
ModelArtifact::restoreInto(nn::MiniLlama &model) const
{
    for (auto &[name, param] : model.namedParameters()) {
        const ArtifactEntry &e = entry(name);
        Tensor t = e.decode();
        EDKM_CHECK(t.shape() == param.data().shape(), "artifact: entry '",
                   name, "' shape disagrees with the model");
        param.mutableData() = t;
    }
}

nn::MiniLlama
ModelArtifact::reconstruct() const
{
    nn::MiniLlama model(config);
    restoreInto(model);
    return model;
}

namespace {

constexpr uint64_t kArtifactMagicV1 = 0x314c444d4d4b4445ull; // "EDKMMDL1"
constexpr uint64_t kArtifactMagicV2 = 0x324c444d4d4b4445ull; // "EDKMMDL2"

/** Round @p x up to the container alignment. */
int64_t
alignUp(int64_t x)
{
    return (x + kArtifactAlign - 1) / kArtifactAlign * kArtifactAlign;
}

/**
 * Metadata common to a v1 entry and a v2 manifest record, validated on
 * read: codec range, bits range, rank/dimension sanity, element-count
 * overflow. @p where names the failing entry in errors.
 */
struct EntryMeta
{
    std::string name;
    Codec codec = Codec::kRawF32;
    int bits = 0;
    Shape shape;
    int64_t numel = 1;
};

EntryMeta
readEntryMeta(serial::ByteSpan span, size_t &at, const char *where)
{
    EntryMeta m;
    m.name = serial::readString(span, at);
    uint32_t codec = serial::readPod<uint32_t>(span, at);
    EDKM_CHECK(codec <= static_cast<uint32_t>(Codec::kAffine), where,
               ": entry '", m.name, "' has unknown codec ", codec);
    m.codec = static_cast<Codec>(codec);
    m.bits = static_cast<int>(serial::readPod<int32_t>(span, at));
    EDKM_CHECK(m.bits >= 0 && m.bits <= 32, where, ": entry '", m.name,
               "' has bad bits ", m.bits);
    uint32_t rank = serial::readPod<uint32_t>(span, at);
    EDKM_CHECK(rank >= 1 && rank <= 8, where, ": entry '", m.name,
               "' has bad rank ", rank);
    m.shape.resize(rank);
    for (uint32_t d = 0; d < rank; ++d) {
        m.shape[d] = serial::readPod<int64_t>(span, at);
        EDKM_CHECK(m.shape[d] > 0, where, ": entry '", m.name,
                   "' has bad dimension ", m.shape[d]);
        EDKM_CHECK(m.numel <= (int64_t{1} << 48) / m.shape[d], where,
                   ": entry '", m.name, "' element count overflows");
        m.numel *= m.shape[d];
    }
    return m;
}

void
appendEntryMeta(std::vector<uint8_t> &buf, const ArtifactEntry &e)
{
    serial::appendString(buf, e.name);
    serial::appendPod(buf, static_cast<uint32_t>(e.codec));
    serial::appendPod(buf, static_cast<int32_t>(e.bits));
    serial::appendPod(buf, static_cast<uint32_t>(e.shape.size()));
    for (int64_t d : e.shape) {
        serial::appendPod(buf, d);
    }
}

void
appendManifestHead(std::vector<uint8_t> &buf, const ModelArtifact &a)
{
    serial::appendString(buf, a.scheme);
    serial::appendPod(buf, a.config.vocab);
    serial::appendPod(buf, a.config.dim);
    serial::appendPod(buf, a.config.heads);
    serial::appendPod(buf, a.config.layers);
    serial::appendPod(buf, a.config.hidden);
    serial::appendPod(buf, a.config.seed);
    serial::appendString(buf, a.size.scheme);
    serial::appendPod(buf, a.size.payloadBytes);
    serial::appendPod(buf, a.size.bitsPerWeight);
    serial::appendPod(buf, a.size.projectedGb7B);
}

/** Reads scheme/config/size-report into @p layout-shaped fields. */
void
readManifestHead(serial::ByteSpan span, size_t &at, std::string &scheme,
                 nn::LlamaConfig &config, eval::SizeReport &size,
                 const char *where)
{
    scheme = serial::readString(span, at);
    config.vocab = serial::readPod<int64_t>(span, at);
    config.dim = serial::readPod<int64_t>(span, at);
    config.heads = serial::readPod<int64_t>(span, at);
    config.layers = serial::readPod<int64_t>(span, at);
    config.hidden = serial::readPod<int64_t>(span, at);
    config.seed = serial::readPod<uint64_t>(span, at);
    EDKM_CHECK(config.vocab > 0 && config.dim > 0 && config.heads > 0 &&
                   config.layers > 0 && config.hidden >= 0,
               where, ": bad model geometry");
    size.scheme = serial::readString(span, at);
    size.payloadBytes = serial::readPod<int64_t>(span, at);
    size.bitsPerWeight = serial::readPod<double>(span, at);
    size.projectedGb7B = serial::readPod<double>(span, at);
}

} // namespace

bool
isArtifactV2(const uint8_t *data, size_t size)
{
    if (size < sizeof(uint64_t)) {
        return false;
    }
    uint64_t magic;
    std::memcpy(&magic, data, sizeof(magic));
    return magic == kArtifactMagicV2;
}

bool
isArtifactV1(const uint8_t *data, size_t size)
{
    if (size < sizeof(uint64_t)) {
        return false;
    }
    uint64_t magic;
    std::memcpy(&magic, data, sizeof(magic));
    return magic == kArtifactMagicV1;
}

ArtifactLayout
parseArtifactLayout(const uint8_t *data, size_t size)
{
    constexpr const char *where = "artifact v2";
    serial::ByteSpan file(data, size);
    EDKM_CHECK(size >= static_cast<size_t>(kArtifactAlign), where,
               ": file is ", size, " bytes, smaller than the ",
               kArtifactAlign, "-byte header");

    size_t at = 0;
    uint64_t magic = serial::readPod<uint64_t>(file, at);
    EDKM_CHECK(magic == kArtifactMagicV2, where,
               ": bad magic (not an eDKM v2 model artifact)");
    uint32_t version = serial::readPod<uint32_t>(file, at);
    EDKM_CHECK(version == kArtifactVersionV2, where,
               ": unsupported container version ", version,
               " (this build reads v", kArtifactVersionV2, ")");
    uint32_t header_bytes = serial::readPod<uint32_t>(file, at);
    EDKM_CHECK(header_bytes == kArtifactAlign, where,
               ": header declares ", header_bytes,
               " header bytes, expected ", kArtifactAlign);
    uint64_t manifest_off = serial::readPod<uint64_t>(file, at);
    uint64_t manifest_bytes = serial::readPod<uint64_t>(file, at);
    uint64_t table_off = serial::readPod<uint64_t>(file, at);
    uint32_t section_count = serial::readPod<uint32_t>(file, at);
    // flags: bit 0 = checksum table present (v2.1). Unknown bits stay
    // ignored, matching the v2.0 "reserved, ignored on read" policy.
    uint32_t flags = serial::readPod<uint32_t>(file, at);
    uint64_t file_bytes = serial::readPod<uint64_t>(file, at);
    // v2.0 wrote this word as reserved-zero and never read it back;
    // v2.1 stores the checksum-table offset here, which is what keeps
    // checksummed files readable by v2.0 parsers.
    uint64_t checksum_off = serial::readPod<uint64_t>(file, at);
    EDKM_CHECK(file_bytes == size, where, ": header declares ",
               file_bytes, " file bytes but ", size,
               " are present (truncated or padded file)");
    EDKM_CHECK(manifest_off == static_cast<uint64_t>(kArtifactAlign),
               where, ": manifest offset ", manifest_off,
               " (expected ", kArtifactAlign, ")");
    EDKM_CHECK(manifest_bytes <= size - manifest_off, where,
               ": manifest (", manifest_bytes,
               " bytes) runs past the end of the file");
    EDKM_CHECK(table_off % kArtifactAlign == 0, where,
               ": section table offset ", table_off, " is not ",
               kArtifactAlign, "-byte aligned");
    EDKM_CHECK(table_off >= manifest_off + manifest_bytes, where,
               ": section table overlaps the manifest");
    EDKM_CHECK(table_off <= size &&
                   static_cast<uint64_t>(section_count) * 16 <=
                       size - table_off,
               where, ": section table (", section_count,
               " sections at offset ", table_off,
               ") runs past the end of the file");

    // Manifest: scheme, geometry, accounting, per-tensor metadata.
    ArtifactLayout layout;
    serial::ByteSpan manifest(data + manifest_off,
                              static_cast<size_t>(manifest_bytes));
    size_t mat = 0;
    readManifestHead(manifest, mat, layout.scheme, layout.config,
                     layout.size, where);
    uint32_t entry_count = serial::readPod<uint32_t>(manifest, mat);
    EDKM_CHECK(entry_count == section_count, where, ": manifest lists ",
               entry_count, " tensors but the section table has ",
               section_count);
    std::vector<EntryMeta> metas;
    metas.reserve(entry_count);
    for (uint32_t i = 0; i < entry_count; ++i) {
        metas.push_back(readEntryMeta(manifest, mat, where));
        uint32_t section_index = serial::readPod<uint32_t>(manifest, mat);
        EDKM_CHECK(section_index == i, where, ": entry '",
                   metas.back().name, "' claims section ", section_index,
                   ", expected ", i);
    }
    EDKM_CHECK(mat == manifest.size, where, ": manifest has ",
               manifest.size - mat, " trailing bytes");

    // Section table: ascending, aligned, in-bounds, non-overlapping.
    size_t tat = static_cast<size_t>(table_off);
    uint64_t payload_floor =
        table_off + static_cast<uint64_t>(section_count) * 16;
    uint64_t prev_end = payload_floor;
    layout.sections.reserve(entry_count);
    for (uint32_t i = 0; i < entry_count; ++i) {
        uint64_t off = serial::readPod<uint64_t>(file, tat);
        uint64_t bytes = serial::readPod<uint64_t>(file, tat);
        const EntryMeta &m = metas[i];
        EDKM_CHECK(off % kArtifactAlign == 0, where, ": section '",
                   m.name, "' at offset ", off, " is not ",
                   kArtifactAlign, "-byte aligned");
        EDKM_CHECK(off >= prev_end, where, ": section '", m.name,
                   "' at offset ", off,
                   " overlaps the preceding section (ends at ", prev_end,
                   ")");
        EDKM_CHECK(bytes <= size && off <= size - bytes, where,
                   ": section '", m.name, "' (offset ", off, ", ", bytes,
                   " bytes) runs past the end of the file");
        // Fixed-stride codecs have a known exact size; catch mismatches
        // here so a corrupt table fails before any payload is touched.
        if (m.codec == Codec::kRawF32) {
            EDKM_CHECK(static_cast<int64_t>(bytes) == m.numel * 4, where,
                       ": section '", m.name, "' holds ", bytes,
                       " bytes, raw_f32 for its shape needs ",
                       m.numel * 4);
        } else if (m.codec == Codec::kDenseF16) {
            EDKM_CHECK(static_cast<int64_t>(bytes) == m.numel * 2, where,
                       ": section '", m.name, "' holds ", bytes,
                       " bytes, dense_f16 for its shape needs ",
                       m.numel * 2);
        }
        TensorSection s;
        s.name = m.name;
        s.codec = m.codec;
        s.bits = m.bits;
        s.shape = m.shape;
        s.offset = static_cast<int64_t>(off);
        s.bytes = static_cast<int64_t>(bytes);
        layout.sections.push_back(std::move(s));
        prev_end = off + bytes;
    }

    // v2.1 checksum table: [header digest][one checksum per section],
    // after the last payload. The header digest (header + manifest +
    // section table) is verified here — it is tiny next to the
    // payloads, and everything it covers was just read anyway; payload
    // verification policy belongs to the caller (ArtifactReader's
    // EDKM_VERIFY modes, ModelArtifact::deserialize's eager check).
    layout.hasChecksums = (flags & kArtifactFlagChecksums) != 0;
    if (layout.hasChecksums) {
        uint64_t table_bytes =
            (1 + static_cast<uint64_t>(section_count)) * 8;
        EDKM_CHECK(checksum_off % kArtifactAlign == 0, where,
                   ": checksum table offset ", checksum_off, " is not ",
                   kArtifactAlign, "-byte aligned");
        EDKM_CHECK(checksum_off >= prev_end, where,
                   ": checksum table at offset ", checksum_off,
                   " overlaps the payload sections (end at ", prev_end,
                   ")");
        EDKM_CHECK(checksum_off <= size &&
                       table_bytes <= size - checksum_off,
                   where, ": checksum table (", table_bytes,
                   " bytes at offset ", checksum_off,
                   ") runs past the end of the file");
        layout.checksumTableOffset = static_cast<int64_t>(checksum_off);
        size_t cat = static_cast<size_t>(checksum_off);
        layout.headerDigest = serial::readPod<uint64_t>(file, cat);
        for (uint32_t i = 0; i < section_count; ++i) {
            layout.sections[i].checksum =
                serial::readPod<uint64_t>(file, cat);
        }
        uint64_t got = checksum64(data, payload_floor);
        EDKM_CHECK(got == layout.headerDigest, where,
                   ": header/manifest/section-table digest mismatch "
                   "(stored ", layout.headerDigest, ", computed ", got,
                   ") — container metadata is corrupted");
    }
    return layout;
}

void
verifyArtifactSection(const ArtifactLayout &layout,
                      const TensorSection &s, const uint8_t *data)
{
    if (!layout.hasChecksums) {
        return;
    }
    uint64_t got = checksum64(data + s.offset,
                              static_cast<size_t>(s.bytes));
    EDKM_CHECK(got == s.checksum, "artifact v2.1: section '", s.name,
               "' payload checksum mismatch (stored ", s.checksum,
               ", computed ", got, ") — payload bytes are corrupted");
}

std::vector<uint8_t>
ModelArtifact::serialize(bool with_checksums) const
{
    // Manifest: head + per-entry metadata + section index.
    std::vector<uint8_t> manifest;
    appendManifestHead(manifest, *this);
    serial::appendPod(manifest, static_cast<uint32_t>(entries.size()));
    for (size_t i = 0; i < entries.size(); ++i) {
        appendEntryMeta(manifest, entries[i]);
        serial::appendPod(manifest, static_cast<uint32_t>(i));
    }

    int64_t table_off =
        alignUp(kArtifactAlign + static_cast<int64_t>(manifest.size()));
    int64_t payload_start =
        alignUp(table_off + static_cast<int64_t>(entries.size()) * 16);
    std::vector<int64_t> offsets(entries.size());
    int64_t cur = payload_start;
    for (size_t i = 0; i < entries.size(); ++i) {
        offsets[i] = cur;
        cur = alignUp(cur + entries[i].payloadBytes());
    }
    // v2.1: the checksum table ([header digest][per-section checksums])
    // trails the last payload; its offset rides in the header word
    // v2.0 wrote as reserved-zero, so v2.0 readers still parse these
    // files (flags and the reserved word are ignored there, and the
    // declared file size simply covers the extra tail).
    int64_t checksum_off = with_checksums ? cur : 0;
    int64_t file_bytes =
        with_checksums
            ? alignUp(checksum_off +
                      (1 + static_cast<int64_t>(entries.size())) * 8)
            : cur;

    std::vector<uint8_t> header;
    serial::appendPod(header, kArtifactMagicV2);
    serial::appendPod(header, kArtifactVersionV2);
    serial::appendPod(header, static_cast<uint32_t>(kArtifactAlign));
    serial::appendPod(header, static_cast<uint64_t>(kArtifactAlign));
    serial::appendPod(header, static_cast<uint64_t>(manifest.size()));
    serial::appendPod(header, static_cast<uint64_t>(table_off));
    serial::appendPod(header, static_cast<uint32_t>(entries.size()));
    serial::appendPod(header,
                      with_checksums ? kArtifactFlagChecksums
                                     : uint32_t{0}); // flags
    serial::appendPod(header, static_cast<uint64_t>(file_bytes));
    serial::appendPod(header, static_cast<uint64_t>(checksum_off));
    EDKM_ASSERT(static_cast<int64_t>(header.size()) <= kArtifactAlign,
                "artifact v2 header grew past its fixed size");

    std::vector<uint8_t> buf(static_cast<size_t>(file_bytes), 0);
    std::memcpy(buf.data(), header.data(), header.size());
    std::memcpy(buf.data() + kArtifactAlign, manifest.data(),
                manifest.size());
    uint8_t *table = buf.data() + table_off;
    for (size_t i = 0; i < entries.size(); ++i) {
        uint64_t off = static_cast<uint64_t>(offsets[i]);
        uint64_t bytes = static_cast<uint64_t>(entries[i].payloadBytes());
        std::memcpy(table + i * 16, &off, 8);
        std::memcpy(table + i * 16 + 8, &bytes, 8);
        std::memcpy(buf.data() + offsets[i], entries[i].payload.data(),
                    entries[i].payload.size());
    }
    if (with_checksums) {
        uint8_t *sums = buf.data() + checksum_off;
        // Header digest covers everything ahead of the payloads:
        // header, manifest (and its padding) and the section table.
        uint64_t digest = checksum64(
            buf.data(), static_cast<size_t>(table_off) +
                            entries.size() * 16);
        std::memcpy(sums, &digest, 8);
        for (size_t i = 0; i < entries.size(); ++i) {
            uint64_t sum = checksum64(buf.data() + offsets[i],
                                      entries[i].payload.size());
            std::memcpy(sums + 8 + i * 8, &sum, 8);
        }
    }
    return buf;
}

std::vector<uint8_t>
ModelArtifact::serializeV1() const
{
    std::vector<uint8_t> buf;
    serial::appendPod(buf, kArtifactMagicV1);
    appendManifestHead(buf, *this);
    serial::appendPod(buf, static_cast<uint32_t>(entries.size()));
    for (const ArtifactEntry &e : entries) {
        appendEntryMeta(buf, e);
        serial::appendBytes(buf, e.payload);
    }
    return buf;
}

ModelArtifact
ModelArtifact::deserialize(serial::ByteSpan bytes)
{
    if (isArtifactV2(bytes.data, bytes.size)) {
        ArtifactLayout layout =
            parseArtifactLayout(bytes.data, bytes.size);
        ModelArtifact a;
        a.scheme = layout.scheme;
        a.config = layout.config;
        a.size = layout.size;
        a.entries.reserve(layout.sections.size());
        for (const TensorSection &s : layout.sections) {
            // Eager tooling path: verify every checksummed payload
            // before it is copied (v2.0 layouts have none to verify).
            verifyArtifactSection(layout, s, bytes.data);
            ArtifactEntry e;
            e.name = s.name;
            e.codec = s.codec;
            e.bits = s.bits;
            e.shape = s.shape;
            e.payload.assign(bytes.data + s.offset,
                             bytes.data + s.offset + s.bytes);
            a.entries.push_back(std::move(e));
        }
        return a;
    }

    // Legacy v1 stream, gated on its magic.
    size_t at = 0;
    EDKM_CHECK(serial::readPod<uint64_t>(bytes, at) == kArtifactMagicV1,
               "ModelArtifact::deserialize: bad magic (not an eDKM "
               "model artifact)");
    ModelArtifact a;
    readManifestHead(bytes, at, a.scheme, a.config, a.size,
                     "ModelArtifact::deserialize");
    uint32_t n = serial::readPod<uint32_t>(bytes, at);
    a.entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        EntryMeta m =
            readEntryMeta(bytes, at, "ModelArtifact::deserialize");
        ArtifactEntry e;
        e.name = std::move(m.name);
        e.codec = m.codec;
        e.bits = m.bits;
        e.shape = std::move(m.shape);
        e.payload = serial::readBytes(bytes, at);
        a.entries.push_back(std::move(e));
    }
    EDKM_CHECK(at == bytes.size, "ModelArtifact::deserialize: ",
               bytes.size - at, " trailing bytes");
    return a;
}

void
ModelArtifact::save(const std::string &path) const
{
    std::vector<uint8_t> buf = serialize();
    std::ofstream f(path, std::ios::binary);
    EDKM_CHECK(f.good(), "artifact: cannot open ", path, " for writing");
    f.write(reinterpret_cast<const char *>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    EDKM_CHECK(f.good(), "artifact: write to ", path, " failed");
}

ModelArtifact
ModelArtifact::load(const std::string &path)
{
    return deserialize(serial::readFile(path));
}

} // namespace api
} // namespace edkm
