#include "api/artifact.h"

#include <cstring>
#include <fstream>

#include "core/palettize.h"
#include "quant/affine.h"
#include "util/half.h"
#include "util/logging.h"
#include "util/serial.h"

namespace edkm {
namespace api {

std::string
codecName(Codec codec)
{
    switch (codec) {
      case Codec::kRawF32: return "raw_f32";
      case Codec::kDenseF16: return "dense_f16";
      case Codec::kPalettized: return "palettized";
      case Codec::kAffine: return "affine";
    }
    return "unknown";
}

Tensor
ArtifactEntry::decode() const
{
    int64_t n = 1;
    for (int64_t d : shape) {
        n *= d;
    }
    switch (codec) {
      case Codec::kRawF32: {
          EDKM_CHECK(static_cast<int64_t>(payload.size()) == n * 4,
                     "artifact entry '", name, "': raw_f32 payload is ",
                     payload.size(), " bytes, expected ", n * 4);
          std::vector<float> vals(static_cast<size_t>(n));
          std::memcpy(vals.data(), payload.data(), payload.size());
          return Tensor::fromVector(vals, shape);
      }
      case Codec::kDenseF16: {
          EDKM_CHECK(static_cast<int64_t>(payload.size()) == n * 2,
                     "artifact entry '", name, "': dense_f16 payload is ",
                     payload.size(), " bytes, expected ", n * 2);
          std::vector<float> vals(static_cast<size_t>(n));
          for (int64_t i = 0; i < n; ++i) {
              uint16_t h;
              std::memcpy(&h, payload.data() + i * 2, 2);
              vals[static_cast<size_t>(i)] = fp16ToFloat(h);
          }
          return Tensor::fromVector(vals, shape);
      }
      case Codec::kPalettized: {
          PalettizedTensor p = PalettizedTensor::deserialize(payload);
          EDKM_CHECK(p.shape() == shape, "artifact entry '", name,
                     "': palettized payload shape disagrees with the "
                     "manifest");
          return p.decompress();
      }
      case Codec::kAffine: {
          quant::QuantizedMatrix q =
              quant::QuantizedMatrix::deserialize(payload);
          EDKM_CHECK(q.shape == shape, "artifact entry '", name,
                     "': affine payload shape disagrees with the "
                     "manifest");
          return q.dequantize();
      }
    }
    fatal("artifact entry '", name, "': unknown codec ",
          static_cast<uint32_t>(codec));
}

ArtifactEntry
encodeRawF32(const std::string &name, const Tensor &t)
{
    ArtifactEntry e;
    e.name = name;
    e.codec = Codec::kRawF32;
    e.bits = 0;
    e.shape = t.shape();
    std::vector<float> vals = t.toVector();
    e.payload.resize(vals.size() * 4);
    std::memcpy(e.payload.data(), vals.data(), e.payload.size());
    return e;
}

ArtifactEntry
encodeDenseF16(const std::string &name, const Tensor &t, int bits)
{
    ArtifactEntry e;
    e.name = name;
    e.codec = Codec::kDenseF16;
    e.bits = bits;
    e.shape = t.shape();
    std::vector<float> vals = t.toVector();
    e.payload.resize(vals.size() * 2);
    for (size_t i = 0; i < vals.size(); ++i) {
        uint16_t h = floatToFp16(vals[i]);
        std::memcpy(e.payload.data() + i * 2, &h, 2);
    }
    return e;
}

const ArtifactEntry &
ModelArtifact::entry(const std::string &name) const
{
    for (const ArtifactEntry &e : entries) {
        if (e.name == name) {
            return e;
        }
    }
    fatal("artifact: no entry for parameter '", name, "' (",
          entries.size(), " entries present)");
}

int64_t
ModelArtifact::payloadBytes() const
{
    int64_t total = 0;
    for (const ArtifactEntry &e : entries) {
        total += e.payloadBytes();
    }
    return total;
}

void
ModelArtifact::restoreInto(nn::MiniLlama &model) const
{
    for (auto &[name, param] : model.namedParameters()) {
        const ArtifactEntry &e = entry(name);
        Tensor t = e.decode();
        EDKM_CHECK(t.shape() == param.data().shape(), "artifact: entry '",
                   name, "' shape disagrees with the model");
        param.mutableData() = t;
    }
}

nn::MiniLlama
ModelArtifact::reconstruct() const
{
    nn::MiniLlama model(config);
    restoreInto(model);
    return model;
}

namespace {

constexpr uint64_t kArtifactMagic = 0x314c444d4d4b4445ull; // "EDKMMDL1"

} // namespace

std::vector<uint8_t>
ModelArtifact::serialize() const
{
    std::vector<uint8_t> buf;
    serial::appendPod(buf, kArtifactMagic);
    serial::appendString(buf, scheme);
    serial::appendPod(buf, config.vocab);
    serial::appendPod(buf, config.dim);
    serial::appendPod(buf, config.heads);
    serial::appendPod(buf, config.layers);
    serial::appendPod(buf, config.hidden);
    serial::appendPod(buf, config.seed);
    serial::appendString(buf, size.scheme);
    serial::appendPod(buf, size.payloadBytes);
    serial::appendPod(buf, size.bitsPerWeight);
    serial::appendPod(buf, size.projectedGb7B);
    serial::appendPod(buf, static_cast<uint32_t>(entries.size()));
    for (const ArtifactEntry &e : entries) {
        serial::appendString(buf, e.name);
        serial::appendPod(buf, static_cast<uint32_t>(e.codec));
        serial::appendPod(buf, static_cast<int32_t>(e.bits));
        serial::appendPod(buf, static_cast<uint32_t>(e.shape.size()));
        for (int64_t d : e.shape) {
            serial::appendPod(buf, d);
        }
        serial::appendBytes(buf, e.payload);
    }
    return buf;
}

ModelArtifact
ModelArtifact::deserialize(const std::vector<uint8_t> &bytes)
{
    size_t at = 0;
    EDKM_CHECK(serial::readPod<uint64_t>(bytes, at) == kArtifactMagic,
               "ModelArtifact::deserialize: bad magic (not an eDKM "
               "model artifact)");
    ModelArtifact a;
    a.scheme = serial::readString(bytes, at);
    a.config.vocab = serial::readPod<int64_t>(bytes, at);
    a.config.dim = serial::readPod<int64_t>(bytes, at);
    a.config.heads = serial::readPod<int64_t>(bytes, at);
    a.config.layers = serial::readPod<int64_t>(bytes, at);
    a.config.hidden = serial::readPod<int64_t>(bytes, at);
    a.config.seed = serial::readPod<uint64_t>(bytes, at);
    EDKM_CHECK(a.config.vocab > 0 && a.config.dim > 0 &&
                   a.config.heads > 0 && a.config.layers > 0 &&
                   a.config.hidden >= 0,
               "ModelArtifact::deserialize: bad model geometry");
    a.size.scheme = serial::readString(bytes, at);
    a.size.payloadBytes = serial::readPod<int64_t>(bytes, at);
    a.size.bitsPerWeight = serial::readPod<double>(bytes, at);
    a.size.projectedGb7B = serial::readPod<double>(bytes, at);
    uint32_t n = serial::readPod<uint32_t>(bytes, at);
    a.entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        ArtifactEntry e;
        e.name = serial::readString(bytes, at);
        uint32_t codec = serial::readPod<uint32_t>(bytes, at);
        EDKM_CHECK(codec <= static_cast<uint32_t>(Codec::kAffine),
                   "ModelArtifact::deserialize: entry '", e.name,
                   "' has unknown codec ", codec);
        e.codec = static_cast<Codec>(codec);
        e.bits = static_cast<int>(serial::readPod<int32_t>(bytes, at));
        EDKM_CHECK(e.bits >= 0 && e.bits <= 32,
                   "ModelArtifact::deserialize: entry '", e.name,
                   "' has bad bits ", e.bits);
        uint32_t rank = serial::readPod<uint32_t>(bytes, at);
        EDKM_CHECK(rank >= 1 && rank <= 8,
                   "ModelArtifact::deserialize: entry '", e.name,
                   "' has bad rank ", rank);
        e.shape.resize(rank);
        int64_t elems = 1;
        for (uint32_t d = 0; d < rank; ++d) {
            e.shape[d] = serial::readPod<int64_t>(bytes, at);
            EDKM_CHECK(e.shape[d] > 0,
                       "ModelArtifact::deserialize: entry '", e.name,
                       "' has bad dimension ", e.shape[d]);
            EDKM_CHECK(elems <= (int64_t{1} << 48) / e.shape[d],
                       "ModelArtifact::deserialize: entry '", e.name,
                       "' element count overflows");
            elems *= e.shape[d];
        }
        e.payload = serial::readBytes(bytes, at);
        a.entries.push_back(std::move(e));
    }
    EDKM_CHECK(at == bytes.size(), "ModelArtifact::deserialize: ",
               bytes.size() - at, " trailing bytes");
    return a;
}

void
ModelArtifact::save(const std::string &path) const
{
    std::vector<uint8_t> buf = serialize();
    std::ofstream f(path, std::ios::binary);
    EDKM_CHECK(f.good(), "artifact: cannot open ", path, " for writing");
    f.write(reinterpret_cast<const char *>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    EDKM_CHECK(f.good(), "artifact: write to ", path, " failed");
}

ModelArtifact
ModelArtifact::load(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EDKM_CHECK(f.good(), "artifact: cannot open ", path);
    std::vector<uint8_t> buf((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
    return deserialize(buf);
}

} // namespace api
} // namespace edkm
