/**
 * @file
 * Built-in Compressor adapters: one per Table 3 scheme.
 *
 * Each adapter walks the model's Linears under the resolved
 * LayerSelection (honouring per-layer bits/group-size overrides and
 * skips), installs the compressed weight in place, and emits the
 * artifact payload that decodes to *exactly* the installed tensor.
 * Schemes whose native storage is not losslessly dense-decodable
 * (AWQ's folded scales, SmoothQuant, baked QAT) round the installed
 * weight through FP16 and ship a dense FP16 payload, while the
 * SizeReport still accounts the scheme's true storage format.
 *
 * Accounting mirrors the legacy eval free functions: non-Linear
 * parameters at FP16, skipped Linears at FP16, compressed Linears at
 * their serialized payload size.
 */

#include <memory>
#include <utility>
#include <vector>

#include "api/compressor.h"
#include "api/registry.h"
#include "autograd/variable.h"
#include "core/edkm.h"
#include "core/palettize.h"
#include "eval/train.h"
#include "quant/affine.h"
#include "quant/awq.h"
#include "quant/gptq.h"
#include "quant/qat.h"
#include "quant/smoothquant.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace api {

namespace {

// Size accounting shared with the legacy eval entry points (one
// definition keeps both paths' SizeReports in agreement).
using eval::detail::fp16SideBytes;
using eval::detail::linearBits;
using eval::detail::makeSizeReport;

/** Round every element of @p t through FP16 (its deployed precision). */
Tensor
roundTensorFp16(const Tensor &t)
{
    std::vector<float> vals = t.toVector();
    for (float &v : vals) {
        v = roundToFp16(v);
    }
    return Tensor::fromVector(vals, t.shape());
}

/** Weight parameter path of the Linear at module path @p path. */
std::string
weightName(const std::string &path)
{
    return path + ".weight";
}

/**
 * Shared walk for the per-layer post-training schemes: for each
 * Linear, ticks progress, honours skips (FP16 accounting + lossless
 * raw payload), checks cancellation, and calls @p quantizeOne with the
 * layer and its spec. quantizeOne returns the layer's accounting bytes
 * and appends its artifact entry.
 */
template <typename Fn>
std::pair<int64_t, CompressionReport>
forEachLinear(nn::MiniLlama &model, const CalibData &calib,
              const LayerSelection &selection, const std::string &stage,
              Fn quantizeOne)
{
    CompressionReport report;
    int64_t linear_payload = 0;
    auto linears = model.allLinears();
    for (size_t i = 0; i < linears.size(); ++i) {
        auto &[path, linear] = linears[i];
        calib.checkCancelled("layer " + path);
        calib.tick(stage, path, i, linears.size());
        const LayerSpec &spec = selection.specFor(path);
        if (spec.skip) {
            report.skippedLayers.push_back(path);
            report.entries.push_back(encodeRawF32(
                weightName(path), linear->weight().data()));
            linear_payload += linear->weight().data().numel() * 2;
            continue;
        }
        linear_payload += quantizeOne(path, linear, spec, report);
    }
    return {linear_payload, report};
}

// ---------------------------------------------------------------------
// fp16 baseline
// ---------------------------------------------------------------------

/**
 * The uncompressed reference: weights ship (and evaluate) at FP16.
 * Non-skipped Linear weights are rounded through FP16 in place so the
 * artifact round trip is bit-exact; everything else stays raw.
 */
class Fp16Compressor : public Compressor
{
  public:
    std::string name() const override { return "fp16"; }

    CompressionReport
    compress(nn::MiniLlama &model, const CalibData &calib,
             const LayerSelection &selection) override
    {
        auto [linear_payload, report] = forEachLinear(
            model, calib, selection, "round",
            [](const std::string &path, nn::Linear *linear,
               const LayerSpec &, CompressionReport &r) -> int64_t {
                Tensor w = roundTensorFp16(linear->weight().data());
                linear->weight().mutableData() = w;
                r.entries.push_back(
                    encodeDenseF16(weightName(path), w, 16));
                return w.numel() * 2;
            });
        int64_t payload =
            fp16SideBytes(model, /*include_embedding=*/true) +
            linear_payload;
        report.size = makeSizeReport("fp16", payload, model.parameterCount(),
                                 linearBits(model, linear_payload), 16.0);
        return report;
    }
};

// ---------------------------------------------------------------------
// RTN
// ---------------------------------------------------------------------

class RtnCompressor : public Compressor
{
  public:
    std::string name() const override { return "rtn"; }

    CompressionReport
    compress(nn::MiniLlama &model, const CalibData &calib,
             const LayerSelection &selection) override
    {
        auto [linear_payload, report] = forEachLinear(
            model, calib, selection, "quantize",
            [](const std::string &path, nn::Linear *linear,
               const LayerSpec &spec, CompressionReport &r) -> int64_t {
                quant::QuantizedMatrix q = quant::quantizeAffine(
                    linear->weight().data(), spec.bits, spec.groupSize);
                linear->weight().mutableData() = q.dequantize();
                ArtifactEntry e;
                e.name = weightName(path);
                e.codec = Codec::kAffine;
                e.bits = spec.bits;
                e.shape = q.shape;
                e.payload = q.serialize();
                r.entries.push_back(std::move(e));
                return q.payloadBytes();
            });
        int64_t payload =
            fp16SideBytes(model, /*include_embedding=*/true) +
            linear_payload;
        report.size = makeSizeReport("RTN", payload, model.parameterCount(),
                                 linearBits(model, linear_payload), 16.0);
        return report;
    }
};

// ---------------------------------------------------------------------
// Calibration-capture helpers (GPTQ / AWQ / SmoothQuant)
// ---------------------------------------------------------------------

/** Run one forward pass so capture-enabled Linears stash inputs. */
void
runCalibration(nn::MiniLlama &model, const CalibData &calib,
               const LayerSelection &selection, const std::string &scheme)
{
    EDKM_CHECK(calib.tokens.defined(), scheme,
               ": CalibData.tokens (calibration batch) is required");
    for (auto &[path, linear] : model.allLinears()) {
        if (!selection.specFor(path).skip) {
            linear->setCaptureInputs(true);
        }
    }
    calib.tick("calibrate", "", 0, 1);
    NoGradGuard ng;
    model.forward(calib.tokens);
}

/** Fetch (and disable) a layer's captured calibration input. */
Tensor
takeCaptured(nn::Linear *linear, const std::string &path,
             const std::string &scheme)
{
    linear->setCaptureInputs(false);
    EDKM_CHECK(linear->capturedInput().defined(), scheme,
               ": calibration did not reach layer ", path);
    return linear->capturedInput();
}

class GptqCompressor : public Compressor
{
  public:
    explicit GptqCompressor(float percdamp) : percdamp_(percdamp) {}

    std::string name() const override { return "gptq"; }

    CompressionReport
    compress(nn::MiniLlama &model, const CalibData &calib,
             const LayerSelection &selection) override
    {
        runCalibration(model, calib, selection, "gptq");
        float percdamp = percdamp_;
        auto [linear_payload, report] = forEachLinear(
            model, calib, selection, "quantize",
            [percdamp](const std::string &path, nn::Linear *linear,
                       const LayerSpec &spec,
                       CompressionReport &r) -> int64_t {
                Tensor x = takeCaptured(linear, path, "gptq");
                quant::GptqConfig qc;
                qc.bits = spec.bits;
                qc.groupSize = spec.groupSize;
                qc.percdamp = percdamp;
                quant::QuantizedMatrix q;
                quant::gptqQuantize(linear->weight().data(), x, qc, &q);
                // Install the decoded storage format (bit-identical to
                // the returned dequantised weight) so memory == artifact.
                linear->weight().mutableData() = q.dequantize();
                ArtifactEntry e;
                e.name = weightName(path);
                e.codec = Codec::kAffine;
                e.bits = spec.bits;
                e.shape = q.shape;
                e.payload = q.serialize();
                r.entries.push_back(std::move(e));
                return q.payloadBytes();
            });
        int64_t payload =
            fp16SideBytes(model, /*include_embedding=*/true) +
            linear_payload;
        report.size = makeSizeReport("GPTQ", payload, model.parameterCount(),
                                 linearBits(model, linear_payload), 16.0);
        return report;
    }

  private:
    float percdamp_;
};

class AwqCompressor : public Compressor
{
  public:
    explicit AwqCompressor(int grid_points) : grid_points_(grid_points) {}

    std::string name() const override { return "awq"; }

    CompressionReport
    compress(nn::MiniLlama &model, const CalibData &calib,
             const LayerSelection &selection) override
    {
        runCalibration(model, calib, selection, "awq");
        int grid = grid_points_;
        auto [linear_payload, report] = forEachLinear(
            model, calib, selection, "quantize",
            [grid](const std::string &path, nn::Linear *linear,
                   const LayerSpec &spec, CompressionReport &r) -> int64_t {
                Tensor x = takeCaptured(linear, path, "awq");
                quant::AwqConfig ac;
                ac.bits = spec.bits;
                ac.groupSize = spec.groupSize;
                ac.gridPoints = grid;
                Tensor dq = roundTensorFp16(quant::awqQuantize(
                    linear->weight().data(), x, ac));
                linear->weight().mutableData() = dq;
                r.entries.push_back(
                    encodeDenseF16(weightName(path), dq, spec.bits));
                // Accounting: RTN payload at these bits plus FP16
                // per-channel AWQ scales.
                quant::QuantizedMatrix q = quant::quantizeAffine(
                    dq, spec.bits, spec.groupSize);
                return q.payloadBytes() + linear->inFeatures() * 2;
            });
        int64_t payload =
            fp16SideBytes(model, /*include_embedding=*/true) +
            linear_payload;
        report.size = makeSizeReport("AWQ", payload, model.parameterCount(),
                                 linearBits(model, linear_payload), 16.0);
        return report;
    }

  private:
    int grid_points_;
};

class SmoothQuantCompressor : public Compressor
{
  public:
    explicit SmoothQuantCompressor(float alpha) : alpha_(alpha) {}

    std::string name() const override { return "smoothquant"; }

    CompressionReport
    compress(nn::MiniLlama &model, const CalibData &calib,
             const LayerSelection &selection) override
    {
        runCalibration(model, calib, selection, "smoothquant");
        float alpha = alpha_;
        auto [linear_payload, report] = forEachLinear(
            model, calib, selection, "quantize",
            [alpha](const std::string &path, nn::Linear *linear,
                    const LayerSpec &spec,
                    CompressionReport &r) -> int64_t {
                Tensor x = takeCaptured(linear, path, "smoothquant");
                quant::SmoothQuantConfig sc;
                sc.alpha = alpha;
                sc.weightBits = spec.bits;
                quant::SmoothedLayer s = quant::smoothQuantize(
                    linear->weight().data(), x, sc);
                Tensor w = roundTensorFp16(s.weight);
                linear->weight().mutableData() = w;
                r.entries.push_back(
                    encodeDenseF16(weightName(path), w, spec.bits));
                return w.numel() * spec.bits / 8 +
                       linear->inFeatures() * 2;
            });
        int64_t payload =
            fp16SideBytes(model, /*include_embedding=*/true) +
            linear_payload;
        report.size = makeSizeReport("SmoothQuant", payload,
                                 model.parameterCount(),
                                 linearBits(model, linear_payload), 16.0);
        return report;
    }

  private:
    float alpha_;
};

// ---------------------------------------------------------------------
// Train-time schemes: LLM-QAT and DKM/eDKM
// ---------------------------------------------------------------------

/** Fine-tune with the CalibData stream (train-time schemes). */
void
runFineTune(nn::MiniLlama &model, const CalibData &calib,
            const std::string &scheme)
{
    if (calib.trainConfig.steps <= 0) {
        return; // freeze-only run (e.g. size accounting benches)
    }
    EDKM_CHECK(calib.trainStream != nullptr, scheme,
               ": CalibData.trainStream is required for train-time "
               "schemes (or set trainConfig.steps = 0 to freeze "
               "without fine-tuning)");
    calib.checkCancelled("fine-tuning");
    calib.tick("train", "", 0, 1);
    eval::trainLm(model, *calib.trainStream, calib.trainConfig);
    calib.checkCancelled("fine-tuning");
}

class QatCompressor : public Compressor
{
  public:
    std::string name() const override { return "qat"; }

    CompressionReport
    compress(nn::MiniLlama &model, const CalibData &calib,
             const LayerSelection &selection) override
    {
        // Attach fake-quant weight transforms to the selected layers.
        for (auto &[path, linear] : model.allLinears()) {
            const LayerSpec &spec = selection.specFor(path);
            if (spec.skip) {
                continue;
            }
            int bits = spec.bits;
            int64_t g = spec.groupSize;
            linear->setWeightTransform([bits, g](const Variable &w) {
                return quant::fakeQuantize(w, bits, g);
            });
        }
        runFineTune(model, calib, "qat");

        // Bake the quantisation in and clear the transforms.
        auto [linear_payload, report] = forEachLinear(
            model, calib, selection, "freeze",
            [](const std::string &path, nn::Linear *linear,
               const LayerSpec &spec, CompressionReport &r) -> int64_t {
                linear->setWeightTransform(nullptr);
                Tensor w = roundTensorFp16(quant::fakeQuantizeData(
                    linear->weight().data(), spec.bits, spec.groupSize));
                linear->weight().mutableData() = w;
                r.entries.push_back(
                    encodeDenseF16(weightName(path), w, spec.bits));
                // Symmetric per-channel storage: n*bits payload + FP16
                // scale per row.
                return w.numel() * spec.bits / 8 +
                       linear->outFeatures() * 2;
            });
        int64_t payload =
            fp16SideBytes(model, /*include_embedding=*/true) +
            linear_payload;
        report.size = makeSizeReport("LLM-QAT", payload,
                                 model.parameterCount(),
                                 linearBits(model, linear_payload), 16.0);
        return report;
    }
};

/**
 * DKM/eDKM train-time clustering. Owns its EdkmLayers for the whole
 * run (fixing the legacy attachEdkm lifetime footgun where dropping
 * the returned vector dangled the weight transforms).
 */
class EdkmCompressor : public Compressor
{
  public:
    EdkmCompressor(bool uniquify, int max_iters, int embedding_bits)
        : uniquify_(uniquify), max_iters_(max_iters),
          embedding_bits_(embedding_bits)
    {
    }

    std::string name() const override { return uniquify_ ? "edkm" : "dkm"; }

    CompressionReport
    compress(nn::MiniLlama &model, const CalibData &calib,
             const LayerSelection &selection) override
    {
        // Attach one clustering layer per selected Linear.
        auto linears = model.allLinears();
        layers_.assign(linears.size(), nullptr);
        for (size_t i = 0; i < linears.size(); ++i) {
            auto &[path, linear] = linears[i];
            const LayerSpec &spec = selection.specFor(path);
            if (spec.skip) {
                continue;
            }
            EdkmConfig cfg;
            cfg.dkm.bits = spec.bits;
            cfg.dkm.maxIters = max_iters_;
            cfg.uniquify = uniquify_;
            auto layer = std::make_shared<EdkmLayer>(cfg);
            layers_[i] = layer;
            linear->setWeightTransform(
                [layer](const Variable &w) { return layer->forward(w); });
            calib.tick("attach", path, i, linears.size());
        }

        runFineTune(model, calib, name());

        // Freeze: palettize every clustered weight with its layer's
        // final centroids and install the dequantised result.
        CompressionReport report;
        int64_t linear_payload = 0;
        for (size_t i = 0; i < linears.size(); ++i) {
            auto &[path, linear] = linears[i];
            calib.checkCancelled("freeze of " + path);
            calib.tick("freeze", path, i, linears.size());
            if (layers_[i] == nullptr) {
                report.skippedLayers.push_back(path);
                report.entries.push_back(encodeRawF32(
                    weightName(path), linear->weight().data()));
                linear_payload += linear->weight().data().numel() * 2;
                continue;
            }
            if (!layers_[i]->centroids().defined()) {
                // Freeze-only run: no fine-tune forward has clustered
                // this weight yet, so run one now.
                NoGradGuard ng;
                layers_[i]->forward(Variable(linear->weight().data()));
            }
            PalettizedTensor p =
                layers_[i]->palettize(linear->weight().data());
            linear->weight().mutableData() = p.decompress();
            linear->setWeightTransform(nullptr);
            ArtifactEntry e;
            e.name = weightName(path);
            e.codec = Codec::kPalettized;
            e.bits = p.bits();
            e.shape = p.shape();
            e.payload = p.serialize();
            report.entries.push_back(std::move(e));
            linear_payload += p.payloadBytes();
        }

        // Embedding palettized at embedding_bits (paper: "we also
        // compressed the embedding layers with 8 bits").
        int64_t payload =
            fp16SideBytes(model, /*include_embedding=*/false) +
            linear_payload;
        Rng rng(99);
        PalettizedTensor emb = PalettizedTensor::fromDense(
            model.embedding().weight().data(), embedding_bits_, rng, 10);
        model.embedding().weight().mutableData() = emb.decompress();
        ArtifactEntry ee;
        ee.name = "embed.weight";
        ee.codec = Codec::kPalettized;
        ee.bits = emb.bits();
        ee.shape = emb.shape();
        ee.payload = emb.serialize();
        report.entries.push_back(std::move(ee));
        payload += emb.payloadBytes();
        double embed_bits =
            8.0 * static_cast<double>(emb.payloadBytes()) /
            static_cast<double>(
                model.embedding().weight().data().numel());
        report.size = makeSizeReport(
            uniquify_ ? "eDKM" : "DKM", payload, model.parameterCount(),
            linearBits(model, linear_payload), embed_bits);
        return report;
    }

    /** Clustering layers attached by the last compress() call. */
    const std::vector<std::shared_ptr<EdkmLayer>> &
    layers() const
    {
        return layers_;
    }

  private:
    bool uniquify_;
    int max_iters_;
    int embedding_bits_;
    std::vector<std::shared_ptr<EdkmLayer>> layers_;
};

} // namespace

namespace detail {

void
registerBuiltins(CompressorRegistry &registry)
{
    registry.registerFactory("fp16", [](const CompressionPlan &) {
        return std::make_unique<Fp16Compressor>();
    });
    registry.registerFactory("rtn", [](const CompressionPlan &) {
        return std::make_unique<RtnCompressor>();
    });
    registry.registerFactory("gptq", [](const CompressionPlan &plan) {
        return std::make_unique<GptqCompressor>(plan.gptqPercdamp);
    });
    registry.registerFactory("awq", [](const CompressionPlan &plan) {
        return std::make_unique<AwqCompressor>(plan.awqGridPoints);
    });
    registry.registerFactory("smoothquant",
                             [](const CompressionPlan &plan) {
        return std::make_unique<SmoothQuantCompressor>(plan.smoothAlpha);
    });
    registry.registerFactory("qat", [](const CompressionPlan &) {
        return std::make_unique<QatCompressor>();
    });
    registry.registerFactory("edkm", [](const CompressionPlan &plan) {
        return std::make_unique<EdkmCompressor>(
            /*uniquify=*/true, plan.dkmMaxIters, plan.embeddingBits);
    });
    registry.registerFactory("dkm", [](const CompressionPlan &plan) {
        return std::make_unique<EdkmCompressor>(
            /*uniquify=*/false, plan.dkmMaxIters, plan.embeddingBits);
    });
}

} // namespace detail

} // namespace api
} // namespace edkm
