#include "api/plan.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace edkm {
namespace api {

bool
globMatch(const std::string &pattern, const std::string &path)
{
    // Iterative two-pointer glob with backtracking to the last `*`.
    size_t p = 0, s = 0;
    size_t star = std::string::npos, mark = 0;
    while (s < path.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == path[s])) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') {
        ++p;
    }
    return p == pattern.size();
}

const LayerSpec &
LayerSelection::specFor(const std::string &path) const
{
    for (const LayerSpec &spec : layers) {
        if (spec.path == path) {
            return spec;
        }
    }
    fatal("LayerSelection: no spec for layer '", path, "'");
}

size_t
LayerSelection::compressedCount() const
{
    size_t n = 0;
    for (const LayerSpec &spec : layers) {
        n += spec.skip ? 0 : 1;
    }
    return n;
}

namespace {

void
checkBits(int bits, const std::string &what)
{
    EDKM_CHECK(bits >= 1 && bits <= 16, "plan: ", what, " must be in "
               "[1, 16], got ", bits);
}

} // namespace

void
CompressionPlan::validate() const
{
    EDKM_CHECK(!scheme.empty(), "plan: scheme must not be empty");
    checkBits(bits, "bits");
    checkBits(embeddingBits, "embedding_bits");
    EDKM_CHECK(groupSize != 0,
               "plan: group_size must be positive (or negative for "
               "per-channel), not 0");
    EDKM_CHECK(awqGridPoints >= 1, "plan: awq_grid_points must be >= 1");
    EDKM_CHECK(smoothAlpha >= 0.0f && smoothAlpha <= 1.0f,
               "plan: smooth_alpha must be in [0, 1]");
    EDKM_CHECK(gptqPercdamp >= 0.0f && gptqPercdamp < 1.0f,
               "plan: gptq_percdamp must be in [0, 1)");
    EDKM_CHECK(dkmMaxIters >= 1, "plan: dkm_max_iters must be >= 1");
    for (size_t i = 0; i < rules.size(); ++i) {
        const PlanRule &r = rules[i];
        EDKM_CHECK(!r.pattern.empty(), "plan: rule ", i + 1,
                   " has an empty pattern");
        if (!r.skip) {
            EDKM_CHECK(r.bits != 0 || r.groupSize != 0, "plan: rule ",
                       i + 1, " ('", r.pattern, "') overrides nothing: "
                       "give bits=N, group_size=N, or skip");
        }
        if (r.bits != 0) {
            checkBits(r.bits, "rule '" + r.pattern + "' bits");
        }
    }
}

LayerSelection
CompressionPlan::resolve(const std::vector<std::string> &paths) const
{
    validate();
    LayerSelection sel;
    sel.layers.reserve(paths.size());
    for (const std::string &path : paths) {
        LayerSpec spec;
        spec.path = path;
        spec.bits = bits;
        spec.groupSize = groupSize;
        for (const PlanRule &r : rules) { // ordered: later rules win
            if (!globMatch(r.pattern, path)) {
                continue;
            }
            spec.skip = r.skip;
            if (r.bits != 0) {
                spec.bits = r.bits;
            }
            if (r.groupSize != 0) {
                spec.groupSize = r.groupSize;
            }
        }
        sel.layers.push_back(std::move(spec));
    }
    return sel;
}

namespace {

constexpr const char *kHeader = "# edkm-plan v1";

std::vector<std::string>
splitWs(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream iss(line);
    std::string tok;
    while (iss >> tok) {
        out.push_back(tok);
    }
    return out;
}

int
parseInt(const std::string &s, int lineno, const std::string &key)
{
    try {
        size_t used = 0;
        int v = std::stoi(s, &used);
        EDKM_CHECK(used == s.size(), "plan line ", lineno, ": '", s,
                   "' is not an integer (for ", key, ")");
        return v;
    } catch (const std::invalid_argument &) {
        fatal("plan line ", lineno, ": '", s, "' is not an integer (for ",
              key, ")");
    } catch (const std::out_of_range &) {
        fatal("plan line ", lineno, ": '", s, "' is out of range (for ",
              key, ")");
    }
}

float
parseFloat(const std::string &s, int lineno, const std::string &key)
{
    try {
        size_t used = 0;
        float v = std::stof(s, &used);
        EDKM_CHECK(used == s.size(), "plan line ", lineno, ": '", s,
                   "' is not a number (for ", key, ")");
        return v;
    } catch (const std::invalid_argument &) {
        fatal("plan line ", lineno, ": '", s, "' is not a number (for ",
              key, ")");
    } catch (const std::out_of_range &) {
        fatal("plan line ", lineno, ": '", s, "' is out of range (for ",
              key, ")");
    }
}

PlanRule
parseRule(const std::vector<std::string> &toks, int lineno)
{
    // rule <pattern> [skip] [bits=N] [group_size=N]
    EDKM_CHECK(toks.size() >= 3, "plan line ", lineno,
               ": rule needs a pattern and at least one directive "
               "(skip, bits=N, group_size=N)");
    PlanRule r;
    r.pattern = toks[1];
    for (size_t i = 2; i < toks.size(); ++i) {
        const std::string &t = toks[i];
        size_t eq = t.find('=');
        if (t == "skip") {
            r.skip = true;
        } else if (eq != std::string::npos) {
            std::string key = t.substr(0, eq);
            std::string val = t.substr(eq + 1);
            if (key == "bits") {
                r.bits = parseInt(val, lineno, "bits");
            } else if (key == "group_size") {
                r.groupSize = parseInt(val, lineno, "group_size");
            } else {
                fatal("plan line ", lineno, ": unknown rule directive '",
                      key, "' (accepted: skip, bits, group_size)");
            }
        } else {
            fatal("plan line ", lineno, ": unknown rule directive '", t,
                  "' (accepted: skip, bits=N, group_size=N)");
        }
    }
    return r;
}

} // namespace

std::string
CompressionPlan::toText() const
{
    std::ostringstream oss;
    oss << kHeader << "\n"
        << "scheme " << scheme << "\n"
        << "bits " << bits << "\n"
        << "group_size " << groupSize << "\n"
        << "embedding_bits " << embeddingBits << "\n"
        << "awq_grid_points " << awqGridPoints << "\n"
        << "smooth_alpha " << smoothAlpha << "\n"
        << "gptq_percdamp " << gptqPercdamp << "\n"
        << "dkm_max_iters " << dkmMaxIters << "\n";
    for (const PlanRule &r : rules) {
        oss << "rule " << r.pattern;
        if (r.skip) {
            oss << " skip";
        }
        if (r.bits != 0) {
            oss << " bits=" << r.bits;
        }
        if (r.groupSize != 0) {
            oss << " group_size=" << r.groupSize;
        }
        oss << "\n";
    }
    return oss.str();
}

CompressionPlan
CompressionPlan::fromText(const std::string &text)
{
    CompressionPlan plan;
    plan.scheme.clear(); // must be set explicitly by the file
    std::istringstream iss(text);
    std::string line;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        std::vector<std::string> toks = splitWs(line);
        if (toks.empty() || toks[0][0] == '#') {
            continue;
        }
        const std::string &key = toks[0];
        if (key == "rule") {
            plan.rules.push_back(parseRule(toks, lineno));
            continue;
        }
        EDKM_CHECK(toks.size() == 2, "plan line ", lineno, ": expected '",
                   key, " <value>', got ", toks.size() - 1, " values");
        const std::string &val = toks[1];
        if (key == "scheme") {
            plan.scheme = val;
        } else if (key == "bits") {
            plan.bits = parseInt(val, lineno, key);
        } else if (key == "group_size") {
            plan.groupSize = parseInt(val, lineno, key);
        } else if (key == "embedding_bits") {
            plan.embeddingBits = parseInt(val, lineno, key);
        } else if (key == "awq_grid_points") {
            plan.awqGridPoints = parseInt(val, lineno, key);
        } else if (key == "smooth_alpha") {
            plan.smoothAlpha = parseFloat(val, lineno, key);
        } else if (key == "gptq_percdamp") {
            plan.gptqPercdamp = parseFloat(val, lineno, key);
        } else if (key == "dkm_max_iters") {
            plan.dkmMaxIters = parseInt(val, lineno, key);
        } else {
            fatal("plan line ", lineno, ": unknown key '", key,
                  "' (accepted: scheme, bits, group_size, "
                  "embedding_bits, awq_grid_points, smooth_alpha, "
                  "gptq_percdamp, dkm_max_iters, rule)");
        }
    }
    EDKM_CHECK(!plan.scheme.empty(),
               "plan: missing required 'scheme <name>' line");
    plan.validate();
    return plan;
}

void
CompressionPlan::save(const std::string &path) const
{
    std::ofstream f(path);
    EDKM_CHECK(f.good(), "plan: cannot open ", path, " for writing");
    f << toText();
}

CompressionPlan
CompressionPlan::load(const std::string &path)
{
    std::ifstream f(path);
    EDKM_CHECK(f.good(), "plan: cannot open ", path);
    std::ostringstream oss;
    oss << f.rdbuf();
    return fromText(oss.str());
}

} // namespace api
} // namespace edkm
