/**
 * @file
 * Session: executes a CompressionPlan against a model.
 *
 * The one-stop runner behind examples/benches: resolves the plan's
 * scheme through the CompressorRegistry, resolves per-layer overrides
 * against the model's Linears, wires progress callbacks, cooperative
 * cancellation, the runtime thread pool, and (optionally) a
 * MarshalContext for train-time saved-tensor offload, then assembles
 * the whole-model artifact. On cancellation the model is rolled back:
 * weights restored from a pre-run snapshot and every weight transform
 * cleared, so a cancelled run leaves the model untransformed.
 *
 *     api::Session session;
 *     api::SessionResult res = session.run(model, plan, calib);
 *     res.artifact.save("model.edkm");
 */

#ifndef EDKM_API_SESSION_H_
#define EDKM_API_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "api/artifact.h"
#include "api/compressor.h"
#include "api/plan.h"
#include "marshal/marshal.h"
#include "nn/transformer.h"

namespace edkm {
namespace api {

/** Session knobs (all optional). */
struct SessionConfig
{
    /** Per-layer/stage progress callback. */
    ProgressFn onProgress;

    /** Cooperative cancellation; owned by the caller. */
    const CancelToken *cancel = nullptr;

    /** Thread-pool size for the run; 0 keeps the current setting. */
    int threads = 0;

    /**
     * Install a MarshalContext (saved-tensor CPU offload, §2.1) for
     * the duration of the run — effective for train-time schemes.
     */
    bool offloadSaved = false;
    MarshalConfig marshal;

    /** Snapshot weights before the run and roll back on cancel. */
    bool restoreOnCancel = true;
};

/** Outcome of Session::run. */
struct SessionResult
{
    bool cancelled = false;     ///< run was cancelled and rolled back
    CompressionReport report;   ///< accounting + per-layer payloads
    ModelArtifact artifact;     ///< empty when cancelled
};

/** Plan executor. */
class Session
{
  public:
    explicit Session(SessionConfig config = SessionConfig{});

    /**
     * Execute @p plan on @p model: validate, resolve the scheme and
     * the per-layer selection, compress, and assemble the artifact
     * (per-layer payloads from the compressor plus lossless raw
     * entries for every untouched parameter).
     *
     * On cancellation (config.cancel observed mid-run) the model is
     * restored and `result.cancelled` is true. Configuration errors
     * (unknown scheme, invalid plan, missing calibration data) throw
     * FatalError.
     */
    SessionResult run(nn::MiniLlama &model, const CompressionPlan &plan,
                      CalibData calib);

    const SessionConfig &config() const { return config_; }

    /**
     * The compressor of the last run; kept alive here so schemes that
     * own state (e.g. eDKM's clustering layers) outlive the run.
     */
    Compressor *lastCompressor() const { return compressor_.get(); }

  private:
    SessionConfig config_;
    std::unique_ptr<Compressor> compressor_;
};

} // namespace api
} // namespace edkm

#endif // EDKM_API_SESSION_H_
