/**
 * @file
 * Model-level compression artifact.
 *
 * A ModelArtifact is the whole-model counterpart of PalettizedTensor:
 * a manifest (scheme, model geometry, accounting) plus one payload per
 * parameter, each encoded with the codec its scheme produced
 * (palettized LUT+indices, affine-quantised groups, dense FP16, or raw
 * FP32 for parameters a plan left untouched). save/load round-trips
 * the file bit-exactly, and reconstruct() rebuilds a MiniLlama whose
 * weights are bit-identical to the in-memory model the compression run
 * left behind: every codec decodes to exactly the tensor the adapter
 * installed.
 *
 * The manifest's SizeReport is *accounting* (deployed bytes at the
 * scheme's storage format); the container itself trades a few bytes
 * for losslessness, e.g. skipped layers ship as raw FP32.
 */

#ifndef EDKM_API_ARTIFACT_H_
#define EDKM_API_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/compress.h"
#include "nn/transformer.h"
#include "tensor/tensor.h"

namespace edkm {
namespace api {

/** Payload encodings a ModelArtifact entry can use. */
enum class Codec : uint32_t {
    kRawF32 = 0,     ///< little-endian f32 stream (lossless)
    kDenseF16 = 1,   ///< fp16 halfword stream (weights live on fp16 grid)
    kPalettized = 2, ///< PalettizedTensor::serialize bytes
    kAffine = 3,     ///< quant::QuantizedMatrix::serialize bytes
};

/** Human-readable codec tag ("raw_f32", "palettized", ...). */
std::string codecName(Codec codec);

/** One parameter's payload. */
struct ArtifactEntry
{
    std::string name; ///< dotted parameter path ("blocks.0.attn.wq.weight")
    Codec codec = Codec::kRawF32;
    int bits = 0;  ///< nominal bits/weight (0 = uncompressed)
    Shape shape;
    std::vector<uint8_t> payload;

    /** Decode the payload back to a dense f32 tensor. */
    Tensor decode() const;

    int64_t
    payloadBytes() const
    {
        return static_cast<int64_t>(payload.size());
    }
};

/** Encode helpers used by compressor adapters and the session. */
ArtifactEntry encodeRawF32(const std::string &name, const Tensor &t);
ArtifactEntry encodeDenseF16(const std::string &name, const Tensor &t,
                             int bits);

/** A compressed model: manifest + per-parameter payloads. */
class ModelArtifact
{
  public:
    ModelArtifact() = default;

    std::string scheme;        ///< registry name that produced this
    nn::LlamaConfig config;    ///< geometry needed to reconstruct
    eval::SizeReport size;     ///< accounting (deployed format)
    std::vector<ArtifactEntry> entries;

    /** Entry for parameter @p name; throws FatalError when absent. */
    const ArtifactEntry &entry(const std::string &name) const;

    /** Total serialized payload bytes (excluding manifest strings). */
    int64_t payloadBytes() const;

    /**
     * Rebuild a MiniLlama: construct at the manifest geometry, then
     * install every parameter from its decoded payload. Throws when a
     * parameter has no entry or shapes disagree.
     */
    nn::MiniLlama reconstruct() const;

    /** Install the payloads into an existing compatible model. */
    void restoreInto(nn::MiniLlama &model) const;

    /** Binary serialisation (stable little-endian format). */
    std::vector<uint8_t> serialize() const;
    static ModelArtifact deserialize(const std::vector<uint8_t> &bytes);

    /** File convenience wrappers around (de)serialize. */
    void save(const std::string &path) const;
    static ModelArtifact load(const std::string &path);
};

} // namespace api
} // namespace edkm

#endif // EDKM_API_ARTIFACT_H_
