/**
 * @file
 * Model-level compression artifact.
 *
 * A ModelArtifact is the whole-model counterpart of PalettizedTensor:
 * a manifest (scheme, model geometry, accounting) plus one payload per
 * parameter, each encoded with the codec its scheme produced
 * (palettized LUT+indices, affine-quantised groups, dense FP16, or raw
 * FP32 for parameters a plan left untouched). save/load round-trips
 * the file bit-exactly, and reconstruct() rebuilds a MiniLlama whose
 * weights are bit-identical to the in-memory model the compression run
 * left behind: every codec decodes to exactly the tensor the adapter
 * installed.
 *
 * On-disk container (v2, the default; see docs/artifact_v2.md): a
 * 64-byte header, a manifest describing every tensor, a section table,
 * then one 64-byte-aligned payload section per tensor. The layout is
 * mmap-friendly — serve/ArtifactReader maps the file read-only and
 * consumes payload sections in place, without the up-front dense decode
 * this class's reconstruct() performs. v1 (the legacy single-stream
 * format) stays readable behind a version gate; serialize() emits v2.
 *
 * The manifest's SizeReport is *accounting* (deployed bytes at the
 * scheme's storage format); the container itself trades a few bytes
 * for losslessness, e.g. skipped layers ship as raw FP32.
 */

#ifndef EDKM_API_ARTIFACT_H_
#define EDKM_API_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/compress.h"
#include "nn/transformer.h"
#include "tensor/tensor.h"
#include "util/serial.h"

namespace edkm {
namespace api {

/** Payload encodings a ModelArtifact entry can use. */
enum class Codec : uint32_t {
    kRawF32 = 0,     ///< little-endian f32 stream (lossless)
    kDenseF16 = 1,   ///< fp16 halfword stream (weights live on fp16 grid)
    kPalettized = 2, ///< PalettizedTensor::serialize bytes
    kAffine = 3,     ///< quant::QuantizedMatrix::serialize bytes
};

/** Human-readable codec tag ("raw_f32", "palettized", ...). */
std::string codecName(Codec codec);

/** Container format versions understood by deserialize/load. */
constexpr uint32_t kArtifactVersionV1 = 1;
constexpr uint32_t kArtifactVersionV2 = 2;

/** Alignment of the v2 section table and every payload section. */
constexpr int64_t kArtifactAlign = 64;

/**
 * Header flags bit: the container carries a v2.1 checksum table (one
 * 64-bit digest of header+manifest+section table, then one 64-bit
 * checksum per payload section) at the file offset stored in the
 * header word that v2.0 wrote as reserved-zero. Files without the bit
 * are plain v2.0 and skip verification; files with it still parse in
 * v2.0 readers, which ignore flags and never read the reserved word.
 */
constexpr uint32_t kArtifactFlagChecksums = 1u;

/** One parameter's payload. */
struct ArtifactEntry
{
    std::string name; ///< dotted parameter path ("blocks.0.attn.wq.weight")
    Codec codec = Codec::kRawF32;
    int bits = 0;  ///< nominal bits/weight (0 = uncompressed)
    Shape shape;
    std::vector<uint8_t> payload;

    /** Decode the payload back to a dense f32 tensor. */
    Tensor decode() const;

    int64_t
    payloadBytes() const
    {
        return static_cast<int64_t>(payload.size());
    }
};

/** Encode helpers used by compressor adapters and the session. */
ArtifactEntry encodeRawF32(const std::string &name, const Tensor &t);
ArtifactEntry encodeDenseF16(const std::string &name, const Tensor &t,
                             int bits);

/**
 * Manifest-level description of one v2 payload section: entry metadata
 * plus where its bytes live in the container. Offsets are absolute file
 * offsets, kArtifactAlign-aligned.
 */
struct TensorSection
{
    std::string name;
    Codec codec = Codec::kRawF32;
    int bits = 0;
    Shape shape;
    int64_t offset = 0; ///< absolute, kArtifactAlign-aligned
    int64_t bytes = 0;
    /** v2.1: checksum64 of the payload bytes [offset, offset+bytes).
     *  Only meaningful when the layout's hasChecksums is set. */
    uint64_t checksum = 0;
};

/**
 * Everything a v2 container declares ahead of its payload bytes. The
 * parse validates header/manifest/section-table consistency (bounds,
 * alignment, overlap) without touching payload sections, which is what
 * lets serve/ArtifactReader map a file and consume it lazily. Lookup
 * by name lives in ArtifactReader (indexed).
 */
struct ArtifactLayout
{
    std::string scheme;
    nn::LlamaConfig config;
    eval::SizeReport size;
    std::vector<TensorSection> sections;
    /** v2.1: the container carries a checksum table (see
     *  kArtifactFlagChecksums); parse verified the header digest and
     *  populated each section's checksum. */
    bool hasChecksums = false;
    /** Digest of bytes [0, section table end) — header, manifest and
     *  section table together. */
    uint64_t headerDigest = 0;
    /** Absolute offset of the checksum table ([digest][per-section...]),
     *  0 when hasChecksums is false. */
    int64_t checksumTableOffset = 0;
};

/** True when @p data starts with the v2 container magic. */
bool isArtifactV2(const uint8_t *data, size_t size);

/** True when @p data starts with the legacy v1 stream magic. */
bool isArtifactV1(const uint8_t *data, size_t size);

/**
 * Parse and validate a v2 container's header, manifest and section
 * table from @p data (the whole file, typically an mmap). Throws
 * FatalError with the offending section's name on any inconsistency;
 * payload bytes themselves are not read.
 */
ArtifactLayout parseArtifactLayout(const uint8_t *data, size_t size);

/**
 * Verify one payload section of @p layout against the file bytes at
 * @p data (the whole container, the same base parseArtifactLayout
 * saw). Throws FatalError naming the section on a checksum mismatch;
 * no-op when the layout carries no checksums (v2.0 files).
 */
void verifyArtifactSection(const ArtifactLayout &layout,
                           const TensorSection &s, const uint8_t *data);

/** A compressed model: manifest + per-parameter payloads. */
class ModelArtifact
{
  public:
    ModelArtifact() = default;

    std::string scheme;        ///< registry name that produced this
    nn::LlamaConfig config;    ///< geometry needed to reconstruct
    eval::SizeReport size;     ///< accounting (deployed format)
    std::vector<ArtifactEntry> entries;

    /** Entry for parameter @p name; throws FatalError when absent. */
    const ArtifactEntry &entry(const std::string &name) const;

    /** Total serialized payload bytes (excluding manifest strings). */
    int64_t payloadBytes() const;

    /**
     * Rebuild a MiniLlama: construct at the manifest geometry, then
     * install every parameter from its decoded payload. Throws when a
     * parameter has no entry or shapes disagree.
     */
    nn::MiniLlama reconstruct() const;

    /** Install the payloads into an existing compatible model. */
    void restoreInto(nn::MiniLlama &model) const;

    /**
     * Binary serialisation. serialize() emits the sectioned, aligned
     * v2 container — by default v2.1, with a per-section checksum
     * table appended and flagged in the header; pass
     * @p with_checksums=false for a plain v2.0 file (compat tooling
     * and the format tests). serializeV1() emits the legacy v1 stream
     * (kept for compatibility tests and old tooling). deserialize()
     * accepts all three, gated on the magic; checksums, when present,
     * are verified (every section) before any payload is decoded. The
     * span overload parses in place (e.g. straight from a file
     * mapping), copying only payloads.
     */
    std::vector<uint8_t> serialize(bool with_checksums = true) const;
    std::vector<uint8_t> serializeV1() const;
    static ModelArtifact deserialize(serial::ByteSpan bytes);
    static ModelArtifact deserialize(const std::vector<uint8_t> &bytes)
    {
        return deserialize(serial::ByteSpan(bytes));
    }

    /** File convenience wrappers around (de)serialize. */
    void save(const std::string &path) const;
    static ModelArtifact load(const std::string &path);
};

} // namespace api
} // namespace edkm

#endif // EDKM_API_ARTIFACT_H_
