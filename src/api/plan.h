/**
 * @file
 * Declarative compression plans.
 *
 * A CompressionPlan names a scheme (resolved through the
 * CompressorRegistry) and its default knobs, plus an ordered list of
 * per-layer override rules matched by glob pattern against the dotted
 * module path of each Linear (e.g. `*.attn.wq` -> 4 bits, `lm_head` ->
 * skip). Rules are applied in order, so a later rule overrides an
 * earlier one for layers both match.
 *
 * Plans serialise to a small line-oriented text format so they can live
 * next to checkpoints:
 *
 *     # edkm-plan v1
 *     scheme edkm
 *     bits 3
 *     group_size 16
 *     embedding_bits 8
 *     rule *.attn.wq bits=4
 *     rule lm_head skip
 *
 * Parsing and validate() fail with actionable errors (line numbers,
 * offending token, accepted values).
 */

#ifndef EDKM_API_PLAN_H_
#define EDKM_API_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace edkm {
namespace api {

/** Glob match: `*` = any run (including empty), `?` = any one char. */
bool globMatch(const std::string &pattern, const std::string &path);

/** One per-layer override, matched by glob on the module path. */
struct PlanRule
{
    std::string pattern;   ///< glob over dotted module paths
    bool skip = false;     ///< leave matching layers uncompressed
    int bits = 0;          ///< 0 = inherit the plan default
    int64_t groupSize = 0; ///< 0 = inherit the plan default
};

/** Resolved per-layer directive (output of CompressionPlan::resolve). */
struct LayerSpec
{
    std::string path; ///< dotted module path ("blocks.0.attn.wq")
    bool skip = false;
    int bits = 4;
    int64_t groupSize = 16;
};

/** Ordered, fully resolved selection for one model. */
struct LayerSelection
{
    std::vector<LayerSpec> layers; ///< same order as model.allLinears()

    /** Spec for @p path; throws FatalError when absent. */
    const LayerSpec &specFor(const std::string &path) const;

    /** Number of non-skipped layers. */
    size_t compressedCount() const;
};

/** Declarative description of one whole-model compression run. */
struct CompressionPlan
{
    std::string scheme = "rtn"; ///< CompressorRegistry name
    int bits = 4;               ///< default bits/weight for Linears
    int64_t groupSize = 16;     ///< affine group size (<=0 per-channel)
    int embeddingBits = 8;      ///< eDKM embedding palettization bits

    // Scheme-specific knobs (ignored by schemes that don't use them).
    int awqGridPoints = 10; ///< AWQ alpha grid resolution
    float smoothAlpha = 0.5f; ///< SmoothQuant migration strength
    float gptqPercdamp = 0.01f; ///< GPTQ Hessian dampening fraction
    int dkmMaxIters = 4;    ///< DKM/eDKM clustering iterations

    std::vector<PlanRule> rules; ///< ordered; later rules win

    /**
     * Check internal consistency (bits ranges, group sizes, non-empty
     * patterns). Does not check the scheme name: that needs the
     * registry, and Session::run / CompressorRegistry::create report
     * unknown schemes with the list of known ones.
     */
    void validate() const;

    /** Resolve against the module paths of a model's Linears. */
    LayerSelection resolve(const std::vector<std::string> &paths) const;

    /** Text round trip (format documented in the file header). */
    std::string toText() const;
    static CompressionPlan fromText(const std::string &text);

    /** File convenience wrappers around the text format. */
    void save(const std::string &path) const;
    static CompressionPlan load(const std::string &path);
};

} // namespace api
} // namespace edkm

#endif // EDKM_API_PLAN_H_
