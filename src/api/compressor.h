/**
 * @file
 * The unified compression interface.
 *
 * Every scheme (fp16 baseline, RTN, GPTQ, AWQ, SmoothQuant, LLM-QAT,
 * DKM/eDKM) implements Compressor: compress a MiniLlama in place under
 * a resolved per-layer LayerSelection, report accounting, and emit the
 * per-tensor payloads a ModelArtifact is assembled from. Adapters are
 * constructed by name through the CompressorRegistry, usually from a
 * CompressionPlan via Session::run.
 *
 * Contract: after compress() returns, each non-skipped Linear weight in
 * the model is *bit-identical* to what its artifact entry decodes to —
 * saving the entries and reconstructing must reproduce the in-memory
 * model exactly.
 */

#ifndef EDKM_API_COMPRESSOR_H_
#define EDKM_API_COMPRESSOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/artifact.h"
#include "api/plan.h"
#include "eval/compress.h"
#include "eval/train.h"
#include "nn/transformer.h"
#include "tensor/tensor.h"

namespace edkm {
namespace api {

/** Cooperative cancellation flag shared between caller and run. */
class CancelToken
{
  public:
    void requestCancel() { cancelled_.store(true); }
    bool cancelled() const { return cancelled_.load(); }

  private:
    std::atomic<bool> cancelled_{false};
};

/** Thrown when a run observes its CancelToken (see Session::run). */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One progress tick (per layer / stage boundary). */
struct Progress
{
    std::string stage;  ///< "calibrate", "quantize", "train", "freeze"
    std::string layer;  ///< module path, empty for model-level stages
    size_t index = 0;   ///< 0-based position within the stage
    size_t total = 0;   ///< ticks the stage will emit
};

using ProgressFn = std::function<void(const Progress &)>;

/**
 * Everything a compression run consumes besides the model: calibration
 * tokens for the post-training schemes, a token stream + train config
 * for the train-time schemes, and the run's progress/cancellation
 * plumbing (filled in by Session).
 */
struct CalibData
{
    /** Calibration batch [B, S] for GPTQ/AWQ/SmoothQuant capture. */
    Tensor tokens;

    /** Fine-tuning stream for QAT and DKM/eDKM (null = not provided). */
    const std::vector<int64_t> *trainStream = nullptr;

    /** Fine-tuning settings for the train-time schemes. */
    eval::TrainConfig trainConfig;

    /** Optional per-layer/stage progress callback. */
    ProgressFn progress;

    /** Optional cooperative cancellation. */
    const CancelToken *cancel = nullptr;

    /** Emit a progress tick (no-op without a callback). */
    void
    tick(const std::string &stage, const std::string &layer, size_t index,
         size_t total) const
    {
        if (progress) {
            progress(Progress{stage, layer, index, total});
        }
    }

    /** Throw CancelledError when cancellation was requested. */
    void
    checkCancelled(const std::string &where) const
    {
        if (cancel != nullptr && cancel->cancelled()) {
            throw CancelledError("compression cancelled during " + where);
        }
    }
};

/** What one compression run produced. */
struct CompressionReport
{
    eval::SizeReport size; ///< accounting (scheme, bytes, bits, GB@7B)

    /**
     * Payload per touched parameter (Linear weights, plus the
     * embedding for eDKM). Session adds raw entries for the rest when
     * assembling the ModelArtifact.
     */
    std::vector<ArtifactEntry> entries;

    /** Module paths the selection skipped. */
    std::vector<std::string> skippedLayers;
};

/** A compression scheme driving a whole model. */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    /** Registry name ("rtn", "edkm", ...). */
    virtual std::string name() const = 0;

    /**
     * Compress @p model in place under @p selection.
     *
     * May throw CancelledError (cooperative cancellation) or
     * FatalError (missing calibration data, bad configuration); the
     * model may be partially transformed afterwards — Session::run
     * restores it on cancellation.
     */
    virtual CompressionReport compress(nn::MiniLlama &model,
                                       const CalibData &calib,
                                       const LayerSelection &selection) = 0;
};

} // namespace api
} // namespace edkm

#endif // EDKM_API_COMPRESSOR_H_
