/**
 * @file
 * Small dense linear-algebra helpers on row-major float buffers.
 *
 * Used by the GPTQ baseline (Cholesky of the damped Hessian inverse) and
 * by tests. These operate on plain vectors to stay independent of the
 * tensor library.
 */

#ifndef EDKM_UTIL_LINALG_H_
#define EDKM_UTIL_LINALG_H_

#include <cstddef>
#include <vector>

namespace edkm {

/**
 * In-place Cholesky factorisation A = L L^T of a symmetric positive
 * definite matrix stored row-major in @p a (n x n). On return the lower
 * triangle holds L; the strict upper triangle is zeroed.
 *
 * @return true on success, false if the matrix is not positive definite.
 */
bool choleskyInPlace(std::vector<float> &a, size_t n);

/**
 * Invert a symmetric positive definite matrix via Cholesky.
 * @param a row-major n x n input.
 * @param n dimension.
 * @param[out] inv row-major n x n inverse.
 * @return true on success.
 */
bool spdInverse(const std::vector<float> &a, size_t n,
                std::vector<float> &inv);

/**
 * Dense row-major matrix multiply: c[m x n] = a[m x k] * b[k x n].
 * @p c is resized and overwritten.
 */
void matmulF32(const std::vector<float> &a, const std::vector<float> &b,
               std::vector<float> &c, size_t m, size_t k, size_t n);

/** Frobenius norm of the difference of two equally sized buffers. */
float frobeniusDiff(const std::vector<float> &a, const std::vector<float> &b);

} // namespace edkm

#endif // EDKM_UTIL_LINALG_H_
