#include "util/half.h"

namespace edkm {

uint16_t
floatToBf16(float f)
{
    uint32_t bits = floatToBits(f);
    // Quiet-NaN: preserve NaN-ness, force a payload bit so truncation
    // cannot turn NaN into infinity.
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0) {
        return static_cast<uint16_t>((bits >> 16) | 0x0040u);
    }
    // Round to nearest even: add 0x7fff plus the LSB of the kept part.
    uint32_t lsb = (bits >> 16) & 1u;
    bits += 0x7fffu + lsb;
    return static_cast<uint16_t>(bits >> 16);
}

uint16_t
floatToFp16(float f)
{
    uint32_t bits = floatToBits(f);
    uint32_t sign = (bits >> 16) & 0x8000u;
    uint32_t exp = (bits >> 23) & 0xffu;
    uint32_t mant = bits & 0x007fffffu;

    if (exp == 0xffu) {
        // Inf or NaN.
        if (mant != 0) {
            return static_cast<uint16_t>(sign | 0x7e00u); // quiet NaN
        }
        return static_cast<uint16_t>(sign | 0x7c00u); // infinity
    }

    // Re-bias: f32 exponent bias 127, f16 bias 15.
    int new_exp = static_cast<int>(exp) - 127 + 15;
    if (new_exp >= 0x1f) {
        // Overflow -> infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }
    if (new_exp <= 0) {
        // Subnormal (or underflow to zero). Shift mantissa including the
        // implicit leading one into subnormal position.
        if (new_exp < -10) {
            return static_cast<uint16_t>(sign); // underflow to signed zero
        }
        mant |= 0x00800000u; // make implicit bit explicit
        uint32_t shift = static_cast<uint32_t>(14 - new_exp);
        uint32_t sub = mant >> shift;
        // Round to nearest even on the dropped bits.
        uint32_t dropped = mant & ((1u << shift) - 1u);
        uint32_t halfway = 1u << (shift - 1);
        if (dropped > halfway || (dropped == halfway && (sub & 1u))) {
            sub += 1; // may carry into exponent: 0x0400 which is correct
        }
        return static_cast<uint16_t>(sign | sub);
    }

    // Normal number: round mantissa from 23 to 10 bits, nearest-even.
    uint16_t out = static_cast<uint16_t>(
        sign | (static_cast<uint32_t>(new_exp) << 10) | (mant >> 13));
    uint32_t dropped = mant & 0x1fffu;
    if (dropped > 0x1000u || (dropped == 0x1000u && (out & 1u))) {
        out += 1; // carries into exponent correctly (1.11..1 -> 2.0)
    }
    return out;
}

float
fp16ToFloat(uint16_t h)
{
    uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t mant = h & 0x03ffu;

    if (exp == 0x1fu) {
        // Inf / NaN.
        return bitsToFloat(sign | 0x7f800000u | (mant << 13));
    }
    if (exp == 0) {
        if (mant == 0) {
            return bitsToFloat(sign); // signed zero
        }
        // Subnormal: normalise.
        int e = -1;
        do {
            mant <<= 1;
            ++e;
        } while ((mant & 0x0400u) == 0);
        mant &= 0x03ffu;
        uint32_t new_exp = static_cast<uint32_t>(127 - 15 - e);
        return bitsToFloat(sign | (new_exp << 23) | (mant << 13));
    }
    uint32_t new_exp = exp - 15 + 127;
    return bitsToFloat(sign | (new_exp << 23) | (mant << 13));
}

} // namespace edkm
