#include "util/linalg.h"

#include <cmath>

#include "util/logging.h"

namespace edkm {

bool
choleskyInPlace(std::vector<float> &a, size_t n)
{
    EDKM_CHECK(a.size() == n * n, "cholesky: buffer size mismatch");
    for (size_t j = 0; j < n; ++j) {
        double diag = a[j * n + j];
        for (size_t k = 0; k < j; ++k) {
            diag -= static_cast<double>(a[j * n + k]) * a[j * n + k];
        }
        if (diag <= 0.0) {
            return false;
        }
        float ljj = static_cast<float>(std::sqrt(diag));
        a[j * n + j] = ljj;
        for (size_t i = j + 1; i < n; ++i) {
            double sum = a[i * n + j];
            for (size_t k = 0; k < j; ++k) {
                sum -= static_cast<double>(a[i * n + k]) * a[j * n + k];
            }
            a[i * n + j] = static_cast<float>(sum / ljj);
        }
        for (size_t i = 0; i < j; ++i) {
            a[i * n + j] = 0.0f;
        }
    }
    return true;
}

bool
spdInverse(const std::vector<float> &a, size_t n, std::vector<float> &inv)
{
    std::vector<float> l = a;
    if (!choleskyInPlace(l, n)) {
        return false;
    }
    // Solve L Y = I (forward substitution), then L^T X = Y (backward).
    inv.assign(n * n, 0.0f);
    std::vector<double> col(n);
    for (size_t c = 0; c < n; ++c) {
        // Forward: y
        for (size_t i = 0; i < n; ++i) {
            double rhs = (i == c) ? 1.0 : 0.0;
            for (size_t k = 0; k < i; ++k) {
                rhs -= static_cast<double>(l[i * n + k]) * col[k];
            }
            col[i] = rhs / l[i * n + i];
        }
        // Backward: x
        for (size_t ii = n; ii-- > 0;) {
            double rhs = col[ii];
            for (size_t k = ii + 1; k < n; ++k) {
                rhs -= static_cast<double>(l[k * n + ii]) * col[k];
            }
            col[ii] = rhs / l[ii * n + ii];
            inv[ii * n + c] = static_cast<float>(col[ii]);
        }
    }
    return true;
}

void
matmulF32(const std::vector<float> &a, const std::vector<float> &b,
          std::vector<float> &c, size_t m, size_t k, size_t n)
{
    EDKM_CHECK(a.size() == m * k && b.size() == k * n,
               "matmulF32: shape mismatch");
    c.assign(m * n, 0.0f);
    for (size_t i = 0; i < m; ++i) {
        for (size_t p = 0; p < k; ++p) {
            float av = a[i * k + p];
            if (av == 0.0f) {
                continue;
            }
            const float *brow = &b[p * n];
            float *crow = &c[i * n];
            for (size_t j = 0; j < n; ++j) {
                crow[j] += av * brow[j];
            }
        }
    }
}

float
frobeniusDiff(const std::vector<float> &a, const std::vector<float> &b)
{
    EDKM_CHECK(a.size() == b.size(), "frobeniusDiff: size mismatch");
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
    }
    return static_cast<float>(std::sqrt(acc));
}

} // namespace edkm
