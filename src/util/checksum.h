/**
 * @file
 * Fast 64-bit content checksum (xxhash64 algorithm).
 *
 * checksum64() is the integrity primitive behind the artifact v2.1
 * per-section checksums: a non-cryptographic 64-bit hash that runs at
 * memory bandwidth (8-byte stripes, four independent accumulators) and
 * avalanches every input bit into the digest, so a single flipped
 * payload bit flips ~half the digest bits. It implements the XXH64
 * algorithm (public-domain specification) so digests are stable across
 * builds and platforms of the same endianness; artifacts are
 * native-endian throughout (util/serial.h memcpys PODs), and the
 * checksum inherits that convention.
 *
 * Not cryptographic: detects corruption (bit rot, truncation, torn
 * writes), not adversaries.
 */

#ifndef EDKM_UTIL_CHECKSUM_H_
#define EDKM_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace edkm {

namespace checksum_detail {

constexpr uint64_t kPrime1 = 11400714785074694791ull;
constexpr uint64_t kPrime2 = 14029467366897019727ull;
constexpr uint64_t kPrime3 = 1609587929392839161ull;
constexpr uint64_t kPrime4 = 9650029242287828579ull;
constexpr uint64_t kPrime5 = 2870177450012600261ull;

inline uint64_t
rotl64(uint64_t v, int r)
{
    return (v << r) | (v >> (64 - r));
}

inline uint64_t
read64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

inline uint32_t
read32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline uint64_t
round64(uint64_t acc, uint64_t lane)
{
    acc += lane * kPrime2;
    acc = rotl64(acc, 31);
    return acc * kPrime1;
}

inline uint64_t
merge64(uint64_t acc, uint64_t val)
{
    acc ^= round64(0, val);
    return acc * kPrime1 + kPrime4;
}

} // namespace checksum_detail

/** XXH64 of @p len bytes at @p data, seeded with @p seed. */
inline uint64_t
checksum64(const void *data, size_t len, uint64_t seed = 0)
{
    using namespace checksum_detail;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    const uint8_t *const end = p + len;
    uint64_t h;

    if (len >= 32) {
        uint64_t v1 = seed + kPrime1 + kPrime2;
        uint64_t v2 = seed + kPrime2;
        uint64_t v3 = seed;
        uint64_t v4 = seed - kPrime1;
        const uint8_t *const stripe_end = end - 32;
        do {
            v1 = round64(v1, read64(p));
            v2 = round64(v2, read64(p + 8));
            v3 = round64(v3, read64(p + 16));
            v4 = round64(v4, read64(p + 24));
            p += 32;
        } while (p <= stripe_end);
        h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) +
            rotl64(v4, 18);
        h = merge64(h, v1);
        h = merge64(h, v2);
        h = merge64(h, v3);
        h = merge64(h, v4);
    } else {
        h = seed + kPrime5;
    }

    h += static_cast<uint64_t>(len);
    while (p + 8 <= end) {
        h ^= round64(0, read64(p));
        h = rotl64(h, 27) * kPrime1 + kPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<uint64_t>(read32(p)) * kPrime1;
        h = rotl64(h, 23) * kPrime2 + kPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<uint64_t>(*p) * kPrime5;
        h = rotl64(h, 11) * kPrime1;
        ++p;
    }

    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

} // namespace edkm

#endif // EDKM_UTIL_CHECKSUM_H_
