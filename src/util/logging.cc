#include "util/logging.h"

#include <atomic>
#include <iostream>

#include "util/thread_annotations.h"

namespace edkm {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kInfo};
/** Serializes stderr emission only; no fields are guarded by it. */
util::Mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kFatal: return "fatal";
      case LogLevel::kPanic: return "panic";
    }
    return "?";
}

} // namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <
        static_cast<int>(g_threshold.load(std::memory_order_relaxed))) {
        return;
    }
    util::MutexLock lock(g_log_mutex);
    std::cerr << "[edkm:" << levelName(level) << "] " << msg << "\n";
}

} // namespace edkm
