/**
 * @file
 * Bit-exact software FP16 (IEEE binary16) and BF16 (bfloat16) conversion.
 *
 * eDKM's weight-uniquification step (paper section 2.2) relies on the fact
 * that 16-bit weights can take at most 2^16 distinct bit patterns. These
 * helpers provide the exact 16-bit patterns so uniquification buckets on
 * the same keys a PyTorch BF16/FP16 run would see.
 *
 * All float32 -> 16-bit conversions use round-to-nearest-even, matching
 * hardware and PyTorch semantics.
 */

#ifndef EDKM_UTIL_HALF_H_
#define EDKM_UTIL_HALF_H_

#include <cstdint>
#include <cstring>

namespace edkm {

/** Reinterpret a float's bits as uint32. */
inline uint32_t
floatToBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

/** Reinterpret uint32 bits as a float. */
inline float
bitsToFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/**
 * Convert float32 to bfloat16 bits with round-to-nearest-even.
 * NaN inputs map to a quiet NaN pattern.
 */
uint16_t floatToBf16(float f);

/** Convert bfloat16 bits to float32 (exact; bf16 is a prefix of f32). */
inline float
bf16ToFloat(uint16_t h)
{
    return bitsToFloat(static_cast<uint32_t>(h) << 16);
}

/**
 * Convert float32 to IEEE binary16 bits with round-to-nearest-even,
 * handling subnormals, overflow to infinity, and NaN.
 */
uint16_t floatToFp16(float f);

/** Convert IEEE binary16 bits to float32 (exact). */
float fp16ToFloat(uint16_t h);

/** Round a float through bf16 precision (quantize-dequantize). */
inline float
roundToBf16(float f)
{
    return bf16ToFloat(floatToBf16(f));
}

/** Round a float through fp16 precision (quantize-dequantize). */
inline float
roundToFp16(float f)
{
    return fp16ToFloat(floatToFp16(f));
}

/** 16-bit float flavours used for storage and uniquification keys. */
enum class HalfKind { kBf16, kFp16 };

/** Convert float32 to the requested 16-bit pattern. */
inline uint16_t
floatToHalfBits(float f, HalfKind kind)
{
    return kind == HalfKind::kBf16 ? floatToBf16(f) : floatToFp16(f);
}

/** Convert a 16-bit pattern of the requested flavour back to float32. */
inline float
halfBitsToFloat(uint16_t h, HalfKind kind)
{
    return kind == HalfKind::kBf16 ? bf16ToFloat(h) : fp16ToFloat(h);
}

} // namespace edkm

#endif // EDKM_UTIL_HALF_H_
