/**
 * @file
 * Log-bucketed latency histogram for serving metrics.
 *
 * LatencyHistogram accumulates millisecond samples into power-of-two
 * buckets (bucket i holds samples <= 2^(i-10) ms, i.e. edges from 1us
 * up past 100 hours) and reports approximate quantiles as the upper
 * edge of the bucket the quantile falls in, clamped to the true
 * maximum. Recording is O(buckets) with no allocation, so callers can
 * record under the same mutex that guards their counters; json()
 * serialises count/mean/min/max, p50/p95/p99 and the non-empty buckets
 * as [upper_edge_ms, count] pairs.
 *
 * Bucket-edge quantiles overestimate by at most 2x (one octave), which
 * is the standard trade for a fixed-size, mergeable representation —
 * the same shape Prometheus-style histograms use. Not thread-safe;
 * guard with the owning object's lock.
 */

#ifndef EDKM_UTIL_HISTOGRAM_H_
#define EDKM_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

namespace edkm {

class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 40;

    /** Upper edge of bucket @p i in milliseconds (2^(i-10)). */
    static double
    upperEdgeMs(int i)
    {
        return std::ldexp(1.0, i - 10);
    }

    /** Add one sample of @p ms milliseconds. */
    void
    record(double ms)
    {
        if (!(ms >= 0.0)) { // negative or NaN: clamp into bucket 0
            ms = 0.0;
        }
        int b = 0;
        while (b + 1 < kBuckets && ms > upperEdgeMs(b)) {
            ++b;
        }
        ++counts_[b];
        ++count_;
        sum_ += ms;
        min_ = std::min(min_, ms);
        max_ = std::max(max_, ms);
    }

    int64_t count() const { return count_; }
    double minMs() const { return count_ > 0 ? min_ : 0.0; }
    double maxMs() const { return count_ > 0 ? max_ : 0.0; }
    double meanMs() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Approximate @p q-quantile (q in [0,1]): the upper edge of the
     * bucket holding the ceil(q*count)-th sample, clamped to maxMs().
     */
    double
    quantileMs(double q) const
    {
        if (count_ == 0) {
            return 0.0;
        }
        int64_t target = static_cast<int64_t>(
            std::ceil(q * static_cast<double>(count_)));
        target = std::max<int64_t>(target, 1);
        int64_t cum = 0;
        for (int b = 0; b < kBuckets; ++b) {
            cum += counts_[b];
            if (cum >= target) {
                return std::min(upperEdgeMs(b), max_);
            }
        }
        return max_;
    }

    /** JSON object: count, mean/min/max, p50/p95/p99, sparse buckets. */
    std::string
    json() const
    {
        std::ostringstream os;
        os << "{\"count\": " << count_;
        if (count_ > 0) {
            os << ", \"mean_ms\": " << meanMs()
               << ", \"min_ms\": " << minMs()
               << ", \"max_ms\": " << maxMs()
               << ", \"p50_ms\": " << quantileMs(0.50)
               << ", \"p95_ms\": " << quantileMs(0.95)
               << ", \"p99_ms\": " << quantileMs(0.99)
               << ", \"buckets\": [";
            bool first = true;
            for (int b = 0; b < kBuckets; ++b) {
                if (counts_[b] == 0) {
                    continue;
                }
                os << (first ? "" : ", ") << "[" << upperEdgeMs(b)
                   << ", " << counts_[b] << "]";
                first = false;
            }
            os << "]";
        }
        os << "}";
        return os.str();
    }

  private:
    int64_t counts_[kBuckets] = {};
    int64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = 0.0;
};

} // namespace edkm

#endif // EDKM_UTIL_HISTOGRAM_H_
