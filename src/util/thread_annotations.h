/**
 * @file
 * Clang Thread Safety Analysis vocabulary for the eDKM codebase.
 *
 * Two layers:
 *
 *  1. The raw EDKM_* attribute macros (CAPABILITY, GUARDED_BY,
 *     REQUIRES, ...) mapping onto clang's `-Wthread-safety` attributes.
 *     Under any other compiler they expand to nothing, so annotations
 *     cost zero and the code stays portable. The CMake option
 *     EDKM_THREAD_SAFETY (default ON for clang) arms the analysis with
 *     `-Werror=thread-safety`, turning every lock-discipline violation
 *     into a compile error; tests/compile_fail/ proves the arming.
 *
 *  2. Annotated synchronization types — util::Mutex, util::MutexLock,
 *     util::CondVar — thin zero-overhead wrappers over the std::
 *     primitives. All mutex/condvar sites in src/ use these instead of
 *     std::mutex / std::condition_variable so the analysis can see
 *     them. (std::mutex itself carries no capability attributes, so
 *     code locking it directly is invisible to the checker.)
 *
 * House conventions (docs/static_analysis.md has the full rules):
 *
 *  - Every field written by more than one thread is either
 *    EDKM_GUARDED_BY(some mutex), std::atomic, or carries a comment
 *    explaining the ownership protocol that makes it safe (e.g. the
 *    Server engine-slot checkout protocol).
 *  - Helpers that expect their caller to hold a lock say so with
 *    EDKM_REQUIRES(mutex) instead of re-locking or trusting comments.
 *  - Condition-variable waits use explicit `while (!pred) cv.wait(mu);`
 *    loops rather than lambda predicates: the analysis treats a lambda
 *    body as a separate function and cannot see that the enclosing
 *    wait holds the lock.
 *  - EDKM_NO_THREAD_SAFETY_ANALYSIS is a last resort and every use
 *    must carry a written justification on the same declaration.
 */

#ifndef EDKM_UTIL_THREAD_ANNOTATIONS_H_
#define EDKM_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define EDKM_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef EDKM_THREAD_ANNOTATION__
#define EDKM_THREAD_ANNOTATION__(x) // no-op off clang
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define EDKM_CAPABILITY(x) EDKM_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define EDKM_SCOPED_CAPABILITY EDKM_THREAD_ANNOTATION__(scoped_lockable)

/** Field may only be read/written while holding @p x. */
#define EDKM_GUARDED_BY(x) EDKM_THREAD_ANNOTATION__(guarded_by(x))

/** Pointee (not the pointer) is guarded by @p x. */
#define EDKM_PT_GUARDED_BY(x) EDKM_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Lock-ordering edge: this capability acquires after the arguments. */
#define EDKM_ACQUIRED_AFTER(...) \
    EDKM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/** Lock-ordering edge: this capability acquires before the arguments. */
#define EDKM_ACQUIRED_BEFORE(...) \
    EDKM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/** Caller must hold the listed capabilities (exclusively). */
#define EDKM_REQUIRES(...) \
    EDKM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities at least shared. */
#define EDKM_REQUIRES_SHARED(...) \
    EDKM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/** Function acquires the listed capabilities and does not release. */
#define EDKM_ACQUIRE(...) \
    EDKM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define EDKM_RELEASE(...) \
    EDKM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function acquires the capabilities iff it returns @p ret. */
#define EDKM_TRY_ACQUIRE(ret, ...) \
    EDKM_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define EDKM_EXCLUDES(...) \
    EDKM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (trusted by the
 *  analysis from this point on). */
#define EDKM_ASSERT_CAPABILITY(x) \
    EDKM_THREAD_ANNOTATION__(assert_capability(x))

/** Function returns a reference to the named capability. */
#define EDKM_RETURN_CAPABILITY(x) \
    EDKM_THREAD_ANNOTATION__(lock_returned(x))

/**
 * Opt this function out of the analysis. Policy: every use must carry
 * a justification comment on the same declaration; the CI clang build
 * treats an unexplained site as a review defect (the determinism
 * linter's fixture suite counts them).
 */
#define EDKM_NO_THREAD_SAFETY_ANALYSIS \
    EDKM_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace edkm {
namespace util {

class CondVar;

/**
 * std::mutex with a capability attribute, so GUARDED_BY / REQUIRES
 * annotations against it are enforced at compile time under clang.
 * Same cost and semantics as std::mutex (the lock functions are
 * forwarding inlines).
 */
class EDKM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() EDKM_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() EDKM_RELEASE()
    {
        mu_.unlock();
    }

    bool
    try_lock() EDKM_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/**
 * RAII lock over util::Mutex — the annotated replacement for
 * std::lock_guard AND std::unique_lock: unlock()/lock() support the
 * unlock-work-relock pattern (e.g. Server::batchLoop admitting
 * requests outside the lock), and the analysis tracks the state across
 * those calls. Destroying an unlocked MutexLock is fine.
 */
class EDKM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) EDKM_ACQUIRE(mu) : mu_(mu), owned_(true)
    {
        mu_.lock();
    }

    ~MutexLock() EDKM_RELEASE()
    {
        if (owned_) {
            mu_.unlock();
        }
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Release early (before more work that must not hold the lock). */
    void
    unlock() EDKM_RELEASE()
    {
        owned_ = false;
        mu_.unlock();
    }

    /** Re-acquire after an unlock(). */
    void
    lock() EDKM_ACQUIRE()
    {
        mu_.lock();
        owned_ = true;
    }

  private:
    Mutex &mu_;
    bool owned_;
};

/**
 * Condition variable paired with util::Mutex. wait() takes the Mutex
 * itself (caller must hold it — enforced via EDKM_REQUIRES), not a
 * lock object, and callers spell the predicate as an explicit while
 * loop so guarded reads inside it stay visible to the analysis:
 *
 *     util::MutexLock lock(mutex_);
 *     while (!ready_) {      // ready_ EDKM_GUARDED_BY(mutex_): checked
 *         cv_.wait(mutex_);
 *     }
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mu, sleep, re-acquire before returning.
     *  The analysis sees the capability held across the call (the
     *  release/re-acquire inside the std wait is invisible, and nets
     *  out held — the same contract std::condition_variable gives). */
    void
    wait(Mutex &mu) EDKM_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
        cv_.wait(relock);
        relock.release(); // ownership stays with the caller's MutexLock
    }

    void
    notify_one()
    {
        cv_.notify_one();
    }

    void
    notify_all()
    {
        cv_.notify_all();
    }

  private:
    std::condition_variable cv_;
};

} // namespace util
} // namespace edkm

#endif // EDKM_UTIL_THREAD_ANNOTATIONS_H_
