/**
 * @file
 * Logging and error-reporting utilities.
 *
 * Follows the gem5 convention: inform()/warn() report status without
 * stopping; fatal() terminates because of a *user* error (bad argument,
 * bad configuration); panic() terminates because of an *internal*
 * invariant violation (a bug in this library).
 */

#ifndef EDKM_UTIL_LOGGING_H_
#define EDKM_UTIL_LOGGING_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace edkm {

/** Severity levels for log messages. */
enum class LogLevel { kInfo, kWarn, kFatal, kPanic };

/**
 * Global verbosity control. Messages below the threshold are dropped.
 * Defaults to kInfo (everything printed).
 */
void setLogThreshold(LogLevel level);

/** @return the current log threshold. */
LogLevel logThreshold();

/** Emit a log line to stderr if @p level passes the threshold. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

/** Fold a pack of stream-able values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Informational message; normal operation. */
template <typename... Args>
void
inform(Args &&...args)
{
    logMessage(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

/** Something may be wrong but execution can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

/** Error raised for invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error raised for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Terminate the current operation due to a user error.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    logMessage(LogLevel::kFatal, msg);
    throw FatalError(msg);
}

/**
 * Terminate the current operation due to an internal bug.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    logMessage(LogLevel::kPanic, msg);
    throw PanicError(msg);
}

} // namespace edkm

/**
 * Precondition check for user-facing APIs: throws FatalError with file/line
 * context when @p cond is false.
 */
#define EDKM_CHECK(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::edkm::fatal("check failed: " #cond " at ", __FILE__, ":",    \
                          __LINE__, ": ", __VA_ARGS__);                    \
        }                                                                  \
    } while (0)

/** Internal invariant check: throws PanicError when @p cond is false. */
#define EDKM_ASSERT(cond, ...)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::edkm::panic("assert failed: " #cond " at ", __FILE__, ":",   \
                          __LINE__, ": ", __VA_ARGS__);                    \
        }                                                                  \
    } while (0)

#endif // EDKM_UTIL_LOGGING_H_
