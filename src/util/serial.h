/**
 * @file
 * Bounds-checked binary (de)serialisation helpers shared by every
 * on-disk codec (palettized tensors, quantised matrices, model
 * artifacts). All formats are little-endian POD streams; readers throw
 * FatalError on truncated or malformed input instead of reading out of
 * bounds.
 */

#ifndef EDKM_UTIL_SERIAL_H_
#define EDKM_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace edkm {
namespace serial {

/** Slurp a binary file; throws FatalError when it cannot be opened. */
inline std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EDKM_CHECK(f.good(), "cannot open ", path);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
}

/** Append one POD value to @p buf. */
template <typename T>
void
appendPod(std::vector<uint8_t> &buf, T v)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "appendPod: POD types only");
    size_t at = buf.size();
    buf.resize(at + sizeof(T));
    std::memcpy(buf.data() + at, &v, sizeof(T));
}

/**
 * Non-owning view over serialized bytes, for readers that parse
 * in-place (e.g. over an mmap-ed artifact) instead of from a vector.
 */
struct ByteSpan
{
    const uint8_t *data = nullptr;
    size_t size = 0;

    ByteSpan() = default;
    ByteSpan(const uint8_t *d, size_t n) : data(d), size(n) {}
    /*implicit*/ ByteSpan(const std::vector<uint8_t> &v)
        : data(v.data()), size(v.size())
    {
    }
};

/** Read one POD value at @p at of @p span, advancing it. Throws when
 *  truncated. */
template <typename T>
T
readPod(ByteSpan span, size_t &at)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "readPod: POD types only");
    EDKM_CHECK(sizeof(T) <= span.size && at <= span.size - sizeof(T),
               "deserialize: truncated buffer (need ", sizeof(T),
               " bytes at offset ", at, " of ", span.size, ")");
    T v;
    std::memcpy(&v, span.data + at, sizeof(T));
    at += sizeof(T);
    return v;
}

/** Read one POD value at @p at, advancing it. Throws when truncated. */
template <typename T>
T
readPod(const std::vector<uint8_t> &buf, size_t &at)
{
    return readPod<T>(ByteSpan(buf), at);
}

/** Append a length-prefixed (u32) byte string. */
inline void
appendString(std::vector<uint8_t> &buf, const std::string &s)
{
    appendPod(buf, static_cast<uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

/** Read a length-prefixed (u32) byte string. */
inline std::string
readString(ByteSpan span, size_t &at)
{
    uint32_t n = readPod<uint32_t>(span, at);
    EDKM_CHECK(n <= span.size - at,
               "deserialize: truncated string (need ", n,
               " bytes at offset ", at, " of ", span.size, ")");
    std::string s(reinterpret_cast<const char *>(span.data) + at, n);
    at += n;
    return s;
}

inline std::string
readString(const std::vector<uint8_t> &buf, size_t &at)
{
    return readString(ByteSpan(buf), at);
}

/** Append a length-prefixed (u64) raw byte blob. */
inline void
appendBytes(std::vector<uint8_t> &buf, const std::vector<uint8_t> &bytes)
{
    appendPod(buf, static_cast<uint64_t>(bytes.size()));
    buf.insert(buf.end(), bytes.begin(), bytes.end());
}

/** Read a length-prefixed (u64) raw byte blob. */
inline std::vector<uint8_t>
readBytes(ByteSpan span, size_t &at)
{
    uint64_t n = readPod<uint64_t>(span, at);
    EDKM_CHECK(n <= span.size - at,
               "deserialize: truncated blob (need ", n,
               " bytes at offset ", at, " of ", span.size, ")");
    std::vector<uint8_t> out(span.data + at, span.data + at + n);
    at += static_cast<size_t>(n);
    return out;
}

inline std::vector<uint8_t>
readBytes(const std::vector<uint8_t> &buf, size_t &at)
{
    return readBytes(ByteSpan(buf), at);
}

/**
 * Borrow a length-prefixed (u64) blob in place: returns a sub-span of
 * @p span instead of copying, advancing @p at past it.
 */
inline ByteSpan
viewBytes(ByteSpan span, size_t &at)
{
    uint64_t n = readPod<uint64_t>(span, at);
    EDKM_CHECK(n <= span.size - at,
               "deserialize: truncated blob (need ", n,
               " bytes at offset ", at, " of ", span.size, ")");
    ByteSpan out(span.data + at, static_cast<size_t>(n));
    at += static_cast<size_t>(n);
    return out;
}

} // namespace serial
} // namespace edkm

#endif // EDKM_UTIL_SERIAL_H_
