/**
 * @file
 * Bounds-checked binary (de)serialisation helpers shared by every
 * on-disk codec (palettized tensors, quantised matrices, model
 * artifacts). All formats are little-endian POD streams; readers throw
 * FatalError on truncated or malformed input instead of reading out of
 * bounds.
 */

#ifndef EDKM_UTIL_SERIAL_H_
#define EDKM_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace edkm {
namespace serial {

/** Append one POD value to @p buf. */
template <typename T>
void
appendPod(std::vector<uint8_t> &buf, T v)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "appendPod: POD types only");
    size_t at = buf.size();
    buf.resize(at + sizeof(T));
    std::memcpy(buf.data() + at, &v, sizeof(T));
}

/** Read one POD value at @p at, advancing it. Throws when truncated. */
template <typename T>
T
readPod(const std::vector<uint8_t> &buf, size_t &at)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "readPod: POD types only");
    EDKM_CHECK(sizeof(T) <= buf.size() && at <= buf.size() - sizeof(T),
               "deserialize: truncated buffer (need ", sizeof(T),
               " bytes at offset ", at, " of ", buf.size(), ")");
    T v;
    std::memcpy(&v, buf.data() + at, sizeof(T));
    at += sizeof(T);
    return v;
}

/** Append a length-prefixed (u32) byte string. */
inline void
appendString(std::vector<uint8_t> &buf, const std::string &s)
{
    appendPod(buf, static_cast<uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

/** Read a length-prefixed (u32) byte string. */
inline std::string
readString(const std::vector<uint8_t> &buf, size_t &at)
{
    uint32_t n = readPod<uint32_t>(buf, at);
    EDKM_CHECK(n <= buf.size() - at,
               "deserialize: truncated string (need ", n,
               " bytes at offset ", at, " of ", buf.size(), ")");
    std::string s(reinterpret_cast<const char *>(buf.data()) + at, n);
    at += n;
    return s;
}

/** Append a length-prefixed (u64) raw byte blob. */
inline void
appendBytes(std::vector<uint8_t> &buf, const std::vector<uint8_t> &bytes)
{
    appendPod(buf, static_cast<uint64_t>(bytes.size()));
    buf.insert(buf.end(), bytes.begin(), bytes.end());
}

/** Read a length-prefixed (u64) raw byte blob. */
inline std::vector<uint8_t>
readBytes(const std::vector<uint8_t> &buf, size_t &at)
{
    uint64_t n = readPod<uint64_t>(buf, at);
    EDKM_CHECK(n <= buf.size() - at,
               "deserialize: truncated blob (need ", n,
               " bytes at offset ", at, " of ", buf.size(), ")");
    std::vector<uint8_t> out(buf.begin() + static_cast<int64_t>(at),
                             buf.begin() + static_cast<int64_t>(at + n));
    at += static_cast<size_t>(n);
    return out;
}

} // namespace serial
} // namespace edkm

#endif // EDKM_UTIL_SERIAL_H_
