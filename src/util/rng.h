/**
 * @file
 * Deterministic pseudo-random number utilities.
 *
 * Every stochastic component in the library (weight init, data synthesis,
 * kmeans++ seeding) draws from an explicitly seeded Rng so experiments are
 * reproducible run-to-run.
 */

#ifndef EDKM_UTIL_RNG_H_
#define EDKM_UTIL_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace edkm {

/** Seeded PRNG wrapper with convenience draws used across the library. */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for reproducibility). */
    explicit Rng(uint64_t seed = 0x5eed0123456789abULL) : engine_(seed) {}

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo = 0.0f, float hi = 1.0f)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        return d(engine_);
    }

    /** Standard normal (mean 0, std 1) scaled to @p std around @p mean. */
    float
    normal(float mean = 0.0f, float std = 1.0f)
    {
        std::normal_distribution<float> d(mean, std);
        return d(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    randint(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> d(lo, hi);
        return d(engine_);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution d(p);
        return d(engine_);
    }

    /** Sample an index from unnormalised non-negative weights. */
    size_t
    categorical(const std::vector<double> &weights)
    {
        std::discrete_distribution<size_t> d(weights.begin(), weights.end());
        return d(engine_);
    }

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace edkm

#endif // EDKM_UTIL_RNG_H_
