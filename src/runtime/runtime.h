/**
 * @file
 * edkm::runtime — the process-wide parallel execution facade.
 *
 * Every hot loop in the library (tensor kernels, the DKM/eDKM attention
 * maps, uniquification bucketing, marshaling copies) funnels through the
 * free functions here instead of raw `for` loops:
 *
 *     runtime::parallelFor(0, n, grain, [&](int64_t b, int64_t e) {...});
 *     double s = runtime::parallelReduce<double>(0, n, grain, 0.0,
 *         [&](int64_t b, int64_t e) {... return chunk_sum; },
 *         [](double a, double c) { return a + c; });
 *
 * Determinism contract: the chunk decomposition depends only on
 * (begin, end, grain) — never on the thread count — and reduce partials
 * are combined in chunk-index order. Results are therefore bit-identical
 * across any thread count, including under SerialGuard. Callers must
 * pick grains from problem size alone to preserve this.
 *
 * Thread count resolution: EDKM_NUM_THREADS env var if set (>=1),
 * otherwise std::thread::hardware_concurrency(). Tests override at
 * runtime with Runtime::setThreadCount().
 */

#ifndef EDKM_RUNTIME_RUNTIME_H_
#define EDKM_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"
#include "util/thread_annotations.h"

namespace edkm {
namespace runtime {

/**
 * Lazily constructed global pool. The singleton outlives every layer
 * that uses it (function-local static); swapping the thread count tears
 * the old pool down after its queue drains.
 */
class Runtime
{
  public:
    static Runtime &instance();

    /**
     * The current pool (never null). Callers hold the returned
     * shared_ptr for the duration of use: a concurrent
     * setThreadCount() then retires the old pool only after the last
     * in-flight user releases it.
     */
    std::shared_ptr<ThreadPool> pool();

    /** Current lane count of the pool. */
    int threadCount();

    /**
     * Replace the pool with one of @p threads lanes (min 1). Loops
     * already running on the old pool finish on it; new parallelFor
     * calls pick up the new pool.
     */
    void setThreadCount(int threads);

    /** The thread count EDKM_NUM_THREADS / hardware_concurrency gives. */
    static int defaultThreadCount();

    /**
     * Child-side fork repair: the pool's worker threads do not survive
     * fork, so the inherited ThreadPool object is a husk whose
     * destructor (join) would hang forever. This deliberately *leaks*
     * the inherited pool object and installs a fresh @p threads-lane
     * pool. Must be the first runtime call in a forked child (before
     * any parallelFor); dist::ProcessGroup calls it for its learners.
     */
    void resetAfterFork(int threads = 1);

  private:
    Runtime();

    util::Mutex mutex_;
    std::shared_ptr<ThreadPool> pool_ EDKM_GUARDED_BY(mutex_);
};

/**
 * RAII scope forcing serial in-order chunk execution on this thread,
 * regardless of the global pool size. Used by determinism tests as the
 * golden reference and by code that must not fan out (e.g. reentrant
 * diagnostics). Nestable.
 */
class SerialGuard
{
  public:
    SerialGuard();
    ~SerialGuard();

    SerialGuard(const SerialGuard &) = delete;
    SerialGuard &operator=(const SerialGuard &) = delete;

    /** True when any SerialGuard is live on this thread. */
    static bool active();
};

/**
 * Run @p body(chunk_begin, chunk_end) over [begin, end) in chunks of
 * @p grain. Chunks run concurrently (unless serial); bodies must write
 * disjoint outputs. Blocks until complete; rethrows the first chunk
 * exception.
 */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)> &body);

/** As parallelFor but the body also receives the chunk index. */
void parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                       const std::function<void(int64_t, int64_t, int64_t)>
                           &body);

/** Number of chunks parallelFor will use for this decomposition. */
int64_t chunkCount(int64_t begin, int64_t end, int64_t grain);

/**
 * Deterministic chunked reduction: @p map(b, e) produces one partial per
 * chunk (in parallel), @p combine folds the partials *in chunk order*
 * starting from @p init. Bit-identical across thread counts.
 */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
               const MapFn &map, const CombineFn &combine)
{
    if (end <= begin) {
        return init;
    }
    int64_t nchunks = chunkCount(begin, end, grain);
    std::vector<T> partial(static_cast<size_t>(nchunks));
    parallelForChunks(begin, end, grain,
                      [&](int64_t ci, int64_t b, int64_t e) {
                          partial[static_cast<size_t>(ci)] = map(b, e);
                      });
    T acc = std::move(init);
    for (int64_t ci = 0; ci < nchunks; ++ci) {
        acc = combine(std::move(acc),
                      std::move(partial[static_cast<size_t>(ci)]));
    }
    return acc;
}

/**
 * Grain that spreads @p total elements of roughly @p unit_cost work each
 * into chunks of ~32k cost units, clamped to [1, total]. Depends only on
 * the arguments, preserving the determinism contract.
 */
int64_t grainFor(int64_t total, int64_t unit_cost = 1);

/**
 * grainFor rounded up to a multiple of @p align, so chunk boundaries of
 * map-only loops land on vector-lane multiples and at most the final
 * chunk runs a partial-lane tail. Still a pure function of its
 * arguments. Only for loops without cross-chunk reductions: a different
 * alignment changes the decomposition, which would change the combine
 * order of a reduce.
 */
int64_t grainForAligned(int64_t total, int64_t unit_cost, int64_t align);

/**
 * Grain bounding the decomposition of @p total elements to at most
 * @p max_chunks chunks of at least @p min_grain elements — for
 * reductions whose per-chunk scratch is expensive (private histograms
 * or [U]-sized buffers). Depends only on the arguments.
 */
int64_t coarseGrain(int64_t total, int64_t max_chunks = 16,
                    int64_t min_grain = 1);

} // namespace runtime
} // namespace edkm

#endif // EDKM_RUNTIME_RUNTIME_H_
