#include "runtime/runtime.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "util/logging.h"

namespace edkm {
namespace runtime {

namespace {

/** Depth of nested SerialGuards on this thread. */
thread_local int tl_serial_depth = 0;

constexpr int64_t kTargetChunkCost = 1 << 15; ///< ~32k work units/chunk

} // namespace

int
Runtime::defaultThreadCount()
{
    if (const char *env = std::getenv("EDKM_NUM_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1 && v <= 1024) {
            return static_cast<int>(v);
        }
        warn("EDKM_NUM_THREADS='", env,
             "' is not a thread count in [1,1024]; ignoring");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

Runtime::Runtime()
    : pool_(std::make_shared<ThreadPool>(defaultThreadCount()))
{
}

Runtime &
Runtime::instance()
{
    static Runtime rt;
    return rt;
}

std::shared_ptr<ThreadPool>
Runtime::pool()
{
    util::MutexLock lock(mutex_);
    return pool_;
}

int
Runtime::threadCount()
{
    return pool()->threadCount();
}

void
Runtime::setThreadCount(int threads)
{
    auto next = std::make_shared<ThreadPool>(std::max(1, threads));
    std::shared_ptr<ThreadPool> old;
    {
        util::MutexLock lock(mutex_);
        old = std::move(pool_);
        pool_ = std::move(next);
    }
    // `old` retires here — or when the last in-flight user of it
    // releases its reference; either way its queue drains and its
    // workers join before the object dies.
}

void
Runtime::resetAfterFork(int threads)
{
    util::MutexLock lock(mutex_);
    // The old pool's workers died with the parent's address space; its
    // destructor would join threads that no longer exist. Park the
    // shared_ptr on the heap forever — an intentional one-time leak in
    // a process that exits via _exit() anyway.
    new std::shared_ptr<ThreadPool>(std::move(pool_));
    pool_ = std::make_shared<ThreadPool>(std::max(1, threads));
}

SerialGuard::SerialGuard()
{
    ++tl_serial_depth;
}

SerialGuard::~SerialGuard()
{
    --tl_serial_depth;
}

bool
SerialGuard::active()
{
    return tl_serial_depth > 0;
}

int64_t
chunkCount(int64_t begin, int64_t end, int64_t grain)
{
    if (end <= begin) {
        return 0;
    }
    int64_t g = std::max<int64_t>(1, grain);
    return (end - begin + g - 1) / g;
}

void
parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t, int64_t)>
                      &body)
{
    if (end <= begin) {
        return;
    }
    int64_t g = std::max<int64_t>(1, grain);
    int64_t nchunks = chunkCount(begin, end, g);
    // Single chunk (every small-tensor op) or serial scope: run inline
    // without touching the global pool (and its mutex).
    if (nchunks == 1 || SerialGuard::active()) {
        for (int64_t ci = 0; ci < nchunks; ++ci) {
            int64_t b = begin + ci * g;
            body(ci, b, std::min(b + g, end));
        }
        return;
    }
    // Hold the pool for the call: a concurrent setThreadCount() must
    // not destroy it out from under this loop.
    std::shared_ptr<ThreadPool> pool = Runtime::instance().pool();
    pool->forChunks(begin, end, g, body);
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)> &body)
{
    parallelForChunks(begin, end, grain,
                      [&body](int64_t, int64_t b, int64_t e) {
                          body(b, e);
                      });
}

int64_t
grainFor(int64_t total, int64_t unit_cost)
{
    if (total <= 0) {
        return 1;
    }
    int64_t cost = std::max<int64_t>(1, unit_cost);
    int64_t grain = std::max<int64_t>(1, kTargetChunkCost / cost);
    return std::min(grain, total);
}

int64_t
grainForAligned(int64_t total, int64_t unit_cost, int64_t align)
{
    int64_t g = grainFor(total, unit_cost);
    int64_t a = std::max<int64_t>(1, align);
    g = (g + a - 1) / a * a;
    return std::min(g, std::max<int64_t>(1, total));
}

int64_t
coarseGrain(int64_t total, int64_t max_chunks, int64_t min_grain)
{
    if (total <= 0) {
        return std::max<int64_t>(1, min_grain);
    }
    int64_t chunks = std::max<int64_t>(1, max_chunks);
    int64_t grain = (total + chunks - 1) / chunks;
    return std::max(grain, std::max<int64_t>(1, min_grain));
}

} // namespace runtime
} // namespace edkm
