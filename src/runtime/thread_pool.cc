#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/logging.h"

namespace edkm {
namespace runtime {

namespace {

/** Set while a pool worker executes a job (nested-call detection). */
thread_local bool tl_in_worker = false;

} // namespace

/** Shared bookkeeping of one forChunks() invocation. */
struct ThreadPool::ForState
{
    std::function<void(int64_t, int64_t, int64_t)> body;
    int64_t begin = 0;
    int64_t grain = 1;
    int64_t total = 0; ///< number of chunks

    std::atomic<int64_t> next{0}; ///< next chunk index to claim
    std::atomic<int64_t> done{0}; ///< chunks executed or skipped
    std::atomic<bool> failed{false};

    util::Mutex mutex;
    util::CondVar cv;
    std::exception_ptr error EDKM_GUARDED_BY(mutex);

    /** Claim-and-run loop shared by the caller and the runner jobs. */
    void
    drain()
    {
        for (;;) {
            int64_t ci = next.fetch_add(1, std::memory_order_relaxed);
            if (ci >= total) {
                return;
            }
            if (!failed.load(std::memory_order_relaxed)) {
                int64_t b = begin + ci * grain;
                int64_t e = std::min(b + grain, begin + totalExtent());
                try {
                    body(ci, b, e);
                } catch (...) {
                    {
                        util::MutexLock lock(mutex);
                        if (!error) {
                            error = std::current_exception();
                        }
                    }
                    failed.store(true, std::memory_order_relaxed);
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                total) {
                util::MutexLock lock(mutex);
                cv.notify_all();
            }
        }
    }

    int64_t extent = 0; ///< end - begin

    int64_t
    totalExtent() const
    {
        return extent;
    }
};

ThreadPool::ThreadPool(int threads)
{
    int lanes = std::max(1, threads);
    workers_.reserve(static_cast<size_t>(lanes - 1));
    for (int i = 0; i < lanes - 1; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        util::MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_) {
        t.join();
    }
}

bool
ThreadPool::inWorker()
{
    return tl_in_worker;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            util::MutexLock lock(mutex_);
            // Explicit predicate loop (not a wait-with-lambda): the
            // analysis checks the guarded reads right here, under the
            // lock it can see held.
            while (!stop_ && jobs_.empty()) {
                cv_.wait(mutex_);
            }
            if (jobs_.empty()) {
                return; // stop_ and drained
            }
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        tl_in_worker = true;
        job();
        tl_in_worker = false;
        // Release the callable (and anything it captured) immediately
        // instead of holding it across the next queue wait.
        job = nullptr;
    }
}

void
ThreadPool::forChunks(int64_t begin, int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t, int64_t)>
                          &body)
{
    if (end <= begin) {
        return;
    }
    int64_t g = std::max<int64_t>(1, grain);
    int64_t extent = end - begin;
    int64_t nchunks = (extent + g - 1) / g;

    // Serial path: no workers, a single chunk, or a nested call from a
    // worker (running inline avoids deadlock). Chunks execute in index
    // order, which is also the reduction-combine order, so numerics match
    // the parallel path exactly.
    if (workers_.empty() || nchunks == 1 || inWorker()) {
        for (int64_t ci = 0; ci < nchunks; ++ci) {
            int64_t b = begin + ci * g;
            body(ci, b, std::min(b + g, end));
        }
        return;
    }

    auto st = std::make_shared<ForState>();
    st->body = body; // copy: runner jobs may outlive this frame's refs
    st->begin = begin;
    st->grain = g;
    st->total = nchunks;
    st->extent = extent;

    // One runner job per worker lane (capped by the chunk count); the
    // caller is the final lane. Runners that wake after all chunks are
    // claimed return immediately.
    int64_t runners = std::min<int64_t>(
        static_cast<int64_t>(workers_.size()), nchunks - 1);
    {
        util::MutexLock lock(mutex_);
        for (int64_t i = 0; i < runners; ++i) {
            jobs_.emplace_back([st] { st->drain(); });
        }
    }
    if (runners == 1) {
        cv_.notify_one();
    } else {
        cv_.notify_all();
    }

    st->drain();

    util::MutexLock lock(st->mutex);
    while (st->done.load(std::memory_order_acquire) != st->total) {
        st->cv.wait(st->mutex);
    }
    if (st->error) {
        std::rethrow_exception(st->error);
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> job)
{
    // promise-based rather than std::packaged_task: a packaged_task's
    // shared state retains the callable, so a caller storing the future
    // inside an object the job captures would form a reference cycle.
    // The promise state holds only the result; the callable dies with
    // its queue slot right after execution.
    auto promise = std::make_shared<std::promise<void>>();
    std::future<void> fut = promise->get_future();
    auto wrapped = [promise, fn = std::move(job)] {
        try {
            fn();
            promise->set_value();
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    };
    if (workers_.empty()) {
        wrapped();
        return fut;
    }
    {
        util::MutexLock lock(mutex_);
        jobs_.emplace_back(std::move(wrapped));
    }
    cv_.notify_one();
    return fut;
}

} // namespace runtime
} // namespace edkm
