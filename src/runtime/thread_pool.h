/**
 * @file
 * Chunked thread pool: the execution engine under edkm::runtime.
 *
 * Design goals, in priority order:
 *
 *  1. *Determinism*: work is split into chunks by a caller-supplied grain
 *     that depends only on the problem size, never on the thread count.
 *     parallel-for bodies write disjoint outputs per chunk; reductions
 *     combine per-chunk partials in chunk-index order. A run with 1
 *     thread and a run with 64 threads therefore produce bit-identical
 *     results (see tests/test_runtime.cc).
 *
 *  2. *Safety*: exceptions thrown inside a chunk propagate to the caller
 *     (first one wins, remaining chunks are skipped); nested forChunks
 *     calls from inside a worker degrade to inline serial execution
 *     instead of deadlocking the pool.
 *
 *  3. *Simplicity*: no work stealing. Chunks are claimed from a shared
 *     atomic counter, which load-balances irregular chunks well enough
 *     for the |W| x |C| kernels this library runs.
 */

#ifndef EDKM_RUNTIME_THREAD_POOL_H_
#define EDKM_RUNTIME_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace edkm {
namespace runtime {

/**
 * Fixed-size pool of worker threads executing chunked loops and
 * fire-and-forget jobs. The constructing thread participates in
 * forChunks() as an extra lane, so ThreadPool(1) owns no OS threads and
 * runs everything inline.
 */
class ThreadPool
{
  public:
    /** @param threads total lanes including the caller (min 1). */
    explicit ThreadPool(int threads);

    /** Drains queued jobs, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (workers + the calling thread). */
    int
    threadCount() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Split [begin, end) into ceil((end-begin)/grain) chunks and invoke
     * @p body(chunk_index, chunk_begin, chunk_end) for each, spread over
     * the pool (the caller participates). Blocks until every chunk has
     * run. The chunk decomposition depends only on (begin, end, grain).
     *
     * The first exception thrown by any chunk is rethrown here; chunks
     * not yet started when it fires are skipped.
     *
     * Re-entrant calls from a worker thread run serially inline.
     */
    void forChunks(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t, int64_t)>
                       &body);

    /**
     * Queue @p job for asynchronous execution. With no workers the job
     * runs inline before returning. The future carries any exception.
     */
    std::future<void> submit(std::function<void()> job);

    /** True when called from inside one of this process's pool workers. */
    static bool inWorker();

  private:
    struct ForState;

    void workerLoop();

    /** Written only by the constructor, joined by the destructor;
     *  in between it is read-only (threadCount), so unguarded. */
    std::vector<std::thread> workers_;
    util::Mutex mutex_;
    util::CondVar cv_;
    std::deque<std::function<void()>> jobs_ EDKM_GUARDED_BY(mutex_);
    bool stop_ EDKM_GUARDED_BY(mutex_) = false;
};

} // namespace runtime
} // namespace edkm

#endif // EDKM_RUNTIME_THREAD_POOL_H_
