/**
 * @file
 * Weighted 1-D k-means (kmeans++ seeding + Lloyd iterations).
 *
 * Serves three roles: warm-start initialisation of DKM's centroids,
 * the hard-assignment step of palettization, and a classic non-
 * differentiable clustering baseline for tests.
 *
 * Weight clustering operates on scalar weight values, so only the 1-D
 * case is needed; multiplicity weights let the uniquified path cluster
 * unique values exactly as the dense path clusters all values.
 */

#ifndef EDKM_CORE_KMEANS_H_
#define EDKM_CORE_KMEANS_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace edkm {

/** Output of a k-means run. */
struct KMeansResult
{
    std::vector<float> centroids;     ///< k cluster centers (sorted)
    std::vector<int32_t> assignments; ///< nearest-centroid id per value
    double inertia = 0.0;             ///< weighted sum of squared error
    int iterations = 0;               ///< Lloyd iterations executed
};

/**
 * Weighted 1-D k-means.
 *
 * @param values     data points.
 * @param weights    non-negative multiplicity per point (empty = all 1).
 * @param k          number of clusters (>=1). If fewer distinct values
 *                   than k exist, surplus centroids duplicate extremes.
 * @param rng        seeding source (kmeans++ is stochastic).
 * @param max_iters  Lloyd iteration cap.
 * @param tol        stop when no centroid moves more than this.
 */
KMeansResult kmeans1d(const std::vector<float> &values,
                      const std::vector<float> &weights, int k, Rng &rng,
                      int max_iters = 25, double tol = 1e-7);

/** Index of the centroid nearest to @p v. */
int32_t nearestCentroid(const std::vector<float> &centroids, float v);

} // namespace edkm

#endif // EDKM_CORE_KMEANS_H_
