/**
 * @file
 * eDKM: memory-efficient differentiable k-means (the paper's primary
 * contribution).
 *
 * EdkmLayer computes exactly the same soft clustering as DkmLayer but
 * restructures what is *saved* for backward, following section 2.2:
 *
 *  - Uniquification: 16-bit weights have at most 2^16 distinct patterns,
 *    so each iteration saves an attention *table* T [unique x |C|] plus a
 *    single shared *index list* [|W|] (u16) instead of the dense map
 *    A [|W| x |C|]. Attention rows are computed once per unique value;
 *    attention pooling uses multiplicity counts, which is algebraically
 *    identical to the dense computation.
 *
 *  - Sharding: in fully synchronous data-parallel training every learner
 *    holds identical weights, so the index list (or the dense map's rows
 *    when uniquification is off) can be sharded across |L| learners,
 *    keeping O(|W|/|L|) per learner. The missing shards are all-gathered
 *    back for backward; the simulation regenerates them deterministically
 *    and accounts the communication (src/dist).
 *
 *  - Backward modes: kReconstruct (paper-faithful) transiently rebuilds
 *    the dense attention map with a gather so the standard dense backward
 *    formulas apply ("to stay compatible with the existing autograd
 *    implementation"); kFused (our extension) evaluates the backward
 *    entirely in table space, never materialising |W| x |C|. Both produce
 *    identical gradients (see tests/test_edkm.cc).
 *
 * Saved tensors flow through SavedTensor, hence through any installed
 * marshaling context (section 2.1) — benches install MarshalContext to
 * offload them to CPU with duplicate detection.
 */

#ifndef EDKM_CORE_EDKM_H_
#define EDKM_CORE_EDKM_H_

#include <cstdint>
#include <memory>

#include "autograd/variable.h"
#include "core/dkm.h"
#include "core/palettize.h"
#include "core/uniquify.h"
#include "dist/learner_group.h"
#include "tensor/tensor.h"
#include "util/half.h"

namespace edkm {

/** eDKM configuration: DKM hyper-parameters + memory techniques. */
struct EdkmConfig
{
    /** Shared clustering hyper-parameters. */
    DkmConfig dkm;

    /** 16-bit bucketing used by uniquification. */
    HalfKind halfKind = HalfKind::kBf16;

    /** U: save attention tables + index list instead of dense maps. */
    bool uniquify = true;

    /** S: shard the per-learner saved payload over the learner group. */
    bool shard = false;

    /** This learner's rank (simulation runs rank's view). */
    int rank = 0;

    /** How backward consumes the saved representation. */
    enum class BackwardMode {
        kReconstruct, ///< paper: rebuild the dense map transiently
        kFused,       ///< extension: stay in table space
    };
    BackwardMode backwardMode = BackwardMode::kReconstruct;
};

/** Diagnostics of the last EdkmLayer::forward. */
struct EdkmReport
{
    int iterations = 0;
    float temperatureUsed = 0.0f;
    int64_t uniqueCount = 0;   ///< 0 when uniquification is off
    int64_t savedBytes = 0;    ///< logical bytes stashed for backward
    int64_t denseMapBytes = 0; ///< what one dense iteration map would be
};

/**
 * Memory-efficient differentiable weight clustering layer.
 *
 * Construct once per weight tensor family; forward() may be called every
 * fine-tuning step. Pass a LearnerGroup to enable sharding accounting.
 */
class EdkmLayer
{
  public:
    explicit EdkmLayer(EdkmConfig config,
                       std::shared_ptr<LearnerGroup> group = nullptr);

    /** Differentiable soft clustering (same contract as DkmLayer). */
    Variable forward(const Variable &w);

    /** Palettize @p w against the last forward's centroids. */
    PalettizedTensor palettize(const Tensor &w) const;

    /** Centroids after the last forward ([k] f32). */
    const Tensor &centroids() const { return centroids_; }

    /** Diagnostics of the last forward. */
    const EdkmReport &report() const { return report_; }

    const EdkmConfig &config() const { return config_; }

  private:
    EdkmConfig config_;
    std::shared_ptr<LearnerGroup> group_;
    Tensor centroids_;
    EdkmReport report_;
};

} // namespace edkm

#endif // EDKM_CORE_EDKM_H_
