#include "core/palettize.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/kmeans.h"
#include "device/device_manager.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "util/half.h"
#include "util/logging.h"
#include "util/serial.h"

namespace edkm {

std::vector<uint8_t>
packBits(const std::vector<int32_t> &values, int bits)
{
    EDKM_CHECK(bits >= 1 && bits <= 16, "packBits: bits out of range");
    std::vector<uint8_t> out((values.size() * bits + 7) / 8, 0);
    size_t bitpos = 0;
    for (int32_t v : values) {
        EDKM_CHECK(v >= 0 && v < (1 << bits), "packBits: value ", v,
                   " does not fit in ", bits, " bits");
        uint32_t u = static_cast<uint32_t>(v);
        for (int b = 0; b < bits; ++b) {
            if (u & (1u << b)) {
                out[bitpos >> 3] |=
                    static_cast<uint8_t>(1u << (bitpos & 7));
            }
            ++bitpos;
        }
    }
    return out;
}

std::vector<int32_t>
unpackBits(const std::vector<uint8_t> &stream, int bits, int64_t n)
{
    EDKM_CHECK(bits >= 1 && bits <= 16, "unpackBits: bits out of range");
    EDKM_CHECK(static_cast<int64_t>(stream.size()) * 8 >= n * bits,
               "unpackBits: stream too short");
    std::vector<int32_t> out(static_cast<size_t>(n), 0);
    size_t bitpos = 0;
    for (int64_t i = 0; i < n; ++i) {
        uint32_t v = 0;
        for (int b = 0; b < bits; ++b) {
            if (stream[bitpos >> 3] & (1u << (bitpos & 7))) {
                v |= 1u << b;
            }
            ++bitpos;
        }
        out[static_cast<size_t>(i)] = static_cast<int32_t>(v);
    }
    return out;
}

PalettizedTensor
PalettizedTensor::fromDense(const Tensor &w, int bits, Rng &rng,
                            int kmeans_iters)
{
    std::vector<float> values = w.toVector();
    KMeansResult km = kmeans1d(values, {}, 1 << bits, rng, kmeans_iters);
    return fromAssignments(w.shape(), km.centroids, km.assignments, bits);
}

PalettizedTensor
PalettizedTensor::fromAssignments(Shape shape,
                                  const std::vector<float> &lut,
                                  const std::vector<int32_t> &assignments,
                                  int bits)
{
    EDKM_CHECK(static_cast<int>(lut.size()) == (1 << bits),
               "palettize: LUT must have 2^bits entries, got ", lut.size());
    PalettizedTensor p;
    p.shape_ = std::move(shape);
    p.bits_ = bits;
    // Round the LUT through FP16 — that is the precision it ships in.
    p.lut_.reserve(lut.size());
    for (float c : lut) {
        p.lut_.push_back(roundToFp16(c));
    }
    p.packed_ = packBits(assignments, bits);
    EDKM_CHECK(static_cast<int64_t>(assignments.size()) == p.numel(),
               "palettize: one assignment per element");
    return p;
}

int64_t
PalettizedTensor::numel() const
{
    int64_t n = 1;
    for (int64_t d : shape_) {
        n *= d;
    }
    return shape_.empty() ? 0 : n;
}

Tensor
PalettizedTensor::decompress(Device dev) const
{
    std::vector<int32_t> idx = unpackBits(packed_, bits_, numel());
    Tensor out = Tensor::empty(shape_, DType::kF32, dev);
    float *po = out.rawData<float>();
    for (size_t i = 0; i < idx.size(); ++i) {
        po[i] = lut_[static_cast<size_t>(idx[i])];
    }
    return out;
}

int64_t
PalettizedTensor::payloadBytes() const
{
    // Packed indices + FP16 LUT + 16-byte header (bits, rank, dims).
    return static_cast<int64_t>(packed_.size()) +
           static_cast<int64_t>(lut_.size()) * 2 + 16 +
           static_cast<int64_t>(shape_.size()) * 8;
}

double
PalettizedTensor::bitsPerWeight() const
{
    return 8.0 * static_cast<double>(payloadBytes()) /
           static_cast<double>(numel());
}

namespace {

constexpr uint32_t kMagic = 0x454b4d50u; // "PMKE"

/** Largest tensor rank the format accepts (defensive bound). */
constexpr uint32_t kMaxRank = 8;

} // namespace

std::vector<uint8_t>
PalettizedTensor::serialize() const
{
    std::vector<uint8_t> buf;
    serial::appendPod(buf, kMagic);
    serial::appendPod(buf, static_cast<uint32_t>(bits_));
    serial::appendPod(buf, static_cast<uint32_t>(shape_.size()));
    for (int64_t d : shape_) {
        serial::appendPod(buf, d);
    }
    serial::appendPod(buf, static_cast<uint32_t>(lut_.size()));
    for (float c : lut_) {
        serial::appendPod(buf, floatToFp16(c));
    }
    serial::appendBytes(buf, packed_);
    return buf;
}

PalettizedTensor
PalettizedTensor::deserialize(const std::vector<uint8_t> &bytes)
{
    size_t at = 0;
    EDKM_CHECK(serial::readPod<uint32_t>(bytes, at) == kMagic,
               "PalettizedTensor::deserialize: bad magic");
    PalettizedTensor p;
    p.bits_ = static_cast<int>(serial::readPod<uint32_t>(bytes, at));
    EDKM_CHECK(p.bits_ >= 1 && p.bits_ <= 16,
               "PalettizedTensor::deserialize: bits out of range: ",
               p.bits_);
    uint32_t rank = serial::readPod<uint32_t>(bytes, at);
    EDKM_CHECK(rank >= 1 && rank <= kMaxRank,
               "PalettizedTensor::deserialize: bad rank ", rank,
               " (accepted: 1..", kMaxRank, ")");
    p.shape_.resize(rank);
    int64_t n = 1;
    for (uint32_t i = 0; i < rank; ++i) {
        int64_t d = serial::readPod<int64_t>(bytes, at);
        EDKM_CHECK(d > 0, "PalettizedTensor::deserialize: dimension ", i,
                   " is ", d, ", must be positive");
        EDKM_CHECK(n <= (int64_t{1} << 48) / d,
                   "PalettizedTensor::deserialize: element count "
                   "overflows");
        p.shape_[i] = d;
        n *= d;
    }
    uint32_t lut_n = serial::readPod<uint32_t>(bytes, at);
    EDKM_CHECK(lut_n == (1u << p.bits_),
               "PalettizedTensor::deserialize: LUT has ", lut_n,
               " entries, expected 2^", p.bits_, " = ", (1u << p.bits_));
    p.lut_.resize(lut_n);
    for (uint32_t i = 0; i < lut_n; ++i) {
        p.lut_[i] = fp16ToFloat(serial::readPod<uint16_t>(bytes, at));
    }
    p.packed_ = serial::readBytes(bytes, at);
    EDKM_CHECK(static_cast<int64_t>(p.packed_.size()) ==
                   (n * p.bits_ + 7) / 8,
               "PalettizedTensor::deserialize: packed stream is ",
               p.packed_.size(), " bytes, expected ",
               (n * p.bits_ + 7) / 8, " for ", n, " x ", p.bits_,
               "-bit indices");
    EDKM_CHECK(at == bytes.size(), "PalettizedTensor::deserialize: ",
               bytes.size() - at, " trailing bytes");
    return p;
}

void
PalettizedTensor::save(const std::string &path) const
{
    std::vector<uint8_t> buf = serialize();
    std::ofstream f(path, std::ios::binary);
    EDKM_CHECK(f.good(), "cannot open ", path, " for writing");
    f.write(reinterpret_cast<const char *>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

PalettizedTensor
PalettizedTensor::load(const std::string &path)
{
    return deserialize(serial::readFile(path));
}

// ----------------------------------------------------------------------
// Zero-copy palette views and the streamed consumption paths
// ----------------------------------------------------------------------

PaletteView
parsePaletteView(const uint8_t *bytes, size_t size,
                 std::shared_ptr<const void> owner)
{
    serial::ByteSpan span(bytes, size);
    size_t at = 0;
    EDKM_CHECK(serial::readPod<uint32_t>(span, at) == kMagic,
               "parsePaletteView: bad magic (not a palettized payload)");
    PaletteView v;
    v.bits = static_cast<int>(serial::readPod<uint32_t>(span, at));
    EDKM_CHECK(v.bits >= 1 && v.bits <= 16,
               "parsePaletteView: bits out of range: ", v.bits);
    uint32_t rank = serial::readPod<uint32_t>(span, at);
    EDKM_CHECK(rank >= 1 && rank <= kMaxRank,
               "parsePaletteView: bad rank ", rank, " (accepted: 1..",
               kMaxRank, ")");
    v.shape.resize(rank);
    int64_t n = 1;
    for (uint32_t i = 0; i < rank; ++i) {
        int64_t d = serial::readPod<int64_t>(span, at);
        EDKM_CHECK(d > 0, "parsePaletteView: dimension ", i, " is ", d,
                   ", must be positive");
        EDKM_CHECK(n <= (int64_t{1} << 48) / d,
                   "parsePaletteView: element count overflows");
        v.shape[i] = d;
        n *= d;
    }
    uint32_t lut_n = serial::readPod<uint32_t>(span, at);
    EDKM_CHECK(lut_n == (1u << v.bits), "parsePaletteView: LUT has ",
               lut_n, " entries, expected 2^", v.bits, " = ",
               (1u << v.bits));
    v.lut.resize(lut_n);
    for (uint32_t i = 0; i < lut_n; ++i) {
        v.lut[i] = fp16ToFloat(serial::readPod<uint16_t>(span, at));
    }
    serial::ByteSpan packed = serial::viewBytes(span, at);
    EDKM_CHECK(static_cast<int64_t>(packed.size) == (n * v.bits + 7) / 8,
               "parsePaletteView: packed stream is ", packed.size,
               " bytes, expected ", (n * v.bits + 7) / 8, " for ", n,
               " x ", v.bits, "-bit indices");
    EDKM_CHECK(at == span.size, "parsePaletteView: ", span.size - at,
               " trailing bytes");
    v.packed = packed.data;
    v.packedBytes = static_cast<int64_t>(packed.size);
    v.owner = std::move(owner);
    return v;
}

PaletteView
viewOf(const PalettizedTensor &p)
{
    PaletteView v;
    v.shape = p.shape();
    v.bits = p.bits();
    v.lut = p.lut();
    v.packed = p.packed().data();
    v.packedBytes = static_cast<int64_t>(p.packed().size());
    return v;
}

namespace {

std::atomic<int64_t> g_fused_calls{0};

/** Startup default for the fused m==1 decode: on unless the escape
 *  hatch EDKM_FUSED_DECODE=off|0|false|staged is set. */
bool
envFusedDecodeDefault()
{
    const char *env = std::getenv("EDKM_FUSED_DECODE");
    if (env == nullptr) {
        return true;
    }
    std::string v;
    for (const char *c = env; *c; ++c) {
        v.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*c))));
    }
    return !(v == "off" || v == "0" || v == "false" || v == "staged");
}

std::atomic<bool> &
fusedDecodeFlag()
{
    static std::atomic<bool> f{envFusedDecodeDefault()};
    return f;
}

} // namespace

void
setPaletteFusedDecode(bool on)
{
    fusedDecodeFlag().store(on, std::memory_order_relaxed);
}

bool
paletteFusedDecodeEnabled()
{
    return fusedDecodeFlag().load(std::memory_order_relaxed);
}

int64_t
paletteFusedCalls()
{
    return g_fused_calls.load(std::memory_order_relaxed);
}

Tensor
paletteMatmulTStaged(const Tensor &x, const PaletteView &w)
{
    EDKM_CHECK(w.shape.size() == 2,
               "paletteMatmulT: weight must be 2-d, got rank ",
               w.shape.size());
    EDKM_CHECK(w.packed != nullptr, "paletteMatmulT: empty view");
    int64_t out = w.shape[0], in = w.shape[1];
    const float *lut = w.lut.data();
    const uint8_t *packed = w.packed;
    int bits = w.bits;
    // Rows [p0, p1) of W^T are columns of W: per row p, gather the
    // column's indices (stride `in` through the bitstream) and expand
    // through the LUT with the kernels-layer gather.
    return matmulStreamed(
        x, in, out, [&](int64_t p0, int64_t p1, float *dst) {
            std::vector<uint16_t> idx(static_cast<size_t>(out));
            for (int64_t p = p0; p < p1; ++p) {
                for (int64_t j = 0; j < out; ++j) {
                    idx[static_cast<size_t>(j)] = static_cast<uint16_t>(
                        unpackBitsAt(packed, bits, j * in + p));
                }
                kernels::gatherU16(lut, idx.data(), out,
                                   dst + (p - p0) * out);
            }
        });
}

Tensor
paletteMatmulT(const Tensor &x, const PaletteView &w)
{
    EDKM_CHECK(w.shape.size() == 2,
               "paletteMatmulT: weight must be 2-d, got rank ",
               w.shape.size());
    EDKM_CHECK(w.packed != nullptr, "paletteMatmulT: empty view");
    int64_t out = w.shape[0], in = w.shape[1];
    Tensor xc = toF32Contig(x);
    EDKM_CHECK(xc.dim() == 2, "paletteMatmulT: x must be 2-d");
    EDKM_CHECK(xc.size(1) == in, "paletteMatmulT: inner dims ",
               xc.size(1), " vs ", in);
    // The fused kernel covers the m==1 decode with >1 output column
    // (out == 1 takes matmulStreamed's fixed-lane matvec path, whose
    // accumulation order the fused column chain does not replay).
    if (xc.size(0) != 1 || out == 1 || !paletteFusedDecodeEnabled()) {
        return paletteMatmulTStaged(xc, w);
    }
    g_fused_calls.fetch_add(1, std::memory_order_relaxed);
    kernels::PaletteDotFn fn = kernels::active().paletteDotFused;
    if (kernels::fastMathEnabled()) {
        // Explicit opt-in only: trades bit-identity for FMA throughput
        // (see kernels_fastmath.cc). Never reached by default.
        if (kernels::PaletteDotFn fast = kernels::fastMathPaletteDot()) {
            fn = fast;
        }
    }
    Tensor outT = Tensor::empty({1, out}, DType::kF32, xc.device());
    const float *px = xc.rawData<float>();
    const float *lut = w.lut.data();
    const uint8_t *packed = w.packed;
    const int bits = w.bits;
    float *po = outT.rawData<float>();
    // Chunks own disjoint output-column ranges and each column's value
    // is a self-contained sequential chain, so the split is
    // thread-count-invariant.
    runtime::parallelFor(0, out, runtime::grainFor(out, 2 * in),
                         [&](int64_t cb, int64_t ce) {
                             fn(px, in, packed, bits, lut, cb, ce - cb,
                                po + cb);
                         });
    chargeFlops(2.0 * static_cast<double>(in) *
                    static_cast<double>(out),
                xc.device());
    return outT;
}

Tensor
paletteGatherRows(const PaletteView &table, const Tensor &tokens)
{
    EDKM_CHECK(table.shape.size() == 2,
               "paletteGatherRows: table must be 2-d");
    EDKM_CHECK(tokens.dim() == 1, "paletteGatherRows: tokens must be 1-D");
    int64_t vocab = table.shape[0], dim = table.shape[1];
    int64_t n = tokens.numel();
    Tensor outT = Tensor::empty({n, dim}, DType::kF32, tokens.device());
    float *po = outT.rawData<float>();
    std::vector<uint16_t> idx(static_cast<size_t>(dim));
    for (int64_t i = 0; i < n; ++i) {
        int64_t t = tokens.flatAtInt(i);
        EDKM_CHECK(t >= 0 && t < vocab, "paletteGatherRows: token ", t,
                   " out of range [0,", vocab, ")");
        for (int64_t p = 0; p < dim; ++p) {
            idx[static_cast<size_t>(p)] = static_cast<uint16_t>(
                unpackBitsAt(table.packed, table.bits, t * dim + p));
        }
        kernels::gatherU16(table.lut.data(), idx.data(), dim,
                           po + i * dim);
    }
    return outT;
}

} // namespace edkm
