#include "core/edkm.h"

#include <algorithm>
#include <cmath>

#include "autograd/node.h"
#include "core/kmeans.h"
#include "device/device_manager.h"
#include "kernels/attention.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {

namespace {

using runtime::grainFor;
using runtime::parallelFor;
using runtime::parallelReduce;

/** Combine chunk-local double accumulators elementwise (chunk order). */
std::vector<double>
combineVec(std::vector<double> a, std::vector<double> b)
{
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] += b[i];
    }
    return a;
}

/**
 * Everything the eDKM backward needs, captured during forward. Large
 * payloads are SavedTensors (flow through the marshaling hooks); [k]-
 * sized vectors are kept plain.
 */
struct EdkmTape
{
    EdkmConfig config;
    std::shared_ptr<LearnerGroup> group;

    int64_t n = 0;       ///< number of weights
    int64_t k = 0;       ///< number of centroids
    int64_t uCount = 0;  ///< unique values (== n when uniquify off)
    float tau = 1.0f;
    Shape origShape;

    /** Retained reference to the input weights (a model parameter that
     *  stays resident anyway; used for deterministic regeneration of
     *  sharded payloads, standing in for the all-gather receive). */
    Tensor wRetained;

    // Uniquification payload (empty when uniquify off).
    SavedTensor idxSaved;     ///< u16 [n] or this rank's shard
    SavedTensor uValuesSaved; ///< f32 [U]
    SavedTensor countsSaved;  ///< f32 [U]
    bool idxSharded = false;

    struct Iter
    {
        SavedTensor table; ///< [U,k] table, or dense [n,k] (maybe shard)
        Tensor cIn;        ///< [k]
        Tensor m;          ///< [k] attention mass
        Tensor nv;         ///< [k] attention-weighted value sum
        bool tableSharded = false;
    };
    std::vector<Iter> iters;

    Tensor cFinal; ///< [k]

    int64_t savedBytes = 0; ///< logical bytes stashed via SavedTensor
};

/** scores/table for unique values @p u against centroids @p c:
 *  softmax_rows(-(u-c)^2 / tau), computed by the fused kernel in one
 *  pass (no diff/scores intermediates). */
Tensor
computeTable(const Tensor &u_col, const Tensor &c_row, float tau)
{
    return kernels::attentionTable(u_col, c_row, tau);
}

/** Gather @p table rows ([U,k]) by u16 @p idx ([n]) -> dense [n,k]
 *  (contiguity hoisted, consecutive rows memcpy-batched). */
Tensor
gatherTableRows(const Tensor &table, const Tensor &idx)
{
    return kernels::gatherTableRows(table, idx);
}

/**
 * Scatter-add 1-D @p g ([n]) into [U] buckets by u16 @p idx. Chunked:
 * each chunk scatters into a private [U] buffer; buffers merge in chunk
 * order, so the result is thread-count independent. The coarse grain
 * bounds the number of private buffers.
 */
Tensor
scatterAddByIdx(const Tensor &g, const Tensor &idx, int64_t u_count)
{
    Tensor out = Tensor::zeros({u_count}, DType::kF32, g.device());
    Tensor gc = g.isContiguous() ? g : g.contiguous();
    const float *pg = gc.rawData<float>();
    const uint16_t *pi = idx.rawData<const uint16_t>();
    float *po = out.rawData<float>();
    int64_t n = g.numel();
    std::vector<double> acc = parallelReduce<std::vector<double>>(
        0, n, runtime::coarseGrain(n, 16, 1024),
        std::vector<double>(static_cast<size_t>(u_count), 0.0),
        [&](int64_t cb, int64_t ce) {
            std::vector<double> part(static_cast<size_t>(u_count), 0.0);
            for (int64_t i = cb; i < ce; ++i) {
                part[pi[i]] += pg[i];
            }
            return part;
        },
        combineVec);
    for (int64_t r = 0; r < u_count; ++r) {
        po[r] = static_cast<float>(acc[static_cast<size_t>(r)]);
    }
    chargeFlops(static_cast<double>(n), g.device());
    return out;
}

/**
 * The whole unrolled DKM loop as one autograd node. Forward runs in
 * table space (or dense when uniquification is off); backward either
 * reconstructs the dense attention map per iteration (paper mode) or
 * stays in table space (fused mode). Gradients equal the composed dense
 * DkmLayer's up to float associativity.
 */
class EdkmClusterNode : public Node
{
  public:
    explicit EdkmClusterNode(std::shared_ptr<EdkmTape> tape)
        : Node("edkm_cluster"), tape_(std::move(tape))
    {
    }

    std::vector<Tensor>
    backward(const Tensor &grad_out) override
    {
        const EdkmTape &t = *tape_;
        Tensor g = grad_out.isContiguous()
                       ? grad_out.view({t.n})
                       : grad_out.contiguous().view({t.n});

        Tensor gw;
        if (t.config.uniquify &&
            t.config.backwardMode == EdkmConfig::BackwardMode::kFused) {
            gw = fusedBackward(g);
        } else {
            gw = denseBackward(g);
        }
        return {gw.view(t.origShape)};
    }

  private:
    /** Recover the full index list (simulated all-gather when sharded). */
    Tensor fullIndexList() const;

    /** Recover iteration @p it's dense attention map [n,k]. */
    Tensor denseMap(const EdkmTape::Iter &iter, const Tensor &idx,
                    const Tensor &w_dense) const;

    /** Table-space backward (extension; uniquify mode only). */
    Tensor fusedBackward(const Tensor &g);

    /** Dense backward with reconstruction (paper-faithful). */
    Tensor denseBackward(const Tensor &g);

    std::shared_ptr<EdkmTape> tape_;
};

Tensor
EdkmClusterNode::fullIndexList() const
{
    const EdkmTape &t = *tape_;
    EDKM_ASSERT(t.config.uniquify, "index list only exists in U mode");
    if (!t.idxSharded) {
        return t.idxSaved.unpack();
    }
    // Simulated all-gather: regenerate deterministically (identical on
    // every learner under synchronous training) and account the traffic.
    UniqueDecomposition dec = uniquify(t.wRetained, t.config.halfKind);
    if (t.group) {
        t.group->recordAllGather(t.n * 2); // u16 index list
    }
    return dec.indexList;
}

Tensor
EdkmClusterNode::denseMap(const EdkmTape::Iter &iter, const Tensor &idx,
                          const Tensor &w_dense) const
{
    const EdkmTape &t = *tape_;
    if (t.config.uniquify) {
        // gather rows of the saved table
        return gatherTableRows(iter.table.unpack(), idx);
    }
    Tensor saved = iter.table.unpack(); // dense rows (maybe a shard)
    if (!iter.tableSharded) {
        return saved;
    }
    // Regenerate the full map (simulated all-gather of the other
    // learners' row blocks) and overwrite our shard with the saved rows.
    Tensor full = computeTable(w_dense.view({t.n, 1}),
                               iter.cIn.view({1, t.k}), t.tau);
    auto [b, e] = t.group->shardRange(t.n, t.config.rank);
    copyIntoView(full.slice(0, b, e), saved);
    t.group->recordAllGather(t.n * t.k * 4);
    return full;
}

Tensor
EdkmClusterNode::denseBackward(const Tensor &g)
{
    const EdkmTape &t = *tape_;
    int64_t n = t.n, k = t.k;
    int num_iters = static_cast<int>(t.iters.size());
    float inv_tau = 1.0f / t.tau;

    // Dense weight values (bucketed when uniquification is on).
    Tensor idx;
    Tensor w_dense;
    if (t.config.uniquify) {
        idx = fullIndexList();
        Tensor u = t.uValuesSaved.unpack();
        w_dense = Tensor::empty({n}, DType::kF32, g.device());
        const float *pu = u.rawData<const float>();
        const uint16_t *pi = idx.rawData<const uint16_t>();
        float *pw = w_dense.rawData<float>();
        parallelFor(0, n, grainFor(n), [&](int64_t cb, int64_t ce) {
            kernels::gatherU16(pu, pi + cb, ce - cb, pw + cb);
        });
    } else {
        w_dense = t.wRetained.isContiguous()
                      ? t.wRetained.view({n})
                      : t.wRetained.contiguous().view({n});
        if (w_dense.dtype() != DType::kF32) {
            w_dense = w_dense.to(DType::kF32);
        }
    }
    const float *pw = w_dense.rawData<const float>();

    Tensor gw = Tensor::zeros({n}, DType::kF32, g.device());
    float *pgw = gw.rawData<float>();
    const float *pg = g.rawData<const float>();

    // Final step: W~ = A_last * c_final.
    std::vector<float> c_final = t.cFinal.toVector();
    Tensor a_last = denseMap(t.iters.back(), idx, w_dense);
    const float *pa_last = a_last.rawData<const float>();

    // gc[k]: gradient w.r.t. the centroid vector flowing backwards.
    int64_t row_grain = grainFor(n, 8 * k);
    std::vector<double> gc = parallelReduce<std::vector<double>>(
        0, n, row_grain, std::vector<double>(static_cast<size_t>(k), 0.0),
        [&](int64_t cb, int64_t ce) {
            std::vector<double> part(static_cast<size_t>(k), 0.0);
            for (int64_t i = cb; i < ce; ++i) {
                for (int64_t j = 0; j < k; ++j) {
                    part[static_cast<size_t>(j)] +=
                        static_cast<double>(pg[i]) * pa_last[i * k + j];
                }
            }
            return part;
        },
        combineVec);

    // gA carried into the per-iteration loop; only the last iteration
    // receives the member-specific term from the final matmul.
    Tensor gA = Tensor::empty({n, k}, DType::kF32, g.device());
    float *pgA = gA.rawData<float>();
    parallelFor(0, n, grainFor(n, k), [&](int64_t cb, int64_t ce) {
        for (int64_t i = cb; i < ce; ++i) {
            for (int64_t j = 0; j < k; ++j) {
                pgA[i * k + j] = pg[i] * c_final[static_cast<size_t>(j)];
            }
        }
    });

    for (int it = num_iters - 1; it >= 0; --it) {
        const EdkmTape::Iter &iter = t.iters[static_cast<size_t>(it)];
        std::vector<float> c_in = iter.cIn.toVector();
        std::vector<float> m = iter.m.toVector();
        std::vector<float> nv = iter.nv.toVector();

        // Gradients of the pooled update c' = nv / m.
        std::vector<float> gn(static_cast<size_t>(k));
        std::vector<float> gm(static_cast<size_t>(k));
        for (int64_t j = 0; j < k; ++j) {
            float mj = std::max(m[static_cast<size_t>(j)], 1e-12f);
            gn[static_cast<size_t>(j)] =
                static_cast<float>(gc[static_cast<size_t>(j)]) / mj;
            gm[static_cast<size_t>(j)] =
                -static_cast<float>(gc[static_cast<size_t>(j)]) *
                nv[static_cast<size_t>(j)] / (mj * mj);
        }

        Tensor a_t = (it == num_iters - 1)
                         ? a_last
                         : denseMap(iter, idx, w_dense);
        const float *pa = a_t.rawData<const float>();

        // Accumulate gA contributions of nv/m, then softmax backward,
        // then the squared-distance path; gc for the next (earlier)
        // iteration accumulates per chunk (rows i are disjoint).
        gc = parallelReduce<std::vector<double>>(
            0, n, row_grain,
            std::vector<double>(static_cast<size_t>(k), 0.0),
            [&](int64_t cb, int64_t ce) {
                std::vector<double> part(static_cast<size_t>(k), 0.0);
                for (int64_t i = cb; i < ce; ++i) {
                    float wi = pw[i];
                    float *grow = pgA + i * k;
                    const float *arow = pa + i * k;
                    // gA += gn w_i + gm ; direct gw from nv.
                    double dot = 0.0;
                    double gw_acc = 0.0;
                    for (int64_t j = 0; j < k; ++j) {
                        grow[j] += gn[static_cast<size_t>(j)] * wi +
                                   gm[static_cast<size_t>(j)];
                        gw_acc += static_cast<double>(arow[j]) *
                                  gn[static_cast<size_t>(j)];
                        dot += static_cast<double>(grow[j]) * arow[j];
                    }
                    // softmax backward + distance path.
                    for (int64_t j = 0; j < k; ++j) {
                        float gs = arow[j] *
                                   (grow[j] - static_cast<float>(dot));
                        float gdsq = -gs * inv_tau;
                        float d = wi - c_in[static_cast<size_t>(j)];
                        gw_acc += static_cast<double>(gdsq) * 2.0 * d;
                        part[static_cast<size_t>(j)] +=
                            static_cast<double>(gdsq) * (-2.0) * d;
                    }
                    pgw[i] += static_cast<float>(gw_acc);
                }
                return part;
            },
            combineVec);

        if (it > 0) {
            // Earlier iterations receive no member-specific gA term.
            gA.fill(0.0f);
        }
    }
    // Dense backward touches ~8 values per (weight, centroid) pair and
    // iteration.
    chargeFlops(8.0 * static_cast<double>(n) * k * num_iters,
               g.device());
    // gc[0] flows into the constant initialisation: dropped.
    return gw;
}

Tensor
EdkmClusterNode::fusedBackward(const Tensor &g)
{
    const EdkmTape &t = *tape_;
    int64_t n = t.n, k = t.k, U = t.uCount;
    int num_iters = static_cast<int>(t.iters.size());
    float inv_tau = 1.0f / t.tau;

    Tensor idx = fullIndexList();
    Tensor u_t = t.uValuesSaved.unpack();
    Tensor cnt_t = t.countsSaved.unpack();
    const float *pu = u_t.rawData<const float>();
    const float *pcnt = cnt_t.rawData<const float>();
    const uint16_t *pidx = idx.rawData<const uint16_t>();
    const float *pg = g.rawData<const float>();

    // Per-bucket sum of incoming grads: s_r = sum_{i in r} g_i.
    Tensor s_t = scatterAddByIdx(g, idx, U);
    const float *ps = s_t.rawData<const float>();

    std::vector<float> c_final = t.cFinal.toVector();

    // gwBucket: per-member gradient shared by a bucket (gathered at the
    // end); gwScale: per-bucket factor multiplied by each member's own
    // g_i (the member-specific final-step path).
    std::vector<double> gw_bucket(static_cast<size_t>(U), 0.0);
    std::vector<double> gw_scale(static_cast<size_t>(U), 0.0);
    std::vector<double> gc(static_cast<size_t>(k), 0.0);
    // Final-step distance-path contribution to grad(c_{T-1}), folded
    // into the last iteration's gc_prev below.
    std::vector<double> gc_dist_last(static_cast<size_t>(k), 0.0);

    // ---- Final step: W~ = gather(T_last, idx) @ c_final ----
    Tensor table_last = t.iters.back().table.unpack();
    const float *ptl = table_last.rawData<const float>();
    std::vector<float> c_last_in =
        t.iters.back().cIn.toVector(); // centroids T_last was built from

    // Parallel over unique rows: gw_scale[r] is disjoint; the two [k]
    // accumulators travel per chunk (packed as one 2k vector) and merge
    // in chunk order.
    int64_t bucket_grain = grainFor(U, 8 * k);
    {
        std::vector<double> packed = parallelReduce<std::vector<double>>(
            0, U, bucket_grain,
            std::vector<double>(static_cast<size_t>(2 * k), 0.0),
            [&](int64_t cb, int64_t ce) {
                std::vector<double> part(static_cast<size_t>(2 * k),
                                         0.0);
                for (int64_t r = cb; r < ce; ++r) {
                    const float *trow = ptl + r * k;
                    double rowdot = 0.0;
                    for (int64_t j = 0; j < k; ++j) {
                        rowdot += static_cast<double>(trow[j]) *
                                  c_final[static_cast<size_t>(j)];
                    }
                    double q = 0.0;
                    for (int64_t j = 0; j < k; ++j) {
                        // gc from the matmul: gc_j += s_r T_rj.
                        part[static_cast<size_t>(j)] +=
                            static_cast<double>(ps[r]) * trow[j];
                        // h = T (c - rowdot); member softmax+distance
                        // path.
                        double h = trow[j] *
                                   (c_final[static_cast<size_t>(j)] -
                                    rowdot);
                        double gdsq_unit = -h * inv_tau; // per unit g_i
                        double d =
                            pu[r] - c_last_in[static_cast<size_t>(j)];
                        q += gdsq_unit * 2.0 * d;
                        // gc_{T-1} distance path: sums over members ->
                        // s_r factor.
                        part[static_cast<size_t>(k + j)] +=
                            static_cast<double>(ps[r]) * gdsq_unit *
                            (-2.0) * d;
                    }
                    gw_scale[static_cast<size_t>(r)] += q;
                }
                return part;
            },
            combineVec);
        for (int64_t j = 0; j < k; ++j) {
            gc[static_cast<size_t>(j)] += packed[static_cast<size_t>(j)];
            gc_dist_last[static_cast<size_t>(j)] +=
                packed[static_cast<size_t>(k + j)];
        }
    }

    // ---- Per-iteration loop in table space ----
    for (int it = num_iters - 1; it >= 0; --it) {
        const EdkmTape::Iter &iter = t.iters[static_cast<size_t>(it)];
        std::vector<float> c_in = iter.cIn.toVector();
        std::vector<float> m = iter.m.toVector();
        std::vector<float> nv = iter.nv.toVector();
        Tensor table = (it == num_iters - 1)
                           ? table_last
                           : iter.table.unpack();
        const float *pt = table.rawData<const float>();

        std::vector<float> gn(static_cast<size_t>(k));
        std::vector<float> gm(static_cast<size_t>(k));
        for (int64_t j = 0; j < k; ++j) {
            float mj = std::max(m[static_cast<size_t>(j)], 1e-12f);
            gn[static_cast<size_t>(j)] =
                static_cast<float>(gc[static_cast<size_t>(j)]) / mj;
            gm[static_cast<size_t>(j)] =
                -static_cast<float>(gc[static_cast<size_t>(j)]) *
                nv[static_cast<size_t>(j)] / (mj * mj);
        }

        std::vector<double> gc_init(static_cast<size_t>(k), 0.0);
        if (it == num_iters - 1) {
            // Fold in the final step's distance-path contribution.
            gc_init = gc_dist_last;
        }

        gc = parallelReduce<std::vector<double>>(
            0, U, bucket_grain, std::move(gc_init),
            [&](int64_t cb, int64_t ce) {
                std::vector<double> part(static_cast<size_t>(k), 0.0);
                std::vector<double> ga_row(static_cast<size_t>(k));
                for (int64_t r = cb; r < ce; ++r) {
                    const float *trow = pt + r * k;
                    float ur = pu[r];
                    double rowdot = 0.0;
                    for (int64_t j = 0; j < k; ++j) {
                        double ga =
                            static_cast<double>(
                                gn[static_cast<size_t>(j)]) *
                                ur +
                            gm[static_cast<size_t>(j)];
                        ga_row[static_cast<size_t>(j)] = ga;
                        rowdot += ga * trow[j];
                    }
                    double gw_acc = 0.0;
                    for (int64_t j = 0; j < k; ++j) {
                        gw_acc += static_cast<double>(trow[j]) *
                                  gn[static_cast<size_t>(j)];
                        double gs =
                            trow[j] *
                            (ga_row[static_cast<size_t>(j)] - rowdot);
                        double gdsq = -gs * inv_tau;
                        double d = ur - c_in[static_cast<size_t>(j)];
                        gw_acc += gdsq * 2.0 * d;
                        part[static_cast<size_t>(j)] +=
                            static_cast<double>(pcnt[r]) * gdsq *
                            (-2.0) * d;
                    }
                    gw_bucket[static_cast<size_t>(r)] += gw_acc;
                }
                return part;
            },
            combineVec);
    }

    // Assemble per-member gradient.
    Tensor gw = Tensor::empty({n}, DType::kF32, g.device());
    float *pgw = gw.rawData<float>();
    parallelFor(0, n, grainFor(n, 2), [&](int64_t cb, int64_t ce) {
        for (int64_t i = cb; i < ce; ++i) {
            uint16_t r = pidx[i];
            pgw[i] =
                static_cast<float>(gw_bucket[r] + pg[i] * gw_scale[r]);
        }
    });
    // Table-space backward: ~8 ops per (unique, centroid, iteration)
    // plus the O(n) scatter/gather passes.
    chargeFlops(8.0 * static_cast<double>(U) * k * num_iters + 3.0 * n,
               g.device());
    return gw;
}

} // namespace

EdkmLayer::EdkmLayer(EdkmConfig config, std::shared_ptr<LearnerGroup> group)
    : config_(config), group_(std::move(group))
{
    EDKM_CHECK(config_.dkm.bits >= 1 && config_.dkm.bits <= 8,
               "eDKM: bits must be in [1,8]");
    if (config_.shard) {
        EDKM_CHECK(group_ != nullptr,
                   "eDKM: sharding requires a LearnerGroup");
        EDKM_CHECK(config_.rank >= 0 &&
                       config_.rank < group_->worldSize(),
                   "eDKM: bad rank");
    }
}

Variable
EdkmLayer::forward(const Variable &w)
{
    const Tensor &wd = w.data();
    EDKM_CHECK(wd.defined() && wd.numel() > 0, "eDKM: empty weight");
    int64_t n = wd.numel();
    int64_t k = 1 << config_.dkm.bits;

    bool tracking = gradModeEnabled() && w.requiresGrad();
    auto tape = std::make_shared<EdkmTape>();
    tape->config = config_;
    tape->group = group_;
    tape->n = n;
    tape->k = k;
    tape->origShape = wd.shape();
    tape->wRetained = wd;

    report_ = EdkmReport{};
    report_.denseMapBytes = n * k * 4;

    // ---- Unique decomposition (or dense values) ----
    UniqueDecomposition dec = uniquify(wd, config_.halfKind);
    std::vector<float> u_vals;
    std::vector<float> u_cnts;
    int64_t U;
    if (config_.uniquify) {
        u_vals = dec.values;
        u_cnts = dec.counts;
        U = dec.uniqueCount();
    } else {
        u_vals = wd.toVector();
        u_cnts.assign(static_cast<size_t>(n), 1.0f);
        U = n;
    }
    tape->uCount = U;
    report_.uniqueCount = config_.uniquify ? U : 0;

    // Warm start + temperature on (unique values, counts): identical to
    // DkmLayer's choice for 16-bit-bucketed inputs.
    std::vector<float> c0 =
        DkmLayer::initCentroids(dec.values, dec.counts, config_.dkm);
    tape->tau =
        DkmLayer::resolveTemperature(config_.dkm, dec.values, dec.counts);
    report_.temperatureUsed = tape->tau;

    Device dev = wd.device();
    Tensor u_col = Tensor::fromVector(u_vals, {U, 1}, dev);
    Tensor cnt_row = Tensor::fromVector(u_cnts, {1, U}, dev);
    Tensor cw_row = Tensor::empty({1, U}, DType::kF32, dev);
    {
        float *p = cw_row.rawData<float>();
        for (int64_t r = 0; r < U; ++r) {
            p[r] = u_cnts[static_cast<size_t>(r)] *
                   u_vals[static_cast<size_t>(r)];
        }
    }

    // ---- Save the shared payload ----
    auto account = [&](const Tensor &t_saved) {
        tape->savedBytes += t_saved.numel() * dtypeSize(t_saved.dtype());
    };
    if (tracking && config_.uniquify) {
        Tensor idx = dec.indexList;
        if (config_.shard) {
            auto [b, e] = group_->shardRange(n, config_.rank);
            // clone() so the saved shard owns a compact buffer instead
            // of pinning the full index list.
            idx = idx.slice(0, b, e).clone();
            tape->idxSharded = true;
        }
        tape->idxSaved = SavedTensor(idx, nullptr);
        account(idx);
        tape->uValuesSaved = SavedTensor(u_col.view({U}), nullptr);
        tape->countsSaved =
            SavedTensor(cnt_row.view({U}), nullptr);
        tape->savedBytes += 2 * U * 4;
    }

    // ---- Differentiable iterations (table space) ----
    Tensor c = Tensor::fromVector(c0, {static_cast<int64_t>(k)}, dev);
    Tensor table;
    int iters_done = 0;
    for (int it = 0; it < config_.dkm.maxIters; ++it) {
        table = computeTable(u_col, c.view({1, k}), tape->tau); // [U,k]
        Tensor m = matmul(cnt_row, table).view({k});            // [k]
        Tensor nv = matmul(cw_row, table).view({k});            // [k]
        Tensor c_new = div(nv, addScalar(m, 1e-12f));

        if (tracking) {
            EdkmTape::Iter iter;
            iter.cIn = c.clone();
            iter.m = m;
            iter.nv = nv;
            Tensor to_save = table;
            if (!config_.uniquify && config_.shard) {
                auto [b, e] = group_->shardRange(n, config_.rank);
                to_save = table.slice(0, b, e).clone();
                iter.tableSharded = true;
            }
            iter.table = SavedTensor(to_save, nullptr);
            account(to_save);
            tape->savedBytes += 3 * k * 4;
            tape->iters.push_back(std::move(iter));
        }

        float delta = maxAbsDiff(c_new, c);
        c = c_new;
        iters_done = it + 1;
        if (delta < config_.dkm.convergenceEps) {
            break;
        }
    }
    report_.iterations = iters_done;
    report_.savedBytes = tape->savedBytes;
    tape->cFinal = c.clone();
    centroids_ = c.clone();

    // ---- W~ = gather(T_last, idx-or-identity) @ c_final ----
    Tensor w_unique = matmul(table, c.view({k, 1})).view({U}); // [U]
    Tensor out;
    if (config_.uniquify) {
        out = Tensor::empty({n}, DType::kF32, dev);
        const float *pwu = w_unique.rawData<const float>();
        const uint16_t *pi = dec.indexList.rawData<const uint16_t>();
        float *po = out.rawData<float>();
        parallelFor(0, n, grainFor(n, 2), [&](int64_t cb, int64_t ce) {
            kernels::gatherU16(pwu, pi + cb, ce - cb, po + cb);
        });
    } else {
        out = w_unique;
    }
    out = out.view(tape->origShape);

    if (!tracking) {
        return Variable(std::move(out), false);
    }
    return makeResult(std::move(out), {w}, [&] {
        return std::make_shared<EdkmClusterNode>(tape);
    });
}

PalettizedTensor
EdkmLayer::palettize(const Tensor &w) const
{
    EDKM_CHECK(centroids_.defined(), "palettize: call forward() first");
    std::vector<float> lut = centroids_.toVector();
    std::sort(lut.begin(), lut.end());
    std::vector<float> values = w.toVector();
    std::vector<int32_t> assign(values.size());
    kernels::assignNearest(lut, values.data(),
                           static_cast<int64_t>(values.size()),
                           assign.data());
    return PalettizedTensor::fromAssignments(w.shape(), lut, assign,
                                             config_.dkm.bits);
}

} // namespace edkm
