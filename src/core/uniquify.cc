#include "core/uniquify.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "device/device_manager.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {

namespace {

/** Patterns seen by one chunk, in chunk-local first-seen order. */
struct ChunkSeen
{
    std::vector<uint16_t> order;  ///< patterns, first-seen order
    std::vector<int64_t> count;   ///< multiplicity, parallel to order
};

constexpr int32_t kNumPatterns = 1 << 16;

} // namespace

UniqueDecomposition
uniquify(const Tensor &w, HalfKind kind)
{
    EDKM_CHECK(w.defined(), "uniquify: undefined tensor");
    UniqueDecomposition out;
    out.halfKind = kind;
    out.numel = w.numel();
    out.indexList = Tensor::empty({w.numel()}, DType::kU16, w.device());

    uint16_t *idx = out.indexList.rawData<uint16_t>();
    int64_t n = w.numel();
    bool fast = w.isContiguous() && w.dtype() == DType::kF32;
    const float *pw = fast ? w.rawData<float>() : nullptr;

    // Phase 1: bucket every element to its 16-bit pattern (parallel,
    // disjoint writes).
    std::vector<uint16_t> bits(static_cast<size_t>(n));
    runtime::parallelFor(
        0, n, runtime::grainFor(n, 2), [&](int64_t cb, int64_t ce) {
            for (int64_t i = cb; i < ce; ++i) {
                float v = fast ? pw[i] : w.flatAt(i);
                bits[static_cast<size_t>(i)] = floatToHalfBits(v, kind);
            }
        });

    // Phase 2: per-chunk direct-mapped 2^16 tables record each chunk's
    // patterns in local first-seen order. The coarse grain (depends on
    // n only — determinism) bounds the table footprint to <= 16 chunks.
    int64_t grain = runtime::coarseGrain(n, 16, int64_t(1) << 14);
    int64_t nchunks = runtime::chunkCount(0, n, grain);
    std::vector<ChunkSeen> seen(static_cast<size_t>(
        std::max<int64_t>(nchunks, 0)));
    runtime::parallelForChunks(
        0, n, grain, [&](int64_t ci, int64_t cb, int64_t ce) {
            std::vector<int32_t> row_of(kNumPatterns, -1);
            ChunkSeen &s = seen[static_cast<size_t>(ci)];
            for (int64_t i = cb; i < ce; ++i) {
                uint16_t p = bits[static_cast<size_t>(i)];
                int32_t &row = row_of[p];
                if (row < 0) {
                    row = static_cast<int32_t>(s.order.size());
                    s.order.push_back(p);
                    s.count.push_back(0);
                }
                ++s.count[static_cast<size_t>(row)];
            }
        });

    // Phase 3: merge chunk tables *in chunk order*, reproducing the
    // global first-seen order of the serial scan exactly.
    std::vector<int32_t> row_of_pattern(kNumPatterns, -1);
    for (const ChunkSeen &s : seen) {
        for (size_t t = 0; t < s.order.size(); ++t) {
            uint16_t p = s.order[t];
            int32_t &row = row_of_pattern[p];
            if (row < 0) {
                row = static_cast<int32_t>(out.values.size());
                out.values.push_back(halfBitsToFloat(p, kind));
                out.counts.push_back(0.0f);
            }
            out.counts[static_cast<size_t>(row)] +=
                static_cast<float>(s.count[t]);
        }
    }

    // Phase 4: fill the index list (parallel, disjoint writes).
    runtime::parallelFor(
        0, n, runtime::grainFor(n, 2), [&](int64_t cb, int64_t ce) {
            for (int64_t i = cb; i < ce; ++i) {
                idx[i] = static_cast<uint16_t>(
                    row_of_pattern[bits[static_cast<size_t>(i)]]);
            }
        });

    // One bucketing pass: ~3 ops per element (convert, lookup, count).
    DeviceManager &mgr = DeviceManager::instance();
    mgr.recordComputeSeconds(
        mgr.costModel().computeSeconds(3.0 * n, w.device()));
    return out;
}

Tensor
UniqueDecomposition::reconstruct(Device dev) const
{
    Tensor out = Tensor::empty({numel}, DType::kF32, dev);
    float *po = out.rawData<float>();
    const uint16_t *idx = indexList.rawData<const uint16_t>();
    for (int64_t i = 0; i < numel; ++i) {
        po[i] = values[idx[i]];
    }
    return out;
}

double
UniqueDecomposition::mapCompressionRatio(int64_t num_centroids) const
{
    double dense = static_cast<double>(numel) * num_centroids * 4.0;
    double packed = static_cast<double>(uniqueCount()) * num_centroids *
                        4.0 +           // attention table (f32)
                    numel * 2.0;        // index list (u16)
    return dense / packed;
}

} // namespace edkm
