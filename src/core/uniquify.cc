#include "core/uniquify.h"

#include <array>

#include "device/device_manager.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {

UniqueDecomposition
uniquify(const Tensor &w, HalfKind kind)
{
    EDKM_CHECK(w.defined(), "uniquify: undefined tensor");
    UniqueDecomposition out;
    out.halfKind = kind;
    out.numel = w.numel();
    out.indexList = Tensor::empty({w.numel()}, DType::kU16, w.device());

    // Direct-mapped table over all 2^16 patterns: row id per pattern,
    // -1 = unseen. One pass, O(n).
    std::array<int32_t, 65536> row_of_pattern;
    row_of_pattern.fill(-1);

    uint16_t *idx = out.indexList.rawData<uint16_t>();
    int64_t n = w.numel();
    bool fast = w.isContiguous() && w.dtype() == DType::kF32;
    const float *pw = fast ? w.rawData<float>() : nullptr;
    for (int64_t i = 0; i < n; ++i) {
        float v = fast ? pw[i] : w.flatAt(i);
        uint16_t bits = floatToHalfBits(v, kind);
        int32_t &row = row_of_pattern[bits];
        if (row < 0) {
            row = static_cast<int32_t>(out.values.size());
            out.values.push_back(halfBitsToFloat(bits, kind));
            out.counts.push_back(0.0f);
        }
        out.counts[static_cast<size_t>(row)] += 1.0f;
        idx[i] = static_cast<uint16_t>(row);
    }
    // One bucketing pass: ~3 ops per element (convert, lookup, count).
    DeviceManager &mgr = DeviceManager::instance();
    mgr.recordComputeSeconds(
        mgr.costModel().computeSeconds(3.0 * n, w.device()));
    return out;
}

Tensor
UniqueDecomposition::reconstruct(Device dev) const
{
    Tensor out = Tensor::empty({numel}, DType::kF32, dev);
    float *po = out.rawData<float>();
    const uint16_t *idx = indexList.rawData<const uint16_t>();
    for (int64_t i = 0; i < numel; ++i) {
        po[i] = values[idx[i]];
    }
    return out;
}

double
UniqueDecomposition::mapCompressionRatio(int64_t num_centroids) const
{
    double dense = static_cast<double>(numel) * num_centroids * 4.0;
    double packed = static_cast<double>(uniqueCount()) * num_centroids *
                        4.0 +           // attention table (f32)
                    numel * 2.0;        // index list (u16)
    return dense / packed;
}

} // namespace edkm
