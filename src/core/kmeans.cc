#include "core/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "util/logging.h"

namespace edkm {

namespace {

/** Per-chunk accumulator of the Lloyd update (sum and mass per
 *  centroid). Combined in chunk order for determinism. */
struct LloydAcc
{
    std::vector<double> sum;
    std::vector<double> mass;
};

LloydAcc
combineLloyd(LloydAcc a, LloydAcc b)
{
    for (size_t c = 0; c < a.sum.size(); ++c) {
        a.sum[c] += b.sum[c];
        a.mass[c] += b.mass[c];
    }
    return a;
}

} // namespace

int32_t
nearestCentroid(const std::vector<float> &centroids, float v)
{
    // Centroids are kept sorted: binary search then compare neighbours.
    auto it = std::lower_bound(centroids.begin(), centroids.end(), v);
    size_t hi = static_cast<size_t>(it - centroids.begin());
    if (hi == 0) {
        return 0;
    }
    if (hi == centroids.size()) {
        return static_cast<int32_t>(centroids.size() - 1);
    }
    float dlo = v - centroids[hi - 1];
    float dhi = centroids[hi] - v;
    return static_cast<int32_t>(dlo <= dhi ? hi - 1 : hi);
}

KMeansResult
kmeans1d(const std::vector<float> &values,
         const std::vector<float> &weights, int k, Rng &rng, int max_iters,
         double tol)
{
    EDKM_CHECK(k >= 1, "kmeans1d: k must be >= 1");
    EDKM_CHECK(!values.empty(), "kmeans1d: empty input");
    EDKM_CHECK(weights.empty() || weights.size() == values.size(),
               "kmeans1d: weight count mismatch");

    size_t n = values.size();
    auto weight_at = [&](size_t i) {
        return weights.empty() ? 1.0f : weights[i];
    };

    // kmeans++ seeding.
    std::vector<float> centroids;
    centroids.reserve(static_cast<size_t>(k));
    {
        std::vector<double> probs(n);
        for (size_t i = 0; i < n; ++i) {
            probs[i] = weight_at(i);
        }
        centroids.push_back(values[rng.categorical(probs)]);
        std::vector<double> d2(n);
        while (centroids.size() < static_cast<size_t>(k)) {
            // Chunked: fill d2 (disjoint) and sum partials in order.
            double total = runtime::parallelReduce<double>(
                0, static_cast<int64_t>(n),
                runtime::grainFor(static_cast<int64_t>(n),
                                  static_cast<int64_t>(centroids.size())),
                0.0,
                [&](int64_t cb, int64_t ce) {
                    double part = 0.0;
                    for (int64_t ii = cb; ii < ce; ++ii) {
                        size_t i = static_cast<size_t>(ii);
                        double best =
                            std::numeric_limits<double>::max();
                        for (float c : centroids) {
                            double d =
                                static_cast<double>(values[i]) - c;
                            best = std::min(best, d * d);
                        }
                        d2[i] = best * weight_at(i);
                        part += d2[i];
                    }
                    return part;
                },
                [](double x, double y) { return x + y; });
            if (total <= 0.0) {
                // All points coincide with centroids: pad with extremes.
                centroids.push_back(
                    *std::max_element(values.begin(), values.end()));
                continue;
            }
            centroids.push_back(values[rng.categorical(d2)]);
        }
        std::sort(centroids.begin(), centroids.end());
    }

    // Lloyd iterations.
    KMeansResult result;
    result.assignments.resize(n);
    std::vector<double> sum(static_cast<size_t>(k));
    std::vector<double> mass(static_cast<size_t>(k));
    int64_t assign_grain =
        runtime::grainFor(static_cast<int64_t>(n), 8);
    for (int iter = 0; iter < max_iters; ++iter) {
        LloydAcc zero{std::vector<double>(static_cast<size_t>(k), 0.0),
                      std::vector<double>(static_cast<size_t>(k), 0.0)};
        LloydAcc acc = runtime::parallelReduce<LloydAcc>(
            0, static_cast<int64_t>(n), assign_grain, std::move(zero),
            [&](int64_t cb, int64_t ce) {
                // Fused distance+argmin over the chunk (bit-compatible
                // with the binary-search nearestCentroid), then the
                // Lloyd accumulation off the written assignments.
                kernels::active().nearestRows(
                    values.data() + cb, ce - cb, centroids.data(),
                    static_cast<int64_t>(centroids.size()),
                    result.assignments.data() + cb);
                LloydAcc part{
                    std::vector<double>(static_cast<size_t>(k), 0.0),
                    std::vector<double>(static_cast<size_t>(k), 0.0)};
                for (int64_t ii = cb; ii < ce; ++ii) {
                    size_t i = static_cast<size_t>(ii);
                    int32_t a = result.assignments[i];
                    part.sum[static_cast<size_t>(a)] +=
                        static_cast<double>(values[i]) * weight_at(i);
                    part.mass[static_cast<size_t>(a)] += weight_at(i);
                }
                return part;
            },
            combineLloyd);
        sum = std::move(acc.sum);
        mass = std::move(acc.mass);
        double max_move = 0.0;
        for (int c = 0; c < k; ++c) {
            if (mass[static_cast<size_t>(c)] <= 0.0) {
                continue; // empty cluster: keep previous position
            }
            float next = static_cast<float>(sum[static_cast<size_t>(c)] /
                                            mass[static_cast<size_t>(c)]);
            max_move = std::max(
                max_move,
                std::fabs(static_cast<double>(next) -
                          centroids[static_cast<size_t>(c)]));
            centroids[static_cast<size_t>(c)] = next;
        }
        std::sort(centroids.begin(), centroids.end());
        result.iterations = iter + 1;
        if (max_move < tol) {
            break;
        }
    }

    // Final assignment + inertia (chunked, combined in order).
    result.inertia = runtime::parallelReduce<double>(
        0, static_cast<int64_t>(n), assign_grain, 0.0,
        [&](int64_t cb, int64_t ce) {
            kernels::active().nearestRows(
                values.data() + cb, ce - cb, centroids.data(),
                static_cast<int64_t>(centroids.size()),
                result.assignments.data() + cb);
            double part = 0.0;
            for (int64_t ii = cb; ii < ce; ++ii) {
                size_t i = static_cast<size_t>(ii);
                int32_t a = result.assignments[i];
                double d = static_cast<double>(values[i]) -
                           centroids[static_cast<size_t>(a)];
                part += d * d * weight_at(i);
            }
            return part;
        },
        [](double x, double y) { return x + y; });
    result.centroids = std::move(centroids);
    return result;
}

} // namespace edkm
