/**
 * @file
 * Palettized (weight-clustered) tensor format.
 *
 * The deployable artifact of weight clustering: a lookup table of
 * centroids plus a bitstream of n-bit indices, the format consumed by
 * mobile inference accelerators (the paper cites Core ML's training-time
 * palettization). Includes (de)serialisation so compressed models can be
 * written to disk and reloaded for inference.
 */

#ifndef EDKM_CORE_PALETTIZE_H_
#define EDKM_CORE_PALETTIZE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernels/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace edkm {

/** Pack @p values (each < 2^bits) into a dense little-endian bitstream. */
std::vector<uint8_t> packBits(const std::vector<int32_t> &values, int bits);

/** Inverse of packBits for @p n values. */
std::vector<int32_t> unpackBits(const std::vector<uint8_t> &stream,
                                int bits, int64_t n);

/**
 * Random-access read of the @p i-th @p bits-wide value of a packBits
 * stream. Touches only the bytes holding the value, so it is safe up to
 * the last element of a minimally-sized stream. (The implementation
 * lives in kernels/kernels.h so the fused palette-decode kernels can
 * use it without a core/ dependency; this re-export keeps the historic
 * edkm:: spelling.)
 */
using kernels::unpackBitsAt;

/**
 * A weight tensor compressed to `bits` per weight via clustering:
 * lookup table (stored in FP16, as deployed) + packed index bitstream.
 */
class PalettizedTensor
{
  public:
    PalettizedTensor() = default;

    /**
     * Hard-cluster @p w to 2^bits centroids with k-means and palettize.
     */
    static PalettizedTensor fromDense(const Tensor &w, int bits, Rng &rng,
                                      int kmeans_iters = 25);

    /**
     * Palettize with externally computed clustering (e.g. DKM/eDKM
     * centroids and assignments).
     */
    static PalettizedTensor fromAssignments(
        Shape shape, const std::vector<float> &lut,
        const std::vector<int32_t> &assignments, int bits);

    /** Reconstruct the dense tensor on @p dev. */
    Tensor decompress(Device dev = Device::cpu()) const;

    int bits() const { return bits_; }
    const Shape &shape() const { return shape_; }
    int64_t numel() const;
    const std::vector<float> &lut() const { return lut_; }

    /** Packed n-bit index bitstream (row-major element order). */
    const std::vector<uint8_t> &packed() const { return packed_; }

    /** Serialized size: packed indices + FP16 LUT + header. */
    int64_t payloadBytes() const;

    /** Effective bits per weight including LUT overhead. */
    double bitsPerWeight() const;

    /** Binary serialisation (stable little-endian format). */
    std::vector<uint8_t> serialize() const;
    static PalettizedTensor deserialize(const std::vector<uint8_t> &bytes);

    /** File convenience wrappers around (de)serialize. */
    void save(const std::string &path) const;
    static PalettizedTensor load(const std::string &path);

  private:
    Shape shape_;
    int bits_ = 0;
    std::vector<float> lut_;       ///< 2^bits centroids (f32 mirror)
    std::vector<uint8_t> packed_;  ///< n-bit index bitstream
};

/**
 * Non-owning view of a palettized weight: the decoded f32 LUT (2^bits
 * floats, tiny) plus a borrowed pointer to the packed index bitstream —
 * typically a payload section of an mmap-ed model artifact. @p owner
 * pins the backing memory; serving consumes the view directly through
 * paletteMatmulT / paletteGatherRows without ever decoding the dense
 * tensor.
 */
struct PaletteView
{
    Shape shape;
    int bits = 0;
    std::vector<float> lut;            ///< f32 mirror of the FP16 LUT
    const uint8_t *packed = nullptr;   ///< packBits stream, borrowed
    int64_t packedBytes = 0;
    std::shared_ptr<const void> owner; ///< keep-alive for @p packed
};

/**
 * Parse a PalettizedTensor::serialize payload into a view: header and
 * LUT are decoded (validated like deserialize), the index bitstream is
 * borrowed from @p bytes in place. @p owner is stored in the view.
 */
PaletteView parsePaletteView(const uint8_t *bytes, size_t size,
                             std::shared_ptr<const void> owner);

/** View over an owned PalettizedTensor (@p p must outlive the view). */
PaletteView viewOf(const PalettizedTensor &p);

/**
 * y = x · W^T with W in LUT+index form: bit-identical to
 * matmul(x, transpose(decompress())) while the dense weight is never
 * materialised.
 *
 * Two internal paths, bit-identical to each other by construction:
 *   - m == 1 (the serving decode hot path, more than one output
 *     column): the *fused* kernel — packed indices -> LUT gathers ->
 *     multiply-accumulate straight into the output, no staging buffer
 *     (kernels::KernelTable::paletteDotFused, parallel over disjoint
 *     output-column ranges).
 *   - everything else (prefill, batched decode, single-output), or
 *     when the fused path is disabled: the staged path — index tiles
 *     decoded through gatherU16 and streamed through matmulStreamed.
 */
Tensor paletteMatmulT(const Tensor &x, const PaletteView &w);

/** The always-staged reference path (decode tiles, then accumulate);
 *  what paletteMatmulT uses outside the fused m==1 case. Exposed so
 *  tests and benches can A/B the two in one process. */
Tensor paletteMatmulTStaged(const Tensor &x, const PaletteView &w);

/** Programmatic switch for the fused m==1 decode path. Defaults to on
 *  unless EDKM_FUSED_DECODE=off|0|false|staged is set at startup. Both
 *  paths are bit-identical (ctest-gated), so this is an A/B and escape
 *  hatch, never a numerics knob. */
void setPaletteFusedDecode(bool on);
bool paletteFusedDecodeEnabled();

/** Process-wide count of decodes served by the fused kernel (bench and
 *  stats observability; serve::EngineStats::fusedDecodes is derived
 *  from deltas of this). */
int64_t paletteFusedCalls();

/**
 * Embedding lookup from a palettized [vocab, dim] table: out[i, :] is
 * row tokens[i], decoded LUT-value-for-value — bit-identical to
 * gatherRows(decompress(), tokens) without the dense table.
 */
Tensor paletteGatherRows(const PaletteView &table, const Tensor &tokens);

} // namespace edkm

#endif // EDKM_CORE_PALETTIZE_H_
