/**
 * @file
 * Palettized (weight-clustered) tensor format.
 *
 * The deployable artifact of weight clustering: a lookup table of
 * centroids plus a bitstream of n-bit indices, the format consumed by
 * mobile inference accelerators (the paper cites Core ML's training-time
 * palettization). Includes (de)serialisation so compressed models can be
 * written to disk and reloaded for inference.
 */

#ifndef EDKM_CORE_PALETTIZE_H_
#define EDKM_CORE_PALETTIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace edkm {

/** Pack @p values (each < 2^bits) into a dense little-endian bitstream. */
std::vector<uint8_t> packBits(const std::vector<int32_t> &values, int bits);

/** Inverse of packBits for @p n values. */
std::vector<int32_t> unpackBits(const std::vector<uint8_t> &stream,
                                int bits, int64_t n);

/**
 * A weight tensor compressed to `bits` per weight via clustering:
 * lookup table (stored in FP16, as deployed) + packed index bitstream.
 */
class PalettizedTensor
{
  public:
    PalettizedTensor() = default;

    /**
     * Hard-cluster @p w to 2^bits centroids with k-means and palettize.
     */
    static PalettizedTensor fromDense(const Tensor &w, int bits, Rng &rng,
                                      int kmeans_iters = 25);

    /**
     * Palettize with externally computed clustering (e.g. DKM/eDKM
     * centroids and assignments).
     */
    static PalettizedTensor fromAssignments(
        Shape shape, const std::vector<float> &lut,
        const std::vector<int32_t> &assignments, int bits);

    /** Reconstruct the dense tensor on @p dev. */
    Tensor decompress(Device dev = Device::cpu()) const;

    int bits() const { return bits_; }
    const Shape &shape() const { return shape_; }
    int64_t numel() const;
    const std::vector<float> &lut() const { return lut_; }

    /** Serialized size: packed indices + FP16 LUT + header. */
    int64_t payloadBytes() const;

    /** Effective bits per weight including LUT overhead. */
    double bitsPerWeight() const;

    /** Binary serialisation (stable little-endian format). */
    std::vector<uint8_t> serialize() const;
    static PalettizedTensor deserialize(const std::vector<uint8_t> &bytes);

    /** File convenience wrappers around (de)serialize. */
    void save(const std::string &path) const;
    static PalettizedTensor load(const std::string &path);

  private:
    Shape shape_;
    int bits_ = 0;
    std::vector<float> lut_;       ///< 2^bits centroids (f32 mirror)
    std::vector<uint8_t> packed_;  ///< n-bit index bitstream
};

} // namespace edkm

#endif // EDKM_CORE_PALETTIZE_H_
