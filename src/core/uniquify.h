/**
 * @file
 * Weight uniquification (paper section 2.2).
 *
 * 16-bit weights (BF16/FP16) can take at most 2^16 distinct bit patterns,
 * so the |W| x |C| attention map factorises losslessly into an *attention
 * table* with one row per unique pattern (O(|C|) memory, at most 65,536
 * rows) and an *index list* mapping each weight to its table row
 * (O(|W|), 16-bit entries). This module builds that decomposition.
 */

#ifndef EDKM_CORE_UNIQUIFY_H_
#define EDKM_CORE_UNIQUIFY_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/half.h"

namespace edkm {

/**
 * The unique-value decomposition of a weight tensor under a 16-bit
 * bucketing. reconstruct() is exact for weights already representable in
 * the chosen 16-bit format (the LLM fine-tuning case).
 */
struct UniqueDecomposition
{
    /** Unique values (decoded to f32), in first-seen order. */
    std::vector<float> values;

    /** Multiplicity of each unique value. */
    std::vector<float> counts;

    /** Row index per original element (kU16 tensor of @ref numel). */
    Tensor indexList;

    /** Bucketing precision used. */
    HalfKind halfKind = HalfKind::kBf16;

    /** Total number of original elements. */
    int64_t numel = 0;

    int64_t
    uniqueCount() const
    {
        return static_cast<int64_t>(values.size());
    }

    /** Gather back the (bucketed) dense values as a 1-D f32 tensor. */
    Tensor reconstruct(Device dev = Device::cpu()) const;

    /** Compression ratio of table+index vs a dense |W|x|C| f32 map. */
    double mapCompressionRatio(int64_t num_centroids) const;
};

/**
 * Decompose @p w (any shape, any float dtype) by bucketing every element
 * to its 16-bit @p kind pattern.
 */
UniqueDecomposition uniquify(const Tensor &w, HalfKind kind);

} // namespace edkm

#endif // EDKM_CORE_UNIQUIFY_H_
