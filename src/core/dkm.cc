#include "core/dkm.h"

#include <algorithm>
#include <cmath>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "autograd/node.h"
#include "core/kmeans.h"
#include "kernels/attention.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {

namespace {

/**
 * Pairwise absolute distance |a_i - b_j| for column vectors a [n,1],
 * b [k,1]. Mirrors torch.cdist for 1-d points: saves both inputs and its
 * output for backward (the original DKM computes cdist(W,C)**2, so the
 * downstream square re-saves this node's output — the duplicate the
 * marshaling layer detects at 0 hops).
 */
class Cdist1dNode : public Node
{
  public:
    Cdist1dNode(const Variable &a, const Variable &b)
        : Node("cdist"), a_(save(a)), b_(save(b))
    {
    }

    void
    postBuild(const Variable &out) override
    {
        out_ = save(out);
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor a = a_.unpack();   // [n,1]
        Tensor b = b_.unpack();   // [k,1]
        Tensor d = out_.unpack(); // [n,k]
        int64_t n = a.size(0), k = b.size(0);
        Tensor ga = Tensor::zeros({n, 1}, DType::kF32, g.device());
        Tensor gb = Tensor::zeros({k, 1}, DType::kF32, g.device());
        const float *pa = a.isContiguous() ? a.rawData<float>() : nullptr;
        Tensor gc = g.isContiguous() ? g : g.contiguous();
        Tensor dc = d.isContiguous() ? d : d.contiguous();
        const float *pg = gc.rawData<float>();
        const float *pd = dc.rawData<float>();
        float *pga = ga.rawData<float>();
        float *pgb = gb.rawData<float>();
        std::vector<float> bv = b.toVector();
        // ga rows are disjoint per chunk; gb is accumulated per chunk
        // and combined in chunk order (deterministic).
        std::vector<float> gb_acc = runtime::parallelReduce<
            std::vector<float>>(
            0, n, runtime::grainFor(n, 4 * k),
            std::vector<float>(static_cast<size_t>(k), 0.0f),
            [&](int64_t cb, int64_t ce) {
                std::vector<float> part(static_cast<size_t>(k), 0.0f);
                for (int64_t i = cb; i < ce; ++i) {
                    float av = pa ? pa[i] : a.flatAt(i);
                    for (int64_t j = 0; j < k; ++j) {
                        float dist = pd[i * k + j];
                        if (dist == 0.0f) {
                            continue; // subgradient 0 at the kink
                        }
                        float s =
                            (av - bv[static_cast<size_t>(j)]) / dist;
                        float gij = pg[i * k + j];
                        pga[i] += gij * s;
                        part[static_cast<size_t>(j)] -= gij * s;
                    }
                }
                return part;
            },
            [](std::vector<float> x, std::vector<float> y) {
                for (size_t j = 0; j < x.size(); ++j) {
                    x[j] += y[j];
                }
                return x;
            });
        for (int64_t j = 0; j < k; ++j) {
            pgb[j] = gb_acc[static_cast<size_t>(j)];
        }
        return {ga, gb};
    }

  private:
    SavedTensor a_, b_, out_;
};

Variable
cdist1d(const Variable &a, const Variable &b)
{
    Tensor ad = a.data(), bd = b.data();
    EDKM_CHECK(ad.dim() == 2 && ad.size(1) == 1 && bd.dim() == 2 &&
                   bd.size(1) == 1,
               "cdist1d: expects [n,1] and [k,1]");
    // |a_i - b_j| dense kernel (vectorized rows). toF32Contig also
    // converts non-f32 storage before the raw-pointer reads below.
    int64_t n = ad.size(0), k = bd.size(0);
    Tensor out = Tensor::empty({n, k}, DType::kF32, ad.device());
    Tensor ac = toF32Contig(ad);
    Tensor bc = toF32Contig(bd);
    const float *pa = ac.rawData<float>();
    const float *pb = bc.rawData<float>();
    float *po = out.rawData<float>();
    const kernels::KernelTable &kt = kernels::active();
    runtime::parallelFor(0, n, runtime::grainFor(n, k),
                         [&](int64_t cb, int64_t ce) {
                             kt.absDiffRows(pa + cb, ce - cb, pb, k,
                                            po + cb * k);
                         });
    return makeResult(std::move(out), {a, b}, [&] {
        return std::make_shared<Cdist1dNode>(a, b);
    });
}

} // namespace

DkmLayer::DkmLayer(DkmConfig config, std::shared_ptr<LearnerGroup> group)
    : config_(config), group_(std::move(group))
{
    EDKM_CHECK(config_.bits >= 1 && config_.bits <= 8,
               "DKM: bits must be in [1,8]");
    EDKM_CHECK(config_.maxIters >= 1, "DKM: maxIters must be >= 1");
}

std::vector<float>
DkmLayer::initCentroids(const std::vector<float> &values,
                        const std::vector<float> &counts,
                        const DkmConfig &config)
{
    Rng rng(config.seed);
    KMeansResult km = kmeans1d(values, counts, 1 << config.bits, rng,
                               config.initLloydIters);
    return km.centroids;
}

float
DkmLayer::resolveTemperature(const DkmConfig &config,
                             const std::vector<float> &values,
                             const std::vector<float> &counts)
{
    if (config.temperature > 0.0f) {
        return config.temperature;
    }
    // Variance heuristic: tau = 2 var / k^2 separates adjacent clusters
    // of a roughly uniform spread into near-hard assignments.
    double mass = 0.0, mean = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        double c = counts.empty() ? 1.0 : counts[i];
        mass += c;
        mean += c * values[i];
    }
    mean /= std::max(mass, 1.0);
    double var = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        double c = counts.empty() ? 1.0 : counts[i];
        double d = values[i] - mean;
        var += c * d * d;
    }
    var /= std::max(mass, 1.0);
    double k = static_cast<double>(1 << config.bits);
    return static_cast<float>(std::max(2.0 * var / (k * k), 1e-12));
}

Variable
DkmLayer::forward(const Variable &w)
{
    const Tensor &wd = w.data();
    EDKM_CHECK(wd.defined() && wd.numel() > 0, "DKM: empty weight");
    int64_t n = wd.numel();
    int64_t k = 1 << config_.bits;
    Shape orig_shape = wd.shape();

    // Warm start + temperature (non-differentiable, on host data).
    std::vector<float> values = wd.toVector();
    std::vector<float> init = initCentroids(values, {}, config_);
    temperature_used_ = resolveTemperature(config_, values, {});
    float inv_tau = -1.0f / temperature_used_;

    // Inference fast path: no autograd graph to build, so the attention
    // map comes from the fused kernel (one pass, no intermediates). The
    // pooling update uses the same tensor ops as the composed chain
    // below, and the fused table reproduces the composed chain's result
    // exactly — both paths return bit-identical clustered weights.
    if (!(gradModeEnabled() && w.requiresGrad())) {
        Tensor w1t =
            (wd.isContiguous() ? wd : wd.contiguous()).view({n, 1});
        Tensor c = Tensor::fromVector(init, {k, 1}, wd.device());
        Tensor attention;
        last_iters_ = 0;
        for (int iter = 0; iter < config_.maxIters; ++iter) {
            attention =
                kernels::attentionTable(w1t, c, temperature_used_);
            Tensor numer = matmul(attention.transpose(0, 1), w1t);
            Tensor denom = sumDim(attention, 0, false).unsqueeze(1);
            Tensor c_new = div(numer, addScalar(denom, 1e-12f));
            float delta = maxAbsDiff(c_new, c);
            c = c_new;
            last_iters_ = iter + 1;
            if (delta < config_.convergenceEps) {
                break;
            }
        }
        centroids_ = c.clone().view({k});
        Tensor clustered = matmul(attention, c);
        return Variable(clustered.view(orig_shape), false);
    }

    Variable w1 = af::view(af::contiguous(w), {n, 1});
    Variable c = af::constant(
        Tensor::fromVector(init, {k, 1}, wd.device()));

    Variable attention; // A of the last executed iteration
    last_iters_ = 0;
    for (int iter = 0; iter < config_.maxIters; ++iter) {
        // dist -> squared dist -> scaled scores -> attention map.
        Variable dist = cdist1d(w1, c);
        Variable dist_sq = af::square(dist);
        Variable scores = af::mulScalar(dist_sq, inv_tau);
        attention = af::softmaxLastDim(scores); // [n,k]

        // Attention-pooled centroid update.
        Variable at = af::transpose(attention, 0, 1); // view of A
        Variable numer = af::matmul(at, w1);          // [k,1]
        Variable denom =
            af::unsqueeze(af::sumDim(attention, 0, false), 1); // [k,1]
        Variable c_new = af::div(numer, af::addScalar(denom, 1e-12f));

        if (group_ && group_->worldSize() > 1) {
            // Sharded save: each learner would keep only its row block
            // of this iteration's [n,k] map and all-gather the rest
            // for backward.
            group_->recordAllGather(n * k * 4);
        }

        float delta;
        {
            NoGradGuard ng;
            delta = maxAbsDiff(c_new.data(), c.data());
        }
        c = c_new;
        last_iters_ = iter + 1;
        if (delta < config_.convergenceEps) {
            break;
        }
    }

    centroids_ = c.data().clone().view({k});

    // W~ = A * C with the final centroids (A is re-saved by this matmul;
    // the marshaling layer resolves it to the softmax's existing copy).
    Variable clustered = af::matmul(attention, c);
    return af::view(clustered, orig_shape);
}

PalettizedTensor
DkmLayer::palettize(const Tensor &w) const
{
    EDKM_CHECK(centroids_.defined(),
               "palettize: call forward() first");
    std::vector<float> lut = centroids_.toVector();
    std::sort(lut.begin(), lut.end()); // nearestCentroid needs order
    std::vector<float> values = w.toVector();
    std::vector<int32_t> assign(values.size());
    kernels::assignNearest(lut, values.data(),
                           static_cast<int64_t>(values.size()),
                           assign.data());
    return PalettizedTensor::fromAssignments(w.shape(), lut, assign,
                                             config_.bits);
}

} // namespace edkm
