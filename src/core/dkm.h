/**
 * @file
 * DKM: differentiable k-means clustering layer (Cho et al., ICLR 2022) —
 * the dense reference implementation that eDKM optimises.
 *
 * The layer softly clusters a weight tensor around 2^bits centroids by
 * iterating
 *
 *     A   = softmax_rows( -|w_i - c_j|^2 / tau )     (attention map)
 *     c_j = (sum_i A_ij w_i) / (sum_i A_ij)          (attention pooling)
 *
 * until the centroids stop moving, then emits W~ = A * C. The whole loop
 * is built from differentiable ops, so gradients flow from W~ back to W
 * through every iteration — and every iteration's attention map is saved
 * for backward, giving the O(|W| * |C| * iters) memory complexity that
 * motivates eDKM (the map alone needs ~224 GB for LLaMA-7B at 4 bits).
 *
 * The forward graph mirrors the original PyTorch implementation
 * (cdist -> square -> softmax -> attention pooling), including the saved-
 * tensor duplication patterns the marshaling layer exploits: the square's
 * input re-saves cdist's output (0 hops), attention pooling saves A^T (a
 * transpose view of the softmax output, 1 hop), and W is re-saved every
 * iteration (0 hops).
 */

#ifndef EDKM_CORE_DKM_H_
#define EDKM_CORE_DKM_H_

#include <cstdint>
#include <memory>

#include "autograd/variable.h"
#include "core/palettize.h"
#include "dist/learner_group.h"
#include "tensor/tensor.h"

namespace edkm {

/** Hyper-parameters shared by DkmLayer and EdkmLayer. */
struct DkmConfig
{
    /** Bits per weight; 2^bits centroids. */
    int bits = 3;

    /**
     * Softmax temperature tau. <= 0 selects the variance heuristic
     * tau = 2*var(W)/k^2 (sharp enough to separate adjacent clusters).
     */
    float temperature = 0.0f;

    /** Cap on differentiable iterations. */
    int maxIters = 8;

    /** Converged when no centroid moves more than this. */
    float convergenceEps = 1e-6f;

    /** Lloyd iterations for the (non-differentiable) warm start. */
    int initLloydIters = 3;

    /** Seed for kmeans++ initialisation. */
    uint64_t seed = 1234;
};

/**
 * Dense differentiable weight-clustering layer.
 *
 * Stateless across calls except for diagnostics of the last forward
 * (centroids, iteration count, temperature used).
 */
class DkmLayer
{
  public:
    /**
     * @param group optional learner group: when present (and world > 1)
     *        the tracking forward accounts the per-iteration all-gather
     *        a sharded save of the dense attention map would cost, so
     *        dense DKM and eDKM report comparable communication.
     */
    explicit DkmLayer(DkmConfig config,
                      std::shared_ptr<LearnerGroup> group = nullptr);

    /**
     * Differentiable soft clustering of @p w (any shape). Returns W~ with
     * the same shape; gradients flow to @p w through all iterations.
     */
    Variable forward(const Variable &w);

    /**
     * Hard-assign @p w to the centroids of the last forward() and pack
     * into the deployable palettized format.
     */
    PalettizedTensor palettize(const Tensor &w) const;

    /** Centroids after the last forward ([k] f32 on the input device). */
    const Tensor &centroids() const { return centroids_; }

    /** Differentiable iterations executed in the last forward. */
    int lastIterations() const { return last_iters_; }

    /** Temperature used in the last forward (after auto-selection). */
    float temperatureUsed() const { return temperature_used_; }

    const DkmConfig &config() const { return config_; }

    /**
     * Shared heuristic: initial centroids for @p w via weighted
     * kmeans++/Lloyd on (optionally unique) values.
     */
    static std::vector<float> initCentroids(
        const std::vector<float> &values, const std::vector<float> &counts,
        const DkmConfig &config);

    /** Shared heuristic: resolve tau (auto when config.temperature<=0). */
    static float resolveTemperature(const DkmConfig &config,
                                    const std::vector<float> &values,
                                    const std::vector<float> &counts);

  private:
    DkmConfig config_;
    std::shared_ptr<LearnerGroup> group_;
    Tensor centroids_;
    int last_iters_ = 0;
    float temperature_used_ = 0.0f;
};

} // namespace edkm

#endif // EDKM_CORE_DKM_H_
