/**
 * @file
 * Cross-process ring transport for real learner groups.
 *
 * A Transport is one rank's view of a unidirectional ring over |L|
 * learner processes: every rank can send bytes to its successor
 * (rank+1 mod L) and receive bytes from its predecessor. Two concrete
 * implementations exist (selected with EDKM_DIST_TRANSPORT=shm|socket,
 * default shm):
 *
 *  - ShmTransport  — fork + one POSIX shared-memory segment holding a
 *    lock-free SPSC byte ring per directed edge (src/dist/shm_transport).
 *  - SocketTransport — an AF_UNIX socketpair per directed edge, created
 *    before fork so fd inheritance is the rendezvous
 *    (src/dist/socket_transport).
 *
 * The base class builds every collective the learner group needs from
 * two nonblocking primitives (trySendNext / tryRecvPrev):
 *
 *  - exchange()       — simultaneous send-to-next / receive-from-prev
 *    with an interleaved progress loop, so one ring step never
 *    deadlocks even when the payload exceeds the channel capacity,
 *  - allGatherBytes() — the textbook L-1-step ring all-gather of one
 *    variable-size chunk per rank,
 *  - barrier()        — a two-pass token ring (all ranks enter before
 *    any leaves).
 *
 * Failure model: a blocked primitive throws DistError (a FatalError
 * subclass naming the peer) when the peer is detected dead — socket EOF
 * / EPIPE, or the shared abort word the parent raises from waitpid —
 * and every blocking wrapper enforces a deadline so a wedged ring
 * surfaces a typed timeout instead of a hang.
 *
 * Byte counters: bytesSent()/bytesReceived() measure the traffic this
 * rank actually moved (collective payloads + barrier tokens), which the
 * tests reconcile against the LearnerGroup's ring-cost ledger.
 */

#ifndef EDKM_DIST_TRANSPORT_H_
#define EDKM_DIST_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace edkm {
namespace dist {

/** Typed failure of the distributed layer: peer death, ring timeout,
 *  rendezvous failure. Always names the rank(s) involved. */
class DistError : public FatalError
{
  public:
    explicit DistError(const std::string &what) : FatalError(what) {}
};

/** Wire selection for ProcessGroup. */
enum class TransportKind {
    kShm,    ///< fork + POSIX shared-memory rings
    kSocket, ///< AF_UNIX socketpair per ring edge
};

/** Parse EDKM_DIST_TRANSPORT (shm|socket); default kShm. Unknown
 *  values warn once and fall back to the default. */
TransportKind transportKindFromEnv();

/** Human-readable transport name ("shm" / "socket"). */
const char *transportKindName(TransportKind kind);

/**
 * One rank's endpoint of the learner ring. Concrete subclasses provide
 * the nonblocking byte primitives; the collectives here are built on
 * top and shared by both wires.
 *
 * Thread model: single-owner — one learner thread per process drives
 * its transport. Nothing here is shared between threads of one process.
 */
class Transport
{
  public:
    Transport(int world_size, int rank, double timeout_sec);
    virtual ~Transport() = default;

    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;

    int worldSize() const { return world_; }
    int rank() const { return rank_; }

    /**
     * Nonblocking push of up to @p len bytes toward rank+1. Returns the
     * number of bytes accepted (0 when the channel is full). Throws
     * DistError when the peer is known dead.
     */
    virtual size_t trySendNext(const uint8_t *data, size_t len) = 0;

    /**
     * Nonblocking pull of up to @p len bytes from rank-1. Returns the
     * number of bytes received (0 when none are pending). Throws
     * DistError when the peer is known dead.
     */
    virtual size_t tryRecvPrev(uint8_t *data, size_t len) = 0;

    /** Blocking send of exactly @p len bytes to rank+1 (deadline-bound). */
    void sendNext(const void *data, size_t len);

    /** Blocking receive of exactly @p len bytes from rank-1. */
    void recvPrev(void *data, size_t len);

    /**
     * One ring step: send @p send_len bytes to rank+1 while receiving
     * @p recv_len bytes from rank-1, interleaving progress on both
     * directions so the step completes for payloads of any size
     * relative to the channel capacity.
     */
    void exchange(const uint8_t *send, size_t send_len, uint8_t *recv,
                  size_t recv_len);

    /**
     * Ring all-gather: rank r contributes @p mine (whose size must be
     * chunk_sizes[r]); on return @p out holds every rank's chunk, in
     * rank order. L-1 steps; each rank receives exactly
     * sum(chunk_sizes) - chunk_sizes[rank] bytes.
     */
    void allGatherBytes(const std::vector<uint8_t> &mine,
                        const std::vector<size_t> &chunk_sizes,
                        std::vector<std::vector<uint8_t>> &out);

    /** Two-pass token ring: no rank leaves before every rank entered. */
    void barrier();

    int64_t bytesSent() const { return bytes_sent_; }
    int64_t bytesReceived() const { return bytes_received_; }
    void resetCounters();

    double timeoutSec() const { return timeout_sec_; }

  protected:
    /** Uniform timeout error ("ring stalled ...") for blocked loops. */
    [[noreturn]] void throwTimeout(const char *op) const;

    int world_;
    int rank_;
    double timeout_sec_;
    int64_t bytes_sent_ = 0;
    int64_t bytes_received_ = 0;
};

} // namespace dist
} // namespace edkm

#endif // EDKM_DIST_TRANSPORT_H_
