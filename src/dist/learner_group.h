/**
 * @file
 * Simulated data-parallel learner group (paper section 2.2, "S").
 *
 * eDKM shards the uniquified index list (or the dense attention-map rows
 * when uniquification is off) across |L| synchronous data-parallel
 * learners, keeping O(|W|/|L|) saved bytes per learner. In fully
 * synchronous training every learner holds identical weights, so the
 * missing shards are either all-gathered back for backward or regenerated
 * deterministically — either way the *communication* is what must be
 * accounted, not re-executed. LearnerGroup provides:
 *
 *  - balanced contiguous shard ranges (sizes differ by at most one),
 *  - functional collectives (allGather / allReduceMean) for tests and
 *    multi-learner simulations, built on edkm::runtime,
 *  - a communication ledger (counts + bytes, ring-collective cost:
 *    an all-gather moves (L-1)/L of the payload per learner, an
 *    all-reduce 2(L-1)/L), wired into the DeviceManager's simulated
 *    clock via the collective latency of the cost model.
 */

#ifndef EDKM_DIST_LEARNER_GROUP_H_
#define EDKM_DIST_LEARNER_GROUP_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace edkm {

namespace dist {
class Transport;
} // namespace dist

/** Communication counters of one learner group. */
struct DistStats
{
    int64_t allGathers = 0;      ///< collective invocations
    int64_t allGatherBytes = 0;  ///< bytes moved per learner (ring)
    int64_t allReduces = 0;      ///< collective invocations
    int64_t allReduceBytes = 0;  ///< bytes moved per learner (ring)
};

/**
 * A group of |L| simulated synchronous data-parallel learners. The
 * object is shared by every EdkmLayer of one training job so the ledger
 * aggregates all sharding traffic.
 */
class LearnerGroup
{
  public:
    /**
     * @param world_size number of learners (>= 1; fatal otherwise).
     * @param rank       this process's view (accounting only).
     */
    explicit LearnerGroup(int world_size, int rank = 0);

    /**
     * Cross-process group: this process is one real learner of
     * @p transport's ring (world size and rank come from it). The
     * generator collectives below then move bytes over the wire
     * instead of regenerating peers' contributions; calling code is
     * unchanged. @p transport must outlive the group (non-owning).
     */
    explicit LearnerGroup(dist::Transport &transport);

    int worldSize() const { return world_; }
    int rank() const { return rank_; }

    /** True when collectives run over a real inter-process transport. */
    bool crossProcess() const { return transport_ != nullptr; }

    /** The wire, or nullptr in functional mode. */
    dist::Transport *transport() const { return transport_; }

    /**
     * Contiguous shard [begin, end) of @p n elements owned by learner
     * @p r. Ranges are ordered, disjoint, cover [0, n) exactly, and
     * sizes differ by at most one. Fatal on r outside [0, world).
     */
    std::pair<int64_t, int64_t> shardRange(int64_t n, int r) const;

    /** Size of learner @p r's shard of @p n elements. */
    int64_t shardSize(int64_t n, int r) const;

    /**
     * Functional all-gather: concatenate one [s_r, ...] shard per
     * learner along dim 0 into the full tensor (f32), accounting the
     * ring traffic and simulated latency.
     */
    Tensor allGather(const std::vector<Tensor> &shards);

    /**
     * Functional all-reduce (mean): elementwise average of one
     * same-shaped tensor per learner, with ring accounting.
     */
    Tensor allReduceMean(const std::vector<Tensor> &tensors);

    /**
     * Produces one rank's contribution to a collective. Must be
     * deterministic — in functional mode it is invoked for *every*
     * rank (regeneration stands in for the receive), in cross-process
     * mode only for this group's own rank — and must return a
     * contiguous f32 CPU tensor (undefined for an empty shard).
     */
    using RankFn = std::function<Tensor(int)>;

    /**
     * Mode-independent sharded all-gather: rank r owns rows
     * shardRange(rows, r) of the [rows, cols] result and @p shard_fn(r)
     * returns that [size_r, cols] block. Functional mode regenerates
     * every block locally and charges the ring model; cross-process
     * mode moves the missing blocks over the transport and records the
     * bytes actually received. The assembled tensor is bit-identical
     * in both modes (same blocks, same placement).
     */
    Tensor allGatherShards(int64_t rows, int64_t cols,
                           const RankFn &shard_fn);

    /**
     * Mode-independent deterministic all-reduce (sum): @p partial_fn(r)
     * returns rank r's [n] partial; the result is the elementwise sum
     * accumulated in doubles in rank order — bit-stable at any learner
     * count, unlike a true ring reduce-scatter whose per-chunk
     * accumulation order rotates. Implemented as an all-gather of
     * partials + local rank-order combine, so each learner moves
     * exactly (L-1)*n*4 bytes; the ledger records that in both modes.
     */
    Tensor allReduceSumDet(int64_t n, const RankFn &partial_fn);

    /**
     * Account an all-gather of @p payload_bytes total payload without
     * materialising it (the eDKM backward regenerates shards
     * deterministically instead of receiving them). Ring cost: each
     * learner receives (L-1)/L of the payload.
     */
    void recordAllGather(int64_t payload_bytes);

    /** Account an all-reduce of @p payload_bytes (ring: 2(L-1)/L). */
    void recordAllReduce(int64_t payload_bytes);

    const DistStats &stats() const { return stats_; }

    /** Zero the ledger (keeps world size). */
    void resetStats() { stats_ = DistStats{}; }

  private:
    /** Bytes one learner moves for a ring collective of @p payload. */
    int64_t ringBytes(int64_t payload_bytes, int passes) const;

    /** Push collective latency + wire time onto the simulated clock. */
    void chargeCollective(int64_t moved_bytes) const;

    int world_ = 1;
    int rank_ = 0;
    dist::Transport *transport_ = nullptr; ///< non-owning; null = functional
    DistStats stats_;
};

} // namespace edkm

#endif // EDKM_DIST_LEARNER_GROUP_H_
