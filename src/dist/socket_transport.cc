#include "dist/socket_transport.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace edkm {
namespace dist {

namespace {

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    EDKM_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "dist: fcntl(O_NONBLOCK) failed: ", std::strerror(errno));
}

void
closeIfOpen(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

SocketRing::SocketRing(int world) : world_(world)
{
    EDKM_CHECK(world_ >= 1, "SocketRing: world must be >= 1");
    write_fds_.assign(static_cast<size_t>(world_), -1);
    read_fds_.assign(static_cast<size_t>(world_), -1);
    for (int e = 0; e < world_; ++e) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            int err = errno;
            closeAll();
            throw DistError("dist: socketpair failed: " +
                            std::string(std::strerror(err)));
        }
        setNonBlocking(sv[0]);
        setNonBlocking(sv[1]);
        write_fds_[static_cast<size_t>(e)] = sv[0];
        read_fds_[static_cast<size_t>(e)] = sv[1];
    }
}

SocketRing::~SocketRing()
{
    closeAll();
}

int
SocketRing::sendFd(int rank) const
{
    return write_fds_[static_cast<size_t>(rank)];
}

int
SocketRing::recvFd(int rank) const
{
    return read_fds_[static_cast<size_t>((rank - 1 + world_) % world_)];
}

void
SocketRing::closeAllExcept(int rank)
{
    int keep_send = rank;
    int keep_recv = (rank - 1 + world_) % world_;
    for (int e = 0; e < world_; ++e) {
        if (e != keep_send) {
            closeIfOpen(write_fds_[static_cast<size_t>(e)]);
        }
        if (e != keep_recv) {
            closeIfOpen(read_fds_[static_cast<size_t>(e)]);
        }
    }
}

void
SocketRing::closeAll()
{
    for (int e = 0; e < world_; ++e) {
        closeIfOpen(write_fds_[static_cast<size_t>(e)]);
        closeIfOpen(read_fds_[static_cast<size_t>(e)]);
    }
}

SocketTransport::SocketTransport(SocketRing &ring, int rank,
                                 double timeout_sec)
    : Transport(ring.world(), rank, timeout_sec),
      send_fd_(ring.sendFd(rank)), recv_fd_(ring.recvFd(rank))
{
    EDKM_CHECK(send_fd_ >= 0 && recv_fd_ >= 0,
               "SocketTransport: rank ", rank, " fds already closed");
}

size_t
SocketTransport::trySendNext(const uint8_t *data, size_t len)
{
    ssize_t n = ::send(send_fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) {
        return static_cast<size_t>(n);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return 0;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
        throw DistError("dist: rank " + std::to_string(rank_) +
                        " cannot send to rank " +
                        std::to_string((rank_ + 1) % world_) +
                        " — peer process died mid-collective");
    }
    throw DistError("dist: send from rank " + std::to_string(rank_) +
                    " failed: " + std::strerror(errno));
}

size_t
SocketTransport::tryRecvPrev(uint8_t *data, size_t len)
{
    ssize_t n = ::recv(recv_fd_, data, len, 0);
    if (n > 0) {
        return static_cast<size_t>(n);
    }
    if (n == 0) {
        // Orderly EOF: the predecessor's process is gone.
        throw DistError("dist: rank " + std::to_string(rank_) +
                        " lost its ring predecessor rank " +
                        std::to_string((rank_ - 1 + world_) % world_) +
                        " — peer process died mid-collective");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return 0;
    }
    if (errno == ECONNRESET) {
        throw DistError("dist: rank " + std::to_string(rank_) +
                        " lost its ring predecessor rank " +
                        std::to_string((rank_ - 1 + world_) % world_) +
                        " — connection reset mid-collective");
    }
    throw DistError("dist: recv at rank " + std::to_string(rank_) +
                    " failed: " + std::strerror(errno));
}

} // namespace dist
} // namespace edkm
