#include "dist/transport.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace edkm {
namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point
deadlineFrom(double timeout_sec)
{
    return Clock::now() +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(timeout_sec));
}

} // namespace

TransportKind
transportKindFromEnv()
{
    const char *env = std::getenv("EDKM_DIST_TRANSPORT");
    if (env == nullptr || env[0] == '\0') {
        return TransportKind::kShm;
    }
    if (std::strcmp(env, "shm") == 0) {
        return TransportKind::kShm;
    }
    if (std::strcmp(env, "socket") == 0) {
        return TransportKind::kSocket;
    }
    warn("EDKM_DIST_TRANSPORT='", env,
         "' is not shm|socket; using shm");
    return TransportKind::kShm;
}

const char *
transportKindName(TransportKind kind)
{
    return kind == TransportKind::kShm ? "shm" : "socket";
}

Transport::Transport(int world_size, int rank, double timeout_sec)
    : world_(world_size), rank_(rank), timeout_sec_(timeout_sec)
{
    EDKM_CHECK(world_ >= 1, "Transport: world size must be >= 1, got ",
               world_);
    EDKM_CHECK(rank_ >= 0 && rank_ < world_, "Transport: rank ", rank_,
               " outside [0,", world_, ")");
    EDKM_CHECK(timeout_sec_ > 0.0, "Transport: timeout must be > 0");
}

void
Transport::resetCounters()
{
    bytes_sent_ = 0;
    bytes_received_ = 0;
}

void
Transport::throwTimeout(const char *op) const
{
    throw DistError(std::string("dist: ") + op + " stalled for more than " +
                    std::to_string(timeout_sec_) + "s at rank " +
                    std::to_string(rank_) + " of " + std::to_string(world_) +
                    " (peer wedged or dead without notice)");
}

void
Transport::sendNext(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    size_t sent = 0;
    auto deadline = deadlineFrom(timeout_sec_);
    while (sent < len) {
        size_t n = trySendNext(p + sent, len - sent);
        if (n == 0) {
            if (Clock::now() > deadline) {
                throwTimeout("sendNext");
            }
            std::this_thread::yield();
            continue;
        }
        sent += n;
    }
    bytes_sent_ += static_cast<int64_t>(len);
}

void
Transport::recvPrev(void *data, size_t len)
{
    uint8_t *p = static_cast<uint8_t *>(data);
    size_t got = 0;
    auto deadline = deadlineFrom(timeout_sec_);
    while (got < len) {
        size_t n = tryRecvPrev(p + got, len - got);
        if (n == 0) {
            if (Clock::now() > deadline) {
                throwTimeout("recvPrev");
            }
            std::this_thread::yield();
            continue;
        }
        got += n;
    }
    bytes_received_ += static_cast<int64_t>(len);
}

void
Transport::exchange(const uint8_t *send, size_t send_len, uint8_t *recv,
                    size_t recv_len)
{
    // Interleave both directions: always drain the incoming ring before
    // pushing, so the cyclic send across all ranks can never fill every
    // channel and deadlock, regardless of payload vs capacity.
    size_t sent = 0;
    size_t got = 0;
    auto deadline = deadlineFrom(timeout_sec_);
    while (sent < send_len || got < recv_len) {
        bool progress = false;
        if (got < recv_len) {
            size_t n = tryRecvPrev(recv + got, recv_len - got);
            got += n;
            progress = progress || n > 0;
        }
        if (sent < send_len) {
            size_t n = trySendNext(send + sent, send_len - sent);
            sent += n;
            progress = progress || n > 0;
        }
        if (!progress) {
            if (Clock::now() > deadline) {
                throwTimeout("exchange");
            }
            std::this_thread::yield();
        }
    }
    bytes_sent_ += static_cast<int64_t>(send_len);
    bytes_received_ += static_cast<int64_t>(recv_len);
}

void
Transport::allGatherBytes(const std::vector<uint8_t> &mine,
                          const std::vector<size_t> &chunk_sizes,
                          std::vector<std::vector<uint8_t>> &out)
{
    EDKM_CHECK(static_cast<int>(chunk_sizes.size()) == world_,
               "allGatherBytes: expected ", world_, " chunk sizes, got ",
               chunk_sizes.size());
    EDKM_CHECK(mine.size() == chunk_sizes[static_cast<size_t>(rank_)],
               "allGatherBytes: rank ", rank_, " contributed ",
               mine.size(), " bytes, layout says ",
               chunk_sizes[static_cast<size_t>(rank_)]);
    out.assign(static_cast<size_t>(world_), {});
    out[static_cast<size_t>(rank_)] = mine;
    // Standard ring all-gather: at step s every rank forwards the chunk
    // it obtained at step s-1 (its own at s=0) to its successor and
    // receives one more chunk from its predecessor. L-1 steps.
    for (int s = 0; s < world_ - 1; ++s) {
        int send_chunk = (rank_ - s + world_) % world_;
        int recv_chunk = (rank_ - s - 1 + world_) % world_;
        std::vector<uint8_t> &rbuf = out[static_cast<size_t>(recv_chunk)];
        rbuf.resize(chunk_sizes[static_cast<size_t>(recv_chunk)]);
        const std::vector<uint8_t> &sbuf =
            out[static_cast<size_t>(send_chunk)];
        exchange(sbuf.data(), sbuf.size(), rbuf.data(), rbuf.size());
    }
}

void
Transport::barrier()
{
    if (world_ == 1) {
        return;
    }
    // Two token passes around the ring: the first proves every rank has
    // entered (the token cannot return to rank 0 otherwise), the second
    // releases them. No rank exits before every rank entered.
    uint8_t token = 0;
    for (int pass = 0; pass < 2; ++pass) {
        if (rank_ == 0) {
            sendNext(&token, 1);
            recvPrev(&token, 1);
        } else {
            recvPrev(&token, 1);
            sendNext(&token, 1);
        }
    }
}

} // namespace dist
} // namespace edkm
