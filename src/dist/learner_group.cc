#include "dist/learner_group.h"

#include <algorithm>

#include "device/device_manager.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {

LearnerGroup::LearnerGroup(int world_size, int rank)
    : world_(world_size), rank_(rank)
{
    EDKM_CHECK(world_ >= 1, "LearnerGroup: world size must be >= 1, got ",
               world_);
    EDKM_CHECK(rank_ >= 0 && rank_ < world_,
               "LearnerGroup: rank ", rank_, " outside [0,", world_, ")");
}

std::pair<int64_t, int64_t>
LearnerGroup::shardRange(int64_t n, int r) const
{
    EDKM_CHECK(r >= 0 && r < world_, "shardRange: rank ", r,
               " outside [0,", world_, ")");
    EDKM_CHECK(n >= 0, "shardRange: negative length");
    // First (n % L) learners take one extra element; ranges stay
    // contiguous and ordered by rank.
    int64_t base = n / world_;
    int64_t extra = n % world_;
    int64_t begin = r * base + std::min<int64_t>(r, extra);
    int64_t end = begin + base + (r < extra ? 1 : 0);
    return {begin, end};
}

int64_t
LearnerGroup::shardSize(int64_t n, int r) const
{
    auto [b, e] = shardRange(n, r);
    return e - b;
}

int64_t
LearnerGroup::ringBytes(int64_t payload_bytes, int passes) const
{
    // Ring collective: each learner moves (L-1)/L of the payload per
    // pass (all-gather: 1 pass; all-reduce: reduce-scatter + gather).
    return payload_bytes * passes * (world_ - 1) / world_;
}

void
LearnerGroup::chargeCollective(int64_t moved_bytes) const
{
    DeviceManager &mgr = DeviceManager::instance();
    const CostModel &cost = mgr.costModel();
    mgr.recordExtraSeconds(cost.collectiveLatencySec +
                           static_cast<double>(moved_bytes) /
                               cost.busBytesPerSec);
}

void
LearnerGroup::recordAllGather(int64_t payload_bytes)
{
    int64_t moved = ringBytes(payload_bytes, 1);
    ++stats_.allGathers;
    stats_.allGatherBytes += moved;
    chargeCollective(moved);
}

void
LearnerGroup::recordAllReduce(int64_t payload_bytes)
{
    int64_t moved = ringBytes(payload_bytes, 2);
    ++stats_.allReduces;
    stats_.allReduceBytes += moved;
    chargeCollective(moved);
}

Tensor
LearnerGroup::allGather(const std::vector<Tensor> &shards)
{
    EDKM_CHECK(static_cast<int>(shards.size()) == world_,
               "allGather: expected ", world_, " shards, got ",
               shards.size());
    Shape shape = shards[0].shape();
    EDKM_CHECK(!shape.empty(), "allGather: shards must be >= 1-d");
    int64_t rows = 0;
    for (const Tensor &s : shards) {
        EDKM_CHECK(s.dim() == static_cast<int64_t>(shape.size()),
                   "allGather: rank mismatch across shards");
        for (int64_t d = 1; d < s.dim(); ++d) {
            EDKM_CHECK(s.size(d) == shape[d],
                       "allGather: trailing shape mismatch");
        }
        rows += s.size(0);
    }
    shape[0] = rows;
    Tensor out = Tensor::empty(shape, DType::kF32, shards[0].device());
    float *po = out.rawData<float>();
    int64_t written = 0;
    for (const Tensor &s : shards) {
        Tensor sc = s.isContiguous() && s.dtype() == DType::kF32
                        ? s
                        : s.contiguous().to(DType::kF32);
        const float *ps = sc.rawData<const float>();
        int64_t len = sc.numel();
        runtime::parallelFor(0, len, runtime::grainFor(len),
                             [&](int64_t b, int64_t e) {
                                 std::copy(ps + b, ps + e,
                                           po + written + b);
                             });
        written += len;
    }
    recordAllGather(out.numel() *
                    static_cast<int64_t>(dtypeSize(DType::kF32)));
    return out;
}

Tensor
LearnerGroup::allReduceMean(const std::vector<Tensor> &tensors)
{
    EDKM_CHECK(static_cast<int>(tensors.size()) == world_,
               "allReduceMean: expected ", world_, " tensors, got ",
               tensors.size());
    const Shape &shape = tensors[0].shape();
    int64_t n = tensors[0].numel();
    std::vector<Tensor> contig;
    contig.reserve(tensors.size());
    for (const Tensor &t : tensors) {
        EDKM_CHECK(t.shape() == shape,
                   "allReduceMean: shape mismatch across learners");
        contig.push_back(t.isContiguous() && t.dtype() == DType::kF32
                             ? t
                             : t.contiguous().to(DType::kF32));
    }
    Tensor out = Tensor::empty(shape, DType::kF32, tensors[0].device());
    float *po = out.rawData<float>();
    float inv = 1.0f / static_cast<float>(world_);
    runtime::parallelFor(
        0, n, runtime::grainFor(n, world_), [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
                double acc = 0.0;
                for (const Tensor &t : contig) {
                    acc += t.rawData<const float>()[i];
                }
                po[i] = static_cast<float>(acc) * inv;
            }
        });
    recordAllReduce(n * static_cast<int64_t>(dtypeSize(DType::kF32)));
    return out;
}

} // namespace edkm
