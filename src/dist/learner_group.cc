#include "dist/learner_group.h"

#include <algorithm>
#include <cstring>

#include "device/device_manager.h"
#include "dist/transport.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {

namespace {

/** Contiguous f32 CPU bytes of one rank's contribution. */
const Tensor
asWire(const Tensor &t)
{
    EDKM_CHECK(t.defined(), "collective: rank contribution undefined");
    Tensor c = t.isContiguous() && t.dtype() == DType::kF32
                   ? t
                   : t.contiguous().to(DType::kF32);
    return c;
}

} // namespace

LearnerGroup::LearnerGroup(int world_size, int rank)
    : world_(world_size), rank_(rank)
{
    EDKM_CHECK(world_ >= 1, "LearnerGroup: world size must be >= 1, got ",
               world_);
    EDKM_CHECK(rank_ >= 0 && rank_ < world_,
               "LearnerGroup: rank ", rank_, " outside [0,", world_, ")");
}

LearnerGroup::LearnerGroup(dist::Transport &transport)
    : world_(transport.worldSize()), rank_(transport.rank()),
      transport_(&transport)
{
}

std::pair<int64_t, int64_t>
LearnerGroup::shardRange(int64_t n, int r) const
{
    EDKM_CHECK(r >= 0 && r < world_, "shardRange: rank ", r,
               " outside [0,", world_, ")");
    EDKM_CHECK(n >= 0, "shardRange: negative length");
    // First (n % L) learners take one extra element; ranges stay
    // contiguous and ordered by rank.
    int64_t base = n / world_;
    int64_t extra = n % world_;
    int64_t begin = r * base + std::min<int64_t>(r, extra);
    int64_t end = begin + base + (r < extra ? 1 : 0);
    return {begin, end};
}

int64_t
LearnerGroup::shardSize(int64_t n, int r) const
{
    auto [b, e] = shardRange(n, r);
    return e - b;
}

int64_t
LearnerGroup::ringBytes(int64_t payload_bytes, int passes) const
{
    // Ring collective: each learner moves (L-1)/L of the payload per
    // pass (all-gather: 1 pass; all-reduce: reduce-scatter + gather).
    return payload_bytes * passes * (world_ - 1) / world_;
}

void
LearnerGroup::chargeCollective(int64_t moved_bytes) const
{
    DeviceManager &mgr = DeviceManager::instance();
    const CostModel &cost = mgr.costModel();
    mgr.recordExtraSeconds(cost.collectiveLatencySec +
                           static_cast<double>(moved_bytes) /
                               cost.busBytesPerSec);
}

void
LearnerGroup::recordAllGather(int64_t payload_bytes)
{
    int64_t moved = ringBytes(payload_bytes, 1);
    ++stats_.allGathers;
    stats_.allGatherBytes += moved;
    chargeCollective(moved);
}

void
LearnerGroup::recordAllReduce(int64_t payload_bytes)
{
    int64_t moved = ringBytes(payload_bytes, 2);
    ++stats_.allReduces;
    stats_.allReduceBytes += moved;
    chargeCollective(moved);
}

Tensor
LearnerGroup::allGather(const std::vector<Tensor> &shards)
{
    EDKM_CHECK(static_cast<int>(shards.size()) == world_,
               "allGather: expected ", world_, " shards, got ",
               shards.size());
    Shape shape = shards[0].shape();
    EDKM_CHECK(!shape.empty(), "allGather: shards must be >= 1-d");
    int64_t rows = 0;
    for (const Tensor &s : shards) {
        EDKM_CHECK(s.dim() == static_cast<int64_t>(shape.size()),
                   "allGather: rank mismatch across shards");
        for (int64_t d = 1; d < s.dim(); ++d) {
            EDKM_CHECK(s.size(d) == shape[d],
                       "allGather: trailing shape mismatch");
        }
        rows += s.size(0);
    }
    shape[0] = rows;
    Tensor out = Tensor::empty(shape, DType::kF32, shards[0].device());
    float *po = out.rawData<float>();
    int64_t written = 0;
    for (const Tensor &s : shards) {
        Tensor sc = s.isContiguous() && s.dtype() == DType::kF32
                        ? s
                        : s.contiguous().to(DType::kF32);
        const float *ps = sc.rawData<const float>();
        int64_t len = sc.numel();
        runtime::parallelFor(0, len, runtime::grainFor(len),
                             [&](int64_t b, int64_t e) {
                                 std::copy(ps + b, ps + e,
                                           po + written + b);
                             });
        written += len;
    }
    recordAllGather(out.numel() *
                    static_cast<int64_t>(dtypeSize(DType::kF32)));
    return out;
}

Tensor
LearnerGroup::allReduceMean(const std::vector<Tensor> &tensors)
{
    EDKM_CHECK(static_cast<int>(tensors.size()) == world_,
               "allReduceMean: expected ", world_, " tensors, got ",
               tensors.size());
    const Shape &shape = tensors[0].shape();
    int64_t n = tensors[0].numel();
    std::vector<Tensor> contig;
    contig.reserve(tensors.size());
    for (const Tensor &t : tensors) {
        EDKM_CHECK(t.shape() == shape,
                   "allReduceMean: shape mismatch across learners");
        contig.push_back(t.isContiguous() && t.dtype() == DType::kF32
                             ? t
                             : t.contiguous().to(DType::kF32));
    }
    Tensor out = Tensor::empty(shape, DType::kF32, tensors[0].device());
    float *po = out.rawData<float>();
    float inv = 1.0f / static_cast<float>(world_);
    runtime::parallelFor(
        0, n, runtime::grainFor(n, world_), [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
                double acc = 0.0;
                for (const Tensor &t : contig) {
                    acc += t.rawData<const float>()[i];
                }
                po[i] = static_cast<float>(acc) * inv;
            }
        });
    recordAllReduce(n * static_cast<int64_t>(dtypeSize(DType::kF32)));
    return out;
}

Tensor
LearnerGroup::allGatherShards(int64_t rows, int64_t cols,
                              const RankFn &shard_fn)
{
    EDKM_CHECK(rows >= 1 && cols >= 1,
               "allGatherShards: need rows, cols >= 1 (got ", rows, "x",
               cols, ")");
    Tensor out = Tensor::empty({rows, cols}, DType::kF32, Device::cpu());
    float *po = out.rawData<float>();

    auto place = [&](int r, const float *src) {
        auto [b, e] = shardRange(rows, r);
        if (e == b) {
            return;
        }
        std::memcpy(po + b * cols, src,
                    static_cast<size_t>((e - b) * cols) * sizeof(float));
    };

    if (transport_ == nullptr) {
        // Functional: regenerate every rank's block locally (identical
        // weights under synchronous training make this exact) and
        // charge the ring model for the traffic that stands in for.
        for (int r = 0; r < world_; ++r) {
            if (shardSize(rows, r) == 0) {
                continue;
            }
            Tensor s = asWire(shard_fn(r));
            EDKM_CHECK(s.numel() == shardSize(rows, r) * cols,
                       "allGatherShards: rank ", r, " produced ",
                       s.numel(), " elements, layout says ",
                       shardSize(rows, r) * cols);
            place(r, s.rawData<const float>());
        }
        recordAllGather(rows * cols *
                        static_cast<int64_t>(dtypeSize(DType::kF32)));
        return out;
    }

    // Cross-process: contribute our block, ring-gather the rest, and
    // record the bytes the transport actually moved to this learner.
    std::vector<size_t> sizes(static_cast<size_t>(world_));
    for (int r = 0; r < world_; ++r) {
        sizes[static_cast<size_t>(r)] =
            static_cast<size_t>(shardSize(rows, r) * cols) *
            sizeof(float);
    }
    std::vector<uint8_t> mine(sizes[static_cast<size_t>(rank_)]);
    if (!mine.empty()) {
        Tensor s = asWire(shard_fn(rank_));
        EDKM_CHECK(s.numel() * static_cast<int64_t>(sizeof(float)) ==
                       static_cast<int64_t>(mine.size()),
                   "allGatherShards: own shard size mismatch at rank ",
                   rank_);
        std::memcpy(mine.data(), s.rawData<const float>(), mine.size());
    }
    int64_t before = transport_->bytesReceived();
    std::vector<std::vector<uint8_t>> chunks;
    transport_->allGatherBytes(mine, sizes, chunks);
    int64_t moved = transport_->bytesReceived() - before;
    for (int r = 0; r < world_; ++r) {
        if (sizes[static_cast<size_t>(r)] == 0) {
            continue;
        }
        place(r, reinterpret_cast<const float *>(
                     chunks[static_cast<size_t>(r)].data()));
    }
    ++stats_.allGathers;
    stats_.allGatherBytes += moved;
    chargeCollective(moved);
    return out;
}

Tensor
LearnerGroup::allReduceSumDet(int64_t n, const RankFn &partial_fn)
{
    EDKM_CHECK(n >= 1, "allReduceSumDet: need n >= 1, got ", n);

    // Collect one [n] partial per rank, in rank order.
    std::vector<Tensor> held;          // keeps functional tensors alive
    std::vector<std::vector<uint8_t>> chunks; // wire buffers (transport)
    std::vector<const float *> parts(static_cast<size_t>(world_));
    int64_t moved = 0;
    if (transport_ == nullptr) {
        held.reserve(static_cast<size_t>(world_));
        for (int r = 0; r < world_; ++r) {
            Tensor p = asWire(partial_fn(r));
            EDKM_CHECK(p.numel() == n, "allReduceSumDet: rank ", r,
                       " partial has ", p.numel(), " elements, want ", n);
            held.push_back(p);
            parts[static_cast<size_t>(r)] =
                held.back().rawData<const float>();
        }
        // The deterministic sum is an all-gather of equal partials:
        // exactly (L-1)*n*4 bytes per learner, same as the wire moves.
        moved = (world_ - 1) * n *
                static_cast<int64_t>(dtypeSize(DType::kF32));
    } else {
        Tensor p = asWire(partial_fn(rank_));
        EDKM_CHECK(p.numel() == n, "allReduceSumDet: rank ", rank_,
                   " partial has ", p.numel(), " elements, want ", n);
        std::vector<uint8_t> mine(static_cast<size_t>(n) * sizeof(float));
        std::memcpy(mine.data(), p.rawData<const float>(), mine.size());
        std::vector<size_t> sizes(static_cast<size_t>(world_),
                                  mine.size());
        int64_t before = transport_->bytesReceived();
        transport_->allGatherBytes(mine, sizes, chunks);
        moved = transport_->bytesReceived() - before;
        for (int r = 0; r < world_; ++r) {
            parts[static_cast<size_t>(r)] =
                reinterpret_cast<const float *>(
                    chunks[static_cast<size_t>(r)].data());
        }
    }

    // Rank-order double accumulation: identical combine order in both
    // modes, hence bit-identical results at any learner count.
    Tensor out = Tensor::empty({n}, DType::kF32, Device::cpu());
    float *po = out.rawData<float>();
    runtime::parallelFor(
        0, n, runtime::grainFor(n, world_), [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
                double acc = 0.0;
                for (int r = 0; r < world_; ++r) {
                    acc += parts[static_cast<size_t>(r)][i];
                }
                po[i] = static_cast<float>(acc);
            }
        });
    ++stats_.allReduces;
    stats_.allReduceBytes += moved;
    chargeCollective(moved);
    return out;
}

} // namespace edkm
