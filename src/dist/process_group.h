/**
 * @file
 * ProcessGroup — launcher + rendezvous for real learner processes.
 *
 * run() forks one learner per rank, wires them into a ring (shm or
 * socket transport, chosen by options / EDKM_DIST_TRANSPORT), runs the
 * caller's LearnerFn in every child, and returns each rank's result
 * bytes in rank order. Rendezvous is fd/mapping inheritance: every
 * transport resource is created *before* fork, so there is no name
 * server, no race, and nothing left behind on failure.
 *
 * Per child there is also a control socketpair carrying a tiny framed
 * protocol: 'R' + u64 length + result bytes on success, 'E' + u64
 * length + error text on a caught exception. The parent polls all
 * control fds under a deadline; a child that dies without a frame
 * (kill -9, crash, _exit) is detected by EOF on its control fd, at
 * which point the parent raises the shm abort flag (unblocking
 * siblings spinning in a collective), SIGKILLs the survivors, reaps
 * everything, and throws DistError naming the dead rank — a typed
 * error within the timeout, never a hang.
 *
 * Child discipline: fork happens from the (single) calling thread;
 * each child immediately repairs the global thread pool
 * (runtime::Runtime::resetAfterFork — the parent's workers do not
 * exist in the child) and leaves via _exit(), so atexit handlers,
 * stdio flushing and sanitizer leak checks never run twice.
 */

#ifndef EDKM_DIST_PROCESS_GROUP_H_
#define EDKM_DIST_PROCESS_GROUP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dist/transport.h"

namespace edkm {
namespace dist {

struct ProcessGroupOptions
{
    /** Number of learner processes (>= 1). */
    int world = 2;

    /** Wire between learners; defaults to EDKM_DIST_TRANSPORT. */
    TransportKind kind = transportKindFromEnv();

    /** Parent-side deadline for the whole job and child-side deadline
     *  for any single blocked collective step. */
    double timeoutSec = 30.0;

    /** Capacity of each shm ring edge (shm transport only). */
    int64_t shmRingBytes = 1 << 16;

    /** Thread-pool lanes per learner (the fork-repaired pool). */
    int childThreads = 1;
};

/**
 * The learner body. Runs inside a forked child with its rank's
 * transport; whatever it returns is shipped back to the parent.
 * Exceptions are caught and surfaced to the parent as DistError.
 */
using LearnerFn = std::function<std::vector<uint8_t>(Transport &)>;

class ProcessGroup
{
  public:
    /**
     * Fork options.world learners, run @p fn in each, and return every
     * rank's bytes in rank order. Throws DistError on child death,
     * child exception, or timeout — after tearing every child down.
     */
    static std::vector<std::vector<uint8_t>>
    run(const ProcessGroupOptions &options, const LearnerFn &fn);
};

} // namespace dist
} // namespace edkm

#endif // EDKM_DIST_PROCESS_GROUP_H_
