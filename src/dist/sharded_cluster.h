/**
 * @file
 * The sharded eDKM/DKM clustering loop, end-to-end over a LearnerGroup
 * (paper section 2.2).
 *
 * Every learner r owns rows shardRange(U, r) of the attention table
 * (U = unique values, or |W| when uniquification is off) and computes
 * only its block per iteration. The centroid update needs the global
 * attention mass m and value sum nv, obtained with one deterministic
 * all-reduce of the per-rank [2k] partials; the final soft weights come
 * from one sharded all-gather of the per-row table·c products. Because
 * each rank's compute is deterministic and the collectives combine
 * contributions in rank order, the result is bit-identical whether the
 * group is functional (one process simulating L learners) or backed by
 * a real transport with L processes — at any learner count, on any
 * transport. tests/test_dist_process.cc enforces that gate in ctest.
 *
 * Optional extras:
 *  - LAWA (latest-k checkpoint averaging, see dist/checkpoint_avg.h):
 *    lawaK > 0 averages the last k centroid checkpoints locally, then
 *    averages that across learners with the same deterministic
 *    all-reduce.
 *  - overlapOffload: each iteration's table shard is prefetched to the
 *    offload device through a double-buffered async MarshalContext
 *    (MarshalConfig::doubleBuffer), overlapping the D2H copy with the
 *    next iteration's compute. Pure overlap: never changes the result.
 */

#ifndef EDKM_DIST_SHARDED_CLUSTER_H_
#define EDKM_DIST_SHARDED_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "core/edkm.h"
#include "dist/learner_group.h"
#include "dist/process_group.h"
#include "tensor/tensor.h"

namespace edkm {
namespace dist {

/** Knobs of one sharded clustering run. */
struct ShardedClusterOptions
{
    /** Clustering hyper-parameters (dkm.*, halfKind, uniquify). */
    EdkmConfig edkm;

    /** LAWA window: average the latest k centroid checkpoints across
     *  learners. 0 disables (use the last iterate). */
    int lawaK = 0;

    /** Prefetch each iteration's table shard through a double-buffered
     *  async MarshalContext (no-op for CPU-resident weights). */
    bool overlapOffload = false;
};

/** What one sharded clustering run produces (identical on all ranks). */
struct ShardedClusterResult
{
    std::vector<float> weights;   ///< soft-clustered W~, flattened
    std::vector<float> centroids; ///< final [k] centroids
    int iterations = 0;
    int64_t uniqueCount = 0; ///< 0 when uniquification is off

    DistStats comm; ///< this rank's collective ledger

    /** Transport byte counters (0 in functional mode). */
    int64_t transportBytesSent = 0;
    int64_t transportBytesReceived = 0;

    /** Offload buffers recycled by the double-buffered marshal. */
    int64_t marshalBufferReuses = 0;
};

/**
 * Run the sharded clustering loop as learner @p group.rank() of
 * @p group.worldSize(). Works identically over a functional group and a
 * transport-backed one; the returned weights/centroids are bit-identical
 * across ranks, modes, transports and learner counts.
 */
ShardedClusterResult shardedClusterRank(const Tensor &w,
                                        const ShardedClusterOptions &opts,
                                        LearnerGroup &group);

/** Single-process reference: one functional group of @p world learners. */
ShardedClusterResult shardedClusterSimulate(const Tensor &w,
                                            const ShardedClusterOptions &opts,
                                            int world);

/**
 * Real multi-process run: spawn @p pg.world learner processes, each
 * running shardedClusterRank over the process transport. Verifies every
 * rank returned byte-identical weights and centroids (throws DistError
 * otherwise) and returns rank 0's result.
 */
ShardedClusterResult shardedClusterProcesses(
    const Tensor &w, const ShardedClusterOptions &opts,
    const ProcessGroupOptions &pg);

} // namespace dist
} // namespace edkm

#endif // EDKM_DIST_SHARDED_CLUSTER_H_
