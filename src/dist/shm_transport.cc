#include "dist/shm_transport.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace edkm {
namespace dist {

namespace {

/** Per-process sequence number so concurrent segments get unique names. */
std::atomic<uint64_t> g_shm_seq{0};

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) / a * a;
}

size_t
headerBytes(int world)
{
    // Control word, then one ring header per edge, each on its own
    // cache line so producer/consumer counters never false-share.
    return alignUp(sizeof(ShmControl), 64) +
           static_cast<size_t>(world) * sizeof(ShmRingHeader);
}

} // namespace

ShmSegment::ShmSegment(int world, int64_t ring_bytes)
    : world_(world), ring_bytes_(static_cast<size_t>(ring_bytes))
{
    EDKM_CHECK(world_ >= 1, "ShmSegment: world must be >= 1");
    EDKM_CHECK(ring_bytes >= 64, "ShmSegment: ring capacity too small (",
               ring_bytes, " bytes)");
    mapping_bytes_ =
        alignUp(headerBytes(world_) +
                    static_cast<size_t>(world_) * ring_bytes_,
                4096);

    std::string name = "/edkm_" + std::to_string(::getpid()) + "_" +
                       std::to_string(g_shm_seq.fetch_add(1));
    int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
        throw DistError("dist: shm_open(" + name +
                        ") failed: " + std::strerror(errno));
    }
    // Unlink immediately: the mapping below (inherited by children via
    // fork) is the only handle anyone needs, and no /dev/shm entry can
    // outlive the processes — teardown is leak-free even under SIGKILL.
    ::shm_unlink(name.c_str());
    if (::ftruncate(fd, static_cast<off_t>(mapping_bytes_)) != 0) {
        int err = errno;
        ::close(fd);
        throw DistError("dist: ftruncate of shm segment failed: " +
                        std::string(std::strerror(err)));
    }
    base_ = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED, fd, 0);
    ::close(fd);
    if (base_ == MAP_FAILED) {
        base_ = nullptr;
        throw DistError("dist: mmap of shm segment failed: " +
                        std::string(std::strerror(errno)));
    }
    // ftruncate zero-fills; construct the atomics explicitly anyway.
    new (control()) ShmControl{};
    for (int e = 0; e < world_; ++e) {
        new (ringHeader(e)) ShmRingHeader{};
    }
}

ShmSegment::~ShmSegment()
{
    if (base_ != nullptr) {
        ::munmap(base_, mapping_bytes_);
    }
}

ShmControl *
ShmSegment::control() const
{
    return reinterpret_cast<ShmControl *>(base_);
}

ShmRingHeader *
ShmSegment::ringHeader(int edge) const
{
    uint8_t *p = static_cast<uint8_t *>(base_) +
                 alignUp(sizeof(ShmControl), 64);
    return reinterpret_cast<ShmRingHeader *>(p) + edge;
}

uint8_t *
ShmSegment::ringBuffer(int edge) const
{
    return static_cast<uint8_t *>(base_) + headerBytes(world_) +
           static_cast<size_t>(edge) * ring_bytes_;
}

void
ShmSegment::signalAbort(int rank)
{
    uint32_t expected = 0;
    control()->abortRankPlus1.compare_exchange_strong(
        expected, static_cast<uint32_t>(rank) + 1,
        std::memory_order_release, std::memory_order_relaxed);
}

ShmTransport::ShmTransport(ShmSegment &segment, int rank,
                           double timeout_sec)
    : Transport(segment.world(), rank, timeout_sec), segment_(segment)
{
    int send_edge = rank;
    int recv_edge = (rank - 1 + world_) % world_;
    send_hdr_ = segment_.ringHeader(send_edge);
    send_buf_ = segment_.ringBuffer(send_edge);
    recv_hdr_ = segment_.ringHeader(recv_edge);
    recv_buf_ = segment_.ringBuffer(recv_edge);
    cap_ = segment_.ringBytes();
}

void
ShmTransport::checkAbort() const
{
    uint32_t a =
        segment_.control()->abortRankPlus1.load(std::memory_order_acquire);
    if (a != 0) {
        throw DistError("dist: learner rank " + std::to_string(a - 1) +
                        " died mid-collective (abort raised by the "
                        "process group); rank " +
                        std::to_string(rank_) + " aborting");
    }
}

size_t
ShmTransport::trySendNext(const uint8_t *data, size_t len)
{
    checkAbort();
    uint64_t head = send_hdr_->head.load(std::memory_order_relaxed);
    uint64_t tail = send_hdr_->tail.load(std::memory_order_acquire);
    size_t free = cap_ - static_cast<size_t>(head - tail);
    size_t n = len < free ? len : free;
    if (n == 0) {
        return 0;
    }
    size_t off = static_cast<size_t>(head % cap_);
    size_t first = n < cap_ - off ? n : cap_ - off;
    std::memcpy(send_buf_ + off, data, first);
    std::memcpy(send_buf_, data + first, n - first);
    send_hdr_->head.store(head + n, std::memory_order_release);
    return n;
}

size_t
ShmTransport::tryRecvPrev(uint8_t *data, size_t len)
{
    checkAbort();
    uint64_t head = recv_hdr_->head.load(std::memory_order_acquire);
    uint64_t tail = recv_hdr_->tail.load(std::memory_order_relaxed);
    size_t avail = static_cast<size_t>(head - tail);
    size_t n = len < avail ? len : avail;
    if (n == 0) {
        return 0;
    }
    size_t off = static_cast<size_t>(tail % cap_);
    size_t first = n < cap_ - off ? n : cap_ - off;
    std::memcpy(data, recv_buf_ + off, first);
    std::memcpy(data + first, recv_buf_, n - first);
    recv_hdr_->tail.store(tail + n, std::memory_order_release);
    return n;
}

} // namespace dist
} // namespace edkm
