#include "dist/sharded_cluster.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>

#include "core/dkm.h"
#include "core/uniquify.h"
#include "dist/checkpoint_avg.h"
#include "dist/transport.h"
#include "kernels/attention.h"
#include "kernels/kernels.h"
#include "marshal/marshal.h"
#include "runtime/runtime.h"
#include "util/logging.h"
#include "util/serial.h"

namespace edkm {
namespace dist {

namespace {

void
appendF32Vec(std::vector<uint8_t> &buf, const std::vector<float> &v)
{
    serial::appendPod(buf, static_cast<uint64_t>(v.size()));
    const uint8_t *p = reinterpret_cast<const uint8_t *>(v.data());
    buf.insert(buf.end(), p, p + v.size() * sizeof(float));
}

std::vector<float>
readF32Vec(const std::vector<uint8_t> &buf, size_t &at)
{
    uint64_t count = serial::readPod<uint64_t>(buf, at);
    size_t bytes = static_cast<size_t>(count) * sizeof(float);
    EDKM_CHECK(bytes <= buf.size() - at,
               "sharded cluster result: truncated float vector");
    std::vector<float> v(static_cast<size_t>(count));
    std::memcpy(v.data(), buf.data() + at, bytes);
    at += bytes;
    return v;
}

std::vector<uint8_t>
serializeResult(const ShardedClusterResult &r)
{
    std::vector<uint8_t> buf;
    appendF32Vec(buf, r.weights);
    appendF32Vec(buf, r.centroids);
    serial::appendPod(buf, static_cast<int32_t>(r.iterations));
    serial::appendPod(buf, r.uniqueCount);
    serial::appendPod(buf, r.comm.allGathers);
    serial::appendPod(buf, r.comm.allGatherBytes);
    serial::appendPod(buf, r.comm.allReduces);
    serial::appendPod(buf, r.comm.allReduceBytes);
    serial::appendPod(buf, r.transportBytesSent);
    serial::appendPod(buf, r.transportBytesReceived);
    serial::appendPod(buf, r.marshalBufferReuses);
    return buf;
}

ShardedClusterResult
deserializeResult(const std::vector<uint8_t> &buf)
{
    ShardedClusterResult r;
    size_t at = 0;
    r.weights = readF32Vec(buf, at);
    r.centroids = readF32Vec(buf, at);
    r.iterations = serial::readPod<int32_t>(buf, at);
    r.uniqueCount = serial::readPod<int64_t>(buf, at);
    r.comm.allGathers = serial::readPod<int64_t>(buf, at);
    r.comm.allGatherBytes = serial::readPod<int64_t>(buf, at);
    r.comm.allReduces = serial::readPod<int64_t>(buf, at);
    r.comm.allReduceBytes = serial::readPod<int64_t>(buf, at);
    r.transportBytesSent = serial::readPod<int64_t>(buf, at);
    r.transportBytesReceived = serial::readPod<int64_t>(buf, at);
    r.marshalBufferReuses = serial::readPod<int64_t>(buf, at);
    return r;
}

/** Byte-exact comparison of two float vectors (bit-identity gate). */
bool
bitIdentical(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(float)) == 0);
}

} // namespace

ShardedClusterResult
shardedClusterRank(const Tensor &w, const ShardedClusterOptions &opts,
                   LearnerGroup &group)
{
    EDKM_CHECK(w.defined() && w.numel() > 0,
               "sharded cluster: empty weight");
    int64_t n = w.numel();
    int64_t k = 1 << opts.edkm.dkm.bits;
    int world = group.worldSize();
    Device dev = w.device();

    // Unique decomposition, warm start and temperature are computed
    // from the full weights on every rank (identical inputs, identical
    // outputs) — exactly the synchronous-training premise of the paper.
    UniqueDecomposition dec = uniquify(w, opts.edkm.halfKind);
    std::vector<float> u_vals;
    std::vector<float> u_cnts;
    int64_t U;
    if (opts.edkm.uniquify) {
        u_vals = dec.values;
        u_cnts = dec.counts;
        U = dec.uniqueCount();
    } else {
        u_vals = w.toVector();
        u_cnts.assign(static_cast<size_t>(n), 1.0f);
        U = n;
    }
    std::vector<float> c =
        DkmLayer::initCentroids(dec.values, dec.counts, opts.edkm.dkm);
    float tau = DkmLayer::resolveTemperature(opts.edkm.dkm, dec.values,
                                             dec.counts);
    Tensor u_col = Tensor::fromVector(u_vals, {U, 1}, dev);

    // Optional overlap: prefetch each iteration's table shard through a
    // double-buffered async marshal context. Offload is pure data
    // movement — it never feeds back into the numbers below.
    std::unique_ptr<MarshalContext> marshal;
    if (opts.overlapOffload) {
        MarshalConfig mc;
        mc.detection = MarshalConfig::Detection::kStorageId;
        mc.asyncOffload = true;
        mc.doubleBuffer = true;
        mc.minOffloadBytes = 1;
        marshal = std::make_unique<MarshalContext>(mc);
    }

    auto shard_table = [&](int r, const Tensor &c_row) {
        auto [b, e] = group.shardRange(U, r);
        return kernels::attentionTable(u_col.slice(0, b, e), c_row, tau);
    };

    Tensor table_own;            // own shard's table, last iteration
    std::vector<float> c_last_in; // centroids that table was built from
    int iters = 0;
    CheckpointAverager lawa(std::max(1, opts.lawaK));

    for (int it = 0; it < opts.edkm.dkm.maxIters; ++it) {
        c_last_in = c;
        Tensor c_row = Tensor::fromVector(c, {1, k}, dev);

        // Per-rank partial of the pooled update: fold the shard's rows
        // into one [2k] vector (attention mass m, then value sum nv),
        // double-accumulated in row order within the rank.
        auto partial = [&](int r) -> Tensor {
            Tensor p = Tensor::zeros({2 * k}, DType::kF32, Device::cpu());
            auto [b, e] = group.shardRange(U, r);
            if (e == b) {
                return p;
            }
            Tensor tbl = shard_table(r, c_row);
            if (r == group.rank()) {
                table_own = tbl;
                if (marshal) {
                    marshal->offloadAsync(tbl);
                }
            }
            const float *pt = tbl.rawData<const float>();
            float *pp = p.rawData<float>();
            std::vector<double> acc(static_cast<size_t>(2 * k), 0.0);
            for (int64_t row = b; row < e; ++row) {
                const float *trow = pt + (row - b) * k;
                double cv = u_cnts[static_cast<size_t>(row)];
                double wv = cv * u_vals[static_cast<size_t>(row)];
                for (int64_t j = 0; j < k; ++j) {
                    acc[static_cast<size_t>(j)] += cv * trow[j];
                    acc[static_cast<size_t>(k + j)] += wv * trow[j];
                }
            }
            for (int64_t i = 0; i < 2 * k; ++i) {
                pp[i] = static_cast<float>(acc[static_cast<size_t>(i)]);
            }
            return p;
        };

        Tensor mn = group.allReduceSumDet(2 * k, partial);
        const float *pmn = mn.rawData<const float>();
        float delta = 0.0f;
        for (int64_t j = 0; j < k; ++j) {
            float cn = pmn[k + j] / (pmn[j] + 1e-12f);
            delta = std::max(delta,
                             std::fabs(cn - c[static_cast<size_t>(j)]));
            c[static_cast<size_t>(j)] = cn;
        }
        iters = it + 1;
        if (opts.lawaK > 0) {
            lawa.push(c);
        }
        if (delta < opts.edkm.dkm.convergenceEps) {
            break;
        }
    }

    // LAWA: local latest-k average (identical on every rank), then the
    // cross-learner mean via the same deterministic all-reduce — this
    // is where real per-learner checkpoints would diverge and be pulled
    // back together.
    std::vector<float> c_final = c;
    if (opts.lawaK > 0) {
        std::vector<float> local = lawa.average();
        Tensor summed = group.allReduceSumDet(k, [&](int) {
            return Tensor::fromVector(local, {k}, Device::cpu());
        });
        const float *ps = summed.rawData<const float>();
        float inv = 1.0f / static_cast<float>(world);
        for (int64_t j = 0; j < k; ++j) {
            c_final[static_cast<size_t>(j)] = ps[j] * inv;
        }
    }

    // Final soft weights: each rank turns its table rows into per-row
    // dot products with the final centroids, then one sharded
    // all-gather assembles the [U] vector everywhere.
    Tensor c_last_row = Tensor::fromVector(c_last_in, {1, k}, dev);
    auto shard_fn = [&](int r) -> Tensor {
        auto [b, e] = group.shardRange(U, r);
        Tensor tbl = (r == group.rank() && table_own.defined())
                         ? table_own
                         : shard_table(r, c_last_row);
        Tensor out =
            Tensor::empty({e - b, 1}, DType::kF32, Device::cpu());
        const float *pt = tbl.rawData<const float>();
        float *po = out.rawData<float>();
        for (int64_t row = 0; row < e - b; ++row) {
            double dot = 0.0;
            for (int64_t j = 0; j < k; ++j) {
                dot += static_cast<double>(pt[row * k + j]) *
                       c_final[static_cast<size_t>(j)];
            }
            po[row] = static_cast<float>(dot);
        }
        return out;
    };
    Tensor w_unique = group.allGatherShards(U, 1, shard_fn);

    ShardedClusterResult res;
    if (opts.edkm.uniquify) {
        res.weights.resize(static_cast<size_t>(n));
        const float *pu = w_unique.rawData<const float>();
        const uint16_t *pi = dec.indexList.rawData<const uint16_t>();
        float *po = res.weights.data();
        runtime::parallelFor(0, n, runtime::grainFor(n, 2),
                             [&](int64_t cb, int64_t ce) {
                                 kernels::gatherU16(pu, pi + cb, ce - cb,
                                                    po + cb);
                             });
    } else {
        res.weights = w_unique.toVector();
    }
    res.centroids = std::move(c_final);
    res.iterations = iters;
    res.uniqueCount = opts.edkm.uniquify ? dec.uniqueCount() : 0;
    res.comm = group.stats();
    if (group.crossProcess()) {
        res.transportBytesSent = group.transport()->bytesSent();
        res.transportBytesReceived = group.transport()->bytesReceived();
    }
    if (marshal) {
        marshal->sync();
        res.marshalBufferReuses = marshal->stats().bufferReuses;
    }
    return res;
}

ShardedClusterResult
shardedClusterSimulate(const Tensor &w, const ShardedClusterOptions &opts,
                       int world)
{
    LearnerGroup group(world, 0);
    return shardedClusterRank(w, opts, group);
}

ShardedClusterResult
shardedClusterProcesses(const Tensor &w, const ShardedClusterOptions &opts,
                        const ProcessGroupOptions &pg)
{
    std::vector<std::vector<uint8_t>> blobs =
        ProcessGroup::run(pg, [&w, &opts](Transport &transport) {
            LearnerGroup group(transport);
            ShardedClusterResult r = shardedClusterRank(w, opts, group);
            return serializeResult(r);
        });

    std::vector<ShardedClusterResult> all;
    all.reserve(blobs.size());
    for (const std::vector<uint8_t> &blob : blobs) {
        all.push_back(deserializeResult(blob));
    }
    for (size_t r = 1; r < all.size(); ++r) {
        if (!bitIdentical(all[0].weights, all[r].weights) ||
            !bitIdentical(all[0].centroids, all[r].centroids)) {
            throw DistError(
                "dist: bit-identity violated between learner rank 0 "
                "and rank " +
                std::to_string(r) + " (sharded cluster)");
        }
    }
    return all[0];
}

} // namespace dist
} // namespace edkm
