/**
 * @file
 * Latest-k checkpoint averaging (LAWA, "Stop Wasting My Time!" — see
 * PAPERS.md): keeping a short window of per-iteration checkpoints and
 * averaging them is a near-free convergence accelerator once real
 * per-learner checkpoints exist. CheckpointAverager maintains that
 * window for one vector-valued state (here: the centroid vector).
 *
 * Determinism: the average is accumulated in doubles over the window
 * in oldest-to-newest order, so it is bit-identical regardless of how
 * the window was filled or on which learner it runs.
 */

#ifndef EDKM_DIST_CHECKPOINT_AVG_H_
#define EDKM_DIST_CHECKPOINT_AVG_H_

#include <deque>
#include <vector>

namespace edkm {
namespace dist {

class CheckpointAverager
{
  public:
    /** Keep the latest @p k checkpoints; k >= 1 (fatal otherwise). */
    explicit CheckpointAverager(int k);

    /** Record one checkpoint (evicts the oldest beyond k). */
    void push(const std::vector<float> &checkpoint);

    /** Checkpoints currently held (min(k, pushes)). */
    int size() const { return static_cast<int>(window_.size()); }

    /**
     * Elementwise mean of the held checkpoints, double-accumulated in
     * oldest-to-newest order. Fatal when empty.
     */
    std::vector<float> average() const;

  private:
    int k_;
    std::deque<std::vector<float>> window_;
};

} // namespace dist
} // namespace edkm

#endif // EDKM_DIST_CHECKPOINT_AVG_H_
