/**
 * @file
 * Fork + POSIX shared-memory ring transport.
 *
 * ShmSegment is created by the parent *before* fork: one anonymous-ish
 * POSIX shm object (shm_open with a unique /edkm_<pid>_<seq> name,
 * ftruncate, MAP_SHARED mmap) that is shm_unlink-ed immediately after
 * mapping. Children inherit the mapping through fork, so the name never
 * needs to exist again — the segment is leak-free by construction: no
 * /dev/shm entry survives the call, even if every process is SIGKILLed.
 *
 * Layout: a control word (the abort flag the parent raises when a child
 * dies, so blocked siblings throw DistError instead of spinning
 * forever) followed by one cache-line-aligned SPSC byte ring per
 * directed ring edge e (producer: rank e, consumer: rank e+1 mod L).
 * head/tail are monotonically increasing uint64 byte counts; the
 * producer owns head, the consumer owns tail, acquire/release pairs
 * order the payload bytes.
 */

#ifndef EDKM_DIST_SHM_TRANSPORT_H_
#define EDKM_DIST_SHM_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "dist/transport.h"

namespace edkm {
namespace dist {

/** Shared control/ring headers living inside the segment. */
struct ShmControl
{
    /** 0 = healthy; r+1 = the parent observed rank r die. */
    std::atomic<uint32_t> abortRankPlus1;
};

struct alignas(64) ShmRingHeader
{
    std::atomic<uint64_t> head; ///< bytes ever written (producer-owned)
    std::atomic<uint64_t> tail; ///< bytes ever read (consumer-owned)
};

/**
 * The whole-segment mapping, created pre-fork and shared (via fork)
 * with every learner. The parent keeps it alive for abort signalling;
 * children build ShmTransport views over it.
 */
class ShmSegment
{
  public:
    /** Map a fresh segment for @p world ranks with @p ring_bytes
     *  capacity per directed edge. Unlinks the shm name before
     *  returning. */
    ShmSegment(int world, int64_t ring_bytes);
    ~ShmSegment();

    ShmSegment(const ShmSegment &) = delete;
    ShmSegment &operator=(const ShmSegment &) = delete;

    int world() const { return world_; }
    size_t ringBytes() const { return ring_bytes_; }

    /** Parent-side: mark @p rank dead so blocked peers throw. */
    void signalAbort(int rank);

    ShmControl *control() const;
    ShmRingHeader *ringHeader(int edge) const;
    uint8_t *ringBuffer(int edge) const;

  private:
    int world_;
    size_t ring_bytes_;
    size_t mapping_bytes_ = 0;
    void *base_ = nullptr;
};

/** One rank's endpoint over an ShmSegment (non-owning view). */
class ShmTransport : public Transport
{
  public:
    ShmTransport(ShmSegment &segment, int rank, double timeout_sec);

    size_t trySendNext(const uint8_t *data, size_t len) override;
    size_t tryRecvPrev(uint8_t *data, size_t len) override;

  private:
    /** Throw DistError when the parent flagged a dead peer. */
    void checkAbort() const;

    ShmSegment &segment_;
    ShmRingHeader *send_hdr_;
    uint8_t *send_buf_;
    ShmRingHeader *recv_hdr_;
    uint8_t *recv_buf_;
    size_t cap_;
};

} // namespace dist
} // namespace edkm

#endif // EDKM_DIST_SHM_TRANSPORT_H_
