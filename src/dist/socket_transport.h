/**
 * @file
 * Localhost socket ring transport (the EDKM_DIST_TRANSPORT=socket
 * fallback for hosts without usable POSIX shm).
 *
 * SocketRing is created by the parent *before* fork: one nonblocking
 * AF_UNIX SOCK_STREAM socketpair per directed ring edge e (writer:
 * rank e, reader: rank e+1 mod L). fd inheritance across fork is the
 * rendezvous — no filesystem paths, no ports, nothing to leak. After
 * forking, each child keeps exactly its two fds (write-to-next,
 * read-from-prev) and closes the rest; the parent closes all of them.
 *
 * Failure model: when a learner dies, the kernel closes its fds, so
 * its successor reads EOF and its predecessor gets EPIPE/ECONNRESET —
 * both surface as DistError naming the direction, without any shared
 * state.
 */

#ifndef EDKM_DIST_SOCKET_TRANSPORT_H_
#define EDKM_DIST_SOCKET_TRANSPORT_H_

#include <vector>

#include "dist/transport.h"

namespace edkm {
namespace dist {

/** All ring-edge fds, parent-owned until distributed by fork. */
class SocketRing
{
  public:
    explicit SocketRing(int world);
    ~SocketRing();

    SocketRing(const SocketRing &) = delete;
    SocketRing &operator=(const SocketRing &) = delete;

    int world() const { return world_; }

    /** fd rank r writes to (toward rank r+1). */
    int sendFd(int rank) const;
    /** fd rank r reads from (from rank r-1). */
    int recvFd(int rank) const;

    /** Child-side: close every fd that does not belong to @p rank. */
    void closeAllExcept(int rank);
    /** Parent-side: close everything (children hold their copies). */
    void closeAll();

  private:
    int world_;
    std::vector<int> write_fds_; ///< edge e: rank e's send endpoint
    std::vector<int> read_fds_;  ///< edge e: rank e+1's recv endpoint
};

/** One rank's endpoint over an inherited SocketRing. */
class SocketTransport : public Transport
{
  public:
    SocketTransport(SocketRing &ring, int rank, double timeout_sec);

    size_t trySendNext(const uint8_t *data, size_t len) override;
    size_t tryRecvPrev(uint8_t *data, size_t len) override;

  private:
    int send_fd_;
    int recv_fd_;
};

} // namespace dist
} // namespace edkm

#endif // EDKM_DIST_SOCKET_TRANSPORT_H_
