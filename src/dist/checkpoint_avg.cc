#include "dist/checkpoint_avg.h"

#include "util/logging.h"

namespace edkm {
namespace dist {

CheckpointAverager::CheckpointAverager(int k) : k_(k)
{
    EDKM_CHECK(k_ >= 1, "CheckpointAverager: k must be >= 1, got ", k_);
}

void
CheckpointAverager::push(const std::vector<float> &checkpoint)
{
    if (!window_.empty()) {
        EDKM_CHECK(checkpoint.size() == window_.front().size(),
                   "CheckpointAverager: checkpoint size changed (",
                   checkpoint.size(), " vs ", window_.front().size(), ")");
    }
    window_.push_back(checkpoint);
    while (static_cast<int>(window_.size()) > k_) {
        window_.pop_front();
    }
}

std::vector<float>
CheckpointAverager::average() const
{
    EDKM_CHECK(!window_.empty(), "CheckpointAverager: no checkpoints");
    size_t n = window_.front().size();
    std::vector<double> acc(n, 0.0);
    for (const std::vector<float> &ckpt : window_) {
        for (size_t i = 0; i < n; ++i) {
            acc[i] += ckpt[i];
        }
    }
    double inv = 1.0 / static_cast<double>(window_.size());
    std::vector<float> out(n);
    for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(acc[i] * inv);
    }
    return out;
}

} // namespace dist
} // namespace edkm
