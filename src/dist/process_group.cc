#include "dist/process_group.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/shm_transport.h"
#include "dist/socket_transport.h"
#include "runtime/runtime.h"

namespace edkm {
namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

/** Child -> parent frame tags. */
constexpr uint8_t kTagResult = 'R';
constexpr uint8_t kTagError = 'E';

/** Blocking full write of the child's result frame (MSG_NOSIGNAL: a
 *  dead parent must not SIGPIPE the child out of its error path). */
bool
writeAll(int fd, const uint8_t *data, size_t len)
{
    size_t done = 0;
    while (done < len) {
        ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

std::vector<uint8_t>
frame(uint8_t tag, const uint8_t *payload, size_t len)
{
    std::vector<uint8_t> out;
    out.reserve(9 + len);
    out.push_back(tag);
    uint64_t n = len;
    const uint8_t *pn = reinterpret_cast<const uint8_t *>(&n);
    out.insert(out.end(), pn, pn + 8);
    out.insert(out.end(), payload, payload + len);
    return out;
}

/** Parent-side per-child inbox: accumulates bytes until one complete
 *  frame is parsed. */
struct Inbox
{
    std::vector<uint8_t> buf;
    bool done = false;
    uint8_t tag = 0;
    std::vector<uint8_t> payload;

    /** Returns false on a malformed frame. */
    bool
    tryParse()
    {
        if (done || buf.size() < 9) {
            return true;
        }
        uint64_t len = 0;
        std::memcpy(&len, buf.data() + 1, 8);
        if (len > (1ull << 32)) {
            return false; // absurd length: corrupted stream
        }
        if (buf.size() < 9 + len) {
            return true;
        }
        tag = buf[0];
        payload.assign(buf.begin() + 9,
                       buf.begin() + 9 + static_cast<size_t>(len));
        done = true;
        return tag == kTagResult || tag == kTagError;
    }
};

/** Everything the parent needs to tear the group down exactly once. */
struct Teardown
{
    std::vector<pid_t> pids;
    ShmSegment *segment = nullptr;

    void
    killAll(int dead_rank)
    {
        if (segment != nullptr) {
            // Unblock siblings spinning in an shm collective before
            // (and regardless of) the SIGKILLs below.
            segment->signalAbort(dead_rank < 0 ? 0 : dead_rank);
        }
        for (pid_t pid : pids) {
            if (pid > 0) {
                ::kill(pid, SIGKILL);
            }
        }
        for (pid_t &pid : pids) {
            if (pid > 0) {
                int status = 0;
                ::waitpid(pid, &status, 0);
                pid = -1;
            }
        }
    }
};

[[noreturn]] void
runChild(int rank, int control_fd, const ProcessGroupOptions &options,
         ShmSegment *segment, SocketRing *ring, const LearnerFn &fn)
{
    // First thing after fork: the inherited thread pool's workers do
    // not exist in this process; swap in a live pool before any
    // parallel loop (or pool-joining destructor) can touch the husk.
    runtime::Runtime::instance().resetAfterFork(options.childThreads);

    int exit_code = 1;
    try {
        std::unique_ptr<Transport> transport;
        if (ring != nullptr) {
            ring->closeAllExcept(rank);
            transport = std::make_unique<SocketTransport>(
                *ring, rank, options.timeoutSec);
        } else {
            transport = std::make_unique<ShmTransport>(
                *segment, rank, options.timeoutSec);
        }
        // Rendezvous: prove the whole ring is live before user work.
        transport->barrier();
        std::vector<uint8_t> result = fn(*transport);
        std::vector<uint8_t> msg =
            frame(kTagResult, result.data(), result.size());
        if (writeAll(control_fd, msg.data(), msg.size())) {
            exit_code = 0;
        }
    } catch (const std::exception &e) {
        std::string what = e.what();
        std::vector<uint8_t> msg = frame(
            kTagError, reinterpret_cast<const uint8_t *>(what.data()),
            what.size());
        writeAll(control_fd, msg.data(), msg.size());
    } catch (...) {
        const char *what = "unknown exception in learner";
        std::vector<uint8_t> msg =
            frame(kTagError, reinterpret_cast<const uint8_t *>(what),
                  std::strlen(what));
        writeAll(control_fd, msg.data(), msg.size());
    }
    // _exit, not exit: atexit handlers, stdio flushes and sanitizer
    // exit hooks belong to the parent; running them here would corrupt
    // shared fds and double-report.
    ::_exit(exit_code);
}

} // namespace

std::vector<std::vector<uint8_t>>
ProcessGroup::run(const ProcessGroupOptions &options, const LearnerFn &fn)
{
    EDKM_CHECK(options.world >= 1, "ProcessGroup: world must be >= 1, got ",
               options.world);
    EDKM_CHECK(options.timeoutSec > 0.0,
               "ProcessGroup: timeout must be > 0");
    int world = options.world;

    // Transport resources, created before fork so inheritance is the
    // rendezvous. The shm segment is unlinked inside its constructor.
    std::unique_ptr<ShmSegment> segment;
    std::unique_ptr<SocketRing> ring;
    if (options.kind == TransportKind::kShm) {
        segment = std::make_unique<ShmSegment>(world,
                                               options.shmRingBytes);
    } else {
        ring = std::make_unique<SocketRing>(world);
    }

    // One control socketpair per rank: [0] parent (nonblocking), [1]
    // child (blocking writes).
    std::vector<int> parent_fds(static_cast<size_t>(world), -1);
    std::vector<int> child_fds(static_cast<size_t>(world), -1);
    auto close_fd = [](int &fd) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    };
    auto close_all_control = [&] {
        for (int r = 0; r < world; ++r) {
            close_fd(parent_fds[static_cast<size_t>(r)]);
            close_fd(child_fds[static_cast<size_t>(r)]);
        }
    };
    for (int r = 0; r < world; ++r) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            int err = errno;
            close_all_control();
            throw DistError("dist: control socketpair failed: " +
                            std::string(std::strerror(err)));
        }
        int flags = ::fcntl(sv[0], F_GETFL, 0);
        ::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);
        parent_fds[static_cast<size_t>(r)] = sv[0];
        child_fds[static_cast<size_t>(r)] = sv[1];
    }

    Teardown teardown;
    teardown.pids.assign(static_cast<size_t>(world), -1);
    teardown.segment = segment.get();

    for (int r = 0; r < world; ++r) {
        // lint:allow(raw-thread) the one sanctioned process-spawn site:
        // learners are real OS processes by design (the whole point of
        // the dist subsystem); determinism is preserved because every
        // learner runs the same deterministic code over a fixed shard
        // layout and collectives combine in rank order.
        pid_t pid = ::fork();
        if (pid < 0) {
            int err = errno;
            teardown.killAll(-1);
            close_all_control();
            throw DistError("dist: fork of learner rank " +
                            std::to_string(r) +
                            " failed: " + std::strerror(err));
        }
        if (pid == 0) {
            // Child: drop every parent-side fd and the other children's
            // control fds, then run the learner. Never returns.
            for (int o = 0; o < world; ++o) {
                close_fd(parent_fds[static_cast<size_t>(o)]);
                if (o != r) {
                    close_fd(child_fds[static_cast<size_t>(o)]);
                }
            }
            runChild(r, child_fds[static_cast<size_t>(r)], options,
                     segment.get(), ring.get(), fn);
        }
        teardown.pids[static_cast<size_t>(r)] = pid;
    }

    // Parent: not a ring participant. Drop the child-side control fds
    // (so child death yields EOF on our side) and every ring fd (so a
    // dead learner's neighbors see EOF/EPIPE instead of a silent stall).
    for (int r = 0; r < world; ++r) {
        close_fd(child_fds[static_cast<size_t>(r)]);
    }
    if (ring) {
        ring->closeAll();
    }

    std::vector<Inbox> inbox(static_cast<size_t>(world));
    auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.timeoutSec));

    auto fail = [&](int dead_rank,
                    const std::string &why) -> std::vector<std::vector<uint8_t>> {
        teardown.killAll(dead_rank);
        close_all_control();
        throw DistError(why);
    };

    int remaining = world;
    std::vector<uint8_t> chunk(64 * 1024);
    while (remaining > 0) {
        std::vector<struct pollfd> pfds;
        std::vector<int> pfd_rank;
        for (int r = 0; r < world; ++r) {
            if (!inbox[static_cast<size_t>(r)].done) {
                pfds.push_back({parent_fds[static_cast<size_t>(r)],
                                POLLIN, 0});
                pfd_rank.push_back(r);
            }
        }
        auto now = Clock::now();
        if (now >= deadline) {
            return fail(-1, "dist: timed out after " +
                                std::to_string(options.timeoutSec) +
                                "s waiting for " +
                                std::to_string(remaining) + " of " +
                                std::to_string(world) +
                                " learners (wedged rendezvous or "
                                "collective)");
        }
        int wait_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        int rc = ::poll(pfds.data(),
                        static_cast<nfds_t>(pfds.size()),
                        wait_ms < 1 ? 1 : wait_ms);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            return fail(-1, "dist: poll on learner control fds failed: " +
                                std::string(std::strerror(errno)));
        }
        for (size_t i = 0; i < pfds.size(); ++i) {
            if (pfds[i].revents == 0) {
                continue;
            }
            int r = pfd_rank[i];
            Inbox &ib = inbox[static_cast<size_t>(r)];
            // Drain whatever is available; EOF before a complete frame
            // means the child died without reporting.
            while (true) {
                ssize_t n = ::recv(pfds[i].fd, chunk.data(),
                                   chunk.size(), 0);
                if (n > 0) {
                    ib.buf.insert(ib.buf.end(), chunk.data(),
                                  chunk.data() + n);
                    continue;
                }
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    break;
                }
                if (n < 0 && errno == EINTR) {
                    continue;
                }
                // n == 0 (EOF) or a hard error.
                if (!ib.tryParse() || !ib.done) {
                    return fail(
                        r, "dist: learner rank " + std::to_string(r) +
                               " of " + std::to_string(world) +
                               " exited without a result (killed or "
                               "crashed mid-collective)");
                }
                break;
            }
            if (!ib.tryParse()) {
                return fail(r, "dist: corrupted control frame from "
                               "learner rank " +
                                   std::to_string(r));
            }
            if (ib.done) {
                if (ib.tag == kTagError) {
                    std::string what(ib.payload.begin(),
                                     ib.payload.end());
                    return fail(r, "dist: learner rank " +
                                       std::to_string(r) + " failed: " +
                                       what);
                }
                --remaining;
            }
        }
    }

    // Every rank reported; reap the children (they _exit right after
    // their final write).
    for (pid_t &pid : teardown.pids) {
        if (pid > 0) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            pid = -1;
        }
    }
    close_all_control();

    std::vector<std::vector<uint8_t>> results;
    results.reserve(static_cast<size_t>(world));
    for (int r = 0; r < world; ++r) {
        results.push_back(std::move(inbox[static_cast<size_t>(r)].payload));
    }
    return results;
}

} // namespace dist
} // namespace edkm
