// NEON backend instantiation. This TU is compiled with the
// EDKM_COMPILE_NEON definition only when the build host targets an ARM
// architecture with NEON (architectural on aarch64) and the EDKM_SIMD
// CMake option is ON; otherwise it compiles to nothing.

#if defined(EDKM_COMPILE_NEON) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))

#include "kernels/kernels_impl.h"

namespace edkm {
namespace kernels {

const KernelTable &
neonKernelTable()
{
    static const KernelTable t =
        impl::makeKernelTable<NeonTag>(Backend::kNeon);
    return t;
}

} // namespace kernels
} // namespace edkm

#endif // EDKM_COMPILE_NEON && __ARM_NEON
