// AVX-512 backend instantiation. This TU is compiled with -mavx512f
// -ffp-contract=off (and the EDKM_COMPILE_AVX512 definition) only when
// the build host targets x86, the compiler knows the flag and the
// EDKM_SIMD CMake option allows it; otherwise it compiles to nothing.
// -ffp-contract=off matters here: -mavx512f drags in FMA, and the
// scalar tail loops of the shared kernel templates must not be
// contracted into fused multiply-adds or this backend would break the
// bit-identity contract. Dispatch in kernels.cc additionally checks
// cpuid (avx512f) at runtime before ever calling into this table.
//
// Elementwise kernels run 16 lanes wide; reductions go through the
// 8-lane ReduceTag mapping (simd.h) so the virtual kAccLanes
// accumulator keeps its shape.

#if defined(EDKM_COMPILE_AVX512) && defined(__AVX512F__)

#include "kernels/kernels_impl.h"

namespace edkm {
namespace kernels {

const KernelTable &
avx512KernelTable()
{
    static const KernelTable t =
        impl::makeKernelTable<Avx512Tag>(Backend::kAvx512);
    return t;
}

} // namespace kernels
} // namespace edkm

#endif // EDKM_COMPILE_AVX512 && __AVX512F__
