/**
 * @file
 * Portable fixed-width SIMD vector abstraction.
 *
 * `Vec<Tag>` wraps one hardware vector register of f32 lanes behind a
 * uniform interface; the kernel templates in kernels_impl.h are written
 * once against it and instantiated per backend translation unit:
 *
 *   - `ScalarTag` — 1-lane reference, always compiled, no intrinsics.
 *   - `Avx2Tag`   — 8 lanes, only where the TU is built with -mavx2.
 *   - `Avx512Tag` — 16 lanes, only where the TU is built with -mavx512f.
 *   - `NeonTag`   — 4 lanes, only where the TU targets ARM NEON.
 *
 * Numerics contract: every Vec operation maps to the IEEE-754 single
 * operation of its scalar counterpart (add/sub/mul/div/sqrt/min/max are
 * exact; no FMA contraction — backend TUs compile with -ffp-contract=off
 * wherever the target ISA would otherwise allow it). Reduction kernels
 * additionally fix a *virtual* accumulator width of `kAccLanes` (8)
 * independent of the hardware width, so every backend — including the
 * scalar reference — produces bit-identical results. A backend wider
 * than kAccLanes runs the reductions on its `ReduceTag` half-width
 * sibling (AVX-512 reduces through the 8-lane AVX2 type) so the virtual
 * accumulator never changes shape.
 */

#ifndef EDKM_KERNELS_SIMD_H_
#define EDKM_KERNELS_SIMD_H_

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace edkm {
namespace kernels {

// Everything below lives in an anonymous namespace on purpose: these
// inline templates are instantiated both by the plain-flags TU
// (kernels.cc) and by ISA-specific TUs (kernels_avx2.cc built with
// -mavx2). With external linkage the identical COMDAT symbols could be
// deduplicated by the linker into the AVX-encoded copy, and the scalar
// fallback would then execute AVX instructions on a CPU without them —
// defeating the runtime dispatch. Internal linkage keeps every TU's
// instantiations compiled with that TU's own flags.
namespace {

struct ScalarTag
{
};
struct Avx2Tag
{
};
struct Avx512Tag
{
};
struct NeonTag
{
};

template <typename Tag>
struct Vec;

// ----------------------------------------------------------------------
// Scalar reference backend: 1 lane, plain float ops.
// ----------------------------------------------------------------------

template <>
struct Vec<ScalarTag>
{
    static constexpr int kWidth = 1;
    float v;

    static Vec
    load(const float *p)
    {
        return {*p};
    }
    static Vec
    broadcast(float x)
    {
        return {x};
    }
    void
    store(float *p) const
    {
        *p = v;
    }
    float
    lane(int) const
    {
        return v;
    }
    /** Lane-wise table load: lane l reads base[idx[l]] (kWidth indices). */
    static Vec
    gather(const float *base, const int32_t *idx)
    {
        return {base[idx[0]]};
    }

    friend Vec
    operator+(Vec a, Vec b)
    {
        return {a.v + b.v};
    }
    friend Vec
    operator-(Vec a, Vec b)
    {
        return {a.v - b.v};
    }
    friend Vec
    operator*(Vec a, Vec b)
    {
        return {a.v * b.v};
    }
    friend Vec
    operator/(Vec a, Vec b)
    {
        return {a.v / b.v};
    }

    /** x86 maxps semantics: returns @p b when the compare is unordered. */
    static Vec
    max(Vec a, Vec b)
    {
        return {a.v > b.v ? a.v : b.v};
    }
    static Vec
    min(Vec a, Vec b)
    {
        return {a.v < b.v ? a.v : b.v};
    }
    static Vec
    abs(Vec a)
    {
        return {std::fabs(a.v)};
    }
    static Vec
    sqrt(Vec a)
    {
        return {std::sqrt(a.v)};
    }
    static Vec
    floor(Vec a)
    {
        return {std::floor(a.v)};
    }

    /** Lane mask of a < b (all-ones float bit pattern when true). */
    static Vec
    cmpLt(Vec a, Vec b)
    {
        uint32_t bits = a.v < b.v ? 0xffffffffu : 0u;
        Vec r;
        std::memcpy(&r.v, &bits, 4);
        return r;
    }
    /** Lane mask of a == b (ordered; NaN lanes clear). */
    static Vec
    cmpEq(Vec a, Vec b)
    {
        uint32_t bits = a.v == b.v ? 0xffffffffu : 0u;
        Vec r;
        std::memcpy(&r.v, &bits, 4);
        return r;
    }
    /** Bitwise AND of two lane masks. */
    static Vec
    maskAnd(Vec a, Vec b)
    {
        uint32_t ba, bb;
        std::memcpy(&ba, &a.v, 4);
        std::memcpy(&bb, &b.v, 4);
        uint32_t bits = ba & bb;
        Vec r;
        std::memcpy(&r.v, &bits, 4);
        return r;
    }
    /** Bitwise OR of two lane masks. */
    static Vec
    maskOr(Vec a, Vec b)
    {
        uint32_t ba, bb;
        std::memcpy(&ba, &a.v, 4);
        std::memcpy(&bb, &b.v, 4);
        uint32_t bits = ba | bb;
        Vec r;
        std::memcpy(&r.v, &bits, 4);
        return r;
    }
    /** Per-lane select: mask lane set -> @p a, else @p b. */
    static Vec
    blend(Vec mask, Vec a, Vec b)
    {
        uint32_t bits;
        std::memcpy(&bits, &mask.v, 4);
        return bits ? a : b;
    }

    /** 2^n for a lane-wise integral-valued @p n in [-126, 127]. */
    static Vec
    pow2Int(Vec n)
    {
        int32_t e = static_cast<int32_t>(n.v);
        uint32_t bits = static_cast<uint32_t>(e + 127) << 23;
        Vec r;
        std::memcpy(&r.v, &bits, 4);
        return r;
    }
};

// ----------------------------------------------------------------------
// AVX2 backend: 8 f32 lanes. Compiled only in TUs built with -mavx2.
// ----------------------------------------------------------------------

#if defined(__AVX2__)
template <>
struct Vec<Avx2Tag>
{
    static constexpr int kWidth = 8;
    __m256 v;

    static Vec
    load(const float *p)
    {
        return {_mm256_loadu_ps(p)};
    }
    static Vec
    broadcast(float x)
    {
        return {_mm256_set1_ps(x)};
    }
    void
    store(float *p) const
    {
        _mm256_storeu_ps(p, v);
    }
    float
    lane(int i) const
    {
        alignas(32) float tmp[8];
        _mm256_store_ps(tmp, v);
        return tmp[i];
    }
    static Vec
    gather(const float *base, const int32_t *idx)
    {
        __m256i vi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx));
        return {_mm256_i32gather_ps(base, vi, 4)};
    }

    friend Vec
    operator+(Vec a, Vec b)
    {
        return {_mm256_add_ps(a.v, b.v)};
    }
    friend Vec
    operator-(Vec a, Vec b)
    {
        return {_mm256_sub_ps(a.v, b.v)};
    }
    friend Vec
    operator*(Vec a, Vec b)
    {
        return {_mm256_mul_ps(a.v, b.v)};
    }
    friend Vec
    operator/(Vec a, Vec b)
    {
        return {_mm256_div_ps(a.v, b.v)};
    }

    static Vec
    max(Vec a, Vec b)
    {
        // maxps(a, b) == (a > b ? a : b); unordered lanes yield b —
        // exactly the scalar reference's semantics.
        return {_mm256_max_ps(a.v, b.v)};
    }
    static Vec
    min(Vec a, Vec b)
    {
        return {_mm256_min_ps(a.v, b.v)};
    }
    static Vec
    abs(Vec a)
    {
        __m256 sign = _mm256_set1_ps(-0.0f);
        return {_mm256_andnot_ps(sign, a.v)};
    }
    static Vec
    sqrt(Vec a)
    {
        return {_mm256_sqrt_ps(a.v)};
    }
    static Vec
    floor(Vec a)
    {
        return {_mm256_floor_ps(a.v)};
    }

    static Vec
    cmpLt(Vec a, Vec b)
    {
        return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)};
    }
    static Vec
    cmpEq(Vec a, Vec b)
    {
        return {_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ)};
    }
    static Vec
    maskAnd(Vec a, Vec b)
    {
        return {_mm256_and_ps(a.v, b.v)};
    }
    static Vec
    maskOr(Vec a, Vec b)
    {
        return {_mm256_or_ps(a.v, b.v)};
    }
    static Vec
    blend(Vec mask, Vec a, Vec b)
    {
        return {_mm256_blendv_ps(b.v, a.v, mask.v)};
    }

    static Vec
    pow2Int(Vec n)
    {
        __m256i e = _mm256_cvttps_epi32(n.v);
        e = _mm256_add_epi32(e, _mm256_set1_epi32(127));
        e = _mm256_slli_epi32(e, 23);
        return {_mm256_castsi256_ps(e)};
    }
};
#endif // __AVX2__

// ----------------------------------------------------------------------
// AVX-512 backend: 16 f32 lanes. Compiled only in TUs built with
// -mavx512f (which also implies -ffp-contract=off in CMake, as AVX-512
// drags in FMA and the scalar tails must not contract). Only AVX512F
// intrinsics are used — mask registers are expanded back to all-ones
// float lane masks so the shared blend/maskAnd/maskOr shapes hold.
// ----------------------------------------------------------------------

#if defined(__AVX512F__)
template <>
struct Vec<Avx512Tag>
{
    static constexpr int kWidth = 16;
    __m512 v;

    static Vec
    load(const float *p)
    {
        return {_mm512_loadu_ps(p)};
    }
    static Vec
    broadcast(float x)
    {
        return {_mm512_set1_ps(x)};
    }
    void
    store(float *p) const
    {
        _mm512_storeu_ps(p, v);
    }
    float
    lane(int i) const
    {
        alignas(64) float tmp[16];
        _mm512_store_ps(tmp, v);
        return tmp[i];
    }
    static Vec
    gather(const float *base, const int32_t *idx)
    {
        __m512i vi = _mm512_loadu_si512(idx);
        return {_mm512_i32gather_ps(vi, base, 4)};
    }

    friend Vec
    operator+(Vec a, Vec b)
    {
        return {_mm512_add_ps(a.v, b.v)};
    }
    friend Vec
    operator-(Vec a, Vec b)
    {
        return {_mm512_sub_ps(a.v, b.v)};
    }
    friend Vec
    operator*(Vec a, Vec b)
    {
        return {_mm512_mul_ps(a.v, b.v)};
    }
    friend Vec
    operator/(Vec a, Vec b)
    {
        return {_mm512_div_ps(a.v, b.v)};
    }

    static Vec
    max(Vec a, Vec b)
    {
        // EVEX vmaxps keeps the legacy semantics: (a > b ? a : b),
        // unordered lanes yield b — same as the scalar reference.
        return {_mm512_max_ps(a.v, b.v)};
    }
    static Vec
    min(Vec a, Vec b)
    {
        return {_mm512_min_ps(a.v, b.v)};
    }
    static Vec
    abs(Vec a)
    {
        __m512i sign = _mm512_set1_epi32(INT32_C(0x80000000));
        return {_mm512_castsi512_ps(
            _mm512_andnot_si512(sign, _mm512_castps_si512(a.v)))};
    }
    static Vec
    sqrt(Vec a)
    {
        return {_mm512_sqrt_ps(a.v)};
    }
    static Vec
    floor(Vec a)
    {
        return {_mm512_roundscale_ps(
            a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
    }

    /** Compares produce a k-mask; expand it to the shared all-ones
     *  float lane-mask representation (AVX512F-only ops). */
    static Vec
    cmpLt(Vec a, Vec b)
    {
        __mmask16 m = _mm512_cmp_ps_mask(a.v, b.v, _CMP_LT_OQ);
        return {_mm512_castsi512_ps(_mm512_maskz_set1_epi32(m, -1))};
    }
    static Vec
    cmpEq(Vec a, Vec b)
    {
        __mmask16 m = _mm512_cmp_ps_mask(a.v, b.v, _CMP_EQ_OQ);
        return {_mm512_castsi512_ps(_mm512_maskz_set1_epi32(m, -1))};
    }
    static Vec
    maskAnd(Vec a, Vec b)
    {
        return {_mm512_castsi512_ps(_mm512_and_si512(
            _mm512_castps_si512(a.v), _mm512_castps_si512(b.v)))};
    }
    static Vec
    maskOr(Vec a, Vec b)
    {
        return {_mm512_castsi512_ps(_mm512_or_si512(
            _mm512_castps_si512(a.v), _mm512_castps_si512(b.v)))};
    }
    static Vec
    blend(Vec mask, Vec a, Vec b)
    {
        __m512i mi = _mm512_castps_si512(mask.v);
        __mmask16 m = _mm512_test_epi32_mask(mi, mi);
        return {_mm512_mask_blend_ps(m, b.v, a.v)};
    }

    static Vec
    pow2Int(Vec n)
    {
        __m512i e = _mm512_cvttps_epi32(n.v);
        e = _mm512_add_epi32(e, _mm512_set1_epi32(127));
        e = _mm512_slli_epi32(e, 23);
        return {_mm512_castsi512_ps(e)};
    }
};
#endif // __AVX512F__

// ----------------------------------------------------------------------
// NEON backend: 4 f32 lanes. Compiled only in TUs targeting ARM NEON.
// ----------------------------------------------------------------------

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
template <>
struct Vec<NeonTag>
{
    static constexpr int kWidth = 4;
    float32x4_t v;

    static Vec
    load(const float *p)
    {
        return {vld1q_f32(p)};
    }
    static Vec
    broadcast(float x)
    {
        return {vdupq_n_f32(x)};
    }
    void
    store(float *p) const
    {
        vst1q_f32(p, v);
    }
    float
    lane(int i) const
    {
        float tmp[4];
        vst1q_f32(tmp, v);
        return tmp[i];
    }
    static Vec
    gather(const float *base, const int32_t *idx)
    {
        float t[4] = {base[idx[0]], base[idx[1]], base[idx[2]],
                      base[idx[3]]};
        return {vld1q_f32(t)};
    }

    friend Vec
    operator+(Vec a, Vec b)
    {
        return {vaddq_f32(a.v, b.v)};
    }
    friend Vec
    operator-(Vec a, Vec b)
    {
        return {vsubq_f32(a.v, b.v)};
    }
    friend Vec
    operator*(Vec a, Vec b)
    {
        return {vmulq_f32(a.v, b.v)};
    }
    friend Vec
    operator/(Vec a, Vec b)
    {
#if defined(__aarch64__)
        return {vdivq_f32(a.v, b.v)};
#else
        float ta[4], tb[4];
        vst1q_f32(ta, a.v);
        vst1q_f32(tb, b.v);
        for (int i = 0; i < 4; ++i) {
            ta[i] /= tb[i];
        }
        return {vld1q_f32(ta)};
#endif
    }

    /** Mirror the scalar reference (a > b ? a : b) including NaN lanes:
     *  select via the ordered greater-than compare. */
    static Vec
    max(Vec a, Vec b)
    {
        return {vbslq_f32(vcgtq_f32(a.v, b.v), a.v, b.v)};
    }
    static Vec
    min(Vec a, Vec b)
    {
        return {vbslq_f32(vcltq_f32(a.v, b.v), a.v, b.v)};
    }
    static Vec
    abs(Vec a)
    {
        return {vabsq_f32(a.v)};
    }
    static Vec
    sqrt(Vec a)
    {
#if defined(__aarch64__)
        return {vsqrtq_f32(a.v)};
#else
        float t[4];
        vst1q_f32(t, a.v);
        for (int i = 0; i < 4; ++i) {
            t[i] = std::sqrt(t[i]);
        }
        return {vld1q_f32(t)};
#endif
    }
    static Vec
    floor(Vec a)
    {
#if defined(__aarch64__)
        return {vrndmq_f32(a.v)};
#else
        float t[4];
        vst1q_f32(t, a.v);
        for (int i = 0; i < 4; ++i) {
            t[i] = std::floor(t[i]);
        }
        return {vld1q_f32(t)};
#endif
    }

    static Vec
    cmpLt(Vec a, Vec b)
    {
        return {vreinterpretq_f32_u32(vcltq_f32(a.v, b.v))};
    }
    static Vec
    cmpEq(Vec a, Vec b)
    {
        return {vreinterpretq_f32_u32(vceqq_f32(a.v, b.v))};
    }
    static Vec
    maskAnd(Vec a, Vec b)
    {
        return {vreinterpretq_f32_u32(
            vandq_u32(vreinterpretq_u32_f32(a.v),
                      vreinterpretq_u32_f32(b.v)))};
    }
    static Vec
    maskOr(Vec a, Vec b)
    {
        return {vreinterpretq_f32_u32(
            vorrq_u32(vreinterpretq_u32_f32(a.v),
                      vreinterpretq_u32_f32(b.v)))};
    }
    static Vec
    blend(Vec mask, Vec a, Vec b)
    {
        return {vbslq_f32(vreinterpretq_u32_f32(mask.v), a.v, b.v)};
    }

    static Vec
    pow2Int(Vec n)
    {
        int32x4_t e = vcvtq_s32_f32(n.v);
        e = vaddq_s32(e, vdupq_n_s32(127));
        e = vshlq_n_s32(e, 23);
        return {vreinterpretq_f32_s32(e)};
    }
};
#endif // __ARM_NEON

// ----------------------------------------------------------------------
// Reduction tag mapping. Reductions fold a fixed virtual 8-slot
// (kAccLanes) accumulator; a hardware vector wider than 8 f32 lanes
// cannot hold that shape, so backends wider than the virtual width run
// their reductions on an 8-lane sibling type. AVX-512 maps to the AVX2
// Vec (always compiled alongside it: -mavx512f implies __AVX2__);
// everything else reduces as itself.
// ----------------------------------------------------------------------

template <typename Tag>
struct ReduceTag
{
    using type = Tag;
};
#if defined(__AVX512F__) && defined(__AVX2__)
template <>
struct ReduceTag<Avx512Tag>
{
    using type = Avx2Tag;
};
#endif

} // namespace

} // namespace kernels
} // namespace edkm

#endif // EDKM_KERNELS_SIMD_H_
