/**
 * @file
 * Tensor-level entry points for the fused clustering kernels.
 *
 * These wrap the raw-pointer kernels in kernels.h with layout handling,
 * runtime-pool parallelism (chunk-deterministic) and DeviceManager flop
 * accounting, so the clustering core can call them like any other
 * tensor op. The fused attention table computes
 *
 *     softmax_rows( -(u_i - c_j)^2 / tau )
 *
 * in a single pass with no intermediate tensors — replacing the
 * composed `sub -> square -> mulScalar -> softmaxLastDim` chain, whose
 * per-element result it reproduces exactly (same IEEE operations in the
 * same order; asserted by tests/test_kernels.cc).
 */

#ifndef EDKM_KERNELS_ATTENTION_H_
#define EDKM_KERNELS_ATTENTION_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace edkm {
namespace kernels {

/**
 * Fused attention table. @p u is the value column ([U], [U,1] or any
 * contiguous layout of U elements), @p c the centroid row ([k], [1,k],
 * [k,1]). Returns softmax_rows(-(u_i - c_j)^2 / tau) as [U, k].
 */
Tensor attentionTable(const Tensor &u, const Tensor &c, float tau);

/**
 * Gather rows of a [U, k] @p table by a u16 @p idx list ([n]) into a
 * dense [n, k] map, coalescing consecutive source rows into batched
 * memcpy calls.
 */
Tensor gatherTableRows(const Tensor &table, const Tensor &idx);

/**
 * Fused distance+argmin against ascending-sorted @p centroids for every
 * element of @p values, written to @p out (size n). Bit-compatible with
 * per-element binary-search `nearestCentroid`, vectorized and
 * parallelized over values.
 */
void assignNearest(const std::vector<float> &centroids, const float *values,
                   int64_t n, int32_t *out);

} // namespace kernels
} // namespace edkm

#endif // EDKM_KERNELS_ATTENTION_H_
