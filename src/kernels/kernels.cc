#include "kernels/kernels.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kernels/kernels_impl.h"
#include "util/logging.h"

namespace edkm {
namespace kernels {

#if defined(EDKM_HAVE_AVX2)
const KernelTable &avx2KernelTable(); // defined in kernels_avx2.cc
#endif
#if defined(EDKM_HAVE_AVX512)
const KernelTable &avx512KernelTable(); // defined in kernels_avx512.cc
#endif
#if defined(EDKM_HAVE_NEON)
const KernelTable &neonKernelTable(); // defined in kernels_neon.cc
#endif

// Always linked (kernels_fastmath.cc compiles to nullptr stubs when the
// variant is configured out).
PaletteDotFn fastMathPaletteDotImpl();
const char *fastMathVariantNameImpl();

namespace {

const KernelTable &
scalarKernelTable()
{
    static const KernelTable t =
        impl::makeKernelTable<ScalarTag>(Backend::kScalar);
    return t;
}

/** True when the running CPU can execute @p b (build support aside). */
bool
cpuSupports(Backend b)
{
    switch (b) {
    case Backend::kScalar:
        return true;
    case Backend::kAvx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Backend::kAvx512:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
        // avx512f is the only feature the backend's intrinsics need
        // (and it implies avx2 for the ReduceTag reduction path).
        return __builtin_cpu_supports("avx512f") != 0;
#else
        return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__) || defined(__ARM_NEON)
        return true; // NEON is architectural on aarch64
#else
        return false;
#endif
    }
    return false;
}

/** Compiled-in + CPU-supported check. */
bool
backendUsable(Backend b)
{
    switch (b) {
    case Backend::kScalar:
        return true;
    case Backend::kAvx2:
#if defined(EDKM_HAVE_AVX2)
        return cpuSupports(Backend::kAvx2);
#else
        return false;
#endif
    case Backend::kAvx512:
#if defined(EDKM_HAVE_AVX512)
        return cpuSupports(Backend::kAvx512);
#else
        return false;
#endif
    case Backend::kNeon:
#if defined(EDKM_HAVE_NEON)
        return cpuSupports(Backend::kNeon);
#else
        return false;
#endif
    }
    return false;
}

std::string
lowered(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        out.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(*s))));
    }
    return out;
}

/** Best usable backend in priority order (all bit-identical, so this
 *  is purely a speed preference). */
Backend
bestBackend()
{
    if (backendUsable(Backend::kAvx512)) {
        return Backend::kAvx512;
    }
    if (backendUsable(Backend::kAvx2)) {
        return Backend::kAvx2;
    }
    if (backendUsable(Backend::kNeon)) {
        return Backend::kNeon;
    }
    return Backend::kScalar;
}

/** Resolve the process-wide backend once: EDKM_SIMD env override, then
 *  the best usable backend. A pinned backend that is unusable (build or
 *  CPU) falls back gracefully — to the best available one, with a
 *  warning — because every backend is bit-identical anyway. */
Backend
resolveBackend()
{
    if (const char *env = std::getenv("EDKM_SIMD")) {
        std::string v = lowered(env);
        if (v == "off" || v == "0" || v == "scalar" || v == "false") {
            return Backend::kScalar;
        }
        if (v == "avx2") {
            if (backendUsable(Backend::kAvx2)) {
                return Backend::kAvx2;
            }
            warn("EDKM_SIMD=avx2 requested but AVX2 is unavailable "
                 "(build or CPU); falling back to scalar kernels");
            return Backend::kScalar;
        }
        if (v == "avx512") {
            if (backendUsable(Backend::kAvx512)) {
                return Backend::kAvx512;
            }
            Backend best = bestBackend();
            warn("EDKM_SIMD=avx512 requested but AVX-512 is unavailable "
                 "(build or CPU); falling back to ", backendName(best),
                 " kernels (bit-identical)");
            return best;
        }
        if (v == "neon") {
            if (backendUsable(Backend::kNeon)) {
                return Backend::kNeon;
            }
            warn("EDKM_SIMD=neon requested but NEON is unavailable "
                 "(build or CPU); falling back to scalar kernels");
            return Backend::kScalar;
        }
        if (v != "on" && v != "auto" && v != "1") {
            warn("EDKM_SIMD='", env, "' not recognised; using auto");
        }
    }
    return bestBackend();
}

} // namespace

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::kScalar:
        return "scalar";
    case Backend::kAvx2:
        return "avx2";
    case Backend::kAvx512:
        return "avx512";
    case Backend::kNeon:
        return "neon";
    }
    return "unknown";
}

const KernelTable &
table(Backend b)
{
    if (!backendUsable(b)) {
        return scalarKernelTable();
    }
    switch (b) {
#if defined(EDKM_HAVE_AVX2)
    case Backend::kAvx2:
        return avx2KernelTable();
#endif
#if defined(EDKM_HAVE_AVX512)
    case Backend::kAvx512:
        return avx512KernelTable();
#endif
#if defined(EDKM_HAVE_NEON)
    case Backend::kNeon:
        return neonKernelTable();
#endif
    default:
        return scalarKernelTable();
    }
}

const KernelTable &
active()
{
    static const KernelTable &t = table(resolveBackend());
    return t;
}

std::vector<Backend>
availableBackends()
{
    std::vector<Backend> out = {Backend::kScalar};
    if (backendUsable(Backend::kAvx2)) {
        out.push_back(Backend::kAvx2);
    }
    if (backendUsable(Backend::kAvx512)) {
        out.push_back(Backend::kAvx512);
    }
    if (backendUsable(Backend::kNeon)) {
        out.push_back(Backend::kNeon);
    }
    return out;
}

// ----------------------------------------------------------------------
// Fast-math opt-in state.
// ----------------------------------------------------------------------

namespace {

bool
envFastMathOptIn()
{
    const char *env = std::getenv("EDKM_FAST_MATH");
    if (env == nullptr) {
        return false;
    }
    std::string v = lowered(env);
    return v == "1" || v == "on" || v == "true" || v == "yes";
}

std::atomic<bool> &
fastMathFlag()
{
    static std::atomic<bool> f{envFastMathOptIn()};
    return f;
}

} // namespace

PaletteDotFn
fastMathPaletteDot()
{
    return fastMathPaletteDotImpl();
}

const char *
fastMathVariantName()
{
    return fastMathVariantNameImpl();
}

bool
fastMathEnabled()
{
    return fastMathFlag().load(std::memory_order_relaxed);
}

void
setFastMath(bool on)
{
    fastMathFlag().store(on, std::memory_order_relaxed);
}

void
gatherRowsU16(const float *table, int64_t k, const uint16_t *idx,
              int64_t n, float *out)
{
    // Coalesce runs of consecutive source rows into one memcpy: unique
    // index lists from uniquify frequently visit neighbouring buckets.
    int64_t i = 0;
    while (i < n) {
        int64_t run = 1;
        while (i + run < n && idx[i + run] == idx[i + run - 1] + 1) {
            ++run;
        }
        std::memcpy(out + i * k, table + static_cast<int64_t>(idx[i]) * k,
                    static_cast<size_t>(run * k) * sizeof(float));
        i += run;
    }
}

void
gatherU16(const float *src, const uint16_t *idx, int64_t n, float *out)
{
    for (int64_t i = 0; i < n; ++i) {
        out[i] = src[idx[i]];
    }
}

} // namespace kernels
} // namespace edkm
