/**
 * @file
 * Generic kernel implementations, templated over a SIMD backend tag.
 *
 * Each backend translation unit (kernels.cc for scalar, kernels_avx2.cc,
 * kernels_neon.cc) includes this header and instantiates
 * `makeKernelTable<Tag>()` exactly once. Vector main loops advance by the
 * hardware width; tails always run through `Vec<ScalarTag>` with the same
 * generic functor, which performs the identical IEEE operations — so a
 * kernel's result never depends on where the vector loop stops, and all
 * backends agree bitwise (see the contract in kernels.h).
 */

#ifndef EDKM_KERNELS_KERNELS_IMPL_H_
#define EDKM_KERNELS_KERNELS_IMPL_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "kernels/kernels.h"
#include "kernels/simd.h"

namespace edkm {
namespace kernels {
namespace impl {
// Anonymous namespace for the same reason as in simd.h: per-TU internal
// linkage so an ISA-specific TU's instantiations can never be COMDAT-
// merged into the scalar TU's (see the note there).
namespace {

// ----------------------------------------------------------------------
// Generic map loops (vector main + scalar-reference tail).
// ----------------------------------------------------------------------

template <typename Tag, typename F>
inline void
mapUnary(const float *a, float *o, int64_t n, const F &f)
{
    using V = Vec<Tag>;
    using S = Vec<ScalarTag>;
    int64_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        f(V::load(a + i)).store(o + i);
    }
    for (; i < n; ++i) {
        f(S::load(a + i)).store(o + i);
    }
}

template <typename Tag, typename F>
inline void
mapBinary(const float *a, const float *b, float *o, int64_t n, const F &f)
{
    using V = Vec<Tag>;
    using S = Vec<ScalarTag>;
    int64_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        f(V::load(a + i), V::load(b + i)).store(o + i);
    }
    for (; i < n; ++i) {
        f(S::load(a + i), S::load(b + i)).store(o + i);
    }
}

// ----------------------------------------------------------------------
// Polynomial expf shared by the exp-family kernels (Cephes-style).
// ~2 ulp over the representable range; saturates at exp(88) above and
// flushes to +0 below -87.33654 (where libm would return subnormals).
// ----------------------------------------------------------------------

template <typename V>
inline V
expPs(V x)
{
    const V hi = V::broadcast(88.0f);
    const V lo = V::broadcast(-87.33654f);
    const V log2e = V::broadcast(1.44269504088896341f);
    const V c1 = V::broadcast(0.693359375f);
    const V c2 = V::broadcast(-2.12194440e-4f);
    const V one = V::broadcast(1.0f);
    const V half = V::broadcast(0.5f);

    const V xin = x;
    V under = V::cmpLt(x, lo); // flush-to-zero mask on the *input*
    x = V::min(x, hi);
    x = V::max(x, lo);

    V n = V::floor(x * log2e + half);
    x = x - n * c1;
    x = x - n * c2;

    V p = V::broadcast(1.9875691500e-4f);
    p = p * x + V::broadcast(1.3981999507e-3f);
    p = p * x + V::broadcast(8.3334519073e-3f);
    p = p * x + V::broadcast(4.1665795894e-2f);
    p = p * x + V::broadcast(1.6666665459e-1f);
    p = p * x + V::broadcast(5.0000001201e-1f);
    V r = (p * (x * x) + x + one) * V::pow2Int(n);
    r = V::blend(under, V::broadcast(0.0f), r);
    // Propagate NaN (the clamps above would otherwise map it to
    // exp(88) and silently launder a poisoned input into a plausible
    // finite value): lanes where x is ordered keep r, NaN lanes keep x.
    return V::blend(V::cmpEq(xin, xin), r, xin);
}

/** Scalar max with the backends' shared NaN semantics. */
inline float
smax(float a, float b)
{
    return a > b ? a : b;
}

// ----------------------------------------------------------------------
// Reductions with the fixed virtual accumulator width kAccLanes.
// ----------------------------------------------------------------------

/** Slot l accumulates elements ≡ l (mod kAccLanes); slots fold in lane
 *  order, then the tail folds in element order. Identical on every
 *  backend by construction. Backends wider than kAccLanes reduce
 *  through their 8-lane ReduceTag sibling (see simd.h) — the virtual
 *  accumulator never changes shape. */
template <typename RawTag>
inline float
reduceMaxT(const float *a, int64_t n)
{
    using Tag = typename ReduceTag<RawTag>::type;
    using V = Vec<Tag>;
    static_assert(V::kWidth <= kAccLanes,
                  "reduction vector wider than the virtual accumulator");
    if (n <= 0) {
        return -std::numeric_limits<float>::infinity();
    }
    if (n < kAccLanes) {
        float m = a[0];
        for (int64_t i = 1; i < n; ++i) {
            m = smax(m, a[i]);
        }
        return m;
    }
    constexpr int kNumVecs = kAccLanes / V::kWidth;
    V acc[kNumVecs];
    for (int v = 0; v < kNumVecs; ++v) {
        acc[v] = V::load(a + v * V::kWidth);
    }
    int64_t main_n = (n / kAccLanes) * kAccLanes;
    for (int64_t i = kAccLanes; i < main_n; i += kAccLanes) {
        for (int v = 0; v < kNumVecs; ++v) {
            acc[v] = V::max(acc[v], V::load(a + i + v * V::kWidth));
        }
    }
    float m = acc[0].lane(0);
    for (int l = 1; l < kAccLanes; ++l) {
        m = smax(m, acc[l / V::kWidth].lane(l % V::kWidth));
    }
    for (int64_t i = main_n; i < n; ++i) {
        m = smax(m, a[i]);
    }
    return m;
}

template <typename RawTag>
inline float
dotT(const float *a, const float *b, int64_t n)
{
    using Tag = typename ReduceTag<RawTag>::type;
    using V = Vec<Tag>;
    static_assert(V::kWidth <= kAccLanes,
                  "reduction vector wider than the virtual accumulator");
    constexpr int kNumVecs = kAccLanes / V::kWidth;
    V acc[kNumVecs];
    for (int v = 0; v < kNumVecs; ++v) {
        acc[v] = V::broadcast(0.0f);
    }
    int64_t main_n = (n / kAccLanes) * kAccLanes;
    for (int64_t i = 0; i < main_n; i += kAccLanes) {
        for (int v = 0; v < kNumVecs; ++v) {
            acc[v] = acc[v] + V::load(a + i + v * V::kWidth) *
                                  V::load(b + i + v * V::kWidth);
        }
    }
    float s = 0.0f;
    for (int l = 0; l < kAccLanes; ++l) {
        s += acc[l / V::kWidth].lane(l % V::kWidth);
    }
    for (int64_t i = main_n; i < n; ++i) {
        s += a[i] * b[i];
    }
    return s;
}

// ----------------------------------------------------------------------
// Blocked matvec.
// ----------------------------------------------------------------------

template <typename Tag>
inline void
matvecT(const float *a, int64_t rows, int64_t k, const float *x, float *y)
{
    for (int64_t i = 0; i < rows; ++i) {
        y[i] = dotT<Tag>(a + i * k, x, k);
    }
}

// ----------------------------------------------------------------------
// Fused palettized decode: packed indices -> LUT gather -> mul-acc.
// ----------------------------------------------------------------------

/**
 * out[j] = sum_p x[p] * lut[idx(col0 + j, p)] with idx packBits-packed
 * row-major over a [rows, k] weight — no dense staging buffer.
 *
 * Bit-identity argument: the staged path (matmulStreamed m==1) computes
 * every output element as the chain "0.0f; for p ascending, skip
 * x[p] == 0.0f: out[j] = out[j] + x[p] * w[p][j]" with a separate IEEE
 * mul then add (kernels.h axpy). This kernel replays exactly that chain
 * per element; vector lanes hold *independent output columns*, so the
 * hardware width only changes how many such chains advance per
 * iteration, never the FP sequence inside one. Every backend therefore
 * agrees bitwise with the scalar reference and with the staged path.
 *
 * For a fixed column j the index positions (col0+j)*k + p, p ascending,
 * are consecutive values of the bitstream, so each lane walks a
 * sequential bit region — the gather touches at most kWidth cache
 * lines of the (tiny, hot) LUT.
 */
template <typename Tag>
inline void
paletteDotFusedT(const float *x, int64_t k, const uint8_t *packed,
                 int bits, const float *lut, int64_t col0, int64_t cols,
                 float *out)
{
    using V = Vec<Tag>;
    int32_t idx[V::kWidth];
    // Per-lane running bit offsets into the index stream: lane l's
    // column starts at bit (col0+j+l)*k*bits and advances by `bits` per
    // p step, so the inner loop does one add + one extraction per lane
    // instead of a 64-bit multiply each. The scalar instantiation
    // (kWidth == 1) skips straight to the rolling-buffer column loop
    // below, which extracts indices faster than per-element random
    // access.
    int64_t lanebit[V::kWidth];
    int64_t j = 0;
    for (; V::kWidth > 1 && j + V::kWidth <= cols; j += V::kWidth) {
        V acc = V::broadcast(0.0f);
        const int64_t base = col0 + j;
        for (int l = 0; l < V::kWidth; ++l) {
            lanebit[l] = (base + l) * k * bits;
        }
        for (int64_t p = 0; p < k; ++p) {
            float xv = x[p];
            if (xv == 0.0f) {
                continue;
            }
            const int64_t pb = p * static_cast<int64_t>(bits);
            for (int l = 0; l < V::kWidth; ++l) {
                idx[l] = unpackBitsAtBit(packed, bits, lanebit[l] + pb);
            }
            acc = acc + V::broadcast(xv) * V::gather(lut, idx);
        }
        acc.store(out + j);
    }
    for (; j < cols; ++j) {
        using S = Vec<ScalarTag>;
        S acc = S::broadcast(0.0f);
        // A column's indices are consecutive in the bitstream, so shift
        // them out of a rolling byte-fed buffer instead of re-reading
        // (and re-shifting) the stream per element. Refills are
        // byte-at-a-time and only touch bytes holding this column's
        // bits, so no read past a minimally-sized stream. Indices are
        // consumed even for skipped x[p] == 0 terms to keep the buffer
        // in step; the FP chain is untouched (bit-identity preserved).
        const int64_t bit0 = (col0 + j) * k * bits;
        const uint8_t *ptr = packed + (bit0 >> 3);
        uint64_t buf = static_cast<uint64_t>(*ptr++) >> (bit0 & 7);
        int avail = 8 - static_cast<int>(bit0 & 7);
        const uint32_t mask = (1u << bits) - 1u;
        for (int64_t p = 0; p < k; ++p) {
            while (avail < bits) {
                buf |= static_cast<uint64_t>(*ptr++) << avail;
                avail += 8;
            }
            int32_t id = static_cast<int32_t>(
                static_cast<uint32_t>(buf) & mask);
            buf >>= bits;
            avail -= bits;
            float xv = x[p];
            if (xv == 0.0f) {
                continue;
            }
            acc = acc + S::broadcast(xv) * S::gather(lut, &id);
        }
        acc.store(out + j);
    }
}

// ----------------------------------------------------------------------
// Fused row kernels.
// ----------------------------------------------------------------------

/** Row softmax in place over @p row of length @p k: max (virtual-lane
 *  semantics), poly exp, sequential double denominator, scale. */
template <typename Tag>
inline void
softmaxOneRowT(const float *in, int64_t k, float *out)
{
    using V = Vec<Tag>;
    using S = Vec<ScalarTag>;
    float mx = reduceMaxT<Tag>(in, k);
    const V mxv = V::broadcast(mx);
    int64_t j = 0;
    for (; j + V::kWidth <= k; j += V::kWidth) {
        expPs(V::load(in + j) - mxv).store(out + j);
    }
    for (; j < k; ++j) {
        expPs(S::load(in + j) - S::broadcast(mx)).store(out + j);
    }
    double denom = 0.0;
    for (int64_t c = 0; c < k; ++c) {
        denom += out[c];
    }
    float inv = static_cast<float>(1.0 / denom);
    const V invv = V::broadcast(inv);
    j = 0;
    for (; j + V::kWidth <= k; j += V::kWidth) {
        (V::load(out + j) * invv).store(out + j);
    }
    for (; j < k; ++j) {
        (S::load(out + j) * S::broadcast(inv)).store(out + j);
    }
}

template <typename Tag>
inline void
softmaxRowsT(const float *a, int64_t rows, int64_t k, float *o)
{
    for (int64_t r = 0; r < rows; ++r) {
        softmaxOneRowT<Tag>(a + r * k, k, o + r * k);
    }
}

template <typename Tag>
inline void
attentionRowsT(const float *u, int64_t rows, const float *c, int64_t k,
               float neg_inv_tau, float *o)
{
    using V = Vec<Tag>;
    using S = Vec<ScalarTag>;
    const V nis = V::broadcast(neg_inv_tau);
    for (int64_t r = 0; r < rows; ++r) {
        float *orow = o + r * k;
        const V uv = V::broadcast(u[r]);
        int64_t j = 0;
        for (; j + V::kWidth <= k; j += V::kWidth) {
            V d = uv - V::load(c + j);
            ((d * d) * nis).store(orow + j);
        }
        for (; j < k; ++j) {
            S d = S::broadcast(u[r]) - S::load(c + j);
            ((d * d) * S::broadcast(neg_inv_tau)).store(orow + j);
        }
        softmaxOneRowT<Tag>(orow, k, orow);
    }
}

template <typename Tag>
inline void
absDiffRowsT(const float *u, int64_t rows, const float *c, int64_t k,
             float *o)
{
    using V = Vec<Tag>;
    using S = Vec<ScalarTag>;
    for (int64_t r = 0; r < rows; ++r) {
        float *orow = o + r * k;
        const V uv = V::broadcast(u[r]);
        int64_t j = 0;
        for (; j + V::kWidth <= k; j += V::kWidth) {
            V::abs(uv - V::load(c + j)).store(orow + j);
        }
        for (; j < k; ++j) {
            S::abs(S::broadcast(u[r]) - S::load(c + j)).store(orow + j);
        }
    }
}

/**
 * Tie-break rule reproducing binary-search `nearestCentroid` exactly on
 * an ascending-sorted centroid list (duplicates included): advance to a
 * later candidate on a distance tie only when that centroid lies
 * strictly below the value — precisely which of the two lower_bound
 * neighbours (or which end of a duplicate run) the reference returns.
 */
template <typename Tag>
inline void
nearestRowsT(const float *v, int64_t n, const float *c, int64_t k,
             int32_t *out)
{
    using V = Vec<Tag>;
    int64_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        V vv = V::load(v + i);
        V best = V::abs(vv - V::broadcast(c[0]));
        V best_j = V::broadcast(0.0f);
        for (int64_t j = 1; j < k; ++j) {
            V cv = V::broadcast(c[j]);
            V d = V::abs(vv - cv);
            V m = V::maskOr(V::cmpLt(d, best),
                            V::maskAnd(V::cmpEq(d, best),
                                       V::cmpLt(cv, vv)));
            best = V::blend(m, d, best);
            best_j = V::blend(m, V::broadcast(static_cast<float>(j)),
                              best_j);
        }
        for (int l = 0; l < V::kWidth; ++l) {
            out[i + l] = static_cast<int32_t>(best_j.lane(l));
        }
    }
    for (; i < n; ++i) {
        float best = std::fabs(v[i] - c[0]);
        int32_t bj = 0;
        for (int64_t j = 1; j < k; ++j) {
            float d = std::fabs(v[i] - c[j]);
            if (d < best || (d == best && c[j] < v[i])) {
                best = d;
                bj = static_cast<int32_t>(j);
            }
        }
        out[i] = bj;
    }
}

// ----------------------------------------------------------------------
// AdamW element update (formula identical to the reference loop).
// ----------------------------------------------------------------------

template <typename Tag>
inline void
adamwStepT(float *p, float *m, float *v, const float *g, int64_t n,
           float lr, float beta1, float beta2, float eps,
           float weight_decay, float bc1, float bc2)
{
    using V = Vec<Tag>;
    const float ob1 = 1.0f - beta1;
    const float ob2 = 1.0f - beta2;
    auto step = [&](auto pv, auto mv, auto vv, auto gv) {
        using W = decltype(pv);
        mv = W::broadcast(beta1) * mv + W::broadcast(ob1) * gv;
        vv = W::broadcast(beta2) * vv + (W::broadcast(ob2) * gv) * gv;
        W mhat = mv / W::broadcast(bc1);
        W vhat = vv / W::broadcast(bc2);
        W upd = mhat / (W::sqrt(vhat) + W::broadcast(eps)) +
                W::broadcast(weight_decay) * pv;
        pv = pv - W::broadcast(lr) * upd;
        struct
        {
            W pv, mv, vv;
        } r{pv, mv, vv};
        return r;
    };
    int64_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        auto r = step(V::load(p + i), V::load(m + i), V::load(v + i),
                      V::load(g + i));
        r.pv.store(p + i);
        r.mv.store(m + i);
        r.vv.store(v + i);
    }
    using S = Vec<ScalarTag>;
    for (; i < n; ++i) {
        auto r = step(S::load(p + i), S::load(m + i), S::load(v + i),
                      S::load(g + i));
        r.pv.store(p + i);
        r.mv.store(m + i);
        r.vv.store(v + i);
    }
}

// ----------------------------------------------------------------------
// Table assembly.
// ----------------------------------------------------------------------

template <typename Tag>
KernelTable
makeKernelTable(Backend id)
{
    KernelTable t;
    t.backend = id;

    t.add = [](const float *a, const float *b, float *o, int64_t n) {
        mapBinary<Tag>(a, b, o, n,
                       [](auto x, auto y) { return x + y; });
    };
    t.sub = [](const float *a, const float *b, float *o, int64_t n) {
        mapBinary<Tag>(a, b, o, n,
                       [](auto x, auto y) { return x - y; });
    };
    t.mul = [](const float *a, const float *b, float *o, int64_t n) {
        mapBinary<Tag>(a, b, o, n,
                       [](auto x, auto y) { return x * y; });
    };
    t.div = [](const float *a, const float *b, float *o, int64_t n) {
        mapBinary<Tag>(a, b, o, n,
                       [](auto x, auto y) { return x / y; });
    };

    t.scale = [](const float *a, float s, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [s](auto x) {
            return x * decltype(x)::broadcast(s);
        });
    };
    t.offset = [](const float *a, float s, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [s](auto x) {
            return x + decltype(x)::broadcast(s);
        });
    };
    t.negate = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [](auto x) {
            return decltype(x)::broadcast(0.0f) - x;
        });
    };
    t.absval = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n,
                      [](auto x) { return decltype(x)::abs(x); });
    };
    t.squarev = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [](auto x) { return x * x; });
    };
    t.sqrtv = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n,
                      [](auto x) { return decltype(x)::sqrt(x); });
    };
    t.reluv = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [](auto x) {
            using W = decltype(x);
            // x > 0 ? x : 0, NaN -> 0 (matches `x > 0.0f ? x : 0.0f`).
            W zero = W::broadcast(0.0f);
            return W::blend(W::cmpLt(zero, x), x, zero);
        });
    };
    t.clampv = [](const float *a, float lo, float hi, float *o,
                  int64_t n) {
        mapUnary<Tag>(a, o, n, [lo, hi](auto x) {
            using W = decltype(x);
            // std::clamp semantics: lower bound first, then upper;
            // NaN passes through (min/max alone would launder it
            // into lo).
            W r = W::min(W::max(x, W::broadcast(lo)),
                         W::broadcast(hi));
            return W::blend(W::cmpEq(x, x), r, x);
        });
    };
    t.expv = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [](auto x) { return expPs(x); });
    };
    t.siluv = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [](auto x) {
            using W = decltype(x);
            W one = W::broadcast(1.0f);
            return x / (one + expPs(W::broadcast(0.0f) - x));
        });
    };
    t.sigmoidv = [](const float *a, float *o, int64_t n) {
        mapUnary<Tag>(a, o, n, [](auto x) {
            using W = decltype(x);
            W one = W::broadcast(1.0f);
            return one / (one + expPs(W::broadcast(0.0f) - x));
        });
    };

    t.axpy = [](const float *a, float s, float *o, int64_t n) {
        using V = Vec<Tag>;
        using S = Vec<ScalarTag>;
        const V sv = V::broadcast(s);
        int64_t i = 0;
        for (; i + V::kWidth <= n; i += V::kWidth) {
            (V::load(o + i) + sv * V::load(a + i)).store(o + i);
        }
        for (; i < n; ++i) {
            (S::load(o + i) + S::broadcast(s) * S::load(a + i))
                .store(o + i);
        }
    };

    t.reduceMax = [](const float *a, int64_t n) {
        return reduceMaxT<Tag>(a, n);
    };
    t.dot = [](const float *a, const float *b, int64_t n) {
        return dotT<Tag>(a, b, n);
    };

    t.matvec = [](const float *a, int64_t rows, int64_t k,
                  const float *x, float *y) {
        matvecT<Tag>(a, rows, k, x, y);
    };
    t.paletteDotFused = [](const float *x, int64_t k,
                           const uint8_t *packed, int bits,
                           const float *lut, int64_t col0, int64_t cols,
                           float *out) {
        paletteDotFusedT<Tag>(x, k, packed, bits, lut, col0, cols, out);
    };
    t.softmaxRows = [](const float *a, int64_t rows, int64_t k,
                       float *o) {
        softmaxRowsT<Tag>(a, rows, k, o);
    };
    t.attentionRows = [](const float *u, int64_t rows, const float *c,
                         int64_t k, float neg_inv_tau, float *o) {
        attentionRowsT<Tag>(u, rows, c, k, neg_inv_tau, o);
    };
    t.absDiffRows = [](const float *u, int64_t rows, const float *c,
                       int64_t k, float *o) {
        absDiffRowsT<Tag>(u, rows, c, k, o);
    };
    t.nearestRows = [](const float *v, int64_t n, const float *c,
                       int64_t k, int32_t *out) {
        nearestRowsT<Tag>(v, n, c, k, out);
    };

    t.adamwStep = [](float *p, float *m, float *v, const float *g,
                     int64_t n, float lr, float beta1, float beta2,
                     float eps, float weight_decay, float bc1,
                     float bc2) {
        adamwStepT<Tag>(p, m, v, g, n, lr, beta1, beta2, eps,
                        weight_decay, bc1, bc2);
    };

    return t;
}

} // namespace
} // namespace impl
} // namespace kernels
} // namespace edkm

#endif // EDKM_KERNELS_KERNELS_IMPL_H_
