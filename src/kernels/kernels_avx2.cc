// AVX2 backend instantiation. This TU is compiled with -mavx2 (and the
// EDKM_COMPILE_AVX2 definition) only when the build host targets x86 and
// the EDKM_SIMD CMake option is ON; otherwise it compiles to nothing.
// Dispatch in kernels.cc additionally checks cpuid at runtime before
// ever calling into this table.

#if defined(EDKM_COMPILE_AVX2) && defined(__AVX2__)

#include "kernels/kernels_impl.h"

namespace edkm {
namespace kernels {

const KernelTable &
avx2KernelTable()
{
    static const KernelTable t =
        impl::makeKernelTable<Avx2Tag>(Backend::kAvx2);
    return t;
}

} // namespace kernels
} // namespace edkm

#endif // EDKM_COMPILE_AVX2 && __AVX2__
