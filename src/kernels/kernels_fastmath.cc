// EDKM_FAST_MATH_OPT_IN — the explicitly opt-in fast-math palette
// decode variant.
//
// Everything else in src/kernels/ obeys the bit-identity house contract
// (results invariant to backend, thread count and code path). This TU
// is the one sanctioned exception, and the marker above is what lets it
// through the determinism linter's fast-math rule: it is compiled with
// relaxed floating-point options (and -mavx2 -mfma on x86, when the
// compiler has them) and accumulates into reassociated k-strided
// partials with fused multiply-adds. The result is close to — but NOT
// bitwise equal to — the contract path.
//
// It is never part of any KernelTable and never selected by dispatch:
// core/palettize.cc swaps it in for the fused m==1 decode only when
// kernels::fastMathEnabled() reports an explicit opt-in (EDKM_FAST_MATH
// env or setFastMath(true)). bench_kernels / bench_serving carry its
// own rows so the cost of the bit-identity contract stays measured.
//
// With -DEDKM_FAST_MATH=OFF at configure time the TU compiles to the
// nullptr stubs and the variant does not exist in the binary at all.

#include "kernels/kernels.h"

#include <cmath>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace edkm {
namespace kernels {

// Resolved by kernels.cc (fastMathPaletteDot / fastMathVariantName).
PaletteDotFn fastMathPaletteDotImpl();
const char *fastMathVariantNameImpl();

#if !defined(EDKM_ENABLE_FASTMATH)

PaletteDotFn
fastMathPaletteDotImpl()
{
    return nullptr;
}

const char *
fastMathVariantNameImpl()
{
    return nullptr;
}

#else // EDKM_ENABLE_FASTMATH

namespace {

#if defined(__AVX2__) && defined(__FMA__)

/** 8 columns per block, 4 k-strided FMA accumulators per block; no
 *  zero-skip (branchless). Relaxed accumulation order by design. */
void
paletteDotFastAvx2(const float *x, int64_t k, const uint8_t *packed,
                   int bits, const float *lut, int64_t col0, int64_t cols,
                   float *out)
{
    int64_t j = 0;
    for (; j + 8 <= cols; j += 8) {
        __m256 acc[4];
        for (int s = 0; s < 4; ++s) {
            acc[s] = _mm256_setzero_ps();
        }
        alignas(32) int32_t idx[8];
        const int64_t base = col0 + j;
        int64_t p = 0;
        for (; p + 4 <= k; p += 4) {
            for (int s = 0; s < 4; ++s) {
                for (int l = 0; l < 8; ++l) {
                    idx[l] = unpackBitsAt(packed, bits,
                                          (base + l) * k + p + s);
                }
                __m256 w = _mm256_i32gather_ps(
                    lut,
                    _mm256_load_si256(
                        reinterpret_cast<const __m256i *>(idx)),
                    4);
                acc[s] = _mm256_fmadd_ps(_mm256_set1_ps(x[p + s]), w,
                                         acc[s]);
            }
        }
        for (; p < k; ++p) {
            for (int l = 0; l < 8; ++l) {
                idx[l] = unpackBitsAt(packed, bits, (base + l) * k + p);
            }
            __m256 w = _mm256_i32gather_ps(
                lut,
                _mm256_load_si256(reinterpret_cast<const __m256i *>(idx)),
                4);
            acc[0] = _mm256_fmadd_ps(_mm256_set1_ps(x[p]), w, acc[0]);
        }
        _mm256_storeu_ps(out + j,
                         _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]),
                                       _mm256_add_ps(acc[2], acc[3])));
    }
    for (; j < cols; ++j) {
        float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
        const int64_t rowbase = (col0 + j) * k;
        int64_t p = 0;
        for (; p + 4 <= k; p += 4) {
            a0 = std::fmaf(x[p], lut[unpackBitsAt(packed, bits,
                                                  rowbase + p)], a0);
            a1 = std::fmaf(x[p + 1], lut[unpackBitsAt(packed, bits,
                                                      rowbase + p + 1)],
                           a1);
            a2 = std::fmaf(x[p + 2], lut[unpackBitsAt(packed, bits,
                                                      rowbase + p + 2)],
                           a2);
            a3 = std::fmaf(x[p + 3], lut[unpackBitsAt(packed, bits,
                                                      rowbase + p + 3)],
                           a3);
        }
        for (; p < k; ++p) {
            a0 = std::fmaf(x[p], lut[unpackBitsAt(packed, bits,
                                                  rowbase + p)], a0);
        }
        out[j] = (a0 + a1) + (a2 + a3);
    }
}

constexpr const char *kVariantName = "avx2-fma";

#else // portable fallback (non-x86 or no FMA flags): std::fma +
      // k-strided partials — still a relaxed-accumulation variant, so
      // the opt-in plumbing stays testable everywhere.

void
paletteDotFastPortable(const float *x, int64_t k, const uint8_t *packed,
                       int bits, const float *lut, int64_t col0,
                       int64_t cols, float *out)
{
    for (int64_t j = 0; j < cols; ++j) {
        float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
        const int64_t rowbase = (col0 + j) * k;
        int64_t p = 0;
        for (; p + 4 <= k; p += 4) {
            a0 = std::fmaf(x[p], lut[unpackBitsAt(packed, bits,
                                                  rowbase + p)], a0);
            a1 = std::fmaf(x[p + 1], lut[unpackBitsAt(packed, bits,
                                                      rowbase + p + 1)],
                           a1);
            a2 = std::fmaf(x[p + 2], lut[unpackBitsAt(packed, bits,
                                                      rowbase + p + 2)],
                           a2);
            a3 = std::fmaf(x[p + 3], lut[unpackBitsAt(packed, bits,
                                                      rowbase + p + 3)],
                           a3);
        }
        for (; p < k; ++p) {
            a0 = std::fmaf(x[p], lut[unpackBitsAt(packed, bits,
                                                  rowbase + p)], a0);
        }
        out[j] = (a0 + a1) + (a2 + a3);
    }
}

constexpr const char *kVariantName = "portable-fma";

#endif

} // namespace

PaletteDotFn
fastMathPaletteDotImpl()
{
#if defined(__AVX2__) && defined(__FMA__)
    // This TU was built with AVX2+FMA codegen; never hand out the
    // pointer on a CPU that cannot execute it.
    if (__builtin_cpu_supports("avx2") != 0 &&
        __builtin_cpu_supports("fma") != 0) {
        return &paletteDotFastAvx2;
    }
    return nullptr;
#else
    return &paletteDotFastPortable;
#endif
}

const char *
fastMathVariantNameImpl()
{
    return fastMathPaletteDotImpl() != nullptr ? kVariantName : nullptr;
}

#endif // EDKM_ENABLE_FASTMATH

} // namespace kernels
} // namespace edkm
