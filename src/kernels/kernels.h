/**
 * @file
 * edkm::kernels — vectorized inner kernels with runtime backend dispatch.
 *
 * Every function here operates on raw contiguous f32 buffers (callers —
 * mostly tensor/ops.cc and the clustering core — handle layout/dtype).
 * A `KernelTable` is one backend's full set of kernels; the scalar
 * reference table is always available, and AVX2 / AVX-512 / NEON tables
 * are linked in when the build enables them (CMake option `EDKM_SIMD`,
 * default ON).
 *
 * Backend selection happens once per process in `active()`:
 *   1. `EDKM_SIMD=off|scalar|0` (env) forces the scalar reference;
 *      `avx2|avx512|neon` pins a specific backend (falling back to the
 *      best available one, with a warning, when it is unusable).
 *   2. Otherwise the best compiled-in backend the CPU supports wins
 *      (avx512 > avx2 > neon > scalar).
 *
 * Numerics contract: all backends are **bit-identical** — elementwise
 * kernels map 1:1 onto IEEE single ops, and reductions use the fixed
 * virtual accumulator width `kAccLanes` (see simd.h) regardless of the
 * hardware lane count. Switching backends (or disabling SIMD) never
 * changes results; combined with the runtime layer's chunk-determinism
 * this keeps clustering output bit-identical across thread counts too.
 *
 * exp-family kernels (`expv`, `siluv`, `sigmoidv`, the softmax/attention
 * row kernels) use a shared degree-5 polynomial expf (Cephes-style,
 * ~2 ulp, saturating at exp(88), flushing to 0 below exp(-87.34), and
 * propagating NaN) — identical across backends, slightly different from
 * libm's std::exp.
 */

#ifndef EDKM_KERNELS_KERNELS_H_
#define EDKM_KERNELS_KERNELS_H_

#include <cstdint>
#include <vector>

namespace edkm {
namespace kernels {

/** Virtual accumulator lane count shared by every backend. Reductions
 *  (dot, sum, max) accumulate into kAccLanes independent slots — slot l
 *  holds elements with index ≡ l (mod kAccLanes) — then fold the slots
 *  in ascending lane order, then fold the tail in element order. */
constexpr int kAccLanes = 8;

enum class Backend
{
    kScalar,
    kAvx2,
    kAvx512,
    kNeon,
};

/** Human-readable backend name ("scalar", "avx2", "avx512", "neon"). */
const char *backendName(Backend b);

/**
 * Random-access read of one @p bits-wide value of a packBits
 * little-endian bitstream (bits in [1, 16]) starting at raw bit offset
 * @p bitpos. Touches only the bytes holding the value, so it is safe up
 * to the last element of a minimally-sized stream. The hot fused-decode
 * loops use this form directly with incrementally maintained bit
 * offsets, avoiding a 64-bit multiply per extracted index.
 */
inline int32_t
unpackBitsAtBit(const uint8_t *stream, int bits, int64_t bitpos)
{
    int64_t byte = bitpos >> 3;
    int off = static_cast<int>(bitpos & 7);
    uint32_t acc = static_cast<uint32_t>(stream[byte]) >> off;
    int got = 8 - off;
    while (got < bits) {
        ++byte;
        acc |= static_cast<uint32_t>(stream[byte]) << got;
        got += 8;
    }
    return static_cast<int32_t>(acc & ((1u << bits) - 1u));
}

/**
 * Random-access read of the @p i-th @p bits-wide value of a packBits
 * stream (element-index form of unpackBitsAtBit). Lives in the kernels
 * layer so the fused palette-decode kernels can walk index streams
 * without a dependency on core/; core/palettize.h re-exports it as
 * `edkm::unpackBitsAt`.
 */
inline int32_t
unpackBitsAt(const uint8_t *stream, int bits, int64_t i)
{
    return unpackBitsAtBit(stream, bits, i * bits);
}

/**
 * Signature of the fused palettized dot-product kernels: one [1,k] x
 * [k,cols] product read straight off a packed LUT+index weight. @p x is
 * the k-long input row; the weight is a [rows, k] palettized matrix
 * whose n-bit indices are packBits-packed row-major (element (r, p) at
 * stream position r*k + p), decoded through the 2^bits-entry @p lut.
 * Writes out[j] = sum_p x[p] * lut[idx(col0 + j, p)] for j in
 * [0, cols).
 */
using PaletteDotFn = void (*)(const float *x, int64_t k,
                              const uint8_t *packed, int bits,
                              const float *lut, int64_t col0,
                              int64_t cols, float *out);

/**
 * One backend's kernels. All pointers are non-null; buffers must be
 * valid for the stated lengths, and in/out may alias only when noted.
 */
struct KernelTable
{
    Backend backend;

    // ---- elementwise binary: o[i] = a[i] OP b[i] ----
    void (*add)(const float *a, const float *b, float *o, int64_t n);
    void (*sub)(const float *a, const float *b, float *o, int64_t n);
    void (*mul)(const float *a, const float *b, float *o, int64_t n);
    void (*div)(const float *a, const float *b, float *o, int64_t n);

    // ---- elementwise unary / scalar-parameter ----
    void (*scale)(const float *a, float s, float *o, int64_t n);
    void (*offset)(const float *a, float s, float *o, int64_t n);
    void (*negate)(const float *a, float *o, int64_t n);
    void (*absval)(const float *a, float *o, int64_t n);
    void (*squarev)(const float *a, float *o, int64_t n);
    void (*sqrtv)(const float *a, float *o, int64_t n);
    void (*reluv)(const float *a, float *o, int64_t n);
    void (*clampv)(const float *a, float lo, float hi, float *o,
                   int64_t n);
    void (*expv)(const float *a, float *o, int64_t n);
    void (*siluv)(const float *a, float *o, int64_t n);
    void (*sigmoidv)(const float *a, float *o, int64_t n);

    /** o[i] += s * a[i] (o accumulates in place). */
    void (*axpy)(const float *a, float s, float *o, int64_t n);

    // ---- reductions (virtual kAccLanes accumulator semantics) ----
    float (*reduceMax)(const float *a, int64_t n);
    float (*dot)(const float *a, const float *b, int64_t n);

    // ---- blocked matvec micro-kernel ----
    /** y[i] = dot(a[i*k .. i*k+k), x) for i in [0, rows). (The former
     *  vecmat sibling was retired when matmul's m==1 path switched to
     *  the row-shape-invariant axpy column loop.) */
    void (*matvec)(const float *a, int64_t rows, int64_t k,
                   const float *x, float *y);

    // ---- fused rows ----
    /** Row-softmax in place-able form: o[r,:] = softmax(a[r,:]) for
     *  r in [0, rows), row length k. a == o allowed. */
    void (*softmaxRows)(const float *a, int64_t rows, int64_t k,
                        float *o);
    /** Fused attention table: o[r,j] = softmax_j((u[r]-c[j])^2 * nis)
     *  with nis = -1/tau. One pass, no intermediates. */
    void (*attentionRows)(const float *u, int64_t rows, const float *c,
                          int64_t k, float neg_inv_tau, float *o);
    /** o[r,j] = |u[r] - c[j]| (the cdist1d forward). */
    void (*absDiffRows)(const float *u, int64_t rows, const float *c,
                        int64_t k, float *o);

    // ---- fused palettized decode (the m==1 serving hot path) ----
    /** Walk packed indices -> LUT gathers -> multiply-accumulate, no
     *  dense staging buffer. Replays the staged decode-then-axpy path's
     *  exact per-element FP sequence — ascending p, skip x[p] == 0.0f,
     *  separate IEEE mul then add — and maps vector lanes to
     *  *independent output columns*, so the result is bit-identical to
     *  the staged path on every backend at any hardware width. */
    PaletteDotFn paletteDotFused;
    /** Fused distance+argmin against ascending-sorted @p c: out[i] is
     *  the index minimising |v[i] - c[j]|, lowest index on ties —
     *  bit-compatible with the binary-search nearestCentroid. */
    void (*nearestRows)(const float *v, int64_t n, const float *c,
                        int64_t k, int32_t *out);

    // ---- optimizer ----
    /** One AdamW element-update over [0, n): identical formula to the
     *  reference scalar loop in nn/adamw.cc. */
    void (*adamwStep)(float *p, float *m, float *v, const float *g,
                      int64_t n, float lr, float beta1, float beta2,
                      float eps, float weight_decay, float bc1,
                      float bc2);
};

/** The backend the process resolved to (env + CPU + build). */
const KernelTable &active();

/** A specific backend's table; falls back to scalar when @p b was not
 *  compiled in or the CPU lacks it. */
const KernelTable &table(Backend b);

/** Backends usable in this process (always contains kScalar). */
std::vector<Backend> availableBackends();

// ----------------------------------------------------------------------
// Opt-in fast-math palette decode (EDKM_FAST_MATH).
// ----------------------------------------------------------------------

/**
 * The relaxed palette-decode variant: FMA plus reassociated partial
 * accumulators, deliberately NOT bit-identical to the contract path.
 * Returns nullptr when compiled out (-DEDKM_FAST_MATH=OFF) or when the
 * CPU lacks the ISA it was built for. It is never part of any
 * KernelTable — callers (core/palettize.cc) reach it only when
 * fastMathEnabled() says the process explicitly opted in.
 */
PaletteDotFn fastMathPaletteDot();

/** Variant name for bench rows ("avx2-fma", "portable-fma"); nullptr
 *  when fastMathPaletteDot() is. */
const char *fastMathVariantName();

/** Whether the process opted into the fast-math variant: EDKM_FAST_MATH
 *  =1|on|true|yes in the environment at startup, or setFastMath(true).
 *  Default off — the bit-identity contract holds unless a human asked
 *  to trade it away. */
bool fastMathEnabled();
void setFastMath(bool on);

// ----------------------------------------------------------------------
// Layout helpers with no per-backend variance.
// ----------------------------------------------------------------------

/** Gather rows: out[i,:] = table[idx[i],:] (row length k), coalescing
 *  runs of consecutive source rows into single memcpy calls. */
void gatherRowsU16(const float *table, int64_t k, const uint16_t *idx,
                   int64_t n, float *out);

/** Gather scalars: out[i] = src[idx[i]]. */
void gatherU16(const float *src, const uint16_t *idx, int64_t n,
               float *out);

} // namespace kernels
} // namespace edkm

#endif // EDKM_KERNELS_KERNELS_H_
