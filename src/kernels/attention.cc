#include "kernels/attention.h"

#include "device/device_manager.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "tensor/ops.h" // toF32Contig
#include "util/logging.h"

namespace edkm {
namespace kernels {

Tensor
attentionTable(const Tensor &u, const Tensor &c, float tau)
{
    EDKM_CHECK(u.defined() && c.defined(),
               "attentionTable: undefined input");
    EDKM_CHECK(tau > 0.0f, "attentionTable: tau must be positive");
    int64_t rows = u.numel();
    int64_t k = c.numel();
    Tensor uc = toF32Contig(u);
    Tensor cc = toF32Contig(c);
    Tensor out = Tensor::empty({rows, k}, DType::kF32, u.device());
    const float *pu = uc.rawData<const float>();
    const float *pc = cc.rawData<const float>();
    float *po = out.rawData<float>();
    float neg_inv_tau = -1.0f / tau;
    const KernelTable &kt = active();
    runtime::parallelFor(0, rows, runtime::grainFor(rows, 8 * k),
                         [&](int64_t rb, int64_t re) {
                             kt.attentionRows(pu + rb, re - rb, pc, k,
                                              neg_inv_tau, po + rb * k);
                         });
    // Same simulated cost as the composed 4-pass chain it replaces
    // (sub + square + mulScalar + 5-op softmax).
    chargeFlops(8.0 * static_cast<double>(rows) * static_cast<double>(k),
                u.device());
    return out;
}

Tensor
gatherTableRows(const Tensor &table, const Tensor &idx)
{
    EDKM_CHECK(table.dim() == 2, "gatherTableRows: table must be 2-d");
    EDKM_CHECK(idx.dtype() == DType::kU16,
               "gatherTableRows: u16 index list expected");
    int64_t n = idx.numel();
    int64_t k = table.size(1);
    // Contiguity resolved once, outside the gather loop.
    Tensor tc = table.isContiguous() ? table : table.contiguous();
    Tensor ic = idx.isContiguous() ? idx : idx.contiguous();
    Tensor out = Tensor::empty({n, k}, DType::kF32, table.device());
    const float *pt = tc.rawData<const float>();
    const uint16_t *pi = ic.rawData<const uint16_t>();
    float *po = out.rawData<float>();
    runtime::parallelFor(0, n, runtime::grainFor(n, k),
                         [&](int64_t cb, int64_t ce) {
                             gatherRowsU16(pt, k, pi + cb, ce - cb,
                                           po + cb * k);
                         });
    chargeFlops(static_cast<double>(n * k), table.device());
    return out;
}

void
assignNearest(const std::vector<float> &centroids, const float *values,
              int64_t n, int32_t *out)
{
    EDKM_CHECK(!centroids.empty(), "assignNearest: no centroids");
    const float *pc = centroids.data();
    int64_t k = static_cast<int64_t>(centroids.size());
    const KernelTable &kt = active();
    runtime::parallelFor(0, n, runtime::grainFor(n, 2 * k),
                         [&](int64_t cb, int64_t ce) {
                             kt.nearestRows(values + cb, ce - cb, pc, k,
                                            out + cb);
                         });
}

} // namespace kernels
} // namespace edkm
