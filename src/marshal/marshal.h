/**
 * @file
 * Cross-device tensor marshaling (paper section 2.1).
 *
 * MarshalContext is a SavedTensorHooks implementation that offloads
 * tensors saved for backward from the GPU to CPU memory, while avoiding
 * redundant copies: before copying, it checks whether a tensor with the
 * same data storage has already been offloaded, by navigating the forward
 * computation graph through data-storage-invariant operations (view,
 * transpose, permute, slice, select, squeeze, unsqueeze) within a bounded
 * number of hops (the paper found 4 sufficient). On a hit it records only
 * a reference to the existing CPU copy plus the list of view operations
 * needed to reconstruct the saved tensor at unpack time.
 *
 * Detection strategies:
 *  - kGraphWalk  (paper-faithful): BFS over producer/consumer edges of
 *    storage-invariant nodes, bounded by maxHops.
 *  - kStorageId  (extension): offload the *whole* source storage once and
 *    key the registry by storage identity; any view reconstructs from
 *    metadata. Trades potentially larger copies for O(1) detection.
 *  - kNone: always copy (the baseline in Table 2's first row).
 *
 * Set offloadEnabled=false for the no-offload baseline where saved
 * tensors simply stay on the GPU.
 *
 * Async offload (asyncOffload=true): the device->CPU materialisation is
 * queued on the edkm::runtime pool instead of blocking pack(), hiding
 * marshaling latency behind forward compute exactly as the paper hides
 * the transfer behind the next layer's kernels. Registry bookkeeping
 * stays synchronous, so duplicate detection is unaffected; unpack()
 * joins the specific entry's copy and sync() joins all of them.
 * offloadAsync() additionally lets callers prefetch a tensor they know
 * will be saved (keyed by storage identity, any detection mode).
 */

#ifndef EDKM_MARSHAL_MARSHAL_H_
#define EDKM_MARSHAL_MARSHAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "autograd/node.h"
#include "device/device.h"
#include "tensor/tensor.h"

namespace edkm {

/** Tunables of the marshaling layer. */
struct MarshalConfig
{
    /** Duplicate-detection strategy. */
    enum class Detection { kGraphWalk, kStorageId, kNone };

    Detection detection = Detection::kGraphWalk;

    /** Bound on the forward-graph walk (paper: 4). */
    int maxHops = 4;

    /** Where to offload saved tensors. */
    Device offloadDevice = Device::cpu();

    /** Master switch; false = retain saved tensors on their device. */
    bool offloadEnabled = true;

    /** Tensors smaller than this stay on their device (not worth a
     *  transaction). */
    int64_t minOffloadBytes = 1024;

    /**
     * Queue copies on the runtime pool instead of blocking pack().
     *
     * Contract (as with any async D2H copy): the source storage must
     * not be mutated in place until the copy completes. unpack() and
     * the destructor join automatically, but code that mutates saved
     * storages *before* backward — e.g. an optimizer step while a
     * never-backwarded auxiliary graph still holds saves — must call
     * MarshalContext::sync() first.
     */
    bool asyncOffload = false;

    /**
     * Double-buffered prefetch: offloadAsync() keeps the two most
     * recent eager snapshots and recycles the older one's CPU storage
     * for the next copy when nothing references it any more (its saves
     * were unpacked or never taken) and the sizes match. Steady-state
     * loops that prefetch one same-sized tensor per iteration then run
     * with two CPU buffers total instead of one allocation per
     * iteration. Reuse is skipped — never forced — when the old
     * snapshot is still referenced or still copying.
     */
    bool doubleBuffer = false;
};

/** Counters exposed for tests and the Table 2 / Fig 2 benches. */
struct MarshalStats
{
    int64_t packs = 0;             ///< saved tensors entering the hook
    int64_t copies = 0;            ///< actual device->CPU materialisations
    int64_t duplicatesAvoided = 0; ///< saves resolved to a reference
    int64_t bytesCopied = 0;       ///< bytes actually moved to CPU
    int64_t bytesAvoided = 0;      ///< logical bytes NOT moved thanks to
                                   ///< duplicate detection
    int64_t unpacks = 0;           ///< backward retrievals
    int64_t walkSteps = 0;         ///< graph-walk nodes visited in total
    int64_t passthroughs = 0;      ///< small/CPU tensors kept in place
    int64_t asyncCopies = 0;       ///< copies queued off the critical path
    int64_t bufferReuses = 0;      ///< offload buffers recycled
                                   ///< (doubleBuffer)
};

/**
 * Saved-tensor hook pair implementing eDKM's marshaling. Install around a
 * forward pass with SavedTensorHooksGuard; must outlive the backward pass
 * of every graph built while installed.
 *
 * Thread model: single-owner. One thread drives pack()/unpack()/sync();
 * registry bookkeeping is never touched concurrently. The only
 * cross-thread traffic is the async offload copies themselves, which
 * run on the runtime pool and synchronise with the owner exclusively
 * through the entry futures in `pending_` (future::get is the
 * happens-before edge) — hence no mutex, and nothing here is annotated
 * with GUARDED_BY.
 */
class MarshalContext : public SavedTensorHooks
{
  public:
    explicit MarshalContext(MarshalConfig config = MarshalConfig{});
    ~MarshalContext() override;

    std::shared_ptr<void> pack(const SavedSource &src) override;
    Tensor unpack(const std::shared_ptr<void> &handle) override;

    /**
     * Prefetch: begin copying @p t's whole storage to the offload
     * device in the background (inline when asyncOffload is off).
     * Keyed by storage identity; a later pack() of @p t or any view of
     * its storage resolves to this copy without moving bytes again.
     * No-op for tensors that would pass through (small / already on the
     * offload device / offload disabled).
     *
     * The copy is a *snapshot*: if the storage is mutated in place
     * (e.g. an optimizer step), call offloadAsync again before the
     * next forward — repeated calls replace the registered snapshot.
     */
    void offloadAsync(const Tensor &t);

    /**
     * Join every queued copy; rethrows the first copy failure. Called
     * implicitly by unpack() (per entry) and the destructor. Must be
     * called before mutating any storage saved while this context was
     * installed (see MarshalConfig::asyncOffload).
     */
    void sync();

    const MarshalStats &stats() const { return stats_; }
    const MarshalConfig &config() const { return config_; }

    /** Bytes currently resident on the offload device via this context. */
    int64_t residentBytes() const;

    /** Copies queued but not yet joined (diagnostics/tests). */
    int64_t pendingCopies() const;

    /** Reset counters (keeps live entries). */
    void resetStats() { stats_ = MarshalStats{}; }

  private:
    struct CpuEntry;
    struct PackHandle;

    /** Walk the forward graph from @p start looking for an offloaded
     *  neighbor; fills @p trace with replay ops on success. */
    std::shared_ptr<CpuEntry> graphWalk(
        const std::shared_ptr<VarImpl> &start,
        std::vector<ViewSpec> &trace);

    /** Registry lookup helper (prunes dead weak entries lazily). */
    std::shared_ptr<CpuEntry> lookup(uint64_t key);

    /** Eager-offload registry lookup (storage-id keyed). */
    std::shared_ptr<CpuEntry> lookupEager(uint64_t storage_id);

    /** Materialise @p entry's CPU copy of @p t's *whole storage*,
     *  inline or on the runtime pool per config_.asyncOffload. A
     *  non-null @p reuse storage (same size) is written in place
     *  instead of allocating. */
    void copyStorage(const std::shared_ptr<CpuEntry> &entry,
                     const Tensor &t,
                     std::shared_ptr<Storage> reuse = nullptr);

    /** Materialise @p entry's CPU copy of @p t's logical contents. */
    void copyLogical(const std::shared_ptr<CpuEntry> &entry,
                     const Tensor &t);

    /** Run @p copy now or enqueue it on the runtime pool. */
    void dispatchCopy(const std::shared_ptr<CpuEntry> &entry,
                      std::function<void()> copy);

    MarshalConfig config_;
    MarshalStats stats_;

    /** var-id (graph walk) or storage-id (storage mode) -> CPU entry. */
    std::unordered_map<uint64_t, std::weak_ptr<CpuEntry>> registry_;

    /** storage-id -> eagerly offloaded entry (offloadAsync). Owned:
     *  prefetched copies stay resident for the context's lifetime
     *  (bounded to the latest two when doubleBuffer is on). */
    std::unordered_map<uint64_t, std::shared_ptr<CpuEntry>>
        eager_registry_;

    /** Rotating eager snapshots (doubleBuffer): newest and previous.
     *  The one rotated out donates its CPU storage when unreferenced. */
    std::shared_ptr<CpuEntry> db_front_;
    std::shared_ptr<CpuEntry> db_back_;

    /** Futures of copies queued and not yet joined. */
    std::vector<std::shared_future<void>> pending_;

    /** First failure of an already-pruned copy (rethrown by sync()). */
    std::exception_ptr deferred_error_;

    /** Shared byte counter decremented by dying entries. */
    std::shared_ptr<std::atomic<int64_t>> resident_bytes_;
};

} // namespace edkm

#endif // EDKM_MARSHAL_MARSHAL_H_
