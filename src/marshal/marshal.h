/**
 * @file
 * Cross-device tensor marshaling (paper section 2.1).
 *
 * MarshalContext is a SavedTensorHooks implementation that offloads
 * tensors saved for backward from the GPU to CPU memory, while avoiding
 * redundant copies: before copying, it checks whether a tensor with the
 * same data storage has already been offloaded, by navigating the forward
 * computation graph through data-storage-invariant operations (view,
 * transpose, permute, slice, select, squeeze, unsqueeze) within a bounded
 * number of hops (the paper found 4 sufficient). On a hit it records only
 * a reference to the existing CPU copy plus the list of view operations
 * needed to reconstruct the saved tensor at unpack time.
 *
 * Detection strategies:
 *  - kGraphWalk  (paper-faithful): BFS over producer/consumer edges of
 *    storage-invariant nodes, bounded by maxHops.
 *  - kStorageId  (extension): offload the *whole* source storage once and
 *    key the registry by storage identity; any view reconstructs from
 *    metadata. Trades potentially larger copies for O(1) detection.
 *  - kNone: always copy (the baseline in Table 2's first row).
 *
 * Set offloadEnabled=false for the no-offload baseline where saved
 * tensors simply stay on the GPU.
 */

#ifndef EDKM_MARSHAL_MARSHAL_H_
#define EDKM_MARSHAL_MARSHAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "autograd/node.h"
#include "device/device.h"
#include "tensor/tensor.h"

namespace edkm {

/** Tunables of the marshaling layer. */
struct MarshalConfig
{
    /** Duplicate-detection strategy. */
    enum class Detection { kGraphWalk, kStorageId, kNone };

    Detection detection = Detection::kGraphWalk;

    /** Bound on the forward-graph walk (paper: 4). */
    int maxHops = 4;

    /** Where to offload saved tensors. */
    Device offloadDevice = Device::cpu();

    /** Master switch; false = retain saved tensors on their device. */
    bool offloadEnabled = true;

    /** Tensors smaller than this stay on their device (not worth a
     *  transaction). */
    int64_t minOffloadBytes = 1024;
};

/** Counters exposed for tests and the Table 2 / Fig 2 benches. */
struct MarshalStats
{
    int64_t packs = 0;             ///< saved tensors entering the hook
    int64_t copies = 0;            ///< actual device->CPU materialisations
    int64_t duplicatesAvoided = 0; ///< saves resolved to a reference
    int64_t bytesCopied = 0;       ///< bytes actually moved to CPU
    int64_t bytesAvoided = 0;      ///< logical bytes NOT moved thanks to
                                   ///< duplicate detection
    int64_t unpacks = 0;           ///< backward retrievals
    int64_t walkSteps = 0;         ///< graph-walk nodes visited in total
    int64_t passthroughs = 0;      ///< small/CPU tensors kept in place
};

/**
 * Saved-tensor hook pair implementing eDKM's marshaling. Install around a
 * forward pass with SavedTensorHooksGuard; must outlive the backward pass
 * of every graph built while installed.
 */
class MarshalContext : public SavedTensorHooks
{
  public:
    explicit MarshalContext(MarshalConfig config = MarshalConfig{});
    ~MarshalContext() override;

    std::shared_ptr<void> pack(const SavedSource &src) override;
    Tensor unpack(const std::shared_ptr<void> &handle) override;

    const MarshalStats &stats() const { return stats_; }
    const MarshalConfig &config() const { return config_; }

    /** Bytes currently resident on the offload device via this context. */
    int64_t residentBytes() const;

    /** Reset counters (keeps live entries). */
    void resetStats() { stats_ = MarshalStats{}; }

  private:
    struct CpuEntry;
    struct PackHandle;

    /** Walk the forward graph from @p start looking for an offloaded
     *  neighbor; fills @p trace with replay ops on success. */
    std::shared_ptr<CpuEntry> graphWalk(
        const std::shared_ptr<VarImpl> &start,
        std::vector<ViewSpec> &trace);

    /** Registry lookup helper (prunes dead weak entries lazily). */
    std::shared_ptr<CpuEntry> lookup(uint64_t key);

    MarshalConfig config_;
    MarshalStats stats_;

    /** var-id (graph walk) or storage-id (storage mode) -> CPU entry. */
    std::unordered_map<uint64_t, std::weak_ptr<CpuEntry>> registry_;

    /** Shared byte counter decremented by dying entries. */
    std::shared_ptr<std::atomic<int64_t>> resident_bytes_;
};

} // namespace edkm

#endif // EDKM_MARSHAL_MARSHAL_H_
