#include "marshal/marshal.h"

#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_set>
#include <utility>

#include "device/device_manager.h"
#include "runtime/runtime.h"
#include "util/logging.h"

namespace edkm {

/**
 * One materialised CPU copy. Kept alive by the saved-tensor handles that
 * reference it; the registry holds only weak pointers, so the copy dies
 * with the autograd graph (matching PyTorch packed-object lifetime).
 *
 * With asyncOffload the copy job may still be in flight: `ready` joins
 * it. The job holds a shared_ptr to the entry, so destruction never
 * races the copy.
 */
struct MarshalContext::CpuEntry
{
    Tensor cpuTensor;   ///< contiguous logical copy on the offload device
    Device srcDevice;   ///< where the original lived
    uint64_t srcStorageId = 0;
    std::shared_ptr<std::atomic<int64_t>> residentBytes; ///< shared counter
    std::shared_future<void> ready; ///< invalid == copied synchronously

    /** Block until cpuTensor is materialised (rethrows copy errors). */
    void
    join() const
    {
        if (ready.valid()) {
            ready.get();
        }
    }

    ~CpuEntry()
    {
        if (ready.valid()) {
            ready.wait(); // never destruct under a live copy job
        }
        if (residentBytes) {
            residentBytes->fetch_sub(cpuTensor.storageBytes(),
                                     std::memory_order_relaxed);
        }
    }
};

/** Opaque handle returned by pack(). */
struct MarshalContext::PackHandle
{
    std::shared_ptr<CpuEntry> entry; ///< null for passthrough
    std::vector<ViewSpec> trace;     ///< replay: entry tensor -> saved tensor
    Tensor passthrough;              ///< retained in place (small / CPU /
                                     ///< offload disabled)
    Device origDevice;               ///< device to restore onto

    /** Reconstruct-by-metadata over entry->cpuTensor's storage (used by
     *  storage-id dedup and eager-offload hits, where the storage may
     *  not be materialised until unpack). */
    bool viewOfStorage = false;
    Shape viewShape;
    Shape viewStrides;
    int64_t viewOffset = 0;
    DType viewDtype = DType::kF32;
};

MarshalContext::MarshalContext(MarshalConfig config)
    : config_(config),
      resident_bytes_(std::make_shared<std::atomic<int64_t>>(0))
{
    EDKM_CHECK(config_.maxHops >= 0, "maxHops must be >= 0");
}

MarshalContext::~MarshalContext()
{
    // Join outstanding copies; swallow errors (nothing can observe the
    // result any more).
    for (const std::shared_future<void> &f : pending_) {
        if (f.valid()) {
            f.wait();
        }
    }
}

int64_t
MarshalContext::residentBytes() const
{
    return resident_bytes_->load(std::memory_order_relaxed);
}

int64_t
MarshalContext::pendingCopies() const
{
    int64_t live = 0;
    for (const std::shared_future<void> &f : pending_) {
        if (f.valid() && f.wait_for(std::chrono::seconds(0)) !=
                             std::future_status::ready) {
            ++live;
        }
    }
    return live;
}

void
MarshalContext::sync()
{
    std::exception_ptr first;
    std::swap(first, deferred_error_);
    for (const std::shared_future<void> &f : pending_) {
        if (!f.valid()) {
            continue;
        }
        try {
            f.get();
        } catch (...) {
            if (!first) {
                first = std::current_exception();
            }
        }
    }
    pending_.clear();
    if (first) {
        std::rethrow_exception(first);
    }
}

void
MarshalContext::dispatchCopy(const std::shared_ptr<CpuEntry> &entry,
                             std::function<void()> copy)
{
    if (!config_.asyncOffload) {
        copy();
        return;
    }
    ++stats_.asyncCopies;
    // The job holds the entry alive; the shared future joins it from
    // unpack (per entry) or sync (all).
    std::shared_ptr<runtime::ThreadPool> pool =
        runtime::Runtime::instance().pool();
    entry->ready =
        pool->submit([entry, job = std::move(copy)] { job(); }).share();
    // Drop already-finished futures so pending_ tracks in-flight work
    // instead of the context's whole copy history; failures of pruned
    // copies are parked for the next sync() to rethrow.
    if (pending_.size() >= 64) {
        std::vector<std::shared_future<void>> live;
        live.reserve(pending_.size());
        for (const std::shared_future<void> &f : pending_) {
            if (!f.valid()) {
                continue;
            }
            if (f.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready) {
                live.push_back(f);
                continue;
            }
            try {
                f.get();
            } catch (...) {
                if (!deferred_error_) {
                    deferred_error_ = std::current_exception();
                }
            }
        }
        pending_ = std::move(live);
    }
    pending_.push_back(entry->ready);
}

void
MarshalContext::copyLogical(const std::shared_ptr<CpuEntry> &entry,
                            const Tensor &t)
{
    Device dst = config_.offloadDevice;
    auto counter = resident_bytes_;
    dispatchCopy(entry, [entry, t, dst, counter] {
        entry->cpuTensor = t.to(dst);
        counter->fetch_add(entry->cpuTensor.storageBytes(),
                           std::memory_order_relaxed);
    });
}

void
MarshalContext::copyStorage(const std::shared_ptr<CpuEntry> &entry,
                            const Tensor &t, std::shared_ptr<Storage> reuse)
{
    Device src = t.device();
    Device dst = config_.offloadDevice;
    auto counter = resident_bytes_;
    dispatchCopy(entry, [entry, t, src, dst, counter,
                         reuse = std::move(reuse)]() mutable {
        std::shared_ptr<Storage> cpu_storage =
            reuse ? std::move(reuse)
                  : Storage::allocate(t.storageBytes(), dst);
        std::memcpy(cpu_storage->data(), t.storagePtr()->data(),
                    static_cast<size_t>(t.storageBytes()));
        DeviceManager::instance().recordTransfer(src, dst,
                                                 t.storageBytes());
        int64_t elems = t.storageBytes() / dtypeSize(t.dtype());
        entry->cpuTensor = Tensor::wrapStorage(
            std::move(cpu_storage), {elems}, {1}, 0, t.dtype());
        counter->fetch_add(entry->cpuTensor.storageBytes(),
                           std::memory_order_relaxed);
    });
}

std::shared_ptr<MarshalContext::CpuEntry>
MarshalContext::lookup(uint64_t key)
{
    auto it = registry_.find(key);
    if (it == registry_.end()) {
        return nullptr;
    }
    std::shared_ptr<CpuEntry> entry = it->second.lock();
    if (!entry) {
        registry_.erase(it);
    }
    return entry;
}

std::shared_ptr<MarshalContext::CpuEntry>
MarshalContext::lookupEager(uint64_t storage_id)
{
    auto it = eager_registry_.find(storage_id);
    return it == eager_registry_.end() ? nullptr : it->second;
}

void
MarshalContext::offloadAsync(const Tensor &t)
{
    if (!t.defined()) {
        return;
    }
    int64_t logical_bytes = t.numel() * dtypeSize(t.dtype());
    bool offloadable = config_.offloadEnabled &&
                       t.device() != config_.offloadDevice &&
                       logical_bytes >= config_.minOffloadBytes;
    if (!offloadable) {
        return;
    }
    // Re-offloading the same storage replaces the entry: the storage
    // may have been mutated in place (e.g. an optimizer step), so the
    // snapshot must be refreshed — call offloadAsync once per
    // iteration, before the forward that saves the tensor. Handles
    // from earlier saves keep the old snapshot alive (and correct for
    // their graph's backward).
    auto entry = std::make_shared<CpuEntry>();
    entry->srcDevice = t.device();
    entry->srcStorageId = t.storageId();
    entry->residentBytes = resident_bytes_;

    // Double buffering: rotate the eager window and try to recycle the
    // snapshot falling out of it. Stealing is only legal when nothing
    // else can observe the old bytes: its copy has settled, no pack
    // handle (saved tensor) references the entry, and the entry holds
    // the storage's sole reference.
    std::shared_ptr<Storage> reuse;
    if (config_.doubleBuffer) {
        std::shared_ptr<CpuEntry> cand = std::move(db_back_);
        db_back_ = std::move(db_front_);
        db_front_ = entry;
        if (cand) {
            auto it = eager_registry_.find(cand->srcStorageId);
            if (it != eager_registry_.end() && it->second == cand) {
                eager_registry_.erase(it);
            }
            bool settled =
                !cand->ready.valid() ||
                cand->ready.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready;
            if (settled && cand.use_count() == 1 &&
                cand->cpuTensor.defined() &&
                cand->cpuTensor.storageBytes() == t.storageBytes() &&
                cand->cpuTensor.storagePtr().use_count() == 1) {
                reuse = cand->cpuTensor.storagePtr();
                resident_bytes_->fetch_sub(
                    cand->cpuTensor.storageBytes(),
                    std::memory_order_relaxed);
                cand->cpuTensor = Tensor();
                cand->residentBytes = nullptr;
                ++stats_.bufferReuses;
            }
        }
    }

    copyStorage(entry, t, std::move(reuse));
    ++stats_.copies;
    stats_.bytesCopied += t.storageBytes();
    eager_registry_[t.storageId()] = std::move(entry);
}

std::shared_ptr<MarshalContext::CpuEntry>
MarshalContext::graphWalk(const std::shared_ptr<VarImpl> &start,
                          std::vector<ViewSpec> &trace)
{
    if (!start) {
        return nullptr;
    }

    // BFS state: variable impl + the replay trace that turns the *found*
    // entry's content into the content of the tensor being saved.
    struct Item
    {
        std::shared_ptr<VarImpl> impl;
        int hops;
        std::vector<ViewSpec> trace;
    };

    std::deque<Item> queue;
    std::unordered_set<uint64_t> visited;
    queue.push_back({start, 0, {}});
    visited.insert(start->id);

    while (!queue.empty()) {
        Item item = std::move(queue.front());
        queue.pop_front();
        ++stats_.walkSteps;

        if (std::shared_ptr<CpuEntry> entry = lookup(item.impl->id)) {
            trace = std::move(item.trace);
            return entry;
        }
        if (item.hops >= config_.maxHops) {
            continue;
        }

        // Producer direction: X = spec(I)  =>  prepend spec.
        if (item.impl->gradFn && item.impl->gradFn->storageInvariant()) {
            const Node &fn = *item.impl->gradFn;
            EDKM_ASSERT(fn.inputImpls.size() == 1,
                        "view op with multiple inputs");
            if (auto input = fn.inputImpls[0].lock()) {
                if (visited.insert(input->id).second) {
                    std::vector<ViewSpec> t = item.trace;
                    t.insert(t.begin(), *fn.viewSpec());
                    queue.push_back({input, item.hops + 1, std::move(t)});
                }
            }
        }

        // Consumer direction: O = spec(X)  =>  X = spec^-1(O), prepend
        // the inverse (only when the op is lossless).
        for (const std::weak_ptr<Node> &weak : item.impl->consumers) {
            std::shared_ptr<Node> c = weak.lock();
            if (!c || !c->storageInvariant() ||
                !c->viewSpec()->invertible()) {
                continue;
            }
            std::shared_ptr<VarImpl> out = c->outputImpl.lock();
            if (!out || !visited.insert(out->id).second) {
                continue;
            }
            std::vector<ViewSpec> t = item.trace;
            t.insert(t.begin(), c->viewSpec()->inverse());
            queue.push_back({out, item.hops + 1, std::move(t)});
        }
    }
    return nullptr;
}

std::shared_ptr<void>
MarshalContext::pack(const SavedSource &src)
{
    ++stats_.packs;
    const Tensor &t = src.tensor;
    auto handle = std::make_shared<PackHandle>();
    handle->origDevice = t.defined() ? t.device() : Device::cpu();

    int64_t logical_bytes = t.numel() * dtypeSize(t.dtype());

    bool offloadable = config_.offloadEnabled && t.defined() &&
                       t.device() != config_.offloadDevice &&
                       logical_bytes >= config_.minOffloadBytes;
    if (!offloadable) {
        handle->passthrough = t;
        ++stats_.passthroughs;
        return handle;
    }

    // Fill reconstruct-by-metadata info for a whole-storage entry.
    auto view_of_storage = [&](const std::shared_ptr<CpuEntry> &entry) {
        handle->entry = entry;
        handle->viewOfStorage = true;
        handle->viewShape = t.shape();
        handle->viewStrides = t.strides();
        handle->viewOffset = t.offset();
        handle->viewDtype = t.dtype();
    };

    // Eager-offload registry first (storage identity, any mode).
    if (auto entry = lookupEager(t.storageId())) {
        view_of_storage(entry);
        ++stats_.duplicatesAvoided;
        stats_.bytesAvoided += logical_bytes;
        return handle;
    }

    // Duplicate detection.
    if (config_.detection == MarshalConfig::Detection::kGraphWalk) {
        std::vector<ViewSpec> trace;
        if (auto entry = graphWalk(src.impl, trace)) {
            handle->entry = std::move(entry);
            handle->trace = std::move(trace);
            ++stats_.duplicatesAvoided;
            stats_.bytesAvoided += logical_bytes;
            return handle;
        }
    } else if (config_.detection == MarshalConfig::Detection::kStorageId) {
        if (auto entry = lookup(t.storageId())) {
            // Reconstruct this view over the full offloaded storage
            // (deferred to unpack: the copy may still be in flight).
            view_of_storage(entry);
            ++stats_.duplicatesAvoided;
            stats_.bytesAvoided += logical_bytes;
            return handle;
        }
    }

    // Miss: materialise a CPU copy (inline, or queued on the runtime
    // pool when asyncOffload is on) and register it immediately so
    // subsequent saves dedup against it either way.
    auto entry = std::make_shared<CpuEntry>();
    entry->srcDevice = t.device();
    entry->srcStorageId = t.storageId();
    entry->residentBytes = resident_bytes_;
    if (config_.detection == MarshalConfig::Detection::kStorageId) {
        // Offload the whole storage so any view reconstructs later.
        copyStorage(entry, t);
        view_of_storage(entry);
        registry_[t.storageId()] = entry;
        stats_.bytesCopied += t.storageBytes();
    } else {
        copyLogical(entry, t);
        if (src.impl) {
            registry_[src.impl->id] = entry;
        }
        stats_.bytesCopied += logical_bytes;
    }
    ++stats_.copies;
    handle->entry = std::move(entry);
    return handle;
}

Tensor
MarshalContext::unpack(const std::shared_ptr<void> &opaque)
{
    ++stats_.unpacks;
    auto handle = std::static_pointer_cast<PackHandle>(opaque);
    EDKM_ASSERT(handle != nullptr, "unpack: null handle");

    // Passthroughs carry the tensor directly.
    if (handle->passthrough.defined()) {
        if (handle->passthrough.device() != handle->origDevice) {
            return handle->passthrough.to(handle->origDevice);
        }
        return handle->passthrough;
    }

    EDKM_ASSERT(handle->entry != nullptr, "unpack: empty handle");
    handle->entry->join(); // async copy may still be in flight

    // Storage-id / eager-offload hits reconstruct the view by metadata
    // over the offloaded whole storage.
    if (handle->viewOfStorage) {
        Tensor content = Tensor::wrapStorage(
            handle->entry->cpuTensor.storagePtr(), handle->viewShape,
            handle->viewStrides, handle->viewOffset, handle->viewDtype);
        return content.to(handle->origDevice);
    }

    Tensor content = handle->entry->cpuTensor;
    for (const ViewSpec &spec : handle->trace) {
        content = spec.apply(content);
    }
    return content.to(handle->origDevice);
}

} // namespace edkm
