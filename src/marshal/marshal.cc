#include "marshal/marshal.h"

#include <cstring>
#include <deque>
#include <unordered_set>

#include "device/device_manager.h"
#include "util/logging.h"

namespace edkm {

/**
 * One materialised CPU copy. Kept alive by the saved-tensor handles that
 * reference it; the registry holds only weak pointers, so the copy dies
 * with the autograd graph (matching PyTorch packed-object lifetime).
 */
struct MarshalContext::CpuEntry
{
    Tensor cpuTensor;   ///< contiguous logical copy on the offload device
    Device srcDevice;   ///< where the original lived
    uint64_t srcStorageId = 0;
    std::shared_ptr<std::atomic<int64_t>> residentBytes; ///< shared counter

    ~CpuEntry()
    {
        if (residentBytes) {
            residentBytes->fetch_sub(cpuTensor.storageBytes(),
                                     std::memory_order_relaxed);
        }
    }
};

/** Opaque handle returned by pack(). */
struct MarshalContext::PackHandle
{
    std::shared_ptr<CpuEntry> entry; ///< null for passthrough
    std::vector<ViewSpec> trace;     ///< replay: entry tensor -> saved tensor
    Tensor passthrough;              ///< retained in place (small / CPU /
                                     ///< offload disabled)
    Device origDevice;               ///< device to restore onto
};

MarshalContext::MarshalContext(MarshalConfig config)
    : config_(config),
      resident_bytes_(std::make_shared<std::atomic<int64_t>>(0))
{
    EDKM_CHECK(config_.maxHops >= 0, "maxHops must be >= 0");
}

MarshalContext::~MarshalContext() = default;

int64_t
MarshalContext::residentBytes() const
{
    return resident_bytes_->load(std::memory_order_relaxed);
}

std::shared_ptr<MarshalContext::CpuEntry>
MarshalContext::lookup(uint64_t key)
{
    auto it = registry_.find(key);
    if (it == registry_.end()) {
        return nullptr;
    }
    std::shared_ptr<CpuEntry> entry = it->second.lock();
    if (!entry) {
        registry_.erase(it);
    }
    return entry;
}

std::shared_ptr<MarshalContext::CpuEntry>
MarshalContext::graphWalk(const std::shared_ptr<VarImpl> &start,
                          std::vector<ViewSpec> &trace)
{
    if (!start) {
        return nullptr;
    }

    // BFS state: variable impl + the replay trace that turns the *found*
    // entry's content into the content of the tensor being saved.
    struct Item
    {
        std::shared_ptr<VarImpl> impl;
        int hops;
        std::vector<ViewSpec> trace;
    };

    std::deque<Item> queue;
    std::unordered_set<uint64_t> visited;
    queue.push_back({start, 0, {}});
    visited.insert(start->id);

    while (!queue.empty()) {
        Item item = std::move(queue.front());
        queue.pop_front();
        ++stats_.walkSteps;

        if (std::shared_ptr<CpuEntry> entry = lookup(item.impl->id)) {
            trace = std::move(item.trace);
            return entry;
        }
        if (item.hops >= config_.maxHops) {
            continue;
        }

        // Producer direction: X = spec(I)  =>  prepend spec.
        if (item.impl->gradFn && item.impl->gradFn->storageInvariant()) {
            const Node &fn = *item.impl->gradFn;
            EDKM_ASSERT(fn.inputImpls.size() == 1,
                        "view op with multiple inputs");
            if (auto input = fn.inputImpls[0].lock()) {
                if (visited.insert(input->id).second) {
                    std::vector<ViewSpec> t = item.trace;
                    t.insert(t.begin(), *fn.viewSpec());
                    queue.push_back({input, item.hops + 1, std::move(t)});
                }
            }
        }

        // Consumer direction: O = spec(X)  =>  X = spec^-1(O), prepend
        // the inverse (only when the op is lossless).
        for (const std::weak_ptr<Node> &weak : item.impl->consumers) {
            std::shared_ptr<Node> c = weak.lock();
            if (!c || !c->storageInvariant() ||
                !c->viewSpec()->invertible()) {
                continue;
            }
            std::shared_ptr<VarImpl> out = c->outputImpl.lock();
            if (!out || !visited.insert(out->id).second) {
                continue;
            }
            std::vector<ViewSpec> t = item.trace;
            t.insert(t.begin(), c->viewSpec()->inverse());
            queue.push_back({out, item.hops + 1, std::move(t)});
        }
    }
    return nullptr;
}

std::shared_ptr<void>
MarshalContext::pack(const SavedSource &src)
{
    ++stats_.packs;
    const Tensor &t = src.tensor;
    auto handle = std::make_shared<PackHandle>();
    handle->origDevice = t.defined() ? t.device() : Device::cpu();

    int64_t logical_bytes = t.numel() * dtypeSize(t.dtype());

    bool offloadable = config_.offloadEnabled && t.defined() &&
                       t.device() != config_.offloadDevice &&
                       logical_bytes >= config_.minOffloadBytes;
    if (!offloadable) {
        handle->passthrough = t;
        ++stats_.passthroughs;
        return handle;
    }

    // Duplicate detection.
    if (config_.detection == MarshalConfig::Detection::kGraphWalk) {
        std::vector<ViewSpec> trace;
        if (auto entry = graphWalk(src.impl, trace)) {
            handle->entry = std::move(entry);
            handle->trace = std::move(trace);
            ++stats_.duplicatesAvoided;
            stats_.bytesAvoided += logical_bytes;
            return handle;
        }
    } else if (config_.detection == MarshalConfig::Detection::kStorageId) {
        if (auto entry = lookup(t.storageId())) {
            // Reconstruct this view over the full offloaded storage.
            handle->entry = entry;
            handle->passthrough = Tensor::wrapStorage(
                entry->cpuTensor.storagePtr(), t.shape(), t.strides(),
                t.offset(), t.dtype());
            ++stats_.duplicatesAvoided;
            stats_.bytesAvoided += logical_bytes;
            return handle;
        }
    }

    // Miss: materialise a CPU copy and register it.
    auto entry = std::make_shared<CpuEntry>();
    entry->srcDevice = t.device();
    entry->srcStorageId = t.storageId();
    entry->residentBytes = resident_bytes_;
    if (config_.detection == MarshalConfig::Detection::kStorageId) {
        // Offload the whole storage so any view reconstructs later.
        auto cpu_storage = Storage::allocate(t.storageBytes(),
                                             config_.offloadDevice);
        std::memcpy(cpu_storage->data(), t.storagePtr()->data(),
                    static_cast<size_t>(t.storageBytes()));
        DeviceManager::instance().recordTransfer(
            t.device(), config_.offloadDevice, t.storageBytes());
        int64_t elems = t.storageBytes() / dtypeSize(t.dtype());
        entry->cpuTensor = Tensor::wrapStorage(
            std::move(cpu_storage), {elems}, {1}, 0, t.dtype());
        // The handle reconstructs this particular view by metadata.
        handle->passthrough = Tensor::wrapStorage(
            entry->cpuTensor.storagePtr(), t.shape(), t.strides(),
            t.offset(), t.dtype());
        registry_[t.storageId()] = entry;
        stats_.bytesCopied += t.storageBytes();
    } else {
        entry->cpuTensor = t.to(config_.offloadDevice);
        if (src.impl) {
            registry_[src.impl->id] = entry;
        }
        stats_.bytesCopied += logical_bytes;
    }
    resident_bytes_->fetch_add(entry->cpuTensor.storageBytes(),
                               std::memory_order_relaxed);
    ++stats_.copies;
    handle->entry = std::move(entry);
    return handle;
}

Tensor
MarshalContext::unpack(const std::shared_ptr<void> &opaque)
{
    ++stats_.unpacks;
    auto handle = std::static_pointer_cast<PackHandle>(opaque);
    EDKM_ASSERT(handle != nullptr, "unpack: null handle");

    // Storage-id reconstructions and passthroughs carry the tensor
    // directly (possibly a CPU view needing restoration to the GPU).
    if (handle->passthrough.defined()) {
        if (handle->passthrough.device() != handle->origDevice) {
            return handle->passthrough.to(handle->origDevice);
        }
        return handle->passthrough;
    }

    EDKM_ASSERT(handle->entry != nullptr, "unpack: empty handle");
    Tensor content = handle->entry->cpuTensor;
    for (const ViewSpec &spec : handle->trace) {
        content = spec.apply(content);
    }
    return content.to(handle->origDevice);
}

} // namespace edkm
