#include "nn/attention.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "autograd/functional.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {
namespace nn {

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t heads, Rng &rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads)
{
    EDKM_CHECK(dim % heads == 0, "attention: heads must divide dim");
    EDKM_CHECK(head_dim_ % 2 == 0, "attention: head dim must be even");
    wq_ = registerModule("wq", std::make_shared<Linear>(dim, dim, rng));
    wk_ = registerModule("wk", std::make_shared<Linear>(dim, dim, rng));
    wv_ = registerModule("wv", std::make_shared<Linear>(dim, dim, rng));
    wo_ = registerModule("wo", std::make_shared<Linear>(dim, dim, rng));
}

void
buildRopeTables(int64_t s, int64_t head_dim, Tensor &cos_out,
                Tensor &sin_out)
{
    // RoPE frequencies: theta_i = 10000^{-2i/d}, cos/sin per position.
    cos_out = Tensor::empty({s, head_dim});
    sin_out = Tensor::empty({s, head_dim});
    float *pc = cos_out.rawData<float>();
    float *ps = sin_out.rawData<float>();
    int64_t half = head_dim / 2;
    for (int64_t pos = 0; pos < s; ++pos) {
        for (int64_t i = 0; i < half; ++i) {
            double freq = std::pow(
                10000.0, -2.0 * static_cast<double>(i) / head_dim);
            double angle = static_cast<double>(pos) * freq;
            float c = static_cast<float>(std::cos(angle));
            float sn = static_cast<float>(std::sin(angle));
            // Halves share the angle (rotate-half convention).
            pc[pos * head_dim + i] = c;
            pc[pos * head_dim + half + i] = c;
            ps[pos * head_dim + i] = sn;
            ps[pos * head_dim + half + i] = sn;
        }
    }
}

Tensor
buildCausalMask(int64_t s)
{
    Tensor mask = Tensor::zeros({1, s, s});
    float *pm = mask.rawData<float>();
    for (int64_t i = 0; i < s; ++i) {
        for (int64_t j = i + 1; j < s; ++j) {
            pm[i * s + j] = -1e9f;
        }
    }
    return mask;
}

Tensor
attentionStep(const Tensor &q, const Tensor &k_cache,
              const Tensor &v_cache, int64_t pos)
{
    EDKM_CHECK(q.dim() == 3 && q.size(1) == 1,
               "attentionStep: q must be [G,1,hd]");
    int64_t g = q.size(0), hd = q.size(2);
    for (const Tensor *cache : {&k_cache, &v_cache}) {
        EDKM_CHECK(cache->dim() == 3 && cache->size(0) == g &&
                       cache->size(2) == hd,
                   "attentionStep: cache must be [", g, ",cap,", hd, "]");
    }
    EDKM_CHECK(pos >= 0 && pos < k_cache.size(1),
               "attentionStep: position ", pos,
               " outside the cache capacity ", k_cache.size(1));

    // Attend over the valid prefix only. No mask is needed (every
    // cached position is visible to the current one), and none of the
    // dropped columns changes a bit: masked scores exp-flush to exactly
    // +0 in the full computation, softmax's denominator is unchanged by
    // adding zeros at the tail, and the value matmul's zero skip drops
    // zero-weight rows from the accumulation entirely.
    Tensor keys = k_cache.slice(1, 0, pos + 1);   // [G, pos+1, hd]
    Tensor vals = v_cache.slice(1, 0, pos + 1);
    float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    Tensor att = matmul(q, keys.transpose(1, 2)); // [G, 1, pos+1]
    att = mulScalar(att, scale);
    att = softmaxLastDim(att);
    return matmul(att, vals);                     // [G, 1, hd]
}

Tensor
attentionChunk(const Tensor &q, const Tensor &k_cache,
               const Tensor &v_cache, int64_t pos0)
{
    EDKM_CHECK(q.dim() == 3, "attentionChunk: q must be [G,c,hd]");
    int64_t g = q.size(0), c = q.size(1), hd = q.size(2);
    EDKM_CHECK(c >= 1, "attentionChunk: empty chunk");
    for (const Tensor *cache : {&k_cache, &v_cache}) {
        EDKM_CHECK(cache->dim() == 3 && cache->size(0) == g &&
                       cache->size(2) == hd,
                   "attentionChunk: cache must be [", g, ",cap,", hd,
                   "]");
    }
    int64_t cols = pos0 + c;
    EDKM_CHECK(pos0 >= 0 && cols <= k_cache.size(1),
               "attentionChunk: chunk [", pos0, ",", cols,
               ") outside the cache capacity ", k_cache.size(1));

    // The full forward adds a [1, S, S] additive mask (0 visible, -1e9
    // masked) before the softmax; replay exactly that for the chunk's
    // rows, over the [0, cols) columns that survive the tail drop.
    Tensor mask = Tensor::zeros({1, c, cols});
    float *pm = mask.rawData<float>();
    for (int64_t i = 0; i < c; ++i) {
        for (int64_t j = pos0 + i + 1; j < cols; ++j) {
            pm[i * cols + j] = -1e9f;
        }
    }

    Tensor keys = k_cache.slice(1, 0, cols);      // [G, cols, hd]
    Tensor vals = v_cache.slice(1, 0, cols);
    float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    Tensor att = matmul(q, keys.transpose(1, 2)); // [G, c, cols]
    att = mulScalar(att, scale);
    att = add(att, mask);
    att = softmaxLastDim(att);
    return matmul(att, vals);                     // [G, c, hd]
}

namespace {

/** Copy [G, 1, hd] contiguous rows into row @p pos of a [G, cap, hd]
 *  cache tensor. */
void
writeCacheRow(Tensor &cache, const Tensor &rows, int64_t pos)
{
    EDKM_CHECK(cache.isContiguous() && cache.dtype() == DType::kF32 &&
                   rows.isContiguous() && rows.dtype() == DType::kF32,
               "attention: KV cache rows must be contiguous f32");
    int64_t g = cache.size(0), cap = cache.size(1), hd = cache.size(2);
    const float *src = rows.rawData<float>();
    float *dst = cache.rawData<float>();
    for (int64_t i = 0; i < g; ++i) {
        std::memcpy(dst + (i * cap + pos) * hd, src + i * hd,
                    static_cast<size_t>(hd) * sizeof(float));
    }
}

} // namespace

Variable
MultiHeadAttention::forwardStep(const Variable &x, Tensor &k_cache,
                                Tensor &v_cache, int64_t pos)
{
    // Hard requirement, not just on the input: under grad mode the
    // projections would build a graph that attentionStep then severs,
    // silently dropping wq/wk/wv gradients while wo still gets them.
    EDKM_CHECK(!gradModeEnabled(),
               "attention: forwardStep is inference-only (wrap the "
               "decode loop in NoGradGuard)");
    const Shape &shape = x.data().shape();
    EDKM_CHECK(shape.size() == 3 && shape[1] == 1 && shape[2] == dim_,
               "attention: forwardStep expects [B,1,", dim_, "]");
    int64_t b = shape[0];
    EDKM_CHECK(k_cache.dim() == 3 && k_cache.size(0) == b * heads_ &&
                   k_cache.size(2) == head_dim_ &&
                   v_cache.shape() == k_cache.shape(),
               "attention: caches must be [B*H, cap, ", head_dim_, "]");
    EDKM_CHECK(pos >= 0 && pos < k_cache.size(1),
               "attention: position ", pos,
               " outside the cache capacity ", k_cache.size(1));
    // RoPE rows are a pure function of the position, so tables built at
    // any length agree row-for-row; grow geometrically as pos advances.
    if (dec_rope_len_ < pos + 1) {
        dec_rope_len_ = std::max(pos + 1, 2 * dec_rope_len_);
        buildRopeTables(dec_rope_len_, head_dim_, dec_cos_, dec_sin_);
    }
    Tensor cos_row = dec_cos_.slice(0, pos, pos + 1); // [1, hd]
    Tensor sin_row = dec_sin_.slice(0, pos, pos + 1);

    // Project and split heads exactly as forward() does for s == 1.
    auto split_heads = [&](Linear &proj) {
        Variable flat = af::view(x, {b, dim_});
        Variable y = proj.forward(flat); // [B, D]
        y = af::view(y, {b, 1, heads_, head_dim_});
        y = af::transpose(y, 1, 2); // [B, H, 1, hd]
        y = af::contiguous(y);
        return af::view(y, {b * heads_, 1, head_dim_});
    };
    Variable q = split_heads(*wq_);
    Variable k = split_heads(*wk_);
    Variable v = split_heads(*wv_);

    q = af::rope(q, cos_row, sin_row);
    k = af::rope(k, cos_row, sin_row);

    writeCacheRow(k_cache, k.data(), pos);
    writeCacheRow(v_cache, v.data(), pos);

    Tensor ctx = attentionStep(q.data(), k_cache, v_cache, pos);
    // [B*H, 1, hd] is laid out (b, h, hd)-major — the same order the
    // full forward's transpose+merge produces for its position rows.
    Variable out =
        wo_->forward(af::view(af::constant(ctx), {b, dim_}));
    return af::view(out, {b, 1, dim_});
}

void
MultiHeadAttention::ensureCaches(int64_t s)
{
    if (cached_seq_ == s) {
        return;
    }
    buildRopeTables(s, head_dim_, rope_cos_, rope_sin_);
    causal_mask_ = buildCausalMask(s);
    cached_seq_ = s;
}

Variable
MultiHeadAttention::forward(const Variable &x)
{
    const Shape &shape = x.data().shape();
    EDKM_CHECK(shape.size() == 3 && shape[2] == dim_,
               "attention: expected [B,S,", dim_, "]");
    int64_t b = shape[0], s = shape[1];
    ensureCaches(s);

    // Project, split heads: [B,S,D] -> [B*H, S, hd].
    auto split_heads = [&](Linear &proj) {
        Variable flat = af::view(x, {b * s, dim_});
        Variable y = proj.forward(flat); // [B*S, D]
        y = af::view(y, {b, s, heads_, head_dim_});
        y = af::transpose(y, 1, 2); // [B, H, S, hd] (view)
        y = af::contiguous(y);
        return af::view(y, {b * heads_, s, head_dim_});
    };
    Variable q = split_heads(*wq_);
    Variable k = split_heads(*wk_);
    Variable v = split_heads(*wv_);

    // Rotary position embedding on q/k.
    q = af::rope(q, rope_cos_, rope_sin_);
    k = af::rope(k, rope_cos_, rope_sin_);

    // Scaled dot-product attention with the causal mask.
    float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    Variable att = af::matmul(q, af::transpose(k, -2, -1)); // [B*H,S,S]
    att = af::mulScalar(att, scale);
    att = af::add(att, af::constant(causal_mask_));
    att = af::softmaxLastDim(att);
    Variable ctx = af::matmul(att, v); // [B*H, S, hd]

    // Merge heads and project out.
    ctx = af::view(ctx, {b, heads_, s, head_dim_});
    ctx = af::transpose(ctx, 1, 2); // [B,S,H,hd]
    ctx = af::contiguous(ctx);
    ctx = af::view(ctx, {b * s, dim_});
    Variable out = wo_->forward(ctx);
    return af::view(out, {b, s, dim_});
}

} // namespace nn
} // namespace edkm
