#include "nn/attention.h"

#include <cmath>

#include "autograd/functional.h"
#include "util/logging.h"

namespace edkm {
namespace nn {

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t heads, Rng &rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads)
{
    EDKM_CHECK(dim % heads == 0, "attention: heads must divide dim");
    EDKM_CHECK(head_dim_ % 2 == 0, "attention: head dim must be even");
    wq_ = registerModule("wq", std::make_shared<Linear>(dim, dim, rng));
    wk_ = registerModule("wk", std::make_shared<Linear>(dim, dim, rng));
    wv_ = registerModule("wv", std::make_shared<Linear>(dim, dim, rng));
    wo_ = registerModule("wo", std::make_shared<Linear>(dim, dim, rng));
}

void
buildRopeTables(int64_t s, int64_t head_dim, Tensor &cos_out,
                Tensor &sin_out)
{
    // RoPE frequencies: theta_i = 10000^{-2i/d}, cos/sin per position.
    cos_out = Tensor::empty({s, head_dim});
    sin_out = Tensor::empty({s, head_dim});
    float *pc = cos_out.rawData<float>();
    float *ps = sin_out.rawData<float>();
    int64_t half = head_dim / 2;
    for (int64_t pos = 0; pos < s; ++pos) {
        for (int64_t i = 0; i < half; ++i) {
            double freq = std::pow(
                10000.0, -2.0 * static_cast<double>(i) / head_dim);
            double angle = static_cast<double>(pos) * freq;
            float c = static_cast<float>(std::cos(angle));
            float sn = static_cast<float>(std::sin(angle));
            // Halves share the angle (rotate-half convention).
            pc[pos * head_dim + i] = c;
            pc[pos * head_dim + half + i] = c;
            ps[pos * head_dim + i] = sn;
            ps[pos * head_dim + half + i] = sn;
        }
    }
}

Tensor
buildCausalMask(int64_t s)
{
    Tensor mask = Tensor::zeros({1, s, s});
    float *pm = mask.rawData<float>();
    for (int64_t i = 0; i < s; ++i) {
        for (int64_t j = i + 1; j < s; ++j) {
            pm[i * s + j] = -1e9f;
        }
    }
    return mask;
}

void
MultiHeadAttention::ensureCaches(int64_t s)
{
    if (cached_seq_ == s) {
        return;
    }
    buildRopeTables(s, head_dim_, rope_cos_, rope_sin_);
    causal_mask_ = buildCausalMask(s);
    cached_seq_ = s;
}

Variable
MultiHeadAttention::forward(const Variable &x)
{
    const Shape &shape = x.data().shape();
    EDKM_CHECK(shape.size() == 3 && shape[2] == dim_,
               "attention: expected [B,S,", dim_, "]");
    int64_t b = shape[0], s = shape[1];
    ensureCaches(s);

    // Project, split heads: [B,S,D] -> [B*H, S, hd].
    auto split_heads = [&](Linear &proj) {
        Variable flat = af::view(x, {b * s, dim_});
        Variable y = proj.forward(flat); // [B*S, D]
        y = af::view(y, {b, s, heads_, head_dim_});
        y = af::transpose(y, 1, 2); // [B, H, S, hd] (view)
        y = af::contiguous(y);
        return af::view(y, {b * heads_, s, head_dim_});
    };
    Variable q = split_heads(*wq_);
    Variable k = split_heads(*wk_);
    Variable v = split_heads(*wv_);

    // Rotary position embedding on q/k.
    q = af::rope(q, rope_cos_, rope_sin_);
    k = af::rope(k, rope_cos_, rope_sin_);

    // Scaled dot-product attention with the causal mask.
    float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    Variable att = af::matmul(q, af::transpose(k, -2, -1)); // [B*H,S,S]
    att = af::mulScalar(att, scale);
    att = af::add(att, af::constant(causal_mask_));
    att = af::softmaxLastDim(att);
    Variable ctx = af::matmul(att, v); // [B*H, S, hd]

    // Merge heads and project out.
    ctx = af::view(ctx, {b, heads_, s, head_dim_});
    ctx = af::transpose(ctx, 1, 2); // [B,S,H,hd]
    ctx = af::contiguous(ctx);
    ctx = af::view(ctx, {b * s, dim_});
    Variable out = wo_->forward(ctx);
    return af::view(out, {b, s, dim_});
}

} // namespace nn
} // namespace edkm
