/**
 * @file
 * Basic layers: Linear, Embedding, RMSNorm.
 */

#ifndef EDKM_NN_LAYERS_H_
#define EDKM_NN_LAYERS_H_

#include <functional>
#include <memory>
#include <string>

#include "nn/module.h"
#include "util/rng.h"

namespace edkm {
namespace nn {

/**
 * Affine map y = x W^T (+ b). Weight shape [out, in] (PyTorch layout).
 * Supports optional capture of the last input batch for post-training
 * quantisation calibration (GPTQ/AWQ need per-layer activations).
 */
class Linear : public Module
{
  public:
    /**
     * Weight-optimization hook (paper Fig 1): a transform applied to the
     * weight on every forward, e.g. eDKM clustering or QAT fake-quant.
     * The transform output is used for the matmul while gradients flow
     * back into the raw parameter.
     */
    using WeightTransform = std::function<Variable(const Variable &)>;

    Linear(int64_t in_features, int64_t out_features, Rng &rng,
           bool bias = false);

    /** @p x shape [n, in] -> [n, out]. */
    Variable forward(const Variable &x);

    /** Install (or clear, with nullptr) the weight transform. */
    void setWeightTransform(WeightTransform transform)
    {
        transform_ = std::move(transform);
    }

    bool hasWeightTransform() const { return transform_ != nullptr; }

    std::string kind() const override { return "linear"; }

    Variable &weight() { return weight_; }
    Variable &bias() { return bias_; }

    /** Enable stashing of forward inputs (calibration capture). */
    void setCaptureInputs(bool on) { capture_ = on; }

    /** Whether forward inputs are currently being stashed. */
    bool capturesInputs() const { return capture_; }

    /** Last captured input ([n, in], data only); undefined if none. */
    const Tensor &capturedInput() const { return captured_; }

    int64_t inFeatures() const { return in_; }
    int64_t outFeatures() const { return out_; }

  private:
    int64_t in_, out_;
    Variable weight_;
    Variable bias_;
    bool capture_ = false;
    Tensor captured_;
    WeightTransform transform_;
};

/** Token embedding: rows of a [vocab, dim] table. */
class Embedding : public Module
{
  public:
    Embedding(int64_t vocab, int64_t dim, Rng &rng);

    /** @p tokens 1-D integer tensor [n] -> [n, dim]. */
    Variable forward(const Tensor &tokens);

    std::string kind() const override { return "embedding"; }

    Variable &weight() { return weight_; }

  private:
    Variable weight_;
};

/** Root-mean-square layer norm (LLaMA style, no bias). */
class RMSNorm : public Module
{
  public:
    explicit RMSNorm(int64_t dim, float eps = 1e-5f);

    /** Normalise the last dimension of @p x. */
    Variable forward(const Variable &x);

    std::string kind() const override { return "rmsnorm"; }

    Variable &weight() { return weight_; }

  private:
    Variable weight_;
    float eps_;
};

} // namespace nn
} // namespace edkm

#endif // EDKM_NN_LAYERS_H_
