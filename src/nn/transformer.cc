#include "nn/transformer.h"

#include "autograd/functional.h"
#include "util/logging.h"

namespace edkm {
namespace nn {

SwiGluMlp::SwiGluMlp(int64_t dim, int64_t hidden, Rng &rng)
{
    w1_ = registerModule("w1", std::make_shared<Linear>(dim, hidden, rng));
    w2_ = registerModule("w2", std::make_shared<Linear>(hidden, dim, rng));
    w3_ = registerModule("w3", std::make_shared<Linear>(dim, hidden, rng));
}

Variable
SwiGluMlp::forward(const Variable &x)
{
    Variable gate = af::silu(w1_->forward(x));
    Variable up = w3_->forward(x);
    return w2_->forward(af::mul(gate, up));
}

TransformerBlock::TransformerBlock(int64_t dim, int64_t heads,
                                   int64_t hidden, Rng &rng)
{
    norm1_ = registerModule("norm1", std::make_shared<RMSNorm>(dim));
    attn_ = registerModule(
        "attn", std::make_shared<MultiHeadAttention>(dim, heads, rng));
    norm2_ = registerModule("norm2", std::make_shared<RMSNorm>(dim));
    mlp_ = registerModule(
        "mlp", std::make_shared<SwiGluMlp>(dim, hidden, rng));
}

Variable
TransformerBlock::forward(const Variable &x)
{
    const Shape &s = x.data().shape();
    int64_t b = s[0], seq = s[1], d = s[2];
    Variable h = af::add(x, attn_->forward(norm1_->forward(x)));
    // MLP operates on flattened rows.
    Variable flat = af::view(norm2_->forward(h), {b * seq, d});
    Variable m = mlp_->forward(flat);
    return af::add(h, af::view(m, {b, seq, d}));
}

MiniLlama::MiniLlama(LlamaConfig config) : config_(config)
{
    Rng rng(config.seed);
    embed_ = registerModule(
        "embed",
        std::make_shared<Embedding>(config.vocab, config.dim, rng));
    for (int64_t i = 0; i < config.layers; ++i) {
        blocks_.push_back(registerModule(
            "blocks." + std::to_string(i),
            std::make_shared<TransformerBlock>(
                config.dim, config.heads, config.resolvedHidden(), rng)));
    }
    final_norm_ = registerModule("final_norm",
                                 std::make_shared<RMSNorm>(config.dim));
    lm_head_ = registerModule(
        "lm_head",
        std::make_shared<Linear>(config.dim, config.vocab, rng));
}

Variable
MiniLlama::forward(const Tensor &tokens)
{
    EDKM_CHECK(tokens.dim() == 2, "MiniLlama: tokens must be [B,S]");
    int64_t b = tokens.size(0), s = tokens.size(1);
    Tensor flat_tokens =
        tokens.isContiguous() ? tokens.view({b * s})
                              : tokens.contiguous().view({b * s});
    Variable h = embed_->forward(flat_tokens); // [B*S, D]
    h = af::view(h, {b, s, config_.dim});
    for (auto &block : blocks_) {
        h = block->forward(h);
    }
    h = final_norm_->forward(h);
    h = af::view(h, {b * s, config_.dim});
    return lm_head_->forward(h); // [B*S, vocab]
}

std::vector<std::pair<std::string, Linear *>>
MiniLlama::allLinears()
{
    std::vector<std::pair<std::string, Linear *>> out;
    for (size_t i = 0; i < blocks_.size(); ++i) {
        std::string p = "blocks." + std::to_string(i) + ".";
        MultiHeadAttention &a = blocks_[i]->attention();
        out.emplace_back(p + "attn.wq", &a.wq());
        out.emplace_back(p + "attn.wk", &a.wk());
        out.emplace_back(p + "attn.wv", &a.wv());
        out.emplace_back(p + "attn.wo", &a.wo());
        SwiGluMlp &m = blocks_[i]->mlp();
        out.emplace_back(p + "mlp.w1", &m.w1());
        out.emplace_back(p + "mlp.w2", &m.w2());
        out.emplace_back(p + "mlp.w3", &m.w3());
    }
    out.emplace_back("lm_head", lm_head_.get());
    return out;
}

} // namespace nn
} // namespace edkm
