/**
 * @file
 * Module tree: parameter registration and traversal.
 *
 * Mirrors torch.nn.Module at the granularity this project needs: modules
 * own named parameters and child modules; parameters() flattens the tree
 * for the optimizer, and namedParameters() gives stable dotted paths used
 * by the compression passes (which must find every Linear weight).
 */

#ifndef EDKM_NN_MODULE_H_
#define EDKM_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace edkm {
namespace nn {

/** Base class of all network components. */
class Module
{
  public:
    virtual ~Module() = default;

    /** All parameters of this module and its descendants. */
    std::vector<Variable> parameters() const;

    /** Parameters with dotted-path names ("blocks.0.attn.wq.weight"). */
    std::vector<std::pair<std::string, Variable>> namedParameters() const;

    /** Direct children with names. */
    const std::vector<std::pair<std::string, std::shared_ptr<Module>>> &
    children() const
    {
        return children_;
    }

    /** Short type tag ("linear", "rmsnorm", ...). */
    virtual std::string kind() const = 0;

    /** Total parameter count. */
    int64_t parameterCount() const;

  protected:
    /** Register an owned parameter (requires_grad is expected true). */
    Variable registerParameter(const std::string &name, Variable param);

    /** Register an owned child module. */
    template <typename M>
    std::shared_ptr<M>
    registerModule(const std::string &name, std::shared_ptr<M> child)
    {
        children_.emplace_back(name, child);
        return child;
    }

  private:
    void collect(const std::string &prefix,
                 std::vector<std::pair<std::string, Variable>> &out) const;

    std::vector<std::pair<std::string, Variable>> params_;
    std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

} // namespace nn
} // namespace edkm

#endif // EDKM_NN_MODULE_H_
