#include "nn/module.h"

#include "util/logging.h"

namespace edkm {
namespace nn {

Variable
Module::registerParameter(const std::string &name, Variable param)
{
    EDKM_CHECK(param.defined(), "registerParameter: undefined variable");
    params_.emplace_back(name, param);
    return param;
}

void
Module::collect(const std::string &prefix,
                std::vector<std::pair<std::string, Variable>> &out) const
{
    for (const auto &[name, p] : params_) {
        out.emplace_back(prefix.empty() ? name : prefix + "." + name, p);
    }
    for (const auto &[name, child] : children_) {
        child->collect(prefix.empty() ? name : prefix + "." + name, out);
    }
}

std::vector<std::pair<std::string, Variable>>
Module::namedParameters() const
{
    std::vector<std::pair<std::string, Variable>> out;
    collect("", out);
    return out;
}

std::vector<Variable>
Module::parameters() const
{
    std::vector<Variable> out;
    for (auto &[name, p] : namedParameters()) {
        (void)name;
        out.push_back(p);
    }
    return out;
}

int64_t
Module::parameterCount() const
{
    int64_t n = 0;
    for (const Variable &p : parameters()) {
        n += p.data().numel();
    }
    return n;
}

} // namespace nn
} // namespace edkm
