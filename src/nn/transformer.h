/**
 * @file
 * LLaMA-style decoder-only transformer at configurable scale.
 *
 * MiniLlama reproduces the LLaMA-7B architecture (RMSNorm pre-norm, RoPE
 * attention, SwiGLU MLP, untied output head) at laptop scale; benches can
 * also instantiate single layers at true 7B geometry for memory
 * accounting. See DESIGN.md for the substitution rationale.
 */

#ifndef EDKM_NN_TRANSFORMER_H_
#define EDKM_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace edkm {
namespace nn {

/** SwiGLU feed-forward: w2( silu(w1 x) * (w3 x) ). */
class SwiGluMlp : public Module
{
  public:
    SwiGluMlp(int64_t dim, int64_t hidden, Rng &rng);

    /** @p x [n, dim] -> [n, dim]. */
    Variable forward(const Variable &x);

    std::string kind() const override { return "swiglu"; }

    Linear &w1() { return *w1_; }
    Linear &w2() { return *w2_; }
    Linear &w3() { return *w3_; }

  private:
    std::shared_ptr<Linear> w1_, w2_, w3_;
};

/** One pre-norm decoder block. */
class TransformerBlock : public Module
{
  public:
    TransformerBlock(int64_t dim, int64_t heads, int64_t hidden, Rng &rng);

    /** @p x [B, S, D] -> [B, S, D]. */
    Variable forward(const Variable &x);

    std::string kind() const override { return "block"; }

    MultiHeadAttention &attention() { return *attn_; }
    SwiGluMlp &mlp() { return *mlp_; }

  private:
    std::shared_ptr<RMSNorm> norm1_, norm2_;
    std::shared_ptr<MultiHeadAttention> attn_;
    std::shared_ptr<SwiGluMlp> mlp_;
};

/** Model geometry. */
struct LlamaConfig
{
    int64_t vocab = 256;   ///< byte-level tokenizer default
    int64_t dim = 64;
    int64_t heads = 4;
    int64_t layers = 2;
    int64_t hidden = 0;    ///< 0 = LLaMA's 8/3 * dim rounded to 8
    uint64_t seed = 42;

    int64_t
    resolvedHidden() const
    {
        if (hidden > 0) {
            return hidden;
        }
        int64_t h = dim * 8 / 3;
        return ((h + 7) / 8) * 8;
    }

    /** Geometry of one LLaMA-7B layer, for memory-accounting benches. */
    static LlamaConfig
    llama7bShape()
    {
        LlamaConfig c;
        c.vocab = 32000;
        c.dim = 4096;
        c.heads = 32;
        c.layers = 32;
        c.hidden = 11008;
        return c;
    }
};

/** Decoder-only language model. */
class MiniLlama : public Module
{
  public:
    explicit MiniLlama(LlamaConfig config);

    /**
     * @p tokens [B, S] integer tensor.
     * @return logits [B*S, vocab].
     */
    Variable forward(const Tensor &tokens);

    std::string kind() const override { return "llama"; }

    const LlamaConfig &config() const { return config_; }

    std::vector<std::shared_ptr<TransformerBlock>> &blocks()
    {
        return blocks_;
    }
    Embedding &embedding() { return *embed_; }
    Linear &lmHead() { return *lm_head_; }

    /** All Linear submodules with dotted names (compression targets). */
    std::vector<std::pair<std::string, Linear *>> allLinears();

  private:
    LlamaConfig config_;
    std::shared_ptr<Embedding> embed_;
    std::vector<std::shared_ptr<TransformerBlock>> blocks_;
    std::shared_ptr<RMSNorm> final_norm_;
    std::shared_ptr<Linear> lm_head_;
};

} // namespace nn
} // namespace edkm

#endif // EDKM_NN_TRANSFORMER_H_
