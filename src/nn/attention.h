/**
 * @file
 * Multi-head self-attention with rotary position embeddings and causal
 * masking (the LLaMA decoder's attention block).
 */

#ifndef EDKM_NN_ATTENTION_H_
#define EDKM_NN_ATTENTION_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace edkm {
namespace nn {

/**
 * Build the RoPE cos/sin tables for @p s positions at @p head_dim
 * (rotate-half convention: both halves share the angle). One
 * definition shared by the train-time attention module and the
 * serving engine, so their position embeddings can never diverge.
 */
void buildRopeTables(int64_t s, int64_t head_dim, Tensor &cos_out,
                     Tensor &sin_out);

/** The [1, s, s] additive causal mask (0 on/below diagonal, -1e9
 *  above). */
Tensor buildCausalMask(int64_t s);

/** Causal RoPE multi-head attention over [B, S, D] inputs. */
class MultiHeadAttention : public Module
{
  public:
    /**
     * @param dim    model width (must divide by heads; head dim even).
     * @param heads  number of attention heads.
     */
    MultiHeadAttention(int64_t dim, int64_t heads, Rng &rng);

    /** @p x [B, S, D] -> [B, S, D] with causal masking. */
    Variable forward(const Variable &x);

    std::string kind() const override { return "attention"; }

    Linear &wq() { return *wq_; }
    Linear &wk() { return *wk_; }
    Linear &wv() { return *wv_; }
    Linear &wo() { return *wo_; }

  private:
    /** Precompute (cached) RoPE cos/sin and the causal mask for @p s. */
    void ensureCaches(int64_t s);

    int64_t dim_, heads_, head_dim_;
    std::shared_ptr<Linear> wq_, wk_, wv_, wo_;
    Tensor rope_cos_, rope_sin_; ///< [S, head_dim]
    Tensor causal_mask_;         ///< [1, S, S] (0 / -1e9)
    int64_t cached_seq_ = -1;
};

} // namespace nn
} // namespace edkm

#endif // EDKM_NN_ATTENTION_H_
