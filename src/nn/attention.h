/**
 * @file
 * Multi-head self-attention with rotary position embeddings and causal
 * masking (the LLaMA decoder's attention block).
 */

#ifndef EDKM_NN_ATTENTION_H_
#define EDKM_NN_ATTENTION_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace edkm {
namespace nn {

/**
 * Build the RoPE cos/sin tables for @p s positions at @p head_dim
 * (rotate-half convention: both halves share the angle). One
 * definition shared by the train-time attention module and the
 * serving engine, so their position embeddings can never diverge.
 */
void buildRopeTables(int64_t s, int64_t head_dim, Tensor &cos_out,
                     Tensor &sin_out);

/** The [1, s, s] additive causal mask (0 on/below diagonal, -1e9
 *  above). */
Tensor buildCausalMask(int64_t s);

/**
 * One causal-attention step at position @p pos over cached keys/values:
 * @p q is the current position's roped query [G, 1, hd] (G = batch *
 * heads), @p k_cache / @p v_cache are [G, capacity, hd] with rows
 * [0, pos] already written (rope'd keys, raw values). Returns the
 * context [G, 1, hd].
 *
 * Bit-identity contract: the result equals row @p pos of the full
 *-prefix attention (mask + softmax over all positions) bit for bit.
 * Masked columns exp-flush to exactly +0 and the matmul zero-skip drops
 * them from the accumulation, so attending over the [0, pos] slice
 * replays the exact FP op sequence of the masked full computation. One
 * definition shared by the train-time module's forwardStep and the
 * serving engine's decode path.
 */
Tensor attentionStep(const Tensor &q, const Tensor &k_cache,
                     const Tensor &v_cache, int64_t pos);

/**
 * Causal attention of a whole chunk of queries over cached keys/values:
 * @p q holds the roped queries of positions [pos0, pos0 + c) as
 * [G, c, hd] (G = batch * heads), @p k_cache / @p v_cache are
 * [G, capacity, hd] with rows [0, pos0 + c) already written — the
 * prefix banked by earlier chunks plus this chunk's own rows. Row i of
 * the result attends over positions [0, pos0 + i].
 *
 * Bit-identity contract: row i equals row pos0 + i of the full-prefix
 * masked attention bit for bit, by the same argument attentionStep
 * makes — columns beyond pos0 + i are masked with the identical -1e9
 * additive mask the full forward uses (so they exp-flush to exactly
 * +0), columns beyond pos0 + c are dropped entirely (exp-flushed zeros
 * add nothing to the softmax denominator and the value matmul
 * zero-skips them). Chunked prefill — including prefix-cache reuse,
 * where rows [0, pos0) were banked by an earlier request — therefore
 * reproduces the one-shot prefill bit-exactly.
 */
Tensor attentionChunk(const Tensor &q, const Tensor &k_cache,
                      const Tensor &v_cache, int64_t pos0);

/** Causal RoPE multi-head attention over [B, S, D] inputs. */
class MultiHeadAttention : public Module
{
  public:
    /**
     * @param dim    model width (must divide by heads; head dim even).
     * @param heads  number of attention heads.
     */
    MultiHeadAttention(int64_t dim, int64_t heads, Rng &rng);

    /** @p x [B, S, D] -> [B, S, D] with causal masking. */
    Variable forward(const Variable &x);

    /**
     * Single-position forward for incremental decode: @p x [B, 1, D] is
     * the hidden state of the token at position @p pos. Projects
     * q/k/v, ropes q and k at @p pos, writes k/v into rows @p pos of
     * @p k_cache / @p v_cache ([B*heads, capacity, hd], rows [0, pos)
     * already filled by earlier steps), and attends over [0, pos].
     *
     * Returns [B, 1, D], bit-identical to column @p pos of forward()
     * over the full prefix (inference-only: gradients do not flow).
     */
    Variable forwardStep(const Variable &x, Tensor &k_cache,
                         Tensor &v_cache, int64_t pos);

    std::string kind() const override { return "attention"; }

    Linear &wq() { return *wq_; }
    Linear &wk() { return *wk_; }
    Linear &wv() { return *wv_; }
    Linear &wo() { return *wo_; }

  private:
    /** Precompute (cached) RoPE cos/sin and the causal mask for @p s. */
    void ensureCaches(int64_t s);

    int64_t dim_, heads_, head_dim_;
    std::shared_ptr<Linear> wq_, wk_, wv_, wo_;
    Tensor rope_cos_, rope_sin_; ///< [S, head_dim]
    Tensor causal_mask_;         ///< [1, S, S] (0 / -1e9)
    int64_t cached_seq_ = -1;
    Tensor dec_cos_, dec_sin_;   ///< decode-path RoPE rows (no mask)
    int64_t dec_rope_len_ = 0;
};

} // namespace nn
} // namespace edkm

#endif // EDKM_NN_ATTENTION_H_
