#include "nn/layers.h"

#include <cmath>

#include "autograd/functional.h"
#include "util/logging.h"

namespace edkm {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng &rng,
               bool bias)
    : in_(in_features), out_(out_features)
{
    float std = 1.0f / std::sqrt(static_cast<float>(in_features));
    weight_ = registerParameter(
        "weight",
        Variable(Tensor::randn({out_features, in_features}, rng,
                               Device::cpu(), std),
                 /*requires_grad=*/true, "linear.weight"));
    if (bias) {
        bias_ = registerParameter(
            "bias", Variable(Tensor::zeros({out_features}),
                             /*requires_grad=*/true, "linear.bias"));
    }
}

Variable
Linear::forward(const Variable &x)
{
    EDKM_CHECK(x.data().dim() == 2 && x.data().size(1) == in_,
               "Linear: expected [n,", in_, "], got ", x.data().toString());
    if (capture_) {
        captured_ = x.data().clone();
    }
    Variable w = transform_ ? transform_(weight_) : weight_;
    Variable out = af::matmul(x, af::transpose(w, 0, 1));
    if (bias_.defined()) {
        out = af::add(out, bias_);
    }
    return out;
}

Embedding::Embedding(int64_t vocab, int64_t dim, Rng &rng)
{
    weight_ = registerParameter(
        "weight", Variable(Tensor::randn({vocab, dim}, rng, Device::cpu(),
                                         0.02f),
                           /*requires_grad=*/true, "embedding.weight"));
}

Variable
Embedding::forward(const Tensor &tokens)
{
    EDKM_CHECK(tokens.dim() == 1, "Embedding: tokens must be 1-D");
    return af::gatherRows(weight_, tokens);
}

RMSNorm::RMSNorm(int64_t dim, float eps) : eps_(eps)
{
    weight_ = registerParameter(
        "weight", Variable(Tensor::ones({dim}), /*requires_grad=*/true,
                           "rmsnorm.weight"));
}

Variable
RMSNorm::forward(const Variable &x)
{
    Variable ms = af::meanDim(af::square(x), -1, /*keepdim=*/true);
    Variable inv = af::div(x, af::sqrt(af::addScalar(ms, eps_)));
    return af::mul(inv, weight_);
}

} // namespace nn
} // namespace edkm
