/**
 * @file
 * AdamW optimizer with decoupled weight decay and global-norm gradient
 * clipping — the paper's fine-tuning setup (lr 5e-5, betas (0.9, 0.95),
 * weight decay 0, clip 1.0).
 */

#ifndef EDKM_NN_ADAMW_H_
#define EDKM_NN_ADAMW_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace edkm {
namespace nn {

/** AdamW hyper-parameters (defaults = the paper's). */
struct AdamWConfig
{
    float lr = 5e-5f;
    float beta1 = 0.9f;
    float beta2 = 0.95f;
    float eps = 1e-8f;
    float weightDecay = 0.0f;
};

/** Decoupled-weight-decay Adam over a fixed parameter list. */
class AdamW
{
  public:
    AdamW(std::vector<Variable> params, AdamWConfig config = {});

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Clear gradients of all managed parameters. */
    void zeroGrad();

    /**
     * Scale gradients so their global L2 norm is at most @p max_norm.
     * @return the pre-clip norm.
     */
    static float clipGradNorm(const std::vector<Variable> &params,
                              float max_norm);

    const AdamWConfig &config() const { return config_; }
    int64_t stepCount() const { return t_; }

  private:
    std::vector<Variable> params_;
    std::vector<Tensor> m_, v_;
    AdamWConfig config_;
    int64_t t_ = 0;
};

} // namespace nn
} // namespace edkm

#endif // EDKM_NN_ADAMW_H_
