#include "nn/adamw.h"

#include <cmath>

#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "util/logging.h"

namespace edkm {
namespace nn {

AdamW::AdamW(std::vector<Variable> params, AdamWConfig config)
    : params_(std::move(params)), config_(config)
{
    for (const Variable &p : params_) {
        EDKM_CHECK(p.defined() && p.requiresGrad(),
                   "AdamW: parameters must require grad");
        m_.push_back(Tensor::zeros(p.data().shape()));
        v_.push_back(Tensor::zeros(p.data().shape()));
    }
}

void
AdamW::step()
{
    ++t_;
    float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
    float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        Variable &p = params_[i];
        if (!p.grad().defined()) {
            continue;
        }
        Tensor &data = p.mutableData();
        const Tensor &g = p.grad();
        float *pd = data.rawData<float>();
        float *pm = m_[i].rawData<float>();
        float *pv = v_[i].rawData<float>();
        int64_t n = data.numel();
        EDKM_ASSERT(data.isContiguous() && data.dtype() == DType::kF32,
                    "AdamW: parameters must be contiguous f32");
        // Per-element state update: disjoint writes, parallel-safe.
        if (g.isContiguous() && g.dtype() == DType::kF32) {
            // Vectorized path: identical per-element formula to the
            // fallback below (sqrt/div are IEEE-exact lanes).
            const float *pg = g.rawData<const float>();
            const kernels::KernelTable &kt = kernels::active();
            runtime::parallelFor(
                0, n,
                runtime::grainForAligned(n, 8, kernels::kAccLanes),
                [&](int64_t cb, int64_t ce) {
                    kt.adamwStep(pd + cb, pm + cb, pv + cb, pg + cb,
                                 ce - cb, config_.lr, config_.beta1,
                                 config_.beta2, config_.eps,
                                 config_.weightDecay, bc1, bc2);
                });
            continue;
        }
        runtime::parallelFor(
            0, n, runtime::grainFor(n, 8), [&](int64_t cb, int64_t ce) {
                for (int64_t j = cb; j < ce; ++j) {
                    float gj = g.flatAt(j);
                    pm[j] = config_.beta1 * pm[j] +
                            (1.0f - config_.beta1) * gj;
                    pv[j] = config_.beta2 * pv[j] +
                            (1.0f - config_.beta2) * gj * gj;
                    float mhat = pm[j] / bc1;
                    float vhat = pv[j] / bc2;
                    pd[j] -= config_.lr *
                             (mhat / (std::sqrt(vhat) + config_.eps) +
                              config_.weightDecay * pd[j]);
                }
            });
    }
}

void
AdamW::zeroGrad()
{
    for (Variable &p : params_) {
        p.zeroGrad();
    }
}

float
AdamW::clipGradNorm(const std::vector<Variable> &params, float max_norm)
{
    double total = 0.0;
    for (const Variable &p : params) {
        if (!p.grad().defined()) {
            continue;
        }
        const Tensor &g = p.grad();
        int64_t n = g.numel();
        total += runtime::parallelReduce<double>(
            0, n, runtime::grainFor(n, 4), 0.0,
            [&](int64_t cb, int64_t ce) {
                double part = 0.0;
                for (int64_t j = cb; j < ce; ++j) {
                    float v = g.flatAt(j);
                    part += static_cast<double>(v) * v;
                }
                return part;
            },
            [](double a, double b) { return a + b; });
    }
    float norm = static_cast<float>(std::sqrt(total));
    if (norm > max_norm && norm > 0.0f) {
        float scale = max_norm / norm;
        for (const Variable &p : params) {
            if (!p.grad().defined()) {
                continue;
            }
            Tensor g = p.grad();
            int64_t n = g.numel();
            for (int64_t j = 0; j < n; ++j) {
                g.setFlatAt(j, g.flatAt(j) * scale);
            }
        }
    }
    return norm;
}

} // namespace nn
} // namespace edkm
