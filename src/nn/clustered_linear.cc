#include "nn/clustered_linear.h"

#include "autograd/functional.h"
#include "util/logging.h"

namespace edkm {
namespace nn {

ClusteredLinear::ClusteredLinear(std::shared_ptr<Linear> inner,
                                 EdkmConfig config,
                                 std::shared_ptr<LearnerGroup> group)
    : inner_(registerModule("inner", std::move(inner))),
      clusterer_(config, std::move(group))
{
}

Variable
ClusteredLinear::forward(const Variable &x)
{
    if (frozen_) {
        EDKM_CHECK(!(gradModeEnabled() && x.requiresGrad()),
                   "ClusteredLinear: layer is frozen for serving "
                   "(LUT+index forward has no backward); call "
                   "unfreeze() to resume training");
        Variable out =
            af::constant(paletteMatmulT(x.data(), viewOf(palette_)));
        if (inner_->bias().defined()) {
            out = af::add(out, af::constant(inner_->bias().data()));
        }
        return out;
    }
    if (!enabled_) {
        return inner_->forward(x);
    }
    Variable w_clustered = clusterer_.forward(inner_->weight());
    Variable out = af::matmul(x, af::transpose(w_clustered, 0, 1));
    if (inner_->bias().defined()) {
        out = af::add(out, inner_->bias());
    }
    return out;
}

PalettizedTensor
ClusteredLinear::palettize()
{
    if (!clusterer_.centroids().defined()) {
        // Run one clustering pass if forward was never called.
        NoGradGuard ng;
        clusterer_.forward(inner_->weight().detach());
    }
    return clusterer_.palettize(inner_->weight().data());
}

void
ClusteredLinear::freezeForServing()
{
    palette_ = palettize();
    frozen_ = true;
}

const PalettizedTensor &
ClusteredLinear::servingPalette() const
{
    EDKM_CHECK(frozen_,
               "ClusteredLinear: servingPalette() requires "
               "freezeForServing() first");
    return palette_;
}

} // namespace nn
} // namespace edkm
