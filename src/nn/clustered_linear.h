/**
 * @file
 * Train-time weight-clustered Linear: the integration point between the
 * transformer substrate and the DKM/eDKM clustering core.
 *
 * Each forward pass clusters the FP weight with an EdkmLayer and uses the
 * soft-clustered W~ for the matmul, so the task loss backpropagates
 * through the clustering into the full-precision weights — the train-time
 * compression setup of the paper's headline experiment. After fine-
 * tuning, palettize() freezes the weight into the deployable LUT+index
 * format.
 */

#ifndef EDKM_NN_CLUSTERED_LINEAR_H_
#define EDKM_NN_CLUSTERED_LINEAR_H_

#include <memory>

#include "core/edkm.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace edkm {
namespace nn {

/** Linear whose weight passes through differentiable clustering. */
class ClusteredLinear : public Module
{
  public:
    /**
     * Wrap @p inner (shares its weight parameter). @p config controls
     * the clustering; @p group enables sharding accounting.
     */
    ClusteredLinear(std::shared_ptr<Linear> inner, EdkmConfig config,
                    std::shared_ptr<LearnerGroup> group = nullptr);

    /** Cluster the weight, then y = x W~^T (+ b). */
    Variable forward(const Variable &x);

    std::string kind() const override { return "clustered_linear"; }

    Linear &inner() { return *inner_; }
    EdkmLayer &clusterer() { return clusterer_; }

    /** Freeze the current weight into the palettized format. */
    PalettizedTensor palettize();

    /**
     * Freeze for serving: palettize the weight once and route every
     * subsequent forward through the streamed LUT+index matmul
     * (paletteMatmulT) — bit-identical to the dense matmul on the
     * decompressed weight, but the dense W is never re-materialised.
     * Inference-only: a frozen forward rejects inputs that require
     * grad. unfreeze() restores the train-time behaviour.
     */
    void freezeForServing();
    void unfreeze() { frozen_ = false; }
    bool frozenForServing() const { return frozen_; }

    /** The palette a frozen layer serves from (frozen only). */
    const PalettizedTensor &servingPalette() const;

    /**
     * When true (default), clustering runs every forward; when false the
     * layer behaves as a plain Linear (e.g. during evaluation of the
     * uncompressed reference).
     */
    void setClusteringEnabled(bool on) { enabled_ = on; }

  private:
    std::shared_ptr<Linear> inner_;
    EdkmLayer clusterer_;
    bool enabled_ = true;
    bool frozen_ = false;
    PalettizedTensor palette_; ///< serving palette (frozen only)
};

} // namespace nn
} // namespace edkm

#endif // EDKM_NN_CLUSTERED_LINEAR_H_
