/**
 * @file
 * Per-request key/value cache for incremental decode.
 *
 * A KvCache holds one K and one V tensor per transformer layer, shaped
 * [groups, capacity, head_dim] (groups = batch * heads; the serving
 * engine decodes single requests, so groups == heads). Rows [0, position)
 * hold the rope'd keys and raw values of every token decoded so far;
 * position advances once per prefill / decode step after all layers have
 * written their rows.
 *
 * The cache is plain bookkeeping: it never computes. The engine writes
 * rows through write() and attends over slices of k()/v() via
 * nn::attentionStep (nn::MultiHeadAttention::forwardStep manages raw
 * cache tensors of the same [G, capacity, hd] layout itself — nn
 * cannot depend on serve). Capacity is fixed at construction — writing
 * past it throws a FatalError naming the capacity, which is the
 * overflow contract tests/test_serve.cc pins.
 *
 * Not thread-safe; a cache belongs to exactly one engine (which itself
 * belongs to one serving thread).
 */

#ifndef EDKM_SERVE_KV_CACHE_H_
#define EDKM_SERVE_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace edkm {
namespace serve {

class KvCache
{
  public:
    /**
     * Allocate zeroed K/V tensors for @p layers layers of @p groups
     * attention groups, @p head_dim wide, with room for @p capacity
     * token positions.
     */
    KvCache(int64_t layers, int64_t groups, int64_t head_dim,
            int64_t capacity);

    int64_t layers() const { return static_cast<int64_t>(k_.size()); }
    int64_t groups() const { return groups_; }
    int64_t headDim() const { return head_dim_; }
    int64_t capacity() const { return capacity_; }

    /** Token positions filled so far (== the next write position). */
    int64_t position() const { return pos_; }

    /** Heap bytes pinned by the K and V tensors together. */
    int64_t bytes() const;

    /** Layer @p layer's key rows, [groups, capacity, head_dim]. */
    const Tensor &k(int64_t layer) const;
    /** Layer @p layer's value rows, [groups, capacity, head_dim]. */
    const Tensor &v(int64_t layer) const;

    /**
     * Write @p k / @p v — contiguous [groups, n, head_dim] f32 tensors —
     * into rows [position(), position()+n) of layer @p layer. Every
     * layer writes the same positions; advance() moves the position
     * once all layers have. Throws FatalError (naming the capacity)
     * when the rows would run past the end of the cache.
     */
    void write(int64_t layer, const Tensor &k, const Tensor &v);

    /** Advance the position by @p n token(s); bounds-checked. */
    void advance(int64_t n);

    /** Forget all cached positions (capacity and storage are kept). */
    void reset() { pos_ = 0; }

  private:
    int64_t groups_ = 0;
    int64_t head_dim_ = 0;
    int64_t capacity_ = 0;
    int64_t pos_ = 0;
    std::vector<Tensor> k_, v_;
};

} // namespace serve
} // namespace edkm

#endif // EDKM_SERVE_KV_CACHE_H_
