#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <utility>

#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {
namespace serve {

BatchScheduler::BatchScheduler(InferenceEngine &engine,
                               SchedulerConfig config)
    : engine_(&engine), config_(config)
{
    EDKM_CHECK(config_.maxBatch >= 1,
               "BatchScheduler: maxBatch must be positive, got ",
               config_.maxBatch);
    EDKM_CHECK(config_.prefillChunkTokens >= 0 &&
                   config_.prefixCacheBytes >= 0 &&
                   config_.kvCapacity >= 0,
               "BatchScheduler: negative config value");
    stats_.batchHistogram.assign(
        static_cast<size_t>(config_.maxBatch) + 1, 0);
    if (config_.prefixCacheBytes > 0) {
        const nn::LlamaConfig &m = engine_->config();
        prefix_ = std::make_unique<PrefixCache>(
            m.layers, m.heads, m.dim / m.heads, config_.prefixCacheBytes);
    }
}

bool
BatchScheduler::hasCapacity() const
{
    return static_cast<int>(slots_.size()) < config_.maxBatch;
}

void
BatchScheduler::admit(Request request, DoneFn done)
{
    EDKM_CHECK(hasCapacity(),
               "BatchScheduler: admit() without capacity (", active(),
               " of ", config_.maxBatch, " slots in flight)");
    EDKM_CHECK(done != nullptr, "BatchScheduler: null completion");
    SchedulerRequestStats rstats;
    rstats.promptTokens = static_cast<int64_t>(request.prompt.size());
    // Validation failures complete the request through its callback —
    // one bad request must never take the step loop down.
    try {
        EDKM_CHECK(!request.prompt.empty(),
                   "BatchScheduler: empty prompt in request");
        EDKM_CHECK(request.maxNewTokens >= 0,
                   "BatchScheduler: negative maxNewTokens");
        // Interruptions beat admission: a request cancelled or expired
        // while queueing completes right here, taking no slot.
        if (request.cancel != nullptr && request.cancel->cancelled()) {
            ++stats_.admitted;
            ++stats_.released;
            done(Response{},
                 std::make_exception_ptr(Cancelled(
                     "BatchScheduler: request cancelled before "
                     "admission")),
                 rstats);
            return;
        }
        if (request.expired(std::chrono::steady_clock::now())) {
            ++stats_.admitted;
            ++stats_.deadlineEvicted;
            done(Response{},
                 std::make_exception_ptr(DeadlineExceeded(
                     "BatchScheduler: request deadline passed before "
                     "admission")),
                 rstats);
            return;
        }
        if (request.maxNewTokens == 0) {
            Response res;
            res.tokens = std::move(request.prompt);
            ++stats_.admitted;
            ++stats_.completed;
            done(std::move(res), nullptr, rstats);
            return;
        }
        // Positions needed: the prompt plus every generated token
        // except the last (never fed back) — generateCached's sizing.
        int64_t needed = static_cast<int64_t>(request.prompt.size()) +
                         request.maxNewTokens - 1;
        EDKM_CHECK(config_.kvCapacity == 0 ||
                       needed <= config_.kvCapacity,
                   "BatchScheduler: request needs ", needed,
                   " KV positions, over the configured capacity ",
                   config_.kvCapacity);
        auto slot = std::make_unique<Slot>();
        slot->request = std::move(request);
        slot->done = std::move(done);
        slot->tokens = slot->request.prompt;
        slot->stats = rstats;
        int64_t cap =
            config_.kvCapacity > 0 ? config_.kvCapacity : needed;
        const nn::LlamaConfig &m = engine_->config();
        slot->kv = std::make_unique<KvCache>(m.layers, m.heads,
                                             m.dim / m.heads, cap);
        if (prefix_ != nullptr) {
            // Cap reuse at prompt-1: the last prompt position must be
            // prefilled so its logits can sample the first new token.
            int64_t reused = prefix_->lookup(
                slot->tokens,
                static_cast<int64_t>(slot->tokens.size()) - 1,
                *slot->kv);
            slot->prefilled = reused;
            slot->stats.reusedPrefixTokens = reused;
        }
        ++stats_.admitted;
        stats_.peakBatch = std::max(
            stats_.peakBatch, static_cast<int64_t>(slots_.size()) + 1);
        slots_.push_back(std::move(slot));
    } catch (...) {
        ++stats_.admitted;
        ++stats_.failed;
        done(Response{}, std::current_exception(), rstats);
    }
}

void
BatchScheduler::finish(Slot &slot)
{
    Response res;
    res.tokens = std::move(slot.tokens);
    slot.stats.newTokens = slot.generated;
    ++stats_.completed;
    slot.done(std::move(res), nullptr, slot.stats);
    slot.done = nullptr;
}

void
BatchScheduler::fail(Slot &slot, std::exception_ptr err)
{
    ++stats_.failed;
    slot.done(Response{}, err, slot.stats);
    slot.done = nullptr;
}

void
BatchScheduler::evictInterrupted()
{
    if (slots_.empty()) {
        return;
    }
    auto now = std::chrono::steady_clock::now();
    bool any = false;
    for (auto &sp : slots_) {
        Slot &slot = *sp;
        if (slot.done == nullptr) {
            continue;
        }
        slot.stats.newTokens = slot.generated;
        if (slot.request.cancel != nullptr &&
            slot.request.cancel->cancelled()) {
            ++stats_.released;
            slot.done(Response{},
                      std::make_exception_ptr(Cancelled(
                          "BatchScheduler: request released after " +
                          std::to_string(slot.generated) + " of " +
                          std::to_string(slot.request.maxNewTokens) +
                          " token(s)")),
                      slot.stats);
            slot.done = nullptr;
            any = true;
        } else if (slot.request.expired(now)) {
            ++stats_.deadlineEvicted;
            slot.done(Response{},
                      std::make_exception_ptr(DeadlineExceeded(
                          "BatchScheduler: request deadline exceeded "
                          "after " +
                          std::to_string(slot.generated) + " of " +
                          std::to_string(slot.request.maxNewTokens) +
                          " token(s)")),
                      slot.stats);
            slot.done = nullptr;
            any = true;
        }
    }
    if (any) {
        // Frees the evicted slots' KvCache and batch row before the
        // next forward — survivors step as if the evictee had simply
        // finished, which the bit-identity contract already covers.
        reapFinished();
    }
}

void
BatchScheduler::reapFinished()
{
    slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                [](const std::unique_ptr<Slot> &s) {
                                    return s->done == nullptr;
                                }),
                 slots_.end());
}

void
BatchScheduler::prefillPhase()
{
    int64_t budget = config_.prefillChunkTokens > 0
                         ? config_.prefillChunkTokens
                         : std::numeric_limits<int64_t>::max();
    for (auto &sp : slots_) {
        Slot &slot = *sp;
        if (slot.decoding || slot.done == nullptr || budget <= 0) {
            continue;
        }
        int64_t prompt_len =
            static_cast<int64_t>(slot.request.prompt.size());
        int64_t c = std::min(prompt_len - slot.prefilled, budget);
        try {
            std::vector<int64_t> chunk(
                slot.request.prompt.begin() + slot.prefilled,
                slot.request.prompt.begin() + slot.prefilled + c);
            Tensor logits = engine_->prefillChunk(
                Tensor::fromIndices(chunk, {1, c}), *slot.kv);
            slot.prefilled += c;
            budget -= c;
            ++slot.stats.prefillChunks;
            ++stats_.prefillChunks;
            stats_.prefillTokens += c;
            if (slot.prefilled < prompt_len) {
                continue; // budget spent; next step resumes the prompt
            }
            // Prompt complete: bank the head for later requests, then
            // sample the first new token from the last prompt
            // position's logits — exactly generateCached's sequence.
            if (prefix_ != nullptr) {
                prefix_->insert(slot.request.prompt, prompt_len,
                                *slot.kv);
            }
            Tensor last = logits.slice(0, c - 1, c);
            slot.next = argmaxLastDim(last).flatAtInt(0);
            slot.tokens.push_back(slot.next);
            slot.generated = 1;
            slot.decoding = true;
            if (slot.generated == slot.request.maxNewTokens) {
                finish(slot);
            }
        } catch (...) {
            fail(slot, std::current_exception());
        }
    }
    reapFinished();
}

void
BatchScheduler::decodePhase()
{
    std::vector<Slot *> batch;
    std::vector<int64_t> toks;
    std::vector<KvCache *> kvs;
    for (auto &sp : slots_) {
        if (sp->decoding && sp->done != nullptr) {
            batch.push_back(sp.get());
            toks.push_back(sp->next);
            kvs.push_back(sp->kv.get());
        }
    }
    if (batch.empty()) {
        return;
    }
    try {
        Tensor logits = engine_->decodeStepBatch(toks, kvs);
        Tensor next = argmaxLastDim(logits);
        ++stats_.steps;
        stats_.decodedTokens += static_cast<int64_t>(batch.size());
        ++stats_.batchHistogram[batch.size()];
        for (size_t i = 0; i < batch.size(); ++i) {
            Slot &slot = *batch[i];
            slot.next = next.flatAtInt(static_cast<int64_t>(i));
            slot.tokens.push_back(slot.next);
            ++slot.generated;
            ++slot.stats.decodeSteps;
            if (slot.generated == slot.request.maxNewTokens) {
                finish(slot);
            }
        }
    } catch (...) {
        // The shared forward failed: per-request cache state may be
        // torn mid-layer, so every participant fails (the loop and the
        // other, still-prefilling slots keep going).
        std::exception_ptr err = std::current_exception();
        for (Slot *slot : batch) {
            fail(*slot, err);
        }
    }
    reapFinished();
}

void
BatchScheduler::step()
{
    // Interrupted slots leave between steps — never mid-forward.
    evictInterrupted();
    if (slots_.empty()) {
        return;
    }
    prefillPhase();
    decodePhase();
}

void
BatchScheduler::swapEngine(InferenceEngine &next)
{
    EDKM_CHECK(!busy(), "BatchScheduler: swapEngine with ", active(),
               " request(s) in flight (drain first)");
    const nn::LlamaConfig &a = engine_->config();
    const nn::LlamaConfig &b = next.config();
    engine_ = &next;
    if (prefix_ != nullptr) {
        if (a.layers == b.layers && a.heads == b.heads &&
            a.dim / a.heads == b.dim / b.heads) {
            prefix_->advanceGeneration();
        } else {
            // KV geometry changed: banked rows cannot even be shaped
            // for the new artifact. Start a fresh cache (its stats
            // restart; the scheduler's own counters carry on).
            prefix_ = std::make_unique<PrefixCache>(
                b.layers, b.heads, b.dim / b.heads,
                config_.prefixCacheBytes);
        }
    }
}

std::vector<BatchScheduler::Response>
BatchScheduler::run(std::vector<Request> requests)
{
    std::vector<Response> out(requests.size());
    std::vector<std::exception_ptr> errors(requests.size());
    size_t next_admit = 0, completed = 0;
    while (completed < requests.size()) {
        while (next_admit < requests.size() && hasCapacity()) {
            size_t idx = next_admit++;
            admit(std::move(requests[idx]),
                  [&out, &errors, &completed, idx](
                      Response &&res, std::exception_ptr err,
                      const SchedulerRequestStats &) {
                      out[idx] = std::move(res);
                      errors[idx] = err;
                      ++completed;
                  });
        }
        step();
    }
    for (const std::exception_ptr &err : errors) {
        if (err != nullptr) {
            std::rethrow_exception(err);
        }
    }
    return out;
}

PrefixCacheStats
BatchScheduler::prefixStats() const
{
    return prefix_ != nullptr ? prefix_->stats() : PrefixCacheStats{};
}

std::string
BatchScheduler::statsJson() const
{
    PrefixCacheStats px = prefixStats();
    std::ostringstream os;
    os << "{\"admitted\": " << stats_.admitted
       << ", \"completed\": " << stats_.completed
       << ", \"failed\": " << stats_.failed
       << ", \"deadline_evicted\": " << stats_.deadlineEvicted
       << ", \"released\": " << stats_.released
       << ", \"active\": " << active()
       << ", \"decode_steps\": " << stats_.steps
       << ", \"decoded_tokens\": " << stats_.decodedTokens
       << ", \"prefill_chunks\": " << stats_.prefillChunks
       << ", \"prefill_tokens\": " << stats_.prefillTokens
       << ", \"peak_batch\": " << stats_.peakBatch
       << ", \"batch_histogram\": [";
    for (size_t b = 1; b < stats_.batchHistogram.size(); ++b) {
        os << (b == 1 ? "" : ", ") << stats_.batchHistogram[b];
    }
    os << "], \"prefix_cache\": {\"enabled\": "
       << (prefix_ != nullptr ? "true" : "false")
       << ", \"hits\": " << px.hits << ", \"misses\": " << px.misses
       << ", \"reused_tokens\": " << px.reusedTokens
       << ", \"insertions\": " << px.insertions
       << ", \"rejected\": " << px.rejected
       << ", \"evictions\": " << px.evictions
       << ", \"evicted_bytes\": " << px.evictedBytes
       << ", \"bytes\": " << px.bytes
       << ", \"entries\": " << px.entries
       << ", \"generation\": " << px.generation
       << ", \"generation_flushes\": " << px.generationFlushes << "}}";
    return os.str();
}

} // namespace serve
} // namespace edkm
