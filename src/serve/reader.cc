#include "serve/reader.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"
#include "util/serial.h"

#if defined(__unix__) || defined(__APPLE__)
#define EDKM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace edkm {
namespace serve {

std::shared_ptr<FileMapping>
FileMapping::open(const std::string &path, bool force_read)
{
    auto m = std::shared_ptr<FileMapping>(new FileMapping());
#ifdef EDKM_HAVE_MMAP
    if (!force_read) {
        int fd = ::open(path.c_str(), O_RDONLY);
        EDKM_CHECK(fd >= 0, "artifact reader: cannot open ", path);
        struct stat st;
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            void *p = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                             PROT_READ, MAP_PRIVATE, fd, 0);
            if (p != MAP_FAILED) {
                // The mapping survives the fd; close it now.
                ::close(fd);
                m->data_ = static_cast<const uint8_t *>(p);
                m->size_ = static_cast<size_t>(st.st_size);
                m->mapped_ = true;
                return m;
            }
        }
        ::close(fd);
    }
#else
    (void)force_read;
#endif
    m->heap_ = serial::readFile(path);
    m->data_ = m->heap_.data();
    m->size_ = m->heap_.size();
    m->mapped_ = false;
    return m;
}

FileMapping::~FileMapping()
{
#ifdef EDKM_HAVE_MMAP
    if (mapped_ && data_ != nullptr) {
        ::munmap(const_cast<uint8_t *>(data_), size_);
    }
#endif
}

namespace {

/** EDKM_VERIFY=eager|lazy|off; unset or empty means lazy. */
VerifyMode
verifyModeFromEnv()
{
    const char *env = std::getenv("EDKM_VERIFY");
    if (env == nullptr || *env == '\0') {
        return VerifyMode::kLazy;
    }
    std::string v(env);
    if (v == "eager") {
        return VerifyMode::kEager;
    }
    if (v == "lazy") {
        return VerifyMode::kLazy;
    }
    if (v == "off") {
        return VerifyMode::kOff;
    }
    fatal("artifact reader: EDKM_VERIFY must be eager, lazy or off, "
          "got '",
          v, "'");
}

} // namespace

std::shared_ptr<ArtifactReader>
ArtifactReader::open(const std::string &path)
{
    return open(path, verifyModeFromEnv());
}

std::shared_ptr<ArtifactReader>
ArtifactReader::open(const std::string &path, VerifyMode verify)
{
    bool force_read = std::getenv("EDKM_NO_MMAP") != nullptr;
    auto mapping = FileMapping::open(path, force_read);
    auto r = std::shared_ptr<ArtifactReader>(new ArtifactReader());
    r->file_bytes_ = static_cast<int64_t>(mapping->size());
    r->verify_ = verify;
    if (api::isArtifactV2(mapping->data(), mapping->size())) {
        r->version_ = api::kArtifactVersionV2;
        // The header/manifest/section-table digest is checked inside
        // the parse whenever the file carries one, in every mode —
        // it is a handful of KB against the payload gigabytes, and a
        // corrupt section table must never direct payload reads.
        r->layout_ =
            api::parseArtifactLayout(mapping->data(), mapping->size());
        r->mapping_ = std::move(mapping);
        r->buildIndex();
        if (r->layout_.hasChecksums && verify != VerifyMode::kOff) {
            r->verified_ = std::make_unique<std::atomic<bool>[]>(
                r->layout_.sections.size());
            for (size_t i = 0; i < r->layout_.sections.size(); ++i) {
                r->verified_[i].store(false,
                                      std::memory_order_relaxed);
            }
            if (verify == VerifyMode::kEager) {
                r->verifyAll();
            }
        }
        return r;
    }
    EDKM_CHECK(api::isArtifactV1(mapping->data(), mapping->size()),
               "artifact reader: ", path,
               " is not an eDKM model artifact (bad magic)");
    // v1 compat: deserialize straight from the mapping (payloads are
    // interleaved with the manifest, so they cannot be borrowed in
    // place — they are copied into compat_ and the mapping dropped);
    // views then borrow from the in-memory artifact, which the reader
    // and every view keep alive.
    r->version_ = api::kArtifactVersionV1;
    r->compat_ = std::make_shared<api::ModelArtifact>(
        api::ModelArtifact::deserialize(
            serial::ByteSpan(mapping->data(), mapping->size())));
    mapping.reset();
    r->layout_.scheme = r->compat_->scheme;
    r->layout_.config = r->compat_->config;
    r->layout_.size = r->compat_->size;
    for (const api::ArtifactEntry &e : r->compat_->entries) {
        api::TensorSection s;
        s.name = e.name;
        s.codec = e.codec;
        s.bits = e.bits;
        s.shape = e.shape;
        s.offset = 0; // payloads live in compat_, not at file offsets
        s.bytes = e.payloadBytes();
        r->layout_.sections.push_back(std::move(s));
    }
    r->buildIndex();
    return r;
}

void
ArtifactReader::buildIndex()
{
    index_.clear();
    index_.reserve(layout_.sections.size());
    for (size_t i = 0; i < layout_.sections.size(); ++i) {
        index_.emplace(layout_.sections[i].name, i);
    }
}

int64_t
ArtifactReader::fileBytes() const
{
    return file_bytes_;
}

bool
ArtifactReader::contains(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

const api::TensorSection &
ArtifactReader::section(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end()) {
        fatal("artifact reader: no payload section for parameter '",
              name, "' (", layout_.sections.size(),
              " sections present)");
    }
    return layout_.sections[it->second];
}

const uint8_t *
ArtifactReader::payload(const api::TensorSection &s) const
{
    if (compat_ != nullptr) {
        return compat_->entry(s.name).payload.data();
    }
    // Lazy mode: the first view of a section pays for its checksum
    // right here, before anyone consumes the bytes. Eager mode already
    // verified at open; off mode (or a checksum-less file) never does.
    if (verified_ != nullptr && verify_ == VerifyMode::kLazy) {
        verifySection(s);
    }
    return mapping_->data() + s.offset;
}

void
ArtifactReader::verifySection(const api::TensorSection &s) const
{
    size_t i = static_cast<size_t>(&s - layout_.sections.data());
    EDKM_CHECK(i < layout_.sections.size(),
               "artifact reader: verifySection called with a foreign "
               "section reference");
    if (verified_[i].load(std::memory_order_acquire)) {
        return;
    }
    api::verifyArtifactSection(layout_, s, mapping_->data());
    if (!verified_[i].exchange(true, std::memory_order_acq_rel)) {
        verified_count_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ArtifactReader::verifyAll() const
{
    if (verified_ == nullptr) {
        return; // no checksums, or opened with kOff
    }
    for (const api::TensorSection &s : layout_.sections) {
        verifySection(s);
    }
}

std::shared_ptr<const void>
ArtifactReader::keepAlive() const
{
    if (compat_ != nullptr) {
        return compat_;
    }
    return mapping_;
}

Tensor
ArtifactReader::denseView(const std::string &name) const
{
    const api::TensorSection &s = section(name);
    EDKM_CHECK(s.codec == api::Codec::kRawF32 ||
                   s.codec == api::Codec::kDenseF16,
               "artifact reader: section '", name, "' is ",
               api::codecName(s.codec),
               ", only raw_f32/dense_f16 payloads have dense views");
    DType dt =
        s.codec == api::Codec::kRawF32 ? DType::kF32 : DType::kF16;
    auto storage = Storage::borrow(
        reinterpret_cast<const std::byte *>(payload(s)), s.bytes,
        Device::cpu(), keepAlive());
    Shape strides(s.shape.size());
    int64_t acc = 1;
    for (int64_t d = static_cast<int64_t>(s.shape.size()) - 1; d >= 0;
         --d) {
        strides[static_cast<size_t>(d)] = acc;
        acc *= s.shape[static_cast<size_t>(d)];
    }
    return Tensor::wrapStorage(std::move(storage), s.shape, strides,
                               /*offset=*/0, dt);
}

PaletteView
ArtifactReader::paletteView(const std::string &name) const
{
    const api::TensorSection &s = section(name);
    EDKM_CHECK(s.codec == api::Codec::kPalettized,
               "artifact reader: section '", name, "' is ",
               api::codecName(s.codec), ", not palettized");
    PaletteView v = parsePaletteView(
        payload(s), static_cast<size_t>(s.bytes), keepAlive());
    EDKM_CHECK(v.shape == s.shape, "artifact reader: section '", name,
               "': palettized payload shape disagrees with the manifest");
    return v;
}

Tensor
ArtifactReader::decode(const std::string &name) const
{
    const api::TensorSection &s = section(name);
    api::ArtifactEntry e;
    e.name = s.name;
    e.codec = s.codec;
    e.bits = s.bits;
    e.shape = s.shape;
    const uint8_t *p = payload(s);
    e.payload.assign(p, p + s.bytes);
    return e.decode();
}

api::ModelArtifact
ArtifactReader::toArtifact() const
{
    if (compat_ != nullptr) {
        return *compat_;
    }
    api::ModelArtifact a;
    a.scheme = layout_.scheme;
    a.config = layout_.config;
    a.size = layout_.size;
    a.entries.reserve(layout_.sections.size());
    for (const api::TensorSection &s : layout_.sections) {
        api::ArtifactEntry e;
        e.name = s.name;
        e.codec = s.codec;
        e.bits = s.bits;
        e.shape = s.shape;
        const uint8_t *p = payload(s);
        e.payload.assign(p, p + s.bytes);
        a.entries.push_back(std::move(e));
    }
    return a;
}

} // namespace serve
} // namespace edkm
