#include "serve/prefix_cache.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace edkm {
namespace serve {

PrefixCache::PrefixCache(int64_t layers, int64_t groups, int64_t head_dim,
                         int64_t byte_budget)
    : layers_(layers), groups_(groups), head_dim_(head_dim),
      byte_budget_(byte_budget)
{
    EDKM_CHECK(layers >= 1 && groups >= 1 && head_dim >= 1,
               "PrefixCache: bad geometry [layers=", layers,
               ", groups=", groups, ", head_dim=", head_dim, "]");
    EDKM_CHECK(byte_budget >= 0,
               "PrefixCache: negative byte budget ", byte_budget);
}

std::string
PrefixCache::keyOf(const std::vector<int64_t> &tokens, int64_t len) const
{
    std::string key(sizeof(int64_t) +
                        static_cast<size_t>(len) * sizeof(int64_t),
                    '\0');
    std::memcpy(key.data(), &generation_, sizeof(int64_t));
    std::memcpy(key.data() + sizeof(int64_t), tokens.data(),
                static_cast<size_t>(len) * sizeof(int64_t));
    return key;
}

void
PrefixCache::advanceGeneration()
{
    ++generation_;
    stats_.generation = generation_;
    stats_.generationFlushes += static_cast<int64_t>(entries_.size());
    stats_.bytes = 0;
    entries_.clear();
    stats_.entries = 0;
}

int64_t
PrefixCache::lookup(const std::vector<int64_t> &prompt, int64_t max_len,
                    KvCache &kv)
{
    EDKM_CHECK(kv.position() == 0,
               "PrefixCache: restore target must be empty");
    EDKM_CHECK(kv.layers() == layers_ && kv.groups() == groups_ &&
                   kv.headDim() == head_dim_,
               "PrefixCache: cache geometry disagrees with the banked "
               "entries");
    max_len = std::min<int64_t>(max_len,
                                static_cast<int64_t>(prompt.size()));
    // Longest-common-prefix scan: a banked head serves any request
    // sharing ANY leading run of its tokens, not just its full length,
    // so a divergent tail still reuses the shared head. Ties go to the
    // most recently used entry. The cache is byte-budgeted, so the
    // entry count stays small enough for a linear scan.
    Entry *best = nullptr;
    int64_t best_len = 0;
    for (auto &[key, e] : entries_) {
        if (e.generation != generation_) {
            // Banked under a different artifact: its rows are not the
            // KV image of these tokens under the current weights.
            // advanceGeneration() flushes, so this is pure defence.
            continue;
        }
        int64_t limit = std::min<int64_t>(e.len, max_len);
        int64_t l = 0;
        while (l < limit && e.tokens[static_cast<size_t>(l)] ==
                                prompt[static_cast<size_t>(l)]) {
            ++l;
        }
        if (l > best_len ||
            (l == best_len && l > 0 && e.lastUse > best->lastUse)) {
            best = &e;
            best_len = l;
        }
    }
    if (best_len == 0) {
        ++stats_.misses;
        return 0;
    }
    best->lastUse = ++use_clock_;
    for (int64_t l = 0; l < layers_; ++l) {
        // Rows [0, best_len) of the banked [groups, len, head_dim]
        // tensors; contiguous() materialises the strided slice so
        // KvCache::write can memcpy it.
        kv.write(l,
                 best->k[static_cast<size_t>(l)]
                     .slice(1, 0, best_len)
                     .contiguous(),
                 best->v[static_cast<size_t>(l)]
                     .slice(1, 0, best_len)
                     .contiguous());
    }
    kv.advance(best_len);
    ++stats_.hits;
    stats_.reusedTokens += best_len;
    return best_len;
}

void
PrefixCache::evictToFit(int64_t incoming_bytes)
{
    while (!entries_.empty() &&
           stats_.bytes + incoming_bytes > byte_budget_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        stats_.bytes -= victim->second.bytes;
        stats_.evictedBytes += victim->second.bytes;
        ++stats_.evictions;
        entries_.erase(victim);
    }
    stats_.entries = static_cast<int64_t>(entries_.size());
}

void
PrefixCache::insert(const std::vector<int64_t> &tokens, int64_t len,
                    const KvCache &kv)
{
    EDKM_CHECK(len >= 1 &&
                   len <= static_cast<int64_t>(tokens.size()) &&
                   len <= kv.position(),
               "PrefixCache: cannot bank ", len, " position(s) from a "
               "cache holding ", kv.position());
    EDKM_CHECK(kv.layers() == layers_ && kv.groups() == groups_ &&
                   kv.headDim() == head_dim_,
               "PrefixCache: cache geometry disagrees with the banked "
               "entries");
    std::string key = keyOf(tokens, len);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second.lastUse = ++use_clock_;
        return;
    }
    // 2 (K and V) * layers * groups * len * head_dim f32 values.
    int64_t bytes = 2 * layers_ * groups_ * len * head_dim_ *
                    static_cast<int64_t>(sizeof(float));
    if (bytes > byte_budget_) {
        ++stats_.rejected;
        return;
    }
    evictToFit(bytes);
    Entry e;
    e.tokens.assign(tokens.begin(), tokens.begin() + len);
    e.len = len;
    e.bytes = bytes;
    e.lastUse = ++use_clock_;
    e.generation = generation_;
    e.k.reserve(static_cast<size_t>(layers_));
    e.v.reserve(static_cast<size_t>(layers_));
    for (int64_t l = 0; l < layers_; ++l) {
        // clone(), not contiguous(): the banked rows must be deep
        // copies — a view of the live request cache would alias rows
        // that the request's decode steps keep mutating.
        e.k.push_back(kv.k(l).slice(1, 0, len).clone());
        e.v.push_back(kv.v(l).slice(1, 0, len).clone());
    }
    stats_.bytes += bytes;
    ++stats_.insertions;
    entries_.emplace(std::move(key), std::move(e));
    stats_.entries = static_cast<int64_t>(entries_.size());
}

} // namespace serve
} // namespace edkm
