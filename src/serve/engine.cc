#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "autograd/functional.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {
namespace serve {

namespace {

/** Parameter names + shapes the manifest geometry requires. */
std::vector<std::pair<std::string, Shape>>
expectedParameters(const nn::LlamaConfig &cfg)
{
    int64_t d = cfg.dim, h = cfg.resolvedHidden(), v = cfg.vocab;
    std::vector<std::pair<std::string, Shape>> out;
    out.emplace_back("embed.weight", Shape{v, d});
    for (int64_t i = 0; i < cfg.layers; ++i) {
        std::string p = "blocks." + std::to_string(i) + ".";
        out.emplace_back(p + "norm1.weight", Shape{d});
        for (const char *w : {"wq", "wk", "wv", "wo"}) {
            out.emplace_back(p + "attn." + w + ".weight", Shape{d, d});
        }
        out.emplace_back(p + "norm2.weight", Shape{d});
        out.emplace_back(p + "mlp.w1.weight", Shape{h, d});
        out.emplace_back(p + "mlp.w2.weight", Shape{d, h});
        out.emplace_back(p + "mlp.w3.weight", Shape{h, d});
    }
    out.emplace_back("final_norm.weight", Shape{d});
    out.emplace_back("lm_head.weight", Shape{v, d});
    return out;
}

/** RMSNorm epsilon: nn::RMSNorm's default, which MiniLlama uses. */
constexpr float kRmsEps = 1e-5f;

} // namespace

InferenceEngine::InferenceEngine(
    std::shared_ptr<const ArtifactReader> reader, EngineConfig cfg)
    : reader_(std::move(reader)), config_(cfg)
{
    EDKM_CHECK(reader_ != nullptr, "InferenceEngine: null reader");
    EDKM_CHECK(config_.decodeCacheBytes >= 0,
               "InferenceEngine: negative decode-cache budget");
    for (const auto &[name, shape] : expectedParameters(config())) {
        EDKM_CHECK(reader_->contains(name),
                   "InferenceEngine: artifact has no section for "
                   "parameter '",
                   name, "' required by its own geometry");
        const api::TensorSection &s = reader_->section(name);
        EDKM_CHECK(s.shape == shape, "InferenceEngine: section '", name,
                   "' shape disagrees with the manifest geometry");
    }
}

Tensor
InferenceEngine::denseWeight(const std::string &name)
{
    const api::TensorSection &s = reader_->section(name);
    if (s.codec == api::Codec::kRawF32) {
        auto it = borrowed_.find(name);
        if (it != borrowed_.end()) {
            return it->second;
        }
        Tensor t = reader_->denseView(name);
        borrowed_.emplace(name, t);
        ++stats_.borrowedViews;
        return t;
    }
    // dense_f16 / affine: lazy decode into the LRU cache.
    auto it = cache_.find(name);
    if (it != cache_.end()) {
        ++stats_.cacheHits;
        it->second.lastUse = ++use_clock_;
        return it->second.tensor;
    }
    ++stats_.cacheMisses;
    ++stats_.decodes;
    CacheSlot slot;
    slot.tensor = reader_->decode(name);
    slot.bytes = slot.tensor.storageBytes();
    slot.lastUse = ++use_clock_;
    stats_.cacheBytes += slot.bytes;
    Tensor t = slot.tensor;
    cache_.emplace(name, std::move(slot));
    evictToBudget();
    return t;
}

void
InferenceEngine::evictToBudget()
{
    while (stats_.cacheBytes > config_.decodeCacheBytes &&
           cache_.size() > 1) {
        auto victim = cache_.end();
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            if (victim == cache_.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        stats_.cacheBytes -= victim->second.bytes;
        ++stats_.evictions;
        cache_.erase(victim);
    }
}

const PaletteView &
InferenceEngine::palette(const std::string &name)
{
    auto it = palettes_.find(name);
    if (it != palettes_.end()) {
        return it->second;
    }
    auto [ins, ok] = palettes_.emplace(name, reader_->paletteView(name));
    (void)ok;
    ++stats_.borrowedViews;
    return ins->second;
}

Variable
InferenceEngine::linearForward(const std::string &path, const Variable &x)
{
    std::string name = path + ".weight";
    const api::TensorSection &s = reader_->section(name);
    if (s.codec == api::Codec::kPalettized) {
        ++stats_.streamedMatmuls;
        int64_t fused0 = paletteFusedCalls();
        Variable r =
            af::constant(paletteMatmulT(x.data(), palette(name)));
        stats_.fusedDecodes += paletteFusedCalls() - fused0;
        return r;
    }
    Tensor w = denseWeight(name);
    return af::matmul(x, af::transpose(af::constant(w), 0, 1));
}

Variable
InferenceEngine::rmsNorm(const Variable &x, const std::string &name)
{
    Variable w = af::constant(denseWeight(name));
    Variable ms = af::meanDim(af::square(x), -1, /*keepdim=*/true);
    Variable inv = af::div(x, af::sqrt(af::addScalar(ms, kRmsEps)));
    return af::mul(inv, w);
}

Variable
InferenceEngine::embed(const Tensor &flat_tokens)
{
    const api::TensorSection &s = reader_->section("embed.weight");
    if (s.codec == api::Codec::kPalettized) {
        return af::constant(
            paletteGatherRows(palette("embed.weight"), flat_tokens));
    }
    Variable table = af::constant(denseWeight("embed.weight"));
    return af::gatherRows(table, flat_tokens);
}

void
InferenceEngine::ensureSeqCaches(int64_t s)
{
    if (cached_seq_ == s) {
        return;
    }
    // The same builders MultiHeadAttention::ensureCaches uses, so the
    // rope/mask values match the eager model's bit for bit.
    nn::buildRopeTables(s, config().dim / config().heads, rope_cos_,
                        rope_sin_);
    causal_mask_ = nn::buildCausalMask(s);
    cached_seq_ = s;
}

Variable
InferenceEngine::splitHeads(const std::string &proj, const Variable &x,
                            int64_t b, int64_t s)
{
    int64_t dim = config().dim, heads = config().heads;
    Variable flat = af::view(x, {b * s, dim});
    Variable y = linearForward(proj, flat);
    y = af::view(y, {b, s, heads, dim / heads});
    y = af::transpose(y, 1, 2);
    y = af::contiguous(y);
    return af::view(y, {b * heads, s, dim / heads});
}

Variable
InferenceEngine::attentionForward(int64_t layer, const Variable &x,
                                  KvCache *kv)
{
    int64_t dim = config().dim, heads = config().heads;
    int64_t head_dim = dim / heads;
    const Shape &shape = x.data().shape();
    int64_t b = shape[0], s = shape[1];
    ensureSeqCaches(s);
    std::string p = "blocks." + std::to_string(layer) + ".attn.";

    Variable q = splitHeads(p + "wq", x, b, s);
    Variable k = splitHeads(p + "wk", x, b, s);
    Variable v = splitHeads(p + "wv", x, b, s);

    q = af::rope(q, rope_cos_, rope_sin_);
    k = af::rope(k, rope_cos_, rope_sin_);

    if (kv != nullptr) {
        // Prefill: bank this layer's rope'd keys and raw values at the
        // cache position (the caller advances it after all layers).
        kv->write(layer, k.data(), v.data());
    }

    float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
    Variable att = af::matmul(q, af::transpose(k, -2, -1));
    att = af::mulScalar(att, scale);
    att = af::add(att, af::constant(causal_mask_));
    att = af::softmaxLastDim(att);
    Variable ctx = af::matmul(att, v);

    ctx = af::view(ctx, {b, heads, s, head_dim});
    ctx = af::transpose(ctx, 1, 2);
    ctx = af::contiguous(ctx);
    ctx = af::view(ctx, {b * s, dim});
    Variable out = linearForward(p + "wo", ctx);
    return af::view(out, {b, s, dim});
}

Variable
InferenceEngine::blockForward(int64_t layer, const Variable &x,
                              KvCache *kv)
{
    const Shape &sh = x.data().shape();
    int64_t b = sh[0], seq = sh[1], d = sh[2];
    std::string p = "blocks." + std::to_string(layer) + ".";
    Variable h = af::add(
        x, attentionForward(layer, rmsNorm(x, p + "norm1.weight"), kv));
    Variable flat =
        af::view(rmsNorm(h, p + "norm2.weight"), {b * seq, d});
    Variable gate = af::silu(linearForward(p + "mlp.w1", flat));
    Variable up = linearForward(p + "mlp.w3", flat);
    Variable m = linearForward(p + "mlp.w2", af::mul(gate, up));
    return af::add(h, af::view(m, {b, seq, d}));
}

Tensor
InferenceEngine::forwardImpl(const Tensor &tokens, KvCache *kv)
{
    NoGradGuard ng;
    EDKM_CHECK(tokens.dim() == 2,
               "InferenceEngine: tokens must be [B,S]");
    int64_t b = tokens.size(0), s = tokens.size(1);
    Tensor flat_tokens =
        tokens.isContiguous() ? tokens.view({b * s})
                              : tokens.contiguous().view({b * s});
    Variable h = embed(flat_tokens);
    h = af::view(h, {b, s, config().dim});
    for (int64_t l = 0; l < config().layers; ++l) {
        h = blockForward(l, h, kv);
    }
    h = rmsNorm(h, "final_norm.weight");
    h = af::view(h, {b * s, config().dim});
    return linearForward("lm_head", h).data();
}

Tensor
InferenceEngine::forward(const Tensor &tokens)
{
    return forwardImpl(tokens, nullptr);
}

Tensor
InferenceEngine::prefill(const Tensor &tokens, KvCache &kv)
{
    EDKM_CHECK(tokens.dim() == 2 && tokens.size(0) == 1,
               "InferenceEngine: prefill takes a single [1,S] request");
    int64_t s = tokens.size(1);
    EDKM_CHECK(kv.position() == 0,
               "InferenceEngine: prefill needs an empty cache "
               "(reset() it first)");
    EDKM_CHECK(kv.layers() == config().layers &&
                   kv.groups() == config().heads &&
                   kv.headDim() == config().dim / config().heads,
               "InferenceEngine: KV cache geometry disagrees with the "
               "model");
    Tensor logits = forwardImpl(tokens, &kv);
    kv.advance(s);
    ++stats_.prefills;
    stats_.prefillTokens += s;
    return logits;
}

Variable
InferenceEngine::attentionStepForward(int64_t layer, const Variable &x,
                                      KvCache &kv)
{
    int64_t dim = config().dim;
    int64_t pos = kv.position();
    std::string p = "blocks." + std::to_string(layer) + ".attn.";

    // Project and split heads exactly as the full forward does for a
    // [1, 1, D] input.
    Variable q = splitHeads(p + "wq", x, 1, 1);
    Variable k = splitHeads(p + "wk", x, 1, 1);
    Variable v = splitHeads(p + "wv", x, 1, 1);

    // RoPE rows are a pure function of the position: row pos of any
    // table of length > pos matches the full forward's bit for bit.
    Tensor cos_row = dec_cos_.slice(0, pos, pos + 1);
    Tensor sin_row = dec_sin_.slice(0, pos, pos + 1);
    q = af::rope(q, cos_row, sin_row);
    k = af::rope(k, cos_row, sin_row);

    kv.write(layer, k.data(), v.data());
    Tensor ctx =
        nn::attentionStep(q.data(), kv.k(layer), kv.v(layer), pos);
    // [H, 1, hd] is (h, hd)-major — the same order the full forward's
    // transpose+merge produces for one position row.
    Variable out =
        linearForward(p + "wo", af::view(af::constant(ctx), {1, dim}));
    return af::view(out, {1, 1, dim});
}

Variable
InferenceEngine::blockStep(int64_t layer, const Variable &x, KvCache &kv)
{
    int64_t d = config().dim;
    std::string p = "blocks." + std::to_string(layer) + ".";
    Variable h = af::add(
        x, attentionStepForward(layer, rmsNorm(x, p + "norm1.weight"),
                                kv));
    Variable flat = af::view(rmsNorm(h, p + "norm2.weight"), {1, d});
    Variable gate = af::silu(linearForward(p + "mlp.w1", flat));
    Variable up = linearForward(p + "mlp.w3", flat);
    Variable m = linearForward(p + "mlp.w2", af::mul(gate, up));
    return af::add(h, af::view(m, {1, 1, d}));
}

Tensor
InferenceEngine::decodeStep(int64_t token, KvCache &kv)
{
    NoGradGuard ng;
    EDKM_CHECK(kv.position() >= 1,
               "InferenceEngine: decodeStep needs a prefilled cache");
    EDKM_CHECK(token >= 0 && token < config().vocab,
               "InferenceEngine: token ", token, " outside the vocab");
    ensureDecodeRope(kv.position() + 1);
    Tensor tok = Tensor::fromIndices({token}, {1});
    Variable h = af::view(embed(tok), {1, 1, config().dim});
    for (int64_t l = 0; l < config().layers; ++l) {
        h = blockStep(l, h, kv);
    }
    h = rmsNorm(h, "final_norm.weight");
    h = af::view(h, {1, config().dim});
    Tensor logits = linearForward("lm_head", h).data();
    kv.advance(1);
    ++stats_.decodeSteps;
    return logits;
}

Variable
InferenceEngine::attentionChunkForward(int64_t layer, const Variable &x,
                                       KvCache &kv)
{
    int64_t dim = config().dim, heads = config().heads;
    int64_t c = x.data().shape()[1];
    int64_t p0 = kv.position();
    std::string p = "blocks." + std::to_string(layer) + ".attn.";

    Variable q = splitHeads(p + "wq", x, 1, c);
    Variable k = splitHeads(p + "wk", x, 1, c);
    Variable v = splitHeads(p + "wv", x, 1, c);

    // RoPE rows are position-pure: rows [p0, p0+c) of the decode table
    // match rows [p0, p0+c) of any full-forward table bit for bit.
    Tensor cos = dec_cos_.slice(0, p0, p0 + c);
    Tensor sin = dec_sin_.slice(0, p0, p0 + c);
    q = af::rope(q, cos, sin);
    k = af::rope(k, cos, sin);

    // Bank this chunk's rows at [p0, p0+c) (the caller advances the
    // position after all layers), then attend over prefix + chunk.
    kv.write(layer, k.data(), v.data());
    Tensor ctx =
        nn::attentionChunk(q.data(), kv.k(layer), kv.v(layer), p0);

    // [H, c, hd] -> [c, dim]: the same transpose+merge the full
    // forward applies to its context.
    Variable cv =
        af::view(af::constant(ctx), {1, heads, c, dim / heads});
    cv = af::transpose(cv, 1, 2);
    cv = af::contiguous(cv);
    cv = af::view(cv, {c, dim});
    Variable out = linearForward(p + "wo", cv);
    return af::view(out, {1, c, dim});
}

Variable
InferenceEngine::blockChunk(int64_t layer, const Variable &x, KvCache &kv)
{
    const Shape &sh = x.data().shape();
    int64_t seq = sh[1], d = sh[2];
    std::string p = "blocks." + std::to_string(layer) + ".";
    Variable h = af::add(
        x, attentionChunkForward(layer, rmsNorm(x, p + "norm1.weight"),
                                 kv));
    Variable flat = af::view(rmsNorm(h, p + "norm2.weight"), {seq, d});
    Variable gate = af::silu(linearForward(p + "mlp.w1", flat));
    Variable up = linearForward(p + "mlp.w3", flat);
    Variable m = linearForward(p + "mlp.w2", af::mul(gate, up));
    return af::add(h, af::view(m, {1, seq, d}));
}

Tensor
InferenceEngine::prefillChunk(const Tensor &tokens, KvCache &kv)
{
    NoGradGuard ng;
    EDKM_CHECK(tokens.dim() == 2 && tokens.size(0) == 1,
               "InferenceEngine: prefillChunk takes a [1,c] chunk");
    int64_t c = tokens.size(1);
    EDKM_CHECK(c >= 1, "InferenceEngine: empty prefill chunk");
    EDKM_CHECK(kv.layers() == config().layers &&
                   kv.groups() == config().heads &&
                   kv.headDim() == config().dim / config().heads,
               "InferenceEngine: KV cache geometry disagrees with the "
               "model");
    int64_t p0 = kv.position();
    EDKM_CHECK(p0 + c <= kv.capacity(), "InferenceEngine: chunk of ", c,
               " token(s) at position ", p0,
               " overflows the cache capacity ", kv.capacity());
    ensureDecodeRope(p0 + c);
    Tensor flat_tokens = tokens.isContiguous()
                             ? tokens.view({c})
                             : tokens.contiguous().view({c});
    Variable h = embed(flat_tokens);
    h = af::view(h, {1, c, config().dim});
    for (int64_t l = 0; l < config().layers; ++l) {
        h = blockChunk(l, h, kv);
    }
    h = rmsNorm(h, "final_norm.weight");
    h = af::view(h, {c, config().dim});
    Tensor logits = linearForward("lm_head", h).data();
    kv.advance(c);
    ++stats_.chunkPrefills;
    stats_.prefillTokens += c;
    return logits;
}

Variable
InferenceEngine::attentionStepBatch(int64_t layer, const Variable &x,
                                    const std::vector<KvCache *> &kvs)
{
    int64_t dim = config().dim, heads = config().heads;
    int64_t hd = dim / heads;
    int64_t bsz = static_cast<int64_t>(kvs.size());
    std::string p = "blocks." + std::to_string(layer) + ".attn.";

    // One [B, D] x [D, D] pass per projection serves every request:
    // row i is bit-identical to the [1, D] projection of request i
    // alone (ops::matmul / matmulStreamed row-shape invariance).
    Variable flat = af::view(x, {bsz, dim});
    Variable qf = linearForward(p + "wq", flat);
    Variable kf = linearForward(p + "wk", flat);
    Variable vf = linearForward(p + "wv", flat);

    // Attention core per request: each slot ropes at its own position
    // and attends over its own cache — literally the single-request
    // decode step's computation on its row of the batched projections.
    Tensor ctx = Tensor::empty({bsz, dim});
    float *pc = ctx.rawData<float>();
    for (int64_t i = 0; i < bsz; ++i) {
        int64_t pos = kvs[i]->position();
        Tensor cos_row = dec_cos_.slice(0, pos, pos + 1);
        Tensor sin_row = dec_sin_.slice(0, pos, pos + 1);
        // A contiguous [1, dim] row reinterprets as [heads, 1, hd] in
        // exactly the (h, hd)-major order splitHeads produces for one
        // position.
        Variable q = af::rope(
            af::constant(
                qf.data().slice(0, i, i + 1).view({heads, 1, hd})),
            cos_row, sin_row);
        Variable k = af::rope(
            af::constant(
                kf.data().slice(0, i, i + 1).view({heads, 1, hd})),
            cos_row, sin_row);
        kvs[i]->write(layer, k.data(),
                      vf.data().slice(0, i, i + 1).view({heads, 1, hd}));
        Tensor c_i = nn::attentionStep(q.data(), kvs[i]->k(layer),
                                       kvs[i]->v(layer), pos);
        std::memcpy(pc + i * dim, c_i.rawData<float>(),
                    static_cast<size_t>(dim) * sizeof(float));
    }
    Variable out = linearForward(p + "wo", af::constant(ctx));
    return af::view(out, {bsz, 1, dim});
}

Variable
InferenceEngine::blockStepBatch(int64_t layer, const Variable &x,
                                const std::vector<KvCache *> &kvs)
{
    int64_t bsz = static_cast<int64_t>(kvs.size());
    int64_t d = config().dim;
    std::string p = "blocks." + std::to_string(layer) + ".";
    Variable h = af::add(
        x, attentionStepBatch(layer, rmsNorm(x, p + "norm1.weight"),
                              kvs));
    Variable flat = af::view(rmsNorm(h, p + "norm2.weight"), {bsz, d});
    Variable gate = af::silu(linearForward(p + "mlp.w1", flat));
    Variable up = linearForward(p + "mlp.w3", flat);
    Variable m = linearForward(p + "mlp.w2", af::mul(gate, up));
    return af::add(h, af::view(m, {bsz, 1, d}));
}

Tensor
InferenceEngine::decodeStepBatch(const std::vector<int64_t> &tokens,
                                 const std::vector<KvCache *> &kvs)
{
    NoGradGuard ng;
    int64_t bsz = static_cast<int64_t>(tokens.size());
    EDKM_CHECK(bsz >= 1, "InferenceEngine: empty decode batch");
    EDKM_CHECK(kvs.size() == tokens.size(),
               "InferenceEngine: decode batch has ", tokens.size(),
               " token(s) but ", kvs.size(), " cache(s)");
    int64_t max_needed = 0;
    for (size_t i = 0; i < kvs.size(); ++i) {
        EDKM_CHECK(kvs[i] != nullptr,
                   "InferenceEngine: null KV cache in decode batch");
        EDKM_CHECK(kvs[i]->position() >= 1,
                   "InferenceEngine: decodeStepBatch needs prefilled "
                   "caches");
        EDKM_CHECK(tokens[i] >= 0 && tokens[i] < config().vocab,
                   "InferenceEngine: token ", tokens[i],
                   " outside the vocab");
        for (size_t j = 0; j < i; ++j) {
            EDKM_CHECK(kvs[j] != kvs[i],
                       "InferenceEngine: the same KV cache appears "
                       "twice in one decode batch");
        }
        max_needed = std::max(max_needed, kvs[i]->position() + 1);
    }
    ensureDecodeRope(max_needed);
    Tensor tok = Tensor::fromIndices(tokens, {bsz});
    Variable h = af::view(embed(tok), {bsz, 1, config().dim});
    for (int64_t l = 0; l < config().layers; ++l) {
        h = blockStepBatch(l, h, kvs);
    }
    h = rmsNorm(h, "final_norm.weight");
    h = af::view(h, {bsz, config().dim});
    Tensor logits = linearForward("lm_head", h).data();
    for (KvCache *kv : kvs) {
        kv->advance(1);
    }
    ++stats_.batchedSteps;
    stats_.batchedTokens += bsz;
    return logits;
}

void
InferenceEngine::ensureDecodeRope(int64_t len)
{
    if (dec_rope_len_ >= len) {
        return;
    }
    // Rows are position-pure, so growing the table never changes an
    // existing row; grow geometrically to amortise rebuilds.
    dec_rope_len_ = std::max(len, 2 * dec_rope_len_);
    nn::buildRopeTables(dec_rope_len_, config().dim / config().heads,
                        dec_cos_, dec_sin_);
}

void
InferenceEngine::ensureKv(int64_t needed)
{
    EDKM_CHECK(config_.kvCapacity == 0 || needed <= config_.kvCapacity,
               "InferenceEngine: request needs ", needed,
               " KV positions, over the configured capacity ",
               config_.kvCapacity);
    int64_t cap =
        config_.kvCapacity > 0 ? config_.kvCapacity : needed;
    if (kv_ == nullptr || kv_->capacity() < cap) {
        kv_ = std::make_unique<KvCache>(config().layers, config().heads,
                                        config().dim / config().heads,
                                        cap);
    } else {
        kv_->reset();
    }
    stats_.kvCacheBytes = kv_->bytes();
}

namespace {

/**
 * Cooperative between-steps interruption point: cancellation first
 * (release() should win over a racing deadline), then the deadline.
 * Tokens already decoded are untouched, so an undisturbed rerun of the
 * same request reproduces them bit-identically up to the throw.
 */
void
throwIfInterrupted(const InferenceEngine::Request &request)
{
    if (request.cancel != nullptr && request.cancel->cancelled()) {
        throw Cancelled("InferenceEngine: request cancelled");
    }
    if (request.deadline !=
            std::chrono::steady_clock::time_point::max() &&
        request.expired(std::chrono::steady_clock::now())) {
        throw DeadlineExceeded(
            "InferenceEngine: request deadline exceeded");
    }
}

} // namespace

InferenceEngine::Response
InferenceEngine::generateCached(const Request &request)
{
    Response res;
    res.tokens = request.prompt;
    if (request.maxNewTokens == 0) {
        return res;
    }
    int64_t s = static_cast<int64_t>(request.prompt.size());
    // Positions cached: the prompt plus every generated token except
    // the last (which is never fed back).
    ensureKv(s + request.maxNewTokens - 1);
    Tensor prompt = Tensor::fromIndices(request.prompt, {1, s});
    Tensor logits = prefill(prompt, *kv_);
    Tensor last = logits.slice(0, logits.size(0) - 1, logits.size(0));
    int64_t next = argmaxLastDim(last).flatAtInt(0);
    res.tokens.push_back(next);
    for (int64_t step = 1; step < request.maxNewTokens; ++step) {
        throwIfInterrupted(request);
        next = argmaxLastDim(decodeStep(next, *kv_)).flatAtInt(0);
        res.tokens.push_back(next);
    }
    return res;
}

InferenceEngine::Response
InferenceEngine::generateRecompute(const Request &request)
{
    Response res;
    res.tokens = request.prompt;
    for (int64_t step = 0; step < request.maxNewTokens; ++step) {
        if (step > 0) {
            throwIfInterrupted(request);
        }
        Tensor tokens = Tensor::fromIndices(
            res.tokens, {1, static_cast<int64_t>(res.tokens.size())});
        Tensor logits = forward(tokens);
        Tensor last = logits.slice(0, logits.size(0) - 1,
                                   logits.size(0));
        res.tokens.push_back(argmaxLastDim(last).flatAtInt(0));
    }
    return res;
}

InferenceEngine::Response
InferenceEngine::generate(const Request &request)
{
    EDKM_CHECK(!request.prompt.empty(),
               "InferenceEngine: empty prompt in request");
    EDKM_CHECK(request.maxNewTokens >= 0,
               "InferenceEngine: negative maxNewTokens");
    throwIfInterrupted(request);
    return config_.kvCacheDecode ? generateCached(request)
                                 : generateRecompute(request);
}

std::vector<InferenceEngine::Response>
InferenceEngine::generate(const std::vector<Request> &batch)
{
    std::vector<Response> out;
    out.reserve(batch.size());
    for (const Request &r : batch) {
        out.push_back(generate(r));
    }
    return out;
}

} // namespace serve
} // namespace edkm
