#include "serve/engine.h"

#include <cmath>

#include "autograd/functional.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {
namespace serve {

namespace {

/** Parameter names + shapes the manifest geometry requires. */
std::vector<std::pair<std::string, Shape>>
expectedParameters(const nn::LlamaConfig &cfg)
{
    int64_t d = cfg.dim, h = cfg.resolvedHidden(), v = cfg.vocab;
    std::vector<std::pair<std::string, Shape>> out;
    out.emplace_back("embed.weight", Shape{v, d});
    for (int64_t i = 0; i < cfg.layers; ++i) {
        std::string p = "blocks." + std::to_string(i) + ".";
        out.emplace_back(p + "norm1.weight", Shape{d});
        for (const char *w : {"wq", "wk", "wv", "wo"}) {
            out.emplace_back(p + "attn." + w + ".weight", Shape{d, d});
        }
        out.emplace_back(p + "norm2.weight", Shape{d});
        out.emplace_back(p + "mlp.w1.weight", Shape{h, d});
        out.emplace_back(p + "mlp.w2.weight", Shape{d, h});
        out.emplace_back(p + "mlp.w3.weight", Shape{h, d});
    }
    out.emplace_back("final_norm.weight", Shape{d});
    out.emplace_back("lm_head.weight", Shape{v, d});
    return out;
}

/** RMSNorm epsilon: nn::RMSNorm's default, which MiniLlama uses. */
constexpr float kRmsEps = 1e-5f;

} // namespace

InferenceEngine::InferenceEngine(
    std::shared_ptr<const ArtifactReader> reader, EngineConfig cfg)
    : reader_(std::move(reader)), config_(cfg)
{
    EDKM_CHECK(reader_ != nullptr, "InferenceEngine: null reader");
    EDKM_CHECK(config_.decodeCacheBytes >= 0,
               "InferenceEngine: negative decode-cache budget");
    for (const auto &[name, shape] : expectedParameters(config())) {
        EDKM_CHECK(reader_->contains(name),
                   "InferenceEngine: artifact has no section for "
                   "parameter '",
                   name, "' required by its own geometry");
        const api::TensorSection &s = reader_->section(name);
        EDKM_CHECK(s.shape == shape, "InferenceEngine: section '", name,
                   "' shape disagrees with the manifest geometry");
    }
}

Tensor
InferenceEngine::denseWeight(const std::string &name)
{
    const api::TensorSection &s = reader_->section(name);
    if (s.codec == api::Codec::kRawF32) {
        auto it = borrowed_.find(name);
        if (it != borrowed_.end()) {
            return it->second;
        }
        Tensor t = reader_->denseView(name);
        borrowed_.emplace(name, t);
        ++stats_.borrowedViews;
        return t;
    }
    // dense_f16 / affine: lazy decode into the LRU cache.
    auto it = cache_.find(name);
    if (it != cache_.end()) {
        ++stats_.cacheHits;
        it->second.lastUse = ++use_clock_;
        return it->second.tensor;
    }
    ++stats_.cacheMisses;
    ++stats_.decodes;
    CacheSlot slot;
    slot.tensor = reader_->decode(name);
    slot.bytes = slot.tensor.storageBytes();
    slot.lastUse = ++use_clock_;
    stats_.cacheBytes += slot.bytes;
    Tensor t = slot.tensor;
    cache_.emplace(name, std::move(slot));
    evictToBudget();
    return t;
}

void
InferenceEngine::evictToBudget()
{
    while (stats_.cacheBytes > config_.decodeCacheBytes &&
           cache_.size() > 1) {
        auto victim = cache_.end();
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            if (victim == cache_.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        stats_.cacheBytes -= victim->second.bytes;
        ++stats_.evictions;
        cache_.erase(victim);
    }
}

const PaletteView &
InferenceEngine::palette(const std::string &name)
{
    auto it = palettes_.find(name);
    if (it != palettes_.end()) {
        return it->second;
    }
    auto [ins, ok] = palettes_.emplace(name, reader_->paletteView(name));
    (void)ok;
    ++stats_.borrowedViews;
    return ins->second;
}

Variable
InferenceEngine::linearForward(const std::string &path, const Variable &x)
{
    std::string name = path + ".weight";
    const api::TensorSection &s = reader_->section(name);
    if (s.codec == api::Codec::kPalettized) {
        ++stats_.streamedMatmuls;
        return af::constant(paletteMatmulT(x.data(), palette(name)));
    }
    Tensor w = denseWeight(name);
    return af::matmul(x, af::transpose(af::constant(w), 0, 1));
}

Variable
InferenceEngine::rmsNorm(const Variable &x, const std::string &name)
{
    Variable w = af::constant(denseWeight(name));
    Variable ms = af::meanDim(af::square(x), -1, /*keepdim=*/true);
    Variable inv = af::div(x, af::sqrt(af::addScalar(ms, kRmsEps)));
    return af::mul(inv, w);
}

Variable
InferenceEngine::embed(const Tensor &flat_tokens)
{
    const api::TensorSection &s = reader_->section("embed.weight");
    if (s.codec == api::Codec::kPalettized) {
        return af::constant(
            paletteGatherRows(palette("embed.weight"), flat_tokens));
    }
    Variable table = af::constant(denseWeight("embed.weight"));
    return af::gatherRows(table, flat_tokens);
}

void
InferenceEngine::ensureSeqCaches(int64_t s)
{
    if (cached_seq_ == s) {
        return;
    }
    // The same builders MultiHeadAttention::ensureCaches uses, so the
    // rope/mask values match the eager model's bit for bit.
    nn::buildRopeTables(s, config().dim / config().heads, rope_cos_,
                        rope_sin_);
    causal_mask_ = nn::buildCausalMask(s);
    cached_seq_ = s;
}

Variable
InferenceEngine::attentionForward(int64_t layer, const Variable &x)
{
    int64_t dim = config().dim, heads = config().heads;
    int64_t head_dim = dim / heads;
    const Shape &shape = x.data().shape();
    int64_t b = shape[0], s = shape[1];
    ensureSeqCaches(s);
    std::string p = "blocks." + std::to_string(layer) + ".attn.";

    auto split_heads = [&](const std::string &proj) {
        Variable flat = af::view(x, {b * s, dim});
        Variable y = linearForward(p + proj, flat);
        y = af::view(y, {b, s, heads, head_dim});
        y = af::transpose(y, 1, 2);
        y = af::contiguous(y);
        return af::view(y, {b * heads, s, head_dim});
    };
    Variable q = split_heads("wq");
    Variable k = split_heads("wk");
    Variable v = split_heads("wv");

    q = af::rope(q, rope_cos_, rope_sin_);
    k = af::rope(k, rope_cos_, rope_sin_);

    float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
    Variable att = af::matmul(q, af::transpose(k, -2, -1));
    att = af::mulScalar(att, scale);
    att = af::add(att, af::constant(causal_mask_));
    att = af::softmaxLastDim(att);
    Variable ctx = af::matmul(att, v);

    ctx = af::view(ctx, {b, heads, s, head_dim});
    ctx = af::transpose(ctx, 1, 2);
    ctx = af::contiguous(ctx);
    ctx = af::view(ctx, {b * s, dim});
    Variable out = linearForward(p + "wo", ctx);
    return af::view(out, {b, s, dim});
}

Variable
InferenceEngine::blockForward(int64_t layer, const Variable &x)
{
    const Shape &sh = x.data().shape();
    int64_t b = sh[0], seq = sh[1], d = sh[2];
    std::string p = "blocks." + std::to_string(layer) + ".";
    Variable h = af::add(
        x, attentionForward(layer, rmsNorm(x, p + "norm1.weight")));
    Variable flat =
        af::view(rmsNorm(h, p + "norm2.weight"), {b * seq, d});
    Variable gate = af::silu(linearForward(p + "mlp.w1", flat));
    Variable up = linearForward(p + "mlp.w3", flat);
    Variable m = linearForward(p + "mlp.w2", af::mul(gate, up));
    return af::add(h, af::view(m, {b, seq, d}));
}

Tensor
InferenceEngine::forward(const Tensor &tokens)
{
    NoGradGuard ng;
    EDKM_CHECK(tokens.dim() == 2,
               "InferenceEngine: tokens must be [B,S]");
    int64_t b = tokens.size(0), s = tokens.size(1);
    Tensor flat_tokens =
        tokens.isContiguous() ? tokens.view({b * s})
                              : tokens.contiguous().view({b * s});
    Variable h = embed(flat_tokens);
    h = af::view(h, {b, s, config().dim});
    for (int64_t l = 0; l < config().layers; ++l) {
        h = blockForward(l, h);
    }
    h = rmsNorm(h, "final_norm.weight");
    h = af::view(h, {b * s, config().dim});
    return linearForward("lm_head", h).data();
}

InferenceEngine::Response
InferenceEngine::generate(const Request &request)
{
    EDKM_CHECK(!request.prompt.empty(),
               "InferenceEngine: empty prompt in request");
    Response res;
    res.tokens = request.prompt;
    for (int64_t step = 0; step < request.maxNewTokens; ++step) {
        Tensor tokens = Tensor::fromIndices(
            res.tokens, {1, static_cast<int64_t>(res.tokens.size())});
        Tensor logits = forward(tokens);
        Tensor last = logits.slice(0, logits.size(0) - 1,
                                   logits.size(0));
        res.tokens.push_back(argmaxLastDim(last).flatAtInt(0));
    }
    return res;
}

std::vector<InferenceEngine::Response>
InferenceEngine::generate(const std::vector<Request> &batch)
{
    std::vector<Response> out;
    out.reserve(batch.size());
    for (const Request &r : batch) {
        out.push_back(generate(r));
    }
    return out;
}

} // namespace serve
} // namespace edkm
