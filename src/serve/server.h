/**
 * @file
 * Multi-threaded request serving over one shared ArtifactReader.
 *
 * Two execution modes behind one submit()/wait()/release() surface:
 *
 * *Threaded* (default): the Server owns a pool of InferenceEngine
 * instances — one per worker thread — all wired to the *same*
 * ArtifactReader. The reader is immutable after open() (an mmap'd file
 * plus parsed metadata), so sharing it across threads is free: every
 * engine streams palettized tiles and borrows raw_f32 views from the
 * one mapping, while keeping its own mutable state (LRU decode cache,
 * KV cache, stats) private. Requests flow through a work queue on the
 * existing runtime::ThreadPool; each request is executed start to
 * finish by exactly one engine. Engine-internal parallel loops degrade
 * to serial inside pool workers (runtime::ThreadPool nested-call
 * rule), so throughput scales by request-level parallelism.
 *
 * *Batched* (ServerConfig::batched): ONE engine plus a BatchScheduler
 * driven by a dedicated step-loop thread (a plain std::thread, not a
 * pool worker, so engine-internal parallelFor still fans out).
 * submit() enqueues the ticket on a server-owned queue; the loop admits
 * queued requests into scheduler slots whenever one frees, and every
 * in-flight request's next token rides one batched forward per step.
 * release() of a ticket still waiting in the queue cancels it without
 * touching the step loop (the wait() throws); the destructor drains
 * queue and in-flight slots before joining the loop.
 *
 * Either way the response depends only on the request and the artifact
 * — never on scheduling: N-thread and batched serving are bit-identical
 * to serial execution, which tests/test_server.cc enforces under an
 * 8-thread interleaving stress and batched-vs-threaded comparisons.
 *
 * *Hot model swap* (swap()): load artifact N+1 while N keeps serving.
 * Every ticket is stamped with the server generation current at
 * submit() and pins its own ArtifactReader, so a swap never drops or
 * re-targets a ticket: requests submitted before the swap complete
 * against artifact N, requests submitted after run against N+1, and
 * no request ever mixes weights from both. Threaded mode rebuilds each
 * worker engine lazily the first time it picks up a newer-generation
 * ticket; batched mode drains the in-flight slots, then retargets the
 * step loop (BatchScheduler::swapEngine) between steps. The old
 * mapping is released once the last old-generation record completes
 * (records drop their reader pin at completion).
 *
 * *Deadlines and cancellation*: Request::deadline and Request::cancel
 * flow through both modes. Expiry / release() of an in-flight ticket
 * interrupts it at the next between-steps check (never mid-forward —
 * surviving requests stay bit-identical), and wait() rethrows the
 * typed DeadlineExceeded / Cancelled error.
 */

#ifndef EDKM_SERVE_SERVER_H_
#define EDKM_SERVE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/reader.h"
#include "serve/scheduler.h"
#include "util/histogram.h"
#include "util/thread_annotations.h"

namespace edkm {
namespace serve {

/** Server knobs. */
struct ServerConfig
{
    /** Worker threads == engine instances (>= 1). Ignored in batched
     *  mode, which runs one engine under the step loop. */
    int threads = 2;
    /** Per-engine configuration (decode cache budget, KV decode). */
    EngineConfig engine;
    /** Continuous batching: one engine, one step-loop thread, all
     *  in-flight requests decoded by shared batched forwards. */
    bool batched = false;
    /** Step-loop knobs (batch width, prefill chunking, prefix cache);
     *  only read when batched. */
    SchedulerConfig scheduler;
};

/** Concurrent request server over one shared artifact reader. */
class Server
{
  public:
    using Request = InferenceEngine::Request;
    using Response = InferenceEngine::Response;
    using RequestId = int64_t;

    /** Per-request accounting, available once the request completed. */
    struct RequestStats
    {
        RequestId id = 0;
        int engine = -1; ///< which engine instance served it
        int64_t generation = 0; ///< artifact generation served against
        int64_t promptTokens = 0;
        int64_t newTokens = 0;
        double millis = 0.0; ///< execution time (excluding queue wait)
        double queueMillis = 0.0; ///< submit-to-execution-start wait
        // Batched mode only (zero in threaded mode):
        int64_t prefillChunks = 0;      ///< prefill continuations run
        int64_t decodeSteps = 0;        ///< batched steps joined
        int64_t reusedPrefixTokens = 0; ///< restored from the prefix cache
    };

    Server(std::shared_ptr<const ArtifactReader> reader,
           ServerConfig config = ServerConfig{});

    /** Blocks until every in-flight request has drained. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    int threads() const { return config_.threads; }
    const ServerConfig &config() const { return config_; }

    /** Enqueue one request; returns the ticket for wait(). */
    RequestId submit(Request request);

    /** Enqueue a batch; tickets are returned in request order. */
    std::vector<RequestId> submit(std::vector<Request> batch);

    /**
     * Block until request @p id completes and return its response.
     * Rethrows the request's exception if it failed. Callable more
     * than once per ticket.
     */
    Response wait(RequestId id);

    /** wait() for each ticket, in order. */
    std::vector<Response> wait(const std::vector<RequestId> &ids);

    /** Stats of a completed request (wait() it first). */
    RequestStats requestStats(RequestId id) const;

    /**
     * Forget request @p id: blocks until it completes, then frees its
     * record (response, stats, prompt). Completed requests are
     * otherwise retained so wait()/requestStats() stay answerable —
     * long-lived servers should release tickets they are done with, or
     * memory grows by one record per request served. Idempotent;
     * racing a release against a wait() of the same ticket makes the
     * wait throw (never read freed memory).
     */
    void release(RequestId id);

    /** release() each ticket. */
    void release(const std::vector<RequestId> &ids);

    /**
     * Hot-swap the served artifact: tickets submitted after swap()
     * returns run against @p next, tickets already submitted complete
     * against the artifact they were stamped with at submit() — none
     * are dropped, none mix generations (the prefix cache flushes at
     * the generation boundary). Blocks until the serving side has cut
     * over: threaded mode drains old-generation work and rebuilds idle
     * engines; batched mode waits for the step loop to drain its slots
     * and retarget the scheduler. Concurrent submit()/wait()/release()
     * are safe throughout. Throws (and leaves the server untouched) if
     * @p next cannot back an engine.
     */
    void swap(std::shared_ptr<const ArtifactReader> next);

    /** Artifact generation new submissions are stamped with (starts at
     *  0, +1 per swap()). */
    int64_t generation() const;

    /**
     * Stats of engine instance @p i (in [0, threads) threaded; only 0
     * batched). Only meaningful while no request is in flight (engines
     * are otherwise mutating their own counters).
     */
    const EngineStats &engineStats(int i) const;

    /** Requests completed (successfully or not) so far, including
     *  queued tickets cancelled by release(). */
    int64_t completed() const;

    /** Queued tickets cancelled by release() before admission
     *  (batched mode). */
    int64_t cancelled() const;

    /**
     * Serving metrics as a JSON object string: queue depth / peak /
     * cancellations, plus (batched) the scheduler's counters — step
     * batch-size histogram, per-phase token counts and the prefix
     * cache's hit/miss/eviction accounting. The scheduler block is a
     * snapshot the step loop publishes after each step, so it is exact
     * as of the most recent step (and fully exact once idle).
     */
    std::string metricsJson() const;

  private:
    struct Record
    {
        Request request;
        Response response;
        RequestStats stats;
        std::shared_future<void> done;
        /** Batched mode: completion is promise-backed (the scheduler's
         *  callback fulfils it) instead of pool-future-backed. */
        std::promise<void> promise;
        bool queued = false; ///< batched: still awaiting admission
        /** Server generation at submit(): the artifact this ticket is
         *  served against, swap or no swap. */
        int64_t generation = 0;
        /** Pins the ticket's artifact mapping until completion (reset
         *  then, so a swapped-out mapping can unmap). */
        std::shared_ptr<const ArtifactReader> reader;
        /** Always non-null once submitted (created here if the caller
         *  passed none): release() of an admitted ticket fires it. */
        std::shared_ptr<CancelToken> cancel;
        std::chrono::steady_clock::time_point submitted;
    };

    void run(Record &rec);
    int checkoutEngine() EDKM_EXCLUDES(mutex_);
    void checkinEngine(int idx) EDKM_EXCLUDES(mutex_);
    /** Batched-mode step loop (dedicated thread). */
    void batchLoop() EDKM_EXCLUDES(mutex_);
    /** Completion future of @p id (copied out under the lock; safe to
     *  block on while release() erases the record). */
    std::shared_future<void> ticket(RequestId id) const
        EDKM_EXCLUDES(mutex_);

    ServerConfig config_;
    /** Engine instances. NOT guarded by mutex_ on purpose: each index
     *  is owned exclusively — threaded mode by whichever job checked
     *  the index out of free_ (at most one at a time), batched mode by
     *  the step loop (index 0 only, rebuilt at the generation cutover
     *  while it alone runs). engineStats() reads are documented as
     *  only meaningful while idle. */
    std::vector<std::unique_ptr<InferenceEngine>> engines_;

    mutable util::Mutex mutex_;
    /** Artifact new submissions pin (swap() repoints it). */
    std::shared_ptr<const ArtifactReader> reader_ EDKM_GUARDED_BY(mutex_);
    std::vector<int> free_ EDKM_GUARDED_BY(mutex_); ///< idle engine slots
    /** Threaded: generation engines_[i] was built against; a checkout
     *  whose ticket is newer rebuilds the engine from the ticket's
     *  reader first. */
    std::vector<int64_t> engine_gen_ EDKM_GUARDED_BY(mutex_);
    std::unordered_map<RequestId, std::unique_ptr<Record>> records_
        EDKM_GUARDED_BY(mutex_);
    RequestId next_id_ EDKM_GUARDED_BY(mutex_) = 1;
    /** Generation new submissions are stamped with. */
    int64_t gen_ EDKM_GUARDED_BY(mutex_) = 0;
    int64_t completed_ EDKM_GUARDED_BY(mutex_) = 0;
    /** Submit-to-start and submit-to-completion latencies (ms). */
    LatencyHistogram queue_wait_hist_ EDKM_GUARDED_BY(mutex_);
    LatencyHistogram e2e_hist_ EDKM_GUARDED_BY(mutex_);

    // Batched mode. The scheduler object (and its engine) is stepped
    // only by loop_ with mutex_ released; the queue and flags below are
    // shared under mutex_.
    std::unique_ptr<BatchScheduler> scheduler_;
    /** Submitted, not yet admitted. */
    std::deque<RequestId> queue_ EDKM_GUARDED_BY(mutex_);
    util::CondVar cv_; ///< wakes the loop: submit/swap/stop
    bool stop_ EDKM_GUARDED_BY(mutex_) = false;
    /** Loop exited (unblocks waiting swaps). */
    bool loop_done_ EDKM_GUARDED_BY(mutex_) = false;
    /** Generation the step loop is serving. */
    int64_t loop_gen_ EDKM_GUARDED_BY(mutex_) = 0;
    /** Engines probe-built by swap(), installed by the loop at the
     *  generation cutover (keyed by target generation). */
    std::map<int64_t, std::unique_ptr<InferenceEngine>> pending_engines_
        EDKM_GUARDED_BY(mutex_);
    int64_t cancelled_ EDKM_GUARDED_BY(mutex_) = 0;
    int64_t peak_queue_ EDKM_GUARDED_BY(mutex_) = 0;
    /** Scheduler stats snapshot, published by the loop under mutex_
     *  after each step so metricsJson() never races the step loop. */
    std::string sched_json_ EDKM_GUARDED_BY(mutex_);
    // lint:allow(raw-thread) the batched mode's dedicated step loop:
    // deliberately NOT a pool worker, so engine-internal parallelFor
    // still fans out across the runtime pool (see batchLoop()).
    std::thread loop_;

    /**
     * Declared last: destroyed first, so the pool drains every queued
     * job (which touch the members above) before they are torn down.
     * (Batched mode joins loop_ in the destructor body instead.)
     */
    std::unique_ptr<runtime::ThreadPool> pool_;
};

} // namespace serve

namespace api {
/** Re-exported beside InferenceEngine as the api:: serving surface. */
using Server = serve::Server;
} // namespace api

} // namespace edkm

#endif // EDKM_SERVE_SERVER_H_
