/**
 * @file
 * Zero-copy artifact access for serving.
 *
 * ArtifactReader opens a saved ModelArtifact file for *consumption*:
 * the v2 container is mapped read-only (mmap where available, with a
 * portable whole-file read fallback — EDKM_NO_MMAP=1 forces it) and
 * payload sections are handed out in place:
 *
 *   - denseView():   borrowed Tensor over a raw_f32 / dense_f16 section
 *                    (no copy; Storage in borrowed mode keeps the
 *                    mapping alive).
 *   - paletteView(): LUT + borrowed index bitstream of a palettized
 *                    section, consumed directly by paletteMatmulT.
 *   - decode():      eager dense f32 decode of any section, bit-
 *                    identical to ArtifactEntry::decode.
 *
 * v2.1 checksummed containers are verified on the way in: the header /
 * manifest / section-table digest is always checked at open (inside
 * parseArtifactLayout), and payload sections are checked against their
 * per-section checksum under a VerifyMode — kEager checks every
 * section at open, kLazy (the default) checks each section once on its
 * first payload() view from whichever thread gets there first, kOff
 * trusts the bytes. The EDKM_VERIFY=eager|lazy|off environment knob
 * selects the mode for the env-driven open(); a corruption error
 * always names the bad section. Files without checksums (v2.0, v1)
 * skip payload verification entirely.
 *
 * Legacy v1 files load through the compatibility path (whole-stream
 * deserialize); views then borrow from the in-memory artifact instead
 * of a mapping, with the same lifetime guarantees.
 */

#ifndef EDKM_SERVE_READER_H_
#define EDKM_SERVE_READER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/artifact.h"
#include "core/palettize.h"
#include "tensor/tensor.h"

namespace edkm {
namespace serve {

/**
 * A read-only byte source for one artifact file: an mmap-ed range or a
 * heap copy (fallback / v1 compat). Borrowed storages hold it via
 * shared_ptr, so views outlive the reader safely.
 */
class FileMapping
{
  public:
    /** Map (or read) @p path. @p force_read skips mmap. */
    static std::shared_ptr<FileMapping> open(const std::string &path,
                                             bool force_read);

    ~FileMapping();

    FileMapping(const FileMapping &) = delete;
    FileMapping &operator=(const FileMapping &) = delete;

    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }

    /** True when the bytes are an actual file mapping (not a copy). */
    bool mapped() const { return mapped_; }

  private:
    FileMapping() = default;

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    bool mapped_ = false;
    std::vector<uint8_t> heap_; ///< fallback bytes when !mapped_
};

/** When payload sections are checked against their v2.1 checksums. */
enum class VerifyMode {
    kOff,   ///< trust the bytes (structural digest still checked)
    kLazy,  ///< each section once, on first payload() view (default)
    kEager, ///< every section at open()
};

/** Serving-side view into one saved model artifact. */
class ArtifactReader
{
  public:
    /**
     * Open @p path. v2 containers are validated (header, manifest,
     * section table) without touching payload bytes; v1 files are
     * deserialized whole. Throws FatalError with the offending section
     * named on any corruption. The verify mode is read from
     * EDKM_VERIFY (eager|lazy|off; unset/empty means lazy; anything
     * else throws).
     */
    static std::shared_ptr<ArtifactReader> open(const std::string &path);

    /** Open @p path with an explicit payload verify mode. */
    static std::shared_ptr<ArtifactReader> open(const std::string &path,
                                                VerifyMode verify);

    /** Payload verification policy this reader was opened with. */
    VerifyMode verifyMode() const { return verify_; }

    /** True when the container carries a v2.1 checksum table. */
    bool hasChecksums() const { return layout_.hasChecksums; }

    /** Payload sections checksum-verified so far (eager: all at open;
     *  lazy: grows with first views; off / no checksums: stays 0). */
    int64_t sectionsVerified() const
    {
        return verified_count_.load(std::memory_order_relaxed);
    }

    /** Verify every not-yet-verified payload section now (what kEager
     *  does at open). No-op without checksums or in kOff. */
    void verifyAll() const;

    /** Container version of the underlying file (1 or 2). */
    uint32_t version() const { return version_; }

    /** True when payloads are served from an actual file mapping. */
    bool mapped() const { return mapping_ && mapping_->mapped(); }

    int64_t fileBytes() const;

    const std::string &scheme() const { return layout_.scheme; }
    const nn::LlamaConfig &config() const { return layout_.config; }
    const eval::SizeReport &sizeReport() const { return layout_.size; }

    /** All payload sections, in container order. */
    const std::vector<api::TensorSection> &sections() const
    {
        return layout_.sections;
    }

    bool contains(const std::string &name) const;

    /** Section metadata for @p name (indexed lookup); throws when
     *  absent. */
    const api::TensorSection &section(const std::string &name) const;

    /** Borrowed pointer to @p s's payload bytes (alive with reader or
     *  any view derived from it). */
    const uint8_t *payload(const api::TensorSection &s) const;

    /**
     * Zero-copy dense tensor over a raw_f32 or dense_f16 section: a
     * borrowed-storage Tensor of the section's shape and storage dtype
     * (kF32 / kF16). Throws for other codecs. The returned tensor must
     * be treated read-only.
     */
    Tensor denseView(const std::string &name) const;

    /** Zero-copy palette view over a palettized section. */
    PaletteView paletteView(const std::string &name) const;

    /**
     * Eager dense f32 decode of any section — bit-identical to the
     * ArtifactEntry::decode a ModelArtifact::load would perform.
     */
    Tensor decode(const std::string &name) const;

    /** Materialise the whole artifact (tooling / compat). */
    api::ModelArtifact toArtifact() const;

  private:
    ArtifactReader() = default;

    /** The keep-alive token borrowed storages should hold. */
    std::shared_ptr<const void> keepAlive() const;

    /** Rebuild the name -> section index after layout_ is filled. */
    void buildIndex();

    /** Checksum @p s once (thread-safe, idempotent); throws naming the
     *  section on mismatch. */
    void verifySection(const api::TensorSection &s) const;

    uint32_t version_ = 0;
    int64_t file_bytes_ = 0;
    VerifyMode verify_ = VerifyMode::kLazy;
    api::ArtifactLayout layout_;
    std::unordered_map<std::string, size_t> index_;
    /** Lazy verification bookkeeping: one sticky flag per section.
     *  Concurrent first views may both compute the checksum (benign —
     *  verification is read-only and idempotent); the flag just stops
     *  every later view from paying for it again. */
    mutable std::unique_ptr<std::atomic<bool>[]> verified_;
    mutable std::atomic<int64_t> verified_count_{0};
    /** The v2 mapping; null for v1 files (payloads live in compat_). */
    std::shared_ptr<FileMapping> mapping_;
    /** v1 compat: payloads live here instead of in the mapping. */
    std::shared_ptr<api::ModelArtifact> compat_;
};

} // namespace serve
} // namespace edkm

#endif // EDKM_SERVE_READER_H_
