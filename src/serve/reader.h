/**
 * @file
 * Zero-copy artifact access for serving.
 *
 * ArtifactReader opens a saved ModelArtifact file for *consumption*:
 * the v2 container is mapped read-only (mmap where available, with a
 * portable whole-file read fallback — EDKM_NO_MMAP=1 forces it) and
 * payload sections are handed out in place:
 *
 *   - denseView():   borrowed Tensor over a raw_f32 / dense_f16 section
 *                    (no copy; Storage in borrowed mode keeps the
 *                    mapping alive).
 *   - paletteView(): LUT + borrowed index bitstream of a palettized
 *                    section, consumed directly by paletteMatmulT.
 *   - decode():      eager dense f32 decode of any section, bit-
 *                    identical to ArtifactEntry::decode.
 *
 * Legacy v1 files load through the compatibility path (whole-stream
 * deserialize); views then borrow from the in-memory artifact instead
 * of a mapping, with the same lifetime guarantees.
 */

#ifndef EDKM_SERVE_READER_H_
#define EDKM_SERVE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/artifact.h"
#include "core/palettize.h"
#include "tensor/tensor.h"

namespace edkm {
namespace serve {

/**
 * A read-only byte source for one artifact file: an mmap-ed range or a
 * heap copy (fallback / v1 compat). Borrowed storages hold it via
 * shared_ptr, so views outlive the reader safely.
 */
class FileMapping
{
  public:
    /** Map (or read) @p path. @p force_read skips mmap. */
    static std::shared_ptr<FileMapping> open(const std::string &path,
                                             bool force_read);

    ~FileMapping();

    FileMapping(const FileMapping &) = delete;
    FileMapping &operator=(const FileMapping &) = delete;

    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }

    /** True when the bytes are an actual file mapping (not a copy). */
    bool mapped() const { return mapped_; }

  private:
    FileMapping() = default;

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    bool mapped_ = false;
    std::vector<uint8_t> heap_; ///< fallback bytes when !mapped_
};

/** Serving-side view into one saved model artifact. */
class ArtifactReader
{
  public:
    /**
     * Open @p path. v2 containers are validated (header, manifest,
     * section table) without touching payload bytes; v1 files are
     * deserialized whole. Throws FatalError with the offending section
     * named on any corruption.
     */
    static std::shared_ptr<ArtifactReader> open(const std::string &path);

    /** Container version of the underlying file (1 or 2). */
    uint32_t version() const { return version_; }

    /** True when payloads are served from an actual file mapping. */
    bool mapped() const { return mapping_ && mapping_->mapped(); }

    int64_t fileBytes() const;

    const std::string &scheme() const { return layout_.scheme; }
    const nn::LlamaConfig &config() const { return layout_.config; }
    const eval::SizeReport &sizeReport() const { return layout_.size; }

    /** All payload sections, in container order. */
    const std::vector<api::TensorSection> &sections() const
    {
        return layout_.sections;
    }

    bool contains(const std::string &name) const;

    /** Section metadata for @p name (indexed lookup); throws when
     *  absent. */
    const api::TensorSection &section(const std::string &name) const;

    /** Borrowed pointer to @p s's payload bytes (alive with reader or
     *  any view derived from it). */
    const uint8_t *payload(const api::TensorSection &s) const;

    /**
     * Zero-copy dense tensor over a raw_f32 or dense_f16 section: a
     * borrowed-storage Tensor of the section's shape and storage dtype
     * (kF32 / kF16). Throws for other codecs. The returned tensor must
     * be treated read-only.
     */
    Tensor denseView(const std::string &name) const;

    /** Zero-copy palette view over a palettized section. */
    PaletteView paletteView(const std::string &name) const;

    /**
     * Eager dense f32 decode of any section — bit-identical to the
     * ArtifactEntry::decode a ModelArtifact::load would perform.
     */
    Tensor decode(const std::string &name) const;

    /** Materialise the whole artifact (tooling / compat). */
    api::ModelArtifact toArtifact() const;

  private:
    ArtifactReader() = default;

    /** The keep-alive token borrowed storages should hold. */
    std::shared_ptr<const void> keepAlive() const;

    /** Rebuild the name -> section index after layout_ is filled. */
    void buildIndex();

    uint32_t version_ = 0;
    int64_t file_bytes_ = 0;
    api::ArtifactLayout layout_;
    std::unordered_map<std::string, size_t> index_;
    /** The v2 mapping; null for v1 files (payloads live in compat_). */
    std::shared_ptr<FileMapping> mapping_;
    /** v1 compat: payloads live here instead of in the mapping. */
    std::shared_ptr<api::ModelArtifact> compat_;
};

} // namespace serve
} // namespace edkm

#endif // EDKM_SERVE_READER_H_
