/**
 * @file
 * Byte-budgeted shared prefix cache for prompt-head KV reuse.
 *
 * Requests that share a prompt head recompute identical K/V rows: in a
 * causal transformer the keys and values of position p are a pure
 * function of tokens [0, p], so rows banked while prefilling one
 * request can seed any later request whose prompt starts with the same
 * tokens. The PrefixCache stores per-layer copies of those rows keyed
 * on the prompt-head token sequence, and lookup() restores the longest
 * common prefix between an incoming prompt and ANY banked head — a
 * prompt sharing only part of a banked head still reuses that shared
 * part, and just the divergent tail needs prefilling
 * (InferenceEngine::prefillChunk).
 *
 * Reuse is bit-exact: the banked rows are copies of rows the engine
 * itself produced, and the chunked-prefill continuation over them is
 * bit-identical to the one-shot prefill (nn::attentionChunk contract).
 *
 * Admission and eviction are accounted in bytes like the engine's LRU
 * decode cache: inserting past the budget evicts least-recently-used
 * entries first, and an entry larger than the whole budget is never
 * admitted (the cache must not thrash on one oversized head).
 *
 * Not thread-safe: the cache belongs to one scheduler step loop (the
 * batched server runs exactly one).
 */

#ifndef EDKM_SERVE_PREFIX_CACHE_H_
#define EDKM_SERVE_PREFIX_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/kv_cache.h"
#include "tensor/tensor.h"

namespace edkm {
namespace serve {

/** Counters exposed through the scheduler's metrics surface. */
struct PrefixCacheStats
{
    int64_t hits = 0;         ///< lookups that restored a prefix
    int64_t misses = 0;       ///< lookups that found nothing
    int64_t reusedTokens = 0; ///< positions restored instead of prefilled
    int64_t insertions = 0;   ///< heads banked
    int64_t rejected = 0;     ///< heads larger than the whole budget
    int64_t evictions = 0;    ///< entries evicted for space
    int64_t evictedBytes = 0; ///< bytes reclaimed by evictions
    int64_t bytes = 0;        ///< bytes currently banked
    int64_t entries = 0;      ///< heads currently banked
    int64_t generation = 0;   ///< current artifact generation
    int64_t generationFlushes = 0; ///< entries dropped by hot swaps
};

class PrefixCache
{
  public:
    /**
     * @param layers / @p groups / @p head_dim  the KV geometry every
     *        banked entry and every restore target must match.
     * @param byte_budget  total bytes of banked K/V rows to retain.
     */
    PrefixCache(int64_t layers, int64_t groups, int64_t head_dim,
                int64_t byte_budget);

    int64_t byteBudget() const { return byte_budget_; }
    const PrefixCacheStats &stats() const { return stats_; }

    /**
     * Restore the longest banked prefix of @p prompt, capped at
     * @p max_len positions, into the empty cache @p kv (rows [0, L)
     * written, position advanced to L). Returns L — 0 on a miss, with
     * @p kv untouched. Callers cap at prompt length - 1 so at least
     * one tail token remains to prefill (generation needs the last
     * prompt position's logits).
     */
    int64_t lookup(const std::vector<int64_t> &prompt, int64_t max_len,
                   KvCache &kv);

    /**
     * Bank rows [0, len) of @p kv as the KV image of the prompt head
     * @p tokens[0..len). A head already banked is refreshed (LRU
     * touch), never duplicated. Entries larger than the byte budget
     * are rejected; otherwise LRU entries are evicted until the new
     * entry fits.
     */
    void insert(const std::vector<int64_t> &tokens, int64_t len,
                const KvCache &kv);

    /** Artifact generation newly banked / restorable entries belong
     *  to. */
    int64_t generation() const { return generation_; }

    /**
     * Hot-swap barrier: bump the cache's generation and drop every
     * banked entry. Entries are generation-keyed (stamped at insert,
     * matched at lookup), so even a bug that left a stale entry behind
     * could never restore artifact-N rows into artifact-N+1 decode —
     * the flush just reclaims the bytes immediately.
     */
    void advanceGeneration();

  private:
    struct Entry
    {
        std::vector<int64_t> tokens;  ///< the banked head, for LCP match
        std::vector<Tensor> k, v; ///< per-layer [groups, len, head_dim]
        int64_t len = 0;
        int64_t bytes = 0;
        uint64_t lastUse = 0;
        int64_t generation = 0; ///< artifact generation banked under
    };

    /** Token-sequence key (insert dedup): raw token bytes, prefixed
     *  with the current generation so keys never collide across
     *  swaps. */
    std::string keyOf(const std::vector<int64_t> &tokens,
                      int64_t len) const;
    void evictToFit(int64_t incoming_bytes);

    int64_t layers_ = 0;
    int64_t groups_ = 0;
    int64_t head_dim_ = 0;
    int64_t byte_budget_ = 0;
    int64_t generation_ = 0;
    uint64_t use_clock_ = 0;
    PrefixCacheStats stats_;
    std::unordered_map<std::string, Entry> entries_;
};

} // namespace serve
} // namespace edkm

#endif // EDKM_SERVE_PREFIX_CACHE_H_
