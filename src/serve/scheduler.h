/**
 * @file
 * Step-level continuous-batching scheduler over one InferenceEngine.
 *
 * Instead of running each request start-to-finish on its own engine
 * thread, the scheduler interleaves all in-flight requests at *step*
 * granularity:
 *
 *   step():
 *     1. prefill — requests still working through their prompt run
 *        prefillChunk() continuations, bounded per step by
 *        SchedulerConfig::prefillChunkTokens so a long prompt can
 *        never stall the decode latency of requests already decoding;
 *     2. decode — every decode-ready request contributes its next
 *        token to ONE batched [B, ...] forward
 *        (InferenceEngine::decodeStepBatch), so the weight matrices
 *        are read once per step instead of once per request.
 *
 * Admission happens between steps: the caller (serve::Server's batched
 * mode, or the synchronous run() helper) admits new requests whenever
 * hasCapacity() — slots are capped at SchedulerConfig::maxBatch.
 * On admission, the shared PrefixCache is probed: a request whose
 * prompt head was banked by an earlier request restores those KV rows
 * and prefills only the divergent tail; completed prefills bank their
 * prompt head back into the cache (byte-budgeted LRU).
 *
 * Bit-identity contract (the gate tests/test_scheduler.cc enforces for
 * every codec): each request's response is bit-identical to serving it
 * alone through InferenceEngine::generate — for any batch size, any
 * admission order, any prefill chunking, and any prefix-cache state.
 * This holds because every per-request computation is position-pure:
 * batched linears are row-shape-invariant (ops::matmul contract), the
 * attention core runs per request over its own cache, and restored
 * prefix rows are exact copies of rows the engine itself produced.
 *
 * Failure policy: a request whose prefill throws fails alone; a throw
 * inside the shared batched decode forward fails every request in that
 * step's batch (their caches may be inconsistent mid-layer). Both
 * deliver the exception through the request's completion callback —
 * the step loop itself never wedges.
 *
 * Not thread-safe: one thread owns the scheduler (serve::Server's
 * batched mode runs exactly one step-loop thread).
 */

#ifndef EDKM_SERVE_SCHEDULER_H_
#define EDKM_SERVE_SCHEDULER_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "serve/kv_cache.h"
#include "serve/prefix_cache.h"

namespace edkm {
namespace serve {

/** Scheduler knobs. */
struct SchedulerConfig
{
    /** Max requests decoding concurrently (slots per step). */
    int maxBatch = 8;

    /**
     * Per-step prefill token budget: at most this many prompt tokens
     * are prefilled between two decode steps, chunking long prompts so
     * in-flight decode latency stays bounded. 0 = unbounded (each
     * request's whole remaining prompt prefills in one chunk).
     */
    int64_t prefillChunkTokens = 0;

    /**
     * Byte budget of the shared prefix cache (banked prompt-head KV
     * rows, LRU-evicted). 0 disables prefix sharing.
     */
    int64_t prefixCacheBytes = 0;

    /**
     * Fixed per-request KV capacity in token positions; requests
     * needing more (prompt + new tokens - 1) fail at admission naming
     * it. 0 sizes each request's cache exactly.
     */
    int64_t kvCapacity = 0;
};

/** Per-request accounting, delivered with the completion callback. */
struct SchedulerRequestStats
{
    int64_t promptTokens = 0;
    int64_t newTokens = 0;
    int64_t prefillChunks = 0;       ///< prefill continuations run
    int64_t decodeSteps = 0;         ///< batched steps participated in
    int64_t reusedPrefixTokens = 0;  ///< positions restored, not prefilled
};

/**
 * Aggregate counters, exposed as JSON via statsJson(). Every admitted
 * request ends in exactly one bucket:
 *   admitted == completed + failed + deadlineEvicted + released.
 */
struct SchedulerStats
{
    int64_t admitted = 0;
    int64_t completed = 0;        ///< finished successfully
    int64_t failed = 0;           ///< validation / forward errors
    int64_t deadlineEvicted = 0;  ///< deadline passed (queued or in flight)
    int64_t released = 0;         ///< cancel token fired (release())
    int64_t steps = 0;            ///< batched decode forwards run
    int64_t decodedTokens = 0;
    int64_t prefillChunks = 0;
    int64_t prefillTokens = 0;    ///< tokens actually prefilled
    int64_t peakBatch = 0;
    /** batchHistogram[b] = decode steps run at batch size b
     *  (index 0 unused). */
    std::vector<int64_t> batchHistogram;
};

class BatchScheduler
{
  public:
    using Request = InferenceEngine::Request;
    using Response = InferenceEngine::Response;
    /** Completion callback: exactly one of response / error is
     *  meaningful (error == nullptr on success). */
    using DoneFn = std::function<void(Response &&, std::exception_ptr,
                                      const SchedulerRequestStats &)>;

    /** The engine must outlive the scheduler and is used exclusively
     *  by it (single-threaded step loop). */
    BatchScheduler(InferenceEngine &engine, SchedulerConfig config);

    const SchedulerConfig &config() const { return config_; }

    /** True while fewer than maxBatch requests are in flight. */
    bool hasCapacity() const;

    /** Any request still prefilling or decoding? */
    bool busy() const { return !slots_.empty(); }

    /** Requests currently in flight. */
    int64_t active() const
    {
        return static_cast<int64_t>(slots_.size());
    }

    /**
     * Take ownership of @p request; @p done fires exactly once, from
     * inside admit() (validation failure / zero-token request) or a
     * later step(). Requires hasCapacity().
     */
    void admit(Request request, DoneFn done);

    /**
     * One scheduler step: evict interrupted slots (cancel token fired
     * or deadline passed — their KvCache and batch row free right
     * here, before any forward, so surviving rows stay bit-identical
     * to an undisturbed run), then bounded prefill, then one batched
     * decode forward. No-op when idle.
     */
    void step();

    /**
     * Hot-swap support: retarget the step loop at @p next (which must
     * outlive the scheduler, like the constructor engine). Requires
     * !busy() — the server drains in-flight slots first. The prefix
     * cache advances its generation (same geometry) or is rebuilt
     * (geometry changed), so no banked KV row ever crosses artifacts;
     * aggregate counters carry across the swap.
     */
    void swapEngine(InferenceEngine &next);

    /**
     * Synchronous convenience for benches and tests: admit-as-capacity
     * -frees + step until every request completed; responses in request
     * order. Rethrows the first failed request's exception.
     */
    std::vector<Response> run(std::vector<Request> requests);

    const SchedulerStats &stats() const { return stats_; }

    /** Prefix-cache counters (zeros when disabled). */
    PrefixCacheStats prefixStats() const;

    /** All counters (incl. prefix cache) as a JSON object string, the
     *  shape benches emit. */
    std::string statsJson() const;

  private:
    struct Slot
    {
        Request request;
        DoneFn done;
        std::vector<int64_t> tokens;   ///< prompt + generated so far
        int64_t prefilled = 0;         ///< prompt positions banked
        int64_t generated = 0;
        int64_t next = -1;             ///< last sampled, to feed back
        bool decoding = false;         ///< prompt fully prefilled
        std::unique_ptr<KvCache> kv;
        SchedulerRequestStats stats;
    };

    void finish(Slot &slot);
    void fail(Slot &slot, std::exception_ptr err);
    /** Complete cancelled / past-deadline slots between steps. */
    void evictInterrupted();
    /** Run prefill continuations under the per-step token budget. */
    void prefillPhase();
    /** One batched decode forward over every decode-ready slot. */
    void decodePhase();
    void reapFinished();

    InferenceEngine *engine_;
    SchedulerConfig config_;
    SchedulerStats stats_;
    std::unique_ptr<PrefixCache> prefix_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::vector<std::unique_ptr<Slot>> finished_; ///< reaped after phases
};

} // namespace serve
} // namespace edkm

#endif // EDKM_SERVE_SCHEDULER_H_
