#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace edkm {
namespace serve {

namespace {

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

Server::Server(std::shared_ptr<const ArtifactReader> reader,
               ServerConfig config)
    : config_(config), reader_(std::move(reader))
{
    EDKM_CHECK(reader_ != nullptr, "Server: null reader");
    if (config_.batched) {
        // One engine, one step-loop thread. The loop is a plain
        // std::thread — never a pool worker — so engine-internal
        // parallelFor still fans out across the runtime pool.
        engines_.push_back(std::make_unique<InferenceEngine>(
            reader_, config_.engine));
        scheduler_ = std::make_unique<BatchScheduler>(
            *engines_.front(), config_.scheduler);
        sched_json_ = scheduler_->statsJson();
        // lint:allow(raw-thread) the dedicated step loop (see the
        // matching note on the loop_ member).
        loop_ = std::thread([this] { batchLoop(); });
        return;
    }
    EDKM_CHECK(config_.threads >= 1, "Server: need at least one thread, "
                                     "got ",
               config_.threads);
    engines_.reserve(static_cast<size_t>(config_.threads));
    free_.reserve(static_cast<size_t>(config_.threads));
    for (int i = 0; i < config_.threads; ++i) {
        engines_.push_back(std::make_unique<InferenceEngine>(
            reader_, config_.engine));
        free_.push_back(i);
    }
    engine_gen_.assign(static_cast<size_t>(config_.threads), 0);
    // threads workers + the constructing thread as the extra forChunks
    // lane; submitted jobs only ever run on the workers, so at most
    // `threads` requests execute concurrently — one engine each.
    pool_ = std::make_unique<runtime::ThreadPool>(config_.threads + 1);
}

Server::~Server()
{
    if (config_.batched) {
        // Drain: the loop exits only once the queue is empty and no
        // slot is in flight, so every submitted ticket completes (or
        // was cancelled by release()) before the members die.
        {
            util::MutexLock lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        loop_.join();
        return;
    }
    // pool_ is the last-declared member: its destructor runs first and
    // drains every queued job while records_/engines_ are still alive.
}

void
Server::batchLoop()
{
    util::MutexLock lock(mutex_);
    for (;;) {
        // Sleep only when idle: while a slot is in flight (or a swap
        // awaits its cutover) the predicate stays true and the loop
        // keeps stepping without waiting. Spelled as an explicit
        // predicate loop so the guarded reads are checked under the
        // lock the analysis sees held.
        while (!(stop_ || !queue_.empty() || scheduler_->busy() ||
                 loop_gen_ < gen_)) {
            cv_.wait(mutex_);
        }
        if (stop_ && queue_.empty() && !scheduler_->busy()) {
            break;
        }
        // Generation cutover: every in-flight slot has drained and the
        // queue head (if any) no longer belongs to the loop's
        // generation — retarget the scheduler between steps. One
        // generation per pass; stacked swaps cut over one at a time.
        if (loop_gen_ < gen_ && !scheduler_->busy()) {
            bool head_blocks = false;
            if (!queue_.empty()) {
                auto it = records_.find(queue_.front());
                head_blocks = it != records_.end() &&
                              it->second->generation == loop_gen_;
            }
            if (!head_blocks) {
                auto pit = pending_engines_.begin();
                EDKM_CHECK(pit != pending_engines_.end(),
                           "Server: generation ", loop_gen_,
                           " cutover with no pending engine");
                int64_t g = pit->first;
                std::unique_ptr<InferenceEngine> next =
                    std::move(pit->second);
                pending_engines_.erase(pit);
                scheduler_->swapEngine(*next);
                // The old engine dies here, dropping its pin on the
                // old mapping; not-yet-released old records hold the
                // only remaining pins.
                engines_[0] = std::move(next);
                loop_gen_ = g;
                sched_json_ = scheduler_->statsJson();
                cv_.notify_all(); // swap() waits on loop_gen_
                continue;
            }
        }
        while (!queue_.empty() && scheduler_->hasCapacity()) {
            RequestId id = queue_.front();
            auto it = records_.find(id);
            if (it == records_.end()) {
                // Cancelled between queueing and admission.
                queue_.pop_front();
                continue;
            }
            if (it->second->generation != loop_gen_) {
                // Newer artifact: drain the current slots, cut over,
                // then admit. FIFO order means nothing behind the head
                // can belong to the loop's generation either.
                break;
            }
            queue_.pop_front();
            Record *raw = it->second.get();
            raw->queued = false;
            raw->stats.queueMillis = millisSince(raw->submitted);
            queue_wait_hist_.record(raw->stats.queueMillis);
            Request req = raw->request;
            // Admit unlocked: the completion callback (which may fire
            // synchronously on validation failure) takes mutex_. The
            // record outlives the callback because release() waits on
            // its future once `queued` is cleared.
            lock.unlock();
            auto t0 = std::chrono::steady_clock::now();
            scheduler_->admit(
                std::move(req),
                [this, raw, t0](Response &&res, std::exception_ptr err,
                                const SchedulerRequestStats &st) {
                    raw->stats.promptTokens = st.promptTokens;
                    raw->stats.newTokens = st.newTokens;
                    raw->stats.prefillChunks = st.prefillChunks;
                    raw->stats.decodeSteps = st.decodeSteps;
                    raw->stats.reusedPrefixTokens = st.reusedPrefixTokens;
                    raw->stats.engine = 0;
                    raw->stats.millis = millisSince(t0);
                    if (err == nullptr) {
                        raw->response = std::move(res);
                    }
                    raw->reader.reset(); // drop the mapping pin
                    {
                        util::MutexLock inner(mutex_);
                        ++completed_;
                        e2e_hist_.record(millisSince(raw->submitted));
                    }
                    // Fulfil last: waiters read the fields above after
                    // get(), which synchronises with set_value.
                    if (err != nullptr) {
                        raw->promise.set_exception(err);
                    } else {
                        raw->promise.set_value();
                    }
                });
            lock.lock();
        }
        if (scheduler_->busy()) {
            lock.unlock();
            scheduler_->step();
            lock.lock();
        }
        // Publish the metrics snapshot under the lock — the only place
        // scheduler state crosses to other threads (metricsJson()).
        sched_json_ = scheduler_->statsJson();
    }
    // Unblock swap() calls racing the destructor: they check loop_gen_
    // and fail loudly instead of waiting forever.
    loop_done_ = true;
    cv_.notify_all();
}

int
Server::checkoutEngine()
{
    util::MutexLock lock(mutex_);
    // At most `threads` jobs run concurrently (one per pool worker), so
    // an engine is always free when a job starts.
    EDKM_CHECK(!free_.empty(),
               "Server: no free engine (more concurrent jobs than "
               "workers?)");
    int idx = free_.back();
    free_.pop_back();
    return idx;
}

void
Server::checkinEngine(int idx)
{
    util::MutexLock lock(mutex_);
    free_.push_back(idx);
}

void
Server::run(Record &rec)
{
    {
        util::MutexLock lock(mutex_);
        rec.stats.queueMillis = millisSince(rec.submitted);
        queue_wait_hist_.record(rec.stats.queueMillis);
    }
    int idx = checkoutEngine();
    // One completion path for success and failure: the guard stamps
    // the timing, returns the engine and counts the request whichever
    // way generate() exits (exceptions land in the record's future).
    struct Finish
    {
        Server *server;
        Record *rec;
        int idx;
        std::chrono::steady_clock::time_point t0 =
            std::chrono::steady_clock::now();
        ~Finish()
        {
            rec->stats.millis = millisSince(t0);
            rec->reader.reset(); // drop the ticket's mapping pin
            server->checkinEngine(idx);
            util::MutexLock lock(server->mutex_);
            ++server->completed_;
            server->e2e_hist_.record(millisSince(rec->submitted));
        }
    } finish{this, &rec, idx};

    // Lazy generation cutover: a ticket stamped with a different
    // generation than this engine rebuilds it from the ticket's pinned
    // reader — forward to the artifact new tickets were admitted
    // against, or back for a straggler submitted before a swap. The
    // index is checked out exclusively, so the slot is ours to rebuild;
    // building into a temporary keeps the old engine intact if the
    // constructor throws. The generation stamps live under mutex_
    // (swap() scans them), so they are read and written under short
    // holds, with the expensive engine build in between unlocked.
    int64_t slot_gen;
    {
        util::MutexLock lock(mutex_);
        slot_gen = engine_gen_[static_cast<size_t>(idx)];
    }
    if (slot_gen != rec.generation) {
        auto fresh = std::make_unique<InferenceEngine>(rec.reader,
                                                       config_.engine);
        engines_[static_cast<size_t>(idx)] = std::move(fresh);
        util::MutexLock lock(mutex_);
        engine_gen_[static_cast<size_t>(idx)] = rec.generation;
    }

    rec.stats.engine = idx;
    rec.stats.promptTokens =
        static_cast<int64_t>(rec.request.prompt.size());
    rec.response =
        engines_[static_cast<size_t>(idx)]->generate(rec.request);
    rec.stats.newTokens =
        static_cast<int64_t>(rec.response.tokens.size()) -
        rec.stats.promptTokens;
}

Server::RequestId
Server::submit(Request request)
{
    auto rec = std::make_unique<Record>();
    // Every ticket carries a live cancel token (creating one here if
    // the caller passed none), so release() can interrupt it in flight.
    if (request.cancel == nullptr) {
        request.cancel = std::make_shared<CancelToken>();
    }
    rec->cancel = request.cancel;
    rec->request = std::move(request);
    rec->submitted = std::chrono::steady_clock::now();
    Record *raw = rec.get();
    if (config_.batched) {
        // Promise-backed ticket, wired up BEFORE the record is visible:
        // wait()/release() must always find a valid future.
        rec->done = rec->promise.get_future().share();
        rec->queued = true;
        RequestId id;
        {
            util::MutexLock lock(mutex_);
            id = next_id_++;
            rec->stats.id = id;
            rec->generation = gen_;
            rec->stats.generation = gen_;
            rec->reader = reader_;
            records_.emplace(id, std::move(rec));
            queue_.push_back(id);
            peak_queue_ = std::max(
                peak_queue_, static_cast<int64_t>(queue_.size()));
        }
        cv_.notify_all();
        return id;
    }
    RequestId id;
    {
        util::MutexLock lock(mutex_);
        id = next_id_++;
        rec->stats.id = id;
        rec->generation = gen_;
        rec->stats.generation = gen_;
        rec->reader = reader_;
        records_.emplace(id, std::move(rec));
        // Enqueue under the same hold that published the record: a
        // concurrent swap()/wait()/release() must never find a record
        // whose `done` future is still invalid. (ThreadPool::submit
        // only enqueues, so holding mutex_ here cannot deadlock.)
        raw->done = pool_->submit([this, raw] { run(*raw); }).share();
    }
    return id;
}

std::vector<Server::RequestId>
Server::submit(std::vector<Request> batch)
{
    std::vector<RequestId> ids;
    ids.reserve(batch.size());
    for (Request &r : batch) {
        ids.push_back(submit(std::move(r)));
    }
    return ids;
}

std::shared_future<void>
Server::ticket(RequestId id) const
{
    util::MutexLock lock(mutex_);
    auto it = records_.find(id);
    EDKM_CHECK(it != records_.end(), "Server: unknown request id ", id);
    return it->second->done;
}

Server::Response
Server::wait(RequestId id)
{
    // Copy the future out under the lock, block outside it, then
    // re-look the record up: a concurrent release() of the same ticket
    // erases the Record, and reading it unlocked after done.get()
    // would be a use-after-free.
    ticket(id).get(); // blocks; rethrows the request's exception
    util::MutexLock lock(mutex_);
    auto it = records_.find(id);
    EDKM_CHECK(it != records_.end(), "Server: request ", id,
               " was released while being waited on");
    return it->second->response;
}

std::vector<Server::Response>
Server::wait(const std::vector<RequestId> &ids)
{
    std::vector<Response> out;
    out.reserve(ids.size());
    for (RequestId id : ids) {
        out.push_back(wait(id));
    }
    return out;
}

Server::RequestStats
Server::requestStats(RequestId id) const
{
    ticket(id).wait();
    util::MutexLock lock(mutex_);
    auto it = records_.find(id);
    EDKM_CHECK(it != records_.end(), "Server: request ", id,
               " was released while its stats were being read");
    return it->second->stats;
}

void
Server::release(RequestId id)
{
    // Wait for the job (which holds a raw pointer to the record)
    // outside the lock, erase under it. Releasing an already-released
    // ticket is a no-op, so concurrent reapers need no coordination.
    std::shared_future<void> done;
    {
        util::MutexLock lock(mutex_);
        auto it = records_.find(id);
        if (it == records_.end()) {
            return;
        }
        // Batched mode: a ticket still waiting in the queue is
        // cancelled right here — no scheduler slot was ever taken, so
        // the step loop needs no notice. Concurrent wait()ers of the
        // same ticket get the cancellation exception.
        if (it->second->queued) {
            for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
                if (*qit == id) {
                    queue_.erase(qit);
                    break;
                }
            }
            it->second->promise.set_exception(
                std::make_exception_ptr(Cancelled(
                    "Server: request " + std::to_string(id) +
                    " released before admission")));
            ++completed_;
            ++cancelled_;
            records_.erase(it);
            return;
        }
        // Admitted (or already completed — then the token fires into
        // the void): request cancellation, so an in-flight ticket is
        // evicted at its next between-steps check instead of running
        // to completion nobody will read.
        it->second->cancel->requestCancel();
        done = it->second->done;
    }
    cv_.notify_all(); // wake the step loop to run the eviction
    done.wait();
    util::MutexLock lock(mutex_);
    records_.erase(id);
}

void
Server::release(const std::vector<RequestId> &ids)
{
    for (RequestId id : ids) {
        release(id);
    }
}

void
Server::swap(std::shared_ptr<const ArtifactReader> next)
{
    EDKM_CHECK(next != nullptr, "Server: swap to a null reader");
    // Probe-build an engine first: an artifact that cannot back an
    // engine (missing sections, bad geometry, failed checksum under
    // eager verify) fails the swap() call right here, before any
    // server state changes.
    auto probe =
        std::make_unique<InferenceEngine>(next, config_.engine);
    if (config_.batched) {
        util::MutexLock lock(mutex_);
        reader_ = next;
        int64_t target = ++gen_;
        // The probe becomes the loop's next engine: the cutover path
        // never needs a throwing construction.
        pending_engines_.emplace(target, std::move(probe));
        cv_.notify_all();
        while (!(loop_gen_ >= target || loop_done_)) {
            cv_.wait(mutex_);
        }
        EDKM_CHECK(loop_gen_ >= target,
                   "Server: step loop stopped before the swap to "
                   "generation ",
                   target, " cut over");
        return;
    }
    int64_t target;
    std::vector<std::shared_future<void>> drain;
    {
        util::MutexLock lock(mutex_);
        reader_ = next;
        target = ++gen_;
        // New submissions are stamped `target` from here on; collect
        // every older ticket (completed ones resolve instantly).
        // lint:allow(unordered-iteration) collection order is
        // irrelevant — every collected future is waited on below.
        for (const auto &entry : records_) {
            if (entry.second->generation < target) {
                drain.push_back(entry.second->done);
            }
        }
    }
    // Drain old-generation work outside the lock. Failures already
    // live in those tickets' futures; a swap does not re-raise them.
    for (auto &f : drain) {
        f.wait();
    }
    // Rebuild idle engines still wired to an old mapping, so the old
    // reader's only remaining pins are not-yet-released records.
    // Checked-out engines belong to newer-generation tickets (all
    // older ones just drained) and already rebuilt at checkout.
    util::MutexLock lock(mutex_);
    for (int idx : free_) {
        if (engine_gen_[static_cast<size_t>(idx)] == gen_) {
            continue;
        }
        // Compare against gen_/reader_, not target/next: a stacked
        // swap may have moved on, and rebuilding to an intermediate
        // generation would waste a build.
        if (probe != nullptr && reader_ == next) {
            engines_[static_cast<size_t>(idx)] = std::move(probe);
        } else {
            engines_[static_cast<size_t>(idx)] =
                std::make_unique<InferenceEngine>(reader_,
                                                  config_.engine);
        }
        engine_gen_[static_cast<size_t>(idx)] = gen_;
    }
}

int64_t
Server::generation() const
{
    util::MutexLock lock(mutex_);
    return gen_;
}

const EngineStats &
Server::engineStats(int i) const
{
    int count = static_cast<int>(engines_.size());
    EDKM_CHECK(i >= 0 && i < count, "Server: engine index ", i,
               " out of range [0,", count, ")");
    return engines_[static_cast<size_t>(i)]->stats();
}

int64_t
Server::completed() const
{
    util::MutexLock lock(mutex_);
    return completed_;
}

int64_t
Server::cancelled() const
{
    util::MutexLock lock(mutex_);
    return cancelled_;
}

std::string
Server::metricsJson() const
{
    int64_t depth, peak, cancelled, completed, generation;
    std::string sched, queue_wait, e2e;
    {
        // Snapshot everything under one hold — counters, histograms
        // and the scheduler block are mutually consistent.
        util::MutexLock lock(mutex_);
        depth = static_cast<int64_t>(queue_.size());
        peak = peak_queue_;
        cancelled = cancelled_;
        completed = completed_;
        generation = gen_;
        queue_wait = queue_wait_hist_.json();
        e2e = e2e_hist_.json();
        sched = scheduler_ != nullptr ? sched_json_ : "null";
    }
    std::ostringstream os;
    os << "{\"mode\": \"" << (config_.batched ? "batched" : "threaded")
       << "\", \"generation\": " << generation
       << ", \"completed\": " << completed
       << ", \"queue_depth\": " << depth
       << ", \"peak_queue_depth\": " << peak
       << ", \"cancelled\": " << cancelled
       << ", \"latency\": {\"queue_wait\": " << queue_wait
       << ", \"e2e\": " << e2e << "}"
       << ", \"scheduler\": " << sched << "}";
    return os.str();
}

} // namespace serve
} // namespace edkm
