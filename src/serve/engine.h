/**
 * @file
 * Zero-copy serving engine over a saved model artifact.
 *
 * InferenceEngine runs the MiniLlama transformer forward directly from
 * an ArtifactReader, without ever calling ModelArtifact::reconstruct:
 *
 *   - raw_f32 sections are consumed through borrowed tensor views of
 *     the file mapping (zero heap bytes);
 *   - palettized sections run through the streamed LUT+index matmul
 *     (paletteMatmulT) and palette row gather — the dense weight is
 *     never materialised;
 *   - dense_f16 / affine sections decode to dense f32 lazily on first
 *     touch, into an LRU cache bounded by a byte budget.
 *
 * The forward mirrors nn::MiniLlama's op sequence exactly (the same
 * tensor kernels in the same order under NoGrad), so logits are
 * bit-identical to forward on the eagerly reconstructed model — the
 * contract test_serve.cc enforces per codec.
 *
 * generate() decodes incrementally through a KvCache: the prompt runs
 * one prefill forward that banks every layer's rope'd keys and values,
 * then each new token costs a single-position decode step attending
 * over the cache — O(1) forwards per token instead of O(t). The cached
 * path produces logits bit-identical to the full-prefix forward (the
 * matmul layer's row-shape invariance plus exact exp-flush of masked
 * softmax columns; see nn::attentionStep), which test_serve.cc pins for
 * every codec.
 *
 * The engine is not thread-safe; give each serving thread its own
 * engine (they can share one ArtifactReader — see serve::Server).
 */

#ifndef EDKM_SERVE_ENGINE_H_
#define EDKM_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "core/palettize.h"
#include "nn/transformer.h"
#include "serve/kv_cache.h"
#include "serve/reader.h"
#include "tensor/tensor.h"

namespace edkm {
namespace serve {

/**
 * Cooperative cancellation flag shared between a caller and the
 * serving loops (the same shape as api::CancelToken, kept serve-local
 * so the serving layer does not pull in the compression headers).
 * Checked between decode steps, never mid-forward.
 */
class CancelToken
{
  public:
    void requestCancel() { cancelled_.store(true); }
    bool cancelled() const { return cancelled_.load(); }

  private:
    std::atomic<bool> cancelled_{false};
};

/** A request ran past its deadline (queued or mid-decode). */
class DeadlineExceeded : public FatalError
{
  public:
    explicit DeadlineExceeded(const std::string &msg) : FatalError(msg)
    {
    }
};

/** A request's cancel token fired (e.g. Server::release in flight). */
class Cancelled : public FatalError
{
  public:
    explicit Cancelled(const std::string &msg) : FatalError(msg) {}
};

/** Engine knobs. */
struct EngineConfig
{
    /**
     * Byte budget of the lazy decode cache (dense_f16 / affine
     * sections decoded to f32). The least-recently-used entry is
     * evicted first; a single weight larger than the budget still
     * loads (the cache never refuses the tensor being requested).
     */
    int64_t decodeCacheBytes = 64ll << 20;

    /**
     * Serve generate() through the KV cache: the prompt runs one
     * prefill forward, then every new token costs a single-position
     * decode step instead of a full-prefix recompute. Logits — and so
     * the sampled tokens — are bit-identical either way; turn this off
     * only to measure the O(t)-per-token baseline.
     */
    bool kvCacheDecode = true;

    /**
     * Fixed KV-cache capacity in token positions; requests needing
     * more (prompt + new tokens) throw a FatalError naming it.
     * 0 sizes the cache per request (and reuses a grown cache).
     */
    int64_t kvCapacity = 0;
};

/** Counters exposed for benches and tests. */
struct EngineStats
{
    int64_t decodes = 0;         ///< lazy dense decodes performed
    int64_t cacheHits = 0;
    int64_t cacheMisses = 0;
    int64_t evictions = 0;
    int64_t cacheBytes = 0;      ///< dense f32 bytes currently cached
    int64_t streamedMatmuls = 0; ///< palettized LUT+index matmuls run
    int64_t fusedDecodes = 0;    ///< of those, m==1 fused-kernel decodes
    int64_t borrowedViews = 0;   ///< zero-copy sections in use
    int64_t prefills = 0;        ///< KV-cache prompt prefills run
    int64_t prefillTokens = 0;   ///< tokens cached by prefills
    int64_t decodeSteps = 0;     ///< single-position decode steps run
    int64_t kvCacheBytes = 0;    ///< K/V bytes of the live cache
    int64_t chunkPrefills = 0;   ///< prefillChunk calls run
    int64_t batchedSteps = 0;    ///< decodeStepBatch forwards run
    int64_t batchedTokens = 0;   ///< tokens decoded by batched steps
};

/** Batched request API over the artifact-backed forward. */
class InferenceEngine
{
  public:
    /**
     * Wire the engine to @p reader. Validates that every parameter the
     * manifest geometry requires has a payload section of the right
     * shape; throws FatalError naming the first missing/mismatched one.
     */
    explicit InferenceEngine(std::shared_ptr<const ArtifactReader> reader,
                             EngineConfig config = EngineConfig{});

    const nn::LlamaConfig &config() const { return reader_->config(); }
    const EngineConfig &engineConfig() const { return config_; }

    /**
     * @p tokens [B, S] integer tensor.
     * @return logits [B*S, vocab] — bit-identical to
     *         reconstruct().forward(tokens).
     */
    Tensor forward(const Tensor &tokens);

    /** One generation request (greedy decode). */
    struct Request
    {
        Request() = default;
        /** Deadline and cancel stay at their defaults (none): the
         *  {prompt, n} shape callers were built on keeps compiling
         *  without -Wmissing-field-initializers noise. */
        Request(std::vector<int64_t> prompt_tokens, int64_t max_new)
            : prompt(std::move(prompt_tokens)), maxNewTokens(max_new)
        {
        }

        std::vector<int64_t> prompt;
        int64_t maxNewTokens = 0;
        /**
         * Absolute completion deadline; time_point::max() (the
         * default) means none. Checked cooperatively between decode
         * steps — never mid-forward, so tokens already produced are
         * bit-identical to an undisturbed run — and surfaced as
         * DeadlineExceeded.
         */
        std::chrono::steady_clock::time_point deadline =
            std::chrono::steady_clock::time_point::max();
        /** Optional cancel token; firing it surfaces Cancelled at the
         *  next between-steps check. */
        std::shared_ptr<CancelToken> cancel;

        /** True once the deadline has passed (never for the default). */
        bool
        expired(std::chrono::steady_clock::time_point now) const
        {
            return deadline != std::chrono::steady_clock::time_point::max() &&
                   now > deadline;
        }
    };

    /** Completed request: prompt followed by the generated tokens. */
    struct Response
    {
        std::vector<int64_t> tokens;
    };

    /**
     * Greedy-decode one request. With EngineConfig::kvCacheDecode the
     * prompt is prefilled once and each new token costs one decode
     * step; otherwise every step recomputes the full prefix. Both
     * produce bit-identical tokens.
     */
    Response generate(const Request &request);

    /** Serve a batch of requests. */
    std::vector<Response> generate(const std::vector<Request> &batch);

    /**
     * Run @p tokens [1, S] through the forward once, writing each
     * layer's rope'd keys and raw values into @p kv (which must be
     * empty — position 0 — and shaped for this engine's geometry).
     * Returns the [S, vocab] logits, bit-identical to forward().
     */
    Tensor prefill(const Tensor &tokens, KvCache &kv);

    /**
     * Incremental decode of one token at position kv.position():
     * appends its K/V rows to @p kv and returns the [1, vocab] logits —
     * bit-identical to the last row of forward() over the whole prefix.
     * @p kv must hold at least one position (prefill first).
     */
    Tensor decodeStep(int64_t token, KvCache &kv);

    /**
     * Prefill continuation: run the @p tokens [1, c] chunk through the
     * forward at positions [kv.position(), kv.position() + c), banking
     * each layer's rope'd keys / raw values into @p kv (whose rows
     * [0, position()) must hold the prefix — banked by earlier chunks
     * of this request, or copied in from a shared PrefixCache).
     * Returns the chunk's [c, vocab] logits.
     *
     * Bit-identity: row i equals row position() + i of forward() over
     * the whole prefix (see nn::attentionChunk). A single whole-prompt
     * chunk from an empty cache is therefore bit-identical to
     * prefill(); splitting the prompt into chunks of any sizes never
     * changes a banked row or a logit.
     */
    Tensor prefillChunk(const Tensor &tokens, KvCache &kv);

    /**
     * One batched decode step: token @p i of @p tokens advances the
     * request backed by @p kvs[i], all merged into a single [B, ...]
     * forward per layer. Appends each request's K/V rows to its own
     * cache and returns the [B, vocab] logits.
     *
     * Bit-identity: row i is bit-identical to
     * `decodeStep(tokens[i], *kvs[i])` — the linear/MLP/norm layers are
     * row-shape-invariant (ops::matmul contract) and the attention core
     * runs per request over its own cache, so batch composition,
     * ordering, and size never change a logit. Requests may sit at
     * different positions. The scheduler's step loop is built on this.
     */
    Tensor decodeStepBatch(const std::vector<int64_t> &tokens,
                           const std::vector<KvCache *> &kvs);

    /** The engine-owned KV cache of the last generate() (may be null;
     *  exposed for tests and benches). */
    const KvCache *kvCache() const { return kv_.get(); }

    const EngineStats &stats() const { return stats_; }

    /** Heap bytes currently pinned by decoded weights (cache only —
     *  borrowed views cost no heap). */
    int64_t residentWeightBytes() const { return stats_.cacheBytes; }

  private:
    struct CacheSlot
    {
        Tensor tensor;
        int64_t bytes = 0;
        uint64_t lastUse = 0;
    };

    /** Dense f32 weight: borrowed view (raw_f32) or lazy LRU decode. */
    Tensor denseWeight(const std::string &name);

    /** Cached zero-copy palette view of a palettized section. */
    const PaletteView &palette(const std::string &name);

    Variable linearForward(const std::string &path, const Variable &x);
    Variable rmsNorm(const Variable &x, const std::string &name);
    Variable embed(const Tensor &flat_tokens);
    /** Project [B,S,D] @p x through @p proj and split into
     *  [B*heads, S, head_dim] — one definition for prefill and decode. */
    Variable splitHeads(const std::string &proj, const Variable &x,
                        int64_t b, int64_t s);
    Variable attentionForward(int64_t layer, const Variable &x,
                              KvCache *kv);
    Variable blockForward(int64_t layer, const Variable &x, KvCache *kv);
    Variable attentionStepForward(int64_t layer, const Variable &x,
                                  KvCache &kv);
    Variable blockStep(int64_t layer, const Variable &x, KvCache &kv);
    Variable attentionChunkForward(int64_t layer, const Variable &x,
                                   KvCache &kv);
    Variable blockChunk(int64_t layer, const Variable &x, KvCache &kv);
    Variable attentionStepBatch(int64_t layer, const Variable &x,
                                const std::vector<KvCache *> &kvs);
    Variable blockStepBatch(int64_t layer, const Variable &x,
                            const std::vector<KvCache *> &kvs);
    Tensor forwardImpl(const Tensor &tokens, KvCache *kv);
    Response generateCached(const Request &request);
    Response generateRecompute(const Request &request);
    void ensureKv(int64_t needed);
    void ensureSeqCaches(int64_t s);
    void ensureDecodeRope(int64_t len);
    void evictToBudget();

    std::shared_ptr<const ArtifactReader> reader_;
    EngineConfig config_;
    EngineStats stats_;

    std::unordered_map<std::string, Tensor> borrowed_;
    std::unordered_map<std::string, PaletteView> palettes_;
    std::unordered_map<std::string, CacheSlot> cache_;
    uint64_t use_clock_ = 0;

    // Per-sequence-length RoPE and causal-mask caches (same values
    // nn::MultiHeadAttention computes per layer).
    Tensor rope_cos_, rope_sin_, causal_mask_;
    int64_t cached_seq_ = -1;

    // Decode-path RoPE rows (no mask; grown geometrically) and the
    // engine-owned per-request KV cache generate() reuses.
    Tensor dec_cos_, dec_sin_;
    int64_t dec_rope_len_ = 0;
    std::unique_ptr<KvCache> kv_;
};

} // namespace serve

namespace api {
/** The serving surface is re-exported under api:: alongside Session. */
using InferenceEngine = serve::InferenceEngine;
} // namespace api

} // namespace edkm

#endif // EDKM_SERVE_ENGINE_H_
