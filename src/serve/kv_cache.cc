#include "serve/kv_cache.h"

#include <cstring>

#include "util/logging.h"

namespace edkm {
namespace serve {

KvCache::KvCache(int64_t layers, int64_t groups, int64_t head_dim,
                 int64_t capacity)
    : groups_(groups), head_dim_(head_dim), capacity_(capacity)
{
    EDKM_CHECK(layers >= 1, "KvCache: need at least one layer, got ",
               layers);
    EDKM_CHECK(groups >= 1 && head_dim >= 1,
               "KvCache: bad geometry [groups=", groups,
               ", head_dim=", head_dim, "]");
    EDKM_CHECK(capacity >= 1, "KvCache: capacity must be positive, got ",
               capacity);
    k_.reserve(static_cast<size_t>(layers));
    v_.reserve(static_cast<size_t>(layers));
    for (int64_t l = 0; l < layers; ++l) {
        k_.push_back(Tensor::zeros({groups, capacity, head_dim}));
        v_.push_back(Tensor::zeros({groups, capacity, head_dim}));
    }
}

int64_t
KvCache::bytes() const
{
    int64_t total = 0;
    for (const Tensor &t : k_) {
        total += t.storageBytes();
    }
    for (const Tensor &t : v_) {
        total += t.storageBytes();
    }
    return total;
}

const Tensor &
KvCache::k(int64_t layer) const
{
    EDKM_CHECK(layer >= 0 && layer < layers(), "KvCache: layer ", layer,
               " out of range [0,", layers(), ")");
    return k_[static_cast<size_t>(layer)];
}

const Tensor &
KvCache::v(int64_t layer) const
{
    EDKM_CHECK(layer >= 0 && layer < layers(), "KvCache: layer ", layer,
               " out of range [0,", layers(), ")");
    return v_[static_cast<size_t>(layer)];
}

void
KvCache::write(int64_t layer, const Tensor &k, const Tensor &v)
{
    EDKM_CHECK(layer >= 0 && layer < layers(), "KvCache: layer ", layer,
               " out of range [0,", layers(), ")");
    for (const Tensor *t : {&k, &v}) {
        EDKM_CHECK(t->dim() == 3 && t->size(0) == groups_ &&
                       t->size(2) == head_dim_ &&
                       t->size(1) == k.size(1),
                   "KvCache: rows must be [", groups_, ", n, ", head_dim_,
                   "]");
        EDKM_CHECK(t->isContiguous() && t->dtype() == DType::kF32,
                   "KvCache: rows must be contiguous f32");
    }
    int64_t n = k.size(1);
    EDKM_CHECK(pos_ + n <= capacity_, "KvCache: writing ", n,
               " token(s) at position ", pos_,
               " overflows the cache capacity ", capacity_);
    const float *pk = k.rawData<float>();
    const float *pv = v.rawData<float>();
    float *dk = k_[static_cast<size_t>(layer)].rawData<float>();
    float *dv = v_[static_cast<size_t>(layer)].rawData<float>();
    size_t row_bytes = static_cast<size_t>(n * head_dim_) * sizeof(float);
    for (int64_t g = 0; g < groups_; ++g) {
        int64_t dst_at = (g * capacity_ + pos_) * head_dim_;
        int64_t src_at = g * n * head_dim_;
        std::memcpy(dk + dst_at, pk + src_at, row_bytes);
        std::memcpy(dv + dst_at, pv + src_at, row_bytes);
    }
}

void
KvCache::advance(int64_t n)
{
    EDKM_CHECK(n >= 0, "KvCache: cannot advance by ", n);
    EDKM_CHECK(pos_ + n <= capacity_, "KvCache: advancing ", n,
               " token(s) from position ", pos_,
               " overflows the cache capacity ", capacity_);
    pos_ += n;
}

} // namespace serve
} // namespace edkm
