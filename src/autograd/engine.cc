#include "autograd/engine.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "autograd/node.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {

void
backward(const Variable &root, Tensor seed)
{
    EDKM_CHECK(root.defined(), "backward() on undefined variable");
    EDKM_CHECK(root.requiresGrad(),
               "backward(): root does not require grad");

    if (!seed.defined()) {
        seed = Tensor::ones(root.data().shape(), DType::kF32,
                            root.data().device());
    }

    if (root.isLeaf()) {
        gradAccumulator(root.impl())->backward(seed);
        return;
    }

    std::shared_ptr<Node> root_fn = root.gradFn();
    EDKM_ASSERT(root_fn != nullptr, "non-leaf without grad_fn");

    // Phase 1: discover the reachable graph and count, for every node,
    // how many gradient contributions it will receive.
    std::unordered_map<Node *, int> deps;
    std::unordered_set<Node *> visited;
    std::deque<Node *> stack{root_fn.get()};
    visited.insert(root_fn.get());
    while (!stack.empty()) {
        Node *n = stack.back();
        stack.pop_back();
        for (const Edge &e : n->nextEdges) {
            if (!e.fn) {
                continue;
            }
            deps[e.fn.get()] += 1;
            if (visited.insert(e.fn.get()).second) {
                stack.push_back(e.fn.get());
            }
        }
    }

    // Phase 2: propagate in topological order (Kahn).
    std::unordered_map<Node *, Tensor> grads;
    grads[root_fn.get()] = std::move(seed);
    std::deque<Node *> ready{root_fn.get()};

    while (!ready.empty()) {
        Node *n = ready.front();
        ready.pop_front();

        auto git = grads.find(n);
        if (git == grads.end()) {
            continue; // no gradient flowed here
        }
        Tensor g = std::move(git->second);
        grads.erase(git);

        std::vector<Tensor> input_grads = n->backward(g);
        EDKM_ASSERT(input_grads.size() == n->nextEdges.size() ||
                        n->nextEdges.empty(),
                    "node ", n->opName(), " returned ", input_grads.size(),
                    " grads for ", n->nextEdges.size(), " inputs");

        for (size_t i = 0; i < n->nextEdges.size(); ++i) {
            const Edge &e = n->nextEdges[i];
            if (!e.fn) {
                continue;
            }
            if (i < input_grads.size() && input_grads[i].defined()) {
                auto it = grads.find(e.fn.get());
                if (it == grads.end()) {
                    grads[e.fn.get()] = input_grads[i];
                } else {
                    it->second = add(it->second, input_grads[i]);
                }
            }
            if (--deps[e.fn.get()] == 0) {
                ready.push_back(e.fn.get());
            }
        }
    }
}

} // namespace edkm
