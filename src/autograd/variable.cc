#include "autograd/variable.h"

#include <atomic>

#include "autograd/node.h"
#include "util/logging.h"

namespace edkm {

namespace {
std::atomic<uint64_t> g_next_var_id{1};
thread_local bool g_grad_mode = true;
} // namespace

Variable::Variable(Tensor data, bool requires_grad, std::string name)
    : impl_(std::make_shared<VarImpl>())
{
    impl_->data = std::move(data);
    impl_->requiresGrad = requires_grad;
    impl_->id = g_next_var_id.fetch_add(1, std::memory_order_relaxed);
    impl_->name = std::move(name);
}

Variable
Variable::fromImpl(std::shared_ptr<VarImpl> impl)
{
    Variable v;
    if (impl && impl->id == 0) {
        impl->id = g_next_var_id.fetch_add(1, std::memory_order_relaxed);
    }
    v.impl_ = std::move(impl);
    return v;
}

const Tensor &
Variable::data() const
{
    EDKM_CHECK(defined(), "data() on undefined variable");
    return impl_->data;
}

Tensor &
Variable::mutableData()
{
    EDKM_CHECK(defined(), "mutableData() on undefined variable");
    return impl_->data;
}

const Tensor &
Variable::grad() const
{
    EDKM_CHECK(defined(), "grad() on undefined variable");
    return impl_->grad;
}

void
Variable::zeroGrad()
{
    EDKM_CHECK(defined(), "zeroGrad() on undefined variable");
    impl_->grad = Tensor();
}

bool
Variable::requiresGrad() const
{
    return impl_ && impl_->requiresGrad;
}

std::shared_ptr<Node>
Variable::gradFn() const
{
    return impl_ ? impl_->gradFn : nullptr;
}

bool
Variable::isLeaf() const
{
    return impl_ && impl_->gradFn == nullptr;
}

uint64_t
Variable::id() const
{
    return impl_ ? impl_->id : 0;
}

const std::string &
Variable::name() const
{
    static const std::string empty;
    return impl_ ? impl_->name : empty;
}

Variable
Variable::detach() const
{
    EDKM_CHECK(defined(), "detach() on undefined variable");
    return Variable(impl_->data, false, impl_->name);
}

bool
gradModeEnabled()
{
    return g_grad_mode;
}

NoGradGuard::NoGradGuard() : prev_(g_grad_mode)
{
    g_grad_mode = false;
}

NoGradGuard::~NoGradGuard()
{
    g_grad_mode = prev_;
}

} // namespace edkm
