/**
 * @file
 * Differentiable operations on Variables.
 *
 * Each function computes the forward result with the tensor kernels and,
 * when gradients are required, attaches a backward node. Tensors needed
 * for backward are stashed via SavedTensor and therefore flow through the
 * active saved-tensor hooks — with eDKM's MarshalContext installed, every
 * big saved tensor (e.g. the DKM attention map) is offloaded to CPU with
 * duplicate detection, exactly as in the paper.
 *
 * View ops (view/transpose/permute/slice/select/squeeze/unsqueeze) keep
 * PyTorch semantics: the output Variable's tensor shares the input's data
 * storage, and the node carries a ViewSpec so the marshaling layer can
 * navigate across them.
 */

#ifndef EDKM_AUTOGRAD_FUNCTIONAL_H_
#define EDKM_AUTOGRAD_FUNCTIONAL_H_

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace edkm {
namespace af {

// Elementwise binary (numpy broadcasting; gradients reduced back).
Variable add(const Variable &a, const Variable &b);
Variable sub(const Variable &a, const Variable &b);
Variable mul(const Variable &a, const Variable &b);
Variable div(const Variable &a, const Variable &b);

// Scalar / unary.
Variable addScalar(const Variable &a, float s);
Variable mulScalar(const Variable &a, float s);
Variable neg(const Variable &a);
Variable exp(const Variable &a);
Variable log(const Variable &a);
Variable sqrt(const Variable &a);
Variable square(const Variable &a);
Variable silu(const Variable &a);
Variable sigmoid(const Variable &a);
Variable relu(const Variable &a);

// Linear algebra.
Variable matmul(const Variable &a, const Variable &b);

// Softmax family (last dim).
Variable softmaxLastDim(const Variable &a);
Variable logSoftmaxLastDim(const Variable &a);

// Reductions.
Variable sumAll(const Variable &a);
Variable meanAll(const Variable &a);
Variable sumDim(const Variable &a, int64_t d, bool keepdim = false);
Variable meanDim(const Variable &a, int64_t d, bool keepdim = false);

// View ops (share storage with the input).
Variable view(const Variable &a, Shape shape);
Variable reshape(const Variable &a, Shape shape);
Variable transpose(const Variable &a, int64_t d0, int64_t d1);
Variable permute(const Variable &a, const Shape &dims);
Variable slice(const Variable &a, int64_t d, int64_t start, int64_t end);
Variable select(const Variable &a, int64_t d, int64_t idx);
Variable squeeze(const Variable &a, int64_t d);
Variable unsqueeze(const Variable &a, int64_t d);

// Materialising copy (row-major layout).
Variable contiguous(const Variable &a);

// Indexing.
/** Rows of @p table (2-d, differentiable) selected by integer
 *  @p indices (1-d, constant). Used for embeddings and eDKM's
 *  uniquified-attention reconstruction. */
Variable gatherRows(const Variable &table, const Tensor &indices);

/**
 * Fused mean cross-entropy over rows: @p logits [n, classes],
 * @p targets 1-d integer class ids. Returns a scalar.
 */
Variable crossEntropy(const Variable &logits, const Tensor &targets);

/**
 * Fused rotary position embedding: out = x*cos + rotateHalf(x)*sin,
 * with @p x of shape [..., seq, head_dim] and cos/sin [seq, head_dim]
 * constants. head_dim must be even.
 */
Variable rope(const Variable &x, const Tensor &cos, const Tensor &sin);

/** Wrap a tensor as a non-differentiable Variable. */
Variable constant(const Tensor &t);

} // namespace af
} // namespace edkm

#endif // EDKM_AUTOGRAD_FUNCTIONAL_H_
