/**
 * @file
 * Autograd variable: a tensor plus gradient metadata and graph linkage.
 *
 * Mirrors PyTorch's design: the autograd graph is made of Nodes connected
 * node-to-node (next_edges); Variables only point at their producing node
 * (gradFn). Tensor *data* of intermediates is kept alive only when a Node
 * explicitly saves it for backward — and saves go through the
 * saved-tensor-hooks extension point, which is where eDKM's marshaling
 * layer intercepts (paper section 2.1).
 */

#ifndef EDKM_AUTOGRAD_VARIABLE_H_
#define EDKM_AUTOGRAD_VARIABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace edkm {

class Node;

/**
 * Shared state of a Variable. Public so the marshaling layer can inspect
 * graph linkage; library users should stay on the Variable interface.
 */
struct VarImpl
{
    Tensor data;
    Tensor grad; ///< undefined until first accumulation
    bool requiresGrad = false;
    std::shared_ptr<Node> gradFn; ///< producer node (null for leaves)
    std::shared_ptr<Node> gradAccumulator; ///< lazily created leaf sink
    std::vector<std::weak_ptr<Node>> consumers; ///< nodes consuming this
    uint64_t id = 0; ///< process-unique variable id
    std::string name; ///< optional debug name
};

/** Value-semantic handle to a VarImpl (copies share state). */
class Variable
{
  public:
    /** Undefined variable. */
    Variable() = default;

    /** Wrap @p data as a leaf. @p requires_grad marks it as a parameter. */
    explicit Variable(Tensor data, bool requires_grad = false,
                      std::string name = "");

    bool defined() const { return impl_ != nullptr; }

    /** The forward value. */
    const Tensor &data() const;

    /** Mutable access to the forward value (optimizer updates). */
    Tensor &mutableData();

    /** Accumulated gradient (undefined until backward reaches it). */
    const Tensor &grad() const;

    /** Drop the accumulated gradient. */
    void zeroGrad();

    bool requiresGrad() const;

    /** Producer node; null for leaves. */
    std::shared_ptr<Node> gradFn() const;

    /** True when this variable was not produced by an op. */
    bool isLeaf() const;

    uint64_t id() const;

    const std::string &name() const;

    /** A new leaf variable sharing this data, detached from the graph. */
    Variable detach() const;

    /** Internal: shared implementation pointer. */
    const std::shared_ptr<VarImpl> &impl() const { return impl_; }

    /** Internal: construct from an implementation pointer. */
    static Variable fromImpl(std::shared_ptr<VarImpl> impl);

  private:
    std::shared_ptr<VarImpl> impl_;
};

/** True when autograd graph construction is enabled (thread-local). */
bool gradModeEnabled();

/** RAII guard disabling graph construction (inference/eval paths). */
class NoGradGuard
{
  public:
    NoGradGuard();
    ~NoGradGuard();

  private:
    bool prev_;
};

} // namespace edkm

#endif // EDKM_AUTOGRAD_VARIABLE_H_
