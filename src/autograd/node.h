/**
 * @file
 * Autograd graph nodes, view-op metadata, and the saved-tensor hook
 * mechanism.
 *
 * Nodes own the backward computation. Tensors a node needs for backward
 * are wrapped in SavedTensor, which consults the active SavedTensorHooks
 * (if any) at save time — the exact extension point PyTorch exposes as
 * torch.autograd.graph.saved_tensors_hooks and the one the paper's
 * marshaling layer is built on.
 *
 * Nodes also carry *forward-graph* metadata (storage-invariance flag,
 * ViewSpec, input/output links) so the marshaling layer can navigate the
 * computation graph looking for already-offloaded tensors (paper 2.1).
 */

#ifndef EDKM_AUTOGRAD_NODE_H_
#define EDKM_AUTOGRAD_NODE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace edkm {

class Node;

/**
 * Description of a data-storage-invariant operation (view, transpose,
 * permute, slice, select, squeeze, unsqueeze). Can be replayed on a CPU
 * copy of the *input* to reconstruct the output's logical contents, and
 * inverted (when lossless) to go the other way.
 */
struct ViewSpec
{
    enum class Kind {
        kView,
        kTranspose,
        kPermute,
        kSlice,
        kSelect,
        kSqueeze,
        kUnsqueeze,
    };

    Kind kind = Kind::kView;
    Shape shapeArg;  ///< view target shape / permute order
    int64_t d0 = 0;  ///< dim argument (transpose/slice/select/squeeze/...)
    int64_t d1 = 0;  ///< second dim (transpose)
    int64_t start = 0; ///< slice start / select index
    int64_t end = 0;   ///< slice end
    Shape inputShape;  ///< shape of the op's input (for inversion)

    /** Apply this op to @p t (logical contents; works on any layout). */
    Tensor apply(const Tensor &t) const;

    /** True when the op can be inverted without data loss. */
    bool invertible() const;

    /** The inverse op (valid only when invertible()). */
    ViewSpec inverse() const;

    /** Human-readable form, e.g. "transpose(0,1)". */
    std::string toString() const;
};

class SavedTensorHooks;

/**
 * A tensor stashed for the backward pass. If hooks are active at save
 * time the tensor is packed immediately (e.g. offloaded to CPU) and only
 * the opaque handle is retained; otherwise a plain reference keeps the
 * data alive on its device.
 */
class SavedTensor
{
  public:
    SavedTensor() = default;

    /**
     * Save @p t. @p source is the variable whose data is being saved
     * (used by graph-walking hooks); may be null for ad-hoc tensors.
     */
    SavedTensor(const Tensor &t, std::shared_ptr<VarImpl> source);

    /** Recover the tensor (may trigger hook unpack / CPU->GPU copy). */
    Tensor unpack() const;

    bool defined() const { return is_set_; }

  private:
    bool is_set_ = false;
    Tensor plain_;
    std::shared_ptr<void> handle_;
    SavedTensorHooks *hooks_ = nullptr;
};

/** What a hook's pack() receives: the tensor and its graph identity. */
struct SavedSource
{
    Tensor tensor;
    std::shared_ptr<VarImpl> impl; ///< may be null
};

/**
 * Interface of the saved-tensor hook pair. Implementations must keep any
 * state needed by unpack alive inside the returned handle or themselves,
 * and must outlive every backward pass that uses them.
 */
class SavedTensorHooks
{
  public:
    virtual ~SavedTensorHooks() = default;

    /** Called when autograd saves a tensor; returns an opaque handle. */
    virtual std::shared_ptr<void> pack(const SavedSource &src) = 0;

    /** Called when backward needs the tensor back. */
    virtual Tensor unpack(const std::shared_ptr<void> &handle) = 0;
};

/**
 * RAII activation of hooks on a thread-local stack (innermost wins),
 * mirroring torch.autograd.graph.saved_tensors_hooks.
 */
class SavedTensorHooksGuard
{
  public:
    explicit SavedTensorHooksGuard(SavedTensorHooks *hooks);
    ~SavedTensorHooksGuard();

    SavedTensorHooksGuard(const SavedTensorHooksGuard &) = delete;
    SavedTensorHooksGuard &operator=(const SavedTensorHooksGuard &) =
        delete;

    /** Currently active hooks (innermost), or null. */
    static SavedTensorHooks *active();
};

/** Graph edge: the node responsible for the gradient of one input. */
struct Edge
{
    std::shared_ptr<Node> fn; ///< null when the input needs no gradient
};

/**
 * Base class of all autograd operations.
 *
 * One node has exactly one output variable. next_edges[i] addresses the
 * node that consumes the gradient of input i (the producer's node, or an
 * AccumulateGrad sink for leaves).
 */
class Node : public std::enable_shared_from_this<Node>
{
  public:
    /**
     * @param op_name      short identifier ("matmul", "view", ...)
     * @param view_spec    set for data-storage-invariant ops
     */
    explicit Node(std::string op_name,
                  std::optional<ViewSpec> view_spec = std::nullopt);

    virtual ~Node() = default;

    /**
     * Compute input gradients from the output gradient.
     * @return one tensor per input (undefined Tensor where no gradient).
     */
    virtual std::vector<Tensor> backward(const Tensor &grad_out) = 0;

    /**
     * Called once the output variable exists; nodes that save their own
     * output (softmax, exp, ...) override this.
     */
    virtual void postBuild(const Variable &output);

    const std::string &opName() const { return op_name_; }

    /** True for ops whose output shares the input's data storage. */
    bool storageInvariant() const { return view_spec_.has_value(); }

    const std::optional<ViewSpec> &viewSpec() const { return view_spec_; }

    /** Gradient routing, one edge per input. */
    std::vector<Edge> nextEdges;

    /** Weak links to input variables (forward-graph navigation). */
    std::vector<std::weak_ptr<VarImpl>> inputImpls;

    /** Weak link to the output variable. */
    std::weak_ptr<VarImpl> outputImpl;

  protected:
    /** Save @p t for backward through the active hooks. */
    SavedTensor
    save(const Tensor &t, const std::shared_ptr<VarImpl> &source)
    {
        return SavedTensor(t, source);
    }

    /** Save an input variable's data. */
    SavedTensor
    save(const Variable &v)
    {
        return SavedTensor(v.data(), v.impl());
    }

  private:
    std::string op_name_;
    std::optional<ViewSpec> view_spec_;
};

/**
 * Terminal node that accumulates gradient into a leaf variable. Holds
 * the target weakly: the leaf owns its accumulator (VarImpl ->
 * gradAccumulator), so a strong back-reference would leak both.
 */
class AccumulateGrad : public Node
{
  public:
    explicit AccumulateGrad(std::weak_ptr<VarImpl> target);

    std::vector<Tensor> backward(const Tensor &grad_out) override;

    std::shared_ptr<VarImpl> target() const { return target_.lock(); }

  private:
    std::weak_ptr<VarImpl> target_;
};

/** Get (create on first use) the AccumulateGrad sink of a leaf. */
std::shared_ptr<Node> gradAccumulator(const std::shared_ptr<VarImpl> &leaf);

/**
 * Assemble the result variable of an op: decides requires-grad, attaches
 * the node, wires edges/consumers, and runs postBuild. When no input
 * requires grad (or grad mode is off) @p make_node is never invoked and
 * the plain result is returned.
 *
 * @param data      forward result tensor
 * @param inputs    op inputs (graph wiring order = backward order)
 * @param make_node factory creating the node (invoked lazily)
 */
Variable
makeResult(Tensor data, const std::vector<Variable> &inputs,
           const std::function<std::shared_ptr<Node>()> &make_node);

} // namespace edkm

#endif // EDKM_AUTOGRAD_NODE_H_
