/**
 * @file
 * Reverse-mode backward engine.
 */

#ifndef EDKM_AUTOGRAD_ENGINE_H_
#define EDKM_AUTOGRAD_ENGINE_H_

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace edkm {

/**
 * Run the backward pass from @p root, accumulating gradients into every
 * reachable leaf variable that requires grad.
 *
 * @param root  result of a differentiable computation.
 * @param seed  initial gradient; defaults to ones of root's shape (for a
 *              scalar loss this is the usual 1.0).
 */
void backward(const Variable &root, Tensor seed = Tensor());

} // namespace edkm

#endif // EDKM_AUTOGRAD_ENGINE_H_
