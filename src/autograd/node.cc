#include "autograd/node.h"

#include <algorithm>
#include <sstream>

#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {

// ----------------------------------------------------------------------
// ViewSpec
// ----------------------------------------------------------------------

Tensor
ViewSpec::apply(const Tensor &t) const
{
    switch (kind) {
      case Kind::kView:
        return t.isContiguous() ? t.view(shapeArg)
                                : t.contiguous().view(shapeArg);
      case Kind::kTranspose:
        return t.transpose(d0, d1);
      case Kind::kPermute:
        return t.permute(shapeArg);
      case Kind::kSlice:
        return t.slice(d0, start, end);
      case Kind::kSelect:
        return t.select(d0, start);
      case Kind::kSqueeze:
        return t.squeeze(d0);
      case Kind::kUnsqueeze:
        return t.unsqueeze(d0);
    }
    panic("ViewSpec::apply: bad kind");
}

bool
ViewSpec::invertible() const
{
    return kind != Kind::kSlice && kind != Kind::kSelect;
}

ViewSpec
ViewSpec::inverse() const
{
    EDKM_ASSERT(invertible(), "inverse() of lossy view op");
    ViewSpec inv;
    switch (kind) {
      case Kind::kView:
        inv.kind = Kind::kView;
        inv.shapeArg = inputShape;
        break;
      case Kind::kTranspose:
        inv = *this; // self-inverse
        break;
      case Kind::kPermute: {
        inv.kind = Kind::kPermute;
        inv.shapeArg.resize(shapeArg.size());
        for (size_t i = 0; i < shapeArg.size(); ++i) {
            inv.shapeArg[static_cast<size_t>(shapeArg[i])] =
                static_cast<int64_t>(i);
        }
        break;
      }
      case Kind::kSqueeze:
        inv.kind = Kind::kUnsqueeze;
        inv.d0 = d0;
        break;
      case Kind::kUnsqueeze:
        inv.kind = Kind::kSqueeze;
        inv.d0 = d0;
        break;
      default:
        panic("ViewSpec::inverse: bad kind");
    }
    return inv;
}

std::string
ViewSpec::toString() const
{
    std::ostringstream oss;
    switch (kind) {
      case Kind::kView: {
        oss << "view(";
        for (size_t i = 0; i < shapeArg.size(); ++i) {
            oss << (i ? "," : "") << shapeArg[i];
        }
        oss << ")";
        break;
      }
      case Kind::kTranspose:
        oss << "transpose(" << d0 << "," << d1 << ")";
        break;
      case Kind::kPermute:
        oss << "permute";
        break;
      case Kind::kSlice:
        oss << "slice(" << d0 << "," << start << ":" << end << ")";
        break;
      case Kind::kSelect:
        oss << "select(" << d0 << "," << start << ")";
        break;
      case Kind::kSqueeze:
        oss << "squeeze(" << d0 << ")";
        break;
      case Kind::kUnsqueeze:
        oss << "unsqueeze(" << d0 << ")";
        break;
    }
    return oss.str();
}

// ----------------------------------------------------------------------
// Saved tensors and hooks
// ----------------------------------------------------------------------

namespace {
thread_local std::vector<SavedTensorHooks *> g_hook_stack;
} // namespace

SavedTensorHooksGuard::SavedTensorHooksGuard(SavedTensorHooks *hooks)
{
    EDKM_CHECK(hooks != nullptr, "null hooks");
    g_hook_stack.push_back(hooks);
}

SavedTensorHooksGuard::~SavedTensorHooksGuard()
{
    g_hook_stack.pop_back();
}

SavedTensorHooks *
SavedTensorHooksGuard::active()
{
    return g_hook_stack.empty() ? nullptr : g_hook_stack.back();
}

SavedTensor::SavedTensor(const Tensor &t, std::shared_ptr<VarImpl> source)
    : is_set_(true)
{
    SavedTensorHooks *hooks = SavedTensorHooksGuard::active();
    if (hooks) {
        hooks_ = hooks;
        handle_ = hooks->pack(SavedSource{t, std::move(source)});
    } else {
        plain_ = t;
    }
}

Tensor
SavedTensor::unpack() const
{
    EDKM_CHECK(is_set_, "unpack() of empty SavedTensor");
    if (hooks_) {
        return hooks_->unpack(handle_);
    }
    return plain_;
}

// ----------------------------------------------------------------------
// Node
// ----------------------------------------------------------------------

Node::Node(std::string op_name, std::optional<ViewSpec> view_spec)
    : op_name_(std::move(op_name)), view_spec_(std::move(view_spec))
{
}

void
Node::postBuild(const Variable &output)
{
    (void)output;
}

AccumulateGrad::AccumulateGrad(std::weak_ptr<VarImpl> target)
    : Node("accumulate_grad"), target_(std::move(target))
{
}

std::vector<Tensor>
AccumulateGrad::backward(const Tensor &grad_out)
{
    std::shared_ptr<VarImpl> t = target_.lock();
    if (!t) {
        return {}; // leaf died before backward: nothing to accumulate
    }
    if (!t->grad.defined()) {
        t->grad = grad_out.clone();
    } else {
        t->grad = add(t->grad, grad_out);
    }
    return {};
}

std::shared_ptr<Node>
gradAccumulator(const std::shared_ptr<VarImpl> &leaf)
{
    EDKM_ASSERT(leaf != nullptr, "gradAccumulator: null leaf");
    if (!leaf->gradAccumulator) {
        leaf->gradAccumulator = std::make_shared<AccumulateGrad>(leaf);
    }
    return leaf->gradAccumulator;
}

Variable
makeResult(Tensor data, const std::vector<Variable> &inputs,
           const std::function<std::shared_ptr<Node>()> &make_node)
{
    bool needs_grad = false;
    if (gradModeEnabled()) {
        for (const Variable &v : inputs) {
            if (v.defined() && v.requiresGrad()) {
                needs_grad = true;
                break;
            }
        }
    }
    if (!needs_grad) {
        return Variable(std::move(data), false);
    }

    std::shared_ptr<Node> node = make_node();
    node->nextEdges.clear();
    node->inputImpls.clear();
    for (const Variable &v : inputs) {
        Edge e;
        if (v.defined() && v.requiresGrad()) {
            if (v.isLeaf()) {
                e.fn = gradAccumulator(v.impl());
            } else {
                e.fn = v.gradFn();
            }
        }
        node->nextEdges.push_back(std::move(e));
        node->inputImpls.push_back(
            v.defined() ? std::weak_ptr<VarImpl>(v.impl())
                        : std::weak_ptr<VarImpl>());
        if (v.defined()) {
            v.impl()->consumers.push_back(node);
        }
    }

    auto out_impl = std::make_shared<VarImpl>();
    out_impl->data = std::move(data);
    out_impl->requiresGrad = true;
    out_impl->gradFn = node;
    Variable out = Variable::fromImpl(out_impl);
    node->outputImpl = out_impl;
    node->postBuild(out);
    return out;
}

} // namespace edkm
