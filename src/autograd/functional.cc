#include "autograd/functional.h"

#include <cmath>

#include "autograd/node.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace edkm {
namespace af {

namespace {

/** Reduce a broadcast gradient back to @p target_shape. */
Tensor
reduceGradToShape(const Tensor &grad, const Shape &target_shape)
{
    if (grad.shape() == target_shape) {
        return grad;
    }
    Tensor g = grad;
    // Sum away leading extra dims.
    while (g.dim() > static_cast<int64_t>(target_shape.size())) {
        g = edkm::sumDim(g, 0, /*keepdim=*/false);
    }
    // Sum dims where the target is 1 but grad is larger.
    for (int64_t d = 0; d < g.dim(); ++d) {
        if (target_shape[static_cast<size_t>(d)] == 1 && g.size(d) != 1) {
            g = edkm::sumDim(g, d, /*keepdim=*/true);
        }
    }
    EDKM_ASSERT(g.shape() == target_shape,
                "reduceGradToShape: cannot reduce");
    return g;
}

// ------------------------------------------------------------------
// Node definitions
// ------------------------------------------------------------------

class AddNode : public Node
{
  public:
    AddNode(const Variable &a, const Variable &b)
        : Node("add"), sa_(a.data().shape()), sb_(b.data().shape())
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {reduceGradToShape(g, sa_), reduceGradToShape(g, sb_)};
    }

  private:
    Shape sa_, sb_;
};

class SubNode : public Node
{
  public:
    SubNode(const Variable &a, const Variable &b)
        : Node("sub"), sa_(a.data().shape()), sb_(b.data().shape())
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {reduceGradToShape(g, sa_),
                reduceGradToShape(edkm::neg(g), sb_)};
    }

  private:
    Shape sa_, sb_;
};

class MulNode : public Node
{
  public:
    MulNode(const Variable &a, const Variable &b)
        : Node("mul"), sa_(a.data().shape()), sb_(b.data().shape()),
          a_(save(a)), b_(save(b))
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor a = a_.unpack(), b = b_.unpack();
        return {reduceGradToShape(edkm::mul(g, b), sa_),
                reduceGradToShape(edkm::mul(g, a), sb_)};
    }

  private:
    Shape sa_, sb_;
    SavedTensor a_, b_;
};

class DivNode : public Node
{
  public:
    DivNode(const Variable &a, const Variable &b)
        : Node("div"), sa_(a.data().shape()), sb_(b.data().shape()),
          a_(save(a)), b_(save(b))
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor a = a_.unpack(), b = b_.unpack();
        Tensor ga = edkm::div(g, b);
        Tensor gb = edkm::neg(edkm::div(edkm::mul(g, a), edkm::mul(b, b)));
        return {reduceGradToShape(ga, sa_), reduceGradToShape(gb, sb_)};
    }

  private:
    Shape sa_, sb_;
    SavedTensor a_, b_;
};

class AddScalarNode : public Node
{
  public:
    AddScalarNode() : Node("add_scalar") {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {g};
    }
};

class MulScalarNode : public Node
{
  public:
    explicit MulScalarNode(float s) : Node("mul_scalar"), s_(s) {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {edkm::mulScalar(g, s_)};
    }

  private:
    float s_;
};

class NegNode : public Node
{
  public:
    NegNode() : Node("neg") {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {edkm::neg(g)};
    }
};

class ExpNode : public Node
{
  public:
    ExpNode() : Node("exp") {}

    void
    postBuild(const Variable &out) override
    {
        out_ = save(out);
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {edkm::mul(g, out_.unpack())};
    }

  private:
    SavedTensor out_;
};

class LogNode : public Node
{
  public:
    explicit LogNode(const Variable &a) : Node("log"), a_(save(a)) {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {edkm::div(g, a_.unpack())};
    }

  private:
    SavedTensor a_;
};

class SqrtNode : public Node
{
  public:
    SqrtNode() : Node("sqrt") {}

    void
    postBuild(const Variable &out) override
    {
        out_ = save(out);
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor out = out_.unpack();
        return {edkm::div(edkm::mulScalar(g, 0.5f), out)};
    }

  private:
    SavedTensor out_;
};

class SquareNode : public Node
{
  public:
    explicit SquareNode(const Variable &a) : Node("square"), a_(save(a)) {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {edkm::mul(g, edkm::mulScalar(a_.unpack(), 2.0f))};
    }

  private:
    SavedTensor a_;
};

class SiluNode : public Node
{
  public:
    explicit SiluNode(const Variable &a) : Node("silu"), a_(save(a)) {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor x = a_.unpack();
        Tensor s = edkm::sigmoid(x);
        // d/dx silu = s * (1 + x * (1 - s))
        Tensor one_minus_s = edkm::addScalar(edkm::neg(s), 1.0f);
        Tensor d = edkm::mul(s, edkm::addScalar(edkm::mul(x, one_minus_s),
                                                1.0f));
        return {edkm::mul(g, d)};
    }

  private:
    SavedTensor a_;
};

class SigmoidNode : public Node
{
  public:
    SigmoidNode() : Node("sigmoid") {}

    void
    postBuild(const Variable &out) override
    {
        out_ = save(out);
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor y = out_.unpack();
        Tensor d = edkm::mul(y, edkm::addScalar(edkm::neg(y), 1.0f));
        return {edkm::mul(g, d)};
    }

  private:
    SavedTensor out_;
};

class ReluNode : public Node
{
  public:
    explicit ReluNode(const Variable &a) : Node("relu"), a_(save(a)) {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor x = a_.unpack();
        Tensor gate = Tensor::empty(x.shape(), DType::kF32, x.device());
        int64_t n = x.numel();
        for (int64_t i = 0; i < n; ++i) {
            gate.setFlatAt(i, x.flatAt(i) > 0.0f ? 1.0f : 0.0f);
        }
        return {edkm::mul(g, gate)};
    }

  private:
    SavedTensor a_;
};

class MatmulNode : public Node
{
  public:
    MatmulNode(const Variable &a, const Variable &b)
        : Node("matmul"), a_(save(a)), b_(save(b)),
          sa_(a.data().shape()), sb_(b.data().shape())
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor a = a_.unpack(), b = b_.unpack();
        Tensor ga, gb;
        // grad_a = g @ b^T ; grad_b = a^T @ g (collapse batch if b is 2-d)
        ga = edkm::matmul(g, b.transpose(-2, -1));
        if (a.dim() == 3 && b.dim() == 2) {
            int64_t k = a.size(2), n = g.size(-1);
            Tensor a2 = a.reshape({-1, k});
            Tensor g2 = g.isContiguous() ? g.view({-1, n})
                                         : g.contiguous().view({-1, n});
            gb = edkm::matmul(a2.transpose(0, 1), g2);
        } else {
            gb = edkm::matmul(a.transpose(-2, -1), g);
        }
        return {ga, gb};
    }

  private:
    SavedTensor a_, b_;
    Shape sa_, sb_;
};

class SoftmaxNode : public Node
{
  public:
    SoftmaxNode() : Node("softmax") {}

    void
    postBuild(const Variable &out) override
    {
        out_ = save(out);
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor y = out_.unpack();
        Tensor gy = edkm::mul(g, y);
        Tensor s = edkm::sumDim(gy, -1, /*keepdim=*/true);
        return {edkm::sub(gy, edkm::mul(y, s))};
    }

  private:
    SavedTensor out_;
};

class LogSoftmaxNode : public Node
{
  public:
    LogSoftmaxNode() : Node("log_softmax") {}

    void
    postBuild(const Variable &out) override
    {
        out_ = save(out);
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor y = out_.unpack();
        Tensor s = edkm::sumDim(g, -1, /*keepdim=*/true);
        return {edkm::sub(g, edkm::mul(edkm::expT(y), s))};
    }

  private:
    SavedTensor out_;
};

class SumAllNode : public Node
{
  public:
    explicit SumAllNode(const Variable &a)
        : Node("sum_all"), shape_(a.data().shape()),
          dev_(a.data().device())
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {Tensor::full(shape_, g.item(), DType::kF32, dev_)};
    }

  private:
    Shape shape_;
    Device dev_;
};

class MeanAllNode : public Node
{
  public:
    explicit MeanAllNode(const Variable &a)
        : Node("mean_all"), shape_(a.data().shape()),
          dev_(a.data().device()), n_(a.data().numel())
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {Tensor::full(shape_, g.item() / static_cast<float>(n_),
                             DType::kF32, dev_)};
    }

  private:
    Shape shape_;
    Device dev_;
    int64_t n_;
};

class SumDimNode : public Node
{
  public:
    SumDimNode(const Variable &a, int64_t d, bool keepdim, float scale)
        : Node("sum_dim"), shape_(a.data().shape()), d_(d),
          keepdim_(keepdim), scale_(scale)
    {
        if (d_ < 0) {
            d_ += static_cast<int64_t>(shape_.size());
        }
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor gk = keepdim_ ? g : g.unsqueeze(d_);
        Tensor out = edkm::broadcastTo(gk, shape_);
        if (scale_ != 1.0f) {
            out = edkm::mulScalar(out, scale_);
        }
        return {out};
    }

  private:
    Shape shape_;
    int64_t d_;
    bool keepdim_;
    float scale_; ///< 1/dim for mean, 1 for sum
};

/** Shared implementation for all storage-invariant view ops. */
class ViewOpNode : public Node
{
  public:
    ViewOpNode(const Variable &a, ViewSpec spec)
        : Node(spec.toString(), spec), in_shape_(a.data().shape())
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        const ViewSpec &spec = *viewSpec();
        switch (spec.kind) {
          case ViewSpec::Kind::kView:
            return {g.reshape(in_shape_)};
          case ViewSpec::Kind::kTranspose:
            return {g.transpose(spec.d0, spec.d1).contiguous()};
          case ViewSpec::Kind::kPermute:
            return {g.permute(spec.inverse().shapeArg).contiguous()};
          case ViewSpec::Kind::kSlice: {
            Tensor full = Tensor::zeros(in_shape_, DType::kF32,
                                        g.device());
            copyIntoView(full.slice(spec.d0, spec.start, spec.end), g);
            return {full};
          }
          case ViewSpec::Kind::kSelect: {
            Tensor full = Tensor::zeros(in_shape_, DType::kF32,
                                        g.device());
            copyIntoView(full.select(spec.d0, spec.start), g);
            return {full};
          }
          case ViewSpec::Kind::kSqueeze:
            return {g.unsqueeze(spec.d0)};
          case ViewSpec::Kind::kUnsqueeze:
            return {g.squeeze(spec.d0)};
        }
        panic("ViewOpNode: bad kind");
    }

  private:
    Shape in_shape_;
};

class ContiguousNode : public Node
{
  public:
    ContiguousNode() : Node("contiguous") {}

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {g};
    }
};

class GatherRowsNode : public Node
{
  public:
    GatherRowsNode(const Variable &table, const Tensor &indices)
        : Node("gather_rows"), indices_(indices),
          rows_(table.data().size(0))
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        return {scatterAddRows(g, indices_, rows_)};
    }

  private:
    Tensor indices_;
    int64_t rows_;
};

class CrossEntropyNode : public Node
{
  public:
    CrossEntropyNode(const Variable &logits, const Tensor &targets,
                     Tensor log_probs)
        : Node("cross_entropy"), targets_(targets),
          logp_(save(log_probs, nullptr)),
          n_(logits.data().size(0))
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        Tensor logp = logp_.unpack();
        Tensor probs = edkm::expT(logp);
        int64_t n = probs.size(0);
        float scale = g.item() / static_cast<float>(n_);
        // grad = (softmax - onehot) * scale
        Tensor out = edkm::mulScalar(probs, scale);
        for (int64_t i = 0; i < n; ++i) {
            int64_t t = targets_.flatAtInt(i);
            out.setAt({i, t}, out.at({i, t}) - scale);
        }
        return {out};
    }

  private:
    Tensor targets_;
    SavedTensor logp_;
    int64_t n_;
};

/** rotateHalf([x1, x2]) = [-x2, x1] along the last dim. */
Tensor
rotateHalf(const Tensor &x, bool transpose_op)
{
    Tensor xc = x.isContiguous() ? x : x.contiguous();
    int64_t d = xc.size(-1);
    EDKM_CHECK(d % 2 == 0, "rotateHalf: last dim must be even");
    int64_t h = d / 2;
    int64_t rows = xc.numel() / d;
    Tensor out = Tensor::empty(xc.shape(), DType::kF32, x.device());
    const float *pi = xc.rawData<float>();
    float *po = out.rawData<float>();
    for (int64_t r = 0; r < rows; ++r) {
        const float *row = pi + r * d;
        float *orow = po + r * d;
        if (!transpose_op) {
            for (int64_t i = 0; i < h; ++i) {
                orow[i] = -row[h + i];
                orow[h + i] = row[i];
            }
        } else {
            // R^T([g1,g2]) = [g2, -g1]
            for (int64_t i = 0; i < h; ++i) {
                orow[i] = row[h + i];
                orow[h + i] = -row[i];
            }
        }
    }
    return out;
}

class RopeNode : public Node
{
  public:
    RopeNode(Tensor cos, Tensor sin)
        : Node("rope"), cos_(std::move(cos)), sin_(std::move(sin))
    {
    }

    std::vector<Tensor>
    backward(const Tensor &g) override
    {
        // out = x*cos + R(x)*sin  =>  grad_x = g*cos + R^T(g*sin)
        Tensor gx = edkm::add(edkm::mul(g, cos_),
                              rotateHalf(edkm::mul(g, sin_), true));
        return {gx};
    }

  private:
    Tensor cos_, sin_;
};

} // namespace

// ------------------------------------------------------------------
// Public functional API
// ------------------------------------------------------------------

Variable
add(const Variable &a, const Variable &b)
{
    return makeResult(edkm::add(a.data(), b.data()), {a, b},
                      [&] { return std::make_shared<AddNode>(a, b); });
}

Variable
sub(const Variable &a, const Variable &b)
{
    return makeResult(edkm::sub(a.data(), b.data()), {a, b},
                      [&] { return std::make_shared<SubNode>(a, b); });
}

Variable
mul(const Variable &a, const Variable &b)
{
    return makeResult(edkm::mul(a.data(), b.data()), {a, b},
                      [&] { return std::make_shared<MulNode>(a, b); });
}

Variable
div(const Variable &a, const Variable &b)
{
    return makeResult(edkm::div(a.data(), b.data()), {a, b},
                      [&] { return std::make_shared<DivNode>(a, b); });
}

Variable
addScalar(const Variable &a, float s)
{
    return makeResult(edkm::addScalar(a.data(), s), {a},
                      [&] { return std::make_shared<AddScalarNode>(); });
}

Variable
mulScalar(const Variable &a, float s)
{
    return makeResult(edkm::mulScalar(a.data(), s), {a},
                      [&] { return std::make_shared<MulScalarNode>(s); });
}

Variable
neg(const Variable &a)
{
    return makeResult(edkm::neg(a.data()), {a},
                      [&] { return std::make_shared<NegNode>(); });
}

Variable
exp(const Variable &a)
{
    return makeResult(edkm::expT(a.data()), {a},
                      [&] { return std::make_shared<ExpNode>(); });
}

Variable
log(const Variable &a)
{
    return makeResult(edkm::logT(a.data()), {a},
                      [&] { return std::make_shared<LogNode>(a); });
}

Variable
sqrt(const Variable &a)
{
    return makeResult(edkm::sqrtT(a.data()), {a},
                      [&] { return std::make_shared<SqrtNode>(); });
}

Variable
square(const Variable &a)
{
    return makeResult(edkm::square(a.data()), {a},
                      [&] { return std::make_shared<SquareNode>(a); });
}

Variable
silu(const Variable &a)
{
    return makeResult(edkm::silu(a.data()), {a},
                      [&] { return std::make_shared<SiluNode>(a); });
}

Variable
sigmoid(const Variable &a)
{
    return makeResult(edkm::sigmoid(a.data()), {a},
                      [&] { return std::make_shared<SigmoidNode>(); });
}

Variable
relu(const Variable &a)
{
    return makeResult(edkm::relu(a.data()), {a},
                      [&] { return std::make_shared<ReluNode>(a); });
}

Variable
matmul(const Variable &a, const Variable &b)
{
    return makeResult(edkm::matmul(a.data(), b.data()), {a, b},
                      [&] { return std::make_shared<MatmulNode>(a, b); });
}

Variable
softmaxLastDim(const Variable &a)
{
    return makeResult(edkm::softmaxLastDim(a.data()), {a},
                      [&] { return std::make_shared<SoftmaxNode>(); });
}

Variable
logSoftmaxLastDim(const Variable &a)
{
    return makeResult(edkm::logSoftmaxLastDim(a.data()), {a},
                      [&] { return std::make_shared<LogSoftmaxNode>(); });
}

Variable
sumAll(const Variable &a)
{
    return makeResult(edkm::sumAll(a.data()), {a},
                      [&] { return std::make_shared<SumAllNode>(a); });
}

Variable
meanAll(const Variable &a)
{
    return makeResult(edkm::meanAll(a.data()), {a},
                      [&] { return std::make_shared<MeanAllNode>(a); });
}

Variable
sumDim(const Variable &a, int64_t d, bool keepdim)
{
    return makeResult(edkm::sumDim(a.data(), d, keepdim), {a}, [&] {
        return std::make_shared<SumDimNode>(a, d, keepdim, 1.0f);
    });
}

Variable
meanDim(const Variable &a, int64_t d, bool keepdim)
{
    int64_t dd = d < 0 ? d + a.data().dim() : d;
    float scale = 1.0f / static_cast<float>(a.data().size(dd));
    return makeResult(edkm::meanDim(a.data(), d, keepdim), {a}, [&] {
        return std::make_shared<SumDimNode>(a, d, keepdim, scale);
    });
}

namespace {

Variable
viewOp(const Variable &a, Tensor result, ViewSpec spec)
{
    spec.inputShape = a.data().shape();
    return makeResult(std::move(result), {a}, [&] {
        return std::make_shared<ViewOpNode>(a, spec);
    });
}

} // namespace

Variable
view(const Variable &a, Shape shape)
{
    Tensor out = a.data().view(shape);
    ViewSpec spec;
    spec.kind = ViewSpec::Kind::kView;
    spec.shapeArg = out.shape(); // resolved shape (no -1)
    return viewOp(a, std::move(out), std::move(spec));
}

Variable
reshape(const Variable &a, Shape shape)
{
    if (a.data().isContiguous()) {
        return view(a, std::move(shape));
    }
    return view(contiguous(a), std::move(shape));
}

Variable
transpose(const Variable &a, int64_t d0, int64_t d1)
{
    if (d0 < 0) d0 += a.data().dim();
    if (d1 < 0) d1 += a.data().dim();
    ViewSpec spec;
    spec.kind = ViewSpec::Kind::kTranspose;
    spec.d0 = d0;
    spec.d1 = d1;
    return viewOp(a, a.data().transpose(d0, d1), std::move(spec));
}

Variable
permute(const Variable &a, const Shape &dims)
{
    ViewSpec spec;
    spec.kind = ViewSpec::Kind::kPermute;
    spec.shapeArg = dims;
    return viewOp(a, a.data().permute(dims), std::move(spec));
}

Variable
slice(const Variable &a, int64_t d, int64_t start, int64_t end)
{
    if (d < 0) d += a.data().dim();
    ViewSpec spec;
    spec.kind = ViewSpec::Kind::kSlice;
    spec.d0 = d;
    spec.start = start;
    spec.end = end;
    return viewOp(a, a.data().slice(d, start, end), std::move(spec));
}

Variable
select(const Variable &a, int64_t d, int64_t idx)
{
    if (d < 0) d += a.data().dim();
    ViewSpec spec;
    spec.kind = ViewSpec::Kind::kSelect;
    spec.d0 = d;
    spec.start = idx;
    return viewOp(a, a.data().select(d, idx), std::move(spec));
}

Variable
squeeze(const Variable &a, int64_t d)
{
    if (d < 0) d += a.data().dim();
    ViewSpec spec;
    spec.kind = ViewSpec::Kind::kSqueeze;
    spec.d0 = d;
    return viewOp(a, a.data().squeeze(d), std::move(spec));
}

Variable
unsqueeze(const Variable &a, int64_t d)
{
    if (d < 0) d += a.data().dim() + 1;
    ViewSpec spec;
    spec.kind = ViewSpec::Kind::kUnsqueeze;
    spec.d0 = d;
    return viewOp(a, a.data().unsqueeze(d), std::move(spec));
}

Variable
contiguous(const Variable &a)
{
    if (a.data().isContiguous()) {
        return a;
    }
    return makeResult(a.data().contiguous(), {a},
                      [&] { return std::make_shared<ContiguousNode>(); });
}

Variable
gatherRows(const Variable &table, const Tensor &indices)
{
    return makeResult(edkm::gatherRows(table.data(), indices), {table},
                      [&] {
                          return std::make_shared<GatherRowsNode>(table,
                                                                  indices);
                      });
}

Variable
crossEntropy(const Variable &logits, const Tensor &targets)
{
    EDKM_CHECK(logits.data().dim() == 2, "crossEntropy: logits must be 2-d");
    EDKM_CHECK(targets.numel() == logits.data().size(0),
               "crossEntropy: one target per row");
    Tensor logp = edkm::logSoftmaxLastDim(logits.data());
    int64_t n = logp.size(0);
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        int64_t t = targets.flatAtInt(i);
        acc -= logp.at({i, t});
    }
    Tensor loss = Tensor::full({1}, static_cast<float>(acc / n));
    return makeResult(std::move(loss), {logits}, [&] {
        return std::make_shared<CrossEntropyNode>(logits, targets, logp);
    });
}

Variable
rope(const Variable &x, const Tensor &cos, const Tensor &sin)
{
    Tensor rotated = rotateHalf(x.data(), false);
    Tensor out = edkm::add(edkm::mul(x.data(), cos),
                           edkm::mul(rotated, sin));
    return makeResult(std::move(out), {x}, [&] {
        return std::make_shared<RopeNode>(cos, sin);
    });
}

Variable
constant(const Tensor &t)
{
    return Variable(t, false);
}

} // namespace af
} // namespace edkm
