/**
 * @file
 * Multiple-choice likelihood evaluation harness.
 *
 * Implements the lm-eval-harness mechanics the paper's Table 3 relies
 * on: each option of an item is scored by the length-normalised
 * log-likelihood the model assigns to the option tokens given the
 * context, and the argmax option is compared with the answer. The seven
 * synthetic tasks stand in for PIQA / HellaSwag / WinoGrande / ARC-e /
 * ARC-c / TriviaQA / MMLU (see DESIGN.md substitutions); TriviaQA- and
 * MMLU-slot tasks are evaluated few-shot like the paper's few-shot
 * column.
 */

#ifndef EDKM_EVAL_MC_HARNESS_H_
#define EDKM_EVAL_MC_HARNESS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "data/tokenizer.h"
#include "nn/transformer.h"

namespace edkm {
namespace eval {

/** One multiple-choice item. */
struct McItem
{
    std::string context;              ///< prompt (plus few-shot prefix)
    std::vector<std::string> options; ///< candidate completions
    int answer = 0;                   ///< index of the correct option
};

/** A named task (one benchmark slot). */
struct McTask
{
    std::string name;
    data::TaskFamily family;
    int fewshot = 0;
    std::vector<McItem> items;
};

/** Accuracy results for a suite run. */
struct SuiteResult
{
    std::vector<std::pair<std::string, double>> taskAccuracy;
    double average = 0.0;
};

/**
 * Build the 7-task synthetic suite from the same generator families the
 * training corpus uses (items drawn with an evaluation-only seed).
 */
std::vector<McTask> buildSyntheticSuite(const data::SyntheticCorpus &corpus,
                                        int items_per_task, uint64_t seed);

/** Mean per-token log-likelihood of @p option given @p context. */
double scoreOption(nn::MiniLlama &model, const data::ByteTokenizer &tok,
                   const std::string &context, const std::string &option);

/** Accuracy of @p model on one task. */
double evaluateTask(nn::MiniLlama &model, const data::ByteTokenizer &tok,
                    const McTask &task);

/** Accuracy on every task plus the average. */
SuiteResult evaluateSuite(nn::MiniLlama &model,
                          const data::ByteTokenizer &tok,
                          const std::vector<McTask> &tasks);

} // namespace eval
} // namespace edkm

#endif // EDKM_EVAL_MC_HARNESS_H_
