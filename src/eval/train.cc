#include "eval/train.h"

#include <cmath>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "data/synthetic.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace eval {

TrainReport
trainLm(nn::MiniLlama &model, const std::vector<int64_t> &stream,
        const TrainConfig &config)
{
    Rng rng(config.seed);
    nn::AdamW opt(model.parameters(), config.optimizer);
    TrainReport report;
    for (int step = 0; step < config.steps; ++step) {
        data::LmBatch batch = data::SyntheticCorpus::sampleBatch(
            stream, config.batch, config.seq, rng);
        Variable logits = model.forward(batch.tokens);
        Variable loss = af::crossEntropy(logits, batch.targets);
        float loss_val = loss.data().item();
        report.losses.push_back(loss_val);

        opt.zeroGrad();
        backward(loss);
        nn::AdamW::clipGradNorm(model.parameters(), config.gradClip);
        opt.step();

        if (config.logEvery > 0 && step % config.logEvery == 0) {
            inform("step ", step, " loss ", loss_val);
        }
    }
    if (!report.losses.empty()) {
        report.firstLoss = report.losses.front();
        report.lastLoss = report.losses.back();
    }
    return report;
}

float
evalLoss(nn::MiniLlama &model, const std::vector<int64_t> &stream,
         int64_t batch, int64_t seq, int windows)
{
    NoGradGuard ng;
    Rng rng(0xe7a1); // fixed: deterministic eval windows
    double total = 0.0;
    for (int w = 0; w < windows; ++w) {
        data::LmBatch b =
            data::SyntheticCorpus::sampleBatch(stream, batch, seq, rng);
        Variable logits = model.forward(b.tokens);
        Variable loss = af::crossEntropy(logits, b.targets);
        total += loss.data().item();
    }
    return static_cast<float>(total / std::max(windows, 1));
}

float
perplexity(nn::MiniLlama &model, const std::vector<int64_t> &stream,
           int64_t batch, int64_t seq, int windows)
{
    return std::exp(evalLoss(model, stream, batch, seq, windows));
}

} // namespace eval
} // namespace edkm
