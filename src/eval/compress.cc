#include "eval/compress.h"

#include <sstream>

#include "api/compressor.h"
#include "api/plan.h"
#include "api/registry.h"
#include "autograd/variable.h"
#include "core/palettize.h"
#include "quant/affine.h"
#include "quant/qat.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace eval {

namespace detail {

int64_t
fp16SideBytes(nn::MiniLlama &model, bool include_embedding)
{
    int64_t bytes = 0;
    for (const auto &[name, p] : model.namedParameters()) {
        bool is_linear_weight =
            name.find("wq") != std::string::npos ||
            name.find("wk") != std::string::npos ||
            name.find("wv") != std::string::npos ||
            name.find("wo") != std::string::npos ||
            name.find("w1") != std::string::npos ||
            name.find("w2") != std::string::npos ||
            name.find("w3") != std::string::npos ||
            name.find("lm_head") != std::string::npos;
        bool is_embedding = name.find("embed") != std::string::npos;
        if (!is_linear_weight && (include_embedding || !is_embedding)) {
            bytes += p.data().numel() * 2; // FP16
        }
    }
    return bytes;
}

SizeReport
makeSizeReport(const std::string &scheme, int64_t payload_bytes,
               int64_t total_params, double linear_bits,
               double embed_bits)
{
    SizeReport r;
    r.scheme = scheme;
    r.payloadBytes = payload_bytes;
    r.bitsPerWeight = 8.0 * static_cast<double>(payload_bytes) /
                      static_cast<double>(total_params);
    r.projectedGb7B = projectedGbComposed(linear_bits, embed_bits);
    return r;
}

double
linearBits(nn::MiniLlama &model, int64_t linear_payload_bytes)
{
    int64_t linear_params = 0;
    for (auto &[name, linear] : model.allLinears()) {
        (void)name;
        linear_params += linear->weight().data().numel();
    }
    return 8.0 * static_cast<double>(linear_payload_bytes) /
           static_cast<double>(linear_params);
}

} // namespace detail

namespace {

/** Run @p plan over every Linear through the unified API. */
SizeReport
runScheme(nn::MiniLlama &model, const api::CompressionPlan &plan,
          api::CalibData calib)
{
    std::vector<std::string> paths;
    for (auto &[path, linear] : model.allLinears()) {
        (void)linear;
        paths.push_back(path);
    }
    std::unique_ptr<api::Compressor> compressor =
        api::CompressorRegistry::instance().create(plan);
    return compressor->compress(model, calib, plan.resolve(paths)).size;
}

} // namespace

std::string
SizeReport::toJson() const
{
    std::ostringstream oss;
    oss << "{\"scheme\": \"" << scheme << "\", \"payload_bytes\": "
        << payloadBytes << ", \"bits_per_weight\": " << bitsPerWeight
        << ", \"projected_gb_7b\": " << projectedGb7B << "}";
    return oss.str();
}

double
projectedGb(double bits_per_weight, double params)
{
    return bits_per_weight / 8.0 * params / (1024.0 * 1024.0 * 1024.0);
}

double
projectedGbComposed(double linear_bits_per_weight,
                    double embed_bits_per_weight)
{
    double linear_params = kLlama7bParams - kLlama7bEmbedParams;
    double bytes = linear_bits_per_weight / 8.0 * linear_params +
                   embed_bits_per_weight / 8.0 * kLlama7bEmbedParams;
    return bytes / (1024.0 * 1024.0 * 1024.0);
}

SizeReport
fp16Size(nn::MiniLlama &model)
{
    int64_t params = model.parameterCount();
    return detail::makeSizeReport("fp16", params * 2, params, 16.0, 16.0);
}

SizeReport
applyRtn(nn::MiniLlama &model, int bits, int64_t group_size)
{
    api::CompressionPlan plan;
    plan.scheme = "rtn";
    plan.bits = bits;
    plan.groupSize = group_size;
    return runScheme(model, plan, api::CalibData{});
}

SizeReport
applyGptq(nn::MiniLlama &model, const Tensor &calib_tokens,
          const quant::GptqConfig &config)
{
    api::CompressionPlan plan;
    plan.scheme = "gptq";
    plan.bits = config.bits;
    plan.groupSize = config.groupSize;
    plan.gptqPercdamp = config.percdamp;
    api::CalibData calib;
    calib.tokens = calib_tokens;
    return runScheme(model, plan, std::move(calib));
}

SizeReport
applyAwq(nn::MiniLlama &model, const Tensor &calib_tokens,
         const quant::AwqConfig &config)
{
    api::CompressionPlan plan;
    plan.scheme = "awq";
    plan.bits = config.bits;
    plan.groupSize = config.groupSize;
    plan.awqGridPoints = config.gridPoints;
    api::CalibData calib;
    calib.tokens = calib_tokens;
    return runScheme(model, plan, std::move(calib));
}

SizeReport
applySmoothQuant(nn::MiniLlama &model, const Tensor &calib_tokens,
                 const quant::SmoothQuantConfig &config)
{
    api::CompressionPlan plan;
    plan.scheme = "smoothquant";
    plan.bits = config.weightBits;
    plan.smoothAlpha = config.alpha;
    api::CalibData calib;
    calib.tokens = calib_tokens;
    return runScheme(model, plan, std::move(calib));
}

std::vector<std::shared_ptr<EdkmLayer>>
attachEdkm(nn::MiniLlama &model, const EdkmConfig &config,
           std::shared_ptr<LearnerGroup> group)
{
    std::vector<std::shared_ptr<EdkmLayer>> layers;
    for (auto &[name, linear] : model.allLinears()) {
        (void)name;
        auto layer = std::make_shared<EdkmLayer>(config, group);
        layers.push_back(layer);
        linear->setWeightTransform(
            [layer](const Variable &w) { return layer->forward(w); });
    }
    return layers;
}

void
attachQat(nn::MiniLlama &model, int bits, int64_t group_size)
{
    for (auto &[name, linear] : model.allLinears()) {
        (void)name;
        linear->setWeightTransform([bits, group_size](const Variable &w) {
            return quant::fakeQuantize(w, bits, group_size);
        });
    }
}

void
clearTransforms(nn::MiniLlama &model)
{
    for (auto &[name, linear] : model.allLinears()) {
        (void)name;
        linear->setWeightTransform(nullptr);
    }
}

SizeReport
freezeEdkm(nn::MiniLlama &model,
           const std::vector<std::shared_ptr<EdkmLayer>> &layers,
           int embedding_bits)
{
    auto linears = model.allLinears();
    EDKM_CHECK(linears.size() == layers.size(),
               "freezeEdkm: layer/linear count mismatch");
    int64_t payload = detail::fp16SideBytes(model, /*include_embedding=*/false);
    int64_t linear_payload = 0;
    for (size_t i = 0; i < linears.size(); ++i) {
        nn::Linear *linear = linears[i].second;
        PalettizedTensor p =
            layers[i]->palettize(linear->weight().data());
        linear->weight().mutableData() = p.decompress();
        linear->setWeightTransform(nullptr);
        linear_payload += p.payloadBytes();
    }
    payload += linear_payload;
    // Embedding palettized at 8 bits (paper: "we also compressed the
    // embedding layers with 8 bits").
    Rng rng(99);
    PalettizedTensor emb = PalettizedTensor::fromDense(
        model.embedding().weight().data(), embedding_bits, rng, 10);
    model.embedding().weight().mutableData() = emb.decompress();
    payload += emb.payloadBytes();
    double embed_bits =
        8.0 * static_cast<double>(emb.payloadBytes()) /
        static_cast<double>(model.embedding().weight().data().numel());
    return detail::makeSizeReport("eDKM", payload, model.parameterCount(),
                      detail::linearBits(model, linear_payload), embed_bits);
}

SizeReport
qatSize(nn::MiniLlama &model, int bits)
{
    int64_t payload = detail::fp16SideBytes(model, /*include_embedding=*/true);
    int64_t linear_payload = 0;
    for (auto &[name, linear] : model.allLinears()) {
        (void)name;
        int64_t n = linear->weight().data().numel();
        // Symmetric per-channel: n*bits payload + FP16 scale per row.
        linear_payload += n * bits / 8 + linear->outFeatures() * 2;
    }
    payload += linear_payload;
    return detail::makeSizeReport("LLM-QAT", payload, model.parameterCount(),
                      detail::linearBits(model, linear_payload), 16.0);
}

} // namespace eval
} // namespace edkm
