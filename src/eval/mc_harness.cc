#include "eval/mc_harness.h"

#include <algorithm>
#include <set>

#include "autograd/functional.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace eval {

namespace {

using data::Example;
using data::SyntheticCorpus;
using data::TaskFamily;

/** Generate distractor responses for @p ex. */
std::vector<std::string>
makeDistractors(const SyntheticCorpus &corpus, const Example &ex, Rng &rng,
                int count)
{
    std::set<std::string> taken{ex.response};
    std::vector<std::string> out;
    auto add_unique = [&](const std::string &cand) {
        if (taken.insert(cand).second) {
            out.push_back(cand);
        }
    };
    int guard = 0;
    while (static_cast<int>(out.size()) < count && ++guard < 500) {
        switch (ex.family) {
          case TaskFamily::kCopy:
          case TaskFamily::kComplete: {
            const auto &words = corpus.words();
            add_unique(words[static_cast<size_t>(rng.randint(
                           0, static_cast<int64_t>(words.size()) - 1))] +
                       "\n");
            break;
          }
          case TaskFamily::kLastLetter: {
            add_unique(std::string(1, static_cast<char>(
                                          'a' + rng.randint(0, 25))) +
                       "\n");
            break;
          }
          case TaskFamily::kArithEasy:
          case TaskFamily::kArithHard: {
            // Perturb the correct sum.
            int64_t correct = std::stoll(ex.response);
            int64_t delta = rng.randint(1, 5) *
                            (rng.bernoulli(0.5) ? 1 : -1);
            if (correct + delta >= 0) {
                add_unique(std::to_string(correct + delta) + "\n");
            }
            break;
          }
          case TaskFamily::kFactRecall: {
            static const char *colors[] = {"red",  "blue", "green",
                                           "gold", "gray", "pink",
                                           "teal", "brown"};
            add_unique(std::string(colors[rng.randint(0, 7)]) + "\n");
            break;
          }
          case TaskFamily::kMixed:
            panic("mixed family items are drawn from concrete families");
        }
    }
    return out;
}

} // namespace

std::vector<McTask>
buildSyntheticSuite(const SyntheticCorpus &corpus, int items_per_task,
                    uint64_t seed)
{
    struct Slot
    {
        const char *name;
        TaskFamily family;
        int fewshot;
    };
    // Benchmark-slot mapping (see DESIGN.md): common-sense tasks are
    // zero-shot, TriviaQA one-shot, MMLU-like five-shot (paper's
    // few-shot column).
    const Slot slots[] = {
        {"synth_piqa", TaskFamily::kCopy, 0},
        {"synth_hellaswag", TaskFamily::kComplete, 0},
        {"synth_winogrande", TaskFamily::kLastLetter, 0},
        {"synth_arc_e", TaskFamily::kArithEasy, 0},
        {"synth_arc_c", TaskFamily::kArithHard, 0},
        {"synth_triviaqa", TaskFamily::kFactRecall, 1},
        {"synth_mmlu", TaskFamily::kMixed, 5},
    };

    Rng rng(seed);
    std::vector<McTask> tasks;
    for (const Slot &slot : slots) {
        McTask task;
        task.name = slot.name;
        task.family = slot.family;
        task.fewshot = slot.fewshot;
        for (int i = 0; i < items_per_task; ++i) {
            Example ex = corpus.makeExample(slot.family, rng);
            McItem item;
            // Few-shot prefix: independent solved examples of the same
            // family.
            std::string prefix;
            for (int f = 0; f < slot.fewshot; ++f) {
                Example shot = corpus.makeExample(ex.family, rng);
                prefix += shot.prompt + shot.response;
            }
            item.context = prefix + ex.prompt;
            std::vector<std::string> distractors =
                makeDistractors(corpus, ex, rng, 3);
            // Assemble options with the answer at a random position.
            int answer_pos = static_cast<int>(
                rng.randint(0, static_cast<int64_t>(distractors.size())));
            for (int o = 0, d = 0;
                 o < static_cast<int>(distractors.size()) + 1; ++o) {
                if (o == answer_pos) {
                    item.options.push_back(ex.response);
                } else {
                    item.options.push_back(
                        distractors[static_cast<size_t>(d++)]);
                }
            }
            item.answer = answer_pos;
            task.items.push_back(std::move(item));
        }
        tasks.push_back(std::move(task));
    }
    return tasks;
}

double
scoreOption(nn::MiniLlama &model, const data::ByteTokenizer &tok,
            const std::string &context, const std::string &option)
{
    NoGradGuard ng;
    std::vector<int64_t> ctx = tok.encode(context);
    std::vector<int64_t> full = tok.encode(context + option);
    int64_t total = static_cast<int64_t>(full.size());
    EDKM_CHECK(total >= 2, "scoreOption: sequence too short");

    // Inputs predict the next token: feed full[0..L-2].
    std::vector<int64_t> inputs(full.begin(), full.end() - 1);
    Tensor tokens = Tensor::fromIndices(
        inputs, {1, static_cast<int64_t>(inputs.size())});
    Variable logits = model.forward(tokens); // [L-1, vocab]
    Tensor logp = logSoftmaxLastDim(logits.data());

    int64_t start = static_cast<int64_t>(ctx.size());
    double acc = 0.0;
    int64_t count = 0;
    for (int64_t pos = start; pos < total; ++pos) {
        // Token at `pos` is predicted by logits row `pos - 1`.
        acc += logp.at({pos - 1, full[static_cast<size_t>(pos)]});
        ++count;
    }
    return acc / static_cast<double>(std::max<int64_t>(count, 1));
}

double
evaluateTask(nn::MiniLlama &model, const data::ByteTokenizer &tok,
             const McTask &task)
{
    int correct = 0;
    for (const McItem &item : task.items) {
        double best = -1e30;
        int best_idx = 0;
        for (size_t o = 0; o < item.options.size(); ++o) {
            double s = scoreOption(model, tok, item.context,
                                   item.options[o]);
            if (s > best) {
                best = s;
                best_idx = static_cast<int>(o);
            }
        }
        if (best_idx == item.answer) {
            ++correct;
        }
    }
    return task.items.empty()
               ? 0.0
               : static_cast<double>(correct) /
                     static_cast<double>(task.items.size());
}

SuiteResult
evaluateSuite(nn::MiniLlama &model, const data::ByteTokenizer &tok,
              const std::vector<McTask> &tasks)
{
    SuiteResult result;
    double sum = 0.0;
    for (const McTask &task : tasks) {
        double acc = evaluateTask(model, tok, task);
        result.taskAccuracy.emplace_back(task.name, acc);
        sum += acc;
    }
    result.average =
        tasks.empty() ? 0.0 : sum / static_cast<double>(tasks.size());
    return result;
}

} // namespace eval
} // namespace edkm
