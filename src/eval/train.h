/**
 * @file
 * Language-model training loop (pretraining and fine-tuning driver).
 *
 * Uses the paper's optimizer settings by default: AdamW with lr 5e-5,
 * betas (0.9, 0.95), weight decay 0, global-norm gradient clipping 1.0.
 */

#ifndef EDKM_EVAL_TRAIN_H_
#define EDKM_EVAL_TRAIN_H_

#include <cstdint>
#include <vector>

#include "nn/adamw.h"
#include "nn/transformer.h"

namespace edkm {
namespace eval {

/** Training-run configuration. */
struct TrainConfig
{
    int steps = 200;
    int64_t batch = 8;
    int64_t seq = 64;
    float gradClip = 1.0f;
    uint64_t seed = 17;
    nn::AdamWConfig optimizer; ///< paper defaults
    int logEvery = 0;          ///< 0 = silent
};

/** Result of a training run. */
struct TrainReport
{
    std::vector<float> losses;
    float firstLoss = 0.0f;
    float lastLoss = 0.0f;
};

/** Train @p model on random windows of @p stream. */
TrainReport trainLm(nn::MiniLlama &model,
                    const std::vector<int64_t> &stream,
                    const TrainConfig &config);

/** Mean next-token loss of @p model over deterministic windows. */
float evalLoss(nn::MiniLlama &model, const std::vector<int64_t> &stream,
               int64_t batch, int64_t seq, int windows);

/** Perplexity (exp of evalLoss). */
float perplexity(nn::MiniLlama &model, const std::vector<int64_t> &stream,
                 int64_t batch, int64_t seq, int windows);

} // namespace eval
} // namespace edkm

#endif // EDKM_EVAL_TRAIN_H_
