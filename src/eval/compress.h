/**
 * @file
 * Legacy model-level compression entry points and size accounting.
 *
 * The apply* functions are thin shims over the unified compression API
 * (src/api/): they build a trivial CompressionPlan and run the scheme
 * through the CompressorRegistry. New code should use the API directly
 * — api::Session adds per-layer targeting, progress, cancellation, and
 * the whole-model ModelArtifact. The attach/freeze train-time
 * helpers remain for callers that drive the training loop themselves;
 * note api::Session owns the attached eDKM layers for you (no
 * keep-the-vector-alive footgun).
 *
 * SizeReport accounts one compressed model: actual bytes and the size
 * the same bits-per-weight would give LLaMA-7B (the paper's column).
 */

#ifndef EDKM_EVAL_COMPRESS_H_
#define EDKM_EVAL_COMPRESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/edkm.h"
#include "nn/transformer.h"
#include "quant/awq.h"
#include "quant/gptq.h"
#include "quant/smoothquant.h"

namespace edkm {
namespace eval {

/** Size accounting for one compressed model. */
struct SizeReport
{
    std::string scheme;
    int64_t payloadBytes = 0;  ///< all parameters, serialized format
    double bitsPerWeight = 0.0;
    double projectedGb7B = 0.0; ///< GiB for 6.74e9 params at that rate

    /**
     * One JSON object (`{"scheme": ..., "payload_bytes": ...,
     * "bits_per_weight": ..., "projected_gb_7b": ...}`) for the
     * BENCH_*.json machine-readable bench outputs.
     */
    std::string toJson() const;
};

/** Parameters LLaMA-7B has (for the projected size column). */
constexpr double kLlama7bParams = 6.74e9;

/** Of which input embedding + output head (the "embedding layers"). */
constexpr double kLlama7bEmbedParams = 2.62e8;

/** GiB a model of @p params at @p bits_per_weight occupies. */
double projectedGb(double bits_per_weight, double params = kLlama7bParams);

namespace detail {

/**
 * Shared size-accounting primitives (used by the legacy entry points
 * below and by the src/api compressor adapters, so both paths stay in
 * agreement).
 */

/** Non-Linear (norm/embedding) parameter bytes at FP16. */
int64_t fp16SideBytes(nn::MiniLlama &model, bool include_embedding);

/** Effective bits/weight of the Linear parameters under @p payload. */
double linearBits(nn::MiniLlama &model, int64_t linear_payload_bytes);

/**
 * @param linear_bits  effective bits/weight over Linear parameters
 * @param embed_bits   effective bits/weight over embedding parameters
 */
SizeReport makeSizeReport(const std::string &scheme, int64_t payload_bytes,
                          int64_t total_params, double linear_bits,
                          double embed_bits);

} // namespace detail

/**
 * Composition-corrected 7B projection: mini models are embedding-heavy
 * (30%+ of parameters vs ~4% at 7B), so projecting the blended rate
 * overstates the embedding contribution. This projects the *linear*
 * rate and the *embedding* rate onto LLaMA-7B's composition.
 */
double projectedGbComposed(double linear_bits_per_weight,
                           double embed_bits_per_weight);

/** Size of the uncompressed FP16 model. */
SizeReport fp16Size(nn::MiniLlama &model);

/**
 * RTN: round-to-nearest quantise every Linear weight in place.
 * Embeddings stay FP16 (matching the paper's baselines).
 */
SizeReport applyRtn(nn::MiniLlama &model, int bits, int64_t group_size);

/** GPTQ with activations captured from @p calib_tokens. */
SizeReport applyGptq(nn::MiniLlama &model, const Tensor &calib_tokens,
                     const quant::GptqConfig &config);

/** AWQ with activations captured from @p calib_tokens. */
SizeReport applyAwq(nn::MiniLlama &model, const Tensor &calib_tokens,
                    const quant::AwqConfig &config);

/** SmoothQuant (W8A8-style; weight side applied in place). */
SizeReport applySmoothQuant(nn::MiniLlama &model,
                            const Tensor &calib_tokens,
                            const quant::SmoothQuantConfig &config);

/**
 * Attach eDKM train-time clustering to every Linear (weight-transform
 * hook). Returns the layers so callers can inspect reports and later
 * freeze. Keep the vector alive while training — dropping it dangles
 * the installed weight transforms. Prefer api::Session with an "edkm"
 * plan, which owns the layers for the whole run.
 */
std::vector<std::shared_ptr<EdkmLayer>> attachEdkm(
    nn::MiniLlama &model, const EdkmConfig &config,
    std::shared_ptr<LearnerGroup> group = nullptr);

/** Attach LLM-QAT fake-quant to every Linear. */
void attachQat(nn::MiniLlama &model, int bits, int64_t group_size);

/** Remove any weight transforms (model becomes plain FP again). */
void clearTransforms(nn::MiniLlama &model);

/**
 * Freeze eDKM: palettize every Linear weight with its layer's final
 * centroids, install the dequantised weights, and account the size
 * (Linear weights at cluster bits; embeddings palettized at
 * @p embedding_bits, the paper uses 8).
 */
SizeReport freezeEdkm(nn::MiniLlama &model,
                      const std::vector<std::shared_ptr<EdkmLayer>> &layers,
                      int embedding_bits = 8);

/** Size for a QAT-trained model (symmetric per-channel storage). */
SizeReport qatSize(nn::MiniLlama &model, int bits);

} // namespace eval
} // namespace edkm

#endif // EDKM_EVAL_COMPRESS_H_
