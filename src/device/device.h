/**
 * @file
 * Simulated device model.
 *
 * The paper's experiments run on 8x A100-80GB GPUs plus host CPU memory.
 * eDKM's contribution is a memory/traffic optimisation, so what the
 * reproduction must get right is *where bytes live* and *what crosses the
 * bus* — not the arithmetic throughput of real silicon. This module
 * provides named devices with byte-accurate accounting:
 *
 *  - MemoryStats per device (current / peak bytes, allocation counts),
 *  - a TransferLedger counting cross-device transactions and bytes,
 *  - a CostModel converting compute flops and transfer bytes into
 *    simulated seconds (documented constants; only *ratios* are meaningful).
 *
 * See DESIGN.md section 2 for the substitution rationale.
 */

#ifndef EDKM_DEVICE_DEVICE_H_
#define EDKM_DEVICE_DEVICE_H_

#include <cstdint>
#include <string>

namespace edkm {

/** Kind of simulated device. */
enum class DeviceType : uint8_t { kCpu = 0, kGpu = 1 };

/** A named device: CPU (one) or GPU (indexed, simulating learners). */
struct Device
{
    DeviceType type = DeviceType::kCpu;
    int index = 0;

    constexpr Device() = default;
    constexpr Device(DeviceType t, int i) : type(t), index(i) {}

    /** The host CPU device. */
    static constexpr Device
    cpu()
    {
        return Device(DeviceType::kCpu, 0);
    }

    /** Simulated GPU @p i. */
    static constexpr Device
    gpu(int i = 0)
    {
        return Device(DeviceType::kGpu, i);
    }

    bool
    operator==(const Device &o) const
    {
        return type == o.type && index == o.index;
    }
    bool operator!=(const Device &o) const { return !(*this == o); }

    bool isCpu() const { return type == DeviceType::kCpu; }
    bool isGpu() const { return type == DeviceType::kGpu; }

    /** Human-readable name, e.g. "cpu" or "gpu:2". */
    std::string toString() const;

    /** Dense key for table lookups inside DeviceManager. */
    int key() const { return isCpu() ? 0 : 1 + index; }
};

} // namespace edkm

#endif // EDKM_DEVICE_DEVICE_H_
