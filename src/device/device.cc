#include "device/device.h"

namespace edkm {

std::string
Device::toString() const
{
    if (isCpu()) {
        return "cpu";
    }
    return "gpu:" + std::to_string(index);
}

} // namespace edkm
