/**
 * @file
 * Byte-accurate memory accounting and cross-device transfer ledger for
 * the simulated devices.
 */

#ifndef EDKM_DEVICE_DEVICE_MANAGER_H_
#define EDKM_DEVICE_DEVICE_MANAGER_H_

#include <cstdint>
#include <vector>

#include "device/device.h"
#include "util/thread_annotations.h"

namespace edkm {

/** Running memory statistics for one device. */
struct MemoryStats
{
    int64_t currentBytes = 0; ///< bytes currently allocated
    int64_t peakBytes = 0;    ///< high-water mark since last reset
    int64_t totalAllocs = 0;  ///< number of allocations
    int64_t totalFrees = 0;   ///< number of frees
    int64_t capacityBytes = 0; ///< 0 = unlimited; else simulated DRAM size
    bool capacityExceeded = false; ///< peak ever crossed capacity
};

/** Aggregate counters for traffic between CPU and GPUs. */
struct TransferLedger
{
    int64_t d2hTransactions = 0; ///< GPU -> CPU copies
    int64_t d2hBytes = 0;
    int64_t h2dTransactions = 0; ///< CPU -> GPU copies
    int64_t h2dBytes = 0;
    int64_t d2dTransactions = 0; ///< GPU -> GPU copies
    int64_t d2dBytes = 0;

    int64_t
    totalTransactions() const
    {
        return d2hTransactions + h2dTransactions + d2dTransactions;
    }
    int64_t totalBytes() const { return d2hBytes + h2dBytes + d2dBytes; }
};

/**
 * Simulated time model. Constants approximate one PCIe-4.0-attached
 * accelerator; absolute values are not calibrated to the paper's testbed,
 * only the relative costs matter (see DESIGN.md).
 */
struct CostModel
{
    double gpuFlopsPerSec = 20e12;     ///< sustained simulated GPU flops
    double cpuFlopsPerSec = 200e9;     ///< sustained simulated CPU flops
    double busBytesPerSec = 25e9;      ///< PCIe-like bandwidth
    double transferLatencySec = 10e-6; ///< per-transaction fixed cost
    double collectiveLatencySec = 20e-6; ///< per all-gather/reduce call

    /** Seconds to move @p bytes in one transaction. */
    double
    transferSeconds(int64_t bytes) const
    {
        return transferLatencySec +
               static_cast<double>(bytes) / busBytesPerSec;
    }

    /** Seconds to execute @p flops on @p dev. */
    double
    computeSeconds(double flops, Device dev) const
    {
        return flops / (dev.isGpu() ? gpuFlopsPerSec : cpuFlopsPerSec);
    }
};

/**
 * Process-wide registry of simulated devices.
 *
 * Storage allocation/free and cross-device copies report here; benches and
 * tests read the statistics. Thread-safe. Reset between experiments with
 * resetStats().
 */
class DeviceManager
{
  public:
    /** @return the singleton instance. */
    static DeviceManager &instance();

    /** Record an allocation of @p bytes on @p dev. */
    void recordAlloc(Device dev, int64_t bytes);

    /** Record a free of @p bytes on @p dev. */
    void recordFree(Device dev, int64_t bytes);

    /** Record a copy of @p bytes from @p src to @p dst. */
    void recordTransfer(Device src, Device dst, int64_t bytes);

    /** Record simulated compute time (seconds). */
    void recordComputeSeconds(double secs);

    /** @return a snapshot of stats for @p dev. */
    MemoryStats stats(Device dev) const;

    /** @return snapshot of the transfer ledger. */
    TransferLedger ledger() const;

    /** Total simulated seconds (compute + transfers + collectives). */
    double simulatedSeconds() const;

    /** Record extra simulated seconds (e.g. collective latency). */
    void recordExtraSeconds(double secs);

    /** Set the simulated DRAM capacity of @p dev (0 = unlimited). */
    void setCapacity(Device dev, int64_t bytes);

    /** Mutable cost model (adjust before an experiment). */
    CostModel &costModel() { return cost_model_; }
    const CostModel &costModel() const { return cost_model_; }

    /**
     * Reset counters: zeroes peaks/ledger/sim-time. Current bytes are
     * preserved (live allocations remain live); peaks restart from the
     * current level.
     */
    void resetStats();

    /** Reset everything including capacities (for test isolation). */
    void resetAll();

  private:
    DeviceManager() = default;

    /** Slot for @p dev, growing the table on first sight. Callers hold
     *  mutex_ (enforced: the returned reference aliases guarded
     *  state). */
    MemoryStats &statsFor(Device dev) EDKM_REQUIRES(mutex_);

    mutable util::Mutex mutex_;
    std::vector<MemoryStats> per_device_ EDKM_GUARDED_BY(mutex_);
    TransferLedger ledger_ EDKM_GUARDED_BY(mutex_);
    /** Deliberately NOT guarded: costModel() hands out a bare mutable
     *  reference under the documented set-up-before-the-experiment
     *  contract (no recording runs concurrently with tuning). Reads on
     *  the recording paths happen under mutex_ anyway. */
    CostModel cost_model_;
    double compute_seconds_ EDKM_GUARDED_BY(mutex_) = 0.0;
    double extra_seconds_ EDKM_GUARDED_BY(mutex_) = 0.0;
    double transfer_seconds_ EDKM_GUARDED_BY(mutex_) = 0.0;
};

/**
 * RAII helper that snapshots device stats on construction and exposes
 * deltas; used by benches to measure one phase in isolation.
 */
class StatsScope
{
  public:
    explicit StatsScope(Device dev);

    /** Peak bytes on the device since construction. */
    int64_t peakDelta() const;

    /** Bytes currently allocated minus at construction. */
    int64_t currentDelta() const;

  private:
    Device dev_;
    int64_t start_current_ = 0;
};

/**
 * Charge @p flops of simulated compute on @p dev through the singleton's
 * cost model — the one accounting entry point shared by the tensor ops,
 * the clustering core and the fused kernel layer.
 */
void chargeFlops(double flops, Device dev);

} // namespace edkm

#endif // EDKM_DEVICE_DEVICE_MANAGER_H_
