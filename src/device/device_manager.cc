#include "device/device_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace edkm {

DeviceManager &
DeviceManager::instance()
{
    static DeviceManager mgr;
    return mgr;
}

MemoryStats &
DeviceManager::statsFor(Device dev)
{
    size_t key = static_cast<size_t>(dev.key());
    if (per_device_.size() <= key) {
        per_device_.resize(key + 1);
    }
    return per_device_[key];
}

void
DeviceManager::recordAlloc(Device dev, int64_t bytes)
{
    EDKM_ASSERT(bytes >= 0, "negative allocation");
    util::MutexLock lock(mutex_);
    MemoryStats &s = statsFor(dev);
    s.currentBytes += bytes;
    s.peakBytes = std::max(s.peakBytes, s.currentBytes);
    s.totalAllocs += 1;
    if (s.capacityBytes > 0 && s.currentBytes > s.capacityBytes) {
        s.capacityExceeded = true;
    }
}

void
DeviceManager::recordFree(Device dev, int64_t bytes)
{
    util::MutexLock lock(mutex_);
    MemoryStats &s = statsFor(dev);
    s.currentBytes -= bytes;
    s.totalFrees += 1;
    EDKM_ASSERT(s.currentBytes >= 0,
                "device ", dev.toString(), " freed more than allocated");
}

void
DeviceManager::recordTransfer(Device src, Device dst, int64_t bytes)
{
    util::MutexLock lock(mutex_);
    if (src.isGpu() && dst.isCpu()) {
        ledger_.d2hTransactions += 1;
        ledger_.d2hBytes += bytes;
    } else if (src.isCpu() && dst.isGpu()) {
        ledger_.h2dTransactions += 1;
        ledger_.h2dBytes += bytes;
    } else if (src.isGpu() && dst.isGpu()) {
        ledger_.d2dTransactions += 1;
        ledger_.d2dBytes += bytes;
    }
    // CPU->CPU copies are not bus traffic; ignored by the ledger.
    if (src != dst) {
        transfer_seconds_ += cost_model_.transferSeconds(bytes);
    }
}

void
DeviceManager::recordComputeSeconds(double secs)
{
    util::MutexLock lock(mutex_);
    compute_seconds_ += secs;
}

void
DeviceManager::recordExtraSeconds(double secs)
{
    util::MutexLock lock(mutex_);
    extra_seconds_ += secs;
}

MemoryStats
DeviceManager::stats(Device dev) const
{
    util::MutexLock lock(mutex_);
    size_t key = static_cast<size_t>(dev.key());
    if (per_device_.size() <= key) {
        return MemoryStats{};
    }
    return per_device_[key];
}

TransferLedger
DeviceManager::ledger() const
{
    util::MutexLock lock(mutex_);
    return ledger_;
}

double
DeviceManager::simulatedSeconds() const
{
    util::MutexLock lock(mutex_);
    return compute_seconds_ + transfer_seconds_ + extra_seconds_;
}

void
DeviceManager::setCapacity(Device dev, int64_t bytes)
{
    util::MutexLock lock(mutex_);
    MemoryStats &s = statsFor(dev);
    s.capacityBytes = bytes;
    s.capacityExceeded =
        bytes > 0 && s.currentBytes > bytes;
}

void
DeviceManager::resetStats()
{
    util::MutexLock lock(mutex_);
    for (MemoryStats &s : per_device_) {
        s.peakBytes = s.currentBytes;
        s.totalAllocs = 0;
        s.totalFrees = 0;
        s.capacityExceeded =
            s.capacityBytes > 0 && s.currentBytes > s.capacityBytes;
    }
    ledger_ = TransferLedger{};
    compute_seconds_ = 0.0;
    transfer_seconds_ = 0.0;
    extra_seconds_ = 0.0;
}

void
DeviceManager::resetAll()
{
    util::MutexLock lock(mutex_);
    for (MemoryStats &s : per_device_) {
        s.peakBytes = s.currentBytes;
        s.totalAllocs = 0;
        s.totalFrees = 0;
        s.capacityBytes = 0;
        s.capacityExceeded = false;
    }
    ledger_ = TransferLedger{};
    compute_seconds_ = 0.0;
    transfer_seconds_ = 0.0;
    extra_seconds_ = 0.0;
}

StatsScope::StatsScope(Device dev) : dev_(dev)
{
    DeviceManager &mgr = DeviceManager::instance();
    start_current_ = mgr.stats(dev).currentBytes;
    // Restart the peak from the current level so peakDelta() measures
    // only this scope.
    mgr.resetStats();
}

int64_t
StatsScope::peakDelta() const
{
    return DeviceManager::instance().stats(dev_).peakBytes - start_current_;
}

int64_t
StatsScope::currentDelta() const
{
    return DeviceManager::instance().stats(dev_).currentBytes -
           start_current_;
}

void
chargeFlops(double flops, Device dev)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.recordComputeSeconds(mgr.costModel().computeSeconds(flops, dev));
}

} // namespace edkm
