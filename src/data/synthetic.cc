#include "data/synthetic.h"

#include <algorithm>

#include "util/logging.h"

namespace edkm {
namespace data {

namespace {

const char *kConsonants = "bcdfgklmnprstvz";
const char *kVowels = "aeiou";
const char *kColors[] = {"red",  "blue", "green", "gold",
                         "gray", "pink", "teal",  "brown"};

std::string
makeWord(Rng &rng, int syllables)
{
    std::string w;
    for (int s = 0; s < syllables; ++s) {
        w.push_back(kConsonants[rng.randint(0, 14)]);
        w.push_back(kVowels[rng.randint(0, 4)]);
    }
    return w;
}

} // namespace

SyntheticCorpus::SyntheticCorpus(uint64_t seed, int vocab_words)
{
    Rng rng(seed);
    // Distinct word table.
    while (static_cast<int>(words_.size()) < vocab_words) {
        std::string w = makeWord(rng, 2 + static_cast<int>(rng.randint(0, 1)));
        if (std::find(words_.begin(), words_.end(), w) == words_.end()) {
            words_.push_back(w);
        }
    }
    // Fixed fact table: entity -> color.
    for (int i = 0; i < 16; ++i) {
        facts_.emplace_back(words_[static_cast<size_t>(i)],
                            kColors[rng.randint(0, 7)]);
    }
}

Example
SyntheticCorpus::makeExample(TaskFamily family, Rng &rng) const
{
    if (family == TaskFamily::kMixed) {
        family = static_cast<TaskFamily>(rng.randint(0, 5));
    }
    Example ex;
    ex.family = family;
    switch (family) {
      case TaskFamily::kCopy: {
        const std::string &w =
            words_[static_cast<size_t>(rng.randint(0, static_cast<int64_t>(
                                                          words_.size()) -
                                                          1))];
        ex.prompt = "Instruction: repeat the word " + w + "\nResponse: ";
        ex.response = w + "\n";
        break;
      }
      case TaskFamily::kComplete: {
        // Fixed idioms: "<w1> goes with <w2>" where w2 = next word in
        // the table (a learnable deterministic pairing).
        int64_t i = rng.randint(0, static_cast<int64_t>(words_.size()) - 2);
        ex.prompt = "Instruction: complete: " +
                    words_[static_cast<size_t>(i)] + " goes with" +
                    "\nResponse: ";
        ex.response = words_[static_cast<size_t>(i + 1)] + "\n";
        break;
      }
      case TaskFamily::kLastLetter: {
        const std::string &w =
            words_[static_cast<size_t>(rng.randint(0, static_cast<int64_t>(
                                                          words_.size()) -
                                                          1))];
        ex.prompt =
            "Instruction: last letter of " + w + "\nResponse: ";
        ex.response = std::string(1, w.back()) + "\n";
        break;
      }
      case TaskFamily::kArithEasy: {
        int64_t a = rng.randint(0, 4), b = rng.randint(0, 4);
        ex.prompt = "Instruction: add " + std::to_string(a) + " and " +
                    std::to_string(b) + "\nResponse: ";
        ex.response = std::to_string(a + b) + "\n";
        break;
      }
      case TaskFamily::kArithHard: {
        int64_t a = rng.randint(10, 49), b = rng.randint(10, 49);
        ex.prompt = "Instruction: add " + std::to_string(a) + " and " +
                    std::to_string(b) + "\nResponse: ";
        ex.response = std::to_string(a + b) + "\n";
        break;
      }
      case TaskFamily::kFactRecall: {
        const auto &[entity, color] = facts_[static_cast<size_t>(
            rng.randint(0, static_cast<int64_t>(facts_.size()) - 1))];
        ex.prompt =
            "Instruction: color of " + entity + "\nResponse: ";
        ex.response = color + std::string("\n");
        break;
      }
      case TaskFamily::kMixed:
        panic("unreachable");
    }
    return ex;
}

std::vector<Example>
SyntheticCorpus::generate(int n, uint64_t seed) const
{
    Rng rng(seed);
    std::vector<Example> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        out.push_back(makeExample(TaskFamily::kMixed, rng));
    }
    return out;
}

std::vector<int64_t>
SyntheticCorpus::buildStream(const std::vector<Example> &examples,
                             const ByteTokenizer &tok) const
{
    std::vector<int64_t> stream;
    for (const Example &ex : examples) {
        std::vector<int64_t> t = tok.encode(ex.prompt + ex.response);
        stream.insert(stream.end(), t.begin(), t.end());
    }
    return stream;
}

LmBatch
SyntheticCorpus::sampleBatch(const std::vector<int64_t> &stream,
                             int64_t batch, int64_t seq, Rng &rng)
{
    EDKM_CHECK(static_cast<int64_t>(stream.size()) > seq + 1,
               "sampleBatch: stream shorter than sequence length");
    LmBatch out;
    std::vector<int64_t> toks(static_cast<size_t>(batch * seq));
    std::vector<int64_t> tgts(static_cast<size_t>(batch * seq));
    for (int64_t b = 0; b < batch; ++b) {
        int64_t start = rng.randint(
            0, static_cast<int64_t>(stream.size()) - seq - 2);
        for (int64_t s = 0; s < seq; ++s) {
            toks[static_cast<size_t>(b * seq + s)] =
                stream[static_cast<size_t>(start + s)];
            tgts[static_cast<size_t>(b * seq + s)] =
                stream[static_cast<size_t>(start + s + 1)];
        }
    }
    out.tokens = Tensor::fromIndices(toks, {batch, seq});
    out.targets = Tensor::fromIndices(tgts, {batch * seq});
    return out;
}

} // namespace data
} // namespace edkm
