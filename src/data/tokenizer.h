/**
 * @file
 * Byte-level tokenizer: every byte is a token (vocab 256). Keeps the
 * data pipeline dependency-free while exercising the same LM mechanics
 * (sequence modelling, likelihood scoring) as a subword tokenizer.
 */

#ifndef EDKM_DATA_TOKENIZER_H_
#define EDKM_DATA_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace edkm {
namespace data {

/** Stateless byte <-> token mapping. */
class ByteTokenizer
{
  public:
    static constexpr int64_t kVocabSize = 256;

    /** UTF-8/ASCII bytes to token ids. */
    std::vector<int64_t>
    encode(const std::string &text) const
    {
        std::vector<int64_t> out;
        out.reserve(text.size());
        for (unsigned char c : text) {
            out.push_back(static_cast<int64_t>(c));
        }
        return out;
    }

    /** Token ids back to bytes. */
    std::string
    decode(const std::vector<int64_t> &tokens) const
    {
        std::string out;
        out.reserve(tokens.size());
        for (int64_t t : tokens) {
            out.push_back(static_cast<char>(t & 0xff));
        }
        return out;
    }
};

} // namespace data
} // namespace edkm

#endif // EDKM_DATA_TOKENIZER_H_
