/**
 * @file
 * Synthetic text corpora: the offline stand-ins for LLaMA's pretraining
 * data and the Alpaca instruction set (see DESIGN.md substitutions).
 *
 * The instruction corpus is generated from seven task families (copy,
 * reverse, uppercase, easy/hard arithmetic, letter selection, fact
 * recall) over a seeded vocabulary, giving a learnable but non-trivial
 * signal; the evaluation suite (src/eval) draws held-out items from the
 * same families so compression-induced accuracy loss is measurable.
 */

#ifndef EDKM_DATA_SYNTHETIC_H_
#define EDKM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/tokenizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace edkm {
namespace data {

/** The task families shared by the corpus and the evaluation suite. */
enum class TaskFamily {
    kCopy = 0,      ///< repeat a word            (~PIQA difficulty slot)
    kComplete,      ///< finish a known sentence  (~HellaSwag slot)
    kLastLetter,    ///< pick a letter            (~WinoGrande slot)
    kArithEasy,     ///< 1-digit addition         (~ARC-e slot)
    kArithHard,     ///< 2-digit addition         (~ARC-c slot)
    kFactRecall,    ///< attribute lookup         (~TriviaQA slot)
    kMixed,         ///< mixture of all           (~MMLU slot)
};

/** Number of distinct families. */
constexpr int kNumTaskFamilies = 7;

/** One instruction/response pair. */
struct Example
{
    std::string prompt;   ///< "Instruction: ...\nResponse: "
    std::string response; ///< completion (answer text + newline)
    TaskFamily family;
};

/** A [B,S] token batch with shifted next-token targets. */
struct LmBatch
{
    Tensor tokens;  ///< kI64 [B, S]
    Tensor targets; ///< kI64 [B*S] (next token per position)
};

/** Seeded generator of synthetic instruction data. */
class SyntheticCorpus
{
  public:
    /**
     * @param seed       generation seed (fixed word/fact tables derive
     *                   from it).
     * @param vocab_words size of the synthetic word list.
     */
    explicit SyntheticCorpus(uint64_t seed = 7, int vocab_words = 48);

    /** Draw one example of @p family (uniform family if kMixed). */
    Example makeExample(TaskFamily family, Rng &rng) const;

    /** Generate a corpus of @p n examples over all families. */
    std::vector<Example> generate(int n, uint64_t seed) const;

    /** Concatenate examples into a token stream for LM training. */
    std::vector<int64_t> buildStream(const std::vector<Example> &examples,
                                     const ByteTokenizer &tok) const;

    /** Random [B,S] window batch from @p stream. */
    static LmBatch sampleBatch(const std::vector<int64_t> &stream,
                               int64_t batch, int64_t seq, Rng &rng);

    /** The word table (exposed for the evaluation suite). */
    const std::vector<std::string> &words() const { return words_; }

    /** Fact table: entity -> attribute (exposed for evaluation). */
    const std::vector<std::pair<std::string, std::string>> &
    facts() const
    {
        return facts_;
    }

  private:
    std::vector<std::string> words_;
    std::vector<std::pair<std::string, std::string>> facts_;
};

} // namespace data
} // namespace edkm

#endif // EDKM_DATA_SYNTHETIC_H_
