#!/usr/bin/env python3
"""Determinism contract linter.

Scans C++ sources for constructs that break the repo's bit-identity
contract (thread-count/backend/path-invariant results). Rules live in
tools/lint_rules.toml; most are line regexes, plus one structural rule
that flags iteration over unordered containers when the loop body feeds
accumulation or serialization.

Per-site suppression::

    // lint:allow(<rule-id>) <reason — required>

on the offending line, or anywhere in the contiguous ``//`` comment
block directly above it. Suppressions without a reason are ignored (the
finding stands). Every honoured suppression is counted and reported so
the escape hatch stays visible.

Exit status: 0 when no unsuppressed findings, 1 otherwise, 2 on usage
errors. The final line is machine-readable::

    determinism-lint: files=<F> findings=<N> suppressed=<M>
"""

import argparse
import pathlib
import re
import sys
import tomllib

ALLOW_RE = re.compile(r"lint:allow\(([A-Za-z0-9_-]+)\)[ \t]*(.*)")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Suppression:
    __slots__ = ("path", "line", "rule", "reason")

    def __init__(self, path, line, rule, reason):
        self.path = path
        self.line = line
        self.rule = rule
        self.reason = reason


def load_rules(path):
    with open(path, "rb") as f:
        cfg = tomllib.load(f)
    if "rule" not in cfg or not cfg["rule"]:
        raise SystemExit(f"error: no [[rule]] entries in {path}")
    return cfg


def blank_comments(text):
    """Blank comment and string-literal bodies, preserving offsets.

    Rules must not fire on prose (a log message mentioning "rand(" is
    not a call). Used for matching only — suppression markers are read
    from the original text.
    """
    out = list(text)
    i = 0
    n = len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
        elif state == "line":
            if c == "\n":
                state = "code"
            else:
                out[i] = " "
        elif state == "block":
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = "code"
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state == "str":
            if c == "\\":
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "code"
            elif c != "\n":
                out[i] = " "
        elif state == "chr":
            if c == "\\":
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'":
                state = "code"
            elif c != "\n":
                out[i] = " "
        i += 1
    return "".join(out)


def find_allow(raw_lines, idx, rule_id):
    """Look for lint:allow(rule_id) on line idx or the comment block above.

    Returns (found, reason). ``idx`` is 0-based.
    """

    def check(line):
        for m in ALLOW_RE.finditer(line):
            if m.group(1) == rule_id:
                return True, m.group(2).strip()
        return False, ""

    found, reason = check(raw_lines[idx])
    if found:
        return True, reason
    j = idx - 1
    while j >= 0 and raw_lines[j].lstrip().startswith("//"):
        found, reason = check(raw_lines[j])
        if found:
            return True, reason
        j -= 1
    return False, ""


def match_angles(text, open_idx):
    """Index just past the ``>`` closing the ``<`` at open_idx, or -1."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1  # not a template argument list after all
        i += 1
    return -1


def match_braces(text, open_idx):
    """Index just past the ``}`` closing the ``{`` at open_idx, or -1."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def match_parens(text, open_idx):
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def unordered_names(code, containers):
    """Identifiers declared with one of the unordered container templates."""
    names = set()
    decl_re = re.compile(
        "(?:" + "|".join(re.escape(c) for c in containers) + r")\s*<"
    )
    for m in decl_re.finditer(code):
        end = match_angles(code, m.end() - 1)
        if end < 0:
            continue
        tail = code[end:end + 160]
        tm = re.match(r"\s*(?:&|\*|&&)?\s*([A-Za-z_]\w*)", tail)
        if tm and tm.group(1) not in ("const", "return", "operator"):
            names.add(tm.group(1))
    return names


def loop_sites(code):
    """Yield (line_idx_0based, iterated_name, body_text) for each for-loop.

    Covers range-for (``for (... : expr)``) and iterator loops
    (``for (auto it = expr.begin(); ...)``). ``iterated_name`` is the
    last identifier component of the iterated expression.
    """
    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = m.end() - 1
        close = match_parens(code, open_paren)
        if close < 0:
            continue
        header = code[open_paren + 1:close - 1]
        name = None
        rm = re.search(
            r":\s*(?:this\s*->\s*)?((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*"
            r"[A-Za-z_]\w*)\s*$",
            header,
        )
        if rm and ";" not in header:
            name = re.split(r"\.|->", rm.group(1))[-1].strip()
        else:
            im = re.search(
                r"=\s*(?:this\s*->\s*)?((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*"
                r"[A-Za-z_]\w*)\s*\.\s*(?:c?begin)\s*\(",
                header,
            )
            if im:
                name = re.split(r"\.|->", im.group(1))[-1].strip()
        if not name:
            continue
        bm = re.match(r"\s*\{", code[close:])
        if bm:
            body_open = close + bm.end() - 1
            body_end = match_braces(code, body_open)
            body = code[body_open:body_end] if body_end > 0 else ""
        else:
            semi = code.find(";", close)
            body = code[close:semi + 1] if semi >= 0 else ""
        line_idx = code.count("\n", 0, m.start())
        yield line_idx, name, body


def rule_exempt(rule, rel):
    for ap in rule.get("allow_paths", []):
        if re.search(ap, rel):
            return True
    return False


def scan_file(path, rel, cfg, findings, suppressions):
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"warning: cannot read {rel}: {e}", file=sys.stderr)
        return
    raw_lines = raw.split("\n")
    code = blank_comments(raw)
    code_lines = code.split("\n")

    def record(idx0, rule_id, message):
        found, reason = find_allow(raw_lines, idx0, rule_id)
        if found and reason:
            suppressions.append(
                Suppression(rel, idx0 + 1, rule_id, reason))
            return
        if found and not reason:
            message += " [lint:allow without a reason is ignored]"
        findings.append(Finding(rel, idx0 + 1, rule_id, message))

    for rule in cfg["rule"]:
        if rule_exempt(rule, rel):
            continue
        marker = rule.get("allow_if_file_contains")
        if marker and marker in raw:
            continue
        if rule.get("structural") == "unordered-iteration":
            names = unordered_names(code, rule["containers"])
            # Members of class X live in X.h while the loops live in
            # X.cc: fold the paired header's declarations in.
            if path.suffix in (".cc", ".cpp"):
                for hdr_ext in (".h", ".hpp"):
                    hdr = path.with_suffix(hdr_ext)
                    if hdr.is_file():
                        try:
                            htext = blank_comments(hdr.read_text(
                                encoding="utf-8", errors="replace"))
                        except OSError:
                            continue
                        names |= unordered_names(
                            htext, rule["containers"])
            if not names:
                continue
            signal_re = re.compile("|".join(rule["signals"]))
            for idx0, name, body in loop_sites(code):
                if name in names and signal_re.search(body):
                    record(
                        idx0, rule["id"],
                        f"iteration over unordered container '{name}' "
                        "feeds order-sensitive work "
                        f"({rule['description']})")
            continue
        pats = [re.compile(p) for p in rule.get("patterns", [])]
        for idx0, line in enumerate(code_lines):
            for pat in pats:
                m = pat.search(line)
                if m:
                    record(
                        idx0, rule["id"],
                        f"'{m.group(0).strip()}' — {rule['description']}")
                    break


def gather(paths, exts):
    files = []
    for p in paths:
        path = pathlib.Path(p)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            for f in sorted(path.rglob("*")):
                if f.is_file() and f.suffix in exts:
                    files.append(f)
        else:
            raise SystemExit(f"error: no such path: {p}")
    return files


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="bit-identity contract linter (see tools/lint_rules.toml)")
    ap.add_argument("paths", nargs="+", help="files or directories to scan")
    ap.add_argument(
        "--rules",
        default=str(pathlib.Path(__file__).parent / "lint_rules.toml"))
    ap.add_argument(
        "--show-suppressed", action="store_true",
        help="print each honoured suppression with its reason")
    ap.add_argument(
        "--exclude", action="append", default=[], metavar="REGEX",
        help="skip files whose path matches (e.g. the lint test fixtures)")
    args = ap.parse_args(argv)

    cfg = load_rules(args.rules)
    exts = set(cfg.get("lint", {}).get("extensions",
                                       [".h", ".cc", ".cpp", ".hpp"]))
    files = gather(args.paths, exts)
    if args.exclude:
        ex = [re.compile(p) for p in args.exclude]
        files = [f for f in files
                 if not any(p.search(str(f)) for p in ex)]

    findings = []
    suppressions = []
    cwd = pathlib.Path.cwd()
    for f in files:
        try:
            rel = str(f.resolve().relative_to(cwd))
        except ValueError:
            rel = str(f)
        scan_file(f, rel, cfg, findings, suppressions)

    for fi in findings:
        print(fi.render())
    if args.show_suppressed:
        for s in suppressions:
            print(f"{s.path}:{s.line}: [{s.rule}] suppressed: {s.reason}")
    print(f"determinism-lint: files={len(files)} findings={len(findings)} "
          f"suppressed={len(suppressions)}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
