#!/usr/bin/env python3
"""Self-test of tools/determinism_lint.py against the fixture corpus.

Each fixture encodes exactly one rule scenario; this runner asserts the
precise finding count, the rule ids involved, and the suppression count
for every one of them. Run from anywhere::

    python3 tools/tests/run_lint_tests.py
"""

import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
LINTER = HERE.parent / "determinism_lint.py"
FIXTURES = HERE / "fixtures"

SUMMARY_RE = re.compile(
    r"determinism-lint: files=(\d+) findings=(\d+) suppressed=(\d+)")

# fixture -> (expected findings, expected suppressions, rule ids that
# must each appear in at least one finding line)
CASES = {
    "raw_rng_violation.cc": (3, 0, ["raw-rng"]),
    "raw_rng_clean.cc": (0, 0, []),
    "fast_math_violation.cc": (1, 0, ["fast-math"]),
    "fast_math_optin_clean.cc": (0, 0, []),
    "parallel_numerics_violation.cc": (2, 0, ["parallel-numerics"]),
    "parallel_numerics_clean.cc": (0, 0, []),
    "raw_thread_violation.cc": (1, 0, ["raw-thread"]),
    "raw_thread_clean.cc": (0, 0, []),
    "raw_fork_violation.cc": (1, 0, ["raw-thread"]),
    "raw_fork_suppressed.cc": (0, 1, []),
    "unordered_iteration_violation.cc": (2, 0, ["unordered-iteration"]),
    "unordered_iteration_clean.cc": (0, 0, []),
    "suppressed_ok.cc": (0, 1, []),
    "suppressed_no_reason.cc": (1, 0, ["raw-thread"]),
    "paired_header.cc": (1, 0, ["unordered-iteration"]),
    "paired_header.h": (0, 0, []),
}


def run_one(name, want_findings, want_suppressed, want_rules):
    target = FIXTURES / name
    proc = subprocess.run(
        [sys.executable, str(LINTER), str(target)],
        capture_output=True, text=True)
    out = proc.stdout
    m = SUMMARY_RE.search(out)
    errors = []
    if not m:
        errors.append(f"no summary line in output:\n{out}\n{proc.stderr}")
        return errors
    findings, suppressed = int(m.group(2)), int(m.group(3))
    if findings != want_findings:
        errors.append(
            f"findings={findings}, want {want_findings}\n{out}")
    if suppressed != want_suppressed:
        errors.append(
            f"suppressed={suppressed}, want {want_suppressed}\n{out}")
    for rule in want_rules:
        if f"[{rule}]" not in out:
            errors.append(f"expected a [{rule}] finding\n{out}")
    want_exit = 1 if want_findings else 0
    if proc.returncode != want_exit:
        errors.append(f"exit={proc.returncode}, want {want_exit}")
    return errors


def main():
    failures = 0
    for name, (nf, ns, rules) in sorted(CASES.items()):
        errors = run_one(name, nf, ns, rules)
        if errors:
            failures += 1
            print(f"FAIL {name}")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"ok   {name}")

    # The whole fixture directory in one invocation: totals must add up
    # (also exercises directory recursion). paired_header.h contributes
    # its finding once when scanned as the .cc's sibling — scanning the
    # directory visits the .h alone (no loops -> nothing) AND the .cc
    # (1 finding), so the per-file sums hold.
    total_f = sum(nf for nf, _, _ in CASES.values())
    total_s = sum(ns for _, ns, _ in CASES.values())
    proc = subprocess.run(
        [sys.executable, str(LINTER), str(FIXTURES)],
        capture_output=True, text=True)
    m = SUMMARY_RE.search(proc.stdout)
    if not m or int(m.group(2)) != total_f or int(m.group(3)) != total_s:
        failures += 1
        print(f"FAIL directory sweep: want findings={total_f} "
              f"suppressed={total_s}\n{proc.stdout}")
    else:
        print("ok   directory sweep")

    if failures:
        print(f"{failures} case(s) failed")
        return 1
    print(f"all {len(CASES) + 1} lint self-test cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
