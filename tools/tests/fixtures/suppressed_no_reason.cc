// Fixture: a lint:allow with no reason is ignored — the finding
// stands. Expected: 1 finding, 0 suppressions.
#include <thread>

void
spawn()
{
    // lint:allow(raw-thread)
    std::thread t([] {});
    t.join();
}
