// Fixture: same pragma, but the file declares itself an opted-in
// fast-math kernel — no findings.
// EDKM_FAST_MATH_OPT_IN: contraction is part of this kernel's contract;
// its golden outputs are regenerated whenever the flag set changes.
#pragma STDC FP_CONTRACT ON

float
fma3(float a, float b, float c)
{
    return a * b + c;
}
