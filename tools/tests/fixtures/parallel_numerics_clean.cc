// Fixture: ordered serial accumulation — no findings.
#include <vector>

float
total(const std::vector<float> &v)
{
    float acc = 0.0f;
    for (float x : v) {
        acc += x;
    }
    return acc;
}
