// Fixture source: iterates a member declared unordered in the paired
// header. Expected findings when scanning this .cc: 1.
#include "paired_header.h"

#include <sstream>

std::string
Ledger::serialize() const
{
    std::ostringstream os;
    for (const auto &kv : balances_) {
        os << kv.first << ":" << kv.second << ";";
    }
    return os.str();
}
