// Fixture: unordered iteration feeding accumulation and serialization
// (expected findings: 2). The erase-only loop at the end carries no
// order-sensitive signal and must stay clean.
#include <sstream>
#include <string>
#include <unordered_map>

float
sum(const std::unordered_map<std::string, float> &scores)
{
    float acc = 0.0f;
    for (const auto &kv : scores) {
        acc += kv.second;
    }
    return acc;
}

std::string
dump(const std::unordered_map<std::string, float> &scores)
{
    std::ostringstream os;
    for (auto it = scores.begin(); it != scores.end(); ++it) {
        os << it->first << "=" << it->second << "\n";
    }
    return os.str();
}

int
countZeros(const std::unordered_map<std::string, float> &scores)
{
    int dead = 0;
    for (const auto &kv : scores) {
        if (kv.second == 0.0f) {
            ++dead;
        }
    }
    return dead;
}
