// Fixture: serialization walks a std::map — iteration order is the key
// order, so no findings. (For unordered containers the sanctioned
// pattern is collect-sort-walk with a lint:allow on the collect loop;
// see suppressed_ok.cc.)
#include <map>
#include <sstream>
#include <string>

std::string
dump(const std::map<std::string, float> &scores)
{
    std::ostringstream os;
    for (const auto &kv : scores) {
        os << kv.first << "=" << kv.second << "\n";
    }
    return os.str();
}
