// Fixture: every line below trips raw-rng (expected findings: 3).
#include <cstdlib>
#include <random>

int
noisySeed()
{
    std::random_device rd;
    srand(static_cast<unsigned>(rd()));
    return rand() % 100;
}
