// Fixture: ad-hoc process spawn outside runtime/ (expected findings: 1).
// refork(...) below must NOT count — identifiers merely ending in
// "fork" are not process spawns.
#include <unistd.h>

void
refork(int)
{
}

int
spawn_worker()
{
    refork(3);
    pid_t pid = ::fork();
    return pid == 0 ? 0 : 1;
}
