// Fixture header: the unordered member lives here; the loop over it
// lives in paired_header.cc. The linter must fold this declaration in
// when scanning the .cc.
#ifndef TOOLS_TESTS_FIXTURES_PAIRED_HEADER_H_
#define TOOLS_TESTS_FIXTURES_PAIRED_HEADER_H_

#include <string>
#include <unordered_map>

class Ledger
{
  public:
    std::string serialize() const;

  private:
    std::unordered_map<std::string, long> balances_;
};

#endif // TOOLS_TESTS_FIXTURES_PAIRED_HEADER_H_
