// Fixture: the collect-sort-walk remedy. The collect loop is formally
// order-sensitive (push_back) but the sort right after it erases the
// bucket order, so the suppression carries that justification.
// Expected: 0 findings, 1 suppression.
#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

std::string
dump(const std::unordered_map<std::string, float> &scores)
{
    std::vector<std::string> keys;
    keys.reserve(scores.size());
    // lint:allow(unordered-iteration) collected keys are sorted on the
    // next line, so bucket order never reaches the output.
    for (const auto &kv : scores) {
        keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
    std::ostringstream os;
    for (const std::string &k : keys) {
        os << k << "=" << scores.at(k) << "\n";
    }
    return os.str();
}
