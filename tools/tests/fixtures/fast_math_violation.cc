// Fixture: FP-contraction pragma without the opt-in marker
// (expected findings: 1).
#pragma STDC FP_CONTRACT ON

float
fma3(float a, float b, float c)
{
    return a * b + c;
}
