// Fixture: a sanctioned process-spawn site carrying a reasoned
// suppression, the way dist::ProcessGroup does it.
// Expected: 0 findings, 1 suppression.
#include <unistd.h>

int
launch_learner()
{
    // lint:allow(raw-thread) sanctioned spawn: the learner is a real OS
    // process by design, and determinism is preserved by fixed shard
    // layout plus rank-ordered collectives.
    pid_t pid = fork();
    return pid == 0 ? 0 : 1;
}
