// Fixture: ad-hoc thread outside runtime/ (expected findings: 1).
// std::this_thread below must NOT count — it is not a thread spawn.
#include <chrono>
#include <thread>

void
spawn()
{
    std::thread t([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    t.join();
}
