// Fixture: work goes through the pool — no findings.
#include "runtime/runtime.h"

void
spawn()
{
    edkm::runtime::parallelFor(0, 128, 32,
                               [](int64_t, int64_t) { /* chunk */ });
}
