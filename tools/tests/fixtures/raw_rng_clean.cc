// Fixture: seeded RNG through the library type — no findings. The
// string below must not trip the rule either ("rand(" is prose here).
#include "util/rng.h"

float
sample(edkm::util::Rng &rng)
{
    const char *label = "uniform rand() replacement";
    (void)label;
    return rng.uniform();
}
