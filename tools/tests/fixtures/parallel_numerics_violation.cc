// Fixture: parallel STL numerics (expected findings: 2 — the include
// and the reduce call).
#include <execution>
#include <numeric>
#include <vector>

float
total(const std::vector<float> &v)
{
    return std::reduce(std::execution::par, v.begin(), v.end(), 0.0f);
}
