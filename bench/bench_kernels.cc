/**
 * @file
 * Kernel-layer micro-bench: single-thread throughput of the fused
 * attention-table kernel against the composed op chain it replaced
 * (sub -> square -> mulScalar -> softmaxLastDim), and of the vector
 * elementwise kernels against the scalar reference backend. Also
 * re-asserts the determinism contract end-to-end: eDKM clustering
 * forward+backward is bit-identical at 1 and 8 threads.
 *
 * Emits machine-readable JSON to BENCH_kernels.json (cwd) so CI can
 * track the fused-kernel speedup across PRs. Wall-clock time is
 * measured; the simulated-seconds cost model is irrelevant here.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/edkm.h"
#include "core/palettize.h"
#include "device/device_manager.h"
#include "kernels/attention.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace edkm;

namespace {

double
medianMs(std::vector<double> &ms)
{
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
}

template <typename F>
double
timeMs(int reps, const F &run)
{
    run(); // warm-up
    std::vector<double> ms;
    ms.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        run();
        auto t1 = std::chrono::steady_clock::now();
        ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return medianMs(ms);
}

/** Clustering forward+backward output+grad at @p threads. */
std::pair<std::vector<float>, std::vector<float>>
edkmRun(const Tensor &w, const Tensor &upstream, int threads)
{
    runtime::Runtime::instance().setThreadCount(threads);
    EdkmConfig cfg;
    cfg.dkm.bits = 4;
    cfg.dkm.maxIters = 3;
    cfg.uniquify = true;
    EdkmLayer layer(cfg);
    Variable wv(w.clone(), true);
    Variable out = layer.forward(wv);
    backward(af::sumAll(af::mul(out, af::constant(upstream))));
    return {out.data().toVector(), wv.grad().toVector()};
}

} // namespace

int
main(int argc, char **argv)
{
    int64_t n = 65536;
    int64_t k = 16;
    int reps = 7;
    try {
        if (argc > 1) {
            n = std::stoll(argv[1]);
        }
        if (argc > 2) {
            k = std::stoll(argv[2]);
        }
    } catch (const std::exception &) {
        std::cerr << "usage: bench_kernels [n] [k]  (positive integers)\n";
        return 2;
    }
    if (n < 1 || k < 1) {
        std::cerr << "usage: bench_kernels [n] [k]  (positive integers)\n";
        return 2;
    }
    float tau = 2e-4f;

    Rng rng(7);
    Tensor u = Tensor::randn({n, 1}, rng, Device::cpu(), 0.02f);
    Tensor c = Tensor::randn({1, k}, rng, Device::cpu(), 0.02f);

    // ---- fused vs composed attention table, single thread ----
    double composed_ms, fused_ms;
    {
        runtime::SerialGuard serial;
        composed_ms = timeMs(reps, [&] {
            Tensor t = softmaxLastDim(
                mulScalar(square(sub(u, c)), -1.0f / tau));
            volatile float sink = t.rawData<float>()[0];
            (void)sink;
        });
        fused_ms = timeMs(reps, [&] {
            Tensor t = kernels::attentionTable(u, c, tau);
            volatile float sink = t.rawData<float>()[0];
            (void)sink;
        });
    }
    double fused_speedup = composed_ms / fused_ms;
    std::cout << "attention table n=" << n << " k=" << k
              << " (single thread)\n"
              << "  composed chain: " << composed_ms << " ms\n"
              << "  fused kernel:   " << fused_ms << " ms ("
              << fused_speedup << "x)\n";

    // ---- vector vs scalar elementwise (raw kernel, no tensor glue).
    // mul is memory-bandwidth-bound (expect ~1x once the compiler
    // auto-vectorizes the scalar reference); expv is compute-bound and
    // shows the real vector win. Cache-resident buffers. ----
    int64_t en = 1 << 18;
    std::vector<float> ex(static_cast<size_t>(en)),
        ey(static_cast<size_t>(en)), eo(static_cast<size_t>(en));
    for (int64_t i = 0; i < en; ++i) {
        ex[static_cast<size_t>(i)] =
            static_cast<float>(i % 913) * 0.01f - 4.0f;
        ey[static_cast<size_t>(i)] = static_cast<float>(i % 677) * 0.02f;
    }
    const kernels::KernelTable &scalar_t =
        kernels::table(kernels::Backend::kScalar);
    const kernels::KernelTable &active_t = kernels::active();
    double mul_scalar_ms = timeMs(reps, [&] {
        scalar_t.mul(ex.data(), ey.data(), eo.data(), en);
    });
    double mul_simd_ms = timeMs(reps, [&] {
        active_t.mul(ex.data(), ey.data(), eo.data(), en);
    });
    double exp_scalar_ms = timeMs(reps, [&] {
        scalar_t.expv(ex.data(), eo.data(), en);
    });
    double exp_simd_ms = timeMs(reps, [&] {
        active_t.expv(ex.data(), eo.data(), en);
    });
    std::cout << "elementwise over " << en << " f32, "
              << kernels::backendName(active_t.backend)
              << " vs scalar backend\n"
              << "  mul: " << mul_scalar_ms << " -> " << mul_simd_ms
              << " ms (" << mul_scalar_ms / mul_simd_ms << "x)\n"
              << "  exp: " << exp_scalar_ms << " -> " << exp_simd_ms
              << " ms (" << exp_scalar_ms / exp_simd_ms << "x)\n";

    // ---- fused palettized decode: per-backend rows keyed by dispatch
    // name, staged-vs-fused tensor path, and the opt-in fast-math
    // variant. The staged/fused comparison doubles as the bit-identity
    // gate for the exit code. ----
    const int64_t din = 1024, dout = 1024;
    const int dbits = 4;
    Rng prng(17);
    std::vector<float> plut(1 << dbits);
    for (float &cv : plut) {
        cv = prng.uniform(-0.05f, 0.05f);
    }
    std::vector<int32_t> passign(static_cast<size_t>(din * dout));
    for (int32_t &a : passign) {
        a = static_cast<int32_t>(prng.randint(0, (1 << dbits) - 1));
    }
    PalettizedTensor pal = PalettizedTensor::fromAssignments(
        {dout, din}, plut, passign, dbits);
    PaletteView pview = viewOf(pal);
    std::vector<float> px(static_cast<size_t>(din));
    for (float &v : px) {
        v = prng.bernoulli(0.1) ? 0.0f : prng.uniform(-1.0f, 1.0f);
    }
    Tensor pxT = Tensor::fromVector(px, {1, din});

    // Per-backend raw kernel rows (single thread, no tensor glue).
    struct PaletteRow
    {
        std::string variant;
        double ms;
    };
    std::vector<PaletteRow> palette_rows;
    {
        runtime::SerialGuard serial;
        std::vector<float> pout(static_cast<size_t>(dout));
        for (auto be : kernels::availableBackends()) {
            const kernels::KernelTable &kt = kernels::table(be);
            double ms = timeMs(reps, [&] {
                kt.paletteDotFused(px.data(), din, pview.packed,
                                   pview.bits, pview.lut.data(), 0, dout,
                                   pout.data());
                volatile float sink = pout[0];
                (void)sink;
            });
            palette_rows.push_back({kernels::backendName(be), ms});
        }
        // Opt-in fast-math variant: benched via its explicit handle;
        // never part of any dispatch table.
        if (kernels::PaletteDotFn fast = kernels::fastMathPaletteDot()) {
            double ms = timeMs(reps, [&] {
                fast(px.data(), din, pview.packed, pview.bits,
                     pview.lut.data(), 0, dout, pout.data());
                volatile float sink = pout[0];
                (void)sink;
            });
            palette_rows.push_back(
                {kernels::fastMathVariantName(), ms});
        }
    }

    // Tensor-level staged vs fused decode (active backend, threaded as
    // the serving path runs it) + the bit-identity gate.
    double staged_ms = timeMs(reps, [&] {
        Tensor t = paletteMatmulTStaged(pxT, pview);
        volatile float sink = t.rawData<float>()[0];
        (void)sink;
    });
    double fuseddec_ms = timeMs(reps, [&] {
        Tensor t = paletteMatmulT(pxT, pview);
        volatile float sink = t.rawData<float>()[0];
        (void)sink;
    });
    std::vector<float> staged_out =
        paletteMatmulTStaged(pxT, pview).toVector();
    std::vector<float> fused_out = paletteMatmulT(pxT, pview).toVector();
    bool palette_identical =
        staged_out.size() == fused_out.size() &&
        std::memcmp(staged_out.data(), fused_out.data(),
                    staged_out.size() * sizeof(float)) == 0;
    std::cout << "palettized decode " << dout << "x" << din << " @"
              << dbits << "b\n";
    for (const PaletteRow &row : palette_rows) {
        std::cout << "  fused[" << row.variant << "]: " << row.ms
                  << " ms\n";
    }
    std::cout << "  staged path: " << staged_ms << " ms\n"
              << "  fused path:  " << fuseddec_ms << " ms ("
              << staged_ms / fuseddec_ms << "x)\n"
              << "  staged/fused bit-identical: "
              << (palette_identical ? "yes" : "NO") << "\n";

    // ---- thread-count determinism of the full clustering stack ----
    Rng wr(31);
    Tensor w = Tensor::randn({16384}, wr, Device::cpu(), 0.02f)
                   .to(DType::kBf16)
                   .to(DType::kF32);
    Rng ur(32);
    Tensor upstream = Tensor::randn({16384}, ur);
    auto [out1, grad1] = edkmRun(w, upstream, 1);
    auto [out8, grad8] = edkmRun(w, upstream, 8);
    runtime::Runtime::instance().setThreadCount(
        runtime::Runtime::defaultThreadCount());
    bool identical = out1 == out8 && grad1 == grad8;
    std::cout << "edkm clustering 1-vs-8 threads bit-identical: "
              << (identical ? "yes" : "NO") << "\n";

    std::ofstream json("BENCH_kernels.json");
    json << "{\n"
         << "  \"bench\": \"kernels\",\n"
         << "  \"backend\": \""
         << kernels::backendName(active_t.backend) << "\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"k\": " << k << ",\n"
         << "  \"attention_composed_ms\": " << composed_ms << ",\n"
         << "  \"attention_fused_ms\": " << fused_ms << ",\n"
         << "  \"attention_fused_speedup\": " << fused_speedup << ",\n"
         << "  \"elementwise_n\": " << en << ",\n"
         << "  \"mul_scalar_ms\": " << mul_scalar_ms << ",\n"
         << "  \"mul_simd_ms\": " << mul_simd_ms << ",\n"
         << "  \"mul_simd_speedup\": " << mul_scalar_ms / mul_simd_ms
         << ",\n"
         << "  \"exp_scalar_ms\": " << exp_scalar_ms << ",\n"
         << "  \"exp_simd_ms\": " << exp_simd_ms << ",\n"
         << "  \"exp_simd_speedup\": " << exp_scalar_ms / exp_simd_ms
         << ",\n"
         << "  \"edkm_1v8_threads_bit_identical\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"palette_decode\": {\n"
         << "    \"out\": " << dout << ",\n"
         << "    \"in\": " << din << ",\n"
         << "    \"bits\": " << dbits << ",\n"
         << "    \"rows\": [\n";
    for (size_t i = 0; i < palette_rows.size(); ++i) {
        json << "      {\"variant\": \"" << palette_rows[i].variant
             << "\", \"fused_ms\": " << palette_rows[i].ms << "}"
             << (i + 1 < palette_rows.size() ? "," : "") << "\n";
    }
    json << "    ],\n"
         << "    \"staged_ms\": " << staged_ms << ",\n"
         << "    \"fused_ms\": " << fuseddec_ms << ",\n"
         << "    \"fused_speedup\": " << staged_ms / fuseddec_ms
         << ",\n"
         << "    \"fastmath_variant\": "
         << (kernels::fastMathVariantName() != nullptr
                 ? std::string("\"") + kernels::fastMathVariantName() +
                       "\""
                 : std::string("null"))
         << ",\n"
         << "    \"staged_fused_bit_identical\": "
         << (palette_identical ? "true" : "false") << "\n"
         << "  }\n}\n";
    std::cout << "wrote BENCH_kernels.json\n";
    return identical && palette_identical ? 0 : 1;
}
