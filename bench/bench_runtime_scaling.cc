/**
 * @file
 * Runtime-scaling micro-bench: serial vs multi-thread throughput of the
 * DKM attention-map forward kernel (distance -> square -> scale ->
 * row-softmax over [|W|, |C|]) — the hot loop the edkm::runtime thread
 * pool was built for.
 *
 * Emits machine-readable JSON to BENCH_runtime.json (cwd) so CI can
 * track the perf trajectory across PRs, alongside a human-readable
 * table on stdout. Wall-clock time is measured; the simulated-seconds
 * cost model is irrelevant here.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace edkm;

namespace {

/** One attention-map forward: softmax_rows(-(w-c)^2 * 1e3). */
Tensor
attentionMap(const Tensor &w_col, const Tensor &c_row)
{
    Tensor diff = sub(w_col, c_row);
    return softmaxLastDim(mulScalar(square(diff), -1e3f));
}

/** Median-of-reps wall milliseconds for the kernel at (n, k). */
double
timeKernelMs(int64_t n, int64_t k, int reps)
{
    Rng rng(7);
    Tensor w = Tensor::randn({n, 1}, rng);
    Tensor c = Tensor::randn({1, k}, rng);
    attentionMap(w, c); // warm-up (allocators, pool spin-up)
    std::vector<double> ms;
    ms.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        Tensor map = attentionMap(w, c);
        auto t1 = std::chrono::steady_clock::now();
        // Touch the result so the work cannot be elided.
        volatile float sink = map.rawData<float>()[0];
        (void)sink;
        ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    int64_t n = 1 << 18;
    int64_t k = 16;
    int reps = 5;
    try {
        if (argc > 1) {
            n = std::stoll(argv[1]);
        }
        if (argc > 2) {
            k = std::stoll(argv[2]);
        }
    } catch (const std::exception &) {
        std::cerr << "usage: bench_runtime_scaling [n] [k]  "
                     "(positive integers)\n";
        return 2;
    }
    if (n < 1 || k < 1) {
        std::cerr << "usage: bench_runtime_scaling [n] [k]  "
                     "(positive integers)\n";
        return 2;
    }

    double serial_ms;
    {
        runtime::SerialGuard serial;
        serial_ms = timeKernelMs(n, k, reps);
    }
    std::cout << "dkm attention-map forward, n=" << n << " k=" << k
              << "\n  serial: " << serial_ms << " ms\n";

    std::vector<int> thread_counts = {2, 4, 8};
    std::vector<double> thread_ms;
    for (int t : thread_counts) {
        runtime::Runtime::instance().setThreadCount(t);
        double ms = timeKernelMs(n, k, reps);
        thread_ms.push_back(ms);
        std::cout << "  " << t << " threads: " << ms << " ms ("
                  << serial_ms / ms << "x)\n";
    }
    runtime::Runtime::instance().setThreadCount(
        runtime::Runtime::defaultThreadCount());

    std::ofstream json("BENCH_runtime.json");
    json << "{\n"
         << "  \"bench\": \"runtime_scaling\",\n"
         << "  \"kernel\": \"dkm_attention_map_forward\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"k\": " << k << ",\n"
         << "  \"hardware_threads\": "
         << runtime::Runtime::defaultThreadCount() << ",\n"
         << "  \"serial_ms\": " << serial_ms << ",\n"
         << "  \"threads\": {";
    for (size_t i = 0; i < thread_counts.size(); ++i) {
        json << (i ? ", " : "") << "\"" << thread_counts[i]
             << "\": " << thread_ms[i];
    }
    json << "},\n"
         << "  \"speedup\": {";
    for (size_t i = 0; i < thread_counts.size(); ++i) {
        json << (i ? ", " : "") << "\"" << thread_counts[i]
             << "\": " << serial_ms / thread_ms[i];
    }
    json << "}\n}\n";
    std::cout << "wrote BENCH_runtime.json\n";
    return 0;
}
