/**
 * @file
 * Fig 1 companion bench: the attention map inside the DKM weight
 * optimizer is the memory bottleneck the whole paper attacks. This
 * microbench measures attention-map construction (distance + softmax)
 * across |W| and |C| to show the O(|W| x |C|) scaling, and prints the
 * motivating arithmetic: at LLaMA-7B scale the map alone exceeds any
 * GPU's DRAM (the paper's 224 GB figure).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "device/device_manager.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace edkm;

namespace {

/** Dense attention-map construction for n weights and k centroids. */
void
BM_AttentionMap(benchmark::State &state)
{
    int64_t n = state.range(0);
    int64_t k = state.range(1);
    Rng rng(7);
    Tensor w = Tensor::randn({n, 1}, rng);
    Tensor c = Tensor::randn({1, k}, rng);
    for (auto _ : state) {
        Tensor diff = sub(w, c);
        Tensor map = softmaxLastDim(mulScalar(square(diff), -1e3f));
        benchmark::DoNotOptimize(map.rawData<float>());
    }
    state.counters["map_bytes"] =
        static_cast<double>(n * k * 4);
    state.counters["bytes_per_weight"] = static_cast<double>(k * 4);
    state.SetItemsProcessed(state.iterations() * n * k);
}

} // namespace

BENCHMARK(BM_AttentionMap)
    ->ArgsProduct({{1 << 12, 1 << 14, 1 << 16, 1 << 18},
                   {8, 16, 256}})
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // The motivation numbers behind Fig 1 (see paper section 2).
    std::cout << "\n--- why train-time DKM does not fit (paper: 224 GB "
                 "for 4-bit LLaMA-7B) ---\n";
    double params = 6.74e9;
    for (int bits : {2, 3, 4}) {
        double k = 1 << bits;
        double gb = params * k * 4.0 / (1024.0 * 1024.0 * 1024.0);
        std::cout << "  " << bits << "-bit: one attention map = "
                  << static_cast<long long>(gb) << " GB"
                  << (gb > 80 ? "  > 80 GB A100 DRAM" : "") << "\n";
    }
    std::cout << "  (and DKM saves one map per iteration for "
                 "backward)\n";
    return 0;
}
