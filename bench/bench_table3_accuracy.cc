/**
 * @file
 * Reproduces Table 3 of the paper: accuracy of a pretrained LLaMA-style
 * model compressed by each scheme (RTN / GPTQ / AWQ / LLM-QAT /
 * SmoothQuant / eDKM) on the 7-task benchmark suite, with model sizes
 * (actual payload + the size the same bits-per-weight implies for
 * LLaMA-7B, the paper's GB column).
 *
 * Every scheme is driven by name through the unified compression API:
 * a CompressionPlan resolved by the CompressorRegistry and executed by
 * an api::Session (post-training schemes get a calibration batch,
 * train-time schemes get the fine-tuning stream).
 *
 * The paper's qualitative claims this must reproduce:
 *  - eDKM 3-bit has the smallest model size,
 *  - eDKM 3-bit beats the 3-bit quantisation baselines on average,
 *  - the fp16 model upper-bounds everything.
 *
 * Emits machine-readable JSON to BENCH_table3.json (cwd) so CI can
 * track accuracy/size per scheme across PRs.
 *
 * Environment knobs: EDKM_T3_FAST=1 shrinks steps/items for smoke runs.
 */

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "data/synthetic.h"
#include "eval/compress.h"
#include "eval/mc_harness.h"
#include "eval/train.h"

using namespace edkm;

namespace {

struct BenchParams
{
    int pretrainSteps = 350;
    int finetuneSteps = 130;
    int itemsPerTask = 20;
    int64_t batch = 8;
    int64_t seq = 48;
};

struct ResultRow
{
    std::string method;
    std::string bits;
    eval::SizeReport size;
    std::vector<double> accuracies;
    double average = 0.0;
};

std::vector<Tensor>
snapshotWeights(nn::MiniLlama &model)
{
    std::vector<Tensor> snap;
    for (auto &[name, p] : model.namedParameters()) {
        (void)name;
        snap.push_back(p.data().clone());
    }
    return snap;
}

void
restoreWeights(nn::MiniLlama &model, const std::vector<Tensor> &snap)
{
    auto params = model.namedParameters();
    for (size_t i = 0; i < params.size(); ++i) {
        params[i].second.mutableData() = snap[i].clone();
        params[i].second.zeroGrad();
    }
    eval::clearTransforms(model);
}

ResultRow
evaluateRow(nn::MiniLlama &model, const data::ByteTokenizer &tok,
            const std::vector<eval::McTask> &suite,
            const std::string &method, const std::string &bits,
            const eval::SizeReport &size)
{
    eval::SuiteResult r = eval::evaluateSuite(model, tok, suite);
    ResultRow row;
    row.method = method;
    row.bits = bits;
    row.size = size;
    for (auto &[name, acc] : r.taskAccuracy) {
        (void)name;
        row.accuracies.push_back(acc);
    }
    row.average = r.average;
    return row;
}

void
printTable(const std::vector<eval::McTask> &suite,
           const std::vector<ResultRow> &rows)
{
    std::cout << "\n" << std::left << std::setw(13) << "Method"
              << std::setw(6) << "bits" << std::right << std::setw(8)
              << "GB@7B" << std::setw(8) << "KiB";
    for (const auto &task : suite) {
        // Shorten the task names to fit.
        std::string n = task.name.substr(6);
        std::cout << std::setw(8) << n.substr(0, 7);
    }
    std::cout << std::setw(8) << "avg" << "\n";
    for (const ResultRow &r : rows) {
        std::cout << std::left << std::setw(13) << r.method
                  << std::setw(6) << r.bits << std::right << std::fixed
                  << std::setw(8) << std::setprecision(2)
                  << r.size.projectedGb7B << std::setw(8)
                  << r.size.payloadBytes / 1024;
        for (double a : r.accuracies) {
            std::cout << std::setw(8) << std::setprecision(1)
                      << 100.0 * a;
        }
        std::cout << std::setw(8) << std::setprecision(1)
                  << 100.0 * r.average << "\n";
    }
}

void
writeJson(const std::vector<eval::McTask> &suite,
          const std::vector<ResultRow> &rows, bool smallest, bool beats,
          bool upper)
{
    std::ofstream json("BENCH_table3.json");
    json << "{\n  \"bench\": \"table3_accuracy\",\n  \"tasks\": [";
    for (size_t i = 0; i < suite.size(); ++i) {
        json << (i ? ", " : "") << "\"" << suite[i].name << "\"";
    }
    json << "],\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const ResultRow &r = rows[i];
        json << "    {\"method\": \"" << r.method << "\", \"bits\": \""
             << r.bits << "\", \"size\": " << r.size.toJson()
             << ", \"accuracies\": [";
        for (size_t a = 0; a < r.accuracies.size(); ++a) {
            json << (a ? ", " : "") << r.accuracies[a];
        }
        json << "], \"average\": " << r.average << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"edkm3_smallest\": " << (smallest ? "true" : "false")
         << ",\n"
         << "  \"edkm3_beats_3bit_baselines\": "
         << (beats ? "true" : "false") << ",\n"
         << "  \"fp16_upper_bound\": " << (upper ? "true" : "false")
         << "\n}\n";
    std::cout << "wrote BENCH_table3.json\n";
}

} // namespace

int
main()
{
    BenchParams bp;
    if (std::getenv("EDKM_T3_FAST")) {
        bp.pretrainSteps = 120;
        bp.finetuneSteps = 50;
        bp.itemsPerTask = 8;
    }

    std::cout << "==========================================\n"
              << " bench_table3_accuracy (paper Table 3)\n"
              << "==========================================\n";

    nn::LlamaConfig mcfg;
    mcfg.vocab = 256;
    mcfg.dim = 48;
    mcfg.heads = 4;
    mcfg.layers = 2;
    nn::MiniLlama model(mcfg);
    std::cout << "model: " << model.parameterCount()
              << " params | pretrain " << bp.pretrainSteps
              << " steps | finetune " << bp.finetuneSteps
              << " steps | " << bp.itemsPerTask << " items/task\n";

    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto pretrain_stream =
        corpus.buildStream(corpus.generate(2000, 11), tok);
    auto alpaca_stream =
        corpus.buildStream(corpus.generate(1000, 23), tok);
    auto suite = eval::buildSyntheticSuite(corpus, bp.itemsPerTask, 99);

    // Pretrain the "LLaMA-7B" stand-in.
    eval::TrainConfig pre;
    pre.steps = bp.pretrainSteps;
    pre.batch = bp.batch;
    pre.seq = bp.seq;
    pre.optimizer.lr = 3e-3f;
    std::cout << "pretraining... " << std::flush;
    eval::TrainReport pr = eval::trainLm(model, pretrain_stream, pre);
    std::cout << "loss " << pr.firstLoss << " -> " << pr.lastLoss
              << "\n";
    std::vector<Tensor> base = snapshotWeights(model);

    // Calibration batch for the post-training schemes.
    Rng crng(5);
    data::LmBatch calib_batch = data::SyntheticCorpus::sampleBatch(
        pretrain_stream, 4, bp.seq, crng);

    eval::TrainConfig ft;
    ft.steps = bp.finetuneSteps;
    ft.batch = bp.batch;
    ft.seq = bp.seq;
    ft.optimizer.lr = 5e-4f;

    // Every scheme runs by name through the registry: scheme + bits in,
    // SizeReport out, model compressed in place.
    api::Session session;
    auto runPlan = [&](const api::CompressionPlan &plan,
                       bool train_time) -> eval::SizeReport {
        api::CalibData calib;
        calib.tokens = calib_batch.tokens;
        if (train_time) {
            calib.trainStream = &alpaca_stream;
            calib.trainConfig = ft;
        } else {
            calib.trainConfig.steps = 0;
        }
        api::SessionResult res =
            session.run(model, plan, std::move(calib));
        return res.report.size;
    };

    std::vector<ResultRow> rows;
    auto progress = [](const std::string &s) {
        std::cout << s << "... " << std::flush;
    };

    // --- fp16 reference (weights rounded to their deployed precision)
    progress("fp16");
    {
        api::CompressionPlan plan;
        plan.scheme = "fp16";
        eval::SizeReport size = runPlan(plan, /*train_time=*/false);
        rows.push_back(
            evaluateRow(model, tok, suite, "LLaMA-mini", "16", size));
    }

    // --- RTN 4 / 3 bit ---
    for (int bits : {4, 3}) {
        progress("RTN" + std::to_string(bits));
        restoreWeights(model, base);
        api::CompressionPlan plan;
        plan.scheme = "rtn";
        plan.bits = bits;
        plan.groupSize = 16;
        eval::SizeReport size = runPlan(plan, /*train_time=*/false);
        rows.push_back(evaluateRow(model, tok, suite, "RTN",
                                   std::to_string(bits), size));
    }

    // --- GPTQ 4 / 3 bit (g16) ---
    for (int bits : {4, 3}) {
        progress("GPTQ" + std::to_string(bits));
        restoreWeights(model, base);
        api::CompressionPlan plan;
        plan.scheme = "gptq";
        plan.bits = bits;
        plan.groupSize = 16;
        eval::SizeReport size = runPlan(plan, /*train_time=*/false);
        rows.push_back(evaluateRow(model, tok, suite, "GPTQ g16",
                                   std::to_string(bits), size));
    }

    // --- AWQ 4 / 3 bit (g16) ---
    for (int bits : {4, 3}) {
        progress("AWQ" + std::to_string(bits));
        restoreWeights(model, base);
        api::CompressionPlan plan;
        plan.scheme = "awq";
        plan.bits = bits;
        plan.groupSize = 16;
        plan.awqGridPoints = 10;
        eval::SizeReport size = runPlan(plan, /*train_time=*/false);
        rows.push_back(evaluateRow(model, tok, suite, "AWQ g16",
                                   std::to_string(bits), size));
    }

    // --- SmoothQuant (8-bit weights) ---
    progress("SmoothQuant");
    restoreWeights(model, base);
    {
        api::CompressionPlan plan;
        plan.scheme = "smoothquant";
        plan.bits = 8;
        eval::SizeReport size = runPlan(plan, /*train_time=*/false);
        rows.push_back(evaluateRow(model, tok, suite, "SmoothQuant",
                                   "8", size));
    }

    // --- LLM-QAT 4 bit (fake-quant fine-tuning) ---
    progress("LLM-QAT4");
    restoreWeights(model, base);
    {
        api::CompressionPlan plan;
        plan.scheme = "qat";
        plan.bits = 4;
        plan.groupSize = -1; // per-channel, matching LLM-QAT
        eval::SizeReport size = runPlan(plan, /*train_time=*/true);
        rows.push_back(
            evaluateRow(model, tok, suite, "LLM-QAT", "4", size));
    }

    // --- eDKM 3 bit (train-time clustering, the paper's row) ---
    for (int bits : {3, 4}) {
        progress("eDKM" + std::to_string(bits));
        restoreWeights(model, base);
        api::CompressionPlan plan;
        plan.scheme = "edkm";
        plan.bits = bits;
        plan.dkmMaxIters = 4;
        plan.embeddingBits = 8;
        eval::SizeReport size = runPlan(plan, /*train_time=*/true);
        rows.push_back(evaluateRow(model, tok, suite, "eDKM",
                                   std::to_string(bits), size));
    }
    std::cout << "done\n";

    printTable(suite, rows);

    // Shape checks against the paper's claims.
    const ResultRow &fp16 = rows[0];
    const ResultRow *rtn3 = nullptr, *gptq3 = nullptr, *awq3 = nullptr,
                    *edkm3 = nullptr;
    for (const ResultRow &r : rows) {
        if (r.bits == "3") {
            if (r.method == "RTN") rtn3 = &r;
            if (r.method == "GPTQ g16") gptq3 = &r;
            if (r.method == "AWQ g16") awq3 = &r;
            if (r.method == "eDKM") edkm3 = &r;
        }
    }
    bool smallest = false, beats = false, upper = false;
    std::cout << "\nshape checks vs paper:\n";
    if (edkm3 && rtn3 && gptq3 && awq3) {
        double best3 = std::max({rtn3->average, gptq3->average,
                                 awq3->average});
        smallest = edkm3->size.projectedGb7B <=
                   std::min({rtn3->size.projectedGb7B,
                             gptq3->size.projectedGb7B,
                             awq3->size.projectedGb7B});
        beats = edkm3->average >= best3 - 1e-9;
        upper = fp16.average >= edkm3->average - 0.05;
        std::cout << "  eDKM-3bit smallest model: "
                  << (smallest ? "yes" : "NO") << " ("
                  << std::setprecision(2) << edkm3->size.projectedGb7B
                  << " GB@7B; paper 2.5 GB)\n";
        std::cout << "  eDKM-3bit avg >= best 3-bit baseline: "
                  << (beats ? "yes" : "NO") << " ("
                  << std::setprecision(1) << 100.0 * edkm3->average
                  << " vs " << 100.0 * best3 << ")\n";
        std::cout << "  fp16 upper bound holds: "
                  << (upper ? "yes" : "NO") << "\n";
    }
    writeJson(suite, rows, smallest, beats, upper);
    return 0;
}
