/**
 * @file
 * Serving cold-start bench: eager artifact consumption
 * (ModelArtifact::load + reconstruct, every payload decoded to dense
 * f32 up front) vs the streaming path (ArtifactReader mmap +
 * InferenceEngine lazy decode), measuring time-to-first-logits and
 * resident weight bytes for both. The palettized (eDKM) artifact is
 * the paper's deployment target: its linear and embedding payloads
 * are consumed directly in LUT+index form, so the streaming side
 * should hold well under half of the eager dense footprint.
 *
 * Emits machine-readable JSON to BENCH_serving.json (cwd).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "device/device_manager.h"
#include "serve/engine.h"
#include "serve/reader.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

Tensor
promptTokens(int64_t vocab)
{
    std::vector<int64_t> toks;
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
        toks.push_back(rng.randint(0, vocab - 1));
    }
    return Tensor::fromIndices(toks, {1, 16});
}

struct ColdStart
{
    double coldStartMs = 0.0;
    int64_t residentBytes = 0;
};

} // namespace

int
main()
{
    std::cout << "==========================================\n"
              << " bench_serving (eager vs streaming consume)\n"
              << "==========================================\n\n";

    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 64;
    cfg.heads = 4;
    cfg.layers = 4;
    nn::MiniLlama model(cfg);

    api::CompressionPlan plan;
    plan.scheme = "edkm";
    plan.bits = 3;
    plan.dkmMaxIters = 2;
    plan.embeddingBits = 8;
    api::CalibData calib;
    calib.trainConfig.steps = 0; // freeze-only: serving-cost bench
    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));

    // Per-run path: concurrent bench runs on one host must not race
    // on the artifact file.
    std::string path =
        "/tmp/edkm_bench_serving." +
        std::to_string(std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count()) +
        ".edkm";
    res.artifact.save(path);
    Tensor toks = promptTokens(cfg.vocab);
    NoGradGuard ng;

    // --- Eager: load, reconstruct (full dense decode), first logits.
    ColdStart eager;
    std::vector<float> eager_logits;
    {
        StatsScope scope(Device::cpu());
        auto t0 = std::chrono::steady_clock::now();
        api::ModelArtifact art = api::ModelArtifact::load(path);
        nn::MiniLlama served = art.reconstruct();
        eager_logits = served.forward(toks).data().toVector();
        eager.coldStartMs = msSince(t0);
        // Live tensor bytes at this point: the model's dense weights
        // plus its attention caches (activations are already freed).
        eager.residentBytes = scope.currentDelta();
    }

    // --- Streaming: mmap, engine, first logits via lazy/streamed
    //     consumption.
    ColdStart streaming;
    std::vector<float> stream_logits;
    serve::EngineStats stats;
    bool mapped = false;
    {
        StatsScope scope(Device::cpu());
        auto t0 = std::chrono::steady_clock::now();
        auto reader = serve::ArtifactReader::open(path);
        serve::InferenceEngine engine(reader);
        stream_logits = engine.forward(toks).toVector();
        streaming.coldStartMs = msSince(t0);
        streaming.residentBytes = scope.currentDelta();
        stats = engine.stats();
        mapped = reader->mapped();
    }
    std::remove(path.c_str());

    bool exact = eager_logits == stream_logits;
    double ratio =
        eager.residentBytes > 0
            ? static_cast<double>(streaming.residentBytes) /
                  static_cast<double>(eager.residentBytes)
            : 0.0;

    std::cout << std::left << std::setw(12) << "path" << std::right
              << std::setw(16) << "cold-start ms" << std::setw(16)
              << "resident KiB" << "\n";
    auto row = [](const std::string &label, const ColdStart &c) {
        std::cout << std::left << std::setw(12) << label << std::right
                  << std::fixed << std::setprecision(2) << std::setw(16)
                  << c.coldStartMs << std::setw(16)
                  << c.residentBytes / 1024.0 << "\n";
    };
    row("eager", eager);
    row("streaming", streaming);
    std::cout << "\nmapped: " << (mapped ? "yes" : "no (read fallback)")
              << ", streamed matmuls: " << stats.streamedMatmuls
              << ", lazy decodes: " << stats.decodes
              << ", resident ratio: " << std::setprecision(3) << ratio
              << "\nfirst logits bit-identical: "
              << (exact ? "yes" : "NO") << "\n";

    std::ofstream json("BENCH_serving.json");
    json << std::setprecision(6) << "{\n  \"bench\": \"serving\",\n"
         << "  \"scheme\": \"edkm\",\n"
         << "  \"mapped\": " << (mapped ? "true" : "false") << ",\n"
         << "  \"bit_identical\": " << (exact ? "true" : "false")
         << ",\n"
         << "  \"eager\": {\"cold_start_ms\": " << eager.coldStartMs
         << ", \"resident_bytes\": " << eager.residentBytes << "},\n"
         << "  \"streaming\": {\"cold_start_ms\": "
         << streaming.coldStartMs
         << ", \"resident_bytes\": " << streaming.residentBytes
         << ", \"streamed_matmuls\": " << stats.streamedMatmuls
         << ", \"lazy_decodes\": " << stats.decodes << "},\n"
         << "  \"resident_ratio\": " << ratio << "\n}\n";
    std::cout << "\nwrote BENCH_serving.json\n";

    // Acceptance gate: identical logits, and the streaming footprint
    // under half of the eager dense decode.
    return (exact && ratio < 0.5) ? 0 : 1;
}
