/**
 * @file
 * Serving bench, three measurements over one palettized (eDKM) artifact:
 *
 *  1. Cold start: eager consumption (ModelArtifact::load + reconstruct,
 *     every payload decoded to dense f32 up front) vs the streaming
 *     path (ArtifactReader mmap + InferenceEngine lazy decode) —
 *     time-to-first-logits and resident weight bytes. Streaming must
 *     stay under half the eager footprint.
 *  2. Decode throughput: tokens/sec generating with the KV cache
 *     (prefill + single-position steps) vs full-prefix recompute at the
 *     same sequence length. Tokens must be bit-identical and the KV
 *     path must win.
 *  3. Throughput scaling: requests/sec through serve::Server at
 *     1/2/4/8 worker threads over the one shared reader.
 *  4. Continuous batching: decode tokens/sec through the batched
 *     step-level scheduler at concurrency 1/4/8/16 vs the per-thread-
 *     engine baseline (threads = min(concurrency, 8)). Batched output
 *     must be bit-identical to serial and beat the baseline at
 *     concurrency >= 4.
 *  5. Prefix cache: shared-prompt-head workload served cold (empty
 *     cache) and warm (head banked by the cold pass) — hit rates and
 *     tokens/sec per pass; the warm pass must actually hit.
 *  6. Checksum verification overhead: cold start (open + first logits)
 *     over the same v2.1 checksummed file under EDKM_VERIFY eager /
 *     lazy / off — the price of paying for integrity up front, on
 *     first touch, or not at all. Logits must be identical.
 *  7. Hot-swap cutover under load: a batched server serving a ticket
 *     stream swaps artifacts mid-stream; measures the swap() blocking
 *     time and gates on zero dropped tickets with per-generation
 *     bit-identity.
 *  8. Fused palettized decode: tokens/sec with the fused m==1
 *     gather-mul-acc kernel vs the staged tile-decompress path, gated
 *     on bit-identical tokens and logits; plus a separate opt-in
 *     EDKM_FAST_MATH row that never influences the default path.
 *
 * Emits machine-readable JSON to BENCH_serving.json (cwd).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "core/palettize.h"
#include "device/device_manager.h"
#include "kernels/kernels.h"
#include "serve/engine.h"
#include "serve/reader.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

Tensor
promptTokens(int64_t vocab)
{
    std::vector<int64_t> toks;
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
        toks.push_back(rng.randint(0, vocab - 1));
    }
    return Tensor::fromIndices(toks, {1, 16});
}

struct ColdStart
{
    double coldStartMs = 0.0;
    int64_t residentBytes = 0;
};

} // namespace

int
main()
{
    std::cout << "==========================================\n"
              << " bench_serving (eager vs streaming consume)\n"
              << "==========================================\n\n";

    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 64;
    cfg.heads = 4;
    cfg.layers = 4;
    nn::MiniLlama model(cfg);

    api::CompressionPlan plan;
    plan.scheme = "edkm";
    plan.bits = 3;
    plan.dkmMaxIters = 2;
    plan.embeddingBits = 8;
    api::CalibData calib;
    calib.trainConfig.steps = 0; // freeze-only: serving-cost bench
    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));

    // Per-run path: concurrent bench runs on one host must not race
    // on the artifact file.
    std::string path =
        "/tmp/edkm_bench_serving." +
        std::to_string(std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count()) +
        ".edkm";
    res.artifact.save(path);
    Tensor toks = promptTokens(cfg.vocab);
    NoGradGuard ng;

    // --- Eager: load, reconstruct (full dense decode), first logits.
    ColdStart eager;
    std::vector<float> eager_logits;
    {
        StatsScope scope(Device::cpu());
        auto t0 = std::chrono::steady_clock::now();
        api::ModelArtifact art = api::ModelArtifact::load(path);
        nn::MiniLlama served = art.reconstruct();
        eager_logits = served.forward(toks).data().toVector();
        eager.coldStartMs = msSince(t0);
        // Live tensor bytes at this point: the model's dense weights
        // plus its attention caches (activations are already freed).
        eager.residentBytes = scope.currentDelta();
    }

    // --- Streaming: mmap, engine, first logits via lazy/streamed
    //     consumption.
    ColdStart streaming;
    std::vector<float> stream_logits;
    serve::EngineStats stats;
    bool mapped = false;
    {
        StatsScope scope(Device::cpu());
        auto t0 = std::chrono::steady_clock::now();
        auto reader = serve::ArtifactReader::open(path);
        serve::InferenceEngine engine(reader);
        stream_logits = engine.forward(toks).toVector();
        streaming.coldStartMs = msSince(t0);
        streaming.residentBytes = scope.currentDelta();
        stats = engine.stats();
        mapped = reader->mapped();
    }
    // --- Decode throughput: KV-cache incremental decode vs full-prefix
    //     recompute, same request, same reader.
    const int64_t kPromptLen = 16, kNewTokens = 48;
    serve::InferenceEngine::Request req;
    {
        Rng rng(29);
        for (int64_t i = 0; i < kPromptLen; ++i) {
            req.prompt.push_back(rng.randint(0, cfg.vocab - 1));
        }
        req.maxNewTokens = kNewTokens;
    }
    auto reader = serve::ArtifactReader::open(path);
    double kv_s = 0.0, full_s = 0.0;
    bool kv_identical = false;
    {
        serve::InferenceEngine kv_engine(reader);
        serve::EngineConfig full_cfg;
        full_cfg.kvCacheDecode = false;
        serve::InferenceEngine full_engine(reader, full_cfg);
        kv_engine.generate(req);   // warm weight caches / views
        full_engine.generate(req);
        auto t0 = std::chrono::steady_clock::now();
        auto kv_res = kv_engine.generate(req);
        kv_s = msSince(t0) / 1e3;
        t0 = std::chrono::steady_clock::now();
        auto full_res = full_engine.generate(req);
        full_s = msSince(t0) / 1e3;
        kv_identical = kv_res.tokens == full_res.tokens;
    }
    double kv_tps = kNewTokens / kv_s;
    double full_tps = kNewTokens / full_s;

    // --- Fused palettized decode: tokens/sec with the fused m==1
    //     gather-mul-acc kernel vs the staged (tile-decompress) path,
    //     same engine, same request. Gated on bit-identical tokens and
    //     single-step logits, and on the fused path actually running.
    //     A separate EDKM_FAST_MATH row is measured only through its
    //     explicit opt-in switch and reset afterwards.
    double fused_tps = 0.0, staged_tps = 0.0, fastmath_tps = 0.0;
    bool fusedpath_identical = false, fastmath_clean = true;
    int64_t fused_decodes = 0;
    const char *fastmath_variant = kernels::fastMathVariantName();
    {
        serve::InferenceEngine engine(reader);
        Tensor one = Tensor::fromIndices({7}, {1, 1});

        setPaletteFusedDecode(true);
        engine.generate(req); // warm views
        auto t0 = std::chrono::steady_clock::now();
        auto fused_res = engine.generate(req);
        fused_tps = kNewTokens / (msSince(t0) / 1e3);
        fused_decodes = engine.stats().fusedDecodes;
        std::vector<float> fused_logits = engine.forward(one).toVector();

        setPaletteFusedDecode(false);
        engine.generate(req);
        t0 = std::chrono::steady_clock::now();
        auto staged_res = engine.generate(req);
        staged_tps = kNewTokens / (msSince(t0) / 1e3);
        std::vector<float> staged_logits =
            engine.forward(one).toVector();
        setPaletteFusedDecode(true);

        fusedpath_identical = fused_res.tokens == staged_res.tokens &&
                              fused_logits == staged_logits;

        if (fastmath_variant != nullptr) {
            kernels::setFastMath(true);
            engine.generate(req);
            t0 = std::chrono::steady_clock::now();
            engine.generate(req);
            fastmath_tps = kNewTokens / (msSince(t0) / 1e3);
            kernels::setFastMath(false);
        }
        // Opt-in must not leak: after the reset the default path
        // reproduces the contract bits whether or not the variant is
        // even compiled in.
        fastmath_clean = !kernels::fastMathEnabled() &&
                         engine.forward(one).toVector() == fused_logits;
    }

    // --- Throughput scaling: requests/sec through serve::Server at
    //     1/2/4/8 workers, all over the same shared reader.
    struct ScaleRow
    {
        int threads = 0;
        double seconds = 0.0;
        double requestsPerSec = 0.0;
    };
    std::vector<serve::Server::Request> batch;
    {
        Rng rng(31);
        for (int i = 0; i < 16; ++i) {
            serve::Server::Request r;
            for (int64_t t = 0; t < kPromptLen; ++t) {
                r.prompt.push_back(rng.randint(0, cfg.vocab - 1));
            }
            r.maxNewTokens = 16;
            batch.push_back(std::move(r));
        }
    }
    std::vector<ScaleRow> scaling;
    bool scaling_identical = true;
    std::vector<std::vector<int64_t>> scale_ref;
    for (int threads : {1, 2, 4, 8}) {
        serve::ServerConfig scfg;
        scfg.threads = threads;
        serve::Server server(reader, scfg);
        auto t0 = std::chrono::steady_clock::now();
        auto responses = server.wait(server.submit(batch));
        double s = msSince(t0) / 1e3;
        if (threads == 1) {
            for (const auto &r : responses) {
                scale_ref.push_back(r.tokens);
            }
        } else {
            for (size_t i = 0; i < responses.size(); ++i) {
                scaling_identical =
                    scaling_identical &&
                    responses[i].tokens == scale_ref[i];
            }
        }
        scaling.push_back(
            {threads, s, static_cast<double>(batch.size()) / s});
    }

    // --- Continuous batching: the batched step-level scheduler vs the
    //     per-thread-engine baseline, same 32-request workload at every
    //     concurrency level.
    struct CbRow
    {
        int concurrency = 0;
        int baselineThreads = 0;
        double baselineTps = 0.0;
        double batchedTps = 0.0;
        bool identical = false;
    };
    const int64_t kCbNewTokens = 16;
    std::vector<serve::Server::Request> cb_batch;
    {
        Rng rng(37);
        for (int i = 0; i < 32; ++i) {
            serve::Server::Request r;
            for (int64_t t = 0; t < kPromptLen; ++t) {
                r.prompt.push_back(rng.randint(0, cfg.vocab - 1));
            }
            r.maxNewTokens = kCbNewTokens;
            cb_batch.push_back(std::move(r));
        }
    }
    std::vector<std::vector<int64_t>> cb_ref;
    {
        serve::InferenceEngine serial_engine(reader);
        for (const auto &r : cb_batch) {
            cb_ref.push_back(serial_engine.generate(r).tokens);
        }
    }
    double cb_total_tokens =
        static_cast<double>(cb_batch.size()) * kCbNewTokens;
    std::vector<CbRow> cb_rows;
    for (int conc : {1, 4, 8, 16}) {
        CbRow row;
        row.concurrency = conc;
        row.baselineThreads = std::min(conc, 8);
        {
            serve::ServerConfig scfg;
            scfg.threads = row.baselineThreads;
            serve::Server server(reader, scfg);
            auto t0 = std::chrono::steady_clock::now();
            server.wait(server.submit(cb_batch));
            row.baselineTps = cb_total_tokens / (msSince(t0) / 1e3);
        }
        {
            serve::ServerConfig scfg;
            scfg.batched = true;
            scfg.scheduler.maxBatch = conc;
            serve::Server server(reader, scfg);
            auto t0 = std::chrono::steady_clock::now();
            auto responses = server.wait(server.submit(cb_batch));
            row.batchedTps = cb_total_tokens / (msSince(t0) / 1e3);
            row.identical = true;
            for (size_t i = 0; i < responses.size(); ++i) {
                row.identical =
                    row.identical && responses[i].tokens == cb_ref[i];
            }
        }
        cb_rows.push_back(row);
    }

    // --- Prefix cache: 16 requests sharing a 12-token head, served
    //     with an empty cache (cold) and again with the head banked
    //     (warm), through one batched scheduler.
    struct PrefixRow
    {
        double seconds = 0.0;
        double tokensPerSec = 0.0;
        int64_t hits = 0;
        int64_t misses = 0;
        int64_t reusedTokens = 0;
        double hitRate = 0.0;
    };
    PrefixRow cold, warm;
    bool prefix_identical = true;
    {
        std::vector<serve::InferenceEngine::Request> shared;
        Rng rng(41);
        std::vector<int64_t> head;
        for (int t = 0; t < 12; ++t) {
            head.push_back(rng.randint(0, cfg.vocab - 1));
        }
        for (int i = 0; i < 16; ++i) {
            serve::InferenceEngine::Request r;
            r.prompt = head;
            for (int t = 0; t < 4; ++t) {
                r.prompt.push_back(rng.randint(0, cfg.vocab - 1));
            }
            r.maxNewTokens = 8;
            shared.push_back(std::move(r));
        }
        std::vector<std::vector<int64_t>> shared_ref;
        serve::InferenceEngine serial_engine(reader);
        for (const auto &r : shared) {
            shared_ref.push_back(serial_engine.generate(r).tokens);
        }
        serve::InferenceEngine engine(reader);
        serve::SchedulerConfig pcfg;
        pcfg.maxBatch = 8;
        pcfg.prefixCacheBytes = 32 << 20;
        serve::BatchScheduler sched(engine, pcfg);
        auto pass = [&](PrefixRow &out) {
            serve::PrefixCacheStats before = sched.prefixStats();
            auto t0 = std::chrono::steady_clock::now();
            auto responses = sched.run(shared);
            out.seconds = msSince(t0) / 1e3;
            serve::PrefixCacheStats after = sched.prefixStats();
            out.hits = after.hits - before.hits;
            out.misses = after.misses - before.misses;
            out.reusedTokens = after.reusedTokens - before.reusedTokens;
            int64_t lookups = out.hits + out.misses;
            out.hitRate = lookups > 0 ? static_cast<double>(out.hits) /
                                            static_cast<double>(lookups)
                                      : 0.0;
            out.tokensPerSec =
                static_cast<double>(shared.size()) * 8 / out.seconds;
            for (size_t i = 0; i < responses.size(); ++i) {
                prefix_identical = prefix_identical &&
                                   responses[i].tokens == shared_ref[i];
            }
        };
        pass(cold);
        pass(warm);
    }

    // --- Checksum verification overhead: the same checksummed file,
    //     cold-started (open + engine + first logits) under each
    //     payload verify mode.
    struct VerifyRow
    {
        const char *mode = nullptr;
        double coldStartMs = 0.0;
        int64_t sectionsVerified = 0;
    };
    std::vector<VerifyRow> verify_rows;
    bool verify_identical = true;
    {
        struct
        {
            const char *name;
            serve::VerifyMode mode;
        } modes[] = {{"eager", serve::VerifyMode::kEager},
                     {"lazy", serve::VerifyMode::kLazy},
                     {"off", serve::VerifyMode::kOff}};
        std::vector<float> ref;
        for (const auto &m : modes) {
            auto t0 = std::chrono::steady_clock::now();
            auto vr = serve::ArtifactReader::open(path, m.mode);
            serve::InferenceEngine engine(vr);
            std::vector<float> logits = engine.forward(toks).toVector();
            verify_rows.push_back(
                {m.name, msSince(t0), vr->sectionsVerified()});
            if (ref.empty()) {
                ref = std::move(logits);
            } else {
                verify_identical = verify_identical && logits == ref;
            }
        }
    }

    // --- Hot-swap cutover under load: a batched server mid-stream
    //     swaps to a second artifact (same geometry, different
    //     weights). Tickets before the swap must serve artifact A,
    //     tickets after it artifact B, with nothing dropped.
    double swap_ms = 0.0;
    bool swap_zero_dropped = true;
    bool swap_identical = true;
    {
        nn::LlamaConfig cfg_b = cfg;
        cfg_b.seed = 1234; // different weights, same geometry
        nn::MiniLlama model_b(cfg_b);
        api::CompressionPlan plan_b = plan;
        api::CalibData calib_b;
        calib_b.trainConfig.steps = 0;
        api::Session session_b;
        api::SessionResult res_b =
            session_b.run(model_b, plan_b, std::move(calib_b));
        std::string path_b = path + ".swap";
        res_b.artifact.save(path_b);
        auto reader_b = serve::ArtifactReader::open(path_b);

        std::vector<std::vector<int64_t>> swap_ref[2];
        {
            serve::InferenceEngine ea(reader);
            serve::InferenceEngine eb(reader_b);
            for (const auto &r : cb_batch) {
                swap_ref[0].push_back(ea.generate(r).tokens);
                swap_ref[1].push_back(eb.generate(r).tokens);
            }
        }

        serve::ServerConfig scfg;
        scfg.batched = true;
        scfg.scheduler.maxBatch = 8;
        serve::Server server(reader, scfg);
        std::vector<serve::Server::RequestId> ids;
        for (int pass = 0; pass < 2; ++pass) {
            for (const auto &id : server.submit(cb_batch)) {
                ids.push_back(id);
            }
        }
        auto t0 = std::chrono::steady_clock::now();
        server.swap(reader_b); // blocks until the loop cut over
        swap_ms = msSince(t0);
        for (int pass = 0; pass < 2; ++pass) {
            for (const auto &id : server.submit(cb_batch)) {
                ids.push_back(id);
            }
        }
        for (size_t i = 0; i < ids.size(); ++i) {
            try {
                serve::Server::Response got = server.wait(ids[i]);
                int64_t gen = server.requestStats(ids[i]).generation;
                swap_identical =
                    swap_identical &&
                    got.tokens == swap_ref[gen][i % cb_batch.size()];
            } catch (const std::exception &) {
                swap_zero_dropped = false;
            }
        }
        std::remove(path_b.c_str());
    }
    std::remove(path.c_str());

    bool exact = eager_logits == stream_logits;
    double ratio =
        eager.residentBytes > 0
            ? static_cast<double>(streaming.residentBytes) /
                  static_cast<double>(eager.residentBytes)
            : 0.0;

    std::cout << std::left << std::setw(12) << "path" << std::right
              << std::setw(16) << "cold-start ms" << std::setw(16)
              << "resident KiB" << "\n";
    auto row = [](const std::string &label, const ColdStart &c) {
        std::cout << std::left << std::setw(12) << label << std::right
                  << std::fixed << std::setprecision(2) << std::setw(16)
                  << c.coldStartMs << std::setw(16)
                  << c.residentBytes / 1024.0 << "\n";
    };
    row("eager", eager);
    row("streaming", streaming);
    std::cout << "\nmapped: " << (mapped ? "yes" : "no (read fallback)")
              << ", streamed matmuls: " << stats.streamedMatmuls
              << ", lazy decodes: " << stats.decodes
              << ", resident ratio: " << std::setprecision(3) << ratio
              << "\nfirst logits bit-identical: "
              << (exact ? "yes" : "NO") << "\n";

    std::cout << "\ndecode (" << kPromptLen << " prompt + " << kNewTokens
              << " new tokens):\n"
              << std::left << std::setw(16) << "  kv-cache"
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(12) << kv_tps << " tok/s\n"
              << std::left << std::setw(16) << "  full-prefix"
              << std::right << std::setw(12) << full_tps << " tok/s\n"
              << "  speedup " << std::setprecision(2)
              << kv_tps / full_tps << "x, tokens bit-identical: "
              << (kv_identical ? "yes" : "NO") << "\n";

    std::cout << "\nfused palettized decode (same request, kv-cache on):\n"
              << std::left << std::setw(16) << "  fused"
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(12) << fused_tps << " tok/s ("
              << fused_decodes << " fused matmuls)\n"
              << std::left << std::setw(16) << "  staged"
              << std::right << std::setw(12) << staged_tps
              << " tok/s\n"
              << "  speedup " << std::setprecision(2)
              << fused_tps / staged_tps
              << "x, tokens+logits bit-identical: "
              << (fusedpath_identical ? "yes" : "NO") << "\n";
    if (fastmath_variant != nullptr) {
        std::cout << "  fast-math [" << fastmath_variant
                  << "] (opt-in): " << std::setprecision(1)
                  << fastmath_tps << " tok/s\n";
    } else {
        std::cout << "  fast-math variant: not compiled in\n";
    }
    std::cout << "  opt-in reset leaves default path untouched: "
              << (fastmath_clean ? "yes" : "NO") << "\n";

    std::cout << "\nserver scaling (" << batch.size()
              << " requests, shared reader):\n";
    for (const ScaleRow &r : scaling) {
        std::cout << "  " << r.threads << " thread(s): " << std::fixed
                  << std::setprecision(2) << r.requestsPerSec
                  << " req/s\n";
    }
    std::cout << "  outputs bit-identical across thread counts: "
              << (scaling_identical ? "yes" : "NO") << "\n";

    bool cb_identical = true;
    std::cout << "\ncontinuous batching (" << cb_batch.size()
              << " requests x " << kCbNewTokens << " new tokens):\n";
    for (const CbRow &r : cb_rows) {
        cb_identical = cb_identical && r.identical;
        std::cout << "  concurrency " << std::setw(2) << r.concurrency
                  << ": batched " << std::fixed << std::setprecision(1)
                  << std::setw(8) << r.batchedTps << " tok/s vs "
                  << r.baselineThreads << "-thread baseline "
                  << std::setw(8) << r.baselineTps << " tok/s ("
                  << std::setprecision(2)
                  << r.batchedTps / r.baselineTps
                  << "x), bit-identical: "
                  << (r.identical ? "yes" : "NO") << "\n";
    }

    std::cout << "\nprefix cache (16 requests, shared 12-token head):\n"
              << std::fixed << std::setprecision(1) << "  cold: "
              << cold.tokensPerSec << " tok/s, hit rate "
              << std::setprecision(2) << cold.hitRate << " ("
              << cold.hits << "/" << cold.hits + cold.misses
              << "), reused " << cold.reusedTokens << " tokens\n"
              << std::setprecision(1) << "  warm: " << warm.tokensPerSec
              << " tok/s, hit rate " << std::setprecision(2)
              << warm.hitRate << " (" << warm.hits << "/"
              << warm.hits + warm.misses << "), reused "
              << warm.reusedTokens << " tokens\n"
              << "  outputs bit-identical to serial: "
              << (prefix_identical ? "yes" : "NO") << "\n";

    std::cout << "\nchecksum verification (cold start to first logits):\n";
    for (const VerifyRow &r : verify_rows) {
        std::cout << "  " << std::left << std::setw(8) << r.mode
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(10) << r.coldStartMs << " ms, "
                  << r.sectionsVerified << " section(s) verified\n";
    }
    std::cout << "  logits identical across modes: "
              << (verify_identical ? "yes" : "NO") << "\n";

    std::cout << "\nhot swap under load (batched, " << cb_batch.size()
              << "-ticket stream x2 each side):\n"
              << "  cutover " << std::fixed << std::setprecision(2)
              << swap_ms << " ms, dropped tickets: "
              << (swap_zero_dropped ? "none" : "SOME")
              << ", per-generation bit-identical: "
              << (swap_identical ? "yes" : "NO") << "\n";

    std::ofstream json("BENCH_serving.json");
    json << std::setprecision(6) << "{\n  \"bench\": \"serving\",\n"
         << "  \"scheme\": \"edkm\",\n"
         << "  \"mapped\": " << (mapped ? "true" : "false") << ",\n"
         << "  \"bit_identical\": " << (exact ? "true" : "false")
         << ",\n"
         << "  \"eager\": {\"cold_start_ms\": " << eager.coldStartMs
         << ", \"resident_bytes\": " << eager.residentBytes << "},\n"
         << "  \"streaming\": {\"cold_start_ms\": "
         << streaming.coldStartMs
         << ", \"resident_bytes\": " << streaming.residentBytes
         << ", \"streamed_matmuls\": " << stats.streamedMatmuls
         << ", \"lazy_decodes\": " << stats.decodes << "},\n"
         << "  \"resident_ratio\": " << ratio << ",\n"
         << "  \"decode\": {\"prompt_tokens\": " << kPromptLen
         << ", \"new_tokens\": " << kNewTokens
         << ", \"kv_tokens_per_sec\": " << kv_tps
         << ", \"full_prefix_tokens_per_sec\": " << full_tps
         << ", \"speedup\": " << kv_tps / full_tps
         << ", \"bit_identical\": "
         << (kv_identical ? "true" : "false") << "},\n"
         << "  \"fused_decode\": {\"fused_tokens_per_sec\": " << fused_tps
         << ", \"staged_tokens_per_sec\": " << staged_tps
         << ", \"speedup\": " << fused_tps / staged_tps
         << ", \"fused_matmuls\": " << fused_decodes
         << ", \"bit_identical\": "
         << (fusedpath_identical ? "true" : "false")
         << ", \"fastmath_variant\": "
         << (fastmath_variant != nullptr
                 ? std::string("\"") + fastmath_variant + "\""
                 : std::string("null"))
         << ", \"fastmath_tokens_per_sec\": "
         << (fastmath_variant != nullptr ? std::to_string(fastmath_tps)
                                         : std::string("null"))
         << ", \"fastmath_opt_in_clean\": "
         << (fastmath_clean ? "true" : "false") << "},\n"
         << "  \"scaling\": [";
    for (size_t i = 0; i < scaling.size(); ++i) {
        json << (i == 0 ? "" : ", ") << "{\"threads\": "
             << scaling[i].threads
             << ", \"seconds\": " << scaling[i].seconds
             << ", \"requests_per_sec\": " << scaling[i].requestsPerSec
             << "}";
    }
    json << "],\n"
         << "  \"scaling_bit_identical\": "
         << (scaling_identical ? "true" : "false") << ",\n"
         << "  \"continuous_batching\": [";
    for (size_t i = 0; i < cb_rows.size(); ++i) {
        const CbRow &r = cb_rows[i];
        json << (i == 0 ? "" : ", ")
             << "{\"concurrency\": " << r.concurrency
             << ", \"baseline_threads\": " << r.baselineThreads
             << ", \"baseline_tokens_per_sec\": " << r.baselineTps
             << ", \"batched_tokens_per_sec\": " << r.batchedTps
             << ", \"speedup\": " << r.batchedTps / r.baselineTps
             << ", \"bit_identical\": "
             << (r.identical ? "true" : "false") << "}";
    }
    json << "],\n  \"prefix_cache\": {";
    auto prefix_json = [&json](const char *label, const PrefixRow &r) {
        json << "\"" << label << "\": {\"seconds\": " << r.seconds
             << ", \"tokens_per_sec\": " << r.tokensPerSec
             << ", \"hits\": " << r.hits
             << ", \"misses\": " << r.misses
             << ", \"reused_tokens\": " << r.reusedTokens
             << ", \"hit_rate\": " << r.hitRate << "}";
    };
    prefix_json("cold", cold);
    json << ", ";
    prefix_json("warm", warm);
    json << ", \"bit_identical\": "
         << (prefix_identical ? "true" : "false") << "},\n"
         << "  \"verify\": [";
    for (size_t i = 0; i < verify_rows.size(); ++i) {
        const VerifyRow &r = verify_rows[i];
        json << (i == 0 ? "" : ", ") << "{\"mode\": \"" << r.mode
             << "\", \"cold_start_ms\": " << r.coldStartMs
             << ", \"sections_verified\": " << r.sectionsVerified
             << "}";
    }
    json << "],\n"
         << "  \"verify_bit_identical\": "
         << (verify_identical ? "true" : "false") << ",\n"
         << "  \"hot_swap\": {\"cutover_ms\": " << swap_ms
         << ", \"zero_dropped\": "
         << (swap_zero_dropped ? "true" : "false")
         << ", \"bit_identical\": "
         << (swap_identical ? "true" : "false") << "}\n}\n";
    std::cout << "\nwrote BENCH_serving.json\n";

    // Acceptance gates: identical logits, streaming footprint under
    // half of the eager dense decode, bit-identical KV decode that
    // beats the full-prefix recompute on tokens/sec, thread-count-
    // independent server output, batched decode bit-identical to
    // serial AND faster than the per-thread baseline once there is
    // real concurrency, and a warm prefix cache that actually hits.
    bool batched_wins = true;
    for (const CbRow &r : cb_rows) {
        if (r.concurrency >= 4) {
            batched_wins = batched_wins && r.batchedTps > r.baselineTps;
        }
    }
    // New gates: the clean checksummed artifact must cold-start under
    // eager verification with every section checked (and identical
    // logits under every mode), and the mid-stream hot swap must drop
    // nothing while staying per-generation bit-identical.
    bool verify_pass = verify_identical && !verify_rows.empty() &&
                       verify_rows.front().sectionsVerified > 0;
    // Fused-decode gates: the fused m==1 path must actually run, stay
    // bit-identical to the staged path (tokens and single-step logits),
    // and the fast-math opt-in must leave the default path untouched
    // after its round trip. The speedup itself is reported, not gated —
    // it is hardware-dependent.
    bool fused_pass = fusedpath_identical && fused_decodes > 0 &&
                      fastmath_clean;
    bool pass = exact && ratio < 0.5 && kv_identical &&
                kv_tps > full_tps && scaling_identical && cb_identical &&
                batched_wins && prefix_identical && warm.hitRate > 0.0 &&
                warm.reusedTokens > 0 && verify_pass &&
                swap_zero_dropped && swap_identical && fused_pass;
    return pass ? 0 : 1;
}
