/**
 * @file
 * Reproduces Table 1 of the paper: per-line GPU/CPU memory of the
 * cross-device copy example, followed by the same saves through the
 * marshaling layer (with graph-walk, storage-id, and no detection) to
 * quantify the redundancy each strategy removes.
 *
 * Paper reference values (MB): line0 GPU 4 / CPU 0, line1 4/0,
 * line2 4/4, line3 4/8 — the final 8 MB CPU is the redundancy.
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

double
mb(int64_t b)
{
    return static_cast<double>(b) / (1024.0 * 1024.0);
}

void
table1Rows()
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetAll();
    Rng rng(1);

    std::cout << "--- Table 1: memory per line (MB) ---\n";
    std::cout << std::left << std::setw(6) << "line" << std::setw(36)
              << "code" << std::right << std::setw(6) << "GPU"
              << std::setw(6) << "CPU" << "\n";
    auto row = [&](int line, const std::string &code) {
        std::cout << std::left << std::setw(6) << line << std::setw(36)
                  << code << std::right << std::setw(6) << std::fixed
                  << std::setprecision(0)
                  << mb(mgr.stats(Device::gpu(0)).currentBytes)
                  << std::setw(6)
                  << mb(mgr.stats(Device::cpu()).currentBytes) << "\n";
    };

    Tensor x0 = Tensor::rand({1024, 1024}, rng, Device::gpu(0));
    row(0, "x0 = torch.rand([1024,1024])");
    Tensor x1 = x0.view({-1, 1});
    row(1, "x1 = x0.view(-1,1)");
    Tensor y0 = x0.to(Device::cpu());
    row(2, "y0 = x0.to('cpu')");
    Tensor y1 = x1.to(Device::cpu());
    row(3, "y1 = x1.to('cpu')");
    std::cout << "(paper: 4/0, 4/0, 4/4, 4/8)\n\n";
}

void
marshaledSaves(const std::string &label, MarshalConfig::Detection det)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetAll();
    Rng rng(1);
    MarshalConfig mc;
    mc.detection = det;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    Variable x0(Tensor::rand({1024, 1024}, rng, Device::gpu(0)), true);
    Variable loss; // keeps the graph (and saved handles) alive
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable x1 = af::view(x0, {-1, 1});
        Variable a = af::square(x1); // autograd saves x1
        Variable b = af::square(x0); // autograd saves x0 (same data!)
        loss = af::add(af::sumAll(a), af::sumAll(b));
    }
    std::cout << std::left << std::setw(26) << label << std::right
              << std::fixed << std::setprecision(0) << std::setw(8)
              << mb(ctx.residentBytes()) << std::setw(10)
              << ctx.stats().copies << std::setw(8)
              << ctx.stats().duplicatesAvoided << std::setw(12)
              << std::setprecision(1) << mb(mgr.ledger().d2hBytes)
              << "\n";
}

} // namespace

int
main()
{
    std::cout << "==========================================\n"
              << " bench_table1_storage (paper Table 1)\n"
              << "==========================================\n\n";
    table1Rows();

    std::cout << "--- Saving x0 and its view for backward through the "
                 "hook ---\n";
    std::cout << std::left << std::setw(26) << "detection" << std::right
              << std::setw(8) << "CPU MB" << std::setw(10) << "copies"
              << std::setw(8) << "dedup" << std::setw(12) << "d2h MB"
              << "\n";
    marshaledSaves("none (naive offload)",
                   MarshalConfig::Detection::kNone);
    marshaledSaves("graph walk (paper)",
                   MarshalConfig::Detection::kGraphWalk);
    marshaledSaves("storage id (extension)",
                   MarshalConfig::Detection::kStorageId);
    std::cout << "\nExpected shape: naive resident 8 MB; with detection "
                 "4 MB and half the traffic.\n";
    return 0;
}
