/**
 * @file
 * Reproduces Table 1 of the paper: per-line GPU/CPU memory of the
 * cross-device copy example, followed by the same saves through the
 * marshaling layer (with graph-walk, storage-id, and no detection) to
 * quantify the redundancy each strategy removes.
 *
 * Paper reference values (MB): line0 GPU 4 / CPU 0, line1 4/0,
 * line2 4/4, line3 4/8 — the final 8 MB CPU is the redundancy.
 *
 * Also accounts the *on-disk* side of the story: whole-model
 * ModelArtifacts produced through the unified compression API
 * (CompressorRegistry + CompressionPlan + Session) for the fp16 / RTN
 * / eDKM schemes, with SizeReport accounting vs actual artifact bytes.
 *
 * Emits machine-readable JSON to BENCH_table1_storage.json (cwd).
 */

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "autograd/engine.h"
#include "autograd/functional.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

double
mb(int64_t b)
{
    return static_cast<double>(b) / (1024.0 * 1024.0);
}

void
table1Rows()
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetAll();
    Rng rng(1);

    std::cout << "--- Table 1: memory per line (MB) ---\n";
    std::cout << std::left << std::setw(6) << "line" << std::setw(36)
              << "code" << std::right << std::setw(6) << "GPU"
              << std::setw(6) << "CPU" << "\n";
    auto row = [&](int line, const std::string &code) {
        std::cout << std::left << std::setw(6) << line << std::setw(36)
                  << code << std::right << std::setw(6) << std::fixed
                  << std::setprecision(0)
                  << mb(mgr.stats(Device::gpu(0)).currentBytes)
                  << std::setw(6)
                  << mb(mgr.stats(Device::cpu()).currentBytes) << "\n";
    };

    Tensor x0 = Tensor::rand({1024, 1024}, rng, Device::gpu(0));
    row(0, "x0 = torch.rand([1024,1024])");
    Tensor x1 = x0.view({-1, 1});
    row(1, "x1 = x0.view(-1,1)");
    Tensor y0 = x0.to(Device::cpu());
    row(2, "y0 = x0.to('cpu')");
    Tensor y1 = x1.to(Device::cpu());
    row(3, "y1 = x1.to('cpu')");
    std::cout << "(paper: 4/0, 4/0, 4/4, 4/8)\n\n";
}

struct MarshalRow
{
    std::string label;
    double residentMb = 0.0;
    int64_t copies = 0;
    int64_t dedup = 0;
    double d2hMb = 0.0;
};

MarshalRow
marshaledSaves(const std::string &label, MarshalConfig::Detection det)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetAll();
    Rng rng(1);
    MarshalConfig mc;
    mc.detection = det;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    Variable x0(Tensor::rand({1024, 1024}, rng, Device::gpu(0)), true);
    Variable loss; // keeps the graph (and saved handles) alive
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable x1 = af::view(x0, {-1, 1});
        Variable a = af::square(x1); // autograd saves x1
        Variable b = af::square(x0); // autograd saves x0 (same data!)
        loss = af::add(af::sumAll(a), af::sumAll(b));
    }
    MarshalRow row;
    row.label = label;
    row.residentMb = mb(ctx.residentBytes());
    row.copies = ctx.stats().copies;
    row.dedup = ctx.stats().duplicatesAvoided;
    row.d2hMb = mb(mgr.ledger().d2hBytes);
    std::cout << std::left << std::setw(26) << label << std::right
              << std::fixed << std::setprecision(0) << std::setw(8)
              << row.residentMb << std::setw(10) << row.copies
              << std::setw(8) << row.dedup << std::setw(12)
              << std::setprecision(1) << row.d2hMb << "\n";
    return row;
}

struct ArtifactRow
{
    eval::SizeReport size;
    int64_t artifactBytes = 0; ///< actual serialized container size
};

/**
 * Compress a small model through the unified API and measure both the
 * accounted (deployed-format) size and the lossless container size.
 */
ArtifactRow
artifactStorage(nn::MiniLlama &model, const api::CompressionPlan &plan)
{
    api::Session session;
    api::CalibData calib;
    calib.trainConfig.steps = 0; // freeze-only: storage accounting
    api::SessionResult res = session.run(model, plan, std::move(calib));
    ArtifactRow row;
    row.size = res.report.size;
    row.artifactBytes =
        static_cast<int64_t>(res.artifact.serialize().size());
    return row;
}

} // namespace

int
main()
{
    std::cout << "==========================================\n"
              << " bench_table1_storage (paper Table 1)\n"
              << "==========================================\n\n";
    table1Rows();

    std::cout << "--- Saving x0 and its view for backward through the "
                 "hook ---\n";
    std::cout << std::left << std::setw(26) << "detection" << std::right
              << std::setw(8) << "CPU MB" << std::setw(10) << "copies"
              << std::setw(8) << "dedup" << std::setw(12) << "d2h MB"
              << "\n";
    std::vector<MarshalRow> marshal_rows;
    marshal_rows.push_back(marshaledSaves(
        "none (naive offload)", MarshalConfig::Detection::kNone));
    marshal_rows.push_back(marshaledSaves(
        "graph walk (paper)", MarshalConfig::Detection::kGraphWalk));
    marshal_rows.push_back(marshaledSaves(
        "storage id (extension)", MarshalConfig::Detection::kStorageId));
    std::cout << "\nExpected shape: naive resident 8 MB; with detection "
                 "4 MB and half the traffic.\n\n";

    // --- On-disk artifact sizes through the unified API ---
    std::cout << "--- Whole-model artifacts (registry + plan + session) "
                 "---\n";
    std::cout << std::left << std::setw(10) << "scheme" << std::right
              << std::setw(12) << "size KiB" << std::setw(10) << "b/w"
              << std::setw(10) << "GB@7B" << std::setw(14)
              << "artifact KiB" << "\n";
    nn::LlamaConfig mcfg;
    mcfg.vocab = 256;
    mcfg.dim = 48;
    mcfg.heads = 4;
    mcfg.layers = 2;
    std::vector<std::pair<std::string, ArtifactRow>> artifact_rows;
    for (const auto &[scheme, bits] :
         std::vector<std::pair<std::string, int>>{
             {"fp16", 16}, {"rtn", 4}, {"rtn", 3}, {"edkm", 3}}) {
        api::CompressionPlan plan;
        plan.scheme = scheme;
        plan.bits = bits == 16 ? 4 : bits; // fp16 ignores bits
        plan.groupSize = 16;
        nn::MiniLlama model(mcfg); // fresh weights per scheme
        ArtifactRow row = artifactStorage(model, plan);
        std::string label =
            scheme == "fp16" ? scheme : scheme + std::to_string(bits);
        artifact_rows.emplace_back(label, row);
        std::cout << std::left << std::setw(10) << label << std::right
                  << std::fixed << std::setprecision(1) << std::setw(12)
                  << row.size.payloadBytes / 1024.0 << std::setw(10)
                  << std::setprecision(2) << row.size.bitsPerWeight
                  << std::setw(10) << row.size.projectedGb7B
                  << std::setw(14) << std::setprecision(1)
                  << row.artifactBytes / 1024.0 << "\n";
    }

    std::ofstream json("BENCH_table1_storage.json");
    json << "{\n  \"bench\": \"table1_storage\",\n"
         << "  \"marshal\": [\n";
    for (size_t i = 0; i < marshal_rows.size(); ++i) {
        const MarshalRow &r = marshal_rows[i];
        json << "    {\"detection\": \"" << r.label
             << "\", \"resident_mb\": " << r.residentMb
             << ", \"copies\": " << r.copies << ", \"dedup\": "
             << r.dedup << ", \"d2h_mb\": " << r.d2hMb << "}"
             << (i + 1 < marshal_rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"artifacts\": [\n";
    for (size_t i = 0; i < artifact_rows.size(); ++i) {
        const auto &[label, r] = artifact_rows[i];
        json << "    {\"label\": \"" << label << "\", \"size\": "
             << r.size.toJson() << ", \"artifact_bytes\": "
             << r.artifactBytes << "}"
             << (i + 1 < artifact_rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "\nwrote BENCH_table1_storage.json\n";
    return 0;
}
