/**
 * @file
 * Plan-file-driven scheme sweep: every compression scheme in the
 * CompressorRegistry runs over the same model through api::Session
 * (the registry makes the sweep a loop over names), reporting deployed
 * size and reconstruction MSE per scheme side by side — the quick
 * "which scheme at which budget" table the unified API was built for.
 *
 * Emits machine-readable JSON to BENCH_sweep.json (cwd).
 */

#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/registry.h"
#include "api/session.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

nn::LlamaConfig
sweepConfig()
{
    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 48;
    cfg.heads = 4;
    cfg.layers = 2;
    return cfg;
}

Tensor
calibTokens(int64_t vocab)
{
    std::vector<int64_t> toks;
    Rng rng(3);
    for (int i = 0; i < 2 * 24; ++i) {
        toks.push_back(rng.randint(0, vocab - 1));
    }
    return Tensor::fromIndices(toks, {2, 24});
}

/** Mean squared error between the original weights and the compressed
 *  model's (over every parameter). */
double
weightMse(const std::vector<std::pair<std::string, std::vector<float>>>
              &original,
          nn::MiniLlama &model)
{
    double acc = 0.0;
    int64_t count = 0;
    auto params = model.namedParameters();
    for (size_t i = 0; i < params.size(); ++i) {
        const std::vector<float> &want = original[i].second;
        std::vector<float> got = params[i].second.data().toVector();
        for (size_t j = 0; j < want.size(); ++j) {
            double d = static_cast<double>(got[j]) -
                       static_cast<double>(want[j]);
            acc += d * d;
        }
        count += static_cast<int64_t>(want.size());
    }
    return acc / static_cast<double>(count);
}

struct SweepRow
{
    std::string scheme;
    eval::SizeReport size;
    int64_t artifactBytes = 0;
    double mse = 0.0;
};

} // namespace

int
main()
{
    std::cout << "==========================================\n"
              << " bench_sweep (registry-driven scheme sweep)\n"
              << "==========================================\n\n";
    std::cout << std::left << std::setw(13) << "scheme" << std::right
              << std::setw(10) << "b/w" << std::setw(12) << "size KiB"
              << std::setw(14) << "artifact KiB" << std::setw(14)
              << "weight MSE" << "\n";

    nn::LlamaConfig cfg = sweepConfig();
    std::vector<SweepRow> rows;
    for (const std::string &scheme :
         api::CompressorRegistry::instance().names()) {
        // Same declarative plan for every scheme; the registry turns
        // the sweep into a loop over names.
        api::CompressionPlan plan;
        plan.scheme = scheme;
        plan.bits = scheme == "smoothquant" ? 8 : 4;
        plan.groupSize = 16;
        plan.dkmMaxIters = 2;

        nn::MiniLlama model(cfg); // same seed -> same initial weights
        std::vector<std::pair<std::string, std::vector<float>>> original;
        for (auto &[name, p] : model.namedParameters()) {
            original.emplace_back(name, p.data().toVector());
        }

        api::CalibData calib;
        calib.tokens = calibTokens(cfg.vocab);
        calib.trainConfig.steps = 0; // freeze-only sweep

        api::Session session;
        api::SessionResult res =
            session.run(model, plan, std::move(calib));

        SweepRow row;
        row.scheme = scheme;
        row.size = res.report.size;
        row.artifactBytes =
            static_cast<int64_t>(res.artifact.serialize().size());
        row.mse = weightMse(original, model);
        rows.push_back(row);
        std::cout << std::left << std::setw(13) << scheme << std::right
                  << std::fixed << std::setprecision(2) << std::setw(10)
                  << row.size.bitsPerWeight << std::setw(12)
                  << std::setprecision(1)
                  << row.size.payloadBytes / 1024.0 << std::setw(14)
                  << row.artifactBytes / 1024.0 << std::setw(14)
                  << std::scientific << std::setprecision(3) << row.mse
                  << std::fixed << "\n";
    }

    std::ofstream json("BENCH_sweep.json");
    json << "{\n  \"bench\": \"sweep\",\n  \"schemes\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        json << "    {\"scheme\": \"" << r.scheme << "\", \"size\": "
             << r.size.toJson() << ", \"artifact_bytes\": "
             << r.artifactBytes << ", \"weight_mse\": "
             << std::scientific << std::setprecision(6) << r.mse << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "\nwrote BENCH_sweep.json\n";
    return 0;
}
