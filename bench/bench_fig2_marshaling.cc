/**
 * @file
 * Fig 2 companion bench: cost and effectiveness of the marshaling
 * layer's duplicate detection. Measures pack() throughput for each
 * detection strategy, and sweeps the graph-walk hop bound on a
 * view-chain workload to show where detection saturates (the paper
 * found 4 hops sufficient for the original DKM graph).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

/** DKM-like save pattern: A saved, then A^T, then A again. */
void
BM_PackDkmPattern(benchmark::State &state)
{
    auto detection =
        static_cast<MarshalConfig::Detection>(state.range(0));
    int64_t side = state.range(1);
    Rng rng(3);
    for (auto _ : state) {
        state.PauseTiming();
        DeviceManager::instance().resetStats();
        MarshalConfig mc;
        mc.detection = detection;
        mc.minOffloadBytes = 1;
        MarshalContext ctx(mc);
        Variable x(Tensor::rand({side, side}, rng, Device::gpu(0)),
                   true);
        Variable w(Tensor::rand({side, 1}, rng, Device::gpu(0)), true);
        state.ResumeTiming();

        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            Variable a = af::softmaxLastDim(x); // save #1: A
            Variable y = af::matmul(af::transpose(a, 0, 1), w); // A^T, w
            Variable z = af::matmul(a, w);      // save: A again
            loss = af::add(af::sumAll(y), af::sumAll(z));
        }
        benchmark::DoNotOptimize(loss.data().item());

        state.counters["copies"] =
            static_cast<double>(ctx.stats().copies);
        state.counters["dedup"] =
            static_cast<double>(ctx.stats().duplicatesAvoided);
        state.counters["d2h_MB"] =
            static_cast<double>(
                DeviceManager::instance().ledger().d2hBytes) /
            (1024.0 * 1024.0);
        state.counters["walk_steps"] =
            static_cast<double>(ctx.stats().walkSteps);
    }
}

/** Long view chains: how hop depth affects detection. */
void
BM_HopSweep(benchmark::State &state)
{
    int hops = static_cast<int>(state.range(0));
    Rng rng(5);
    for (auto _ : state) {
        state.PauseTiming();
        MarshalConfig mc;
        mc.maxHops = hops;
        mc.minOffloadBytes = 1;
        MarshalContext ctx(mc);
        Variable x(Tensor::rand({64, 64}, rng, Device::gpu(0)), true);
        state.ResumeTiming();

        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            Variable s0 = af::square(x); // registers x
            // Chain of 4 storage-invariant ops, saving at each depth.
            Variable v1 = af::view(x, {4096});
            Variable v2 = af::view(v1, {64, 64});
            Variable v3 = af::transpose(v2, 0, 1);
            Variable v4 = af::unsqueeze(v3, 0);
            Variable acc = af::sumAll(s0);
            for (const Variable *v : {&v1, &v2, &v3, &v4}) {
                acc = af::add(acc, af::sumAll(af::square(*v)));
            }
            loss = acc;
        }
        benchmark::DoNotOptimize(loss.data().item());
        state.counters["dedup"] =
            static_cast<double>(ctx.stats().duplicatesAvoided);
        state.counters["copies"] =
            static_cast<double>(ctx.stats().copies);
        state.counters["walk_steps"] =
            static_cast<double>(ctx.stats().walkSteps);
    }
}

} // namespace

BENCHMARK(BM_PackDkmPattern)
    ->ArgsProduct(
        {{static_cast<long>(MarshalConfig::Detection::kGraphWalk),
          static_cast<long>(MarshalConfig::Detection::kStorageId),
          static_cast<long>(MarshalConfig::Detection::kNone)},
         {128, 512}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_HopSweep)
    ->DenseRange(0, 6, 1)
    ->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::cout << "\nExpected shape: graph-walk/storage-id avoid ~half "
                 "the copies of 'none'; hop-sweep dedup saturates once "
                 "the bound covers the deepest view chain (paper: 4 "
                 "hops sufficed).\n";
    return 0;
}
