/**
 * @file
 * Fig 3 companion bench: the uniquification codec. Measures
 * decompose/reconstruct round-trip cost and compression ratio versus
 * |W|, the exactness of the attention-table + index-list encoding, the
 * effect of bucketing precision (BF16 vs FP16 vs no bucketing — design
 * choice #2 in DESIGN.md, showing the f32 cliff), and the per-learner
 * payload as the index list shards (Fig 3's right half).
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "core/uniquify.h"
#include "dist/learner_group.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace edkm;

namespace {

Tensor
bf16Weights(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    return Tensor::randn({n}, rng, Device::cpu(), 0.02f)
        .to(DType::kBf16)
        .to(DType::kF32);
}

void
BM_UniquifyDecompose(benchmark::State &state)
{
    int64_t n = state.range(0);
    Tensor w = bf16Weights(n, 11);
    int64_t uniq = 0;
    for (auto _ : state) {
        UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
        benchmark::DoNotOptimize(dec.indexList.rawData<uint16_t>());
        uniq = dec.uniqueCount();
    }
    state.counters["unique"] = static_cast<double>(uniq);
    state.counters["map_compression_k8"] =
        uniquify(w, HalfKind::kBf16).mapCompressionRatio(8);
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_UniquifyReconstruct(benchmark::State &state)
{
    int64_t n = state.range(0);
    Tensor w = bf16Weights(n, 13);
    UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
    for (auto _ : state) {
        Tensor rec = dec.reconstruct();
        benchmark::DoNotOptimize(rec.rawData<float>());
    }
    // Exactness: the codec is lossless for bf16 data.
    state.counters["max_err"] =
        maxAbsDiff(dec.reconstruct(), w.view({n}));
    state.SetItemsProcessed(state.iterations() * n);
}

/** Bucketing precision: bf16 vs fp16 bucket counts (design choice). */
void
BM_BucketingPrecision(benchmark::State &state)
{
    int64_t n = 1 << 18;
    auto kind = static_cast<HalfKind>(state.range(0));
    Rng rng(17);
    // Full-precision f32 weights (not pre-bucketed): fp16 produces more
    // buckets than bf16; raw f32 would defeat uniquification entirely.
    Tensor w = Tensor::randn({n}, rng, Device::cpu(), 0.02f);
    int64_t uniq = 0;
    for (auto _ : state) {
        UniqueDecomposition dec = uniquify(w, kind);
        uniq = dec.uniqueCount();
        benchmark::DoNotOptimize(uniq);
    }
    state.counters["unique"] = static_cast<double>(uniq);
    state.counters["unique_fraction"] =
        static_cast<double>(uniq) / static_cast<double>(n);
}

} // namespace

BENCHMARK(BM_UniquifyDecompose)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_UniquifyReconstruct)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_BucketingPrecision)
    ->Arg(static_cast<long>(HalfKind::kBf16))
    ->Arg(static_cast<long>(HalfKind::kFp16))
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Fig 3's storage arithmetic: dense map vs table+index vs sharded.
    std::cout << "\n--- Fig 3 storage arithmetic (k = 8 centroids) ---\n";
    std::cout << "         |W|   unique  dense-map    table+index   "
                 "per-learner(L=8)\n";
    for (int64_t n : {int64_t(1) << 16, int64_t(1) << 20,
                      int64_t(67108864)}) {
        int64_t u;
        if (n <= (1 << 20)) {
            u = uniquify(bf16Weights(n, 19), HalfKind::kBf16)
                    .uniqueCount();
        } else {
            u = 65536; // saturated (the paper's full-scale regime)
        }
        double dense = static_cast<double>(n) * 8 * 4;
        double packed = static_cast<double>(u) * 8 * 4 + n * 2.0;
        LearnerGroup group(8);
        double sharded = static_cast<double>(u) * 8 * 4 +
                         group.shardSize(n, 0) * 2.0;
        auto mb = [](double b) { return b / (1024.0 * 1024.0); };
        std::cout << "  " << std::setw(10) << n << "  " << std::setw(6)
                  << u << "  " << std::setw(9) << mb(dense) << " MB  "
                  << std::setw(10) << mb(packed) << " MB  "
                  << std::setw(12) << mb(sharded) << " MB\n";
    }
    std::cout << "(at 67M weights the paper's regime: table+index is "
                 "~23x smaller, sharded ~68x)\n";
    return 0;
}
