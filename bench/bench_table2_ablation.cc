/**
 * @file
 * Reproduces Table 2 of the paper: the ablation of marshaling (M),
 * uniquification (U), and sharding (S) on one attention layer from a
 * LLaMA-style decoder, measuring the memory footprint saved for the
 * backward pass and the simulated fwd+bwd time of one DKM step at
 * 3-bit compression with 8 learners.
 *
 * Paper reference (67M-weight layer): 1600 MB -> 544 (M, 2.9x) ->
 * 68 (M+U, 23.5x) / 97 (M+S, 16.4x) -> 12 MB (M+U+S, 129.9x), with
 * runtime 8.67 s -> 14.9 s (1.7x) for the full stack.
 *
 * This harness runs the real implementation on a scaled attention layer
 * (4 projection matrices), then prints an analytic projection of the
 * measured per-component costs to the paper's full 4096x4096x4 geometry.
 * Sweeps of the learner count and the backward mode (the design choices
 * DESIGN.md calls out) follow.
 *
 * Environment: EDKM_T2_SIDE overrides the matrix side (default 320).
 */

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/dkm.h"
#include "core/edkm.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

struct Config
{
    int64_t side = 320;     ///< matrix side (paper: 4096)
    int num_matrices = 4;   ///< q,k,v,o projections
    int iters = 3;
    int bits = 3;
    int learners = 8;
};

struct Row
{
    std::string name;
    int64_t savedBytes = 0;
    double simSeconds = 0.0;
    double wallSeconds = 0.0;
    int64_t uniqueCount = 0;
};

std::vector<Tensor>
makeLayerWeights(const Config &cfg)
{
    Rng rng(2024);
    std::vector<Tensor> weights;
    for (int m = 0; m < cfg.num_matrices; ++m) {
        weights.push_back(
            Tensor::randn({cfg.side, cfg.side}, rng, Device::cpu(),
                          0.02f)
                .to(DType::kBf16)
                .to(DType::kF32)
                .to(Device::gpu(0)));
    }
    return weights;
}

DkmConfig
dkmConfig(const Config &cfg)
{
    DkmConfig d;
    d.bits = cfg.bits;
    d.maxIters = cfg.iters;
    d.convergenceEps = 0.0f;
    return d;
}

/** Run one DKM fwd+bwd over all matrices with the composed layer. */
Row
runComposed(const Config &cfg, const std::string &name,
            MarshalConfig::Detection det)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetStats();
    MarshalConfig mc;
    mc.detection = det;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    std::vector<Tensor> weights = makeLayerWeights(cfg);

    auto t0 = std::chrono::steady_clock::now();
    double sim0 = mgr.simulatedSeconds();
    int64_t saved = 0;
    for (Tensor &wt : weights) {
        DkmLayer layer(dkmConfig(cfg));
        Variable w(wt, true);
        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            loss = af::sumAll(af::square(layer.forward(w)));
        }
        saved += ctx.residentBytes();
        backward(loss);
    }
    auto t1 = std::chrono::steady_clock::now();
    Row row;
    row.name = name;
    row.savedBytes = saved;
    row.simSeconds = mgr.simulatedSeconds() - sim0;
    row.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return row;
}

/** Run one DKM fwd+bwd over all matrices with the fused eDKM layer. */
Row
runFused(const Config &cfg, const std::string &name, bool uniquify,
         bool shard, EdkmConfig::BackwardMode mode =
                         EdkmConfig::BackwardMode::kReconstruct)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetStats();
    MarshalConfig mc;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    auto group = std::make_shared<LearnerGroup>(cfg.learners);
    std::vector<Tensor> weights = makeLayerWeights(cfg);

    auto t0 = std::chrono::steady_clock::now();
    double sim0 = mgr.simulatedSeconds();
    int64_t saved = 0;
    int64_t uniq = 0;
    for (Tensor &wt : weights) {
        EdkmConfig ecfg;
        ecfg.dkm = dkmConfig(cfg);
        ecfg.uniquify = uniquify;
        ecfg.shard = shard;
        ecfg.backwardMode = mode;
        EdkmLayer layer(ecfg, group);
        Variable w(wt, true);
        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            loss = af::sumAll(af::square(layer.forward(w)));
        }
        saved += ctx.residentBytes();
        uniq = std::max(uniq, layer.report().uniqueCount);
        backward(loss);
    }
    auto t1 = std::chrono::steady_clock::now();
    Row row;
    row.name = name;
    row.savedBytes = saved;
    row.simSeconds = mgr.simulatedSeconds() - sim0;
    row.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    row.uniqueCount = uniq;
    return row;
}

void
printRows(const std::vector<Row> &rows)
{
    double base = static_cast<double>(rows[0].savedBytes);
    std::cout << std::left << std::setw(14) << "M  U  S"
              << std::right << std::setw(12) << "mem MB"
              << std::setw(12) << "reduction" << std::setw(13)
              << "sim time ms" << std::setw(12) << "wall ms" << "\n";
    for (const Row &r : rows) {
        std::cout << std::left << std::setw(14) << r.name << std::right
                  << std::fixed << std::setw(12) << std::setprecision(2)
                  << r.savedBytes / (1024.0 * 1024.0) << std::setw(11)
                  << std::setprecision(1) << base / r.savedBytes << "x"
                  << std::setw(13) << std::setprecision(3)
                  << r.simSeconds * 1e3 << std::setw(12)
                  << std::setprecision(1) << r.wallSeconds * 1e3
                  << "\n";
    }
}

/**
 * Analytic projection of the measured save pattern to the paper's
 * geometry (4 x 4096 x 4096 weights, 65,536 unique values): the byte
 * formulas are exact, only the unique count is an assumption (it
 * saturates at 2^16 for 67M bf16 weights).
 */
void
printProjection(const Config &cfg, int64_t measured_unique)
{
    const double n = 4096.0 * 4096.0 * cfg.num_matrices;
    const double k = 1 << cfg.bits;
    const double iters = cfg.iters;
    const double u = 65536.0;
    const double L = cfg.learners;

    // Composed-layer save pattern per iteration (measured structure):
    // cdist-out + square-dup + A + A^T-dup (all n*k f32) + W (n f32).
    double base = iters * (4.0 * n * k * 4 + n * 4) + n * k * 4;
    double m = iters * (2.0 * n * k * 4) + n * 4; // dedup dups + W once
    double ms = iters * (2.0 * n * k * 4) / L + n * 4 / L;
    double mu = iters * (u * k * 4 + 3 * k * 4) + n * 2 + 2 * u * 4;
    double mus = iters * (u * k * 4 + 3 * k * 4) + n * 2 / L + 2 * u * 4;

    auto mbs = [](double b) { return b / (1024.0 * 1024.0); };
    std::cout << "\n--- projection to the paper's geometry (4 x 4096^2 "
                 "weights, "
              << cfg.iters << " iterations, u=65536, L=" << cfg.learners
              << ") ---\n";
    std::cout << std::left << std::setw(14) << "M  U  S" << std::right
              << std::setw(12) << "mem MB" << std::setw(12)
              << "reduction" << "   (paper MB / reduction)\n";
    auto prow = [&](const char *name, double bytes, const char *paper) {
        std::cout << std::left << std::setw(14) << name << std::right
                  << std::fixed << std::setw(12) << std::setprecision(1)
                  << mbs(bytes) << std::setw(11)
                  << std::setprecision(1) << base / bytes << "x   "
                  << paper << "\n";
    };
    prow("-  -  -", base, "(1600 / 1.0x)");
    prow("M  -  -", m, "(544 / 2.9x)");
    prow("M  -  S", ms, "(97 / 16.4x)");
    prow("M  U  -", mu, "(68 / 23.5x)");
    prow("M  U  S", mus, "(12 / 129.9x)");
    std::cout << "(measured unique count at bench scale: "
              << measured_unique << ")\n";
}

} // namespace

int
main()
{
    Config cfg;
    if (const char *env = std::getenv("EDKM_T2_SIDE")) {
        cfg.side = std::atoll(env);
    }
    std::cout << "==========================================\n"
              << " bench_table2_ablation (paper Table 2)\n"
              << "==========================================\n"
              << "attention layer: " << cfg.num_matrices << " x "
              << cfg.side << "x" << cfg.side << " bf16 weights, "
              << cfg.bits << "-bit clustering, " << cfg.iters
              << " DKM iterations, " << cfg.learners << " learners\n\n";

    std::vector<Row> rows;
    rows.push_back(
        runComposed(cfg, "-  -  -", MarshalConfig::Detection::kNone));
    rows.push_back(runComposed(cfg, "M  -  -",
                               MarshalConfig::Detection::kGraphWalk));
    rows.push_back(runFused(cfg, "M  -  S", false, true));
    rows.push_back(runFused(cfg, "M  U  -", true, false));
    rows.push_back(runFused(cfg, "M  U  S", true, true));
    printRows(rows);
    printProjection(cfg, rows.back().uniqueCount);

    // ---- Ablation: learner count |L| (design choice #3) ----
    std::cout << "\n--- sharding degree sweep (M+U+S) ---\n";
    std::cout << std::left << std::setw(10) << "learners" << std::right
              << std::setw(12) << "mem MB" << std::setw(13)
              << "sim time ms" << "\n";
    for (int learners : {1, 2, 4, 8}) {
        Config c = cfg;
        c.learners = learners;
        Row r = runFused(c, "", true, true);
        std::cout << std::left << std::setw(10) << learners
                  << std::right << std::fixed << std::setw(12)
                  << std::setprecision(2)
                  << r.savedBytes / (1024.0 * 1024.0) << std::setw(13)
                  << std::setprecision(3) << r.simSeconds * 1e3 << "\n";
    }

    // ---- Ablation: backward mode (design choice #5) ----
    std::cout << "\n--- backward mode (M+U): reconstruct (paper) vs "
                 "fused (extension) ---\n";
    for (auto [name, mode] :
         {std::pair<const char *, EdkmConfig::BackwardMode>{
              "reconstruct", EdkmConfig::BackwardMode::kReconstruct},
          {"fused", EdkmConfig::BackwardMode::kFused}}) {
        DeviceManager::instance().resetStats();
        Row r = runFused(cfg, name, true, false, mode);
        std::cout << std::left << std::setw(14) << name << std::right
                  << std::fixed << "sim " << std::setprecision(3)
                  << r.simSeconds * 1e3 << " ms, wall "
                  << std::setprecision(1) << r.wallSeconds * 1e3
                  << " ms\n";
    }
    std::cout << "\nExpected shape: strict memory ordering base > M > "
                 "M+S > M+U > M+U+S at full scale; ~130x combined; "
                 "reconstruct pays extra backward time for autograd "
                 "compatibility.\n";
    return 0;
}
