/**
 * @file
 * Distributed-clustering scaling bench: the sharded eDKM loop at 1/2/4
 * learners, as real processes on both transports and as the functional
 * single-process simulation, plus marshal-overlap on/off rows.
 *
 * Emits BENCH_dist.json (cwd) with, per learner count:
 *  - wall-clock milliseconds of the real multi-process run on each
 *    transport (shm rings, localhost sockets);
 *  - the simulated-clock ring-model seconds of the functional run (the
 *    cost model the comm ledger drives);
 *  - collective and transport byte counters.
 *
 * Every multi-process row is gated on bit-identity against the
 * functional simulation at the same learner count — the bench exits
 * nonzero on any mismatch, so CI perf tracking doubles as a
 * correctness check. No speedup is asserted anywhere: CI containers
 * may expose a single CPU, where extra learner processes show
 * correctness, not throughput.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "device/device_manager.h"
#include "dist/sharded_cluster.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace edkm;

namespace {

struct Row
{
    int world = 0;
    std::string transport; // "shm", "socket", or "simulated"
    double wallMs = 0.0;
    double simSeconds = 0.0;
    int64_t allGatherBytes = 0;
    int64_t allReduceBytes = 0;
    int64_t transportBytesReceived = 0;
};

bool
sameBits(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(float)) == 0);
}

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    int64_t n = 1 << 14;
    try {
        if (argc > 1) {
            n = std::stoll(argv[1]);
        }
    } catch (const std::exception &) {
        std::cerr << "usage: bench_dist_scaling [n]  (positive weight "
                     "count)\n";
        return 2;
    }
    if (n < 1) {
        std::cerr << "usage: bench_dist_scaling [n]  (positive weight "
                     "count)\n";
        return 2;
    }

    Rng rng(29);
    Tensor w = Tensor::rand({n}, rng);

    dist::ShardedClusterOptions opts;
    opts.edkm.dkm.bits = 4;
    opts.edkm.dkm.maxIters = 8;
    // Fixed iteration count: every row runs identical work, so the
    // rows are comparable (and bit-identity is checked on real math).
    opts.edkm.dkm.convergenceEps = 0.0f;

    DeviceManager &mgr = DeviceManager::instance();
    std::vector<Row> rows;
    std::cout << "sharded eDKM clustering, n=" << n
              << " k=" << (1 << opts.edkm.dkm.bits)
              << " iters=" << opts.edkm.dkm.maxIters << "\n";

    for (int world : {1, 2, 4}) {
        // Functional simulation: the reference result and the
        // ring-model simulated clock.
        double sim0 = mgr.simulatedSeconds();
        auto t0 = std::chrono::steady_clock::now();
        dist::ShardedClusterResult ref =
            dist::shardedClusterSimulate(w, opts, world);
        Row sim_row;
        sim_row.world = world;
        sim_row.transport = "simulated";
        sim_row.wallMs = wallMsSince(t0);
        sim_row.simSeconds = mgr.simulatedSeconds() - sim0;
        sim_row.allGatherBytes = ref.comm.allGatherBytes;
        sim_row.allReduceBytes = ref.comm.allReduceBytes;
        rows.push_back(sim_row);
        std::cout << "  world=" << world << " simulated: "
                  << sim_row.wallMs << " ms wall, " << sim_row.simSeconds
                  << " s simulated-clock\n";

        for (dist::TransportKind kind :
             {dist::TransportKind::kShm, dist::TransportKind::kSocket}) {
            dist::ProcessGroupOptions pg;
            pg.world = world;
            pg.kind = kind;
            t0 = std::chrono::steady_clock::now();
            dist::ShardedClusterResult got =
                dist::shardedClusterProcesses(w, opts, pg);
            Row row;
            row.world = world;
            row.transport = dist::transportKindName(kind);
            row.wallMs = wallMsSince(t0);
            row.allGatherBytes = got.comm.allGatherBytes;
            row.allReduceBytes = got.comm.allReduceBytes;
            row.transportBytesReceived = got.transportBytesReceived;
            rows.push_back(row);
            std::cout << "  world=" << world << " " << row.transport
                      << ": " << row.wallMs << " ms wall, "
                      << row.transportBytesReceived
                      << " transport bytes received\n";

            // The gate: real processes must reproduce the functional
            // simulation bit for bit.
            if (!sameBits(got.weights, ref.weights) ||
                !sameBits(got.centroids, ref.centroids) ||
                got.iterations != ref.iterations) {
                std::cerr << "FAIL: world=" << world << " "
                          << row.transport
                          << " diverged from the functional "
                             "simulation\n";
                return 1;
            }
        }
    }

    // Marshal overlap on/off: simulated-GPU weights so the offload
    // path actually runs; pure data movement, so bits must not move.
    Tensor w_gpu = Tensor::rand({n}, rng, Device::gpu(0));
    double plain_ms, overlap_ms;
    int64_t reuses;
    {
        auto t0 = std::chrono::steady_clock::now();
        dist::ShardedClusterResult plain =
            dist::shardedClusterSimulate(w_gpu, opts, 2);
        plain_ms = wallMsSince(t0);
        dist::ShardedClusterOptions o2 = opts;
        o2.overlapOffload = true;
        t0 = std::chrono::steady_clock::now();
        dist::ShardedClusterResult overlapped =
            dist::shardedClusterSimulate(w_gpu, o2, 2);
        overlap_ms = wallMsSince(t0);
        reuses = overlapped.marshalBufferReuses;
        if (!sameBits(plain.weights, overlapped.weights) ||
            !sameBits(plain.centroids, overlapped.centroids)) {
            std::cerr << "FAIL: overlapOffload changed the result\n";
            return 1;
        }
    }
    std::cout << "  overlap off: " << plain_ms << " ms, on: "
              << overlap_ms << " ms (" << reuses
              << " buffers recycled)\n";

    std::ofstream json("BENCH_dist.json");
    json << "{\n"
         << "  \"bench\": \"dist_scaling\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"k\": " << (1 << opts.edkm.dkm.bits) << ",\n"
         << "  \"iterations\": " << opts.edkm.dkm.maxIters << ",\n"
         << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        json << "    {\"world\": " << r.world << ", \"transport\": \""
             << r.transport << "\", \"wall_ms\": " << r.wallMs
             << ", \"sim_seconds\": " << r.simSeconds
             << ", \"all_gather_bytes\": " << r.allGatherBytes
             << ", \"all_reduce_bytes\": " << r.allReduceBytes
             << ", \"transport_bytes_received\": "
             << r.transportBytesReceived << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"marshal_overlap\": {\"off_ms\": " << plain_ms
         << ", \"on_ms\": " << overlap_ms
         << ", \"buffer_reuses\": " << reuses << "}\n"
         << "}\n";
    std::cout << "wrote BENCH_dist.json\n";
    return 0;
}
