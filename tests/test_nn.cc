/**
 * @file
 * NN substrate tests: layers, attention causality, transformer training
 * smoke test, AdamW, and the clustered-linear integration.
 */

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "nn/adamw.h"
#include "nn/clustered_linear.h"
#include "nn/transformer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace edkm {
namespace {

using nn::AdamW;
using nn::AdamWConfig;
using nn::Embedding;
using nn::Linear;
using nn::LlamaConfig;
using nn::MiniLlama;
using nn::MultiHeadAttention;
using nn::RMSNorm;

TEST(NnLinear, ForwardAndGrad)
{
    Rng rng(1);
    Linear lin(4, 3, rng);
    Variable x(Tensor::randn({2, 4}, rng), true);
    Variable y = lin.forward(x);
    EXPECT_EQ(y.data().shape(), (Shape{2, 3}));
    backward(af::sumAll(af::square(y)));
    EXPECT_TRUE(lin.weight().grad().defined());
    EXPECT_TRUE(x.grad().defined());
}

TEST(NnLinear, CaptureInputs)
{
    Rng rng(2);
    Linear lin(4, 2, rng);
    Variable x(Tensor::randn({3, 4}, rng), false);
    lin.setCaptureInputs(true);
    lin.forward(x);
    EXPECT_TRUE(lin.capturedInput().defined());
    EXPECT_EQ(lin.capturedInput().shape(), (Shape{3, 4}));
}

TEST(NnLinear, WeightTransformApplied)
{
    Rng rng(3);
    Linear lin(2, 2, rng);
    lin.setWeightTransform([](const Variable &w) {
        return af::mulScalar(w, 0.0f); // zero the weight
    });
    Variable x(Tensor::randn({1, 2}, rng), false);
    Variable y = lin.forward(x);
    EXPECT_EQ(sumAll(absT(y.data())).item(), 0.0f);
    lin.setWeightTransform(nullptr);
    Variable y2 = lin.forward(x);
    EXPECT_GT(sumAll(absT(y2.data())).item(), 0.0f);
}

TEST(NnEmbedding, GatherAndGrad)
{
    Rng rng(4);
    Embedding emb(10, 4, rng);
    Tensor tokens = Tensor::fromIndices({1, 5, 1}, {3});
    Variable out = emb.forward(tokens);
    EXPECT_EQ(out.data().shape(), (Shape{3, 4}));
    // Duplicate tokens produce equal rows.
    EXPECT_EQ(out.data().at({0, 2}), out.data().at({2, 2}));
    backward(af::sumAll(af::square(out)));
    EXPECT_TRUE(emb.weight().grad().defined());
    // Untouched rows receive zero gradient.
    EXPECT_EQ(emb.weight().grad().at({0, 0}), 0.0f);
    EXPECT_NE(emb.weight().grad().at({5, 0}), 0.0f);
}

TEST(NnRmsNorm, NormalisesScale)
{
    Rng rng(5);
    RMSNorm norm(8);
    Variable x(Tensor::randn({4, 8}, rng, Device::cpu(), 10.0f), false);
    Variable y = norm.forward(x);
    // Unit RMS per row (weight initialised to 1).
    Tensor sq = meanDim(square(y.data()), -1);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(sq.flatAt(i), 1.0f, 1e-3);
    }
}

TEST(NnAttention, CausalMasking)
{
    // Changing a future token must not change past positions' outputs.
    Rng rng(6);
    MultiHeadAttention attn(16, 2, rng);
    Tensor x1 = Tensor::randn({1, 6, 16}, rng);
    Tensor x2 = x1.clone();
    // Perturb the last position only.
    for (int64_t d = 0; d < 16; ++d) {
        x2.setAt({0, 5, d}, x2.at({0, 5, d}) + 5.0f);
    }
    NoGradGuard ng;
    Tensor y1 = attn.forward(Variable(x1, false)).data();
    Tensor y2 = attn.forward(Variable(x2, false)).data();
    for (int64_t s = 0; s < 5; ++s) {
        for (int64_t d = 0; d < 16; ++d) {
            EXPECT_NEAR(y1.at({0, s, d}), y2.at({0, s, d}), 1e-5)
                << "position " << s << " affected by future token";
        }
    }
    // The perturbed position itself must change.
    EXPECT_GT(std::fabs(y1.at({0, 5, 0}) - y2.at({0, 5, 0})), 1e-6);
}

TEST(NnAttention, GradFlowsToAllProjections)
{
    Rng rng(7);
    MultiHeadAttention attn(8, 2, rng);
    Variable x(Tensor::randn({2, 3, 8}, rng), true);
    Variable y = attn.forward(x);
    backward(af::sumAll(af::square(y)));
    EXPECT_TRUE(attn.wq().weight().grad().defined());
    EXPECT_TRUE(attn.wk().weight().grad().defined());
    EXPECT_TRUE(attn.wv().weight().grad().defined());
    EXPECT_TRUE(attn.wo().weight().grad().defined());
    EXPECT_TRUE(x.grad().defined());
}

TEST(NnTransformer, ParameterInventory)
{
    LlamaConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 2;
    MiniLlama model(cfg);
    // 7 linears per block + lm_head.
    EXPECT_EQ(model.allLinears().size(), 2u * 7 + 1);
    // Parameter count: embed + head + blocks(4 attn + 3 mlp + 2 norm)
    // + final norm.
    int64_t hidden = cfg.resolvedHidden();
    int64_t expect = cfg.vocab * cfg.dim          // embedding
                     + cfg.vocab * cfg.dim        // lm head
                     + cfg.layers * (4 * cfg.dim * cfg.dim +
                                     3 * cfg.dim * hidden + 2 * cfg.dim)
                     + cfg.dim;                   // final norm
    EXPECT_EQ(model.parameterCount(), expect);
    // Named parameters have dotted paths.
    bool found = false;
    for (auto &[name, p] : model.namedParameters()) {
        (void)p;
        if (name == "blocks.1.attn.wq.weight") {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(NnTransformer, ForwardShapeAndLoss)
{
    LlamaConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    MiniLlama model(cfg);
    Rng rng(8);
    std::vector<int64_t> toks(2 * 5);
    for (auto &t : toks) {
        t = rng.randint(0, 31);
    }
    Tensor tokens = Tensor::fromIndices(toks, {2, 5});
    Variable logits = model.forward(tokens);
    EXPECT_EQ(logits.data().shape(), (Shape{10, 32}));
    // Untrained loss near ln(vocab).
    Tensor targets = Tensor::fromIndices(
        std::vector<int64_t>(10, 3), {10});
    Variable loss = af::crossEntropy(logits, targets);
    EXPECT_NEAR(loss.data().item(), std::log(32.0f), 1.0f);
}

TEST(NnAdamW, ConvergesOnQuadratic)
{
    // min ||x - t||^2 with Adam steps.
    Rng rng(9);
    Variable x(Tensor::randn({8}, rng), true);
    Tensor target = Tensor::randn({8}, rng);
    AdamWConfig cfg;
    cfg.lr = 0.05f;
    AdamW opt({x}, cfg);
    float first_loss = 0;
    float last_loss = 0;
    for (int step = 0; step < 200; ++step) {
        Variable loss =
            af::sumAll(af::square(af::sub(x, af::constant(target))));
        if (step == 0) {
            first_loss = loss.data().item();
        }
        last_loss = loss.data().item();
        opt.zeroGrad();
        backward(loss);
        opt.step();
    }
    EXPECT_LT(last_loss, first_loss * 0.01f);
}

TEST(NnAdamW, WeightDecayShrinksParams)
{
    Variable x(Tensor::full({4}, 1.0f), true);
    AdamWConfig cfg;
    cfg.lr = 0.1f;
    cfg.weightDecay = 0.5f;
    AdamW opt({x}, cfg);
    // Zero gradient: only decay acts.
    x.zeroGrad();
    Variable loss = af::sumAll(af::mulScalar(x, 0.0f));
    backward(loss);
    opt.step();
    EXPECT_LT(x.data().flatAt(0), 1.0f);
}

TEST(NnAdamW, ClipGradNorm)
{
    Variable x(Tensor::full({4}, 1.0f), true);
    backward(af::sumAll(af::mulScalar(x, 10.0f))); // grad = 10 each
    float norm = AdamW::clipGradNorm({x}, 1.0f);
    EXPECT_NEAR(norm, 20.0f, 1e-4); // sqrt(4*100)
    // Post-clip norm is 1.
    double total = 0;
    for (int64_t i = 0; i < 4; ++i) {
        total += x.grad().flatAt(i) * x.grad().flatAt(i);
    }
    EXPECT_NEAR(std::sqrt(total), 1.0, 1e-4);
}

TEST(NnClusteredLinear, ForwardUsesClusteredWeight)
{
    Rng rng(10);
    auto inner = std::make_shared<Linear>(8, 8, rng);
    EdkmConfig cfg;
    cfg.dkm.bits = 2;
    cfg.dkm.maxIters = 2;
    nn::ClusteredLinear cl(inner, cfg);
    Variable x(Tensor::randn({2, 8}, rng), false);
    Variable y = cl.forward(x);
    EXPECT_EQ(y.data().shape(), (Shape{2, 8}));
    // Gradient reaches the underlying full-precision weight.
    backward(af::sumAll(af::square(y)));
    EXPECT_TRUE(inner->weight().grad().defined());
    // Palettization uses the trained centroids.
    PalettizedTensor p = cl.palettize();
    EXPECT_EQ(p.bits(), 2);
    // Disabled clustering behaves as the plain layer.
    cl.setClusteringEnabled(false);
    Variable y2 = cl.forward(x);
    Variable y3 = inner->forward(x);
    EXPECT_TRUE(allclose(y2.data(), y3.data()));
}

} // namespace
} // namespace edkm
