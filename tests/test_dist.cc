/**
 * @file
 * Tests for the simulated learner group: shard partitioning properties,
 * functional collectives, and communication accounting.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "device/device_manager.h"
#include "dist/checkpoint_avg.h"
#include "dist/learner_group.h"
#include "dist/process_group.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serial.h"

namespace edkm {
namespace {

class DistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
    }
};

TEST_F(DistTest, ShardRangesPartitionExactly)
{
    for (int world : {1, 2, 3, 8}) {
        LearnerGroup g(world);
        for (int64_t n : {int64_t(1), int64_t(7), int64_t(64),
                          int64_t(1000), int64_t(65536)}) {
            int64_t covered = 0;
            int64_t prev_end = 0;
            for (int r = 0; r < world; ++r) {
                auto [b, e] = g.shardRange(n, r);
                EXPECT_EQ(b, prev_end); // contiguous, ordered
                EXPECT_LE(e, n);
                covered += e - b;
                prev_end = e;
            }
            EXPECT_EQ(covered, n) << "world=" << world << " n=" << n;
            EXPECT_EQ(prev_end, n);
        }
    }
}

TEST_F(DistTest, ShardSizesBalanced)
{
    LearnerGroup g(8);
    // Sizes differ by at most 1.
    int64_t mn = 1 << 30, mx = 0;
    for (int r = 0; r < 8; ++r) {
        int64_t s = g.shardSize(1001, r);
        mn = std::min(mn, s);
        mx = std::max(mx, s);
    }
    EXPECT_LE(mx - mn, 1);
}

TEST_F(DistTest, BadRankFatal)
{
    LearnerGroup g(4);
    EXPECT_THROW(g.shardRange(10, 4), FatalError);
    EXPECT_THROW(g.shardRange(10, -1), FatalError);
    EXPECT_THROW(LearnerGroup(0), FatalError);
}

TEST_F(DistTest, AllGatherConcatenatesAndAccounts)
{
    LearnerGroup g(4);
    Rng rng(5);
    std::vector<Tensor> shards;
    for (int r = 0; r < 4; ++r) {
        shards.push_back(Tensor::rand({2, 3}, rng));
    }
    Tensor full = g.allGather(shards);
    EXPECT_EQ(full.shape(), (Shape{8, 3}));
    EXPECT_NEAR(full.at({6, 1}), shards[3].at({0, 1}), 1e-6);
    // Ring all-gather moves (L-1)/L of the payload.
    EXPECT_EQ(g.stats().allGathers, 1);
    EXPECT_EQ(g.stats().allGatherBytes, 8 * 3 * 4 * 3 / 4);
}

TEST_F(DistTest, AllReduceMeanAverages)
{
    LearnerGroup g(2);
    Tensor a = Tensor::fromVector({2, 4}, {2});
    Tensor b = Tensor::fromVector({4, 8}, {2});
    Tensor mean = g.allReduceMean({a, b});
    EXPECT_TRUE(allclose(mean, Tensor::fromVector({3, 6}, {2})));
    EXPECT_EQ(g.stats().allReduces, 1);
}

TEST_F(DistTest, CollectivesAdvanceSimulatedTime)
{
    DeviceManager &mgr = DeviceManager::instance();
    double t0 = mgr.simulatedSeconds();
    LearnerGroup g(8);
    g.recordAllGather(1 << 20);
    EXPECT_GT(mgr.simulatedSeconds(), t0);
    double t1 = mgr.simulatedSeconds();
    g.recordAllReduce(1 << 20);
    EXPECT_GT(mgr.simulatedSeconds(), t1);
}

TEST_F(DistTest, SingleLearnerMovesNothing)
{
    LearnerGroup g(1);
    g.recordAllGather(1 << 20);
    EXPECT_EQ(g.stats().allGatherBytes, 0);
    auto [b, e] = g.shardRange(100, 0);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100);
}

TEST_F(DistTest, ShardsFewerElementsThanLearners)
{
    // n < world: the first n learners get one element each, the rest
    // hold empty (but valid) ranges.
    LearnerGroup g(8);
    int64_t total = 0;
    for (int r = 0; r < 8; ++r) {
        auto [b, e] = g.shardRange(3, r);
        EXPECT_GE(e, b);
        EXPECT_EQ(g.shardSize(3, r), r < 3 ? 1 : 0);
        total += e - b;
    }
    EXPECT_EQ(total, 3);
}

TEST_F(DistTest, ShardsZeroElements)
{
    LearnerGroup g(4);
    for (int r = 0; r < 4; ++r) {
        auto [b, e] = g.shardRange(0, r);
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 0);
        EXPECT_EQ(g.shardSize(0, r), 0);
    }
}

TEST_F(DistTest, SingleLearnerOwnsEverythingAtAnySize)
{
    LearnerGroup g(1);
    for (int64_t n : {int64_t(0), int64_t(1), int64_t(12345)}) {
        auto [b, e] = g.shardRange(n, 0);
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, n);
    }
}

TEST_F(DistTest, CheckpointAveragerKeepsLatestK)
{
    dist::CheckpointAverager avg(2);
    EXPECT_THROW(avg.average(), FatalError);
    avg.push({1.0f, 2.0f});
    EXPECT_EQ(avg.size(), 1);
    EXPECT_EQ(avg.average(), (std::vector<float>{1.0f, 2.0f}));
    avg.push({3.0f, 4.0f});
    avg.push({5.0f, 6.0f}); // evicts {1,2}
    EXPECT_EQ(avg.size(), 2);
    EXPECT_EQ(avg.average(), (std::vector<float>{4.0f, 5.0f}));
    EXPECT_THROW(avg.push({1.0f}), FatalError); // size changed
    EXPECT_THROW(dist::CheckpointAverager(0), FatalError);
}

TEST_F(DistTest, GeneratorCollectivesMatchFunctionalPeers)
{
    // The generator collectives must agree with the existing functional
    // ones bit-for-bit when fed the same contributions.
    LearnerGroup g(4);
    Rng rng(11);
    std::vector<Tensor> shards;
    for (int r = 0; r < 4; ++r) {
        shards.push_back(Tensor::rand({2, 3}, rng));
    }
    Tensor via_list = g.allGather(shards);
    Tensor via_fn = g.allGatherShards(
        8, 3, [&](int r) { return shards[static_cast<size_t>(r)]; });
    EXPECT_EQ(0, std::memcmp(via_list.rawData<float>(),
                             via_fn.rawData<float>(), 8 * 3 * 4));

    std::vector<Tensor> parts;
    for (int r = 0; r < 4; ++r) {
        parts.push_back(Tensor::rand({6}, rng));
    }
    Tensor mean = g.allReduceMean(parts);
    Tensor sum = g.allReduceSumDet(
        6, [&](int r) { return parts[static_cast<size_t>(r)]; });
    const float *pm = mean.rawData<float>();
    const float *ps = sum.rawData<float>();
    for (int64_t i = 0; i < 6; ++i) {
        // allReduceMean applies the same double-accumulate then * 1/L.
        EXPECT_EQ(pm[i], ps[i] * 0.25f);
    }
}

TEST_F(DistTest, RingLedgerMatchesTransportMeasuredBytes)
{
    // Run the same two collectives over a functional group and over a
    // real 2-process transport; with world | rows the ring model's
    // byte count must equal the bytes the transport actually moved
    // (which is what the cross-process ledger records).
    constexpr int kWorld = 2;
    constexpr int64_t kRows = 8, kCols = 3, kN = 6;
    auto run_collectives = [](LearnerGroup &g) {
        g.allGatherShards(kRows, kCols, [&](int r) {
            auto [b, e] = g.shardRange(kRows, r);
            std::vector<float> block(
                static_cast<size_t>((e - b) * kCols));
            for (size_t i = 0; i < block.size(); ++i) {
                block[i] = static_cast<float>(r * 100 + (b + 1)) +
                           static_cast<float>(i);
            }
            return Tensor::fromVector(block, {e - b, kCols});
        });
        g.allReduceSumDet(kN, [&](int r) {
            std::vector<float> part(static_cast<size_t>(kN),
                                    static_cast<float>(r + 1));
            return Tensor::fromVector(part, {kN});
        });
    };

    LearnerGroup functional(kWorld, 0);
    run_collectives(functional);

    dist::ProcessGroupOptions pg;
    pg.world = kWorld;
    pg.kind = dist::TransportKind::kShm;
    std::vector<std::vector<uint8_t>> blobs = dist::ProcessGroup::run(
        pg, [&](dist::Transport &transport) {
            LearnerGroup g(transport);
            run_collectives(g);
            std::vector<uint8_t> out;
            serial::appendPod(out, g.stats().allGatherBytes);
            serial::appendPod(out, g.stats().allReduceBytes);
            return out;
        });
    for (const std::vector<uint8_t> &blob : blobs) {
        size_t at = 0;
        int64_t measured_gather = serial::readPod<int64_t>(blob, at);
        int64_t measured_reduce = serial::readPod<int64_t>(blob, at);
        EXPECT_EQ(measured_gather, functional.stats().allGatherBytes);
        EXPECT_EQ(measured_reduce, functional.stats().allReduceBytes);
    }
    EXPECT_EQ(functional.stats().allGatherBytes,
              kRows * kCols * 4 * (kWorld - 1) / kWorld);
    EXPECT_EQ(functional.stats().allReduceBytes,
              (kWorld - 1) * kN * 4);
}

} // namespace
} // namespace edkm
