/**
 * @file
 * Tests for the simulated learner group: shard partitioning properties,
 * functional collectives, and communication accounting.
 */

#include <gtest/gtest.h>

#include "device/device_manager.h"
#include "dist/learner_group.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

class DistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
    }
};

TEST_F(DistTest, ShardRangesPartitionExactly)
{
    for (int world : {1, 2, 3, 8}) {
        LearnerGroup g(world);
        for (int64_t n : {int64_t(1), int64_t(7), int64_t(64),
                          int64_t(1000), int64_t(65536)}) {
            int64_t covered = 0;
            int64_t prev_end = 0;
            for (int r = 0; r < world; ++r) {
                auto [b, e] = g.shardRange(n, r);
                EXPECT_EQ(b, prev_end); // contiguous, ordered
                EXPECT_LE(e, n);
                covered += e - b;
                prev_end = e;
            }
            EXPECT_EQ(covered, n) << "world=" << world << " n=" << n;
            EXPECT_EQ(prev_end, n);
        }
    }
}

TEST_F(DistTest, ShardSizesBalanced)
{
    LearnerGroup g(8);
    // Sizes differ by at most 1.
    int64_t mn = 1 << 30, mx = 0;
    for (int r = 0; r < 8; ++r) {
        int64_t s = g.shardSize(1001, r);
        mn = std::min(mn, s);
        mx = std::max(mx, s);
    }
    EXPECT_LE(mx - mn, 1);
}

TEST_F(DistTest, BadRankFatal)
{
    LearnerGroup g(4);
    EXPECT_THROW(g.shardRange(10, 4), FatalError);
    EXPECT_THROW(g.shardRange(10, -1), FatalError);
    EXPECT_THROW(LearnerGroup(0), FatalError);
}

TEST_F(DistTest, AllGatherConcatenatesAndAccounts)
{
    LearnerGroup g(4);
    Rng rng(5);
    std::vector<Tensor> shards;
    for (int r = 0; r < 4; ++r) {
        shards.push_back(Tensor::rand({2, 3}, rng));
    }
    Tensor full = g.allGather(shards);
    EXPECT_EQ(full.shape(), (Shape{8, 3}));
    EXPECT_NEAR(full.at({6, 1}), shards[3].at({0, 1}), 1e-6);
    // Ring all-gather moves (L-1)/L of the payload.
    EXPECT_EQ(g.stats().allGathers, 1);
    EXPECT_EQ(g.stats().allGatherBytes, 8 * 3 * 4 * 3 / 4);
}

TEST_F(DistTest, AllReduceMeanAverages)
{
    LearnerGroup g(2);
    Tensor a = Tensor::fromVector({2, 4}, {2});
    Tensor b = Tensor::fromVector({4, 8}, {2});
    Tensor mean = g.allReduceMean({a, b});
    EXPECT_TRUE(allclose(mean, Tensor::fromVector({3, 6}, {2})));
    EXPECT_EQ(g.stats().allReduces, 1);
}

TEST_F(DistTest, CollectivesAdvanceSimulatedTime)
{
    DeviceManager &mgr = DeviceManager::instance();
    double t0 = mgr.simulatedSeconds();
    LearnerGroup g(8);
    g.recordAllGather(1 << 20);
    EXPECT_GT(mgr.simulatedSeconds(), t0);
    double t1 = mgr.simulatedSeconds();
    g.recordAllReduce(1 << 20);
    EXPECT_GT(mgr.simulatedSeconds(), t1);
}

TEST_F(DistTest, SingleLearnerMovesNothing)
{
    LearnerGroup g(1);
    g.recordAllGather(1 << 20);
    EXPECT_EQ(g.stats().allGatherBytes, 0);
    auto [b, e] = g.shardRange(100, 0);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100);
}

} // namespace
} // namespace edkm
