/**
 * @file
 * Kernel tests: broadcasting, matmul, softmax, reductions, indexing.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

TEST(OpsBinary, SameShape)
{
    Tensor a = Tensor::fromVector({1, 2, 3}, {3});
    Tensor b = Tensor::fromVector({10, 20, 30}, {3});
    EXPECT_TRUE(allclose(add(a, b), Tensor::fromVector({11, 22, 33}, {3})));
    EXPECT_TRUE(allclose(sub(b, a), Tensor::fromVector({9, 18, 27}, {3})));
    EXPECT_TRUE(allclose(mul(a, b), Tensor::fromVector({10, 40, 90}, {3})));
    EXPECT_TRUE(allclose(div(b, a),
                         Tensor::fromVector({10, 10, 10}, {3})));
}

TEST(OpsBinary, RowColumnBroadcast)
{
    // [2,3] + [1,3] and [2,3] + [2,1]
    Tensor m = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {2, 3});
    Tensor row = Tensor::fromVector({10, 20, 30}, {1, 3});
    Tensor col = Tensor::fromVector({100, 200}, {2, 1});
    EXPECT_TRUE(allclose(
        add(m, row),
        Tensor::fromVector({11, 22, 33, 14, 25, 36}, {2, 3})));
    EXPECT_TRUE(allclose(
        add(m, col),
        Tensor::fromVector({101, 102, 103, 204, 205, 206}, {2, 3})));
}

TEST(OpsBinary, RankBroadcast)
{
    // [2,2,2] + [2] broadcasts over trailing dim.
    Tensor a = Tensor::fromVector({1, 2, 3, 4, 5, 6, 7, 8}, {2, 2, 2});
    Tensor b = Tensor::fromVector({10, 100}, {2});
    Tensor c = add(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
    EXPECT_EQ(c.flatAt(0), 11.0f);
    EXPECT_EQ(c.flatAt(1), 102.0f);
    EXPECT_EQ(c.flatAt(7), 108.0f);
}

TEST(OpsBinary, IncompatibleShapesFatal)
{
    Tensor a = Tensor::zeros({2, 3});
    Tensor b = Tensor::zeros({2, 4});
    EXPECT_THROW(add(a, b), FatalError);
}

TEST(OpsBinary, NonContiguousInput)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor at = a.transpose(0, 1); // non-contiguous
    Tensor s = add(at, at);
    EXPECT_EQ(s.at({0, 1}), 6.0f); // (a[1][0] = 3) * 2
}

TEST(OpsUnary, Basic)
{
    Tensor a = Tensor::fromVector({-1.0f, 0.0f, 4.0f}, {3});
    EXPECT_TRUE(allclose(neg(a), Tensor::fromVector({1, 0, -4}, {3})));
    EXPECT_TRUE(allclose(absT(a), Tensor::fromVector({1, 0, 4}, {3})));
    EXPECT_TRUE(allclose(square(a), Tensor::fromVector({1, 0, 16}, {3})));
    EXPECT_NEAR(expT(a).flatAt(0), std::exp(-1.0f), 1e-6);
    EXPECT_NEAR(sqrtT(a).flatAt(2), 2.0f, 1e-6);
    EXPECT_TRUE(allclose(clampT(a, -0.5f, 2.0f),
                         Tensor::fromVector({-0.5f, 0.0f, 2.0f}, {3})));
    EXPECT_NEAR(silu(a).flatAt(2), 4.0f / (1.0f + std::exp(-4.0f)), 1e-6);
    EXPECT_NEAR(sigmoid(a).flatAt(1), 0.5f, 1e-6);
    EXPECT_TRUE(allclose(relu(a), Tensor::fromVector({0, 0, 4}, {3})));
}

TEST(OpsMatmul, Known2d)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor b = Tensor::fromVector({5, 6, 7, 8}, {2, 2});
    Tensor c = matmul(a, b);
    EXPECT_TRUE(
        allclose(c, Tensor::fromVector({19, 22, 43, 50}, {2, 2})));
}

TEST(OpsMatmul, TransposedOperands)
{
    Rng rng(1);
    Tensor a = Tensor::rand({3, 4}, rng);
    Tensor b = Tensor::rand({5, 4}, rng);
    // a @ b^T computed two ways.
    Tensor c1 = matmul(a, b.transpose(0, 1));
    for (int64_t i = 0; i < 3; ++i) {
        for (int64_t j = 0; j < 5; ++j) {
            double acc = 0;
            for (int64_t k = 0; k < 4; ++k) {
                acc += a.at({i, k}) * b.at({j, k});
            }
            EXPECT_NEAR(c1.at({i, j}), acc, 1e-5);
        }
    }
}

TEST(OpsMatmul, Batched)
{
    Rng rng(2);
    Tensor a = Tensor::rand({2, 3, 4}, rng);
    Tensor b = Tensor::rand({2, 4, 5}, rng);
    Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 3, 5}));
    // Each batch equals the 2-d product.
    for (int64_t i = 0; i < 2; ++i) {
        Tensor ci = matmul(a.select(0, i).contiguous(),
                           b.select(0, i).contiguous());
        for (int64_t r = 0; r < 3; ++r) {
            for (int64_t s = 0; s < 5; ++s) {
                EXPECT_NEAR(c.at({i, r, s}), ci.at({r, s}), 1e-5);
            }
        }
    }
}

TEST(OpsMatmul, BatchedBroadcastRhs)
{
    Rng rng(3);
    Tensor a = Tensor::rand({2, 3, 4}, rng);
    Tensor b = Tensor::rand({4, 5}, rng);
    Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 3, 5}));
    Tensor c1 = matmul(a.select(0, 1).contiguous(), b);
    EXPECT_NEAR(c.at({1, 2, 3}), c1.at({2, 3}), 1e-5);
}

TEST(OpsReduce, SumMean)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {2, 3});
    EXPECT_NEAR(sumAll(a).item(), 21.0f, 1e-6);
    EXPECT_NEAR(meanAll(a).item(), 3.5f, 1e-6);

    Tensor s0 = sumDim(a, 0);
    EXPECT_EQ(s0.shape(), (Shape{3}));
    EXPECT_TRUE(allclose(s0, Tensor::fromVector({5, 7, 9}, {3})));

    Tensor s1 = sumDim(a, 1, /*keepdim=*/true);
    EXPECT_EQ(s1.shape(), (Shape{2, 1}));
    EXPECT_TRUE(allclose(s1, Tensor::fromVector({6, 15}, {2, 1})));

    Tensor m1 = meanDim(a, -1);
    EXPECT_TRUE(allclose(m1, Tensor::fromVector({2, 5}, {2})));
}

TEST(OpsSoftmax, RowsSumToOne)
{
    Rng rng(4);
    Tensor a = Tensor::rand({7, 9}, rng);
    Tensor s = softmaxLastDim(a);
    Tensor rowsum = sumDim(s, -1);
    for (int64_t i = 0; i < 7; ++i) {
        EXPECT_NEAR(rowsum.flatAt(i), 1.0f, 1e-5);
    }
    // Numerically stable for large magnitudes.
    Tensor big = Tensor::fromVector({1000.0f, 1001.0f}, {1, 2});
    Tensor sb = softmaxLastDim(big);
    EXPECT_NEAR(sb.flatAt(0) + sb.flatAt(1), 1.0f, 1e-6);
    EXPECT_GT(sb.flatAt(1), sb.flatAt(0));
}

TEST(OpsSoftmax, LogSoftmaxMatchesLogOfSoftmax)
{
    Rng rng(5);
    Tensor a = Tensor::rand({3, 6}, rng);
    Tensor ls = logSoftmaxLastDim(a);
    Tensor s = softmaxLastDim(a);
    EXPECT_TRUE(allclose(expT(ls), s, 1e-4f, 1e-6f));
}

TEST(OpsReduce, MaxArgmax)
{
    Tensor a = Tensor::fromVector({1, 9, 3, 7, 2, 8}, {2, 3});
    auto [vals, idx] = maxLastDim(a);
    EXPECT_EQ(vals.flatAt(0), 9.0f);
    EXPECT_EQ(vals.flatAt(1), 8.0f);
    EXPECT_EQ(idx.flatAtInt(0), 1);
    EXPECT_EQ(idx.flatAtInt(1), 2);
}

TEST(OpsIndex, GatherScatterRoundTrip)
{
    Tensor table = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {3, 2});
    Tensor idx = Tensor::fromIndices({2, 0, 2}, {3});
    Tensor g = gatherRows(table, idx);
    EXPECT_EQ(g.shape(), (Shape{3, 2}));
    EXPECT_EQ(g.at({0, 0}), 5.0f);
    EXPECT_EQ(g.at({1, 1}), 2.0f);

    // scatterAdd accumulates duplicate rows.
    Tensor back = scatterAddRows(g, idx, 3);
    EXPECT_EQ(back.at({2, 0}), 10.0f); // row 2 gathered twice
    EXPECT_EQ(back.at({0, 1}), 2.0f);
    EXPECT_EQ(back.at({1, 0}), 0.0f); // never touched
}

TEST(OpsIndex, GatherOutOfRangeFatal)
{
    Tensor table = Tensor::zeros({2, 2});
    Tensor idx = Tensor::fromIndices({3}, {1});
    EXPECT_THROW(gatherRows(table, idx), FatalError);
}

TEST(OpsMisc, Cat0AndCopyIntoView)
{
    Tensor a = Tensor::fromVector({1, 2}, {1, 2});
    Tensor b = Tensor::fromVector({3, 4, 5, 6}, {2, 2});
    Tensor c = cat0({a, b});
    EXPECT_EQ(c.shape(), (Shape{3, 2}));
    EXPECT_EQ(c.flatAt(4), 5.0f);

    Tensor dst = Tensor::zeros({3, 2});
    copyIntoView(dst.slice(0, 1, 3), b);
    EXPECT_EQ(dst.at({0, 0}), 0.0f);
    EXPECT_EQ(dst.at({1, 0}), 3.0f);
    EXPECT_EQ(dst.at({2, 1}), 6.0f);
}

TEST(OpsMisc, BroadcastTo)
{
    Tensor row = Tensor::fromVector({1, 2}, {1, 2});
    Tensor full = broadcastTo(row, {3, 2});
    EXPECT_EQ(full.shape(), (Shape{3, 2}));
    EXPECT_EQ(full.at({2, 1}), 2.0f);
}

/** Parameterized sweep: matmul matches a reference on random shapes. */
class MatmulSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatmulSweep, MatchesReference)
{
    auto [m, k, n] = GetParam();
    Rng rng(static_cast<uint64_t>(m * 131 + k * 17 + n));
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c = matmul(a, b);
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0;
            for (int64_t p = 0; p < k; ++p) {
                acc += static_cast<double>(a.at({i, p})) * b.at({p, j});
            }
            ASSERT_NEAR(c.at({i, j}), acc, 1e-3)
                << m << "x" << k << "x" << n;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 8, 1),
                      std::make_tuple(5, 3, 7), std::make_tuple(16, 16, 16),
                      std::make_tuple(2, 31, 9), std::make_tuple(33, 1, 4)));

} // namespace
} // namespace edkm
